#!/bin/sh
# Emits the public API surface of the opendwarfs facade (declarations and
# doc comments, via `go doc -all`). CI diffs this against the committed
# snapshot so the redesigned public API cannot change silently; refresh it
# deliberately with:
#
#   ci/apisnapshot.sh > ci/API.txt
set -e
cd "$(dirname "$0")/.."
go doc -all .
