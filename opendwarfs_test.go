package opendwarfs

import (
	"context"
	"testing"
)

func quickSession(t *testing.T, opts ...Option) *Session {
	t.Helper()
	s, err := NewSession(append([]Option{WithSamples(8)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSuiteComposition(t *testing.T) {
	reg := Suite()
	if got := len(reg.All()); got != 11 {
		t.Fatalf("%d benchmarks, want 11", got)
	}
	dwarves := map[string]bool{}
	for _, b := range reg.All() {
		dwarves[b.Dwarf()] = true
	}
	// §2/§5: the suite covers ten distinct Berkeley dwarfs (fft and dwt
	// share Spectral Methods).
	if len(dwarves) != 10 {
		t.Fatalf("%d distinct dwarfs, want 10", len(dwarves))
	}
}

func TestDevicesComposition(t *testing.T) {
	if got := len(Devices()); got != 15 {
		t.Fatalf("%d devices, want 15", got)
	}
	if _, err := LookupDevice("gtx1080"); err != nil {
		t.Fatal(err)
	}
	if _, err := LookupDevice("quantum-9"); err == nil {
		t.Fatal("unknown device accepted")
	}
	if got := len(Sizes()); got != 4 {
		t.Fatalf("%d sizes", got)
	}
}

func TestRunFacade(t *testing.T) {
	sess := quickSession(t)
	res, err := sess.Run(context.Background(), "csr", "tiny", "i7-6700k")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("tiny csr should verify")
	}
	if res.Kernel.Median <= 0 {
		t.Fatal("no timing")
	}
}

func TestRunFacadeErrors(t *testing.T) {
	sess := quickSession(t)
	ctx := context.Background()
	if _, err := sess.Run(ctx, "nope", "tiny", "i7-6700k"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := sess.Run(ctx, "csr", "tiny", "nope"); err == nil {
		t.Fatal("unknown device accepted")
	}
	if _, err := sess.Run(ctx, "nqueens", "large", "i7-6700k"); err == nil {
		t.Fatal("unsupported size accepted")
	}
}

func TestRunGridFacade(t *testing.T) {
	sess := quickSession(t, WithFunctionalBudget(0))
	g, err := sess.RunGrid(context.Background(), Selection{
		Benchmarks: []string{"fft"},
		Sizes:      []string{"tiny"},
		Devices:    []string{"i7-6700k", "gtx1080"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Measurements) != 2 {
		t.Fatalf("%d cells", len(g.Measurements))
	}
}
