package opendwarfs

import (
	"context"
	"errors"
	"testing"

	"opendwarfs/internal/harness"
)

func TestNewSessionOptionValidation(t *testing.T) {
	for name, opts := range map[string][]Option{
		"zero samples":    {WithSamples(0)},
		"negative loop":   {WithMinLoopNs(-1)},
		"negative budget": {WithFunctionalBudget(-1)},
		"negative worker": {WithWorkers(-1)},
		"bad options":     {WithOptions(Options{})},
	} {
		if _, err := NewSession(opts...); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	sess, err := NewSession(WithSamples(8), WithSeed(7), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if got := sess.Options(); got.Samples != 8 || got.Seed != 7 {
		t.Fatalf("options not applied: %+v", got)
	}
}

func TestSessionRun(t *testing.T) {
	sess, err := NewSession(WithSamples(8))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()

	res, err := sess.Run(ctx, "csr", "tiny", "i7-6700k")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.Kernel.Median <= 0 {
		t.Fatalf("tiny csr should verify with timing: %+v", res)
	}

	// The session result matches the bare harness path exactly.
	b, err := Suite().Get("csr")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := LookupDevice("i7-6700k")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := harness.Run(ctx, b, "tiny", dev, sess.Options())
	if err != nil {
		t.Fatal(err)
	}
	if direct.Kernel.Median != res.Kernel.Median {
		t.Fatal("Session.Run and harness.Run disagree")
	}

	if _, err := sess.Run(ctx, "nope", "tiny", "i7-6700k"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := sess.Run(ctx, "csr", "tiny", "nope"); err == nil {
		t.Fatal("unknown device accepted")
	}
	if _, err := sess.Run(ctx, "nqueens", "large", "i7-6700k"); err == nil {
		t.Fatal("unsupported size accepted")
	}
}

func TestSessionRunWithStoreIsIncremental(t *testing.T) {
	dir := t.TempDir()
	sess, err := NewSession(WithSamples(6), WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	a, err := sess.Run(ctx, "crc", "tiny", "i7-6700k")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	// A second session over the same directory serves the cell from disk.
	sess2, err := NewSession(WithSamples(6), WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer sess2.Close()
	g, err := sess2.RunGrid(ctx, Selection{
		Benchmarks: []string{"crc"}, Sizes: []string{"tiny"}, Devices: []string{"i7-6700k"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.StoreHits != 1 || g.StoreMisses != 0 {
		t.Fatalf("re-run of a stored cell: %d hits / %d misses", g.StoreHits, g.StoreMisses)
	}
	if g.Measurements[0].Kernel.Median != a.Kernel.Median {
		t.Fatal("stored cell differs from measured one")
	}
}

func TestSessionStreamAndCancellation(t *testing.T) {
	sess, err := NewSession(
		WithSamples(6),
		WithFunctionalBudget(0),
		WithWorkers(2),
		WithStore(t.TempDir()),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	sel := Selection{
		Benchmarks: []string{"crc", "fft", "nw"},
		Sizes:      []string{"tiny", "small"},
		Devices:    []string{"i7-6700k", "gtx1080"},
	}
	ctx, cancel := context.WithCancel(context.Background())
	events, err := sess.Stream(ctx, sel)
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	var terminal Event
	for ev := range events {
		switch ev.Kind {
		case EventCellDone, EventStoreHit:
			completed++
			if completed == 2 {
				cancel()
			}
		case EventGridDone:
			terminal = ev
		}
	}
	cancel()
	if !errors.Is(terminal.Err, context.Canceled) {
		t.Fatalf("terminal error %v, want context.Canceled", terminal.Err)
	}
	if terminal.Grid == nil || terminal.Grid.Cells() < 2 || terminal.Grid.Cells() >= 12 {
		t.Fatalf("partial grid %v", terminal.Grid)
	}

	// The partial run persisted its cells: a full re-run hits exactly them.
	g, err := sess.RunGrid(context.Background(), sel)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cells() != 12 {
		t.Fatalf("%d cells, want 12", g.Cells())
	}
	if g.StoreHits != terminal.Grid.Cells() {
		t.Fatalf("resumed run hit %d cells, want the %d completed before cancellation",
			g.StoreHits, terminal.Grid.Cells())
	}
}

func TestSessionMetricsAndTracer(t *testing.T) {
	reg := NewMetrics()
	tr := NewTracer()
	sess, err := NewSession(
		WithSamples(6),
		WithFunctionalBudget(0),
		WithStore(t.TempDir()),
		WithMetrics(reg),
		WithTracer(tr),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	sel := Selection{
		Benchmarks: []string{"crc", "fft"},
		Sizes:      []string{"tiny"},
		Devices:    []string{"i7-6700k", "gtx1080"},
	}
	g, err := sess.RunGrid(context.Background(), sel)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue("harness_cells_total"); got != int64(g.Cells()) {
		t.Errorf("harness_cells_total = %d, want %d", got, g.Cells())
	}
	if got := reg.CounterValue("harness_store_misses_total"); got != int64(g.StoreMisses) {
		t.Errorf("harness_store_misses_total = %d, want %d", got, g.StoreMisses)
	}
	if tr.Spans() == 0 || tr.OpenSpans() != 0 {
		t.Fatalf("tracer: %d spans, %d open", tr.Spans(), tr.OpenSpans())
	}

	// A second grid through the same session aggregates into the same
	// registry and traces into the same tracer.
	before := tr.Spans()
	g2, err := sess.RunGrid(context.Background(), sel)
	if err != nil {
		t.Fatal(err)
	}
	if g2.StoreHits != g.Cells() {
		t.Fatalf("re-run hits = %d, want %d", g2.StoreHits, g.Cells())
	}
	want := int64(g.Cells() + g2.Cells())
	if got := reg.CounterValue("harness_cells_total"); got != want {
		t.Errorf("aggregated harness_cells_total = %d, want %d", got, want)
	}
	if tr.Spans() <= before {
		t.Fatalf("second run added no spans (%d -> %d)", before, tr.Spans())
	}
	if got := reg.CounterValue("harness_store_hits_total"); got != int64(g2.StoreHits) {
		t.Errorf("harness_store_hits_total = %d, want %d", got, g2.StoreHits)
	}
}
