module opendwarfs

go 1.24.0
