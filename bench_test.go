package opendwarfs

// One testing.B benchmark per table and figure of the paper (DESIGN.md §4),
// plus micro-benchmarks of the runtime substrates. Each figure benchmark
// regenerates the figure's full data series (benchmark × sizes × all 15
// devices) per iteration and reports the headline comparative metric the
// paper draws from that figure, so `go test -bench .` doubles as the
// experiment driver:
//
//	go test -bench BenchmarkFigure3a -benchmem
//
// Absolute numbers come from the device timing models (DESIGN.md §2); the
// reported ratios are the quantities EXPERIMENTS.md tracks against the
// paper.

import (
	"context"

	"io"
	"testing"

	"opendwarfs/internal/cache"
	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/harness"
	"opendwarfs/internal/opencl"
	"opendwarfs/internal/report"
	"opendwarfs/internal/sim"
	"opendwarfs/internal/suite"
)

// benchGridOpts are the reduced-cost measurement options used by the
// figure benchmarks: timing model only, 6 samples.
func benchGridOpts() harness.Options {
	opt := harness.DefaultOptions()
	opt.Samples = 6
	opt.MaxFunctionalOps = 0
	opt.Verify = false
	return opt
}

// figureGrid regenerates one benchmark's figure series.
func figureGrid(b *testing.B, bench string, sizes []string) *harness.Grid {
	b.Helper()
	g, err := harness.RunGrid(context.Background(), suite.New(), harness.GridSpec{
		Benchmarks: []string{bench},
		Sizes:      sizes,
		Options:    benchGridOpts(),
	})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func medianOf(b *testing.B, g *harness.Grid, bench, size, dev string) float64 {
	b.Helper()
	m := g.Find(bench, size, dev)
	if m == nil {
		b.Fatalf("missing cell %s/%s/%s", bench, size, dev)
	}
	return m.Kernel.Median
}

// BenchmarkTable1Hardware renders the device catalogue (Table 1).
func BenchmarkTable1Hardware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.Table1Hardware(io.Discard)
	}
}

// BenchmarkTable2Sizes renders the workload scale parameters (Table 2).
func BenchmarkTable2Sizes(b *testing.B) {
	reg := suite.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.Table2Sizes(io.Discard, reg)
	}
}

// BenchmarkTable3Args renders the program arguments (Table 3).
func BenchmarkTable3Args(b *testing.B) {
	reg := suite.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.Table3Args(io.Discard, reg)
	}
}

// BenchmarkFigure1CRC regenerates Figure 1 (crc, 4 sizes × 15 devices) and
// reports the paper's headline: the best GPU is slower than the best CPU.
func BenchmarkFigure1CRC(b *testing.B) {
	var g *harness.Grid
	for i := 0; i < b.N; i++ {
		g = figureGrid(b, "crc", dwarfs.Sizes())
	}
	gpu := medianOf(b, g, "crc", "large", "gtx1080")
	cpu := medianOf(b, g, "crc", "large", "i7-6700k")
	b.ReportMetric(gpu/cpu, "gpu/cpu_time_ratio")
	knl := medianOf(b, g, "crc", "large", "knl-7210")
	b.ReportMetric(knl/cpu, "knl/cpu_time_ratio")
}

// BenchmarkFigure2aKmeans reports the CPU/GPU parity the paper highlights.
func BenchmarkFigure2aKmeans(b *testing.B) {
	var g *harness.Grid
	for i := 0; i < b.N; i++ {
		g = figureGrid(b, "kmeans", dwarfs.Sizes())
	}
	b.ReportMetric(medianOf(b, g, "kmeans", "large", "i7-6700k")/medianOf(b, g, "kmeans", "large", "gtx1080"), "cpu/gpu_time_ratio")
}

// BenchmarkFigure2bLUD reports the i5-3550 medium-size degradation
// (its 6 MiB L3 misses the 8 MiB working set).
func BenchmarkFigure2bLUD(b *testing.B) {
	var g *harness.Grid
	for i := 0; i < b.N; i++ {
		g = figureGrid(b, "lud", dwarfs.Sizes())
	}
	i5 := medianOf(b, g, "lud", "medium", "i5-3550") / medianOf(b, g, "lud", "small", "i5-3550")
	i7 := medianOf(b, g, "lud", "medium", "i7-6700k") / medianOf(b, g, "lud", "small", "i7-6700k")
	b.ReportMetric(i5/i7, "i5_vs_i7_medium_blowup")
}

// BenchmarkFigure2cCSR reports the GPU advantage on sparse bandwidth.
func BenchmarkFigure2cCSR(b *testing.B) {
	var g *harness.Grid
	for i := 0; i < b.N; i++ {
		g = figureGrid(b, "csr", dwarfs.Sizes())
	}
	b.ReportMetric(medianOf(b, g, "csr", "large", "i7-6700k")/medianOf(b, g, "csr", "large", "gtx1080"), "cpu/gpu_time_ratio")
}

// BenchmarkFigure2dDWT reports the spectral-methods latency wall on CPUs.
func BenchmarkFigure2dDWT(b *testing.B) {
	var g *harness.Grid
	for i := 0; i < b.N; i++ {
		g = figureGrid(b, "dwt", dwarfs.Sizes())
	}
	b.ReportMetric(medianOf(b, g, "dwt", "large", "i7-6700k")/medianOf(b, g, "dwt", "large", "gtx1080"), "cpu/gpu_time_ratio")
}

// BenchmarkFigure2eFFT reports the same trend for fft.
func BenchmarkFigure2eFFT(b *testing.B) {
	var g *harness.Grid
	for i := 0; i < b.N; i++ {
		g = figureGrid(b, "fft", dwarfs.Sizes())
	}
	b.ReportMetric(medianOf(b, g, "fft", "large", "i7-6700k")/medianOf(b, g, "fft", "large", "gtx1080"), "cpu/gpu_time_ratio")
}

// BenchmarkFigure3aSRAD reports the widening structured-grid gap.
func BenchmarkFigure3aSRAD(b *testing.B) {
	var g *harness.Grid
	for i := 0; i < b.N; i++ {
		g = figureGrid(b, "srad", dwarfs.Sizes())
	}
	tiny := medianOf(b, g, "srad", "tiny", "i7-6700k") / medianOf(b, g, "srad", "tiny", "gtx1080")
	large := medianOf(b, g, "srad", "large", "i7-6700k") / medianOf(b, g, "srad", "large", "gtx1080")
	b.ReportMetric(tiny, "cpu/gpu_ratio_tiny")
	b.ReportMetric(large, "cpu/gpu_ratio_large")
}

// BenchmarkFigure3bNW reports the AMD launch-overhead penalty.
func BenchmarkFigure3bNW(b *testing.B) {
	var g *harness.Grid
	for i := 0; i < b.N; i++ {
		g = figureGrid(b, "nw", dwarfs.Sizes())
	}
	b.ReportMetric(medianOf(b, g, "nw", "large", "r9-290x")/medianOf(b, g, "nw", "large", "gtx1080"), "amd/nvidia_time_ratio")
	b.ReportMetric(medianOf(b, g, "nw", "large", "i7-6700k")/medianOf(b, g, "nw", "large", "gtx1080"), "cpu/nvidia_time_ratio")
}

// BenchmarkFigure4aGEM regenerates the single-size gem panel.
func BenchmarkFigure4aGEM(b *testing.B) {
	var g *harness.Grid
	for i := 0; i < b.N; i++ {
		g = figureGrid(b, "gem", []string{dwarfs.SizeTiny})
	}
	b.ReportMetric(medianOf(b, g, "gem", "tiny", "i7-6700k")/medianOf(b, g, "gem", "tiny", "gtx1080"), "cpu/gpu_time_ratio")
}

// BenchmarkFigure4bNQueens regenerates the single-size nqueens panel.
func BenchmarkFigure4bNQueens(b *testing.B) {
	var g *harness.Grid
	for i := 0; i < b.N; i++ {
		g = figureGrid(b, "nqueens", []string{dwarfs.SizeTiny})
	}
	b.ReportMetric(medianOf(b, g, "nqueens", "tiny", "i7-6700k")/medianOf(b, g, "nqueens", "tiny", "gtx1080"), "cpu/gpu_time_ratio")
}

// BenchmarkFigure4cHMM regenerates the single-size hmm panel.
func BenchmarkFigure4cHMM(b *testing.B) {
	var g *harness.Grid
	for i := 0; i < b.N; i++ {
		g = figureGrid(b, "hmm", []string{dwarfs.SizeTiny})
	}
	b.ReportMetric(medianOf(b, g, "hmm", "tiny", "i7-6700k")/medianOf(b, g, "hmm", "tiny", "gtx1080"), "cpu/gpu_time_ratio")
}

// BenchmarkFigure5Energy regenerates the energy comparison (i7-6700K RAPL
// vs GTX 1080 NVML, large size) and reports the crc exception alongside a
// representative vector benchmark.
func BenchmarkFigure5Energy(b *testing.B) {
	benches := []string{"kmeans", "lud", "csr", "fft", "dwt", "gem", "srad", "crc"}
	var g *harness.Grid
	for i := 0; i < b.N; i++ {
		g = &harness.Grid{}
		for _, bench := range benches {
			sizes := []string{dwarfs.SizeLarge}
			sub, err := harness.RunGrid(context.Background(), suite.New(), harness.GridSpec{
				Benchmarks: []string{bench},
				Sizes:      sizes,
				Devices:    []string{"i7-6700k", "gtx1080"},
				Options:    benchGridOpts(),
			})
			if err != nil {
				b.Fatal(err)
			}
			g.Merge(sub)
		}
	}
	srad := g.Find("srad", "large", "i7-6700k").Energy.Median / g.Find("srad", "large", "gtx1080").Energy.Median
	crc := g.Find("crc", "large", "i7-6700k").Energy.Median / g.Find("crc", "large", "gtx1080").Energy.Median
	b.ReportMetric(srad, "srad_cpu/gpu_energy_ratio")
	b.ReportMetric(crc, "crc_cpu/gpu_energy_ratio")
}

// ----- substrate micro-benchmarks -----

// BenchmarkKernelEnqueueSimulated measures the cost of one simulate-only
// kernel enqueue (profile + model evaluation).
func BenchmarkKernelEnqueueSimulated(b *testing.B) {
	dev, err := opencl.LookupDevice("gtx1080")
	if err != nil {
		b.Fatal(err)
	}
	ctx, _ := opencl.NewContext(dev)
	q, _ := opencl.NewQueue(ctx, dev)
	q.SetSimulateOnly(true)
	k := &opencl.Kernel{
		Name: "noop",
		Fn:   func(wi *opencl.Item) {},
		Profile: func(n opencl.NDRange) *sim.KernelProfile {
			return &sim.KernelProfile{
				Name: "noop", WorkItems: n.TotalItems(), FlopsPerItem: 1,
				LoadBytesPerItem: 4, WorkingSetBytes: 1 << 20,
				Pattern: cache.Streaming, Vectorizable: true,
			}
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.EnqueueNDRange(k, opencl.NDR1(1<<16, 64)); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 0 {
			q.DrainEvents()
		}
	}
}

// BenchmarkKernelExecuteFunctional measures real work-item dispatch
// throughput of the host execution engine.
func BenchmarkKernelExecuteFunctional(b *testing.B) {
	dev, _ := opencl.LookupDevice("i7-6700k")
	ctx, _ := opencl.NewContext(dev)
	q, _ := opencl.NewQueue(ctx, dev)
	const n = 1 << 16
	_, data := opencl.NewBuffer[float32](ctx, "x", n)
	k := &opencl.Kernel{
		Name: "scale",
		Fn:   func(wi *opencl.Item) { data[wi.GlobalID(0)] *= 1.0000001 },
		Profile: func(ndr opencl.NDRange) *sim.KernelProfile {
			return &sim.KernelProfile{
				Name: "scale", WorkItems: ndr.TotalItems(), FlopsPerItem: 1,
				LoadBytesPerItem: 4, StoreBytesPerItem: 4, WorkingSetBytes: 4 * n,
				Pattern: cache.Streaming, Vectorizable: true,
			}
		},
	}
	b.SetBytes(8 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.EnqueueNDRange(k, opencl.NDR1(n, 256)); err != nil {
			b.Fatal(err)
		}
		q.DrainEvents()
	}
}

// BenchmarkCacheResolve measures the analytical hierarchy model.
func BenchmarkCacheResolve(b *testing.B) {
	spec, _ := sim.Lookup("i7-6700k")
	h := spec.Hierarchy()
	req := cache.Request{TotalBytes: 1 << 24, WorkingSetBytes: 12 << 20, Pattern: cache.Stencil, TemporalReuse: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Resolve(req)
	}
}

// BenchmarkTraceCache measures the set-associative LRU simulator.
func BenchmarkTraceCache(b *testing.B) {
	c := cache.NewSetAssoc("L1", 32<<10, 8, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*64) & (1<<20 - 1))
	}
}

// BenchmarkNoiseSample measures the lognormal sampling path.
func BenchmarkNoiseSample(b *testing.B) {
	spec, _ := sim.Lookup("k20m")
	no := sim.NewNoise(spec, "bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		no.Sample(1e6, 100)
	}
}

// BenchmarkModelKernelTime measures one device-model evaluation.
func BenchmarkModelKernelTime(b *testing.B) {
	spec, _ := sim.Lookup("gtx1080")
	model := sim.NewModel(spec)
	p := &sim.KernelProfile{
		Name: "k", WorkItems: 1 << 20, FlopsPerItem: 30,
		LoadBytesPerItem: 24, StoreBytesPerItem: 4,
		WorkingSetBytes: 48 << 20, Pattern: cache.Stencil,
		TemporalReuse: 0.5, Vectorizable: true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.KernelTime(p)
	}
}
