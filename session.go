package opendwarfs

import (
	"context"
	"fmt"
	"sync"

	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/faults"
	"opendwarfs/internal/harness"
	"opendwarfs/internal/obs"
	"opendwarfs/internal/opencl"
	"opendwarfs/internal/store"
	"opendwarfs/internal/suite"
)

// Selection names the benchmark × size × device slice a Session operation
// covers. Empty axes mean "all": the whole suite, every supported size,
// all 15 catalogue devices.
type Selection struct {
	Benchmarks []string
	Sizes      []string
	Devices    []string
}

// Event re-exports the typed grid-execution event; see Session.Stream.
type Event = harness.Event

// EventKind re-exports the event discriminator.
type EventKind = harness.EventKind

// Event kinds emitted by Session.Stream (and Session.RunGrid internally).
const (
	EventCellStart         = harness.EventCellStart
	EventCellDone          = harness.EventCellDone
	EventStoreHit          = harness.EventStoreHit
	EventCellRetry         = harness.EventCellRetry
	EventCellFailed        = harness.EventCellFailed
	EventDeviceQuarantined = harness.EventDeviceQuarantined
	EventGridDone          = harness.EventGridDone
)

// RetryPolicy re-exports the per-cell measurement retry policy; see
// WithRetry.
type RetryPolicy = harness.RetryPolicy

// FailedCell re-exports the record of a cell that exhausted its attempts
// (or whose device dropped); see Grid.Failed.
type FailedCell = harness.FailedCell

// FaultInjector re-exports the deterministic fault-injection interface;
// see WithFaults.
type FaultInjector = faults.Injector

// FaultPlan re-exports the seeded declarative fault plan — the standard
// FaultInjector implementation.
type FaultPlan = faults.Plan

// Metrics re-exports the race-safe metrics registry; see WithMetrics.
type Metrics = obs.Registry

// Tracer re-exports the span tracer; see WithTracer.
type Tracer = obs.Tracer

// NewMetrics returns an empty metrics registry to attach via WithMetrics.
// Snapshot it, or render it with its WritePrometheus method, after (or
// during) runs.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewTracer returns an empty span tracer to attach via WithTracer. Export
// collected spans with its WriteJSONL or WriteChromeTrace methods.
func NewTracer() *Tracer { return obs.NewTracer() }

// Session is the context-aware entry point to the suite: a configured
// measurement environment (methodology options, worker pool, optional
// persistent store) whose Run/RunGrid/Stream methods all honour
// cancellation. Run/RunGrid/Stream are safe for concurrent use; construct
// a Session with NewSession and, when a store is attached, Close it after
// in-flight runs have finished (cancel their contexts and wait first —
// Close does not wait for them).
type Session struct {
	opt     Options
	workers int
	faults  faults.Injector
	retry   harness.RetryPolicy
	metrics *obs.Registry
	tracer  *obs.Tracer

	mu     sync.Mutex // guards st/ownsSt against a concurrent Close
	st     store.CellStore
	ownsSt bool
}

// Option configures a Session; see the With* constructors.
type Option func(*Session) error

// WithStore attaches the persistent result store at dir (created if
// missing): cells already present are decoded instead of re-measured, new
// cells are persisted as they complete. The store is opened by NewSession,
// closed by Session.Close, and wrapped in the process-global slot cache, so
// repeated reads of one cell — within this session or any other open on the
// same directory — share a single decoded measurement.
func WithStore(dir string) Option {
	return func(s *Session) error {
		if s.st != nil {
			return fmt.Errorf("opendwarfs: store already configured")
		}
		st, err := store.Open(dir)
		if err != nil {
			return err
		}
		s.st, s.ownsSt = store.Cached(st), true
		return nil
	}
}

// WithShardedStore attaches an n-way sharded result store rooted at dir:
// shard i lives in dir/shard-NN and cells are routed to shards by their
// fingerprint, so any process opening the same directory with the same
// shard count agrees on placement. Listings and grid assembly
// scatter-gather all shards and are byte-identical to a single store
// holding the same cells. Like WithStore, the sharded store sits behind
// the slot cache and is closed by Session.Close. shards must be 1..16;
// counts dividing 16 balance best.
func WithShardedStore(dir string, shards int) Option {
	return func(s *Session) error {
		if s.st != nil {
			return fmt.Errorf("opendwarfs: store already configured")
		}
		st, err := store.OpenSharded(dir, shards)
		if err != nil {
			return err
		}
		s.st, s.ownsSt = store.Cached(st), true
		return nil
	}
}

// WithWorkers sets how many cells are measured concurrently. 0 (the
// default) uses one worker per CPU; 1 runs grids sequentially. Results are
// identical at every worker count.
func WithWorkers(n int) Option {
	return func(s *Session) error {
		if n < 0 {
			return fmt.Errorf("opendwarfs: negative worker count %d", n)
		}
		s.workers = n
		return nil
	}
}

// WithSeed sets the dataset-generation seed (default 1). The seed is part
// of every cell fingerprint: changing it invalidates stored cells.
func WithSeed(seed int64) Option {
	return func(s *Session) error { s.opt.Seed = seed; return nil }
}

// WithSamples sets the samples collected per benchmark × size × device
// group; the paper uses 50 (§4.3).
func WithSamples(n int) Option {
	return func(s *Session) error {
		if n <= 0 {
			return fmt.Errorf("opendwarfs: non-positive sample count %d", n)
		}
		s.opt.Samples = n
		return nil
	}
}

// WithMinLoopNs sets the minimum simulated duration of one measurement
// loop; the paper uses two seconds (2e9).
func WithMinLoopNs(ns float64) Option {
	return func(s *Session) error {
		if ns <= 0 {
			return fmt.Errorf("opendwarfs: non-positive loop duration %g", ns)
		}
		s.opt.MinLoopNs = ns
		return nil
	}
}

// WithFunctionalBudget sets the operation budget above which functional
// execution is skipped in favour of the timing model. 0 disables
// functional execution (and with it, verification).
func WithFunctionalBudget(ops float64) Option {
	return func(s *Session) error {
		if ops < 0 {
			return fmt.Errorf("opendwarfs: negative functional budget %g", ops)
		}
		s.opt.MaxFunctionalOps = ops
		if ops == 0 {
			s.opt.Verify = false
		}
		return nil
	}
}

// WithVerify toggles serial-reference verification after functional runs.
func WithVerify(v bool) Option {
	return func(s *Session) error { s.opt.Verify = v; return nil }
}

// WithFaults injects deterministic faults into every measurement the
// session makes: transient errors, device dropouts, stragglers and power
// sensor dropouts, per the injector's verdicts. Store hits bypass
// injection. nil (the default) is the clean simulator. Injectors that
// implement `interface{ Validate() error }` (FaultPlan does) are
// validated here.
func WithFaults(inj FaultInjector) Option {
	return func(s *Session) error {
		if v, ok := inj.(interface{ Validate() error }); ok && inj != nil {
			if err := v.Validate(); err != nil {
				return err
			}
		}
		s.faults = inj
		return nil
	}
}

// WithRetry sets the per-cell retry policy: transient faults and attempt
// timeouts are retried with exponential backoff up to MaxAttempts; a cell
// that exhausts its attempts is reported in Grid.Failed instead of
// aborting the run. The zero policy makes a single attempt per cell.
func WithRetry(r RetryPolicy) Option {
	return func(s *Session) error {
		if r.MaxAttempts < 0 {
			return fmt.Errorf("opendwarfs: negative retry attempts %d", r.MaxAttempts)
		}
		if r.Jitter < 0 || r.Jitter > 1 {
			return fmt.Errorf("opendwarfs: retry jitter %g outside [0,1]", r.Jitter)
		}
		s.retry = r
		return nil
	}
}

// WithMetrics attaches a metrics registry: every grid the session runs
// derives harness counters and latency histograms into it (see package
// internal/obs for the metric families). Counters agree exactly with the
// typed event stream and the returned Grid, including partial grids under
// cancellation. One registry may be shared by many sessions; counts then
// aggregate. nil detaches metrics (the default).
func WithMetrics(m *Metrics) Option {
	return func(s *Session) error { s.metrics = m; return nil }
}

// WithTracer attaches a span tracer: grids record a harness.grid root
// with per-cell prepare/measure child spans, closed even under
// cancellation. Export with Tracer.WriteJSONL or WriteChromeTrace (the
// latter loads in Perfetto / chrome://tracing). nil (the default) falls
// back to any tracer carried by the run's context via
// obs.ContextWithTracer; absent both, tracing is off.
func WithTracer(tr *Tracer) Option {
	return func(s *Session) error { s.tracer = tr; return nil }
}

// WithOptions replaces the session's measurement options wholesale — the
// migration path for code that already builds an Options value. Later
// With* options still apply on top.
func WithOptions(opt Options) Option {
	return func(s *Session) error {
		if opt.Samples <= 0 || opt.MinLoopNs <= 0 {
			return fmt.Errorf("opendwarfs: non-positive sampling options")
		}
		s.opt = opt
		return nil
	}
}

// NewSession builds a measurement session from the paper's methodology
// defaults plus the given options.
func NewSession(opts ...Option) (*Session, error) {
	s := &Session{opt: DefaultOptions()}
	for _, o := range opts {
		if err := o(s); err != nil {
			if s.ownsSt {
				s.st.Close()
			}
			return nil, err
		}
	}
	return s, nil
}

// Close releases the session's store, if NewSession opened one. Safe to
// call on store-less sessions and more than once; must not overlap an
// in-flight Run/RunGrid/Stream (cancel and drain those first).
func (s *Session) Close() error {
	s.mu.Lock()
	st, owned := s.st, s.ownsSt
	s.st = nil
	s.mu.Unlock()
	if st == nil || !owned {
		return nil
	}
	return st.Close()
}

// Options returns a copy of the session's effective measurement options.
func (s *Session) Options() Options { return s.opt }

// spec assembles the harness grid spec for one selection.
func (s *Session) spec(sel Selection) harness.GridSpec {
	s.mu.Lock()
	st := s.st
	s.mu.Unlock()
	return harness.GridSpec{
		Benchmarks: sel.Benchmarks,
		Sizes:      sel.Sizes,
		Devices:    sel.Devices,
		Options:    s.opt,
		Workers:    s.workers,
		Store:      st,
		Faults:     s.faults,
		Retry:      s.retry,
		Metrics:    s.metrics,
		Tracer:     s.tracer,
	}
}

// Run measures one benchmark at one size on one device. With a store
// attached the cell is served from disk when present and persisted when
// not. Cancelling ctx aborts between measurement phases.
func (s *Session) Run(ctx context.Context, bench, size, deviceID string) (*Result, error) {
	reg := suite.New()
	b, err := reg.Get(bench)
	if err != nil {
		return nil, err
	}
	dev, err := opencl.LookupDevice(deviceID)
	if err != nil {
		return nil, err
	}
	if !dwarfs.SupportsSize(b, size) {
		return nil, fmt.Errorf("opendwarfs: %s does not support size %q (has %v)", bench, size, b.Sizes())
	}
	s.mu.Lock()
	hasStore := s.st != nil
	s.mu.Unlock()
	if hasStore || s.faults != nil || s.retry.MaxAttempts > 1 {
		// Route the single cell through the grid so the store and
		// fault/retry paths are shared with sweeps.
		g, err := harness.RunGrid(ctx, reg, s.spec(Selection{
			Benchmarks: []string{bench}, Sizes: []string{size}, Devices: []string{deviceID},
		}))
		if err != nil {
			return nil, err
		}
		if len(g.Measurements) == 1 {
			return g.Measurements[0], nil
		}
		f := g.Failed[0]
		return nil, fmt.Errorf("opendwarfs: %s/%s on %s failed after %d attempt(s): %s",
			f.Benchmark, f.Size, f.Device, f.Attempts, f.Reason)
	}
	return harness.Run(ctx, b, size, dev, s.opt)
}

// RunGrid measures the selected benchmark × size × device slice and blocks
// until it completes. When ctx is cancelled mid-grid it returns a valid
// partial Grid — exactly the completed cells, in grid order, all persisted
// when a store is attached — together with ctx's error; re-running the
// same selection afterwards store-hits precisely those cells.
func (s *Session) RunGrid(ctx context.Context, sel Selection) (*Grid, error) {
	return harness.RunGrid(ctx, suite.New(), s.spec(sel))
}

// Stream starts the selected grid and returns its typed event channel:
// EventCellStart when a cell is claimed, EventCellDone / EventStoreHit as
// cells complete (with the measurement, timing and running hit/miss
// counts), and a terminal EventGridDone carrying the resulting Grid —
// partial under cancellation — and error, after which the channel closes.
// Delivery is unbuffered, so observed events pace the run and cancelling
// after the k-th event stops the grid near cell k. Drain the channel
// until it closes (cancelling ctx makes that prompt) to observe the
// resulting grid.
func (s *Session) Stream(ctx context.Context, sel Selection) (<-chan Event, error) {
	return harness.Stream(ctx, suite.New(), s.spec(sel))
}
