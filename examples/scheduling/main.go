// Scheduling: the paper's stated motivation (§7) — "discover methods for
// choosing the best device for a particular computational task, for example
// to support scheduling decisions under time and/or energy constraints."
//
// This example drives internal/sched, the library the dwarfsched CLI and
// the dwarfserve /v1/schedule endpoint are built on: a small bootstrap
// sweep (one device per accelerator class) seeds the cost model, forests
// predict every other (task, device) cell, and the policies place a mixed
// workload across the full 15-device catalogue — the fastest-device argmin
// this example once hand-rolled is now just the weakest of the baselines.
//
//	go run ./examples/scheduling
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"opendwarfs"
	"opendwarfs/internal/harness"
	"opendwarfs/internal/predict"
	"opendwarfs/internal/report"
	"opendwarfs/internal/sched"
	"opendwarfs/internal/suite"
)

func main() {
	sess, err := opendwarfs.NewSession(
		opendwarfs.WithSamples(20),
		opendwarfs.WithFunctionalBudget(0), // whole-catalogue sweep: timing model
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()

	// The batch to place: two runs of each of five dwarfs at large size.
	spec := sched.WorkloadSpec{Tasks: []sched.TaskSpec{
		{Benchmark: "kmeans", Size: "large", Count: 2},
		{Benchmark: "srad", Size: "large", Count: 2},
		{Benchmark: "crc", Size: "large", Count: 2},
		{Benchmark: "nw", Size: "large", Count: 2},
		{Benchmark: "fft", Size: "large", Count: 2},
	}}
	workload, err := spec.Expand(suite.New())
	if err != nil {
		log.Fatal(err)
	}
	fleet, err := sched.Fleet(nil) // all 15 devices
	if err != nil {
		log.Fatal(err)
	}

	// Bootstrap: measure the workload's rows on one device per class; the
	// cost model predicts the other 11 devices from AIWC features.
	bootstrap := []string{"i7-6700k", "gtx1080", "k20m", "knl-7210"}
	known := &harness.Grid{}
	for _, row := range workload.Rows() {
		g, err := sess.RunGrid(ctx, opendwarfs.Selection{
			Benchmarks: []string{row[0]}, Sizes: []string{row[1]}, Devices: bootstrap,
		})
		if err != nil {
			log.Fatal(err)
		}
		known.Merge(g)
	}
	costs, err := sched.NewCosts(known, predict.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Scheduling %d tasks over %d devices from %d measured cells (§7)\n\n",
		len(workload.Tasks), len(fleet), costs.TrainingCells())
	var schedules []*sched.Schedule
	for _, name := range []string{"fastest-device", "greedy", "heft", "energy"} {
		pol, err := sched.LookupPolicy(name)
		if err != nil {
			log.Fatal(err)
		}
		s, err := pol.Schedule(workload, fleet, costs, sched.Options{})
		if err != nil {
			log.Fatal(err)
		}
		schedules = append(schedules, s)
	}
	report.PolicyComparison(os.Stdout, schedules)

	fmt.Println()
	report.ScheduleTimeline(os.Stdout, schedules[2]) // heft

	fmt.Println()
	fmt.Println("fastest-device piles everything onto the one best card; heft spreads")
	fmt.Println("the queue and wins the makespan; energy trades some of that back for")
	fmt.Println("Joules within its budget. crc still lands on a CPU while the")
	fmt.Println("bandwidth-bound dwarfs pick modern GPUs — the per-dwarf affinities of §5.")
}
