// Scheduling: the paper's stated motivation (§7) — "discover methods for
// choosing the best device for a particular computational task, for example
// to support scheduling decisions under time and/or energy constraints."
//
// This example measures a benchmark slate across all 15 devices through a
// Session and then answers three scheduling questions per benchmark:
// fastest device, most energy-frugal device, and most energy-frugal device
// under a time budget.
//
//	go run ./examples/scheduling
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"opendwarfs"
)

func main() {
	sess, err := opendwarfs.NewSession(
		opendwarfs.WithSamples(20),
		opendwarfs.WithFunctionalBudget(0), // whole-catalogue sweep: timing model
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	benches := []string{"kmeans", "srad", "crc", "nw", "fft"}
	grid, err := sess.RunGrid(context.Background(), opendwarfs.Selection{
		Benchmarks: benches,
		Sizes:      []string{"large"},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Device selection under constraints (paper §7), large problem size")
	fmt.Println()
	for _, bench := range benches {
		ms := grid.ByBenchmark(bench)
		var fastest, frugal, frugalInBudget *opendwarfs.Result
		// Time budget: 2x the fastest median.
		best := math.Inf(1)
		for _, m := range ms {
			if m.Kernel.Median < best {
				best = m.Kernel.Median
			}
		}
		budget := 2 * best
		for _, m := range ms {
			if fastest == nil || m.Kernel.Median < fastest.Kernel.Median {
				fastest = m
			}
			if frugal == nil || m.Energy.Median < frugal.Energy.Median {
				frugal = m
			}
			if m.Kernel.Median <= budget &&
				(frugalInBudget == nil || m.Energy.Median < frugalInBudget.Energy.Median) {
				frugalInBudget = m
			}
		}
		fmt.Printf("%-7s fastest: %-12s %8.3f ms | frugal: %-12s %7.4f J | frugal within 2x-time budget: %-12s\n",
			bench,
			fastest.Device.ID, fastest.Kernel.Median/1e6,
			frugal.Device.ID, frugal.Energy.Median,
			frugalInBudget.Device.ID)
	}

	fmt.Println()
	fmt.Println("Note how crc schedules onto a CPU while the bandwidth-bound dwarfs")
	fmt.Println("pick modern GPUs — the per-dwarf affinities of §5.")
}
