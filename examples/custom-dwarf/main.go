// Custom dwarf: the suite's extension point. §2 of the paper aims "to
// achieve a full representation of each dwarf, both by integrating other
// benchmark suites and adding custom kernels"; this example adds a Graph
// Traversal benchmark — a dwarf the published suite does not yet cover — as
// an out-of-tree type implementing dwarfs.Benchmark, and runs it through the
// exact harness the built-ins use (≥2 s loops, 50 samples, verification
// against a serial BFS).
//
//	go run ./examples/custom-dwarf
package main

import (
	"context"

	"fmt"
	"log"
	"math/rand"

	"opendwarfs/internal/cache"
	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/harness"
	"opendwarfs/internal/opencl"
	"opendwarfs/internal/sim"
)

// bfs is a level-synchronous breadth-first search over a random graph in
// CSR adjacency form: one kernel launch per frontier level, one work-item
// per vertex — the classic OpenCL formulation (Rodinia's bfs).
type bfs struct{}

var verticesBySize = map[string]int{
	dwarfs.SizeTiny:   1024,
	dwarfs.SizeSmall:  8192,
	dwarfs.SizeMedium: 131072,
	dwarfs.SizeLarge:  1 << 20,
}

func (bfs) Name() string                   { return "bfs" }
func (bfs) Dwarf() string                  { return "Graph Traversal" }
func (bfs) Sizes() []string                { return dwarfs.Sizes() }
func (bfs) ScaleParameter(s string) string { return fmt.Sprintf("%d", verticesBySize[s]) }
func (bfs) ArgString(s string) string      { return fmt.Sprintf("-v %d -d 8", verticesBySize[s]) }

func (bfs) New(size string, seed int64) (dwarfs.Instance, error) {
	n, ok := verticesBySize[size]
	if !ok {
		return nil, fmt.Errorf("bfs: unsupported size %q", size)
	}
	return newBFSInstance(n, 8, seed), nil
}

type bfsInstance struct {
	n      int
	rowPtr []int32
	edges  []int32

	dist     []int32
	frontier []int32 // 1 if vertex is in the current frontier
	next     []int32
	changed  int32 // host-observed; device writes any nonzero

	bufs   []*opencl.Buffer
	kernel *opencl.Kernel
	ran    bool
}

// newBFSInstance generates a random graph with average degree deg.
func newBFSInstance(n, deg int, seed int64) *bfsInstance {
	rng := rand.New(rand.NewSource(seed))
	in := &bfsInstance{n: n}
	in.rowPtr = make([]int32, n+1)
	for v := 0; v < n; v++ {
		d := rng.Intn(2*deg + 1)
		for e := 0; e < d; e++ {
			in.edges = append(in.edges, int32(rng.Intn(n)))
		}
		in.rowPtr[v+1] = int32(len(in.edges))
	}
	return in
}

func (in *bfsInstance) FootprintBytes() int64 {
	return int64(len(in.rowPtr))*4 + int64(len(in.edges))*4 + 3*int64(in.n)*4
}

func (in *bfsInstance) Setup(ctx *opencl.Context, q *opencl.CommandQueue) error {
	allocI := func(name string, n int) []int32 {
		b, s := opencl.NewBuffer[int32](ctx, name, n)
		in.bufs = append(in.bufs, b)
		q.EnqueueWrite(b)
		return s
	}
	rp := allocI("rowptr", len(in.rowPtr))
	copy(rp, in.rowPtr)
	in.rowPtr = rp
	ed := allocI("edges", len(in.edges))
	copy(ed, in.edges)
	in.edges = ed
	in.dist = allocI("dist", in.n)
	in.frontier = allocI("frontier", in.n)
	in.next = allocI("next", in.n)

	in.kernel = &opencl.Kernel{
		Name: "bfs_level",
		Fn: func(wi *opencl.Item) {
			v := wi.GlobalID(0)
			if in.frontier[v] == 0 {
				return
			}
			d := in.dist[v]
			for e := in.rowPtr[v]; e < in.rowPtr[v+1]; e++ {
				u := in.edges[e]
				if in.dist[u] == -1 {
					// Benign race as in the original kernels: all writers
					// store the same level value.
					in.dist[u] = d + 1
					in.next[u] = 1
					in.changed = 1
				}
			}
		},
		Profile: func(ndr opencl.NDRange) *sim.KernelProfile {
			deg := float64(len(in.edges)) / float64(in.n)
			return &sim.KernelProfile{
				Name: "bfs_level", WorkItems: ndr.TotalItems(),
				IntOpsPerItem:    4 * deg,
				LoadBytesPerItem: 8 + 8*deg, StoreBytesPerItem: deg,
				WorkingSetBytes: in.FootprintBytes(),
				Pattern:         cache.Random, // neighbour gathers
				TemporalReuse:   0.2,
				BranchesPerItem: 1 + deg, Divergence: 0.6,
				Vectorizable: true,
			}
		},
	}
	return nil
}

func (in *bfsInstance) Iterate(q *opencl.CommandQueue) error {
	if in.kernel == nil {
		return fmt.Errorf("bfs: Iterate before Setup")
	}
	if !q.SimulateOnly() {
		for i := range in.dist {
			in.dist[i] = -1
			in.frontier[i] = 0
			in.next[i] = 0
		}
		in.dist[0] = 0
		in.frontier[0] = 1
	}
	local := 64
	for in.n%local != 0 {
		local /= 2
	}
	// Level-synchronous sweep: functional runs go until the frontier
	// drains; simulate-only mode runs a representative 8 levels (random
	// graphs at degree 8 finish in ~log n levels).
	levels := 8
	if !q.SimulateOnly() {
		levels = in.n
	}
	for level := 0; level < levels; level++ {
		if !q.SimulateOnly() {
			in.changed = 0
		}
		if _, err := q.EnqueueNDRange(in.kernel, opencl.NDR1(in.n, local)); err != nil {
			return err
		}
		if !q.SimulateOnly() {
			copy(in.frontier, in.next)
			for i := range in.next {
				in.next[i] = 0
			}
			if in.changed == 0 {
				break
			}
		}
	}
	in.ran = true
	return nil
}

func (in *bfsInstance) Verify() error {
	if !in.ran {
		return fmt.Errorf("bfs: Verify before Iterate")
	}
	// Serial BFS reference.
	want := make([]int32, in.n)
	for i := range want {
		want[i] = -1
	}
	want[0] = 0
	queue := []int32{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for e := in.rowPtr[v]; e < in.rowPtr[v+1]; e++ {
			u := in.edges[e]
			if want[u] == -1 {
				want[u] = want[v] + 1
				queue = append(queue, u)
			}
		}
	}
	for v := range want {
		if want[v] != in.dist[v] {
			return fmt.Errorf("bfs: vertex %d at distance %d, reference %d", v, in.dist[v], want[v])
		}
	}
	return nil
}

func main() {
	fmt.Println("Custom dwarf: Graph Traversal (BFS) plugged into the suite harness")
	fmt.Println()

	var b bfs
	opt := harness.DefaultOptions()
	opt.Samples = 20
	for _, deviceID := range []string{"i7-6700k", "gtx1080", "k20m"} {
		dev, err := opencl.LookupDevice(deviceID)
		if err != nil {
			log.Fatal(err)
		}
		m, err := harness.Run(context.Background(), b, dwarfs.SizeSmall, dev, opt)
		if err != nil {
			log.Fatal(err)
		}
		tag := "simulated"
		if m.Verified {
			tag = "verified vs serial BFS"
		}
		fmt.Printf("%-10s bfs/small kernel median %8.4f ms  energy %7.4f J  (%s)\n",
			deviceID, m.Kernel.Median/1e6, m.Energy.Median, tag)
	}
	fmt.Println()
	fmt.Println("Everything — the 2 s loop, 50-sample statistics, energy metering,")
	fmt.Println("counters and verification — came from the suite harness; the new")
	fmt.Println("benchmark only provided kernels, a profile and a serial reference.")
}
