// Portability: the paper's §7 goal of a "notion of 'ideal' performance for
// each combination of benchmark and device, which would guide efforts to
// improve performance portability", made concrete: roofline attainment per
// kernel per device and the Pennycook harmonic-mean performance-portability
// score across the whole Table 1 catalogue.
//
//	go run ./examples/portability
package main

import (
	"context"

	"fmt"
	"log"
	"os"

	"opendwarfs/internal/harness"
	"opendwarfs/internal/report"
	"opendwarfs/internal/suite"
)

func main() {
	opt := harness.DefaultOptions()
	opt.Samples = 8
	opt.MaxFunctionalOps = 0 // characterisation pass only
	opt.Verify = false

	// One size per benchmark keeps this quick; profiles are what matter.
	// Workers: 0 measures cells on all CPUs, one shared preparation per
	// benchmark × size row.
	grid, err := harness.RunGrid(context.Background(), suite.New(), harness.GridSpec{
		Sizes:   []string{"small", "tiny"}, // tiny covers nqueens
		Options: opt,
		Workers: 0,
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := report.RooflineTable(os.Stdout, grid); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("Reading the table: PP near 1 means every device runs the kernel at")
	fmt.Println("its own roofline (portable); a low PP pinpoints the kernels where a")
	fmt.Println("device-specific limitation (launch overhead, divergence, the KNL's")
	fmt.Println("vector stack) leaves ideal performance on the floor — the paper's")
	fmt.Println("guide for where performance-portability work should go.")
}
