// Streaming: live per-cell progress from the typed event channel — the
// observability surface the legacy Progress io.Writer could not offer.
// A Session streams a small grid; the consumer renders each event as it
// arrives (claimed, measured, served from store), keeps a running progress
// bar, and demonstrates clean mid-grid cancellation: press Ctrl-C and the
// terminal grid_done event still delivers the valid partial grid.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"opendwarfs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sess, err := opendwarfs.NewSession(
		opendwarfs.WithSamples(12),
		opendwarfs.WithFunctionalBudget(0), // timing model: fast, whole slate
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	events, err := sess.Stream(ctx, opendwarfs.Selection{
		Benchmarks: []string{"kmeans", "srad", "fft", "crc"},
		Sizes:      []string{"tiny", "large"},
		Devices:    []string{"i7-6700k", "gtx1080", "k20m", "r9-290x"},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Streaming a 32-cell grid (Ctrl-C to cancel mid-grid):")
	for ev := range events {
		switch ev.Kind {
		case opendwarfs.EventCellStart:
			// A worker claimed the cell; useful for live dashboards that
			// show in-flight work, skipped here to keep the log compact.
		case opendwarfs.EventCellDone, opendwarfs.EventStoreHit:
			src := "measured"
			if ev.Kind == opendwarfs.EventStoreHit {
				src = "store"
			}
			fmt.Printf("[%-24s] %2d/%d  %-7s %-6s %-10s %10.3f ms  (%s, %s)\n",
				bar(ev.Done, ev.Total, 24), ev.Done, ev.Total,
				ev.Benchmark, ev.Size, ev.Device,
				ev.Measurement.Kernel.Median/1e6, src, ev.Elapsed.Round(1e5))
		case opendwarfs.EventGridDone:
			switch {
			case ev.Err == nil:
				fmt.Printf("\ngrid done: %d cells in %s\n", ev.Grid.Cells(), ev.Elapsed.Round(1e6))
			case errors.Is(ev.Err, context.Canceled):
				fmt.Printf("\ncancelled: partial grid holds the %d completed cells — still usable:\n",
					ev.Grid.Cells())
				for _, m := range ev.Grid.Measurements {
					fmt.Printf("  %-7s %-6s %-10s %10.3f ms\n", m.Benchmark, m.Size, m.Device.ID, m.Kernel.Median/1e6)
				}
			default:
				log.Fatal(ev.Err)
			}
		}
	}
}

// bar renders done/total as a fixed-width progress bar.
func bar(done, total, width int) string {
	if total <= 0 {
		return strings.Repeat(" ", width)
	}
	n := done * width / total
	return strings.Repeat("█", n) + strings.Repeat("·", width-n)
}
