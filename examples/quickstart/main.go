// Quickstart: run one benchmark on a CPU and a GPU and compare, the
// "hello world" of the Extended OpenDwarfs suite — on the context-aware
// Session API.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"opendwarfs"
)

func main() {
	ctx := context.Background()
	sess, err := opendwarfs.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	fmt.Println("Extended OpenDwarfs quickstart: kmeans (MapReduce dwarf), tiny size")
	fmt.Println("(tiny = working set sized for the Skylake 32 KiB L1, §4.4)")
	fmt.Println()

	for _, deviceID := range []string{"i7-6700k", "gtx1080"} {
		res, err := sess.Run(ctx, "kmeans", "tiny", deviceID)
		if err != nil {
			log.Fatal(err)
		}
		mode := "timing model"
		if res.Verified {
			mode = "verified against serial reference"
		}
		fmt.Printf("%-10s  kernel median %8.4f ms  CV %5.3f  energy %7.4f J  (%s)\n",
			deviceID, res.Kernel.Median/1e6, res.Kernel.CV, res.Energy.Median, mode)
	}

	fmt.Println()
	fmt.Println("Now the large size, where device differences matter (§5.1):")
	for _, deviceID := range []string{"i7-6700k", "gtx1080"} {
		res, err := sess.Run(ctx, "srad", "large", deviceID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  srad/large kernel median %8.4f ms  energy %7.4f J\n",
			deviceID, res.Kernel.Median/1e6, res.Energy.Median)
	}
	fmt.Println()
	fmt.Println("srad is bandwidth-bound (Structured Grid dwarf): the GPU's memory")
	fmt.Println("system pulls ahead exactly as Figure 3a of the paper shows.")
}
