// Autotune: the paper's §7 plan — "certain configuration parameters for the
// benchmarks, e.g. local workgroup size, are amenable to auto-tuning" — run
// against the srad stencil kernel on three very different devices. The tuner
// sweeps the legal power-of-two work-group sizes and reports the predicted
// kernel time per configuration.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	"opendwarfs/internal/autotune"
	"opendwarfs/internal/cache"
	"opendwarfs/internal/sim"
)

func main() {
	// The srad1 kernel on the large grid (2048×1024, Table 2).
	profile := &sim.KernelProfile{
		Name:             "srad1",
		WorkItems:        2048 * 1024,
		FlopsPerItem:     28,
		IntOpsPerItem:    10,
		LoadBytesPerItem: 20, StoreBytesPerItem: 20,
		WorkingSetBytes: 6 * 2048 * 1024 * 4,
		Pattern:         cache.Stencil,
		TemporalReuse:   0.55,
		Vectorizable:    true,
	}
	global := 2048 * 1024

	fmt.Println("Work-group size autotuning (paper §7) — srad1, large grid")
	for _, id := range []string{"i7-6700k", "gtx1080", "r9-290x"} {
		spec, err := sim.Lookup(id)
		if err != nil {
			log.Fatal(err)
		}
		candidates, err := autotune.Sweep(spec, profile, global)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s (warp/wavefront %d):\n", spec.Name, autotune.WarpSize(spec))
		fmt.Printf("  %-6s %-10s %s\n", "local", "efficiency", "predicted kernel time")
		for i, c := range candidates {
			marker := ""
			if i == 0 {
				marker = "  <-- selected"
			}
			fmt.Printf("  %-6d %-10.3f %10.4f ms%s\n", c.LocalSize, c.Efficiency, c.PredictedNs/1e6, marker)
			if i == 5 {
				break
			}
		}
	}
	fmt.Println()
	fmt.Println("The winning size is device-specific: warp-multiple on Nvidia,")
	fmt.Println("wavefront-multiple on AMD GCN, anything past the residency knee on CPUs.")
}
