// Command dwarfpredict closes the loop the paper's §7 opens: it measures a
// benchmark × size × device grid, assembles AIWC + device feature vectors
// from it, trains a deterministic random-forest regressor over log kernel
// time, and evaluates cross-device generalisation with leave-one-out
// cross-validation.
//
//	dwarfpredict                                # full grid, LODO + LOBO report
//	dwarfpredict -sizes tiny -mode lodo         # fast device-transfer check
//	dwarfpredict -holdout gtx1080 -benchmarks fft  # predict fft on an unseen device
//	dwarfpredict -csv preds.csv -jsonl preds.jsonl -dataset train.csv
//	dwarfpredict -sizes tiny -assert-mape 50    # CI smoke: exit 1 above ceiling
//
// The grid is measured by -parallel workers (RunGrid); forest training and
// cross-validation folds use the same worker-pool discipline. Every output
// is deterministic in (-seed, grid selection) and independent of worker
// count.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"opendwarfs/internal/harness"
	"opendwarfs/internal/predict"
	"opendwarfs/internal/report"
	"opendwarfs/internal/scibench"
	"opendwarfs/internal/store"
	"opendwarfs/internal/suite"
)

func main() {
	def := predict.DefaultConfig()
	var (
		benchmarks = flag.String("benchmarks", "", "comma-separated benchmark names (default: all)")
		sizes      = flag.String("sizes", "", "comma-separated sizes (default: all supported)")
		devices    = flag.String("devices", "", "comma-separated device IDs (default: all 15)")
		parallel   = flag.Int("parallel", 0, "concurrent workers for grid, trees and folds (0 = GOMAXPROCS)")
		samples    = flag.Int("samples", scibench.PaperSampleSize(), "samples per grid cell")
		trees      = flag.Int("trees", def.Trees, "forest size")
		depth      = flag.Int("depth", def.MaxDepth, "maximum tree depth")
		minLeaf    = flag.Int("minleaf", def.MinLeaf, "minimum samples per leaf")
		seed       = flag.Int64("seed", def.Seed, "training seed (also the dataset seed)")
		mode       = flag.String("mode", "both", "cross-validation scheme: lodo, lobo, or both")
		holdout    = flag.String("holdout", "", "device ID: train without it, print its predicted vs actual cells")
		topN       = flag.Int("importance", 12, "feature-importance rows to print (0 = none)")
		csvPath    = flag.String("csv", "", "write cross-validation predictions as CSV")
		jsonlPath  = flag.String("jsonl", "", "write cross-validation predictions as JSONL")
		dataPath   = flag.String("dataset", "", "write the assembled training matrix as CSV")
		assertMAPE = flag.Float64("assert-mape", 0, "fail unless LODO median per-device LogMAPE ≤ this (%; 0 = off)")
		progress   = flag.Bool("progress", false, "print per-cell grid progress")
		storeDir   = flag.String("store", "", "persistent result store directory: reuse cells measured by dwarfsweep/dwarfbench, persist the rest")
	)
	flag.Parse()

	// Fail flag mistakes before the expensive grid measurement.
	if *mode != "lodo" && *mode != "lobo" && *mode != "both" {
		fatal(fmt.Errorf("unknown -mode %q (want lodo, lobo or both)", *mode))
	}
	if *holdout != "" && *assertMAPE > 0 {
		fatal(fmt.Errorf("-assert-mape gates cross-validation and cannot be combined with -holdout"))
	}

	opt := harness.DefaultOptions()
	opt.Samples = *samples
	opt.Seed = *seed
	var progW io.Writer
	if *progress {
		progW = os.Stderr
	}
	spec := harness.GridSpec{
		Benchmarks: split(*benchmarks),
		Sizes:      split(*sizes),
		Devices:    split(*devices),
		Options:    opt,
		Workers:    *parallel,
		Progress:   progW,
	}
	if *storeDir != "" {
		base, err := store.Open(*storeDir)
		if err != nil {
			fatal(err)
		}
		st := store.Cached(base)
		defer st.Close()
		spec.Store = st
	}

	// Ctrl-C cancels the measurement sweep; with -store the completed
	// cells persist and a re-run resumes from them.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	grid, err := harness.RunGrid(ctx, suite.New(), spec)
	if err != nil {
		if grid != nil && grid.Cells() > 0 && *storeDir != "" {
			fatal(fmt.Errorf("%w (%d completed cells persisted)", err, grid.Cells()))
		}
		fatal(err)
	}
	report.StoreStats(os.Stdout, grid)
	ds, err := predict.FromGrid(grid)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Training data: %d cells (%d benchmarks × %d devices), %d features each\n",
		len(ds.Rows), len(ds.Benchmarks()), len(ds.Devices()), len(ds.FeatureNames))

	cfg := predict.Config{
		Trees: *trees, MaxDepth: *depth, MinLeaf: *minLeaf,
		FeatureFrac: def.FeatureFrac, Seed: *seed, Workers: *parallel,
	}

	if *dataPath != "" {
		writeFile(*dataPath, func(f *os.File) error { return predict.WriteDatasetCSV(f, ds) })
		fmt.Printf("Training matrix written to %s\n", *dataPath)
	}

	if *holdout != "" {
		preds := predictHoldout(ds, cfg, *holdout)
		writeExports(*csvPath, *jsonlPath, preds)
		return
	}

	if *topN > 0 {
		forest, err := predict.Train(ds, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		report.FeatureImportanceTable(os.Stdout, forest, *topN)
	}

	var lodo *predict.CVResult
	var preds []predict.Prediction
	if *mode == "lodo" || *mode == "both" {
		lodo, err = predict.LeaveOneDeviceOut(ds, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		report.PredictionAccuracy(os.Stdout, lodo)
		preds = append(preds, lodo.Predictions()...)
	}
	if *mode == "lobo" || *mode == "both" {
		lobo, err := predict.LeaveOneBenchmarkOut(ds, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		report.PredictionAccuracy(os.Stdout, lobo)
		preds = append(preds, lobo.Predictions()...)
	}

	writeExports(*csvPath, *jsonlPath, preds)

	if *assertMAPE > 0 {
		if lodo == nil {
			fatal(fmt.Errorf("-assert-mape requires -mode lodo or both"))
		}
		got := lodo.MedianFoldLogMAPE()
		if got > *assertMAPE {
			fatal(fmt.Errorf("LODO median per-device LogMAPE %.2f%% exceeds ceiling %.2f%%", got, *assertMAPE))
		}
		fmt.Printf("\nLODO median per-device LogMAPE %.2f%% within ceiling %.2f%%\n", got, *assertMAPE)
	}
}

// predictHoldout trains with one device's cells excluded and prints (and
// returns, for export) the predicted-versus-actual pairs for exactly those
// cells — the §7 scenario of estimating a benchmark's runtime on hardware
// it never ran on.
func predictHoldout(ds *predict.Dataset, cfg predict.Config, device string) []predict.Prediction {
	held, rest := ds.Split(func(r *predict.Row) bool { return r.Device == device })
	if len(held) == 0 {
		known := ds.Devices()
		sort.Strings(known)
		fatal(fmt.Errorf("device %q has no cells in the measured grid (known: %s)",
			device, strings.Join(known, ", ")))
	}
	forest, err := predict.TrainRows(ds.FeatureNames, rest, cfg)
	if err != nil {
		fatal(err)
	}
	var preds []predict.Prediction
	for i := range held {
		r := &held[i]
		logPred := forest.Predict(r.Features)
		pNs := math.Exp(logPred)
		preds = append(preds, predict.Prediction{
			Benchmark: r.Benchmark, Size: r.Size, Device: r.Device, Fold: device,
			ActualNs: r.MedianNs, PredNs: pNs,
			APE:    100 * math.Abs(pNs-r.MedianNs) / r.MedianNs,
			LogAPE: 100 * math.Abs(logPred-r.LogNs) / math.Abs(r.LogNs),
		})
	}
	fmt.Printf("\nPredictions for held-out device %s (trained on %d cells from %d other devices)\n",
		device, len(rest), len(ds.Devices())-1)
	report.HeldOutPredictions(os.Stdout, preds)
	return preds
}

// writeExports writes predicted-versus-actual pairs to the requested
// CSV/JSONL paths, if any.
func writeExports(csvPath, jsonlPath string, preds []predict.Prediction) {
	if csvPath != "" {
		writeFile(csvPath, func(f *os.File) error { return predict.WritePredictionsCSV(f, preds) })
		fmt.Printf("\nPredictions written to %s\n", csvPath)
	}
	if jsonlPath != "" {
		writeFile(jsonlPath, func(f *os.File) error { return predict.WritePredictionsJSONL(f, preds) })
		fmt.Printf("Predictions written to %s\n", jsonlPath)
	}
}

func writeFile(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		fatal(err)
	}
}

func split(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dwarfpredict:", err)
	os.Exit(1)
}
