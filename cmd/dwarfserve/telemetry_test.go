package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"opendwarfs/internal/obs"
	"opendwarfs/internal/obs/series"
	"opendwarfs/internal/obs/slo"
)

// fakeClock steps one interval per call, giving the server sampler a
// deterministic time base.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Second)
	return c.t
}

// fakeTelemetry swaps the server's recorder + engine for fake-clocked
// ones; tests then drive srv.sampleTick by hand.
func fakeTelemetry(t *testing.T, srv *server, capacity int, rules []slo.Rule) *fakeClock {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	if err := srv.initTelemetry(series.Options{
		Capacity: capacity, Interval: time.Second, Clock: clk.Now,
	}, rules); err != nil {
		t.Fatal(err)
	}
	return clk
}

// promCounters parses counter values out of Prometheus text exposition —
// the scrape side of the reconciliation check.
func promCounters(t *testing.T, text string) map[string]int64 {
	t.Helper()
	counters := map[string]int64{}
	typ := map[string]string{}
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			if f := strings.Fields(rest); len(f) == 2 {
				typ[f[0]] = f[1]
			}
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		name, val := line[:sp], line[sp+1:]
		base := name
		if b := strings.IndexByte(name, '{'); b >= 0 {
			base = name[:b]
		}
		if typ[base] != "counter" {
			continue
		}
		n, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparseable counter line %q: %v", line, err)
		}
		counters[name] = int64(n)
	}
	return counters
}

// streamClient is a raw SSE reader over /v1/metrics/stream that
// accumulates the snapshot+delta protocol the way dwarftop does.
type streamClient struct {
	resp    *http.Response
	scanner *bufio.Scanner
	acc     map[string]int64 // reconciled absolute counter values
	lastSeq uint64
}

func dialStream(t *testing.T, base, lastEventID string) *streamClient {
	t.Helper()
	req, err := http.NewRequest("GET", base+"/v1/metrics/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	return &streamClient{resp: resp, scanner: bufio.NewScanner(resp.Body), acc: map[string]int64{}}
}

// readFrames consumes n event frames, folding each into the
// accumulator: snapshots reset it, deltas add. Returns the event names.
func (c *streamClient) readFrames(t *testing.T, n int) []string {
	t.Helper()
	var kinds []string
	event := ""
	for len(kinds) < n && c.scanner.Scan() {
		line := c.scanner.Text()
		if rest, ok := strings.CutPrefix(line, "event: "); ok {
			event = rest
			continue
		}
		rest, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		var p series.Point
		if err := json.Unmarshal([]byte(rest), &p); err != nil {
			t.Fatalf("bad stream frame %q: %v", rest, err)
		}
		if p.Snapshot {
			c.acc = map[string]int64{}
			for k, v := range p.Counters {
				c.acc[k] = v
			}
		} else {
			for k, v := range p.Counters {
				c.acc[k] += v
			}
		}
		c.lastSeq = p.Seq
		kinds = append(kinds, event)
	}
	if len(kinds) < n {
		t.Fatalf("stream ended after %d of %d frames (err %v)", len(kinds), n, c.scanner.Err())
	}
	return kinds
}

// assertReconciled compares the accumulator with a /metrics scrape taken
// at the same sample boundary: every scraped counter must match the
// accumulated value exactly (int64 equality, no tolerance).
func (c *streamClient) assertReconciled(t *testing.T, scrape map[string]int64) {
	t.Helper()
	for name, want := range scrape {
		if got := c.acc[name]; got != want {
			t.Errorf("counter %s: accumulated %d, scraped %d", name, got, want)
		}
	}
	for name, got := range c.acc {
		if _, ok := scrape[name]; !ok && got != 0 {
			t.Errorf("accumulated counter %s=%d missing from scrape", name, got)
		}
	}
}

// waitStreamCounted blocks until the middleware has counted n finished
// /v1/metrics/stream requests. A closed client body unwinds the server
// handler asynchronously, and the request counter only bumps when it
// does — the reconciliation tests must not take their settling sample
// before that, or the final scrape would be one request ahead of the
// last sample boundary.
func waitStreamCounted(t *testing.T, srv *server, n int64) {
	t.Helper()
	name := obs.Name("http_requests_total", "route", "GET /v1/metrics/stream", "code", "200")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.metrics.CounterValue(name) >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("stream request %d never counted (counter %s at %d)", n, name, srv.metrics.CounterValue(name))
}

// TestMetricsStreamReconciliation is the acceptance criterion in full:
// a streaming client's accumulator — seeded by the snapshot frame, fed
// delta frames, dropped mid-stream and resumed with Last-Event-ID —
// reproduces the final GET /metrics counter values exactly, across a
// chaos job that exercises retries, failures and quarantine.
func TestMetricsStreamReconciliation(t *testing.T) {
	srv, _ := newTestServer(t)
	srv.keepAlive = 20 * time.Millisecond
	fakeTelemetry(t, srv, 64, defaultAlertRules())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Take a baseline sample so the snapshot has state, then subscribe.
	srv.sampleTick()
	c := dialStream(t, ts.URL, "")
	if kinds := c.readFrames(t, 1); kinds[0] != "snapshot" {
		t.Fatalf("first frame %q, want snapshot", kinds[0])
	}

	// A chaos job churns the registry: store hits, failures, retries,
	// a quarantine. Sample after it settles; the delta frame arrives live.
	id := postJob(t, srv,
		`{"benchmarks":["crc","fft"],"sizes":["tiny"],"devices":["i7-6700k","k20m"],"samples":6,`+
			`"retries":2,"chaos":{"seed":11,"drop":["k20m"]}}`,
		http.StatusAccepted)
	waitJob(t, srv, id)
	srv.sampleTick()
	if kinds := c.readFrames(t, 1); kinds[0] != "sample" {
		t.Fatalf("delta frame %q, want sample", kinds[0])
	}
	c.assertReconciled(t, promCounters(t, getRaw(t, srv, "/metrics")))

	// Mid-stream drop. Two samples land while nobody is connected.
	c.resp.Body.Close()
	waitStreamCounted(t, srv, 1)
	resumeFrom := c.lastSeq
	id = postJob(t, srv,
		`{"benchmarks":["crc"],"sizes":["tiny"],"devices":["i7-6700k"],"samples":6}`,
		http.StatusAccepted)
	waitJob(t, srv, id)
	srv.sampleTick()
	srv.sampleTick()

	// Resume with Last-Event-ID: the missed deltas replay from the ring
	// (no snapshot — the ring still holds them) and reconcile exactly.
	c2 := dialStream(t, ts.URL, strconv.FormatUint(resumeFrom, 10))
	c2.acc = c.acc // carry the accumulator across the reconnect
	if kinds := c2.readFrames(t, 2); kinds[0] != "sample" || kinds[1] != "sample" {
		t.Fatalf("resumed frames %v, want two deltas", kinds)
	}
	c2.assertReconciled(t, promCounters(t, getRaw(t, srv, "/metrics")))
	c2.resp.Body.Close()
}

// TestMetricsStreamResync: a client reconnecting from beyond the ring's
// retention gets a fresh snapshot frame (not deltas) and still
// reconciles after resetting its accumulator.
func TestMetricsStreamResync(t *testing.T) {
	srv, _ := newTestServer(t)
	srv.keepAlive = 20 * time.Millisecond
	fakeTelemetry(t, srv, 4, defaultAlertRules())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	srv.sampleTick()
	c := dialStream(t, ts.URL, "")
	c.readFrames(t, 1)
	c.resp.Body.Close()
	waitStreamCounted(t, srv, 1)
	resumeFrom := c.lastSeq

	// Ten samples overflow the 4-slot ring; seq resumeFrom is long gone.
	for i := 0; i < 10; i++ {
		srv.metrics.Counter("jobs_created_total").Inc() // synthetic movement
		srv.sampleTick()
	}
	c2 := dialStream(t, ts.URL, strconv.FormatUint(resumeFrom, 10))
	c2.acc = c.acc
	if kinds := c2.readFrames(t, 1); kinds[0] != "snapshot" {
		t.Fatalf("resync frame %q, want snapshot", kinds[0])
	}
	c2.assertReconciled(t, promCounters(t, getRaw(t, srv, "/metrics")))
	c2.resp.Body.Close()

	// Malformed Last-Event-ID is a client error.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/metrics/stream", nil)
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad Last-Event-ID status %d, want 400", resp.StatusCode)
	}
}

// TestSamplerFakeClockDeterminism: under an injected clock the sampler's
// timestamps are exactly the clock's values — wall time never leaks in.
func TestSamplerFakeClockDeterminism(t *testing.T) {
	srv, _ := newTestServer(t)
	fakeTelemetry(t, srv, 16, defaultAlertRules())
	base := int64(1_700_000_000) * int64(time.Second)
	for i := 1; i <= 5; i++ {
		srv.sampleTick()
		seq, ns := srv.series.LastSample()
		if seq != uint64(i) {
			t.Fatalf("tick %d: seq %d", i, seq)
		}
		if want := base + int64(i)*int64(time.Second); ns != want {
			t.Fatalf("tick %d: unix_ns %d, want %d (fake clock)", i, ns, want)
		}
	}
	// Re-running the identical schedule reproduces identical timestamps.
	srv2, _ := newTestServer(t)
	fakeTelemetry(t, srv2, 16, defaultAlertRules())
	for i := 1; i <= 5; i++ {
		srv2.sampleTick()
	}
	_, ns1 := srv.series.LastSample()
	_, ns2 := srv2.series.LastSample()
	if ns1 != ns2 {
		t.Fatalf("fake-clock runs diverged: %d vs %d", ns1, ns2)
	}
}

// TestHistoryEndpoint: windowed summaries over a few fake-clock samples.
func TestHistoryEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	fakeTelemetry(t, srv, 64, defaultAlertRules())

	srv.sampleTick()
	for i := 0; i < 3; i++ {
		srv.metrics.Counter("jobs_created_total").Add(2)
		srv.metrics.Histogram("harness_cell_ns", nil).Observe(1e6)
		srv.sampleTick()
	}

	body := get(t, srv, "/v1/metrics/history?window=10s", http.StatusOK)
	if body["populated"] != true {
		t.Fatalf("history not populated: %v", body)
	}
	sum := body["summary"].(map[string]any)
	var jc map[string]any
	for _, raw := range sum["counters"].([]any) {
		if c := raw.(map[string]any); c["name"] == "jobs_created_total" {
			jc = c
		}
	}
	if jc == nil || jc["delta"].(float64) != 6 || jc["value"].(float64) != 6 {
		t.Fatalf("jobs_created_total window %v, want delta 6", jc)
	}
	if jc["rate_per_sec"].(float64) != 2 {
		t.Fatalf("rate %v, want 2/s over 1s fake ticks", jc["rate_per_sec"])
	}
	foundHist := false
	for _, raw := range sum["histograms"].([]any) {
		h := raw.(map[string]any)
		if h["name"] == "harness_cell_ns" && h["count"].(float64) == 3 && h["p50"].(float64) > 0 {
			foundHist = true
		}
	}
	if !foundHist {
		t.Fatalf("harness_cell_ns percentiles missing: %v", sum["histograms"])
	}

	get(t, srv, "/v1/metrics/history?window=bogus", http.StatusBadRequest)
	get(t, srv, "/v1/metrics/history?window=-5s", http.StatusBadRequest)

	// A fresh recorder has no interval to summarize yet.
	fakeTelemetry(t, srv, 64, defaultAlertRules())
	if body := get(t, srv, "/v1/metrics/history", http.StatusOK); body["populated"] != false {
		t.Fatalf("empty history populated: %v", body)
	}
}

// TestAlertFireResolveOverHTTP drives the built-in failed_cells_burn
// rule through its lifecycle and watches /v1/alerts and the /v1/status
// health rollup follow it.
func TestAlertFireResolveOverHTTP(t *testing.T) {
	srv, _ := newTestServer(t)
	fakeTelemetry(t, srv, 128, defaultAlertRules())

	srv.sampleTick()
	srv.sampleTick()
	status := get(t, srv, "/v1/status", http.StatusOK)
	if status["health"] != "ok" || status["alerts_firing"].(float64) != 0 {
		t.Fatalf("quiet status %v", status)
	}

	// Burn failures well past 0.5/s.
	for i := 0; i < 4; i++ {
		srv.metrics.Counter("harness_failed_cells_total").Add(3)
		srv.sampleTick()
	}
	alerts := get(t, srv, "/v1/alerts", http.StatusOK)
	firing := alerts["firing"].([]any)
	if len(firing) != 1 || firing[0] != ruleFailedCellsBurn {
		t.Fatalf("firing %v, want [%s]", firing, ruleFailedCellsBurn)
	}
	if v := srv.metrics.Gauge(mAlertsFiring).Value(); v != 1 {
		t.Fatalf("alerts_firing gauge %v, want 1", v)
	}
	status = get(t, srv, "/v1/status", http.StatusOK)
	if status["health"] != "degraded" || status["alerts_firing"].(float64) != 1 {
		t.Fatalf("burning status %v", status)
	}
	names := status["alerts"].([]any)
	if len(names) != 1 || names[0] != ruleFailedCellsBurn {
		t.Fatalf("status alerts %v", names)
	}

	// 40 quiet seconds clear the 30s burn window: resolved, healthy.
	for i := 0; i < 40; i++ {
		srv.sampleTick()
	}
	alerts = get(t, srv, "/v1/alerts", http.StatusOK)
	if n := len(alerts["firing"].([]any)); n != 0 {
		t.Fatalf("still firing after quiesce: %v", alerts["firing"])
	}
	var burn map[string]any
	for _, raw := range alerts["alerts"].([]any) {
		a := raw.(map[string]any)
		if a["rule"].(map[string]any)["name"] == ruleFailedCellsBurn {
			burn = a
		}
	}
	if burn["state"] != string(slo.StateResolved) {
		t.Fatalf("burn rule state %v, want resolved", burn["state"])
	}
	status = get(t, srv, "/v1/status", http.StatusOK)
	if status["health"] != "ok" {
		t.Fatalf("post-resolve status %v", status)
	}
	if v := srv.metrics.Gauge(mAlertsFiring).Value(); v != 0 {
		t.Fatalf("alerts_firing gauge %v after resolve", v)
	}
}

// TestServeJobTraceWellFormed: with tracing on, completed AND cancelled
// jobs close their serve.job spans, and the exported Chrome trace is
// well-formed JSON containing them with the harness spans beneath.
func TestServeJobTraceWellFormed(t *testing.T) {
	srv, _ := newTestServer(t)
	srv.tracer = obs.NewTracer()

	// One job to completion.
	id := postJob(t, srv, `{"benchmarks":["crc"],"sizes":["tiny"],"devices":["i7-6700k"],"samples":6}`,
		http.StatusAccepted)
	waitJob(t, srv, id)

	// One job cancelled mid-flight (a wide selection, cancelled at once).
	id = postJob(t, srv, `{"benchmarks":["crc","fft"],"sizes":["tiny","small"],"devices":["i7-6700k","gtx1080"],"samples":6}`,
		http.StatusAccepted)
	req := httptest.NewRequest("DELETE", "/v1/jobs/"+id, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("cancel status %d", rec.Code)
	}
	waitJob(t, srv, id)

	if open := srv.tracer.OpenSpans(); open != 0 {
		t.Fatalf("%d spans still open after both jobs settled", open)
	}
	var buf bytes.Buffer
	if err := srv.tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var jobSpans int
	states := map[string]bool{}
	harnessSpans := 0
	for _, ev := range doc.TraceEvents {
		switch ev.Name {
		case "serve.job":
			jobSpans++
			states[ev.Args["state"]] = true
			if ev.Dur < 0 {
				t.Fatalf("negative span duration: %+v", ev)
			}
		case "harness.grid", "harness.cell", "harness.measure":
			harnessSpans++
		}
	}
	if jobSpans != 2 {
		t.Fatalf("%d serve.job spans, want 2", jobSpans)
	}
	if !states[string(jobDone)] || !states[string(jobCancelled)] {
		t.Fatalf("serve.job states %v, want done and cancelled", states)
	}
	if harnessSpans == 0 {
		t.Fatal("no harness spans nested under the jobs")
	}
}
