package main

// Live telemetry: the server samples its own registry into a
// series.Recorder on a fixed interval, evaluates SLO alert rules
// against the trailing history on every tick, and serves three views of
// the result:
//
//	GET /v1/metrics/history?window=60s   windowed rates / min-max / percentiles (JSON)
//	GET /v1/metrics/stream               live delta stream (SSE, Last-Event-ID resume)
//	GET /v1/alerts                       every rule's firing/resolved state
//
// The stream's contract is exact reconciliation: the first frame is an
// absolute snapshot, every later frame a delta, and summing them
// reproduces GET /metrics counter values at any sample boundary — the
// CI gate holds a streaming client's accumulator against a final scrape
// during a chaos job. A reconnecting client sends the last sample's
// sequence number as Last-Event-ID; missed samples still in the ring
// replay as deltas, and a client that outran the ring gets a fresh
// snapshot (marked "snapshot": true) to reset its accumulator.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"opendwarfs/internal/obs/series"
	"opendwarfs/internal/obs/slo"
)

// Telemetry metric names (obsnames-checked).
const (
	mAlertsFiring = "alerts_firing"
)

// Default alert-rule names: snake_case constants, exactly like metric
// names — the obsnames analyzer checks these at the constructor calls.
const (
	ruleFailedCellsBurn = "failed_cells_burn"
	ruleJobsBacklogged  = "jobs_backlogged"
)

// defaultAlertRules is the built-in rule set, active without -alerts: a
// burn-rate alert on cell failures (the chaos smoke drives this through
// fire and resolve) and a sustained-backlog threshold on running jobs.
func defaultAlertRules() []slo.Rule {
	return []slo.Rule{
		slo.BurnRate(ruleFailedCellsBurn, "harness_failed_cells_total", 0.5, 30*time.Second),
		slo.Threshold(ruleJobsBacklogged, "jobs_running", slo.OpGE, 8, 10*time.Second),
	}
}

// initTelemetry (re)builds the recorder and alert engine. Call before
// the server starts serving and before runSampler — the fields are not
// re-assigned afterwards (tests re-init with an injected clock, then
// drive sampleTick by hand).
func (s *server) initTelemetry(opt series.Options, rules []slo.Rule) error {
	rec := series.New(s.metrics, opt)
	eng, err := slo.NewEngine(rec, rules, s.metrics.Gauge(mAlertsFiring))
	if err != nil {
		return err
	}
	s.series, s.alerts = rec, eng
	return nil
}

// sampleTick takes one telemetry sample and evaluates the alert rules
// at its timestamp. The sampler loop calls it on the interval; tests
// call it directly under a fake clock.
func (s *server) sampleTick() {
	s.series.Sample()
	_, ns := s.series.LastSample()
	s.alerts.Eval(ns)
}

// runSampler drives sampleTick on the recorder's interval until ctx is
// cancelled (shutdown).
func (s *server) runSampler(ctx context.Context) {
	t := time.NewTicker(s.series.Interval())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.sampleTick()
		}
	}
}

// handleMetricsHistory answers windowed summaries over the ring:
// per-counter deltas and rates, gauge min/max, histogram percentiles.
// window= accepts a Go duration (default 60s). Before two samples exist
// there is no interval to summarize; the response says so.
func (s *server) handleMetricsHistory(w http.ResponseWriter, r *http.Request) {
	window := time.Minute
	if v := r.URL.Query().Get("window"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid window %q (want a positive duration like 30s)", v))
			return
		}
		window = d
	}
	sum, ok := s.series.History(window)
	samples, retained, capacity := s.series.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"window_sec":       window.Seconds(),
		"populated":        ok,
		"samples_total":    samples,
		"samples_retained": retained,
		"capacity":         capacity,
		"summary":          sum,
	})
}

// handleMetricsStream streams telemetry samples as Server-Sent Events.
// A fresh subscriber gets one absolute snapshot frame, then one delta
// frame per sample; each frame's SSE id is its sample sequence number.
// On reconnect with Last-Event-ID the missed deltas replay from the
// ring, or — if the client was gone longer than the ring retains — a
// new snapshot frame resets it:
//
//	id: 42
//	event: snapshot | sample
//	data: {"seq":42,"unix_ns":...,"counters":{...},...}
//
// Quiet intervals carry keep-alive comment frames, exactly like the job
// event stream.
func (s *server) handleMetricsStream(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer does not support streaming")
		return
	}
	sent := uint64(0)
	resumed := false
	if last := r.Header.Get("Last-Event-ID"); last != "" {
		n, err := strconv.ParseUint(last, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid Last-Event-ID %q", last))
			return
		}
		sent, resumed = n, true
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	s.metrics.Gauge(mSSESubscribers).Add(1)
	defer s.metrics.Gauge(mSSESubscribers).Add(-1)

	writeFrame := func(event string, p series.Point) bool {
		data, err := json.Marshal(p)
		if err != nil {
			return false
		}
		_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", p.Seq, event, data)
		return err == nil
	}
	snapshot := func() bool {
		p := s.series.SnapshotPoint()
		if !writeFrame("snapshot", p) {
			return false
		}
		sent = p.Seq
		return true
	}
	if !resumed {
		if !snapshot() {
			return
		}
		flusher.Flush()
	}

	keepAlive := time.NewTicker(s.keepAlive)
	defer keepAlive.Stop()
	for {
		next := s.series.Notify()
		pts, resync := s.series.Since(sent)
		if resync {
			if !snapshot() {
				return
			}
			pts, _ = s.series.Since(sent)
		}
		for _, p := range pts {
			if !writeFrame("sample", p) {
				return // client went away
			}
			sent = p.Seq
		}
		flusher.Flush()
		select {
		case <-next:
		case <-keepAlive.C:
			if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleAlerts reports every rule's current evaluation plus the firing
// subset — the same rollup /v1/status folds into its health field.
func (s *server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	firing := s.alerts.Firing()
	if firing == nil {
		firing = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"alerts": s.alerts.Alerts(),
		"firing": firing,
	})
}
