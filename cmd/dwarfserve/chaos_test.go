package main

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestChaosJobQuarantineFlow drives the server-side fault story end to
// end: a chaos job drops a device, the job's counters and quarantine list
// reflect it, /v1/status reports the quarantined device, and /v1/schedule
// keeps it out of the fleet — 409 when asked for explicitly, silently
// excluded from the default fleet.
func TestChaosJobQuarantineFlow(t *testing.T) {
	srv, _ := newTestServer(t)

	id := postJob(t, srv,
		`{"benchmarks":["crc","fft"],"sizes":["tiny"],"devices":["i7-6700k","k20m"],"samples":6,`+
			`"retries":3,"chaos":{"seed":7,"drop":["k20m"]}}`,
		http.StatusAccepted)
	status := waitJob(t, srv, id)
	if status["state"] != string(jobDone) {
		t.Fatalf("chaos job state %v, want done (failed cells do not fail the job)", status["state"])
	}
	// i7's 2 cells pre-existed (store hits); k20m's 2 failed.
	if status["done"].(float64) != 2 {
		t.Fatalf("done %v, want 2 (the surviving device's cells)", status["done"])
	}
	if status["failed"].(float64) != 2 {
		t.Fatalf("failed %v, want k20m's 2 cells", status["failed"])
	}
	quar, _ := status["quarantined"].([]any)
	if len(quar) != 1 || quar[0] != "k20m" {
		t.Fatalf("job quarantined %v, want [k20m]", status["quarantined"])
	}

	// The quarantine outlives the job: /v1/status lists it (the /healthz
	// copy of this field is deprecated — see handleHealth).
	statusResp := get(t, srv, "/v1/status", http.StatusOK)
	hq, _ := statusResp["quarantined"].([]any)
	if len(hq) != 1 || hq[0] != "k20m" {
		t.Fatalf("/v1/status quarantined %v, want [k20m]", statusResp["quarantined"])
	}

	// Explicitly scheduling onto the dead device is a conflict.
	postSchedule(t, srv,
		`{"tasks":[{"benchmark":"crc","size":"tiny","count":2}],"devices":["i7-6700k","k20m"]}`,
		http.StatusConflict)
	// The default fleet just shrinks around it.
	resp := postSchedule(t, srv,
		`{"tasks":[{"benchmark":"crc","size":"tiny","count":4},{"benchmark":"fft","size":"tiny","count":4}]}`,
		http.StatusOK)
	for _, raw := range resp["slots"].([]any) {
		slot := raw.(map[string]any)
		if slot["device"] == "k20m" {
			t.Fatalf("default fleet scheduled onto the quarantined device: %v", slot)
		}
	}
	for _, raw := range resp["lanes"].([]any) {
		if raw.(map[string]any)["device"] == "k20m" {
			t.Fatal("quarantined device still has a lane")
		}
	}
}

func TestChaosJobValidation(t *testing.T) {
	srv, _ := newTestServer(t)
	postJob(t, srv, `{"benchmarks":["crc"],"sizes":["tiny"],"devices":["i7-6700k"],"chaos":{"transient_rate":1.5}}`,
		http.StatusBadRequest)
	postJob(t, srv, `{"benchmarks":["crc"],"sizes":["tiny"],"devices":["i7-6700k"],"retries":-1}`,
		http.StatusBadRequest)
}

// sseClient holds one streaming /events connection and a line scanner
// over it.
type sseClient struct {
	resp    *http.Response
	scanner *bufio.Scanner
}

func dialSSE(t *testing.T, base, id, lastEventID string) *sseClient {
	t.Helper()
	req, err := http.NewRequest("GET", base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE status %d", resp.StatusCode)
	}
	return &sseClient{resp: resp, scanner: bufio.NewScanner(resp.Body)}
}

// readUntil scans lines until one has the given prefix, failing the test
// if the stream ends first. Returns the matching line.
func (c *sseClient) readUntil(t *testing.T, prefix string) string {
	t.Helper()
	for c.scanner.Scan() {
		if line := c.scanner.Text(); strings.HasPrefix(line, prefix) {
			return line
		}
	}
	t.Fatalf("SSE stream ended before a %q line (err: %v)", prefix, c.scanner.Err())
	return ""
}

// TestSSEKeepAliveAndResume covers the reconnect story: comment frames
// flow while the job is quiet, a client that drops mid-stream resumes
// with Last-Event-ID and receives exactly the events it missed.
func TestSSEKeepAliveAndResume(t *testing.T) {
	srv, _ := newTestServer(t)
	srv.keepAlive = 20 * time.Millisecond

	// A hand-built running job: the test controls exactly when events
	// appear, with no measurement underneath.
	j := &job{id: "job-sse-test", state: jobRunning, started: time.Now(), notify: make(chan struct{})}
	srv.jobMu.Lock()
	srv.jobs[j.id] = j
	srv.jobOrder = append(srv.jobOrder, j.id)
	srv.jobMu.Unlock()

	ts := httptest.NewServer(srv)
	defer ts.Close()

	// While the job is quiet the connection carries keep-alive comments.
	c1 := dialSSE(t, ts.URL, j.id, "")
	c1.readUntil(t, ": keep-alive")

	// First event arrives with its log index as the SSE id.
	j.append(wireEvent{Kind: "cell_done", Benchmark: "crc", Done: 1, Total: 3})
	if line := c1.readUntil(t, "id: "); line != "id: 0" {
		t.Fatalf("first event %q, want id: 0", line)
	}
	c1.readUntil(t, "data: ")
	// Mid-stream disconnect: the client walks away after event 0.
	c1.resp.Body.Close()

	// Two more events land while nobody is watching, the last terminal.
	j.append(wireEvent{Kind: "cell_done", Benchmark: "fft", Done: 2, Total: 3})
	j.finish(jobDone, "", wireEvent{Kind: "grid_done", Done: 3, Total: 3, State: string(jobDone)})

	// Reconnect with Last-Event-ID: 0 — replay must start at id 1 and the
	// stream must end by itself after the terminal event.
	c2 := dialSSE(t, ts.URL, j.id, "0")
	var ids, kinds []string
	for c2.scanner.Scan() {
		line := c2.scanner.Text()
		if strings.HasPrefix(line, "id: ") {
			ids = append(ids, strings.TrimPrefix(line, "id: "))
		}
		if strings.HasPrefix(line, "event: ") {
			kinds = append(kinds, strings.TrimPrefix(line, "event: "))
		}
	}
	c2.resp.Body.Close()
	if err := c2.scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(ids, ",") != "1,2" {
		t.Fatalf("resumed ids %v, want [1 2]", ids)
	}
	if len(kinds) != 2 || kinds[1] != "grid_done" {
		t.Fatalf("resumed kinds %v, want [cell_done grid_done]", kinds)
	}

	// A malformed Last-Event-ID is a client error, not a silent replay.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+j.id+"/events", nil)
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad Last-Event-ID status %d, want 400", resp.StatusCode)
	}
}
