package main

// Server-side observability: a logging/metrics middleware around the mux,
// the Prometheus text endpoint, the /v1/status build-and-state report, and
// the opt-in pprof handlers. The server owns one obs.Registry: the HTTP
// middleware, the store (via Instrument), every job grid (via
// GridSpec.Metrics) and the job/SSE gauges all land in it, so GET /metrics
// is the single pane over the whole daemon.

import (
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"opendwarfs/internal/harness"
	"opendwarfs/internal/obs"
	"opendwarfs/internal/store"
)

// statusWriter captures the response code (and, for error responses, a
// body prefix for the server log) on its way to the client. It implements
// http.Flusher unconditionally — the SSE handler type-asserts for it — by
// delegating to the underlying writer when it can flush.
type statusWriter struct {
	http.ResponseWriter
	code      int
	errPrefix []byte
}

// errPrefixCap bounds how much of an error body makes it into the log.
const errPrefixCap = 256

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	if w.code >= 400 && len(w.errPrefix) < errPrefixCap {
		w.errPrefix = append(w.errPrefix, b[:min(len(b), errPrefixCap-len(w.errPrefix))]...)
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// HTTP middleware metric names (obsnames-checked).
const (
	mHTTPRequestsTotal = "http_requests_total"
	mHTTPRequestNs     = "http_request_ns"
	lblRoute           = "route"
	lblCode            = "code"
)

// ServeHTTP is the middleware around the mux: every request — matched or
// not — is counted under http_requests_total{route,code} and timed into
// http_request_ns{route}, and 4xx/5xx responses are logged server-side
// with the start of their error body. The route label is the mux pattern
// (bounded cardinality), never the raw path.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w}
	s.mux.ServeHTTP(sw, r)
	route := r.Pattern
	if route == "" {
		route = "unmatched"
	}
	code := sw.code
	if code == 0 {
		code = http.StatusOK
	}
	s.metrics.Counter(obs.Name(mHTTPRequestsTotal,
		lblRoute, route, lblCode, strconv.Itoa(code))).Inc()
	s.metrics.Histogram(obs.Name(mHTTPRequestNs, lblRoute, route), nil).
		Observe(float64(time.Since(start)))
	if code >= 400 {
		log.Printf("dwarfserve: %s %s -> %d %s", r.Method, r.URL.Path, code, sw.errPrefix)
	}
}

// handleMetrics renders the registry in Prometheus text exposition format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.WritePrometheus(w); err != nil {
		log.Printf("dwarfserve: write /metrics: %v", err)
	}
}

// buildVersion extracts (module version, go version, VCS revision) from
// the binary's embedded build info. Fields the build didn't stamp come
// back as "unknown" rather than empty, so /v1/status is always complete.
func buildVersion() (version, goVersion, revision string) {
	version, goVersion, revision = "unknown", runtime.Version(), "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		version = bi.Main.Version
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			revision = kv.Value
		}
	}
	return
}

// handleStatus is the introspection endpoint: build identity, uptime, the
// store snapshot counters that used to live in /healthz, and the job and
// SSE-subscriber population.
func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	cells := s.grid.Cells()
	s.mu.RUnlock()

	s.jobMu.Lock()
	jobs := len(s.jobs)
	byState := map[string]int{}
	for _, j := range s.jobs {
		j.mu.Lock()
		byState[string(j.state)]++
		j.mu.Unlock()
	}
	s.jobMu.Unlock()

	version, goVersion, revision := buildVersion()
	// Health rollup: "ok" unless an alert rule is firing. The firing rule
	// names ride along so a dashboard needn't join against /v1/alerts.
	firing := s.alerts.Firing()
	health := "ok"
	if len(firing) > 0 {
		health = "degraded"
	}
	resp := map[string]any{
		"status":          "ok",
		"health":          health,
		"alerts_firing":   len(firing),
		"version":         version,
		"go_version":      goVersion,
		"vcs_revision":    revision,
		"uptime_ms":       float64(time.Since(s.started)) / 1e6,
		"cells":           cells,
		"segments":        store.SegmentsOf(s.st),
		"schema":          harness.StoreSchemaVersion,
		"jobs":            jobs,
		"jobs_by_state":   byState,
		"jobs_running":    byState[string(jobRunning)],
		"sse_subscribers": int(s.metrics.Gauge(mSSESubscribers).Value()),
	}
	if len(firing) > 0 {
		resp["alerts"] = firing
	}
	if quar := s.quarantinedDevices(); len(quar) > 0 {
		resp["quarantined"] = quar
	}
	writeJSON(w, http.StatusOK, resp)
}

// enablePprof mounts net/http/pprof's handlers on the server mux. Off by
// default (profiles leak heap contents and symbol names); the -pprof flag
// opts in.
func (s *server) enablePprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
