package main

// Async sweep jobs: POST /v1/jobs submits a benchmark × size × device
// selection that dwarfserve measures into its own store, in-process, on the
// harness event stream. Job state is an append-only event log plus a small
// status head; the SSE handler replays the log and then follows it live, so
// any number of watchers can attach at any point of the job's life and all
// see the same sequence. Completed cells are persisted by the harness
// before their cell_done event fires, which is what makes cancellation (and
// daemon shutdown) lossless: whatever the log says completed is on disk.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"opendwarfs/internal/faults"
	"opendwarfs/internal/harness"
	"opendwarfs/internal/obs"
	"opendwarfs/internal/suite"
)

type jobState string

const (
	jobRunning   jobState = "running"
	jobDone      jobState = "done"
	jobFailed    jobState = "failed"
	jobCancelled jobState = "cancelled"
)

// Job and SSE metric names (obsnames-checked).
const (
	mJobsCreatedTotal  = "jobs_created_total"
	mJobsRunning       = "jobs_running"
	mJobsFinishedTotal = "jobs_finished_total"
	mSSESubscribers    = "sse_subscribers"
	lblState           = "state"
)

// jobRequest is the POST /v1/jobs body. Empty axes mean "all", exactly as
// in dwarfsweep; options default to the paper methodology (50 samples,
// seed 1) so a job's cells fingerprint identically to a default sweep's.
type jobRequest struct {
	Benchmarks []string `json:"benchmarks"`
	Sizes      []string `json:"sizes"`
	Devices    []string `json:"devices"`
	Samples    int      `json:"samples,omitempty"`
	Seed       int64    `json:"seed,omitempty"`
	Workers    int      `json:"workers,omitempty"`
	// Retries sets the per-cell attempt count (with BackoffMs the base
	// backoff) — useful against a chaos plan; harmless without one.
	Retries   int     `json:"retries,omitempty"`
	BackoffMs float64 `json:"backoff_ms,omitempty"`
	// Chaos, when set, injects deterministic faults into the job's
	// measurements — the server-side face of the fault-injection layer.
	Chaos *faults.Plan `json:"chaos,omitempty"`
}

// wireEvent is the SSE/JSON form of one harness event: the summary fields
// plus the cell's median, without the full measurement payload.
type wireEvent struct {
	Kind      string  `json:"kind"`
	Benchmark string  `json:"benchmark,omitempty"`
	Size      string  `json:"size,omitempty"`
	Device    string  `json:"device,omitempty"`
	Done      int     `json:"done"`
	Total     int     `json:"total"`
	ElapsedMs float64 `json:"elapsed_ms"`
	Hits      int     `json:"store_hits"`
	Misses    int     `json:"store_misses"`
	MedianNs  float64 `json:"median_ns,omitempty"`
	Attempt   int     `json:"attempt,omitempty"`
	Reason    string  `json:"reason,omitempty"`
	Retries   int     `json:"retries,omitempty"`
	Failed    int     `json:"failed,omitempty"`
	State     string  `json:"state,omitempty"` // terminal job state, grid_done only
	Error     string  `json:"error,omitempty"`
}

// job is one asynchronous sweep: identity, cancel handle, and a mutex-
// guarded (event log, status head, notify channel) triple. notify is
// closed and replaced on every append, waking all followers.
type job struct {
	id      string
	req     jobRequest
	cancel  context.CancelFunc
	started time.Time

	// span is the job's serve.job trace span (nil without -trace); it
	// ends when the terminal event lands, so cancelled jobs close too.
	span *obs.Span

	mu          sync.Mutex
	state       jobState
	events      []wireEvent
	done        int
	total       int
	hits        int
	misses      int
	retries     int
	failed      int
	quarantined []string
	errMsg      string
	finished    time.Time
	notify      chan struct{}
}

// updateCountersLocked mirrors an event's cumulative counters into the
// status head. Callers hold j.mu.
func (j *job) updateCountersLocked(ev wireEvent) {
	j.done, j.total = ev.Done, ev.Total
	j.hits, j.misses = ev.Hits, ev.Misses
	j.retries, j.failed = ev.Retries, ev.Failed
	if ev.Kind == string(harness.EventDeviceQuarantined) {
		j.quarantined = append(j.quarantined, ev.Device)
	}
}

func (j *job) append(ev wireEvent) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	j.updateCountersLocked(ev)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

func (j *job) finish(state jobState, errMsg string, ev wireEvent) {
	j.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	j.finished = time.Now()
	j.events = append(j.events, ev)
	j.updateCountersLocked(ev)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// follow returns the log suffix from index i, whether the job is terminal,
// and the channel that signals the next append.
func (j *job) follow(i int) ([]wireEvent, bool, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var tail []wireEvent
	if i < len(j.events) {
		tail = append(tail, j.events[i:]...)
	}
	return tail, j.state != jobRunning, j.notify
}

func (j *job) status() map[string]any {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := map[string]any{
		"id":           j.id,
		"state":        j.state,
		"benchmarks":   j.req.Benchmarks,
		"sizes":        j.req.Sizes,
		"devices":      j.req.Devices,
		"done":         j.done,
		"total":        j.total,
		"store_hits":   j.hits,
		"store_misses": j.misses,
		"events":       len(j.events),
		"started":      j.started.UTC().Format(time.RFC3339Nano),
	}
	if j.retries > 0 {
		st["retries"] = j.retries
	}
	if j.failed > 0 {
		st["failed"] = j.failed
	}
	if len(j.quarantined) > 0 {
		st["quarantined"] = append([]string(nil), j.quarantined...)
	}
	if j.state != jobRunning {
		st["finished"] = j.finished.UTC().Format(time.RFC3339Nano)
		st["elapsed_ms"] = float64(j.finished.Sub(j.started)) / 1e6
	}
	if j.errMsg != "" {
		st["error"] = j.errMsg
	}
	return st
}

func toWire(ev harness.Event) wireEvent {
	w := wireEvent{
		Kind:      string(ev.Kind),
		Benchmark: ev.Benchmark,
		Size:      ev.Size,
		Device:    ev.Device,
		Done:      ev.Done,
		Total:     ev.Total,
		ElapsedMs: float64(ev.Elapsed) / 1e6,
		Hits:      ev.Hits,
		Misses:    ev.Misses,
	}
	w.Attempt, w.Reason = ev.Attempt, ev.Reason
	w.Retries, w.Failed = ev.Retries, ev.Failed
	if ev.Measurement != nil {
		w.MedianNs = ev.Measurement.Kernel.Median
	}
	return w
}

func (s *server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid job request: %v", err))
		return
	}
	opt := harness.DefaultOptions()
	if req.Samples > 0 {
		opt.Samples = req.Samples
	}
	if req.Seed != 0 {
		opt.Seed = req.Seed
	}
	if req.Chaos != nil {
		if err := req.Chaos.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	if req.Retries < 0 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("negative retries %d", req.Retries))
		return
	}
	spec := harness.GridSpec{
		Benchmarks: req.Benchmarks,
		Sizes:      req.Sizes,
		Devices:    req.Devices,
		Options:    opt,
		Workers:    req.Workers,
		Store:      s.st,
		Metrics:    s.metrics,
		Retry: harness.RetryPolicy{
			MaxAttempts: req.Retries,
			BaseBackoff: time.Duration(req.BackoffMs * float64(time.Millisecond)),
		},
	}
	if req.Chaos != nil {
		spec.Faults = req.Chaos
	}

	s.jobMu.Lock()
	if s.draining {
		s.jobMu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	jobCtx, cancel := context.WithCancel(s.jobsCtx)
	jobID := fmt.Sprintf("job-%06d", s.jobSeq+1)
	// With -trace, every job runs under a serve.job span carried by its
	// context, so the harness's grid/cell/measure spans nest beneath it.
	var span *obs.Span
	if s.tracer != nil {
		jobCtx = obs.ContextWithTracer(jobCtx, s.tracer)
		jobCtx, span = s.tracer.StartSpan(jobCtx, "serve.job", obs.String("job", jobID))
	}
	// Stream validates the selection synchronously: unknown benchmarks,
	// sizes or devices fail here, before a job is registered.
	events, err := harness.Stream(jobCtx, suite.New(), spec)
	if err != nil {
		s.jobMu.Unlock()
		span.End()
		cancel()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.jobSeq++
	j := &job{
		id:      jobID,
		req:     req,
		cancel:  cancel,
		span:    span,
		started: time.Now(),
		state:   jobRunning,
		notify:  make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	s.pruneJobsLocked()
	s.jobWG.Add(1)
	s.jobMu.Unlock()
	s.metrics.Counter(mJobsCreatedTotal).Inc()
	s.metrics.Gauge(mJobsRunning).Add(1)

	go s.runJob(j, events)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":     j.id,
		"state":  jobRunning,
		"status": "/v1/jobs/" + j.id,
		"events": "/v1/jobs/" + j.id + "/events",
	})
}

// runJob consumes the job's event stream to completion. The harness
// persists every measured cell before announcing it, so this loop only
// mirrors events into the log; on the terminal event it settles the job
// state and reloads the query snapshot from the store so /v1/grid and
// /v1/predict serve the new cells.
func (s *server) runJob(j *job, events <-chan harness.Event) {
	defer s.jobWG.Done()
	defer j.cancel()
	for ev := range events {
		if ev.Kind != harness.EventGridDone {
			if ev.Kind == harness.EventDeviceQuarantined {
				s.quarantineDevice(ev.Device, ev.Reason)
			}
			j.append(toWire(ev))
			continue
		}
		state, errMsg := jobDone, ""
		switch {
		case ev.Err == nil:
		case errors.Is(ev.Err, context.Canceled):
			state = jobCancelled
		default:
			state, errMsg = jobFailed, ev.Err.Error()
		}
		// Reload even on cancellation or failure: any cells that did
		// complete are in the store and should be served. The reload is
		// also the -compact-over enforcement point — the store only grows
		// when jobs land cells.
		if ev.Grid == nil || ev.Grid.Cells() > 0 {
			if err := s.reloadFromStore(); err != nil {
				state, errMsg = jobFailed, err.Error()
			}
			s.maybeCompact()
		}
		wev := toWire(ev)
		if ev.Grid == nil {
			// A cell failure yields no grid, so the harness event carries
			// zero counters; keep the job's running ones — they reflect
			// what actually completed and persisted before the failure.
			j.mu.Lock()
			wev.Done, wev.Hits, wev.Misses = j.done, j.hits, j.misses
			wev.Retries, wev.Failed = j.retries, j.failed
			j.mu.Unlock()
		}
		wev.State = string(state)
		wev.Error = errMsg
		j.finish(state, errMsg, wev)
		j.span.SetAttr("state", string(state))
		j.span.End()
		s.metrics.Gauge(mJobsRunning).Add(-1)
		s.metrics.Counter(obs.Name(mJobsFinishedTotal, lblState, string(state))).Inc()
	}
}

func (s *server) lookupJob(w http.ResponseWriter, r *http.Request) *job {
	s.jobMu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.jobMu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no such job %q", r.PathValue("id")))
	}
	return j
}

func (s *server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.jobMu.Lock()
	ids := append([]string(nil), s.jobOrder...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.jobMu.Unlock()
	list := make([]map[string]any, 0, len(jobs))
	for _, j := range jobs {
		list = append(list, j.status())
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(list), "jobs": list})
}

func (s *server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.lookupJob(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	j.cancel()
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	if state == jobRunning {
		state = "cancelling" // workers stop at their next context check
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": j.id, "state": state})
}

// handleJobEvents streams the job's event log as Server-Sent Events:
// replay from the start — or, on reconnect, from the index after the
// client's Last-Event-ID — then follow live appends until the terminal
// grid_done event or client disconnect. Each event carries its log index
// as the SSE id, so a dropped client resumes exactly where it left off:
//
//	id: 17
//	event: cell_done
//	data: {"kind":"cell_done","benchmark":...}
//
// While the job is quiet, a comment frame (": keep-alive") goes out every
// keep-alive interval so proxies and clients see a live connection.
func (s *server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer does not support streaming")
		return
	}
	sent := 0
	if last := r.Header.Get("Last-Event-ID"); last != "" {
		n, err := strconv.Atoi(last)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid Last-Event-ID %q", last))
			return
		}
		sent = n + 1
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	s.metrics.Gauge(mSSESubscribers).Add(1)
	defer s.metrics.Gauge(mSSESubscribers).Add(-1)

	keepAlive := time.NewTicker(s.keepAlive)
	defer keepAlive.Stop()
	for {
		tail, terminal, next := j.follow(sent)
		for _, ev := range tail {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", sent, ev.Kind, data); err != nil {
				return // client went away
			}
			sent++
		}
		flusher.Flush()
		if terminal && func() bool { j.mu.Lock(); defer j.mu.Unlock(); return sent >= len(j.events) }() {
			return
		}
		select {
		case <-next:
		case <-keepAlive.C:
			if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// maxRetainedJobs bounds the registry of a long-lived daemon: once
// exceeded, the oldest *terminal* jobs (and their event logs) are evicted.
// Running jobs are never evicted, so the registry can exceed the cap only
// while that many sweeps are actually in flight.
const maxRetainedJobs = 64

// pruneJobsLocked evicts the oldest terminal jobs beyond maxRetainedJobs.
// Callers hold s.jobMu.
func (s *server) pruneJobsLocked() {
	excess := len(s.jobOrder) - maxRetainedJobs
	if excess <= 0 {
		return
	}
	kept := s.jobOrder[:0]
	for _, id := range s.jobOrder {
		j := s.jobs[id]
		j.mu.Lock()
		terminal := j.state != jobRunning
		j.mu.Unlock()
		if excess > 0 && terminal {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.jobOrder = kept
}

// runningJobs counts non-terminal jobs (for the shutdown log line).
func (s *server) runningJobs() int {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	n := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state == jobRunning {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// shutdownJobs rejects new jobs, cancels every running one through its
// context, and waits for their event streams to settle. By the time it
// returns, every completed cell is in the store and every job log ends
// with a terminal grid_done event.
func (s *server) shutdownJobs() {
	s.jobMu.Lock()
	s.draining = true
	s.jobMu.Unlock()
	s.jobsCancel()
	s.jobWG.Wait()
}
