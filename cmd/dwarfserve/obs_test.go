package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"opendwarfs/internal/obs"
)

// getText fetches a non-JSON endpoint through the middleware.
func getText(t *testing.T, srv *server, url string, wantCode int) (string, http.Header) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != wantCode {
		t.Fatalf("GET %s: status %d (body %s), want %d", url, rec.Code, rec.Body, wantCode)
	}
	return rec.Body.String(), rec.Result().Header
}

// The middleware counts and times every request by mux pattern — 2xx on
// their route, errors included, unmatched paths under their own label —
// and /metrics renders it all in Prometheus text format.
func TestMetricsEndpointAndMiddleware(t *testing.T) {
	srv, _ := newTestServer(t)

	get(t, srv, "/v1/status", http.StatusOK)
	get(t, srv, "/v1/predict?bench=fft", http.StatusBadRequest) // missing params
	getText(t, srv, "/nosuch", http.StatusNotFound)

	body, hdr := getText(t, srv, "/metrics", http.StatusOK)
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE http_requests_total counter",
		`http_requests_total{code="200",route="GET /v1/status"} 1`,
		`http_requests_total{code="400",route="GET /v1/predict"} 1`,
		`http_requests_total{code="404",route="unmatched"} 1`,
		"# TYPE http_request_ns histogram",
		`http_request_ns_count{route="GET /v1/status"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
	// Latency was recorded for the error route too.
	if n := srv.metrics.Histogram(obs.Name("http_request_ns", "route", "GET /v1/predict"), nil).Count(); n != 1 {
		t.Errorf("error route latency count = %d, want 1", n)
	}
}

// CI-facing satellite: after a chaos job, the server registry's harness
// and fault counters agree with the job's reported grid, the job gauges
// settle, and /metrics serves all of it.
func TestMetricsAgreeWithChaosJob(t *testing.T) {
	srv, _ := newTestServer(t)
	id := postJob(t, srv,
		`{"benchmarks":["crc","fft"],"sizes":["tiny"],"devices":["i7-6700k","k20m"],"samples":6,`+
			`"retries":3,"chaos":{"seed":7,"drop":["k20m"]}}`,
		http.StatusAccepted)
	status := waitJob(t, srv, id)

	reg := srv.metrics
	done := int64(status["done"].(float64))
	if got := reg.CounterValue("harness_cells_total"); got != done {
		t.Errorf("harness_cells_total = %d, want job done %d", got, done)
	}
	if got := reg.CounterValue("harness_store_hits_total"); got != int64(status["store_hits"].(float64)) {
		t.Errorf("harness_store_hits_total = %d, want %v", got, status["store_hits"])
	}
	if got := reg.CounterValue("harness_store_misses_total"); got != int64(status["store_misses"].(float64)) {
		t.Errorf("harness_store_misses_total = %d, want %v", got, status["store_misses"])
	}
	if got := reg.CounterValue("harness_failed_cells_total"); got != int64(status["failed"].(float64)) {
		t.Errorf("harness_failed_cells_total = %d, want %v", got, status["failed"])
	}
	if got := reg.CounterValue("harness_quarantines_total"); got != 1 {
		t.Errorf("harness_quarantines_total = %d, want 1", got)
	}
	if reg.CounterValue(obs.Name("faults_injected_total", "kind", "device_down")) == 0 {
		t.Error("faults_injected_total{kind=device_down} = 0 after a drop plan")
	}
	// Store appends match the misses the job persisted.
	if got := reg.CounterValue("store_appends_total"); got != int64(status["store_misses"].(float64)) {
		t.Errorf("store_appends_total = %d, want %v", got, status["store_misses"])
	}
	// Job lifecycle metrics settled.
	if got := reg.Gauge("jobs_running").Value(); got != 0 {
		t.Errorf("jobs_running = %g after the job finished", got)
	}
	if got := reg.CounterValue("jobs_created_total"); got != 1 {
		t.Errorf("jobs_created_total = %d, want 1", got)
	}
	if got := reg.CounterValue(obs.Name("jobs_finished_total", "state", "done")); got != 1 {
		t.Errorf("jobs_finished_total{state=done} = %d, want 1", got)
	}

	body, _ := getText(t, srv, "/metrics", http.StatusOK)
	for _, want := range []string{
		"harness_cells_total", "faults_injected_total", "store_appends_total",
		`jobs_finished_total{state="done"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /v1/status reflects the same population.
	st := get(t, srv, "/v1/status", http.StatusOK)
	if int(st["jobs"].(float64)) != 1 || int(st["jobs_running"].(float64)) != 0 {
		t.Fatalf("status jobs %v running %v, want 1/0", st["jobs"], st["jobs_running"])
	}
	byState := st["jobs_by_state"].(map[string]any)
	if int(byState["done"].(float64)) != 1 {
		t.Fatalf("jobs_by_state %v, want done:1", byState)
	}
}

// pprof stays off the mux until -pprof opts in.
func TestPprofOptIn(t *testing.T) {
	srv, _ := newTestServer(t)
	getText(t, srv, "/debug/pprof/", http.StatusNotFound)
	srv.enablePprof()
	body, _ := getText(t, srv, "/debug/pprof/", http.StatusOK)
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index unexpected: %.120s", body)
	}
}
