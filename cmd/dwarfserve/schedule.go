package main

// POST /v1/schedule: prediction-guided workload placement over the store.
// The request names a workload (benchmark × size × count tasks, optional
// per-task deadlines and energy budgets), a fleet (default: the whole
// catalogue) and a policy; the response is the evaluated schedule — per
// device timelines, makespan, energy, constraint violations — with every
// slot flagged measured or predicted. The cost provider resolves measured
// cells from the server's grid snapshot and predicts the rest with the §5
// forests, cached per snapshot generation exactly like /v1/predict's
// forest: a job that lands new cells invalidates it, and the next schedule
// resolves those cells as measured.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"opendwarfs/internal/harness"
	"opendwarfs/internal/sched"
	"opendwarfs/internal/suite"
)

// scheduleRequest is the POST /v1/schedule body.
type scheduleRequest struct {
	Tasks []sched.TaskSpec `json:"tasks"`
	// Devices is the fleet; empty means all 15 catalogue devices.
	Devices []string `json:"devices,omitempty"`
	// Policy defaults to "heft".
	Policy string `json:"policy,omitempty"`
	// MakespanBudgetMs / BudgetFactor tune the energy policy.
	MakespanBudgetMs float64 `json:"makespan_budget_ms,omitempty"`
	BudgetFactor     float64 `json:"budget_factor,omitempty"`
}

func (s *server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req scheduleRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid schedule request: %v (valid policies: %s)",
			err, strings.Join(sched.Policies(), ", ")))
		return
	}
	if req.Policy == "" {
		req.Policy = "heft"
	}
	pol, err := sched.LookupPolicy(req.Policy)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	workload, err := (&sched.WorkloadSpec{Tasks: req.Tasks}).Expand(suite.New())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Quarantined devices never receive work: an explicit fleet naming one
	// is a conflict the client must resolve; the default (whole-catalogue)
	// fleet silently shrinks around them.
	s.quarMu.Lock()
	quarantined := make(map[string]string, len(s.quarantined))
	for d, reason := range s.quarantined {
		quarantined[d] = reason
	}
	s.quarMu.Unlock()
	if len(req.Devices) > 0 {
		for _, d := range req.Devices {
			if reason, ok := quarantined[d]; ok {
				writeError(w, http.StatusConflict,
					fmt.Sprintf("device %s is quarantined (%s); drop it from the fleet or restart the daemon", d, reason))
				return
			}
		}
	}
	fleet, err := sched.Fleet(req.Devices)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Devices) == 0 && len(quarantined) > 0 {
		kept := fleet[:0:0]
		for _, dev := range fleet {
			if _, ok := quarantined[dev.ID]; !ok {
				kept = append(kept, dev)
			}
		}
		if len(kept) == 0 {
			writeError(w, http.StatusServiceUnavailable, "every catalogue device is quarantined")
			return
		}
		fleet = kept
	}

	s.mu.RLock()
	grid, gen := s.grid, s.gridGen
	s.mu.RUnlock()
	costs, err := s.scheduleCosts(grid, gen)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// Prediction needs each row's AIWC profiles, which come from stored
	// cells; a row never measured on any device is a 404, like /v1/predict.
	if missing := costs.MissingRows(workload); len(missing) > 0 {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("no stored measurement of %s on any device; sweep them into the store first",
				strings.Join(missing, ", ")))
		return
	}

	schedule, err := pol.Schedule(workload, fleet, costs, sched.Options{
		MakespanBudgetNs: req.MakespanBudgetMs * 1e6,
		BudgetFactor:     req.BudgetFactor,
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"policy":          schedule.Policy,
		"tasks":           len(schedule.Slots),
		"makespan_ms":     schedule.MakespanNs / 1e6,
		"total_energy_j":  schedule.TotalEnergyJ,
		"idle_energy_j":   schedule.IdleEnergyJ,
		"deadline_misses": schedule.DeadlineMisses,
		"energy_overruns": schedule.EnergyOverruns,
		"measured":        schedule.Measured,
		"predicted":       schedule.Predicted,
		"training_cells":  costs.TrainingCells(),
		"slots":           schedule.Slots,
		"lanes":           schedule.Lanes,
	})
}

// scheduleCosts returns the cost provider for the given snapshot
// generation, building it (two forests, deterministic in cfg.Seed) when
// the cached one is missing or stale — the same generation discipline as
// trainedForest, under its own lock so schedules and predictions do not
// serialise each other's training.
func (s *server) scheduleCosts(grid *harness.Grid, gen int) (*sched.Costs, error) {
	s.schedMu.Lock()
	defer s.schedMu.Unlock()
	if s.schedGen == gen {
		return s.schedCosts, s.schedErr
	}
	costs, err := sched.NewCosts(grid, s.cfg)
	if gen > s.schedGen {
		s.schedCosts, s.schedErr, s.schedGen = costs, err, gen
	}
	return costs, err
}
