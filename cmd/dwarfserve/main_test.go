package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"opendwarfs/internal/harness"
	"opendwarfs/internal/predict"
	"opendwarfs/internal/store"
	"opendwarfs/internal/suite"
)

// newTestServer sweeps a tiny grid into a fresh store and serves it — the
// same pipeline as `dwarfsweep -store` followed by `dwarfserve -store`.
func newTestServer(t *testing.T) (*server, *harness.Grid) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := harness.DefaultOptions()
	opt.Samples = 6
	g, err := harness.RunGrid(suite.New(), harness.GridSpec{
		Benchmarks: []string{"crc", "fft"},
		Sizes:      []string{"tiny"},
		Devices:    []string{"i7-6700k", "gtx1080"},
		Options:    opt,
		Workers:    2,
		Store:      st,
	})
	if err != nil {
		t.Fatal(err)
	}
	served, err := harness.GridFromStore(st)
	if err != nil {
		t.Fatal(err)
	}
	cfg := predict.DefaultConfig()
	cfg.Trees = 20 // keep the /v1/predict test fast
	return newServer(st, served, cfg), g
}

func get(t *testing.T, srv *server, url string, wantCode int) map[string]any {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != wantCode {
		t.Fatalf("GET %s: status %d (body %s), want %d", url, rec.Code, rec.Body, wantCode)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("GET %s: invalid JSON %q: %v", url, rec.Body, err)
	}
	return body
}

func TestHealthz(t *testing.T) {
	srv, g := newTestServer(t)
	body := get(t, srv, "/healthz", http.StatusOK)
	if body["status"] != "ok" {
		t.Fatalf("status %v", body["status"])
	}
	if int(body["cells"].(float64)) != g.Cells() {
		t.Fatalf("cells %v, want %d", body["cells"], g.Cells())
	}
}

func TestCellsFilter(t *testing.T) {
	srv, _ := newTestServer(t)

	all := get(t, srv, "/v1/cells", http.StatusOK)
	if int(all["count"].(float64)) != 4 {
		t.Fatalf("unfiltered count %v, want 4", all["count"])
	}

	one := get(t, srv, "/v1/cells?bench=fft&size=tiny&device=gtx1080", http.StatusOK)
	if int(one["count"].(float64)) != 1 {
		t.Fatalf("filtered count %v, want 1", one["count"])
	}
	cell := one["cells"].([]any)[0].(map[string]any)
	if cell["benchmark"] != "fft" || cell["device"] != "gtx1080" {
		t.Fatalf("wrong cell %v", cell)
	}
	if cell["median_ns"].(float64) <= 0 {
		t.Fatalf("non-positive median %v", cell["median_ns"])
	}

	none := get(t, srv, "/v1/cells?bench=nosuch", http.StatusOK)
	if int(none["count"].(float64)) != 0 {
		t.Fatalf("phantom cells %v", none["count"])
	}
}

func TestGrid(t *testing.T) {
	srv, _ := newTestServer(t)
	body := get(t, srv, "/v1/grid", http.StatusOK)
	if int(body["count"].(float64)) != 4 {
		t.Fatalf("count %v, want 4", body["count"])
	}
	if n := len(body["benchmarks"].([]any)); n != 2 {
		t.Fatalf("%d benchmarks, want 2", n)
	}
	if n := len(body["devices"].([]any)); n != 2 {
		t.Fatalf("%d devices, want 2", n)
	}
}

func TestPredictMeasuredAndUnmeasured(t *testing.T) {
	srv, g := newTestServer(t)

	// A measured cell: prediction plus the stored actual.
	body := get(t, srv, "/v1/predict?bench=fft&size=tiny&device=gtx1080", http.StatusOK)
	if body["measured"] != true {
		t.Fatalf("measured = %v", body["measured"])
	}
	pred := body["predicted_ns"].(float64)
	actual := body["actual_ns"].(float64)
	if pred <= 0 || actual <= 0 {
		t.Fatalf("pred %v actual %v", pred, actual)
	}
	want := g.Find("fft", "tiny", "gtx1080").Kernel.Median
	if actual != want {
		t.Fatalf("actual_ns %v, want stored median %v", actual, want)
	}

	// A device the benchmark never ran on: catalogue spec + stored AIWC
	// profiles still yield a prediction.
	body = get(t, srv, "/v1/predict?bench=fft&size=tiny&device=k20m", http.StatusOK)
	if body["measured"] != false {
		t.Fatalf("measured = %v for unmeasured device", body["measured"])
	}
	if body["predicted_ns"].(float64) <= 0 {
		t.Fatalf("predicted_ns %v", body["predicted_ns"])
	}
	if _, has := body["actual_ns"]; has {
		t.Fatal("actual_ns present for unmeasured cell")
	}

	// Unknown workload or device → 404 with a useful message.
	get(t, srv, "/v1/predict?bench=lud&size=tiny&device=gtx1080", http.StatusNotFound)
	get(t, srv, "/v1/predict?bench=fft&size=tiny&device=gtx1081", http.StatusNotFound)
	// Missing parameters → 400.
	get(t, srv, "/v1/predict?bench=fft", http.StatusBadRequest)
}
