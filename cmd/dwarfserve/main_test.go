package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"opendwarfs/internal/harness"
	"opendwarfs/internal/predict"
	"opendwarfs/internal/store"
	"opendwarfs/internal/suite"
)

// newTestServer sweeps a tiny grid into a fresh store and serves it — the
// same pipeline as `dwarfsweep -store` followed by `dwarfserve -store`: the
// store sits behind the slot cache, and the server loads its own snapshot.
func newTestServer(t *testing.T) (*server, *harness.Grid) {
	t.Helper()
	base, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st := store.Cached(base)
	t.Cleanup(func() { st.Close() })
	opt := harness.DefaultOptions()
	opt.Samples = 6
	g, err := harness.RunGrid(context.Background(), suite.New(), harness.GridSpec{
		Benchmarks: []string{"crc", "fft"},
		Sizes:      []string{"tiny"},
		Devices:    []string{"i7-6700k", "gtx1080"},
		Options:    opt,
		Workers:    2,
		Store:      st,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := predict.DefaultConfig()
	cfg.Trees = 20 // keep the /v1/predict test fast
	srv, err := newServer(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv, g
}

func get(t *testing.T, srv *server, url string, wantCode int) map[string]any {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != wantCode {
		t.Fatalf("GET %s: status %d (body %s), want %d", url, rec.Code, rec.Body, wantCode)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("GET %s: invalid JSON %q: %v", url, rec.Body, err)
	}
	return body
}

func TestHealthz(t *testing.T) {
	srv, g := newTestServer(t)
	body := get(t, srv, "/healthz", http.StatusOK)
	if body["status"] != "ok" {
		t.Fatalf("status %v", body["status"])
	}
	// /healthz is pure liveness; the counters live in /v1/status.
	if _, has := body["cells"]; has {
		t.Fatalf("healthz still reports cells: %v", body)
	}
	status := get(t, srv, "/v1/status", http.StatusOK)
	if int(status["cells"].(float64)) != g.Cells() {
		t.Fatalf("status cells %v, want %d", status["cells"], g.Cells())
	}
	for _, key := range []string{"version", "go_version", "vcs_revision"} {
		if v, _ := status[key].(string); v == "" {
			t.Fatalf("status %s missing: %v", key, status)
		}
	}
	if status["uptime_ms"].(float64) < 0 {
		t.Fatalf("negative uptime %v", status["uptime_ms"])
	}
	if int(status["jobs_running"].(float64)) != 0 || int(status["jobs"].(float64)) != 0 {
		t.Fatalf("fresh server reports jobs: %v", status)
	}
}

func TestCellsFilter(t *testing.T) {
	srv, _ := newTestServer(t)

	all := get(t, srv, "/v1/cells", http.StatusOK)
	if int(all["total"].(float64)) != 4 {
		t.Fatalf("unfiltered total %v, want 4", all["total"])
	}
	if n := len(all["items"].([]any)); n != 4 {
		t.Fatalf("%d items, want 4", n)
	}
	if all["next_cursor"] != "" {
		t.Fatalf("single-page listing has next_cursor %v", all["next_cursor"])
	}

	one := get(t, srv, "/v1/cells?bench=fft&size=tiny&device=gtx1080", http.StatusOK)
	if int(one["total"].(float64)) != 1 {
		t.Fatalf("filtered total %v, want 1", one["total"])
	}
	cell := one["items"].([]any)[0].(map[string]any)
	if cell["benchmark"] != "fft" || cell["device"] != "gtx1080" {
		t.Fatalf("wrong cell %v", cell)
	}
	if cell["median_ns"].(float64) <= 0 {
		t.Fatalf("non-positive median %v", cell["median_ns"])
	}

	none := get(t, srv, "/v1/cells?bench=nosuch", http.StatusOK)
	if int(none["total"].(float64)) != 0 {
		t.Fatalf("phantom cells %v", none["total"])
	}
}

// TestCellsPagination walks the 4-cell snapshot one cell at a time through
// the cursor, checks the pages tile the full listing exactly, and verifies
// the deprecated ?legacy=1 shape and limit/cursor validation.
func TestCellsPagination(t *testing.T) {
	srv, _ := newTestServer(t)

	var paged []any
	cursor, pages := "", 0
	for {
		url := "/v1/cells?limit=1"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		body := get(t, srv, url, http.StatusOK)
		if int(body["total"].(float64)) != 4 {
			t.Fatalf("page total %v, want 4 on every page", body["total"])
		}
		items := body["items"].([]any)
		if len(items) != 1 {
			t.Fatalf("page of %d items, want 1", len(items))
		}
		paged = append(paged, items...)
		pages++
		if pages > 8 {
			t.Fatal("cursor loop does not terminate")
		}
		if cursor = body["next_cursor"].(string); cursor == "" {
			break
		}
	}
	if pages != 4 {
		t.Fatalf("walked %d pages, want 4", pages)
	}

	// The concatenated pages are exactly the unpaginated listing.
	all := get(t, srv, "/v1/cells", http.StatusOK)
	want, _ := json.Marshal(all["items"])
	got, _ := json.Marshal(paged)
	if string(got) != string(want) {
		t.Fatalf("paged items differ from full listing:\npaged: %s\nfull:  %s", got, want)
	}

	// The deprecated shape still answers under ?legacy=1.
	legacy := get(t, srv, "/v1/cells?legacy=1", http.StatusOK)
	if int(legacy["count"].(float64)) != 4 || len(legacy["cells"].([]any)) != 4 {
		t.Fatalf("legacy shape wrong: %v", legacy)
	}

	get(t, srv, "/v1/cells?limit=0", http.StatusBadRequest)
	get(t, srv, "/v1/cells?limit=x", http.StatusBadRequest)
	get(t, srv, "/v1/cells?cursor=%25not-base64", http.StatusBadRequest)
}

func TestGrid(t *testing.T) {
	srv, _ := newTestServer(t)
	body := get(t, srv, "/v1/grid", http.StatusOK)
	if int(body["count"].(float64)) != 4 {
		t.Fatalf("count %v, want 4", body["count"])
	}
	if n := len(body["benchmarks"].([]any)); n != 2 {
		t.Fatalf("%d benchmarks, want 2", n)
	}
	if n := len(body["devices"].([]any)); n != 2 {
		t.Fatalf("%d devices, want 2", n)
	}
}

func TestPredictMeasuredAndUnmeasured(t *testing.T) {
	srv, g := newTestServer(t)

	// A measured cell: prediction plus the stored actual.
	body := get(t, srv, "/v1/predict?bench=fft&size=tiny&device=gtx1080", http.StatusOK)
	if body["measured"] != true {
		t.Fatalf("measured = %v", body["measured"])
	}
	pred := body["predicted_ns"].(float64)
	actual := body["actual_ns"].(float64)
	if pred <= 0 || actual <= 0 {
		t.Fatalf("pred %v actual %v", pred, actual)
	}
	want := g.Find("fft", "tiny", "gtx1080").Kernel.Median
	if actual != want {
		t.Fatalf("actual_ns %v, want stored median %v", actual, want)
	}

	// A device the benchmark never ran on: catalogue spec + stored AIWC
	// profiles still yield a prediction.
	body = get(t, srv, "/v1/predict?bench=fft&size=tiny&device=k20m", http.StatusOK)
	if body["measured"] != false {
		t.Fatalf("measured = %v for unmeasured device", body["measured"])
	}
	if body["predicted_ns"].(float64) <= 0 {
		t.Fatalf("predicted_ns %v", body["predicted_ns"])
	}
	if _, has := body["actual_ns"]; has {
		t.Fatal("actual_ns present for unmeasured cell")
	}

	// Unknown workload or device → 404 with a useful message.
	get(t, srv, "/v1/predict?bench=lud&size=tiny&device=gtx1080", http.StatusNotFound)
	get(t, srv, "/v1/predict?bench=fft&size=tiny&device=gtx1081", http.StatusNotFound)
	// Missing parameters → 400.
	get(t, srv, "/v1/predict?bench=fft", http.StatusBadRequest)
}

// postJob submits a job and returns its ID.
func postJob(t *testing.T, srv *server, body string, wantCode int) string {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != wantCode {
		t.Fatalf("POST /v1/jobs: status %d (body %s), want %d", rec.Code, rec.Body, wantCode)
	}
	var resp map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("POST /v1/jobs: invalid JSON %q: %v", rec.Body, err)
	}
	id, _ := resp["id"].(string)
	return id
}

// waitJob polls the status endpoint until the job leaves the running state.
func waitJob(t *testing.T, srv *server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		body := get(t, srv, "/v1/jobs/"+id, http.StatusOK)
		if body["state"] != string(jobRunning) {
			return body
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s still running after 30s", id)
	return nil
}

// TestJobSweepRoundTrip is the async acceptance path: a job extends the
// store with a new device, SSE delivers its per-cell events live, and the
// resulting /v1/grid is byte-for-byte what a synchronous sweep of the same
// selection serves.
func TestJobSweepRoundTrip(t *testing.T) {
	srv, _ := newTestServer(t) // crc,fft × tiny × i7-6700k,gtx1080 = 4 cells

	// A live SSE follower attached before the job exists would 404; attach
	// right after submit, while the job runs, and follow it to the end.
	id := postJob(t, srv,
		`{"benchmarks":["crc","fft"],"sizes":["tiny"],"devices":["i7-6700k","gtx1080","k20m"],"samples":6}`,
		http.StatusAccepted)
	if id == "" {
		t.Fatal("job submission returned no id")
	}

	ts := httptest.NewServer(srv)
	defer ts.Close()
	sse, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sse.Body.Close()
	if got := sse.Header.Get("Content-Type"); got != "text/event-stream" {
		t.Fatalf("SSE content type %q", got)
	}
	var kinds []string
	var lastData string
	scanner := bufio.NewScanner(sse.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if strings.HasPrefix(line, "event: ") {
			kinds = append(kinds, strings.TrimPrefix(line, "event: "))
		}
		if strings.HasPrefix(line, "data: ") {
			lastData = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	// The stream must end by itself after the terminal event.
	if len(kinds) == 0 || kinds[len(kinds)-1] != "grid_done" {
		t.Fatalf("SSE kinds %v: want a trailing grid_done", kinds)
	}
	cellEvents := 0
	for _, k := range kinds {
		if k == "cell_done" || k == "store_hit" {
			cellEvents++
		}
	}
	if cellEvents != 6 {
		t.Fatalf("%d completion events over SSE, want 6", cellEvents)
	}
	var terminal map[string]any
	if err := json.Unmarshal([]byte(lastData), &terminal); err != nil {
		t.Fatalf("terminal SSE data %q: %v", lastData, err)
	}
	if terminal["state"] != string(jobDone) {
		t.Fatalf("terminal event state %v", terminal["state"])
	}
	// 4 cells pre-existed (store hits), k20m's 2 were measured.
	if terminal["store_hits"].(float64) != 4 || terminal["store_misses"].(float64) != 2 {
		t.Fatalf("terminal hits/misses %v/%v, want 4/2", terminal["store_hits"], terminal["store_misses"])
	}

	status := waitJob(t, srv, id)
	if status["state"] != string(jobDone) {
		t.Fatalf("job state %v, want done: %v", status["state"], status)
	}
	if status["done"].(float64) != 6 || status["total"].(float64) != 6 {
		t.Fatalf("job progress %v/%v, want 6/6", status["done"], status["total"])
	}

	// The query snapshot was reloaded: 6 cells served.
	if body := get(t, srv, "/v1/status", http.StatusOK); int(body["cells"].(float64)) != 6 {
		t.Fatalf("cells after job %v, want 6", body["cells"])
	}

	// Byte-for-byte: a synchronous sweep of the same selection into a
	// fresh store serves an identical /v1/grid.
	st2, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := harness.DefaultOptions()
	opt.Samples = 6
	if _, err := harness.RunGrid(context.Background(), suite.New(), harness.GridSpec{
		Benchmarks: []string{"crc", "fft"},
		Sizes:      []string{"tiny"},
		Devices:    []string{"i7-6700k", "gtx1080", "k20m"},
		Options:    opt,
		Workers:    2,
		Store:      st2,
	}); err != nil {
		t.Fatal(err)
	}
	syncSrv, err := newServer(st2, predict.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	rawAsync := getRaw(t, srv, "/v1/grid")
	rawSync := getRaw(t, syncSrv, "/v1/grid")
	if rawAsync != rawSync {
		t.Fatalf("async and sync /v1/grid differ:\nasync: %s\nsync:  %s", rawAsync, rawSync)
	}
}

func getRaw(t *testing.T, srv *server, url string) string {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, rec.Code)
	}
	return rec.Body.String()
}

// TestJobCancel cancels a large job mid-flight: the job settles in a
// terminal state, the store agrees exactly with the reported progress, and
// the query snapshot serves the completed cells.
func TestJobCancel(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(st, predict.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	// The full suite across all sizes on two devices: large enough that
	// the DELETE lands long before completion.
	id := postJob(t, srv, `{"devices":["i7-6700k","gtx1080"],"samples":6}`, http.StatusAccepted)
	req := httptest.NewRequest("DELETE", "/v1/jobs/"+id, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("DELETE: status %d", rec.Code)
	}

	status := waitJob(t, srv, id)
	state := status["state"].(string)
	if state != string(jobCancelled) && state != string(jobDone) {
		t.Fatalf("cancelled job settled as %q", state)
	}
	done := int(status["done"].(float64))
	if state == string(jobCancelled) && done >= int(status["total"].(float64)) {
		t.Fatal("cancelled job claims full completion")
	}
	// Lossless shutdown: every completed cell is in the store, and the
	// reloaded snapshot serves exactly those.
	if st.Len() != done {
		t.Fatalf("store holds %d cells, job reported %d completed", st.Len(), done)
	}
	if body := get(t, srv, "/v1/status", http.StatusOK); int(body["cells"].(float64)) != done {
		t.Fatalf("snapshot serves %v cells, want %d", body["cells"], done)
	}
}

// TestJobValidationAndLookups: bad selections fail at submit time with no
// job registered; unknown job IDs 404.
func TestJobValidationAndLookups(t *testing.T) {
	srv, _ := newTestServer(t)
	postJob(t, srv, `{"benchmarks":["nosuch"]}`, http.StatusBadRequest)
	postJob(t, srv, `{not json`, http.StatusBadRequest)
	if body := get(t, srv, "/v1/jobs", http.StatusOK); int(body["count"].(float64)) != 0 {
		t.Fatalf("rejected submissions registered jobs: %v", body)
	}
	get(t, srv, "/v1/jobs/job-999999", http.StatusNotFound)

	req := httptest.NewRequest("DELETE", "/v1/jobs/job-999999", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("DELETE unknown job: status %d", rec.Code)
	}
}

// TestShutdownCancelsJobs: shutdownJobs() drives running jobs to a
// terminal state and new submissions are rejected while draining.
func TestShutdownCancelsJobs(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(st, predict.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	id := postJob(t, srv, `{"devices":["i7-6700k","gtx1080"],"samples":6}`, http.StatusAccepted)

	srv.shutdownJobs() // blocks until the job settles

	body := get(t, srv, "/v1/jobs/"+id, http.StatusOK)
	if body["state"] == string(jobRunning) {
		t.Fatalf("job still running after shutdownJobs: %v", body)
	}
	if st.Len() != int(body["done"].(float64)) {
		t.Fatalf("store holds %d cells, job completed %v — shutdown lost cells", st.Len(), body["done"])
	}
	postJob(t, srv, `{"benchmarks":["crc"],"sizes":["tiny"],"devices":["i7-6700k"]}`, http.StatusServiceUnavailable)
}

// postSchedule POSTs a /v1/schedule body and decodes the response.
func postSchedule(t *testing.T, srv *server, body string, wantCode int) map[string]any {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/schedule", strings.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != wantCode {
		t.Fatalf("POST /v1/schedule: status %d (body %s), want %d", rec.Code, rec.Body, wantCode)
	}
	var resp map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("POST /v1/schedule: invalid JSON %q: %v", rec.Body, err)
	}
	return resp
}

// TestScheduleEndpoint: a workload over a fleet wider than the store's
// measurements schedules with predicted slots flagged; after a job measures
// the missing device the same request resolves fully measured — the
// predict-only versus after-measurement round trip of the CI store-smoke.
func TestScheduleEndpoint(t *testing.T) {
	srv, _ := newTestServer(t) // crc,fft × tiny × i7-6700k,gtx1080 measured
	reqBody := `{"tasks":[{"benchmark":"fft","size":"tiny","count":2},{"benchmark":"crc","size":"tiny"}],
		"devices":["i7-6700k","gtx1080","k20m"],"policy":"heft"}`

	body := postSchedule(t, srv, reqBody, http.StatusOK)
	if body["policy"] != "heft" || int(body["tasks"].(float64)) != 3 {
		t.Fatalf("schedule header wrong: %v", body)
	}
	if body["makespan_ms"].(float64) <= 0 {
		t.Fatalf("non-positive makespan: %v", body["makespan_ms"])
	}
	if len(body["slots"].([]any)) != 3 {
		t.Fatalf("%d slots, want 3", len(body["slots"].([]any)))
	}
	measuredBefore := int(body["measured"].(float64))
	if int(body["predicted"].(float64))+measuredBefore != 3 {
		t.Fatalf("source counts do not add up: %v", body)
	}

	// Measure k20m, then every (task, device) cell of the fleet is stored:
	// the same schedule request must resolve with zero predictions.
	id := postJob(t, srv, `{"benchmarks":["crc","fft"],"sizes":["tiny"],"devices":["k20m"],"samples":6}`, http.StatusAccepted)
	waitJob(t, srv, id)
	body = postSchedule(t, srv, reqBody, http.StatusOK)
	if int(body["predicted"].(float64)) != 0 || int(body["measured"].(float64)) != 3 {
		t.Fatalf("after measurement: %v predicted / %v measured, want 0/3", body["predicted"], body["measured"])
	}
	if int(body["training_cells"].(float64)) != 6 {
		t.Fatalf("training_cells %v, want 6 (cost model not regenerated)", body["training_cells"])
	}
}

// TestScheduleEnergyBudget: the energy policy honours an explicit makespan
// budget and reports the energy split.
func TestScheduleEnergyBudget(t *testing.T) {
	srv, _ := newTestServer(t)
	body := postSchedule(t, srv,
		`{"tasks":[{"benchmark":"crc","size":"tiny","count":4}],"devices":["i7-6700k","gtx1080"],
		  "policy":"energy","makespan_budget_ms":10000}`,
		http.StatusOK)
	if body["policy"] != "energy" {
		t.Fatalf("policy %v", body["policy"])
	}
	if body["total_energy_j"].(float64) <= 0 {
		t.Fatalf("energy %v", body["total_energy_j"])
	}
}

// TestScheduleValidation is the regression test for the error convention:
// unknown policies list every valid one sorted; malformed workloads name
// the valid benchmarks; unknown devices name the catalogue; rows absent
// from the store 404.
func TestScheduleValidation(t *testing.T) {
	srv, _ := newTestServer(t)

	resp := postSchedule(t, srv,
		`{"tasks":[{"benchmark":"crc","size":"tiny"}],"policy":"quantum"}`, http.StatusBadRequest)
	msg := resp["error"].(string)
	last := -1
	for _, name := range []string{"energy", "fastest-device", "greedy", "heft", "roundrobin"} {
		i := strings.Index(msg, name)
		if i < 0 {
			t.Fatalf("policy error %q does not mention %q", msg, name)
		}
		if i < last {
			t.Fatalf("policy error %q lists policies out of order", msg)
		}
		last = i
	}

	resp = postSchedule(t, srv, `{"tasks":[{"benchmark":"nosuch","size":"tiny"}]}`, http.StatusBadRequest)
	for _, want := range []string{"nosuch", "crc", "fft"} {
		if !strings.Contains(resp["error"].(string), want) {
			t.Fatalf("workload error %q does not mention %q", resp["error"], want)
		}
	}

	resp = postSchedule(t, srv, `{"tasks":[{"benchmark":"crc","size":"tiny"}],"devices":["gtx1081"]}`, http.StatusBadRequest)
	if !strings.Contains(resp["error"].(string), "gtx1080") {
		t.Fatalf("device error %q does not name the catalogue", resp["error"])
	}

	postSchedule(t, srv, `{"tasks":[]}`, http.StatusBadRequest)
	postSchedule(t, srv, `{not json`, http.StatusBadRequest)
	postSchedule(t, srv, `{"tasks":[{"benchmark":"crc","size":"tiny"}],"polcy":"heft"}`, http.StatusBadRequest)

	// srad/tiny is a valid workload but has no stored cells on any device.
	postSchedule(t, srv, `{"tasks":[{"benchmark":"srad","size":"tiny"}]}`, http.StatusNotFound)
}

// TestPredictRetrainsAfterJob: the forest is invalidated when a job adds
// cells — training_cells must track the new snapshot.
func TestPredictRetrainsAfterJob(t *testing.T) {
	srv, _ := newTestServer(t)
	body := get(t, srv, "/v1/predict?bench=fft&size=tiny&device=gtx1080", http.StatusOK)
	if int(body["training_cells"].(float64)) != 4 {
		t.Fatalf("training_cells %v, want 4", body["training_cells"])
	}
	id := postJob(t, srv, `{"benchmarks":["crc","fft"],"sizes":["tiny"],"devices":["k20m"],"samples":6}`, http.StatusAccepted)
	waitJob(t, srv, id)
	body = get(t, srv, "/v1/predict?bench=fft&size=tiny&device=k20m", http.StatusOK)
	if body["measured"] != true {
		t.Fatalf("k20m cell not measured after job: %v", body)
	}
	if int(body["training_cells"].(float64)) != 6 {
		t.Fatalf("training_cells after job %v, want 6 (forest not retrained)", body["training_cells"])
	}
}

// TestMetricsSlotcacheAgreesWithEvents is the acceptance check for the
// zero-copy read path's observability: the slotcache_* counters on /metrics
// move in lockstep with the job event stream. The arithmetic is exact —
// the startup snapshot decodes each of the 4 cells once (4 misses), a job
// over the same selection store-hits all 4 through the slot cache and its
// post-job reload hits them again, so hits = 2 × the job's store_hits and
// no evictions ever fire (nothing was overwritten).
func TestMetricsSlotcacheAgreesWithEvents(t *testing.T) {
	srv, g := newTestServer(t)

	metrics := func() map[string]int {
		raw := getRaw(t, srv, "/metrics")
		out := map[string]int{}
		for _, line := range strings.Split(raw, "\n") {
			var name string
			var v int
			if n, _ := fmt.Sscanf(line, "slotcache_%s %d", &name, &v); n == 2 {
				out["slotcache_"+name] = v
			}
		}
		return out
	}

	m := metrics()
	if m["slotcache_misses_total"] != g.Cells() || m["slotcache_hits_total"] != 0 {
		t.Fatalf("startup metrics %v, want %d misses / 0 hits", m, g.Cells())
	}

	id := postJob(t, srv,
		`{"benchmarks":["crc","fft"],"sizes":["tiny"],"devices":["i7-6700k","gtx1080"],"samples":6}`,
		http.StatusAccepted)
	status := waitJob(t, srv, id)
	if status["state"] != string(jobDone) {
		t.Fatalf("job state %v", status["state"])
	}
	hits := int(status["store_hits"].(float64))
	if hits != g.Cells() {
		t.Fatalf("job store_hits %d, want %d", hits, g.Cells())
	}

	m = metrics()
	if m["slotcache_hits_total"] != 2*hits {
		t.Fatalf("slotcache_hits_total %d, want %d (job %d + reload %d)",
			m["slotcache_hits_total"], 2*hits, hits, hits)
	}
	if m["slotcache_misses_total"] != g.Cells() {
		t.Fatalf("slotcache_misses_total %d changed after an all-hit job, want %d",
			m["slotcache_misses_total"], g.Cells())
	}
	if m["slotcache_evictions_total"] != 0 {
		t.Fatalf("slotcache_evictions_total %d with nothing overwritten", m["slotcache_evictions_total"])
	}
}
