// Command dwarfserve serves a persistent result store over HTTP — the
// query and execution side of the dwarfsweep/dwarfbench/dwarfpredict
// -store pipeline. It loads every cell of the store into an in-memory
// index at startup (the store's own index is sharded by fingerprint; the
// server adds O(1) cell addressing by benchmark × size × device) and
// answers JSON queries:
//
//	GET    /healthz                               liveness (plus quarantined devices, deprecated)
//	GET    /v1/status                             build info, uptime, cell/segment/job counts
//	GET    /metrics                               Prometheus text exposition of the server registry
//	GET    /v1/cells?bench=fft&size=tiny&device=gtx1080   filtered cell summaries
//	GET    /v1/grid                               every cell + the grid axes
//	GET    /v1/predict?bench=fft&size=tiny&device=gtx1080  runtime prediction
//	POST   /v1/schedule                           prediction-guided workload placement
//
// Beyond queries, dwarfserve executes sweeps asynchronously: a job measures
// a benchmark × size × device selection into the store (cells already
// present are store hits), streams per-cell progress, and on completion the
// server reloads its index so /v1/grid and /v1/predict see the new cells —
// identical, byte for byte, to a synchronous dwarfsweep of the same
// selection:
//
//	POST   /v1/jobs            submit a sweep {"benchmarks":[...],"sizes":[...],"devices":[...]}
//	GET    /v1/jobs            list jobs
//	GET    /v1/jobs/{id}        job status + progress counters
//	GET    /v1/jobs/{id}/events  per-cell event stream (Server-Sent Events)
//	DELETE /v1/jobs/{id}        cancel; completed cells stay persisted
//
// /v1/predict trains the internal/predict random forest over all stored
// cells on first use (deterministic in -seed, retrained after a job adds
// cells) and answers for any catalogue device — including devices the
// benchmark never ran on, the paper's §7 scenario.
//
// Every request passes a metrics/logging middleware (route-labelled
// request counters and latency histograms; 4xx/5xx logged server-side),
// job grids derive harness counters, and the store counts its appends and
// compactions — all into one registry served at GET /metrics. -pprof
// additionally mounts net/http/pprof under /debug/pprof/.
//
// SIGINT/SIGTERM shut down gracefully: running jobs are cancelled through
// their contexts (completed cells are already flushed to the store — the
// write path persists each cell before announcing it), event streams end
// with their terminal grid_done, and in-flight HTTP requests drain through
// http.Server.Shutdown before the store is closed.
//
//	dwarfsweep -sizes tiny -store results/
//	dwarfserve -store results/ -addr :7077
package main

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"opendwarfs/internal/harness"
	"opendwarfs/internal/obs"
	"opendwarfs/internal/obs/series"
	"opendwarfs/internal/obs/slo"
	"opendwarfs/internal/predict"
	"opendwarfs/internal/sched"
	"opendwarfs/internal/sim"
	"opendwarfs/internal/store"
)

func main() {
	def := predict.DefaultConfig()
	var (
		storeDir    = flag.String("store", "", "persistent result store directory (required)")
		shards      = flag.Int("shards", 1, "shard count for -store: >1 serves an n-way sharded store (shard-NN subdirectories, as written by dwarfsweep -shards)")
		compactOver = flag.Int64("compact-over", 0, "compact the store after a job reload whenever its on-disk footprint exceeds this many bytes (0 = never)")
		addr        = flag.String("addr", ":7077", "listen address")
		trees       = flag.Int("trees", def.Trees, "forest size for /v1/predict")
		depth       = flag.Int("depth", def.MaxDepth, "maximum tree depth for /v1/predict")
		seed        = flag.Int64("seed", def.Seed, "training seed for /v1/predict")
		drain       = flag.Duration("drain", 15*time.Second, "graceful-shutdown deadline for in-flight HTTP requests")
		pprofOn     = flag.Bool("pprof", false, "serve net/http/pprof profiles under /debug/pprof/")
		sampleEvery = flag.Duration("sample-interval", time.Second, "telemetry sampling period for /v1/metrics/history and /v1/metrics/stream")
		seriesCap   = flag.Int("series-capacity", 600, "telemetry ring capacity in samples (history window = capacity × interval)")
		alertsPath  = flag.String("alerts", "", "JSON alert-rule file for /v1/alerts (default: built-in rules)")
		tracePath   = flag.String("trace", "", "write a Chrome trace-event file of the server's job spans on shutdown (open in Perfetto or chrome://tracing)")
	)
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "dwarfserve: missing -store")
		os.Exit(1)
	}

	// The store is wrapped in the zero-copy slot cache before anything reads
	// it: the initial snapshot load, every job, and every reload all share
	// one decoded measurement per cell, and the cache's hit/miss/evict
	// counters are complete from process start.
	var inner store.CellStore
	var err error
	if *shards > 1 {
		inner, err = store.OpenSharded(*storeDir, *shards)
	} else {
		inner, err = store.Open(*storeDir)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dwarfserve:", err)
		os.Exit(1)
	}
	st := store.Cached(inner)
	cfg := def
	cfg.Trees, cfg.MaxDepth, cfg.Seed = *trees, *depth, *seed

	srv, err := newServer(st, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dwarfserve:", err)
		os.Exit(1)
	}
	srv.compactOver = *compactOver
	if *pprofOn {
		srv.enablePprof()
	}
	rules := defaultAlertRules()
	if *alertsPath != "" {
		f, err := os.Open(*alertsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dwarfserve:", err)
			os.Exit(1)
		}
		rules, err = slo.LoadRules(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dwarfserve:", err)
			os.Exit(1)
		}
	}
	if err := srv.initTelemetry(series.Options{Capacity: *seriesCap, Interval: *sampleEvery}, rules); err != nil {
		fmt.Fprintln(os.Stderr, "dwarfserve:", err)
		os.Exit(1)
	}
	if *tracePath != "" {
		srv.tracer = obs.NewTracer()
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	samplerCtx, samplerStop := context.WithCancel(context.Background())
	defer samplerStop()
	go srv.runSampler(samplerCtx)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	log.Printf("dwarfserve: %d cells from %s (%d shard(s), %d segment files), listening on %s",
		srv.cells(), *storeDir, *shards, store.SegmentsOf(st), *addr)

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "dwarfserve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful shutdown: cancel running jobs first — their workers stop
	// claiming cells, in-flight measurements abort, and every completed
	// cell is already in the store — then drain HTTP connections (the
	// cancelled jobs' SSE streams end with grid_done, so they drain too),
	// and finally close the store.
	log.Printf("dwarfserve: shutting down: cancelling %d running job(s), draining connections", srv.runningJobs())
	srv.shutdownJobs()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("dwarfserve: drain: %v", err)
	}
	samplerStop()
	if err := st.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "dwarfserve:", err)
		os.Exit(1)
	}
	// The trace is exported last, after every job span (including
	// cancelled ones) has ended — shutdownJobs waited for their terminal
	// events — so the file is always well-formed.
	if srv.tracer != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dwarfserve:", err)
			os.Exit(1)
		}
		if err := srv.tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "dwarfserve:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dwarfserve:", err)
			os.Exit(1)
		}
		log.Printf("dwarfserve: Chrome trace (%d spans) written to %s", srv.tracer.Spans(), *tracePath)
	}
	log.Printf("dwarfserve: store closed, bye")
}

// server answers queries from a grid snapshot of the store. The snapshot is
// loaded at startup and reloaded whenever an async job finishes, so query
// handlers see new cells without a restart; sweeps run by other processes
// still become visible on restart only.
type server struct {
	st          store.CellStore
	compactOver int64 // post-reload footprint bound in bytes; 0 = unbounded
	mux         *http.ServeMux
	cfg         predict.Config
	metrics     *obs.Registry // one registry for HTTP, store, jobs and gauges
	started     time.Time     // process start, for /v1/status uptime

	// mu guards the query snapshot: the grid, the O(1) cell index and the
	// axes (distinct values in store listing order).
	mu                         sync.RWMutex
	grid                       *harness.Grid
	byCell                     map[string]*harness.Measurement
	benchmarks, sizes, devices []string
	gridGen                    int // bumped per reload; stale forests retrain

	// The forest is trained lazily on first /v1/predict over the snapshot
	// of the current generation; a reload invalidates it.
	trainMu    sync.Mutex
	trainedGen int
	forest     *predict.Forest
	trainErr   error

	// The scheduler's cost provider follows the same generation
	// discipline, built lazily on first /v1/schedule; see schedule.go.
	schedMu    sync.Mutex
	schedGen   int
	schedCosts *sched.Costs
	schedErr   error

	// Async sweep jobs; see jobs.go.
	jobMu      sync.Mutex
	jobs       map[string]*job
	jobOrder   []string // creation order, for listing
	jobSeq     int
	jobsCtx    context.Context // parent of every job context
	jobsCancel context.CancelFunc
	jobWG      sync.WaitGroup
	draining   bool // set at shutdown: new jobs are rejected

	// keepAlive is the SSE comment-frame interval (tests shrink it).
	keepAlive time.Duration

	// Live telemetry (see telemetry.go): the ring-buffer recorder over
	// this server's registry and the alert engine evaluated on each
	// sample tick. Assigned by initTelemetry before serving starts,
	// never re-assigned after.
	series *series.Recorder
	alerts *slo.Engine

	// tracer records server-lifetime spans (jobs and their harness
	// children) when -trace is set; nil otherwise.
	tracer *obs.Tracer

	// Devices quarantined by job executions (device → reason). /v1/schedule
	// keeps them out of the default fleet and rejects explicit requests for
	// them; healthz lists them.
	quarMu      sync.Mutex
	quarantined map[string]string
}

func cellID(bench, size, device string) string { return bench + "\x00" + size + "\x00" + device }

func newServer(st store.CellStore, cfg predict.Config) (*server, error) {
	s := &server{
		st:          st,
		cfg:         cfg,
		metrics:     obs.NewRegistry(),
		started:     time.Now(),
		trainedGen:  -1,
		schedGen:    -1,
		jobs:        make(map[string]*job),
		keepAlive:   15 * time.Second,
		quarantined: make(map[string]string),
	}
	// Instrument before the first read so the startup snapshot's slot-cache
	// misses (and any store counters) are visible on /metrics.
	store.InstrumentStore(st, s.metrics)
	if err := s.initTelemetry(series.Options{}, defaultAlertRules()); err != nil {
		return nil, err
	}
	s.jobsCtx, s.jobsCancel = context.WithCancel(context.Background())
	if err := s.reloadFromStore(); err != nil {
		return nil, err
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	s.mux.HandleFunc("GET /v1/metrics/history", s.handleMetricsHistory)
	s.mux.HandleFunc("GET /v1/metrics/stream", s.handleMetricsStream)
	s.mux.HandleFunc("GET /v1/alerts", s.handleAlerts)
	s.mux.HandleFunc("GET /v1/cells", s.handleCells)
	s.mux.HandleFunc("GET /v1/grid", s.handleGrid)
	s.mux.HandleFunc("GET /v1/predict", s.handlePredict)
	s.mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobCreate)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	return s, nil
}

// cells reports the current snapshot's cell count.
func (s *server) cells() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.grid.Cells()
}

// setGrid installs a fresh query snapshot and invalidates the forest.
func (s *server) setGrid(grid *harness.Grid) {
	byCell := make(map[string]*harness.Measurement, grid.Cells())
	var benchmarks, sizes, devices []string
	seenB, seenS, seenD := map[string]bool{}, map[string]bool{}, map[string]bool{}
	for _, m := range grid.Measurements {
		byCell[cellID(m.Benchmark, m.Size, m.Device.ID)] = m
		if !seenB[m.Benchmark] {
			seenB[m.Benchmark] = true
			benchmarks = append(benchmarks, m.Benchmark)
		}
		if !seenS[m.Size] {
			seenS[m.Size] = true
			sizes = append(sizes, m.Size)
		}
		if !seenD[m.Device.ID] {
			seenD[m.Device.ID] = true
			devices = append(devices, m.Device.ID)
		}
	}
	s.mu.Lock()
	s.grid, s.byCell = grid, byCell
	s.benchmarks, s.sizes, s.devices = benchmarks, sizes, devices
	s.gridGen++
	s.mu.Unlock()
}

// reloadFromStore rebuilds the snapshot from the store — called after a
// job lands new cells, so queries (and the CI byte-for-byte check) see
// exactly what a fresh GridFromStore would.
func (s *server) reloadFromStore() error {
	grid, err := harness.GridFromStore(s.st)
	if err != nil {
		return err
	}
	s.setGrid(grid)
	return nil
}

// maybeCompact enforces the -compact-over footprint bound after a job
// reload: when the store reports a footprint above the bound, dead segment
// files are folded into a fresh snapshot. Compaction is best-effort — a
// failure is logged, never fatal, and the next reload tries again.
func (s *server) maybeCompact() {
	if s.compactOver <= 0 {
		return
	}
	sb, ok := s.st.(store.SizeBounded)
	if !ok {
		return
	}
	compacted, err := sb.CompactIfOver(s.compactOver)
	if err != nil {
		log.Printf("dwarfserve: compact-over: %v", err)
		return
	}
	if compacted {
		bytes, _ := sb.DiskBytes()
		log.Printf("dwarfserve: store compacted under -compact-over=%d (now %d bytes, %d segment file(s))",
			s.compactOver, bytes, store.SegmentsOf(s.st))
	}
}

// ServeHTTP lives in obs.go: the request/metrics/logging middleware wraps
// the mux there.

// cellSummary is the wire form of one measured cell: the statistics every
// figure is built from, without the raw sample vectors.
type cellSummary struct {
	Benchmark        string  `json:"benchmark"`
	Size             string  `json:"size"`
	Device           string  `json:"device"`
	Class            string  `json:"class"`
	Functional       bool    `json:"functional"`
	Verified         bool    `json:"verified"`
	Samples          int     `json:"samples"`
	Iterations       int     `json:"iterations_per_sample"`
	FootprintBytes   int64   `json:"footprint_bytes"`
	MedianNs         float64 `json:"median_ns"`
	MeanNs           float64 `json:"mean_ns"`
	CV               float64 `json:"cv"`
	CI95LoNs         float64 `json:"ci95_lo_ns"`
	CI95HiNs         float64 `json:"ci95_hi_ns"`
	TransferMedianNs float64 `json:"transfer_median_ns"`
	EnergyMedianJ    float64 `json:"energy_median_j"`
}

func summarize(m *harness.Measurement) cellSummary {
	return cellSummary{
		Benchmark:        m.Benchmark,
		Size:             m.Size,
		Device:           m.Device.ID,
		Class:            m.Device.Class.String(),
		Functional:       m.Functional,
		Verified:         m.Verified,
		Samples:          len(m.KernelNs),
		Iterations:       m.Iterations,
		FootprintBytes:   m.FootprintBytes,
		MedianNs:         m.Kernel.Median,
		MeanNs:           m.Kernel.Mean,
		CV:               m.Kernel.CV,
		CI95LoNs:         m.Kernel.CI95Lo,
		CI95HiNs:         m.Kernel.CI95Hi,
		TransferMedianNs: m.Transfer.Median,
		EnergyMedianJ:    m.Energy.Median,
	}
}

// quarantineDevice records a device-down verdict from a job execution.
func (s *server) quarantineDevice(device, reason string) {
	s.quarMu.Lock()
	s.quarantined[device] = reason
	s.quarMu.Unlock()
}

// quarantinedDevices returns the quarantine registry's device IDs, sorted.
func (s *server) quarantinedDevices() []string {
	s.quarMu.Lock()
	defer s.quarMu.Unlock()
	out := make([]string, 0, len(s.quarantined))
	for d := range s.quarantined {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// handleHealth is pure liveness: the process is up and answering. The
// cell/segment/schema/job counters that used to live here moved to
// /v1/status.
//
// Deprecated: the `quarantined` field is kept only for pre-/v1/status
// clients and will be removed once none remain; every in-repo consumer
// (the chaos CI gate, chaos_test.go) now reads it from /v1/status, and
// new callers must too (see README "Deprecations").
func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{"status": "ok"}
	if quar := s.quarantinedDevices(); len(quar) > 0 {
		resp["quarantined"] = quar
	}
	writeJSON(w, http.StatusOK, resp)
}

// defaultCellPageLimit bounds an unpaginated /v1/cells answer; clients
// wanting the rest follow next_cursor.
const defaultCellPageLimit = 500

// cellCursor is the keyset-pagination position of one cell: its
// (benchmark, size, device) triple, NUL-joined so that lexicographic
// comparison of cursors equals tuple comparison of cells — exactly the
// canonical order the snapshot is listed in. Keyset cursors survive
// snapshot reloads between pages: cells added behind the cursor are
// skipped, cells added ahead of it appear, and nothing is ever repeated.
func cellCursor(m *harness.Measurement) string {
	return m.Benchmark + "\x00" + m.Size + "\x00" + m.Device.ID
}

func encodeCursor(c string) string { return base64.RawURLEncoding.EncodeToString([]byte(c)) }

func decodeCursor(s string) (string, error) {
	b, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil || strings.Count(string(b), "\x00") != 2 {
		return "", fmt.Errorf("invalid cursor %q", s)
	}
	return string(b), nil
}

// handleCells answers filtered cell listings as a paginated envelope:
//
//	{"items": [...], "next_cursor": "...", "total": N}
//
// total counts every cell matching the filters; items holds at most limit=
// of them (default 500) starting after cursor=; next_cursor is the opaque
// position to resume from, empty on the last page. ?legacy=1 serves the
// deprecated pre-pagination {"count", "cells"} shape unpaginated; it will
// be removed once known clients have migrated (see README).
func (s *server) handleCells(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	bench, size, device := q.Get("bench"), q.Get("size"), q.Get("device")
	var matched []*harness.Measurement
	s.mu.RLock()
	for _, m := range s.grid.Measurements {
		if (bench == "" || m.Benchmark == bench) &&
			(size == "" || m.Size == size) &&
			(device == "" || m.Device.ID == device) {
			matched = append(matched, m)
		}
	}
	s.mu.RUnlock()

	if q.Get("legacy") == "1" {
		cells := make([]cellSummary, 0, len(matched))
		for _, m := range matched {
			cells = append(cells, summarize(m))
		}
		writeJSON(w, http.StatusOK, map[string]any{"count": len(cells), "cells": cells})
		return
	}

	limit := defaultCellPageLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid limit %q (want a positive integer)", v))
			return
		}
		limit = n
	}
	start := 0
	if cur := q.Get("cursor"); cur != "" {
		after, err := decodeCursor(cur)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		// The snapshot is in canonical (benchmark, size, device) order, so
		// the page resumes at the first cell strictly after the cursor.
		start = sort.Search(len(matched), func(i int) bool { return cellCursor(matched[i]) > after })
	}
	end := min(start+limit, len(matched))
	items := make([]cellSummary, 0, end-start)
	for _, m := range matched[start:end] {
		items = append(items, summarize(m))
	}
	next := ""
	if end < len(matched) {
		next = encodeCursor(cellCursor(matched[end-1]))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"items":       items,
		"next_cursor": next,
		"total":       len(matched),
	})
}

func (s *server) handleGrid(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	cells := make([]cellSummary, 0, s.grid.Cells())
	for _, m := range s.grid.Measurements {
		cells = append(cells, summarize(m))
	}
	resp := map[string]any{
		"benchmarks": s.benchmarks,
		"sizes":      s.sizes,
		"devices":    s.devices,
		"count":      len(cells),
		"cells":      cells,
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	bench, size, device := q.Get("bench"), q.Get("size"), q.Get("device")
	if bench == "" || size == "" || device == "" {
		writeError(w, http.StatusBadRequest, "want bench=, size= and device= query parameters")
		return
	}

	// Snapshot the generation's grid: training and lookup must agree even
	// if a job reloads the snapshot mid-request.
	s.mu.RLock()
	grid, gen, devices := s.grid, s.gridGen, s.devices
	// The workload half of the feature vector comes from any stored
	// measurement of this benchmark × size — AIWC profiles are
	// device-independent, so the first one is as good as any.
	var src *harness.Measurement
	for _, d := range devices {
		if m := s.byCell[cellID(bench, size, d)]; m != nil {
			src = m
			break
		}
	}
	actual := s.byCell[cellID(bench, size, device)]
	s.mu.RUnlock()
	if src == nil {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("no stored measurement of %s/%s on any device; sweep it into the store first", bench, size))
		return
	}

	// The device half comes from the stored cell when this exact device
	// was measured, otherwise from the catalogue — which is what lets the
	// daemon answer for devices the benchmark never ran on.
	var spec *sim.DeviceSpec
	if actual != nil {
		spec = actual.Device
	} else {
		var err error
		if spec, err = sim.Lookup(device); err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
	}

	forest, err := s.trainedForest(grid, gen)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}

	predNs := forest.PredictNs(predict.Features(src.Profiles, src.KernelLaunches, spec))
	resp := map[string]any{
		"benchmark":      bench,
		"size":           size,
		"device":         device,
		"predicted_ns":   predNs,
		"measured":       actual != nil,
		"training_cells": grid.Cells(),
	}
	if actual != nil {
		resp["actual_ns"] = actual.Kernel.Median
		resp["ape"] = 100 * math.Abs(predNs-actual.Kernel.Median) / actual.Kernel.Median
	}
	writeJSON(w, http.StatusOK, resp)
}

// trainedForest returns the forest for the given snapshot generation,
// training it (deterministically in cfg.Seed) when the cached one is
// missing or was trained on an older generation. A request that snapshot
// its grid before a reload trains without caching, so a straggler can
// never overwrite a newer generation's forest and force re-training.
func (s *server) trainedForest(grid *harness.Grid, gen int) (*predict.Forest, error) {
	s.trainMu.Lock()
	defer s.trainMu.Unlock()
	if s.trainedGen == gen {
		return s.forest, s.trainErr
	}
	ds, err := predict.FromGrid(grid)
	if err != nil {
		return nil, err
	}
	forest, trainErr := predict.Train(ds, s.cfg)
	if gen > s.trainedGen {
		s.forest, s.trainErr, s.trainedGen = forest, trainErr, gen
	}
	return forest, trainErr
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("dwarfserve: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"error": msg})
}
