// Command dwarfserve serves a persistent result store over HTTP — the
// query side of the dwarfsweep/dwarfbench/dwarfpredict -store pipeline.
// It loads every cell of the store into an in-memory index at startup
// (the store's own index is sharded by fingerprint; the server adds O(1)
// cell addressing by benchmark × size × device) and answers JSON queries:
//
//	GET /healthz                                  liveness + cell count
//	GET /v1/cells?bench=fft&size=tiny&device=gtx1080   filtered cell summaries
//	GET /v1/grid                                  every cell + the grid axes
//	GET /v1/predict?bench=fft&size=tiny&device=gtx1080  runtime prediction
//
// /v1/predict trains the internal/predict random forest over all stored
// cells on first use (deterministic in -seed) and answers for any
// catalogue device — including devices the benchmark never ran on, the
// paper's §7 scenario: the AIWC workload features come from the stored
// measurements of that benchmark × size, the device features from the
// catalogue spec.
//
//	dwarfsweep -sizes tiny -store results/
//	dwarfserve -store results/ -addr :7077
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"sync"

	"opendwarfs/internal/harness"
	"opendwarfs/internal/predict"
	"opendwarfs/internal/sim"
	"opendwarfs/internal/store"
)

func main() {
	def := predict.DefaultConfig()
	var (
		storeDir = flag.String("store", "", "persistent result store directory (required)")
		addr     = flag.String("addr", ":7077", "listen address")
		trees    = flag.Int("trees", def.Trees, "forest size for /v1/predict")
		depth    = flag.Int("depth", def.MaxDepth, "maximum tree depth for /v1/predict")
		seed     = flag.Int64("seed", def.Seed, "training seed for /v1/predict")
	)
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "dwarfserve: missing -store")
		os.Exit(1)
	}

	st, err := store.Open(*storeDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dwarfserve:", err)
		os.Exit(1)
	}
	grid, err := harness.GridFromStore(st)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dwarfserve:", err)
		os.Exit(1)
	}
	cfg := def
	cfg.Trees, cfg.MaxDepth, cfg.Seed = *trees, *depth, *seed

	srv := newServer(st, grid, cfg)
	log.Printf("dwarfserve: %d cells from %s (%d segment files), listening on %s",
		grid.Cells(), *storeDir, st.Segments(), *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintln(os.Stderr, "dwarfserve:", err)
		os.Exit(1)
	}
}

// server answers queries from a grid snapshot loaded at startup. Sweeps
// that append to the store after startup become visible on restart.
type server struct {
	st   *store.Store
	grid *harness.Grid
	mux  *http.ServeMux
	// byCell gives O(1) cell addressing; the axes are the distinct values
	// in store listing order.
	byCell                     map[string]*harness.Measurement
	benchmarks, sizes, devices []string

	cfg predict.Config
	// The forest is trained once, on first /v1/predict, over every stored
	// cell; training is deterministic in cfg.Seed.
	trainOnce sync.Once
	forest    *predict.Forest
	trainErr  error
}

func cellID(bench, size, device string) string { return bench + "\x00" + size + "\x00" + device }

func newServer(st *store.Store, grid *harness.Grid, cfg predict.Config) *server {
	s := &server{st: st, grid: grid, cfg: cfg, byCell: make(map[string]*harness.Measurement, grid.Cells())}
	seenB, seenS, seenD := map[string]bool{}, map[string]bool{}, map[string]bool{}
	for _, m := range grid.Measurements {
		s.byCell[cellID(m.Benchmark, m.Size, m.Device.ID)] = m
		if !seenB[m.Benchmark] {
			seenB[m.Benchmark] = true
			s.benchmarks = append(s.benchmarks, m.Benchmark)
		}
		if !seenS[m.Size] {
			seenS[m.Size] = true
			s.sizes = append(s.sizes, m.Size)
		}
		if !seenD[m.Device.ID] {
			seenD[m.Device.ID] = true
			s.devices = append(s.devices, m.Device.ID)
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/cells", s.handleCells)
	s.mux.HandleFunc("GET /v1/grid", s.handleGrid)
	s.mux.HandleFunc("GET /v1/predict", s.handlePredict)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// cellSummary is the wire form of one measured cell: the statistics every
// figure is built from, without the raw sample vectors.
type cellSummary struct {
	Benchmark        string  `json:"benchmark"`
	Size             string  `json:"size"`
	Device           string  `json:"device"`
	Class            string  `json:"class"`
	Functional       bool    `json:"functional"`
	Verified         bool    `json:"verified"`
	Samples          int     `json:"samples"`
	Iterations       int     `json:"iterations_per_sample"`
	FootprintBytes   int64   `json:"footprint_bytes"`
	MedianNs         float64 `json:"median_ns"`
	MeanNs           float64 `json:"mean_ns"`
	CV               float64 `json:"cv"`
	CI95LoNs         float64 `json:"ci95_lo_ns"`
	CI95HiNs         float64 `json:"ci95_hi_ns"`
	TransferMedianNs float64 `json:"transfer_median_ns"`
	EnergyMedianJ    float64 `json:"energy_median_j"`
}

func summarize(m *harness.Measurement) cellSummary {
	return cellSummary{
		Benchmark:        m.Benchmark,
		Size:             m.Size,
		Device:           m.Device.ID,
		Class:            m.Device.Class.String(),
		Functional:       m.Functional,
		Verified:         m.Verified,
		Samples:          len(m.KernelNs),
		Iterations:       m.Iterations,
		FootprintBytes:   m.FootprintBytes,
		MedianNs:         m.Kernel.Median,
		MeanNs:           m.Kernel.Mean,
		CV:               m.Kernel.CV,
		CI95LoNs:         m.Kernel.CI95Lo,
		CI95HiNs:         m.Kernel.CI95Hi,
		TransferMedianNs: m.Transfer.Median,
		EnergyMedianJ:    m.Energy.Median,
	}
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"cells":    s.grid.Cells(),
		"segments": s.st.Segments(),
		"schema":   harness.StoreSchemaVersion,
	})
}

func (s *server) handleCells(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	bench, size, device := q.Get("bench"), q.Get("size"), q.Get("device")
	cells := []cellSummary{}
	for _, m := range s.grid.Measurements {
		if (bench == "" || m.Benchmark == bench) &&
			(size == "" || m.Size == size) &&
			(device == "" || m.Device.ID == device) {
			cells = append(cells, summarize(m))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(cells), "cells": cells})
}

func (s *server) handleGrid(w http.ResponseWriter, r *http.Request) {
	cells := make([]cellSummary, 0, s.grid.Cells())
	for _, m := range s.grid.Measurements {
		cells = append(cells, summarize(m))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"benchmarks": s.benchmarks,
		"sizes":      s.sizes,
		"devices":    s.devices,
		"count":      len(cells),
		"cells":      cells,
	})
}

func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	bench, size, device := q.Get("bench"), q.Get("size"), q.Get("device")
	if bench == "" || size == "" || device == "" {
		writeError(w, http.StatusBadRequest, "want bench=, size= and device= query parameters")
		return
	}

	// The workload half of the feature vector comes from any stored
	// measurement of this benchmark × size — AIWC profiles are
	// device-independent, so the first one is as good as any.
	var src *harness.Measurement
	for _, d := range s.devices {
		if m := s.byCell[cellID(bench, size, d)]; m != nil {
			src = m
			break
		}
	}
	if src == nil {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("no stored measurement of %s/%s on any device; sweep it into the store first", bench, size))
		return
	}

	// The device half comes from the stored cell when this exact device
	// was measured, otherwise from the catalogue — which is what lets the
	// daemon answer for devices the benchmark never ran on.
	actual := s.byCell[cellID(bench, size, device)]
	var spec *sim.DeviceSpec
	if actual != nil {
		spec = actual.Device
	} else {
		var err error
		if spec, err = sim.Lookup(device); err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
	}

	s.trainOnce.Do(func() {
		ds, err := predict.FromGrid(s.grid)
		if err != nil {
			s.trainErr = err
			return
		}
		s.forest, s.trainErr = predict.Train(ds, s.cfg)
	})
	if s.trainErr != nil {
		writeError(w, http.StatusInternalServerError, s.trainErr.Error())
		return
	}

	predNs := s.forest.PredictNs(predict.Features(src.Profiles, src.KernelLaunches, spec))
	resp := map[string]any{
		"benchmark":      bench,
		"size":           size,
		"device":         device,
		"predicted_ns":   predNs,
		"measured":       actual != nil,
		"training_cells": s.grid.Cells(),
	}
	if actual != nil {
		resp["actual_ns"] = actual.Kernel.Median
		resp["ape"] = 100 * math.Abs(predNs-actual.Kernel.Median) / actual.Kernel.Median
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("dwarfserve: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"error": msg})
}
