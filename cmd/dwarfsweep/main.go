// Command dwarfsweep measures a slice of the benchmark × size × device grid
// and emits the per-cell statistics, reproducing the paper's full-suite
// sweeps. By default it covers every benchmark, size and device; flags
// narrow each axis.
//
//	dwarfsweep -benchmarks crc,srad -sizes tiny,large -csv sweep.csv
//
// -csv and -jsonl export the raw per-sample records (the same
// LibSciBench-style schema dwarfbench emits — machine-readable training
// data for cmd/dwarfpredict); -figcsv exports the per-cell figure series
// used for plotting.
//
// Cells are measured by -parallel concurrent workers (default: one per
// CPU); each benchmark × size row is prepared once and shared across all
// of its devices, and the resulting grid is identical at every worker
// count.
//
// -store makes sweeps incremental and durable: cells already present in the
// store (same benchmark, size, seed, device spec, options and code schema)
// are served from disk, only missing cells are measured, and new results
// are appended for the next run — or for cmd/dwarfserve to serve. An
// unchanged re-sweep is a 100% hit and its exports are byte-identical;
// -assert-store-hits turns that into a CI gate.
//
// -trace records a span per grid, cell, preparation and measurement
// attempt and writes them as a Chrome trace-event file — drop it on
// https://ui.perfetto.dev (or chrome://tracing) to see the sweep's
// worker-lane timeline.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"opendwarfs/internal/faults"
	"opendwarfs/internal/harness"
	"opendwarfs/internal/obs"
	"opendwarfs/internal/report"
	"opendwarfs/internal/scibench"
	"opendwarfs/internal/store"
	"opendwarfs/internal/suite"
)

func main() {
	var (
		benchmarks = flag.String("benchmarks", "", "comma-separated benchmark names (default: all)")
		sizes      = flag.String("sizes", "", "comma-separated sizes (default: all supported)")
		devices    = flag.String("devices", "", "comma-separated device IDs (default: all 15)")
		parallel   = flag.Int("parallel", 0, "concurrent grid workers (0 = GOMAXPROCS, 1 = sequential)")
		samples    = flag.Int("samples", scibench.PaperSampleSize(), "samples per group")
		budget     = flag.Float64("funcops", harness.DefaultOptions().MaxFunctionalOps, "functional execution budget in operations (0 = timing model only)")
		csvPath    = flag.String("csv", "", "write raw per-sample records as CSV (dwarfbench schema)")
		jsonlPath  = flag.String("jsonl", "", "write raw per-sample records as JSONL (dwarfbench schema)")
		figCSVPath = flag.String("figcsv", "", "write per-cell figure series CSV")
		boxes      = flag.Bool("boxes", false, "render ASCII box plots per benchmark × size")
		compare    = flag.String("compare", "", "two device IDs 'a,b': Welch t-test per benchmark × size")
		storeDir   = flag.String("store", "", "persistent result store directory: cached cells are read, missing cells measured and written")
		shards     = flag.Int("shards", 1, "shard count for -store: >1 splits the store into shard-NN subdirectories routed by cell fingerprint (must match dwarfserve -shards)")
		assertHits = flag.Float64("assert-store-hits", -1, "fail unless the store hit rate is ≥ this percentage (requires -store)")
		compact    = flag.Bool("compact", false, "compact the store into a single snapshot per shard after the sweep (requires -store)")
		retries    = flag.Int("retries", 0, "measurement attempts per cell (0/1 = no retry); cells that exhaust them are reported and skipped")
		backoff    = flag.Duration("retry-backoff", 5*time.Millisecond, "base delay before a retry, doubled per attempt with jitter")
		chaos      = flag.Bool("chaos", false, "inject deterministic faults into the sweep (see -chaos-* flags)")
		chaosSeed  = flag.Int64("chaos-seed", 1, "fault plan seed: same seed, same faults, any worker count")
		chaosRate  = flag.Float64("chaos-transient", 0.2, "per-attempt transient fault probability")
		chaosDrop  = flag.String("chaos-drop", "", "comma-separated devices that fail permanently (quarantined on first touch)")
		tracePath  = flag.String("trace", "", "write a Chrome trace-event file of the sweep (open in Perfetto or chrome://tracing)")
	)
	flag.Parse()
	if *storeDir == "" && (*assertHits >= 0 || *compact || *shards != 1) {
		fmt.Fprintln(os.Stderr, "dwarfsweep: -assert-store-hits, -compact and -shards require -store")
		os.Exit(1)
	}

	opt := harness.DefaultOptions()
	opt.Samples = *samples
	opt.MaxFunctionalOps = *budget
	if *budget == 0 {
		opt.Verify = false
	}
	spec := harness.GridSpec{
		Benchmarks: split(*benchmarks),
		Sizes:      split(*sizes),
		Devices:    split(*devices),
		Options:    opt,
		Workers:    *parallel,
		Retry:      harness.RetryPolicy{MaxAttempts: *retries, BaseBackoff: *backoff},
	}
	if *chaos {
		plan := &faults.Plan{Seed: *chaosSeed, TransientRate: *chaosRate, Drop: split(*chaosDrop)}
		if err := plan.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "dwarfsweep:", err)
			os.Exit(1)
		}
		spec.Faults = plan
	}
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer()
		spec.Tracer = tracer
	}
	// The store sits behind the zero-copy slot cache, so a re-sweep's hits
	// share one decoded cell per key. With -shards > 1 the cache wraps an
	// n-way sharded store whose layout dwarfserve -shards can serve directly.
	var st *store.CachedStore
	if *storeDir != "" {
		var inner store.CellStore
		var err error
		if *shards > 1 {
			inner, err = store.OpenSharded(*storeDir, *shards)
		} else {
			inner, err = store.Open(*storeDir)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "dwarfsweep:", err)
			os.Exit(1)
		}
		st = store.Cached(inner)
		spec.Store = st
	}

	// SIGINT/SIGTERM cancel the sweep instead of killing it: workers stop,
	// in-flight cells abort at their next context check, and every
	// completed cell has already been persisted to the store.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The sweep is driven off the typed event stream: one progress line
	// per completed cell, then the terminal grid_done carries the grid.
	events, err := harness.Stream(ctx, suite.New(), spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dwarfsweep:", err)
		os.Exit(1)
	}
	var grid *harness.Grid
	var runErr error
	for ev := range events {
		switch ev.Kind {
		case harness.EventCellDone, harness.EventStoreHit:
			fmt.Println(ev.ProgressLine())
		case harness.EventCellRetry:
			fmt.Fprintf(os.Stderr, "retry %-8s %-7s %-12s attempt %d failed (%s); retrying\n",
				ev.Benchmark, ev.Size, ev.Device, ev.Attempt, ev.Reason)
		case harness.EventCellFailed:
			fmt.Fprintf(os.Stderr, "FAILED %-8s %-7s %-12s after %d attempt(s): %s\n",
				ev.Benchmark, ev.Size, ev.Device, ev.Attempt, ev.Reason)
		case harness.EventDeviceQuarantined:
			fmt.Fprintf(os.Stderr, "QUARANTINED %s: %s; remaining cells on it will fail fast\n",
				ev.Device, ev.Reason)
		case harness.EventGridDone:
			grid, runErr = ev.Grid, ev.Err
		}
	}
	// The stream has settled, so every span — even those of a cancelled
	// sweep — is closed; the trace is always well-formed.
	if tracer != nil {
		writeExport(*tracePath, func(f *os.File) error { return tracer.WriteChromeTrace(f) })
		fmt.Fprintf(os.Stderr, "Chrome trace (%d spans) written to %s\n", tracer.Spans(), *tracePath)
	}
	if runErr != nil {
		if errors.Is(runErr, context.Canceled) && grid != nil {
			fmt.Fprintf(os.Stderr, "dwarfsweep: sweep cancelled after %d completed cells", grid.Cells())
			if st != nil {
				fmt.Fprintf(os.Stderr, " (all persisted to %s; re-running resumes from them)", *storeDir)
				report.StoreStats(os.Stdout, grid)
				st.Close()
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "dwarfsweep:", runErr)
		os.Exit(1)
	}
	fmt.Printf("\n%d grid cells measured in %s\n", grid.Cells(), grid.Elapsed.Round(1e6))
	// A grid with failed cells is still a valid (partial) sweep: report the
	// holes and exit 0 — re-running against the same store backfills them.
	if grid.Retries > 0 || len(grid.Failed) > 0 {
		fmt.Printf("Fault summary: %d retry(ies), %d failed cell(s)", grid.Retries, len(grid.Failed))
		if len(grid.Quarantined) > 0 {
			fmt.Printf(", quarantined: %s", strings.Join(grid.Quarantined, ","))
		}
		fmt.Println()
		for _, f := range grid.Failed {
			fmt.Printf("  failed %-8s %-7s %-12s after %d attempt(s): %s\n",
				f.Benchmark, f.Size, f.Device, f.Attempts, f.Reason)
		}
	}
	if st != nil {
		report.StoreStats(os.Stdout, grid)
		if *compact {
			if err := st.Compact(); err != nil {
				fmt.Fprintln(os.Stderr, "dwarfsweep:", err)
				os.Exit(1)
			}
		}
		if err := st.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dwarfsweep:", err)
			os.Exit(1)
		}
		if *assertHits >= 0 && grid.HitRate() < *assertHits {
			fmt.Fprintf(os.Stderr, "dwarfsweep: store hit rate %.1f%% below required %.1f%%\n", grid.HitRate(), *assertHits)
			os.Exit(1)
		}
	}

	if *boxes {
		seen := map[string]bool{}
		for _, m := range grid.Measurements {
			key := m.Benchmark + "/" + m.Size
			if seen[key] {
				continue
			}
			seen[key] = true
			report.FigureBoxes(os.Stdout, grid, m.Benchmark, m.Size, 60)
		}
	}

	if *compare != "" {
		pair := split(*compare)
		if len(pair) != 2 {
			fmt.Fprintln(os.Stderr, "dwarfsweep: -compare wants exactly two device IDs")
			os.Exit(1)
		}
		compareDevices(grid, pair[0], pair[1])
	}

	if *csvPath != "" || *jsonlPath != "" {
		recs := gridRecords(grid)
		if *csvPath != "" {
			writeExport(*csvPath, func(f *os.File) error { return scibench.WriteCSV(f, recs) })
			fmt.Printf("Samples CSV written to %s\n", *csvPath)
		}
		if *jsonlPath != "" {
			writeExport(*jsonlPath, func(f *os.File) error { return scibench.WriteJSONL(f, recs) })
			fmt.Printf("Samples JSONL written to %s\n", *jsonlPath)
		}
	}

	if *figCSVPath != "" {
		writeExport(*figCSVPath, func(f *os.File) error {
			writeFigureCSV(f, grid)
			return nil
		})
		fmt.Printf("Figure series CSV written to %s\n", *figCSVPath)
	}
}

// gridRecords flattens every cell's raw sample records, grid order — the
// machine-readable training data consumed by external models and the
// counterpart of dwarfbench's -csv/-jsonl export.
func gridRecords(grid *harness.Grid) []scibench.Record {
	var recs []scibench.Record
	for _, m := range grid.Measurements {
		recs = append(recs, m.Records()...)
	}
	return recs
}

// writeFigureCSV emits the per-cell figure series of every benchmark with a
// single shared header.
func writeFigureCSV(f *os.File, grid *harness.Grid) {
	seen := map[string]bool{}
	first := true
	for _, m := range grid.Measurements {
		if seen[m.Benchmark] {
			continue
		}
		seen[m.Benchmark] = true
		if !first {
			// FigureCSV writes its own header; only keep the first.
			var sb strings.Builder
			report.FigureCSV(&sb, grid, m.Benchmark)
			body := strings.SplitN(sb.String(), "\n", 2)
			if len(body) == 2 {
				fmt.Fprint(f, body[1])
			}
			continue
		}
		report.FigureCSV(f, grid, m.Benchmark)
		first = false
	}
}

func writeExport(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dwarfsweep:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		fmt.Fprintln(os.Stderr, "dwarfsweep:", err)
		os.Exit(1)
	}
}

// compareDevices runs Welch's t-test between two devices on every
// benchmark × size both measured — the statistically sound "is A faster
// than B here?" answer the paper's 50-sample methodology enables (§4.3).
func compareDevices(grid *harness.Grid, a, b string) {
	fmt.Printf("\nWelch t-test: %s vs %s (kernel time samples)\n", a, b)
	fmt.Printf("%-9s %-8s %12s %12s %9s %7s  %s\n", "benchmark", "size", a+" (ms)", b+" (ms)", "t", "p", "verdict")
	seen := map[string]bool{}
	for _, m := range grid.Measurements {
		key := m.Benchmark + "/" + m.Size
		if seen[key] {
			continue
		}
		seen[key] = true
		ma := grid.Find(m.Benchmark, m.Size, a)
		mb := grid.Find(m.Benchmark, m.Size, b)
		if ma == nil || mb == nil {
			continue
		}
		tstat, _, p := scibench.WelchTTest(ma.KernelNs, mb.KernelNs)
		verdict := "no significant difference"
		if p < 0.05 {
			if tstat < 0 {
				verdict = a + " faster"
			} else {
				verdict = b + " faster"
			}
		}
		fmt.Printf("%-9s %-8s %12.4f %12.4f %9.2f %7.4f  %s\n",
			m.Benchmark, m.Size, ma.Kernel.Median/1e6, mb.Kernel.Median/1e6, tstat, p, verdict)
	}
}

func split(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
