// Command sizer demonstrates the paper's §4.4 problem-size selection
// methodology: for each benchmark and size it computes the device-side
// memory footprint (Eq. 1 accounting), reports which level of the Skylake
// i7-6700K hierarchy it lands in, and flags violations of the tiny≤L1,
// small≤L2, medium≤L3, large≥4×L3 rules. With -trace it additionally runs
// the kmeans walk-through of §4.4.1: a trace-driven set-associative cache
// simulation of cyclic sweeps over each footprint, showing the miss-rate
// cliff at every capacity boundary.
package main

import (
	"flag"
	"fmt"
	"os"

	"opendwarfs/internal/cache"
	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
	"opendwarfs/internal/report"
	"opendwarfs/internal/suite"
)

// Skylake capacities (Table 1).
const (
	l1KiB = 32
	l2KiB = 256
	l3KiB = 8192
)

func main() {
	var (
		benchName = flag.String("b", "", "restrict to one benchmark")
		trace     = flag.Bool("trace", false, "run the trace-driven cache simulation walk-through")
	)
	flag.Parse()

	reg := suite.New()
	benches := reg.All()
	if *benchName != "" {
		b, err := reg.Get(*benchName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sizer:", err)
			os.Exit(1)
		}
		benches = benches[:0]
		benches = append(benches, b)
	}

	dev, err := opencl.LookupDevice("i7-6700k")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sizer:", err)
		os.Exit(1)
	}

	fmt.Println("Problem-size methodology (§4.4): footprints vs the Skylake hierarchy")
	fmt.Printf("L1 %d KiB | L2 %d KiB | L3 %d KiB | large ≥ %d KiB (4×L3)\n\n", l1KiB, l2KiB, l3KiB, 4*l3KiB)

	headers := []string{"Benchmark", "Size", "Φ", "Footprint (KiB)", "Lands in", "Rule"}
	var rows [][]string
	for _, b := range benches {
		for _, size := range b.Sizes() {
			inst, err := b.New(size, 1)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sizer:", err)
				os.Exit(1)
			}
			// Allocate for real so the context accounting (the paper's
			// "sum of the size of all memory allocated on the device")
			// confirms the declared footprint.
			ctx, _ := opencl.NewContext(dev)
			q, _ := opencl.NewQueue(ctx, dev)
			if err := inst.Setup(ctx, q); err != nil {
				fmt.Fprintln(os.Stderr, "sizer:", err)
				os.Exit(1)
			}
			if err := dwarfs.CheckFootprint(inst, ctx); err != nil {
				fmt.Fprintln(os.Stderr, "sizer:", err)
				os.Exit(1)
			}
			kib := float64(inst.FootprintBytes()) / 1024
			rows = append(rows, []string{
				b.Name(), size, b.ScaleParameter(size),
				fmt.Sprintf("%.1f", kib), landsIn(kib), ruleCheck(b.Name(), size, kib),
			})
		}
	}
	report.Table(os.Stdout, headers, rows)

	if *trace {
		traceWalkthrough()
	}
}

func landsIn(kib float64) string {
	switch {
	case kib <= l1KiB:
		return "L1"
	case kib <= l2KiB:
		return "L2"
	case kib <= l3KiB:
		return "L3"
	default:
		return "DRAM"
	}
}

// ruleCheck applies the §4.4 sizing rules. Benchmarks with paper-mandated
// fixed datasets (gem's molecules, nqueens, hmm) are exempt where the paper
// says sizes could not be controlled (§4.4.4). Cells that inherit the
// paper's own Table 2 parameters but still miss the stated rule — kmeans
// large reaches only 13.5 MiB, crc large fits in L3 — are reported as
// "off-rule (paper Φ)": the tool reproduces the published parameters, it
// does not silently fix them.
func ruleCheck(bench, size string, kib float64) string {
	exempt := bench == "nqueens" || bench == "hmm" || bench == "gem"
	ok := true
	switch size {
	case dwarfs.SizeTiny:
		ok = kib <= l1KiB
	case dwarfs.SizeSmall:
		ok = kib <= l2KiB*1.01 // allow generator rounding at the boundary
	case dwarfs.SizeMedium:
		ok = kib <= l3KiB*1.01
	case dwarfs.SizeLarge:
		ok = kib >= 4*l3KiB
	}
	switch {
	case ok:
		return "ok"
	case exempt:
		return "exempt (§4.4.4)"
	default:
		return "off-rule (paper Φ)"
	}
}

// traceWalkthrough reproduces the §4.4.1 verification: cyclically stream
// working sets sized for each level through a simulated Skylake hierarchy
// and print the per-level miss rates, which collapse exactly when the set
// fits — the PAPI counter evidence of the paper, from a cache simulator.
func traceWalkthrough() {
	fmt.Println("\nTrace-driven verification (kmeans walk-through, §4.4.1):")
	fmt.Println("five cyclic passes over each working set; miss rates per level")
	headers := []string{"Working set", "L1 miss", "L2 miss", "L3 miss", "Served by"}
	var rows [][]string
	for _, ws := range []struct {
		label string
		bytes uint64
	}{
		{"28 KiB (tiny: 256 pts × 26 feat)", 28 << 10},
		{"217 KiB (small: 2048 pts)", 217 << 10},
		{"6.9 MiB (medium: 65600 pts)", 7085320},
		{"13.5 MiB (large: 131072 pts)", 14155776},
	} {
		h := cache.NewSkylakeTrace()
		served := make([]uint64, 4)
		for pass := 0; pass < 5; pass++ {
			for a := uint64(0); a < ws.bytes; a += 64 {
				served[h.Access(a)]++
			}
		}
		best := 0
		for i, s := range served {
			if s > served[best] {
				best = i
			}
		}
		names := []string{"L1", "L2", "L3", "DRAM"}
		rows = append(rows, []string{
			ws.label,
			fmt.Sprintf("%.3f", h.Caches[0].MissRate()),
			fmt.Sprintf("%.3f", h.Caches[1].MissRate()),
			fmt.Sprintf("%.3f", h.Caches[2].MissRate()),
			names[best],
		})
	}
	report.Table(os.Stdout, headers, rows)
}
