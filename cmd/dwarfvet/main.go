// dwarfvet is the repo's static-analysis suite, a go vet tool in the
// unitchecker mold. It is not run directly; build it and hand it to go
// vet, which feeds it one compilation unit at a time:
//
//	go build -o /tmp/dwarfvet ./cmd/dwarfvet
//	go vet -vettool=/tmp/dwarfvet ./...
//
// Analyzers: typednil, detrand, obsnames, locksend (see internal/lint
// and DESIGN.md §12). Disable one with -typednil=false, scope the
// package-scoped checks with -detrand.pkgs=... / -locksend.pkgs=...,
// and suppress a single finding in source with
// `//lint:allow <analyzer> <reason>`.
package main

import (
	"opendwarfs/internal/lint"
	"opendwarfs/internal/lint/unit"
)

func main() {
	unit.Main(lint.Analyzers()...)
}
