package main_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVettoolProtocol builds dwarfvet and drives it exactly as CI does —
// `go vet -vettool=dwarfvet` over a scratch module seeded with a
// typed-nil bug, a global rand draw, an inline metric name, and a send
// under a mutex — validating the whole unitchecker protocol (-V=full,
// -flags, per-unit cfg, facts output, diagnostic exit) end to end.
func TestVettoolProtocol(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool not found: %v", err)
	}
	tmp := t.TempDir()

	tool := filepath.Join(tmp, "dwarfvet")
	build := exec.Command("go", "build", "-o", tool, "opendwarfs/cmd/dwarfvet")
	build.Dir = moduleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building dwarfvet: %v\n%s", err, out)
	}

	mod := filepath.Join(tmp, "scratch")
	writeFile(t, filepath.Join(mod, "go.mod"), "module scratch\n\ngo 1.24\n")
	writeFile(t, filepath.Join(mod, "buggy", "buggy.go"), `package buggy

type provider interface{ Cost(string) float64 }

type costs struct{}

func (*costs) Cost(string) float64 { return 0 }

type params struct{ Truth provider }

// Seeded bug 1: conditionally-assigned pointer into an interface field.
func Configure(oracle bool) params {
	var truth *costs
	if oracle {
		truth = &costs{}
	}
	return params{Truth: truth}
}
`)
	// Seeded bugs 2-4 live in a package named to fall inside the detrand
	// and locksend default scopes.
	writeFile(t, filepath.Join(mod, "harness", "harness.go"), `package harness

import (
	"math/rand"
	"sync"
)

var mu sync.Mutex
var subs []chan int

func Draw() int64 { return rand.Int63() }

func Publish(v int) {
	mu.Lock()
	defer mu.Unlock()
	for _, ch := range subs {
		ch <- v
	}
}
`)
	writeFile(t, filepath.Join(mod, "clean", "clean.go"), `package clean

// Clean package: no findings expected here.
func Add(a, b int) int { return a + b }
`)

	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = mod
	var out bytes.Buffer
	vet.Stdout = &out
	vet.Stderr = &out
	err := vet.Run()
	text := out.String()

	if err == nil {
		t.Fatalf("go vet -vettool succeeded on seeded bugs; output:\n%s", text)
	}
	for _, want := range []string{
		"possibly-nil *costs stored in interface provider",
		"use of global rand.Int63",
		"channel send while holding mu",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("vet output missing %q; got:\n%s", want, text)
		}
	}
	if strings.Contains(text, "clean.go") {
		t.Errorf("vet flagged the clean package:\n%s", text)
	}

	// An //lint:allow annotation must silence the finding and flip the
	// run to success for that package.
	writeFile(t, filepath.Join(mod, "buggy", "buggy.go"), `package buggy

type provider interface{ Cost(string) float64 }

type costs struct{}

func (*costs) Cost(string) float64 { return 0 }

type params struct{ Truth provider }

func Configure(oracle bool) params {
	var truth *costs
	if oracle {
		truth = &costs{}
	}
	//lint:allow typednil scratch fixture proves the suppression path
	return params{Truth: truth}
}
`)
	vet2 := exec.Command("go", "vet", "-vettool="+tool, "./buggy/...")
	vet2.Dir = mod
	if out2, err := vet2.CombinedOutput(); err != nil {
		t.Errorf("go vet on allow-annotated package failed: %v\n%s", err, out2)
	}
}

// TestAnalyzerToggle checks the vet-style -NAME=false analyzer toggles.
func TestAnalyzerToggle(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool not found: %v", err)
	}
	tmp := t.TempDir()
	tool := filepath.Join(tmp, "dwarfvet")
	build := exec.Command("go", "build", "-o", tool, "opendwarfs/cmd/dwarfvet")
	build.Dir = moduleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building dwarfvet: %v\n%s", err, out)
	}

	mod := filepath.Join(tmp, "scratch")
	writeFile(t, filepath.Join(mod, "go.mod"), "module scratch\n\ngo 1.24\n")
	writeFile(t, filepath.Join(mod, "harness", "harness.go"), `package harness

import "math/rand"

func Draw() int64 { return rand.Int63() }
`)

	// With detrand disabled the seeded global draw must pass.
	vet := exec.Command("go", "vet", "-vettool="+tool, "-detrand=false", "./...")
	vet.Dir = mod
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("go vet -detrand=false failed: %v\n%s", err, out)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // cmd/dwarfvet -> repo root
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
