// Command dwarfsched is the prediction-guided heterogeneous scheduler of
// the paper's §7 motivation: given a workload of benchmark × size tasks
// and a device fleet, it builds a cost model from measured cells (store
// hits) plus forest predictions (everything else), places the tasks under
// each policy, and reports the resulting timelines.
//
//	dwarfsched                                         # default workload, all policies compared
//	dwarfsched -tasks "fft/large:3,crc/small:2"        # inline workload (bench/size[:count])
//	dwarfsched -workload spec.json -policy energy       # JSON spec, energy-aware placement
//	dwarfsched -store results/ -rounds 3                # online loop: schedule -> execute -> re-train
//	dwarfsched -oracle                                  # measure everything, grade against the oracle
//	dwarfsched -assert-regret 25                        # CI gate: regret within 25% of the oracle
//
// The cost model is seeded by a bootstrap sweep of the workload's rows on
// -bootstrap devices (store hits when a -store already holds them) plus
// whatever the store already knows; unmeasured (task, device) cells are
// predicted by the §5 forests, and every placement is flagged with its
// cost source. Execution flows through Session.Stream, so with -store each
// round's measured cells persist and later rounds prefer measurement over
// prediction. Everything is deterministic in (-seed, workload, fleet).
//
// -trace records scheduling rounds (plan, execute, repair) and the
// measurement grids under them as a Chrome trace-event file for Perfetto
// or chrome://tracing.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"opendwarfs"
	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/harness"
	"opendwarfs/internal/obs"
	"opendwarfs/internal/predict"
	"opendwarfs/internal/report"
	"opendwarfs/internal/sched"
	"opendwarfs/internal/scibench"
	"opendwarfs/internal/sim"
	"opendwarfs/internal/store"
	"opendwarfs/internal/suite"
)

func main() {
	def := predict.DefaultConfig()
	var (
		tasks        = flag.String("tasks", "", `inline workload: comma-separated bench/size[:count] (default: every benchmark at -size, -count copies)`)
		workloadPath = flag.String("workload", "", "workload spec JSON file ({\"tasks\":[{\"benchmark\":...,\"size\":...,\"count\":...,\"deadline_ms\":...,\"energy_budget_j\":...}]})")
		size         = flag.String("size", "large", "size of the default workload's tasks (benchmarks without it use their largest)")
		count        = flag.Int("count", 3, "copies of each task in the default workload")
		devices      = flag.String("devices", "", "comma-separated fleet device IDs (default: all 15)")
		policyName   = flag.String("policy", "heft", "primary policy: timelines, exports, rounds and regret use it")
		policyList   = flag.String("policies", "all", "comma-separated policies for the comparison table (all = every registered one)")
		bootstrap    = flag.String("bootstrap", "i7-6700k,gtx1080,k20m,knl-7210", "devices measured to seed the cost model (empty = none)")
		samples      = flag.Int("samples", scibench.PaperSampleSize(), "samples per measured cell")
		seed         = flag.Int64("seed", def.Seed, "dataset and training seed")
		parallel     = flag.Int("parallel", 0, "concurrent workers for measurement and training (0 = GOMAXPROCS)")
		trees        = flag.Int("trees", def.Trees, "forest size of the cost models")
		budgetMs     = flag.Float64("budget-ms", 0, "energy policy: explicit makespan budget (0 = derive from -budget-factor)")
		budgetFactor = flag.Float64("budget-factor", sched.DefaultOptions().BudgetFactor, "energy policy: budget as a factor of the HEFT makespan")
		storeDir     = flag.String("store", "", "persistent result store: measured cells are reused and new ones persist")
		rounds       = flag.Int("rounds", 0, "online loop rounds (0 = single-shot schedule)")
		oracle       = flag.Bool("oracle", false, "measure the full workload × fleet grid and report regret against the measured-cost oracle")
		assertRegret = flag.Float64("assert-regret", 0, "fail unless the primary policy's oracle regret ≤ this (%; implies -oracle; 0 = off)")
		csvPath      = flag.String("csv", "", "write the primary schedule's timeline as CSV")
		jsonlPath    = flag.String("jsonl", "", "write the primary schedule's timeline as JSONL")
		progress     = flag.Bool("progress", false, "print per-cell measurement progress")

		chaos          = flag.Bool("chaos", false, "inject deterministic faults into every measurement (see -chaos-*)")
		chaosSeed      = flag.Int64("chaos-seed", 1, "fault-injection seed (independent of -seed)")
		chaosTransient = flag.Float64("chaos-transient", 0.2, "chaos: per-attempt transient fault probability")
		chaosDrop      = flag.String("chaos-drop", "", "chaos: comma-separated devices that are permanently down")
		chaosStraggler = flag.Float64("chaos-straggler", 0, "chaos: per-cell straggler probability")
		chaosFactor    = flag.Float64("chaos-straggler-factor", 4, "chaos: straggler slowdown factor")
		retries        = flag.Int("retries", 0, "measurement attempts per cell (0/1 = no retry)")
		retryBackoff   = flag.Duration("retry-backoff", 0, "base backoff before a retry (doubles per attempt)")
		tracePath      = flag.String("trace", "", "write a Chrome trace-event file of scheduling rounds and measurements (open in Perfetto)")
		assertComplete = flag.Bool("assert-complete", false, "fail unless every reachable cell of the final schedule was measured and no failure leaked onto a surviving device (requires -rounds >= 1)")
	)
	flag.Parse()
	if *assertRegret > 0 {
		*oracle = true
	}
	if *assertComplete && *rounds <= 0 {
		fatal(fmt.Errorf("-assert-complete requires -rounds >= 1"))
	}

	reg := suite.New()
	w, err := buildWorkload(reg, *workloadPath, *tasks, *size, *count)
	if err != nil {
		fatal(err)
	}
	fleet, err := sched.Fleet(split(*devices))
	if err != nil {
		fatal(err)
	}
	primary, err := sched.LookupPolicy(*policyName)
	if err != nil {
		fatal(err)
	}
	compare, err := comparisonPolicies(*policyList, *policyName)
	if err != nil {
		fatal(err)
	}
	schedOpt := sched.Options{MakespanBudgetNs: *budgetMs * 1e6, BudgetFactor: *budgetFactor}
	cfg := predict.Config{
		Trees: *trees, MaxDepth: def.MaxDepth, MinLeaf: def.MinLeaf,
		FeatureFrac: def.FeatureFrac, Seed: *seed, Workers: *parallel,
	}

	// Knowledge starts from everything the store already holds.
	known := &harness.Grid{}
	if *storeDir != "" {
		if g, err := storedGrid(*storeDir); err != nil {
			fatal(err)
		} else {
			known.Merge(g)
		}
	}

	sessOpts := []opendwarfs.Option{
		opendwarfs.WithSamples(*samples),
		opendwarfs.WithSeed(*seed),
		opendwarfs.WithWorkers(*parallel),
	}
	if *storeDir != "" {
		sessOpts = append(sessOpts, opendwarfs.WithStore(*storeDir))
	}
	if *chaos {
		sessOpts = append(sessOpts, opendwarfs.WithFaults(&opendwarfs.FaultPlan{
			Seed:            *chaosSeed,
			TransientRate:   *chaosTransient,
			Drop:            split(*chaosDrop),
			StragglerRate:   *chaosStraggler,
			StragglerFactor: *chaosFactor,
		}))
	}
	if *retries > 0 || *retryBackoff > 0 {
		sessOpts = append(sessOpts, opendwarfs.WithRetry(opendwarfs.RetryPolicy{
			MaxAttempts: *retries,
			BaseBackoff: *retryBackoff,
		}))
	}
	sess, err := opendwarfs.NewSession(sessOpts...)
	if err != nil {
		fatal(err)
	}
	defer sess.Close()

	// Ctrl-C cancels measurement; with -store the completed cells persist.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// The tracer rides the context: every grid the session streams and
	// every scheduling round spans into it, and it is flushed on all exit
	// paths (fatal included) — completed spans only, so always well-formed.
	if *tracePath != "" {
		traceTracer, traceFile = obs.NewTracer(), *tracePath
		ctx = obs.ContextWithTracer(ctx, traceTracer)
	}
	defer flushTrace()
	stream := streamer(sess, *progress)

	// Bootstrap: the workload's rows on the bootstrap devices seed the
	// forests (store hits when already measured).
	if boot := split(*bootstrap); len(boot) > 0 {
		if _, err := sim.LookupAll(boot); err != nil {
			fatal(err)
		}
		g, err := measureRows(ctx, stream, w, boot)
		if err != nil {
			fatal(err)
		}
		known.Merge(g)
	}
	costs, err := sched.NewCosts(known, cfg)
	if err != nil {
		fatal(err)
	}
	if err := costs.EnsureProfiles(ctx, reg, sess.Options(), w); err != nil {
		fatal(err)
	}
	fmt.Printf("Workload: %d tasks over %d rows; fleet: %d devices; cost model: %d measured cells\n",
		len(w.Tasks), len(w.Rows()), len(fleet), costs.TrainingCells())

	// Policy comparison on the shared cost model.
	var schedules []*sched.Schedule
	var primarySchedule *sched.Schedule
	for _, pol := range compare {
		s, err := pol.Schedule(w, fleet, costs, schedOpt)
		if err != nil {
			fatal(err)
		}
		schedules = append(schedules, s)
		if pol.Name() == primary.Name() {
			primarySchedule = s
		}
	}
	fmt.Println()
	report.PolicyComparison(os.Stdout, schedules)
	fmt.Println()
	report.ScheduleTimeline(os.Stdout, primarySchedule)

	if *csvPath != "" {
		writeFile(*csvPath, func(f *os.File) error { return sched.WriteTimelineCSV(f, primarySchedule) })
		fmt.Printf("\nTimeline written to %s\n", *csvPath)
	}
	if *jsonlPath != "" {
		writeFile(*jsonlPath, func(f *os.File) error { return sched.WriteTimelineJSONL(f, primarySchedule) })
		fmt.Printf("Timeline written to %s\n", *jsonlPath)
	}

	// Oracle: measure the full workload × fleet grid (store-hit when
	// known) and grade the prediction-built schedule against the same
	// policy on measured costs. The online loop's knowledge is snapshotted
	// first: the oracle's ground truth must not leak into the loop's cost
	// model, or there would be nothing left to learn.
	loopKnown := &harness.Grid{}
	loopKnown.Merge(known)
	var oracleSchedule *sched.Schedule
	var truthCosts *sched.Costs
	// Devices the sweeps quarantine shrink the oracle's fleet: an oracle
	// cannot place work on a device that cannot be measured. The scheduler
	// proper still plans over the full fleet — discovering the dropout and
	// migrating around it is exactly what the repair path is for.
	oracleFleet := fleet
	if *oracle {
		fleetIDs := make([]string, len(fleet))
		for i, d := range fleet {
			fleetIDs[i] = d.ID
		}
		truth, err := measureRows(ctx, stream, w, fleetIDs)
		if err != nil {
			fatal(err)
		}
		known.Merge(truth)
		if dead := known.Quarantined; len(dead) > 0 {
			deadSet := map[string]bool{}
			for _, d := range dead {
				deadSet[d] = true
			}
			oracleFleet = fleet[:0:0]
			for _, d := range fleet {
				if !deadSet[d.ID] {
					oracleFleet = append(oracleFleet, d)
				}
			}
			if len(oracleFleet) == 0 {
				fatal(fmt.Errorf("every fleet device is quarantined: %v", dead))
			}
			fmt.Printf("\nQuarantined during measurement: %s; oracle graded over the %d survivors\n",
				strings.Join(dead, ", "), len(oracleFleet))
		}
		if truthCosts, err = sched.NewCosts(known, cfg); err != nil {
			fatal(err)
		}
		if oracleSchedule, err = sched.Oracle(primary, w, oracleFleet, truthCosts, schedOpt); err != nil {
			fatal(err)
		}
	}

	regret := 0.0
	if *rounds > 0 {
		params := sched.LoopParams{
			Stream: stream, Workload: w, Fleet: fleet, Policy: primary,
			Forest: cfg, Sched: schedOpt, Known: loopKnown, Costs: costs,
			Rounds: *rounds,
		}
		if oracleSchedule != nil && truthCosts != nil {
			// Assigned only when real: a nil *sched.Costs stored into the
			// CostProvider interface would read as set and fail validation.
			params.Oracle, params.Truth = oracleSchedule, truthCosts
		}
		res, err := sched.OnlineLoop(ctx, params)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		report.OnlineRounds(os.Stdout, res.Rounds, oracleSchedule != nil)
		if oracleSchedule != nil {
			regret = res.Rounds[len(res.Rounds)-1].BestRegretPct
		}
		if repairs, migrated, retried := loopFaultTotals(res); repairs > 0 || retried > 0 {
			fmt.Printf("\nFault handling: %d repair pass(es), %d task(s) migrated, %d retry(ies); quarantined: %s\n",
				repairs, migrated, retried, orNone(res.Quarantined))
		}
		if *assertComplete {
			if err := checkComplete(res); err != nil {
				fatal(err)
			}
			fmt.Println("completeness: every reachable cell of the final schedule is measured; no failure on a surviving device")
		}
	} else if oracleSchedule != nil {
		// The prediction-built schedule may place tasks on devices the
		// truth sweep just quarantined; migrate those slots before grading,
		// exactly as the execution path would.
		graded := primarySchedule
		if len(known.Quarantined) > 0 {
			if graded, err = primarySchedule.Repair(known.Quarantined, primary, costs, schedOpt); err != nil {
				fatal(err)
			}
		}
		actual, err := graded.Retime(truthCosts)
		if err != nil {
			fatal(err)
		}
		regret = sched.Regret(actual, oracleSchedule)
		fmt.Printf("\nOracle (%s on measured costs): makespan %.3f ms; this schedule retimed: %.3f ms; regret %.2f%%\n",
			primary.Name(), oracleSchedule.MakespanNs/1e6, actual.MakespanNs/1e6, regret)
	}

	if *assertRegret > 0 {
		if regret > *assertRegret {
			fatal(fmt.Errorf("%s regret %.2f%% exceeds ceiling %.2f%%", primary.Name(), regret, *assertRegret))
		}
		fmt.Printf("%s regret %.2f%% within ceiling %.2f%%\n", primary.Name(), regret, *assertRegret)
	}
}

// loopFaultTotals sums the online loop's per-round fault accounting.
func loopFaultTotals(res *sched.LoopResult) (repairs, migrated, retried int) {
	for _, r := range res.Rounds {
		repairs += r.Repairs
		migrated += r.MigratedTasks
		retried += r.Retries
	}
	return
}

func orNone(devs []string) string {
	if len(devs) == 0 {
		return "none"
	}
	return strings.Join(devs, ", ")
}

// checkComplete is the -assert-complete gate over an online-loop result:
// every cell of the final round's (possibly repaired) schedule must be
// measured in the loop's knowledge grid, and no cell may have failed on a
// device that was not quarantined — a chaos sweep completes every
// reachable cell or the gate fails.
func checkComplete(res *sched.LoopResult) error {
	dead := map[string]bool{}
	for _, d := range res.Quarantined {
		dead[d] = true
	}
	final := res.Rounds[len(res.Rounds)-1].Schedule
	for _, sl := range final.Slots {
		if dead[sl.Device] {
			return fmt.Errorf("final schedule places %s on quarantined device %s", sl.TaskID, sl.Device)
		}
		if res.Grid.Find(sl.Benchmark, sl.Size, sl.Device) == nil {
			return fmt.Errorf("reachable cell %s/%s/%s was never measured", sl.Benchmark, sl.Size, sl.Device)
		}
	}
	for _, f := range res.Grid.Failed {
		if !dead[f.Device] {
			return fmt.Errorf("cell %s/%s failed on surviving device %s after %d attempt(s): %s",
				f.Benchmark, f.Size, f.Device, f.Attempts, f.Reason)
		}
	}
	for _, m := range res.Grid.Measurements {
		if dead[m.Device.ID] {
			return fmt.Errorf("measurement of %s/%s leaked onto quarantined device %s", m.Benchmark, m.Size, m.Device.ID)
		}
	}
	return nil
}

// buildWorkload assembles the workload from the JSON spec, the inline
// -tasks string, or the default (every benchmark at -size, falling back to
// its largest supported size).
func buildWorkload(reg *dwarfs.Registry, path, tasks, size string, count int) (*sched.Workload, error) {
	if path != "" && tasks != "" {
		return nil, fmt.Errorf("-workload and -tasks are mutually exclusive")
	}
	var spec sched.WorkloadSpec
	switch {
	case path != "":
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		dec := json.NewDecoder(strings.NewReader(string(raw)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	case tasks != "":
		for _, part := range split(tasks) {
			ts, err := parseTask(part)
			if err != nil {
				return nil, err
			}
			spec.Tasks = append(spec.Tasks, ts)
		}
	default:
		if !dwarfs.ValidSize(size) {
			return nil, fmt.Errorf("unknown size %q (valid: %v)", size, dwarfs.Sizes())
		}
		for _, b := range reg.All() {
			s := size
			if !dwarfs.SupportsSize(b, s) {
				s = b.Sizes()[len(b.Sizes())-1]
			}
			spec.Tasks = append(spec.Tasks, sched.TaskSpec{Benchmark: b.Name(), Size: s, Count: count})
		}
	}
	return spec.Expand(reg)
}

// parseTask decodes one inline "bench/size[:count]" entry.
func parseTask(s string) (sched.TaskSpec, error) {
	ts := sched.TaskSpec{Count: 1}
	if name, count, ok := strings.Cut(s, ":"); ok {
		n, err := strconv.Atoi(count)
		if err != nil || n <= 0 {
			return ts, fmt.Errorf("task %q: bad count %q", s, count)
		}
		ts.Count, s = n, name
	}
	bench, size, ok := strings.Cut(s, "/")
	if !ok {
		return ts, fmt.Errorf("task %q: want bench/size[:count]", s)
	}
	ts.Benchmark, ts.Size = bench, size
	return ts, nil
}

// comparisonPolicies resolves the -policies list, always including the
// primary policy.
func comparisonPolicies(list, primary string) ([]sched.Policy, error) {
	names := sched.Policies()
	if list != "all" {
		names = split(list)
	}
	seen := map[string]bool{}
	var out []sched.Policy
	for _, name := range append(names, primary) {
		if seen[name] {
			continue
		}
		seen[name] = true
		p, err := sched.LookupPolicy(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// storedGrid loads every decodable cell of the store as initial knowledge.
// The handle is closed again before the session opens its own.
func storedGrid(dir string) (*harness.Grid, error) {
	base, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	st := store.Cached(base)
	defer st.Close()
	return harness.GridFromStore(st)
}

// streamer adapts Session.Stream to the scheduler's Streamer shape,
// optionally teeing per-cell progress lines to stderr.
func streamer(sess *opendwarfs.Session, progress bool) sched.Streamer {
	return func(ctx context.Context, benches, sizes, devs []string) (<-chan harness.Event, error) {
		ch, err := sess.Stream(ctx, opendwarfs.Selection{Benchmarks: benches, Sizes: sizes, Devices: devs})
		if err != nil || !progress {
			return ch, err
		}
		out := make(chan harness.Event)
		go func() {
			defer close(out)
			for ev := range ch {
				if line := ev.ProgressLine(); line != "" {
					fmt.Fprintln(os.Stderr, line)
				}
				out <- ev
			}
		}()
		return out, nil
	}
}

// measureRows measures each distinct workload row on the given devices —
// exactly those cells, one stream per row (a row × devices selection is an
// exact cross product).
func measureRows(ctx context.Context, stream sched.Streamer, w *sched.Workload, devices []string) (*harness.Grid, error) {
	out := &harness.Grid{}
	for _, row := range w.Rows() {
		sub, err := sched.StreamCells(ctx, stream, []string{row[0]}, []string{row[1]}, devices)
		out.Merge(sub)
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

func writeFile(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		fatal(err)
	}
}

func split(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// traceTracer/traceFile hold the -trace state so fatal() can flush the
// spans collected so far before exiting.
var (
	traceTracer *obs.Tracer
	traceFile   string
)

// flushTrace writes the Chrome trace, if -trace asked for one. Only
// completed spans are exported, so the file is valid even when an error
// or cancellation cut the run short.
func flushTrace() {
	tr := traceTracer
	traceTracer = nil // clear first: writeFile fatals on error, which re-enters here
	if tr == nil {
		return
	}
	writeFile(traceFile, func(f *os.File) error { return tr.WriteChromeTrace(f) })
	fmt.Fprintf(os.Stderr, "Chrome trace (%d spans) written to %s\n", tr.Spans(), traceFile)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dwarfsched:", err)
	flushTrace()
	os.Exit(1)
}
