package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"opendwarfs/internal/sched"
	"opendwarfs/internal/suite"
)

// TestUnknownPolicyListsSorted is the regression test for the planCells
// error convention: a typo'd policy must fail naming every valid policy in
// sorted order, both for -policy and inside -policies lists.
func TestUnknownPolicyListsSorted(t *testing.T) {
	_, err := sched.LookupPolicy("htef")
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	last := -1
	for _, name := range sched.Policies() {
		i := strings.Index(err.Error(), name)
		if i < 0 {
			t.Fatalf("error %q does not mention %q", err, name)
		}
		if i < last {
			t.Fatalf("error %q lists policies out of order", err)
		}
		last = i
	}
	if _, err := comparisonPolicies("heft,nope", "heft"); err == nil {
		t.Fatal("unknown policy in -policies accepted")
	}
}

func TestComparisonPoliciesIncludesPrimary(t *testing.T) {
	pols, err := comparisonPolicies("roundrobin", "heft")
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, p := range pols {
		names[p.Name()] = true
	}
	if !names["roundrobin"] || !names["heft"] {
		t.Fatalf("comparison %v missing a requested policy", names)
	}

	all, err := comparisonPolicies("all", "heft")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(sched.Policies()) {
		t.Fatalf("all resolves to %d policies, want %d", len(all), len(sched.Policies()))
	}
}

// TestBuildWorkloadMalformed: malformed inline tasks and JSON specs fail
// with the valid vocabulary, never silently.
func TestBuildWorkloadMalformed(t *testing.T) {
	reg := suite.New()

	if _, err := buildWorkload(reg, "", "fft", "large", 1); err == nil {
		t.Fatal("taskless inline entry accepted")
	}
	if _, err := buildWorkload(reg, "", "fft/tiny:zero", "large", 1); err == nil {
		t.Fatal("bad count accepted")
	}
	_, err := buildWorkload(reg, "", "nope/tiny", "large", 1)
	if err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	for _, want := range []string{"nope", "crc", "srad"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("benchmark error %q does not mention %q", err, want)
		}
	}
	if _, err := buildWorkload(reg, "", "nqueens/large", "large", 1); err == nil {
		t.Fatal("unsupported size accepted")
	}
	if _, err := buildWorkload(reg, "", "", "huge", 1); err == nil {
		t.Fatal("unknown default size accepted")
	}

	// JSON spec: unknown fields are malformed, not ignored.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"tasks":[{"benchmark":"fft","size":"tiny","dead_line_ms":5}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := buildWorkload(reg, bad, "", "large", 1); err == nil {
		t.Fatal("unknown spec field accepted")
	}

	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{"tasks":[{"benchmark":"fft","size":"tiny","count":2,"deadline_ms":5}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := buildWorkload(reg, good, "", "large", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Tasks) != 2 || w.Tasks[0].DeadlineNs != 5e6 {
		t.Fatalf("spec decoded wrong: %+v", w.Tasks)
	}
}

// TestDefaultWorkload: every suite benchmark appears, falling back to its
// largest size when -size is unsupported (nqueens is tiny-only).
func TestDefaultWorkload(t *testing.T) {
	reg := suite.New()
	w, err := buildWorkload(reg, "", "", "large", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Tasks) != 2*len(reg.All()) {
		t.Fatalf("%d tasks, want %d", len(w.Tasks), 2*len(reg.All()))
	}
	for _, task := range w.Tasks {
		if task.Benchmark == "nqueens" && task.Size != "tiny" {
			t.Fatalf("nqueens scheduled at %s, want its only size tiny", task.Size)
		}
	}
}
