// Command figures regenerates every table and figure of the paper's
// evaluation from the simulated suite:
//
//	Table 1  hardware catalogue           -only table1
//	Table 2  workload scale parameters Φ  -only table2
//	Table 3  program arguments            -only table3
//	Fig 1    crc × 4 sizes × 15 devices   -only fig1
//	Fig 2a-e kmeans lud csr dwt fft       -only fig2a … fig2e
//	Fig 3a-b srad nw                      -only fig3a, fig3b
//	Fig 4a-c gem nqueens hmm (one size)   -only fig4a … fig4c
//	Fig 5    energy, large, i7 vs GTX1080 -only fig5
//
// Default is everything. -quick lowers the sample count and skips
// functional execution for a fast regeneration pass; -outdir writes one CSV
// per figure for external plotting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/harness"
	"opendwarfs/internal/report"
	"opendwarfs/internal/scibench"
	"opendwarfs/internal/suite"
)

// figureBench maps figure IDs onto benchmarks and the sizes they plot.
var figures = []struct {
	id    string
	bench string
	sizes []string
}{
	{"fig1", "crc", dwarfs.Sizes()},
	{"fig2a", "kmeans", dwarfs.Sizes()},
	{"fig2b", "lud", dwarfs.Sizes()},
	{"fig2c", "csr", dwarfs.Sizes()},
	{"fig2d", "dwt", dwarfs.Sizes()},
	{"fig2e", "fft", dwarfs.Sizes()},
	{"fig3a", "srad", dwarfs.Sizes()},
	{"fig3b", "nw", dwarfs.Sizes()},
	{"fig4a", "gem", []string{dwarfs.SizeTiny}},
	{"fig4b", "nqueens", []string{dwarfs.SizeTiny}},
	{"fig4c", "hmm", []string{dwarfs.SizeTiny}},
}

// fig5Benches are the applications of Figure 5's energy panels.
var fig5Benches = []string{"kmeans", "lud", "csr", "fft", "dwt", "gem", "srad", "crc"}

func main() {
	var (
		only    = flag.String("only", "", "render a single item (table1..3, fig1..fig5)")
		quick   = flag.Bool("quick", false, "fast pass: 10 samples, timing model only")
		samples = flag.Int("samples", scibench.PaperSampleSize(), "samples per group")
		outdir  = flag.String("outdir", "", "write per-figure CSV files to this directory")
		boxes   = flag.Bool("boxes", true, "render ASCII box plots")
	)
	flag.Parse()

	reg := suite.New()
	want := func(id string) bool { return *only == "" || *only == id }

	if want("table1") {
		report.Table1Hardware(os.Stdout)
		fmt.Println()
	}
	if want("table2") {
		report.Table2Sizes(os.Stdout, reg)
		fmt.Println()
	}
	if want("table3") {
		report.Table3Args(os.Stdout, reg)
		fmt.Println()
	}

	opt := harness.DefaultOptions()
	opt.Samples = *samples
	if *quick {
		opt.Samples = 10
		opt.MaxFunctionalOps = 0
		opt.Verify = false
	}

	// Collect the benchmarks any requested figure needs.
	needed := map[string][]string{}
	for _, f := range figures {
		if want(f.id) {
			needed[f.bench] = f.sizes
		}
	}
	if want("fig5") {
		// Figure 5 plots the large size; make sure it is measured even for
		// benchmarks whose own figure uses a single smaller size (gem).
		for _, b := range fig5Benches {
			sizes, ok := needed[b]
			if !ok {
				needed[b] = dwarfs.Sizes()
				continue
			}
			hasLarge := false
			for _, s := range sizes {
				if s == dwarfs.SizeLarge {
					hasLarge = true
				}
			}
			if !hasLarge {
				needed[b] = append(append([]string{}, sizes...), dwarfs.SizeLarge)
			}
		}
	}
	if len(needed) == 0 {
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	grid := &harness.Grid{}
	for bench, sizes := range needed {
		g, err := harness.RunGrid(ctx, reg, harness.GridSpec{
			Benchmarks: []string{bench},
			Sizes:      sizes,
			Options:    opt,
			Progress:   os.Stderr,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		grid.Merge(g)
	}

	for _, f := range figures {
		if !want(f.id) {
			continue
		}
		fmt.Printf("\n===== %s (%s) =====\n", f.id, f.bench)
		report.FigureSeries(os.Stdout, grid, f.bench, f.sizes)
		if *boxes {
			for _, size := range f.sizes {
				report.FigureBoxes(os.Stdout, grid, f.bench, size, 56)
			}
		}
		if *outdir != "" {
			if err := writeCSV(*outdir, f.id, grid, f.bench); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
		}
	}
	if want("fig5") {
		fmt.Printf("\n===== fig5 (energy) =====\n")
		report.Figure5Energy(os.Stdout, grid, fig5Benches)
	}
}

func writeCSV(dir, id string, grid *harness.Grid, bench string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	report.FigureCSV(f, grid, bench)
	return nil
}
