package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"opendwarfs/internal/obs/series"
)

// --- accumulator ---

func snapPoint(seq uint64, ns int64, counters map[string]int64, gauges map[string]float64) series.Point {
	return series.Point{Seq: seq, UnixNs: ns, Snapshot: true, Counters: counters, Gauges: gauges}
}

func deltaPoint(seq uint64, ns int64, counters map[string]int64, gauges map[string]float64) series.Point {
	return series.Point{Seq: seq, UnixNs: ns, Counters: counters, Gauges: gauges}
}

func TestAccumulatorFold(t *testing.T) {
	a := newAccumulator()
	base := int64(1_700_000_000_000_000_000)
	if isSample := a.fold(snapPoint(3, base, map[string]int64{"x_total": 5}, map[string]float64{"g": 2})); isSample {
		t.Fatal("snapshot frame reported as sample")
	}
	if a.resyncs != 0 {
		t.Fatalf("first snapshot counted as resync: %d", a.resyncs)
	}
	if !a.fold(deltaPoint(4, base+1e9, map[string]int64{"x_total": 3, "y_total": 1}, map[string]float64{"g": 7})) {
		t.Fatal("delta frame not reported as sample")
	}
	got := a.countersCopy()
	if got["x_total"] != 8 || got["y_total"] != 1 {
		t.Fatalf("fold mismatch: %v", got)
	}
	if !a.moved() {
		t.Fatal("busy sample not detected as movement")
	}
	a.fold(deltaPoint(5, base+2e9, nil, nil))
	if a.moved() {
		t.Fatal("quiet sample detected as movement")
	}
	if a.samples != 2 {
		t.Fatalf("samples = %d, want 2", a.samples)
	}

	// A later snapshot resets state and counts as a resync.
	a.fold(snapPoint(40, base+60e9, map[string]int64{"x_total": 100}, nil))
	if a.resyncs != 1 {
		t.Fatalf("resyncs = %d, want 1", a.resyncs)
	}
	got = a.countersCopy()
	if got["x_total"] != 100 || got["y_total"] != 0 {
		t.Fatalf("post-resync state: %v", got)
	}
	if a.lastSeq != 40 {
		t.Fatalf("lastSeq = %d, want 40", a.lastSeq)
	}
}

// --- name helpers / prom parsing / reconcile ---

func TestNameHelpers(t *testing.T) {
	name := `harness_device_cells_total{device="gtx1080",zone="a"}`
	if got := labelValue(name, "device"); got != "gtx1080" {
		t.Fatalf("labelValue device = %q", got)
	}
	if got := labelValue(name, "zone"); got != "a" {
		t.Fatalf("labelValue zone = %q", got)
	}
	if got := labelValue(name, "missing"); got != "" {
		t.Fatalf("labelValue missing = %q", got)
	}
	if got := baseName(name); got != "harness_device_cells_total" {
		t.Fatalf("baseName = %q", got)
	}
	if got := baseName("plain_total"); got != "plain_total" {
		t.Fatalf("baseName plain = %q", got)
	}
}

func TestPromCounters(t *testing.T) {
	text := strings.Join([]string{
		"# HELP a_total things",
		"# TYPE a_total counter",
		`a_total{k="v"} 7`,
		"a_total 3",
		"# TYPE g gauge",
		"g 9",
		"# TYPE h histogram",
		"h_count 4",
		"",
	}, "\n")
	got, err := promCounters(text)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{`a_total{k="v"}`: 7, "a_total": 3}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("parsed %v, want %v", got, want)
		}
	}
	if _, err := promCounters("# TYPE bad counter\nbad nonsense\n"); err == nil {
		t.Fatal("unparseable counter value not rejected")
	}
}

func TestReconcile(t *testing.T) {
	acc := map[string]int64{"a": 1, "b": 2, "zero": 0}
	scrape := map[string]int64{"a": 1, "b": 2}
	if bad := reconcile(acc, scrape); len(bad) != 0 {
		t.Fatalf("exact agreement flagged: %v", bad)
	}
	acc["b"] = 3
	acc["extra"] = 5
	scrape["missing"] = 9
	bad := reconcile(acc, scrape)
	if len(bad) != 3 {
		t.Fatalf("want 3 mismatches, got %v", bad)
	}
	joined := strings.Join(bad, "\n")
	for _, frag := range []string{"b: streamed 3, scraped 2", "extra: streamed 5, missing from scrape", "missing: streamed 0, scraped 9"} {
		if !strings.Contains(joined, frag) {
			t.Fatalf("mismatch list %v missing %q", bad, frag)
		}
	}
}

// --- SSE reader ---

func TestReadSSE(t *testing.T) {
	var frames []series.Point
	var events []string
	input := strings.Join([]string{
		": keep-alive",
		"id: 1",
		"event: snapshot",
		`data: {"seq":1,"unix_ns":100,"snapshot":true,"counters":{"x":5}}`,
		"",
		": keep-alive",
		"id: 2",
		"event: sample",
		`data: {"seq":2,"unix_ns":200,"counters":{"x":3}}`,
		"",
	}, "\n")
	err := readSSE(strings.NewReader(input), func(event string, p series.Point) bool {
		events = append(events, event)
		frames = append(frames, p)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 || !frames[0].Snapshot || frames[1].Counters["x"] != 3 {
		t.Fatalf("frames = %+v", frames)
	}
	if events[0] != "snapshot" || events[1] != "sample" {
		t.Fatalf("events = %v", events)
	}

	// onFrame returning false is a deliberate close, not an error.
	err = readSSE(strings.NewReader(input), func(string, series.Point) bool { return false })
	if err != nil {
		t.Fatalf("deliberate close returned error: %v", err)
	}

	// Malformed JSON is an error.
	if err := readSSE(strings.NewReader("data: {nope\n\n"), func(string, series.Point) bool { return true }); err == nil {
		t.Fatal("malformed frame not rejected")
	}
}

// --- render ---

func TestRender(t *testing.T) {
	st := topState{
		seq: 9, samples: 8, resyncs: 1, reconnects: 2,
		lanes: []lane{
			{device: "gtx1080", total: 40, perSec: 4.5, elapsed: true},
			{device: "k20m", total: 10, quar: true},
		},
		storeHitPct: 50, storeTotal: 20,
		slotHitPct: 75, slotTotal: 8,
		jobsRunning: 1, sseSubscribers: 2, alertsFiring: 1,
		firing:      []string{"failed_cells_burn"},
		quarantined: []string{"k20m"},
		health:      "degraded",
	}
	var buf bytes.Buffer
	render(&buf, st, false)
	out := buf.String()
	for _, frag := range []string{
		"seq 9, 8 samples (1 resync, 2 reconnect)",
		"health: degraded",
		"jobs running 1   sse subscribers 2   alerts firing 1",
		"store hit rate 50.0% of 20",
		"slotcache hit rate 75.0% of 8",
		"gtx1080", "4.50", "QUARANTINED",
		"FIRING: failed_cells_burn",
		"quarantined devices: k20m",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render output missing %q:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "\x1b[2J") {
		t.Fatal("clear=false still emitted the clear sequence")
	}
	buf.Reset()
	render(&buf, st, true)
	if !strings.HasPrefix(buf.String(), "\x1b[2J\x1b[H") {
		t.Fatal("clear=true did not emit the clear sequence")
	}
}

// --- buildState ---

func TestBuildState(t *testing.T) {
	a := newAccumulator()
	base := int64(1_700_000_000_000_000_000)
	a.fold(snapPoint(1, base, map[string]int64{
		`harness_device_cells_total{device="gtx1080"}`: 10,
		"harness_store_hits_total":                     3,
		"harness_store_misses_total":                   1,
	}, nil))
	a.fold(deltaPoint(2, base+2e9, map[string]int64{
		`harness_device_cells_total{device="gtx1080"}`: 6,
	}, map[string]float64{"jobs_running": 1}))
	st := a.buildState(0, nil, []string{"k20m"}, "ok")
	if len(st.lanes) != 1 {
		t.Fatalf("lanes = %+v", st.lanes)
	}
	l := st.lanes[0]
	if l.device != "gtx1080" || l.total != 16 || !l.elapsed || l.perSec != 3 || l.quar {
		t.Fatalf("lane = %+v", l)
	}
	if st.storeHitPct != 75 || st.storeTotal != 4 {
		t.Fatalf("store hit rate %v of %d", st.storeHitPct, st.storeTotal)
	}
	if st.jobsRunning != 1 {
		t.Fatalf("jobsRunning = %v", st.jobsRunning)
	}
}

// --- run() end-to-end against a synthetic server ---

// fakeServe is a minimal stand-in for dwarfserve's stream + scrape
// surface: a fixed frame script replayed per connection (honouring
// Last-Event-ID), then held open, plus a /metrics scrape body.
type fakeServe struct {
	frames  []series.Point // frames[0] is the snapshot
	scrape  string
	streams chan struct{} // one token per stream connection served
}

func (f *fakeServe) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/metrics/stream", func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "no flush", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		select {
		case f.streams <- struct{}{}:
		default:
		}
		start := 0
		if lid := r.Header.Get("Last-Event-ID"); lid != "" {
			after, err := strconv.ParseUint(lid, 10, 64)
			if err != nil {
				http.Error(w, "bad Last-Event-ID", http.StatusBadRequest)
				return
			}
			// Resume: replay only the delta frames after the given seq.
			start = len(f.frames)
			for i, p := range f.frames {
				if p.Seq > after {
					start = i
					break
				}
			}
		}
		for _, p := range f.frames[start:] {
			event := "sample"
			if p.Snapshot {
				event = "snapshot"
			}
			b, _ := json.Marshal(p)
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", p.Seq, event, b)
			fl.Flush()
		}
		<-r.Context().Done() // hold the stream open like the real server
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, f.scrape)
	})
	mux.HandleFunc("GET /v1/alerts", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"alerts":[],"firing":["test_rule"]}`)
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"health":"ok","quarantined":[]}`)
	})
	return mux
}

// script: snapshot at 5, a busy delta (+3), then two quiet samples.
func reconcileScript() *fakeServe {
	base := int64(1_700_000_000_000_000_000)
	return &fakeServe{
		frames: []series.Point{
			snapPoint(1, base, map[string]int64{"a_total": 5}, map[string]float64{"jobs_running": 0}),
			deltaPoint(2, base+1e9, map[string]int64{"a_total": 3}, nil),
			deltaPoint(3, base+2e9, nil, nil),
			deltaPoint(4, base+3e9, nil, nil),
		},
		scrape:  "# TYPE a_total counter\na_total 8\n",
		streams: make(chan struct{}, 16),
	}
}

func TestRunReconcileOK(t *testing.T) {
	fs := reconcileScript()
	ts := httptest.NewServer(fs.handler())
	defer ts.CloseClientConnections()
	defer ts.Close()
	var out bytes.Buffer
	if code := run(ts.URL, time.Second, false, 2, 0, 10*time.Second, &out); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "RECONCILE OK") {
		t.Fatalf("missing verdict line:\n%s", out.String())
	}
}

func TestRunReconcileResume(t *testing.T) {
	fs := reconcileScript()
	ts := httptest.NewServer(fs.handler())
	defer ts.CloseClientConnections()
	defer ts.Close()
	var out bytes.Buffer
	// Drop after 2 frames (snapshot + busy delta); the reconnect must
	// resume with Last-Event-ID and replay the two quiet samples.
	if code := run(ts.URL, time.Second, false, 2, 2, 10*time.Second, &out); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "RECONCILE OK") {
		t.Fatalf("missing verdict line:\n%s", out.String())
	}
	if got := len(fs.streams); got < 2 {
		t.Fatalf("resume path served %d stream connections, want >= 2", got)
	}
	if !strings.Contains(out.String(), "1 reconnects") {
		t.Fatalf("verdict did not report the reconnect:\n%s", out.String())
	}
}

func TestRunReconcileMismatch(t *testing.T) {
	fs := reconcileScript()
	fs.scrape = "# TYPE a_total counter\na_total 9\n" // off by one
	ts := httptest.NewServer(fs.handler())
	defer ts.CloseClientConnections()
	defer ts.Close()
	var out bytes.Buffer
	if code := run(ts.URL, time.Second, false, 2, 0, 10*time.Second, &out); code != 1 {
		t.Fatalf("exit %d for a mismatched scrape, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "RECONCILE FAIL") || !strings.Contains(out.String(), "a_total: streamed 8, scraped 9") {
		t.Fatalf("mismatch detail missing:\n%s", out.String())
	}
}

func TestRunOnce(t *testing.T) {
	fs := reconcileScript()
	ts := httptest.NewServer(fs.handler())
	defer ts.CloseClientConnections()
	defer ts.Close()
	var out bytes.Buffer
	if code := run(ts.URL, time.Second, true, 0, 0, 10*time.Second, &out); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	// -once polls the sidebands: the firing alert should show up.
	if !strings.Contains(out.String(), "FIRING: test_rule") {
		t.Fatalf("once render missing alert sideband:\n%s", out.String())
	}
	if strings.Contains(out.String(), "\x1b[2J") {
		t.Fatalf("once render cleared the screen:\n%s", out.String())
	}
}

func TestRunDeadline(t *testing.T) {
	// No server at all: run must give up at the deadline with exit 1.
	var out bytes.Buffer
	if code := run("http://127.0.0.1:1", 10*time.Millisecond, false, 2, 0, 300*time.Millisecond, &out); code != 1 {
		t.Fatalf("exit %d for an unreachable server", code)
	}
}
