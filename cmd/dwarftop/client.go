package main

// The streaming client half of dwarftop: an SSE reader over
// /v1/metrics/stream and an accumulator that folds its snapshot+delta
// protocol back into absolute values. The accumulator is the same
// contract the CI reconciliation gate asserts: after any sample frame,
// its counters equal the server registry's at that sample boundary,
// exactly — including across a dropped connection resumed with
// Last-Event-ID (replayed deltas) or outrun entirely (a fresh snapshot
// frame resets the state).

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"opendwarfs/internal/obs/series"
)

// accumulator reconstructs absolute metric state from stream frames.
type accumulator struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	deltas   map[string]int64 // last sample frame's counter movement
	lastSeq  uint64
	lastNs   int64
	prevNs   int64
	samples  int // delta frames folded
	resyncs  int // snapshot frames after the first
}

func newAccumulator() *accumulator {
	return &accumulator{
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		deltas:   map[string]int64{},
	}
}

// fold applies one stream frame. Returns true when the frame was a
// sample (delta) frame — the boundary at which the accumulator is
// exactly reconciled with the server registry.
func (a *accumulator) fold(p series.Point) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if p.Snapshot {
		if a.lastSeq != 0 || len(a.counters) > 0 {
			a.resyncs++
		}
		a.counters = map[string]int64{}
		a.deltas = map[string]int64{}
		for k, v := range p.Counters {
			a.counters[k] = v
		}
		a.gauges = map[string]float64{}
		for k, v := range p.Gauges {
			a.gauges[k] = v
		}
		a.lastSeq, a.lastNs, a.prevNs = p.Seq, p.UnixNs, 0
		return false
	}
	a.deltas = map[string]int64{}
	for k, v := range p.Counters {
		a.counters[k] += v
		a.deltas[k] = v
	}
	for k, v := range p.Gauges {
		a.gauges[k] = v
	}
	a.prevNs, a.lastNs = a.lastNs, p.UnixNs
	a.lastSeq = p.Seq
	a.samples++
	return true
}

// moved reports whether the last folded sample carried any counter
// movement — the quiet detector behind -reconcile.
func (a *accumulator) moved() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, d := range a.deltas {
		if d != 0 {
			return true
		}
	}
	return false
}

// countersCopy returns the reconciled absolute counters.
func (a *accumulator) countersCopy() map[string]int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int64, len(a.counters))
	for k, v := range a.counters {
		out[k] = v
	}
	return out
}

// labelValue extracts one label's value from a rendered metric name
// like `harness_device_cells_total{device="gtx1080"}`.
func labelValue(name, label string) string {
	i := strings.Index(name, label+`="`)
	if i < 0 {
		return ""
	}
	rest := name[i+len(label)+2:]
	if j := strings.IndexByte(rest, '"'); j >= 0 {
		return rest[:j]
	}
	return ""
}

// baseName strips the label block from a rendered metric name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// lane is one device row of the top display.
type lane struct {
	device  string
	total   int64
	perSec  float64
	quar    bool
	elapsed bool // perSec is meaningful (a sample interval existed)
}

// topState is one render's worth of display data, assembled under the
// accumulator lock plus the poll results.
type topState struct {
	seq            uint64
	samples        int
	resyncs        int
	reconnects     int
	lanes          []lane
	storeHitPct    float64
	storeTotal     int64
	slotHitPct     float64
	slotTotal      int64
	jobsRunning    float64
	sseSubscribers float64
	alertsFiring   float64
	firing         []string
	quarantined    []string
	health         string
}

// buildState derives the display model from the accumulator and the
// latest /v1/alerts + /v1/status poll.
func (a *accumulator) buildState(reconnects int, firing, quarantined []string, health string) topState {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := topState{
		seq:         a.lastSeq,
		samples:     a.samples,
		resyncs:     a.resyncs,
		reconnects:  reconnects,
		firing:      firing,
		quarantined: quarantined,
		health:      health,
	}
	quar := map[string]bool{}
	for _, d := range quarantined {
		quar[d] = true
	}
	dt := float64(a.lastNs-a.prevNs) / 1e9
	for name, total := range a.counters {
		if baseName(name) != "harness_device_cells_total" {
			continue
		}
		dev := labelValue(name, "device")
		if dev == "" {
			continue
		}
		l := lane{device: dev, total: total, quar: quar[dev]}
		if dt > 0 && a.prevNs > 0 {
			l.perSec = float64(a.deltas[name]) / dt
			l.elapsed = true
		}
		st.lanes = append(st.lanes, l)
	}
	sort.Slice(st.lanes, func(i, j int) bool { return st.lanes[i].device < st.lanes[j].device })

	hitRate := func(hits, misses int64) (float64, int64) {
		total := hits + misses
		if total == 0 {
			return 0, 0
		}
		return 100 * float64(hits) / float64(total), total
	}
	st.storeHitPct, st.storeTotal = hitRate(a.counters["harness_store_hits_total"], a.counters["harness_store_misses_total"])
	st.slotHitPct, st.slotTotal = hitRate(a.counters["slotcache_hits_total"], a.counters["slotcache_misses_total"])
	st.jobsRunning = a.gauges["jobs_running"]
	st.sseSubscribers = a.gauges["sse_subscribers"]
	st.alertsFiring = a.gauges["alerts_firing"]
	return st
}

// render writes one top-style frame. clear prepends the ANSI
// clear-screen sequence (off under -once and in tests).
func render(w io.Writer, st topState, clear bool) {
	if clear {
		fmt.Fprint(w, "\x1b[2J\x1b[H")
	}
	health := st.health
	if health == "" {
		health = "unknown"
	}
	fmt.Fprintf(w, "dwarftop — seq %d, %d samples (%d resync, %d reconnect) — health: %s\n",
		st.seq, st.samples, st.resyncs, st.reconnects, health)
	fmt.Fprintf(w, "jobs running %.0f   sse subscribers %.0f   alerts firing %.0f\n",
		st.jobsRunning, st.sseSubscribers, st.alertsFiring)
	if st.storeTotal > 0 {
		fmt.Fprintf(w, "store hit rate %.1f%% of %d   ", st.storeHitPct, st.storeTotal)
	}
	if st.slotTotal > 0 {
		fmt.Fprintf(w, "slotcache hit rate %.1f%% of %d", st.slotHitPct, st.slotTotal)
	}
	if st.storeTotal > 0 || st.slotTotal > 0 {
		fmt.Fprintln(w)
	}
	if len(st.lanes) > 0 {
		fmt.Fprintf(w, "\n%-16s %10s %10s %s\n", "DEVICE", "CELLS", "CELLS/S", "STATE")
		for _, l := range st.lanes {
			state := "up"
			if l.quar {
				state = "QUARANTINED"
			}
			rate := "-"
			if l.elapsed {
				rate = strconv.FormatFloat(l.perSec, 'f', 2, 64)
			}
			fmt.Fprintf(w, "%-16s %10d %10s %s\n", l.device, l.total, rate, state)
		}
	}
	if len(st.firing) > 0 {
		fmt.Fprintf(w, "\nFIRING: %s\n", strings.Join(st.firing, ", "))
	}
	if len(st.quarantined) > 0 {
		fmt.Fprintf(w, "quarantined devices: %s\n", strings.Join(st.quarantined, ", "))
	}
}

// readSSE consumes one SSE connection: comment frames are dropped,
// id/event/data fields are collected per frame, and each data frame is
// decoded as a series.Point and handed to onFrame. onFrame returning
// false closes the connection deliberately (readSSE returns nil); an
// io error returns it (the caller reconnects).
func readSSE(r io.Reader, onFrame func(event string, p series.Point) bool) error {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	event := ""
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, ":"), line == "":
			// comment / frame separator
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var p series.Point
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &p); err != nil {
				return fmt.Errorf("bad stream frame: %w", err)
			}
			if !onFrame(event, p) {
				return nil
			}
		}
	}
	return scanner.Err()
}

// promCounters parses the counter samples out of a Prometheus text
// exposition — the scrape side of -reconcile.
func promCounters(text string) (map[string]int64, error) {
	counters := map[string]int64{}
	typ := map[string]string{}
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			if f := strings.Fields(rest); len(f) == 2 {
				typ[f[0]] = f[1]
			}
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		name, val := line[:sp], line[sp+1:]
		if typ[baseName(name)] != "counter" {
			continue
		}
		n, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("unparseable counter line %q: %w", line, err)
		}
		counters[name] = int64(n)
	}
	return counters, nil
}

// reconcile compares the accumulator against a scrape, returning the
// mismatches (empty = exact agreement).
func reconcile(acc, scrape map[string]int64) []string {
	var bad []string
	for name, want := range scrape {
		if got := acc[name]; got != want {
			bad = append(bad, fmt.Sprintf("%s: streamed %d, scraped %d", name, got, want))
		}
	}
	for name, got := range acc {
		if _, ok := scrape[name]; !ok && got != 0 {
			bad = append(bad, fmt.Sprintf("%s: streamed %d, missing from scrape", name, got))
		}
	}
	sort.Strings(bad)
	return bad
}
