// Command dwarftop is a top-style terminal view of a running dwarfserve:
// it subscribes to GET /v1/metrics/stream (the snapshot+delta SSE feed),
// folds the deltas into absolute state, and renders per-device lane
// throughput, store and slot-cache hit rates, job and SSE gauges,
// quarantined devices, and firing alerts, refreshing in place:
//
//	dwarftop -url http://localhost:7077
//
// A dropped connection reconnects automatically with Last-Event-ID, so
// the accumulator replays exactly the samples it missed (or resets from
// a fresh snapshot when it was gone longer than the server's ring
// retains — the "resync" count in the header).
//
// Beyond the interactive mode, two flags make dwarftop the CI assertion
// vehicle for the stream's reconciliation contract:
//
//	-reconcile N   consume the stream until counters are quiet for N
//	               consecutive samples (after at least one busy one),
//	               then scrape GET /metrics and compare every counter
//	               against the state accumulated at that quiet sample
//	               boundary; exit 0 on exact agreement, 1 with a
//	               per-counter diff otherwise. The stream stays open
//	               across the scrape — an in-flight request is not yet
//	               in http_requests_total, so the boundary holds.
//	-resume-after N  deliberately drop the connection after N frames and
//	               reconnect with Last-Event-ID, so the comparison also
//	               covers the resume path.
//
// -once renders a single frame (no screen clearing) and exits — a
// scriptable spot check.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"opendwarfs/internal/obs/series"
)

func main() {
	var (
		url         = flag.String("url", "http://localhost:7077", "dwarfserve base URL")
		interval    = flag.Duration("interval", time.Second, "render refresh period")
		once        = flag.Bool("once", false, "render one frame and exit")
		reconcileN  = flag.Int("reconcile", 0, "exit after counters are quiet this many consecutive samples, comparing the accumulated stream against GET /metrics (0 = interactive)")
		resumeAfter = flag.Int("resume-after", 0, "drop the stream after this many frames and reconnect with Last-Event-ID (0 = never; exercises the resume path)")
		timeout     = flag.Duration("timeout", 2*time.Minute, "overall deadline in -reconcile/-once mode")
	)
	flag.Parse()
	os.Exit(run(*url, *interval, *once, *reconcileN, *resumeAfter, *timeout, os.Stdout))
}

// poller fetches the alert and quarantine sidebands. In -reconcile mode
// it is disabled: its requests would bump http_requests_total between
// samples and the counters would never look quiet.
type poller struct {
	base    string
	enabled bool
}

func (p *poller) fetch() (firing, quarantined []string, health string) {
	if !p.enabled {
		return nil, nil, ""
	}
	var alerts struct {
		Firing []string `json:"firing"`
	}
	if body, err := httpGet(p.base + "/v1/alerts"); err == nil {
		_ = json.Unmarshal(body, &alerts)
	}
	var status struct {
		Health      string   `json:"health"`
		Quarantined []string `json:"quarantined"`
	}
	if body, err := httpGet(p.base + "/v1/status"); err == nil {
		_ = json.Unmarshal(body, &status)
	}
	return alerts.Firing, status.Quarantined, status.Health
}

func httpGet(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// verdict is what the frame handler posts when a terminal condition is
// reached: the counters snapshotted at the deciding sample boundary.
type verdict struct {
	counters map[string]int64
}

// run is the whole client lifecycle; factored from main so tests drive
// it against a synthetic server and inspect the exit code.
func run(base string, interval time.Duration, once bool, reconcileN, resumeAfter int, timeout time.Duration, out io.Writer) int {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel() // tears the stream connection down on exit
	acc := newAccumulator()
	var (
		mu         sync.Mutex
		reconnects int
		frames     int
		dropped    bool // the deliberate -resume-after drop happened
		quiet      int  // consecutive no-movement samples
		busySeen   bool // at least one sample moved (arms the quiet counter)
	)
	deadline := time.Now().Add(timeout)
	settled := make(chan verdict, 1)
	failed := make(chan int, 1)

	// onFrame folds every stream frame. It returns false only for the
	// deliberate -resume-after drop; a verdict leaves the stream OPEN so
	// the in-flight request stays uncounted while the caller scrapes.
	onFrame := func(event string, p series.Point) bool {
		isSample := acc.fold(p)
		mu.Lock()
		defer mu.Unlock()
		frames++
		if isSample && reconcileN > 0 {
			if acc.moved() {
				busySeen, quiet = true, 0
			} else if busySeen {
				quiet++
				if quiet >= reconcileN {
					select {
					case settled <- verdict{counters: acc.countersCopy()}:
					default:
					}
				}
			}
		}
		if once && isSample {
			select {
			case settled <- verdict{}:
			default:
			}
		}
		if resumeAfter > 0 && !dropped && frames >= resumeAfter {
			dropped = true
			return false
		}
		return true
	}

	// Stream loop: connect, consume, reconnect with Last-Event-ID.
	go func() {
		for ctx.Err() == nil {
			req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/metrics/stream", nil)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dwarftop:", err)
				failed <- 1
				return
			}
			acc.mu.Lock()
			last := acc.lastSeq
			acc.mu.Unlock()
			if last > 0 {
				req.Header.Set("Last-Event-ID", strconv.FormatUint(last, 10))
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil || resp.StatusCode != http.StatusOK {
				if resp != nil {
					resp.Body.Close()
				}
				if ctx.Err() != nil {
					return
				}
				if time.Now().After(deadline) {
					fmt.Fprintf(os.Stderr, "dwarftop: no stream from %s within %s (%v)\n", base, timeout, err)
					failed <- 1
					return
				}
				time.Sleep(200 * time.Millisecond)
				continue
			}
			err = readSSE(resp.Body, onFrame)
			resp.Body.Close()
			if ctx.Err() != nil {
				return
			}
			if err != nil && time.Now().After(deadline) {
				fmt.Fprintln(os.Stderr, "dwarftop: stream error:", err)
				failed <- 1
				return
			}
			mu.Lock()
			reconnects++
			mu.Unlock()
		}
	}()

	pol := &poller{base: base, enabled: reconcileN == 0}
	if reconcileN > 0 || once {
		var v verdict
		select {
		case v = <-settled:
		case code := <-failed:
			return code
		case <-time.After(time.Until(deadline)):
			fmt.Fprintf(os.Stderr, "dwarftop: deadline (%s) before the stream settled\n", timeout)
			return 1
		}
		if once {
			firing, quarantined, health := pol.fetch()
			mu.Lock()
			rc := reconnects
			mu.Unlock()
			render(out, acc.buildState(rc, firing, quarantined, health), false)
			return 0
		}
		// Reconcile: scrape while the stream is still open, compare the
		// quiet-boundary snapshot against the scrape, exactly.
		body, err := httpGet(base + "/metrics")
		if err != nil {
			fmt.Fprintln(os.Stderr, "dwarftop:", err)
			return 1
		}
		scrape, err := promCounters(string(body))
		if err != nil {
			fmt.Fprintln(os.Stderr, "dwarftop:", err)
			return 1
		}
		mu.Lock()
		rc := reconnects
		mu.Unlock()
		acc.mu.Lock()
		samples, resyncs := acc.samples, acc.resyncs
		acc.mu.Unlock()
		if bad := reconcile(v.counters, scrape); len(bad) > 0 {
			fmt.Fprintf(out, "RECONCILE FAIL (%d counters, %d reconnects, %d resyncs):\n", len(bad), rc, resyncs)
			for _, line := range bad {
				fmt.Fprintln(out, "  ", line)
			}
			return 1
		}
		fmt.Fprintf(out, "RECONCILE OK: %d samples, %d counters agree exactly (%d reconnects, %d resyncs)\n",
			samples, len(v.counters), rc, resyncs)
		return 0
	}

	// Interactive top mode: render on the interval until the stream fails.
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case code := <-failed:
			return code
		case <-tick.C:
			firing, quarantined, health := pol.fetch()
			mu.Lock()
			rc := reconnects
			mu.Unlock()
			render(out, acc.buildState(rc, firing, quarantined, health), true)
		}
	}
}
