// Command dwarfbench runs one Extended OpenDwarfs benchmark on one device,
// the way the paper invokes each application (§4.4.5):
//
//	dwarfbench -b kmeans -size tiny -p 0 -d 0 -t 0
//	dwarfbench -b srad -size large -device gtx1080 -csv out.csv
//	dwarfbench -b fft -size all -parallel 4
//
// Device selection supports both the paper's platform/device/type triplet
// (-p/-d/-t) and direct catalogue IDs (-device). The tool prints the Table 3
// argument string it reproduces, the measured statistics, and optionally the
// raw LibSciBench-style samples as CSV or JSONL. -size accepts a single
// size, a comma-separated list, or "all"; multi-size runs go through the
// grid harness, where -parallel workers share one preparation per size.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/harness"
	"opendwarfs/internal/opencl"
	"opendwarfs/internal/report"
	"opendwarfs/internal/scibench"
	"opendwarfs/internal/store"
	"opendwarfs/internal/suite"
)

func main() {
	var (
		benchName = flag.String("b", "", "benchmark name (kmeans, lud, csr, fft, dwt, srad, crc, nw, gem, nqueens, hmm)")
		size      = flag.String("size", "tiny", "problem size(s): tiny, small, medium, large, a comma-separated list, or all")
		parallel  = flag.Int("parallel", 0, "concurrent workers for multi-size runs (0 = GOMAXPROCS)")
		deviceID  = flag.String("device", "", "device catalogue ID (e.g. i7-6700k); overrides -p/-d/-t")
		platform  = flag.Int("p", 0, "platform index (paper notation)")
		device    = flag.Int("d", 0, "device index within platform")
		devType   = flag.Int("t", 0, "device type: 0=CPU, 1=GPU, 2=accelerator")
		samples   = flag.Int("samples", scibench.PaperSampleSize(), "samples per group (paper: 50)")
		csvPath   = flag.String("csv", "", "write raw samples as CSV")
		jsonlPath = flag.String("jsonl", "", "write raw samples as JSONL")
		list      = flag.Bool("list", false, "list benchmarks and devices, then exit")
		aiwcFlag  = flag.Bool("aiwc", false, "print AIWC kernel characterisation (§7)")
		storeDir  = flag.String("store", "", "persistent result store directory shared with dwarfsweep/dwarfserve")
	)
	flag.Parse()

	reg := suite.New()
	if *list {
		fmt.Println("Benchmarks (Table 2 order):")
		for _, b := range reg.All() {
			fmt.Printf("  %-8s %-28s sizes %v\n", b.Name(), b.Dwarf(), b.Sizes())
		}
		fmt.Println("\nDevices (Table 1 order):")
		for _, d := range opencl.AllDevices() {
			fmt.Printf("  %-12s %-18s %s\n", d.ID(), d.Name(), d.Spec.Class)
		}
		return
	}
	if *benchName == "" {
		fatal(fmt.Errorf("missing -b; use -list to see benchmarks"))
	}
	b, err := reg.Get(*benchName)
	if err != nil {
		fatal(err)
	}

	var dev *opencl.Device
	if *deviceID != "" {
		dev, err = opencl.LookupDevice(*deviceID)
	} else {
		dev, err = opencl.Select(*platform, *device, opencl.DeviceType(*devType))
	}
	if err != nil {
		fatal(err)
	}

	opt := harness.DefaultOptions()
	opt.Samples = *samples

	// The store rides behind the zero-copy slot cache: repeated single-cell
	// runs against a warm store decode each cell at most once per process.
	// st stays a concrete pointer so the nil check below is meaningful —
	// assigning a typed-nil pointer into GridSpec.Store would read as "store
	// attached".
	var st *store.CachedStore
	if *storeDir != "" {
		base, err := store.Open(*storeDir)
		if err != nil {
			fatal(err)
		}
		st = store.Cached(base)
		defer st.Close()
	}

	// Ctrl-C cancels cleanly: with -store, completed cells stay persisted.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sizes := sizeList(*size, b)
	if len(sizes) > 1 {
		runSizes(ctx, reg, b, sizes, dev, opt, *parallel, *csvPath, *jsonlPath, *aiwcFlag, st)
		return
	}
	if *parallel != 0 {
		fmt.Fprintln(os.Stderr, "dwarfbench: -parallel has no effect on a single-size run")
	}

	fmt.Printf("Benchmark : %s (%s dwarf)\n", b.Name(), b.Dwarf())
	fmt.Printf("Arguments : %s %s\n", b.Name(), b.ArgString(sizes[0]))
	fmt.Printf("Device    : %s (%s, %s)\n", dev.Name(), dev.Spec.Class, dev.Spec.Series)

	var m *harness.Measurement
	if st != nil {
		// Route the single cell through the grid harness so the store's
		// read/write path is shared with dwarfsweep.
		g, err := harness.RunGrid(ctx, reg, harness.GridSpec{
			Benchmarks: []string{b.Name()},
			Sizes:      sizes,
			Devices:    []string{dev.ID()},
			Options:    opt,
			Workers:    1,
			Store:      st, // non-nil: guarded above
		})
		if err != nil {
			fatal(err)
		}
		m = g.Measurements[0]
		report.StoreStats(os.Stdout, g)
	} else if m, err = harness.Run(ctx, b, sizes[0], dev, opt); err != nil {
		fatal(err)
	}

	mode := "timing model"
	if m.Verified {
		mode = "functional, verified against serial reference"
	} else if m.Functional {
		mode = "functional"
	}
	fmt.Printf("Mode      : %s\n", mode)
	fmt.Printf("Footprint : %.1f KiB device-side (Eq. 1 accounting verified)\n", float64(m.FootprintBytes)/1024)
	fmt.Printf("Loop      : %d iterations per sample (≥2 s rule), %d kernel launches/iteration\n", m.Iterations, m.KernelLaunches)
	fmt.Printf("Kernel    : median %.4f ms  mean %.4f ms  CV %.3f  CI95 [%.4f, %.4f] ms\n",
		m.Kernel.Median/1e6, m.Kernel.Mean/1e6, m.Kernel.CV, m.Kernel.CI95Lo/1e6, m.Kernel.CI95Hi/1e6)
	fmt.Printf("Transfer  : median %.4f ms per iteration\n", m.Transfer.Median/1e6)
	fmt.Printf("Energy    : median %.4f J per iteration via %s\n", m.Energy.Median, m.MeterScope)
	fmt.Printf("Counters  : %s\n", m.Counters)

	if *aiwcFlag {
		fmt.Println()
		g := &harness.Grid{Measurements: []*harness.Measurement{m}}
		report.AIWCTable(os.Stdout, g)
	}

	writeSamples(*csvPath, *jsonlPath, m.Records)
}

// sizeList expands the -size flag: "all" means every size the benchmark
// supports; otherwise a comma-separated list, every entry of which must be
// supported — a typo'd size is an error here, not a silent skip.
func sizeList(flagVal string, b dwarfs.Benchmark) []string {
	if strings.TrimSpace(flagVal) == "all" {
		return b.Sizes()
	}
	var sizes []string
	seen := map[string]bool{}
	for _, s := range strings.Split(flagVal, ",") {
		if s = strings.TrimSpace(s); s != "" {
			if !dwarfs.SupportsSize(b, s) {
				fatal(fmt.Errorf("%s does not support size %q (has %v)", b.Name(), s, b.Sizes()))
			}
			if seen[s] {
				fatal(fmt.Errorf("duplicate size %q in -size", s))
			}
			seen[s] = true
			sizes = append(sizes, s)
		}
	}
	if len(sizes) == 0 {
		fatal(fmt.Errorf("empty -size"))
	}
	return sizes
}

// runSizes measures one benchmark × device across several sizes through
// the grid harness, sharing one preparation per size across workers.
func runSizes(ctx context.Context, reg *dwarfs.Registry, b dwarfs.Benchmark, sizes []string, dev *opencl.Device, opt harness.Options, workers int, csvPath, jsonlPath string, aiwc bool, st *store.CachedStore) {
	fmt.Printf("Benchmark : %s (%s dwarf), sizes %v\n", b.Name(), b.Dwarf(), sizes)
	fmt.Printf("Device    : %s (%s, %s)\n", dev.Name(), dev.Spec.Class, dev.Spec.Series)
	spec := harness.GridSpec{
		Benchmarks: []string{b.Name()},
		Sizes:      sizes,
		Devices:    []string{dev.ID()},
		Options:    opt,
		Workers:    workers,
		Progress:   os.Stdout,
	}
	if st != nil {
		spec.Store = st
	}
	g, err := harness.RunGrid(ctx, reg, spec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d cells measured\n", g.Cells())
	report.StoreStats(os.Stdout, g)

	if aiwc {
		fmt.Println()
		report.AIWCTable(os.Stdout, g)
	}
	writeSamples(csvPath, jsonlPath, func() []scibench.Record {
		var recs []scibench.Record
		for _, m := range g.Measurements {
			recs = append(recs, m.Records()...)
		}
		return recs
	})
}

// writeSamples writes the raw LibSciBench-style sample records to the
// requested CSV and/or JSONL paths. records is only invoked when at least
// one output path is set.
func writeSamples(csvPath, jsonlPath string, records func() []scibench.Record) {
	if csvPath == "" && jsonlPath == "" {
		return
	}
	recs := records()
	if csvPath != "" {
		if err := writeFile(csvPath, func(f *os.File) error {
			return scibench.WriteCSV(f, recs)
		}); err != nil {
			fatal(err)
		}
		fmt.Printf("Samples   : CSV written to %s\n", csvPath)
	}
	if jsonlPath != "" {
		if err := writeFile(jsonlPath, func(f *os.File) error {
			return scibench.WriteJSONL(f, recs)
		}); err != nil {
			fatal(err)
		}
		fmt.Printf("Samples   : JSONL written to %s\n", jsonlPath)
	}
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return fn(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dwarfbench:", err)
	os.Exit(1)
}
