// Command benchgate is the CI perf-regression gate. It parses `go test
// -bench` output from stdin, writes the per-benchmark results as JSON
// (benchmark name → ns/op, allocs/op), and — given a committed baseline —
// fails when any benchmark regresses beyond the tolerance factor:
//
//	go test ./internal/harness -run '^$' -bench RunGrid -benchtime 3x -benchmem |
//	    benchgate -baseline ci/BENCH_grid.json -out BENCH_grid.json -tol 2
//
// The tolerance is deliberately generous (default 2×): CI machines vary
// run to run, and the gate exists to catch order-of-magnitude losses of
// the parallel-harness and store wins, not single-digit noise. Benchmarks
// present in the baseline must still exist — deleting one without
// refreshing the baseline fails the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's gated metrics.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func main() {
	var (
		outPath  = flag.String("out", "", "write parsed results as JSON (benchmark name → ns/op, allocs/op)")
		basePath = flag.String("baseline", "", "committed baseline JSON to gate against")
		tol      = flag.Float64("tol", 2.0, "regression tolerance factor per metric")
	)
	flag.Parse()

	cur, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(cur) == 0 {
		fatal(fmt.Errorf("no benchmark result lines on stdin"))
	}

	if *outPath != "" {
		// encoding/json sorts map keys, so the file diffs stably.
		buf, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*outPath, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: %d benchmarks written to %s\n", len(cur), *outPath)
	}

	if *basePath == "" {
		return
	}
	raw, err := os.ReadFile(*basePath)
	if err != nil {
		fatal(err)
	}
	base := map[string]Result{}
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("%s: %w", *basePath, err))
	}

	violations := compare(base, cur, *tol)
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c, ok := cur[name]
		if !ok {
			continue
		}
		b := base[name]
		fmt.Printf("benchgate: %-28s ns/op %12.0f -> %12.0f (%.2fx)  allocs/op %10.0f -> %10.0f (%.2fx)\n",
			name, b.NsPerOp, c.NsPerOp, ratio(c.NsPerOp, b.NsPerOp),
			b.AllocsPerOp, c.AllocsPerOp, ratio(c.AllocsPerOp, b.AllocsPerOp))
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "benchgate: REGRESSION:", v)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmarks within %.1fx of baseline\n", len(base), *tol)
}

func ratio(cur, base float64) float64 {
	if base == 0 {
		return 0
	}
	return cur / base
}

// parseBench extracts ns/op and allocs/op from `go test -bench` output.
// Benchmark names are normalised by stripping the "Benchmark" prefix and
// the "-N" GOMAXPROCS suffix so baselines transfer across machines.
func parseBench(r io.Reader) (map[string]Result, error) {
	out := map[string]Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		res := Result{}
		found := false
		for i := 2; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
				found = true
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		if found {
			out[name] = res
		}
	}
	return out, sc.Err()
}

// compare returns one message per metric exceeding baseline × tol, and per
// baseline benchmark missing from the current run.
func compare(base, cur map[string]Result, tol float64) []string {
	var out []string
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: present in baseline but not measured — refresh the baseline if it was renamed", name))
			continue
		}
		if c.NsPerOp > b.NsPerOp*tol {
			out = append(out, fmt.Sprintf("%s: %.0f ns/op exceeds baseline %.0f × %.1f", name, c.NsPerOp, b.NsPerOp, tol))
		}
		if c.AllocsPerOp > b.AllocsPerOp*tol {
			out = append(out, fmt.Sprintf("%s: %.0f allocs/op exceeds baseline %.0f × %.1f", name, c.AllocsPerOp, b.AllocsPerOp, tol))
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
