package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: opendwarfs/internal/harness
cpu: some cpu
BenchmarkRunGridSequential-8     	       3	 412345678 ns/op	         1.000 workers	 2012345 B/op	   31234 allocs/op
BenchmarkRunGridParallel-8       	       3	  98765432 ns/op	         8.000 workers	 2098765 B/op	   32345 allocs/op
BenchmarkRunGridUncachedCells-8  	       3	 300000000 ns/op	 5000000 B/op	   90000 allocs/op
BenchmarkRunGridCachedCells      	       3	 100000000 ns/op	 1000000 B/op	   20000 allocs/op
PASS
ok  	opendwarfs/internal/harness	3.2s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(got), got)
	}
	seq, ok := got["RunGridSequential"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", got)
	}
	if seq.NsPerOp != 412345678 || seq.AllocsPerOp != 31234 {
		t.Fatalf("RunGridSequential = %+v", seq)
	}
	// A name with no -N suffix parses as-is.
	if got["RunGridCachedCells"].NsPerOp != 100000000 {
		t.Fatalf("RunGridCachedCells = %+v", got["RunGridCachedCells"])
	}
	// The custom "workers" metric must not be mistaken for a gated one.
	if got["RunGridParallel"].NsPerOp != 98765432 {
		t.Fatalf("RunGridParallel = %+v", got["RunGridParallel"])
	}
}

func TestCompare(t *testing.T) {
	base := map[string]Result{
		"A": {NsPerOp: 100, AllocsPerOp: 10},
		"B": {NsPerOp: 100, AllocsPerOp: 10},
		"C": {NsPerOp: 100, AllocsPerOp: 10},
	}
	cur := map[string]Result{
		"A": {NsPerOp: 199, AllocsPerOp: 19}, // within 2x
		"B": {NsPerOp: 201, AllocsPerOp: 25}, // both metrics regress
		// C missing
		"D": {NsPerOp: 9e9, AllocsPerOp: 9e9}, // new benchmark: not gated
	}
	vs := compare(base, cur, 2.0)
	if len(vs) != 3 {
		t.Fatalf("%d violations, want 3 (B ns, B allocs, C missing): %v", len(vs), vs)
	}
	joined := strings.Join(vs, "\n")
	for _, want := range []string{"B: 201 ns/op", "B: 25 allocs/op", "C: present in baseline"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("violations %q missing %q", joined, want)
		}
	}
	if strings.Contains(joined, "A:") || strings.Contains(joined, "D:") {
		t.Fatalf("false positive in %q", joined)
	}

	if vs := compare(base, map[string]Result{
		"A": {NsPerOp: 150, AllocsPerOp: 10},
		"B": {NsPerOp: 100, AllocsPerOp: 10},
		"C": {NsPerOp: 100, AllocsPerOp: 10},
	}, 2.0); len(vs) != 0 {
		t.Fatalf("clean run flagged: %v", vs)
	}
}
