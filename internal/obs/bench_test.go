package obs

import (
	"context"
	"testing"
)

// The registry hot path — bumping existing metrics — must stay
// allocation-free; these benchmarks are gated in CI via benchgate
// against ci/BENCH_obs.json.

func BenchmarkObsCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsCounterLookupInc(b *testing.B) {
	r := NewRegistry()
	r.Counter("c_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Counter("c_total").Inc()
	}
}

func BenchmarkObsGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("g")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h_ns", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 0xffffff))
	}
}

func BenchmarkObsSpanStartEnd(b *testing.B) {
	tr := NewTracer()
	ctx := ContextWithTracer(context.Background(), tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "op")
		s.End()
		if tr.Spans() >= maxSpans-2 {
			b.StopTimer()
			tr = NewTracer()
			ctx = ContextWithTracer(context.Background(), tr)
			b.StartTimer()
		}
	}
}
