package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSpanParentLinkageThroughContext(t *testing.T) {
	tr := NewTracer()
	ctx := ContextWithTracer(context.Background(), tr)
	if TracerFrom(ctx) != tr {
		t.Fatalf("TracerFrom lost the tracer")
	}

	ctx1, root := StartSpan(ctx, "grid", Int("cells", 4))
	ctx2, cell := StartSpan(ctx1, "cell", String("bench", "crc"))
	_, meas := StartSpan(ctx2, "measure")
	meas.End()
	cell.SetAttr("outcome", "measured")
	cell.End()
	root.End()

	if tr.OpenSpans() != 0 {
		t.Fatalf("open spans = %d, want 0", tr.OpenSpans())
	}
	if tr.Spans() != 3 {
		t.Fatalf("completed spans = %d, want 3", tr.Spans())
	}

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	type line struct {
		ID      uint64            `json:"id"`
		Parent  uint64            `json:"parent"`
		Name    string            `json:"name"`
		StartNs int64             `json:"start_ns"`
		DurNs   int64             `json:"dur_ns"`
		Attrs   map[string]string `json:"attrs"`
	}
	var lines []line
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if len(lines) != 3 {
		t.Fatalf("JSONL lines = %d, want 3", len(lines))
	}
	byName := map[string]line{}
	for _, l := range lines {
		byName[l.Name] = l
	}
	if byName["grid"].Parent != 0 {
		t.Fatalf("grid span must be a root")
	}
	if byName["cell"].Parent != byName["grid"].ID {
		t.Fatalf("cell parent = %d, want grid id %d", byName["cell"].Parent, byName["grid"].ID)
	}
	if byName["measure"].Parent != byName["cell"].ID {
		t.Fatalf("measure parent = %d, want cell id %d", byName["measure"].Parent, byName["cell"].ID)
	}
	if byName["grid"].Attrs["cells"] != "4" || byName["cell"].Attrs["bench"] != "crc" {
		t.Fatalf("attrs lost: %v", byName)
	}
	if byName["cell"].Attrs["outcome"] != "measured" {
		t.Fatalf("SetAttr lost: %v", byName["cell"].Attrs)
	}
	if byName["measure"].DurNs < 0 || byName["cell"].StartNs < byName["grid"].StartNs {
		t.Fatalf("span timing inconsistent: %+v", lines)
	}
}

func TestStartSpanWithoutTracerIsNoOp(t *testing.T) {
	ctx, s := StartSpan(context.Background(), "orphan")
	if s != nil {
		t.Fatalf("StartSpan without a tracer must return a nil span")
	}
	s.End()
	s.SetAttr("k", "v")
	_, child := StartSpan(ctx, "child")
	child.End()

	var tr *Tracer
	if _, s := tr.StartSpan(context.Background(), "x"); s != nil {
		t.Fatalf("nil tracer StartSpan must return nil span")
	}
	if tr.OpenSpans() != 0 || tr.Spans() != 0 || tr.Dropped() != 0 {
		t.Fatalf("nil tracer accessors must be zero")
	}
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := NewTracer()
	_, s := tr.StartSpan(ContextWithTracer(context.Background(), tr), "x")
	s.End()
	s.End()
	if tr.OpenSpans() != 0 {
		t.Fatalf("open = %d after double End", tr.OpenSpans())
	}
	if tr.Spans() != 1 {
		t.Fatalf("spans = %d, want 1", tr.Spans())
	}
}

func TestChromeTraceLanes(t *testing.T) {
	tr := NewTracer()
	ctx := ContextWithTracer(context.Background(), tr)

	// Two concurrent root spans must land on different lanes; each child
	// shares its parent's lane.
	ctx1, a := StartSpan(ctx, "worker-a")
	ctx2, b := StartSpan(ctx, "worker-b")
	_, ac := StartSpan(ctx1, "a-child")
	_, bc := StartSpan(ctx2, "b-child")
	ac.End()
	bc.End()
	a.End()
	b.End()
	// A root started after everything ended reuses a free lane.
	_, c := StartSpan(ctx, "late")
	c.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("events = %d, want 5", len(doc.TraceEvents))
	}
	tid := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Pid != 1 {
			t.Fatalf("event %+v must be a complete event on pid 1", ev)
		}
		tid[ev.Name] = ev.Tid
	}
	if tid["worker-a"] == tid["worker-b"] {
		t.Fatalf("concurrent roots share lane %d", tid["worker-a"])
	}
	if tid["a-child"] != tid["worker-a"] || tid["b-child"] != tid["worker-b"] {
		t.Fatalf("children must share their parent's lane: %v", tid)
	}
	if tid["late"] != tid["worker-a"] && tid["late"] != tid["worker-b"] {
		t.Fatalf("late root should reuse a freed lane, got %v", tid)
	}
}

func TestTracerConcurrentUse(t *testing.T) {
	tr := NewTracer()
	root := ContextWithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, s := StartSpan(root, "op", Int("worker", w))
				_, c := StartSpan(ctx, "inner")
				c.SetAttr("i", "x")
				c.End()
				s.End()
			}
		}(w)
	}
	wg.Wait()
	if tr.OpenSpans() != 0 {
		t.Fatalf("open = %d, want 0", tr.OpenSpans())
	}
	if tr.Spans() != 8*200*2 {
		t.Fatalf("spans = %d, want %d", tr.Spans(), 8*200*2)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents"`) {
		t.Fatalf("chrome trace missing traceEvents")
	}
}

func TestExportSkipsOpenSpans(t *testing.T) {
	tr := NewTracer()
	ctx := ContextWithTracer(context.Background(), tr)
	_, done := StartSpan(ctx, "done")
	done.End()
	_, open := StartSpan(ctx, "open")
	_ = open

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"name":"done"`) || strings.Contains(out, `"name":"open"`) {
		t.Fatalf("JSONL must contain only completed spans:\n%s", out)
	}
	if tr.OpenSpans() != 1 {
		t.Fatalf("open = %d, want 1", tr.OpenSpans())
	}
}
