package obs

import "math"

// Quantile estimates the q-th quantile (q in [0,1], clamped) of the
// snapshot's observations by log-bucket interpolation: the target rank
// q·Count is located in the cumulative bucket counts and the value is
// interpolated geometrically between the bucket's lower and upper
// bounds — the right interpolation for the registry's log-spaced
// buckets, where a bucket spans a constant *ratio*, not a constant
// width.
//
// Boundary behaviour is exact by construction: a rank that lands
// precisely on a bucket's cumulative edge returns that bucket's upper
// bound verbatim (no floating-point round trip), q=0 returns the lower
// edge of the first occupied bucket, and q=1 the upper bound of the
// last. Ranks falling in the +Inf bucket return the largest finite
// bound — there is no upper edge to interpolate toward. An empty
// snapshot returns NaN.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	q = math.Min(math.Max(q, 0), 1)
	target := q * float64(h.Count)
	cum := 0.0
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		prev := cum
		cum += float64(n)
		if cum < target {
			continue
		}
		if i >= len(h.Bounds) {
			// +Inf bucket: no finite upper edge.
			if len(h.Bounds) == 0 {
				return math.Inf(1)
			}
			return h.Bounds[len(h.Bounds)-1]
		}
		hi := h.Bounds[i]
		frac := (target - prev) / float64(n)
		if frac >= 1 {
			return hi
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		if frac <= 0 {
			if lo > 0 {
				return lo
			}
			return 0
		}
		if lo <= 0 {
			// First bucket has no positive lower edge; fall back to
			// linear interpolation from zero.
			return hi * frac
		}
		return lo * math.Pow(hi/lo, frac)
	}
	// Unreachable while Count agrees with Counts; be safe anyway.
	if len(h.Bounds) == 0 {
		return math.NaN()
	}
	return h.Bounds[len(h.Bounds)-1]
}
