package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Attr is one key/value attribute attached to a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: fmt.Sprintf("%d", v)} }

// maxSpans bounds a tracer's memory: spans started beyond it are dropped
// (StartSpan returns a nil span, which every method tolerates) and counted
// in Dropped. A grid cell costs ~4 spans, so the cap covers runs six
// orders of magnitude past the full 180-cell grid.
const maxSpans = 1 << 20

// Tracer records spans — named time intervals with parent linkage and
// attributes — for one run. Parenthood flows through context.Context:
// StartSpan reads its parent from ctx and returns a derived ctx carrying
// the new span. A nil *Tracer is valid everywhere and records nothing.
//
// Spans are kept in memory (bounded by an internal cap) and exported
// after the run with WriteJSONL or WriteChromeTrace. Exporters emit
// completed spans only; OpenSpans reports how many are still running —
// zero after a clean shutdown, even a cancelled one, because every
// instrumented site ends its spans via defer.
type Tracer struct {
	epoch time.Time

	mu      sync.Mutex
	seq     uint64
	spans   []*Span
	open    int
	lanes   []int // open-span count per export lane
	dropped int64
}

// Span is one recorded interval. Created by StartSpan; closed exactly
// once by End (later calls no-op). All methods tolerate a nil receiver.
type Span struct {
	tr       *Tracer
	id       uint64
	parent   uint64
	lane     int
	depth    int
	name     string
	start    time.Duration
	end      time.Duration
	attrs    []Attr
	finished bool
}

// NewTracer returns an empty tracer whose clock starts now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

type tracerCtxKey struct{}
type spanCtxKey struct{}

// ContextWithTracer returns a context carrying t; StartSpan on that
// context (and its descendants) records into t. A nil t returns ctx
// unchanged.
func ContextWithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerCtxKey{}, t)
}

// TracerFrom returns the tracer carried by ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerCtxKey{}).(*Tracer)
	return t
}

// StartSpan opens a span on the context's tracer, parented to the
// context's current span, and returns a derived context carrying the new
// span. With no tracer in ctx it returns (ctx, nil) and records nothing.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	return TracerFrom(ctx).StartSpan(ctx, name, attrs...)
}

// StartSpan opens a span on t, parented to the span carried by ctx (root
// if none), and returns a derived context carrying it. On a nil tracer it
// returns (ctx, nil).
func (t *Tracer) StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanCtxKey{}).(*Span)
	now := time.Since(t.epoch)

	t.mu.Lock()
	if len(t.spans) >= maxSpans {
		t.dropped++
		t.mu.Unlock()
		return ctx, nil
	}
	t.seq++
	s := &Span{tr: t, id: t.seq, name: name, start: now, attrs: attrs}
	if parent != nil {
		s.parent = parent.id
		s.depth = parent.depth + 1
	}
	// Lane assignment for the Chrome export: a child rides its parent's
	// lane when only its ancestor chain is open there (so sequential
	// children of one cell stack on one row); otherwise — concurrent
	// siblings, new roots — it takes the lowest idle lane. A lane with no
	// open spans holds only spans that already ended, so reuse never
	// overlaps intervals.
	lane := -1
	if parent != nil && !parent.finished && parent.lane < len(t.lanes) && t.lanes[parent.lane] == parent.depth+1 {
		lane = parent.lane
	} else {
		for i, n := range t.lanes {
			if n == 0 {
				lane = i
				break
			}
		}
		if lane < 0 {
			lane = len(t.lanes)
			t.lanes = append(t.lanes, 0)
		}
	}
	s.lane = lane
	t.lanes[lane]++
	t.open++
	t.spans = append(t.spans, s)
	t.mu.Unlock()

	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// End closes the span. Safe to call multiple times and on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Since(s.tr.epoch)
	s.tr.mu.Lock()
	if !s.finished {
		s.finished = true
		s.end = now
		s.tr.lanes[s.lane]--
		s.tr.open--
	}
	s.tr.mu.Unlock()
}

// SetAttr adds an attribute to the span (no-op on nil).
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: k, Value: v})
	s.tr.mu.Unlock()
}

// OpenSpans returns the number of started-but-unended spans — zero in a
// well-formed trace once the traced run has returned.
func (t *Tracer) OpenSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.open
}

// Spans returns the number of completed spans.
func (t *Tracer) Spans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans) - t.open
}

// Dropped returns how many spans were discarded at the memory cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// jsonlSpan is the WriteJSONL wire form.
type jsonlSpan struct {
	ID      uint64            `json:"id"`
	Parent  uint64            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	StartNs int64             `json:"start_ns"`
	DurNs   int64             `json:"dur_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// WriteJSONL writes one JSON object per completed span, in start order:
// {"id":…,"parent":…,"name":…,"start_ns":…,"dur_ns":…,"attrs":{…}}.
// Open spans are skipped (check OpenSpans before exporting). No-op on a
// nil tracer.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	enc := json.NewEncoder(w)
	for _, s := range t.spans {
		if !s.finished {
			continue
		}
		js := jsonlSpan{
			ID:      s.id,
			Parent:  s.parent,
			Name:    s.name,
			StartNs: s.start.Nanoseconds(),
			DurNs:   (s.end - s.start).Nanoseconds(),
		}
		if len(s.attrs) > 0 {
			js.Attrs = make(map[string]string, len(s.attrs))
			for _, a := range s.attrs {
				js.Attrs[a.Key] = a.Value
			}
		}
		if err := enc.Encode(js); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one Chrome trace-event ("X" complete event). Timestamps
// and durations are microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes the completed spans in the Chrome trace-event
// JSON format — load the file in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Spans are laid out on synthetic "threads": a span
// shares its parent's row when they nest sequentially, concurrent spans
// get rows of their own, so a W-worker grid renders as ~W swimlanes.
// No-op on a nil tracer.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	events := make([]chromeEvent, 0, len(t.spans))
	for _, s := range t.spans {
		if !s.finished {
			continue
		}
		ev := chromeEvent{
			Name: s.name,
			Cat:  "opendwarfs",
			Ph:   "X",
			Ts:   float64(s.start.Nanoseconds()) / 1e3,
			Dur:  float64((s.end - s.start).Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  s.lane + 1,
		}
		if len(s.attrs) > 0 {
			ev.Args = make(map[string]string, len(s.attrs))
			for _, a := range s.attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
	}
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
