package obs

import (
	"math"
	"testing"
)

// snap builds a snapshot from live observations through the real
// Observe path, so the tests inherit its inclusive-upper-bound bucket
// assignment rather than assuming it.
func snap(t *testing.T, bounds []float64, obsv ...float64) HistogramSnapshot {
	t.Helper()
	r := NewRegistry()
	h := r.Histogram("q_ns", bounds)
	for _, v := range obsv {
		h.Observe(v)
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("snapshot has %d histograms", len(s.Histograms))
	}
	return s.Histograms[0]
}

// TestQuantileExactBoundaries pins the contract the series layer leans
// on: ranks landing exactly on a bucket's cumulative edge return that
// bucket's bound with no floating-point drift.
func TestQuantileExactBoundaries(t *testing.T) {
	bounds := []float64{1, 2, 5, 10}
	// One observation per bucket, each exactly on its upper bound
	// (Observe's bounds are inclusive), cumulative edges at 1/4, 2/4, 3/4, 4/4.
	h := snap(t, bounds, 1, 2, 5, 10)
	for i, q := range []float64{0.25, 0.5, 0.75, 1} {
		if got := h.Quantile(q); got != bounds[i] {
			t.Errorf("Quantile(%g) = %v, want exactly %v", q, got, bounds[i])
		}
	}
	// q=0 is the lower edge of the first occupied bucket; with the first
	// bucket occupied and no positive lower bound, that edge is 0.
	if got := h.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %v, want 0", got)
	}
	// With the first occupied bucket further up, q=0 returns its lower
	// bound exactly.
	h = snap(t, bounds, 5, 10)
	if got := h.Quantile(0); got != 2 {
		t.Errorf("Quantile(0) with first occupied bucket (2,5] = %v, want 2", got)
	}
}

func TestQuantileLogInterpolation(t *testing.T) {
	// 10 observations all in the (2,5] bucket: the median interpolates
	// geometrically to 2·(5/2)^0.5 = sqrt(10).
	vals := make([]float64, 10)
	for i := range vals {
		vals[i] = 3
	}
	h := snap(t, []float64{1, 2, 5, 10}, vals...)
	want := 2 * math.Pow(2.5, 0.5)
	if got := h.Quantile(0.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("Quantile(0.5) = %v, want %v", got, want)
	}
	// Monotone in q within the bucket.
	if !(h.Quantile(0.2) < h.Quantile(0.5) && h.Quantile(0.5) < h.Quantile(0.9)) {
		t.Errorf("quantiles not monotone: %v %v %v",
			h.Quantile(0.2), h.Quantile(0.5), h.Quantile(0.9))
	}
	// The bucket's edges bound every interior quantile.
	if q := h.Quantile(0.01); q < 2 || q > 5 {
		t.Errorf("Quantile(0.01) = %v outside (2,5]", q)
	}
}

func TestQuantileFirstBucketLinear(t *testing.T) {
	// All mass in the first bucket: no positive lower edge, so the
	// estimate interpolates linearly from zero.
	h := snap(t, []float64{10, 20}, 4, 4, 4, 4)
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("Quantile(0.5) = %v, want 10·0.5 = 5", got)
	}
}

func TestQuantileInfBucket(t *testing.T) {
	// Observations beyond the last bound land in +Inf; quantiles there
	// report the largest finite bound.
	h := snap(t, []float64{1, 2}, 100, 200, 300)
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("Quantile in +Inf bucket = %v, want last bound 2", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty Quantile = %v, want NaN", got)
	}
	h := snap(t, []float64{1, 2, 5}, 1.5)
	if !math.IsNaN(h.Quantile(math.NaN())) {
		t.Error("Quantile(NaN) is not NaN")
	}
	// Out-of-range q clamps.
	if got, want := h.Quantile(-3), h.Quantile(0); got != want {
		t.Errorf("Quantile(-3) = %v, want clamp to Quantile(0) = %v", got, want)
	}
	if got, want := h.Quantile(7), h.Quantile(1); got != want {
		t.Errorf("Quantile(7) = %v, want clamp to Quantile(1) = %v", got, want)
	}
}

func TestRegistryEnumeration(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total")
	r.Counter("a_total")
	r.Gauge("g")
	h := r.Histogram("h_ns", []float64{1, 10})
	h.Observe(5)
	h.Observe(100)

	c, g, hn := r.NumMetrics()
	if c != 2 || g != 1 || hn != 1 {
		t.Fatalf("NumMetrics = %d/%d/%d, want 2/1/1", c, g, hn)
	}
	cn, gn, hh := r.MetricNames()
	if len(cn) != 2 || cn[0] != "a_total" || cn[1] != "b_total" {
		t.Fatalf("counter names %v, want sorted [a_total b_total]", cn)
	}
	if len(gn) != 1 || gn[0] != "g" || len(hh) != 1 || hh[0] != "h_ns" {
		t.Fatalf("gauge/hist names %v / %v", gn, hh)
	}

	if nb := h.NumBuckets(); nb != 3 {
		t.Fatalf("NumBuckets = %d, want 3 (2 bounds + Inf)", nb)
	}
	counts := h.AppendCounts(make([]int64, 0, 3))
	if len(counts) != 3 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("AppendCounts = %v, want [0 1 1]", counts)
	}
	if b := h.Bounds(); len(b) != 2 || b[0] != 1 || b[1] != 10 {
		t.Fatalf("Bounds = %v", b)
	}

	// All accessors are nil-tolerant.
	var nr *Registry
	if c, g, hn := nr.NumMetrics(); c+g+hn != 0 {
		t.Fatal("nil registry NumMetrics nonzero")
	}
	cn, gn, hh = nr.MetricNames()
	if cn != nil || gn != nil || hh != nil {
		t.Fatal("nil registry MetricNames non-nil")
	}
	var nh *Histogram
	if nh.NumBuckets() != 0 || nh.Bounds() != nil || len(nh.AppendCounts(nil)) != 0 {
		t.Fatal("nil histogram accessors not inert")
	}
}
