package series

import (
	"testing"
	"time"

	"opendwarfs/internal/obs"
)

// BenchmarkObsSeriesSample measures the steady-state sampling cost over
// a registry shaped like dwarfserve's (a few dozen counters, gauges and
// histograms). CI gates ns/op and allocs/op via ci/BENCH_obs.json — the
// recorder promises a near-alloc-free hot path (the one allocation is
// the replaced follower-wakeup channel).
func BenchmarkObsSeriesSample(b *testing.B) {
	reg := obs.NewRegistry()
	for _, n := range []string{
		"harness_cells_total", "harness_store_hits_total", "harness_store_misses_total",
		"harness_retries_total", "harness_failed_cells_total", "harness_quarantines_total",
		"store_appends_total", "slotcache_hits_total", "slotcache_misses_total",
		"slotcache_evictions_total", "jobs_created_total",
	} {
		reg.Counter(n).Add(3)
	}
	for _, n := range []string{"jobs_running", "sse_subscribers", "alerts_firing"} {
		reg.Gauge(n).Set(2)
	}
	for _, n := range []string{"harness_cell_ns", "harness_prepare_ns", "harness_measure_ns", "store_decode_ns"} {
		h := reg.Histogram(n, nil)
		for v := 1.0; v < 1e9; v *= 10 {
			h.Observe(v)
		}
	}
	clk := newFakeClock(time.Second)
	rec := New(reg, Options{Capacity: 600, Interval: time.Second, Clock: clk.Now})
	// Fill the ring once so the timed loop measures the steady state the
	// gate protects: recycled slots, resolved columns, one alloc (the
	// replaced notify channel).
	for i := 0; i < 600; i++ {
		rec.Sample()
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.Counter("harness_cells_total").Inc()
		rec.Sample()
	}
}
