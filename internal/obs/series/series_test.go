package series

import (
	"context"
	"sync"
	"testing"
	"time"

	"opendwarfs/internal/obs"
)

// fakeClock steps a fixed interval per call — the deterministic stand-in
// for Options.Clock.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0), step: step}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

func testRecorder(reg *obs.Registry, capacity int) (*Recorder, *fakeClock) {
	clk := newFakeClock(time.Second)
	return New(reg, Options{Capacity: capacity, Interval: time.Second, Clock: clk.Now}), clk
}

// TestSamplerDeterminism drives two identical registries through two
// recorders with identical fake clocks and asserts byte-identical
// sample streams — the property that makes CI replays reproducible.
func TestSamplerDeterminism(t *testing.T) {
	run := func() []Point {
		reg := obs.NewRegistry()
		c := reg.Counter("work_total")
		g := reg.Gauge("depth")
		h := reg.Histogram("lat_ns", []float64{10, 100})
		rec, _ := testRecorder(reg, 16)
		var pts []Point
		for i := 0; i < 5; i++ {
			c.Add(int64(i * 3))
			g.Set(float64(10 - i))
			h.Observe(float64(i * 40))
			rec.Sample()
		}
		pts, resync := rec.Since(0)
		if resync {
			t.Fatal("unexpected resync from seq 0 with capacity 16")
		}
		return pts
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 5 {
		t.Fatalf("runs produced %d and %d points, want 5", len(a), len(b))
	}
	for i := range a {
		pa, pb := a[i], b[i]
		if pa.Seq != pb.Seq || pa.UnixNs != pb.UnixNs {
			t.Fatalf("point %d headers differ: %+v vs %+v", i, pa, pb)
		}
		for k, v := range pa.Counters {
			if pb.Counters[k] != v {
				t.Fatalf("point %d counter %s differs: %d vs %d", i, k, v, pb.Counters[k])
			}
		}
		for k, v := range pa.Gauges {
			if pb.Gauges[k] != v {
				t.Fatalf("point %d gauge %s differs", i, k)
			}
		}
	}
	// The deltas themselves are the increments applied before each sample.
	if a[0].Counters["work_total"] != 0 && len(a[0].Counters) != 0 {
		t.Fatalf("first sample counter delta = %v, want 0 elided", a[0].Counters)
	}
	if got := a[3].Counters["work_total"]; got != 9 {
		t.Fatalf("sample 4 delta = %d, want 9", got)
	}
}

// TestReconciliation is the package-level statement of the CI contract:
// an accumulator seeded with a snapshot Point and fed every subsequent
// delta Point equals the registry's counters exactly at each boundary.
func TestReconciliation(t *testing.T) {
	reg := obs.NewRegistry()
	c1 := reg.Counter("a_total")
	c2 := reg.Counter("b_total")
	h := reg.Histogram("h_ns", []float64{5, 50})
	rec, _ := testRecorder(reg, 64)

	c1.Add(7)
	h.Observe(3)
	rec.Sample()

	// Subscriber connects mid-stream: snapshot first.
	acc := map[string]int64{}
	snap := rec.SnapshotPoint()
	if !snap.Snapshot {
		t.Fatal("SnapshotPoint not marked Snapshot")
	}
	for k, v := range snap.Counters {
		acc[k] = v
	}
	hCount := snap.Hists["h_ns"].Count
	lastSeq := snap.Seq

	for i := 0; i < 10; i++ {
		c1.Add(int64(i))
		c2.Inc()
		h.Observe(float64(i * 10))
		rec.Sample()
		pts, resync := rec.Since(lastSeq)
		if resync {
			t.Fatal("resync inside capacity")
		}
		for _, p := range pts {
			for k, v := range p.Counters {
				acc[k] += v
			}
			if wh, ok := p.Hists["h_ns"]; ok {
				hCount += wh.Count
			}
			lastSeq = p.Seq
		}
		if acc["a_total"] != c1.Value() || acc["b_total"] != c2.Value() {
			t.Fatalf("tick %d: accumulated %v, registry a=%d b=%d",
				i, acc, c1.Value(), c2.Value())
		}
		if hCount != h.Count() {
			t.Fatalf("tick %d: accumulated hist count %d, registry %d", i, hCount, h.Count())
		}
	}
}

// TestSinceResume covers the ring-wrap resume semantics Last-Event-ID
// relies on: replay within the ring, forced resync beyond it.
func TestSinceResume(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("n_total")
	rec, _ := testRecorder(reg, 4)
	for i := 0; i < 10; i++ {
		c.Inc()
		rec.Sample()
	}
	// Ring holds seqs 7..10.
	if pts, resync := rec.Since(8); resync || len(pts) != 2 || pts[0].Seq != 9 || pts[1].Seq != 10 {
		t.Fatalf("Since(8) = %d pts resync=%v", len(pts), resync)
	}
	if pts, resync := rec.Since(10); resync || pts != nil {
		t.Fatalf("Since(10) = %v resync=%v, want nil,false", pts, resync)
	}
	// Seq 3 fell off the ring: caller must resync from a snapshot.
	if _, resync := rec.Since(3); !resync {
		t.Fatal("Since(3) did not demand resync after wrap")
	}
	// Boundary: afterSeq 6 means "next is 7", the oldest retained — replayable.
	if pts, resync := rec.Since(6); resync || len(pts) != 4 {
		t.Fatalf("Since(6) = %d pts resync=%v, want 4,false", len(pts), resync)
	}
	if s, retained, capacity := rec.Stats(); s != 10 || retained != 4 || capacity != 4 {
		t.Fatalf("Stats = %d/%d/%d", s, retained, capacity)
	}
}

// TestWindowedQueries pins the anchor semantics: deltas are summed
// strictly after the anchor sample, rates divide by the real span.
func TestWindowedQueries(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("req_total")
	g := reg.Gauge("inflight")
	h := reg.Histogram("lat_ns", []float64{1, 2, 5, 10})
	rec, _ := testRecorder(reg, 32)

	// Samples 1s apart; 5 per tick on the counter after a quiet first tick.
	rec.Sample() // baseline
	for i := 0; i < 6; i++ {
		c.Add(5)
		g.Set(float64(i))
		h.Observe(3)
		rec.Sample()
	}

	if d, ok := rec.CounterDelta("req_total", 3*time.Second); !ok || d != 15 {
		t.Fatalf("CounterDelta(3s) = %d,%v want 15", d, ok)
	}
	if rate, ok := rec.CounterRate("req_total", 3*time.Second); !ok || rate != 5 {
		t.Fatalf("CounterRate(3s) = %v,%v want 5", rate, ok)
	}
	// Window larger than history: everything after the first sample.
	if d, ok := rec.CounterDelta("req_total", time.Hour); !ok || d != 30 {
		t.Fatalf("CounterDelta(1h) = %d,%v want 30", d, ok)
	}
	min, max, last, ok := rec.GaugeWindow("inflight", 3*time.Second)
	if !ok || min != 2 || max != 5 || last != 5 {
		t.Fatalf("GaugeWindow = %v/%v/%v/%v, want 2/5/5", min, max, last, ok)
	}
	hs, ok := rec.HistWindow("lat_ns", 3*time.Second)
	if !ok || hs.Count != 3 {
		t.Fatalf("HistWindow count = %d,%v want 3", hs.Count, ok)
	}
	if p50 := hs.Quantile(0.5); p50 < 2 || p50 > 5 {
		t.Fatalf("windowed p50 = %v outside (2,5]", p50)
	}

	if _, ok := rec.CounterDelta("missing_total", time.Second); ok {
		t.Fatal("untracked counter reported ok")
	}
	if v, ok := rec.LastValue("req_total"); !ok || v != 30 {
		t.Fatalf("LastValue counter = %v,%v want 30", v, ok)
	}
	if v, ok := rec.LastValue("inflight"); !ok || v != 5 {
		t.Fatalf("LastValue gauge = %v,%v want 5", v, ok)
	}
	if v, ok := rec.LastValue("lat_ns"); !ok || v != 6 {
		t.Fatalf("LastValue hist = %v,%v want 6", v, ok)
	}

	sum, ok := rec.History(3 * time.Second)
	if !ok || sum.Samples != 3 {
		t.Fatalf("History samples = %d,%v want 3", sum.Samples, ok)
	}
	if len(sum.Counters) != 1 || sum.Counters[0].Name != "req_total" ||
		sum.Counters[0].Delta != 15 || sum.Counters[0].Value != 30 {
		t.Fatalf("History counters = %+v", sum.Counters)
	}
	if len(sum.Histograms) != 1 || sum.Histograms[0].Count != 3 {
		t.Fatalf("History histograms = %+v", sum.Histograms)
	}
}

// TestLateRegisteredMetric: columns created after older ring samples
// read those samples as zero instead of misindexing.
func TestLateRegisteredMetric(t *testing.T) {
	reg := obs.NewRegistry()
	a := reg.Counter("a_total")
	rec, _ := testRecorder(reg, 16)
	a.Add(2)
	rec.Sample()
	rec.Sample()
	b := reg.Counter("b_total") // appears mid-stream
	b.Add(9)
	rec.Sample()
	if d, ok := rec.CounterDelta("b_total", time.Hour); !ok || d != 9 {
		t.Fatalf("late counter delta = %d,%v want 9", d, ok)
	}
	snap := rec.SnapshotPoint()
	if snap.Counters["a_total"] != 2 || snap.Counters["b_total"] != 9 {
		t.Fatalf("snapshot = %v", snap.Counters)
	}
}

// TestEmptyAndNil: queries before two samples refuse, nil registry is
// inert, the pre-sample snapshot is empty with Seq 0.
func TestEmptyAndNil(t *testing.T) {
	rec, _ := testRecorder(obs.NewRegistry(), 8)
	if _, ok := rec.History(time.Minute); ok {
		t.Fatal("History ok with zero samples")
	}
	if p := rec.SnapshotPoint(); p.Seq != 0 || !p.Snapshot {
		t.Fatalf("pre-sample snapshot = %+v", p)
	}
	if _, ok := rec.LastValue("anything"); ok {
		t.Fatal("LastValue ok before first sample")
	}

	nilRec, _ := testRecorder(nil, 8)
	nilRec.Sample()
	nilRec.Sample()
	if _, ok := nilRec.CounterDelta("x", time.Minute); ok {
		t.Fatal("nil-registry recorder reported a counter")
	}
}

// TestNotify: the follower wakeup channel closes on each sample.
func TestNotify(t *testing.T) {
	rec, _ := testRecorder(obs.NewRegistry(), 8)
	ch := rec.Notify()
	select {
	case <-ch:
		t.Fatal("notify closed before any sample")
	default:
	}
	rec.Sample()
	select {
	case <-ch:
	default:
		t.Fatal("notify not closed by Sample")
	}
	if ch2 := rec.Notify(); ch2 == ch {
		t.Fatal("notify channel not replaced after close")
	}
}

// TestConcurrentAccess exercises samplers, writers and readers together
// under the race detector.
func TestConcurrentAccess(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("r_total")
	g := reg.Gauge("rg")
	h := reg.Histogram("rh_ns", []float64{1, 10, 100})
	rec, _ := testRecorder(reg, 32)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Inc()
			g.Set(float64(i))
			h.Observe(float64(i % 150))
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rec.Sample()
				rec.History(5 * time.Second)
				rec.Since(0)
				rec.SnapshotPoint()
				rec.CounterRate("r_total", 3*time.Second)
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestRunLoop: the ticker loop samples until cancelled.
func TestRunLoop(t *testing.T) {
	reg := obs.NewRegistry()
	rec := New(reg, Options{Capacity: 8, Interval: time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { rec.Run(ctx); close(done) }()
	//lint:allow detrand test-only watchdog deadline, not recorder data
	deadline := time.Now().Add(2 * time.Second)
	for {
		if s, _, _ := rec.Stats(); s >= 3 {
			break
		}
		//lint:allow detrand test-only watchdog deadline, not recorder data
		if time.Now().After(deadline) {
			t.Fatal("Run took no samples within 2s")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
}
