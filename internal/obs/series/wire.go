package series

// The streaming wire format. A subscriber receives one absolute
// snapshot Point (every tracked series, histogram bounds included) and
// then one delta Point per sample. Summing counter and bucket deltas
// onto the snapshot reproduces the registry exactly at every sample
// boundary; gauges are carried absolute in every frame. A reconnecting
// subscriber asks Since(lastSeq): if the ring still holds the missed
// samples they replay as deltas, otherwise the subscriber is handed a
// fresh snapshot and must reset its accumulator (Point.Snapshot marks
// which).

// WireHist is one histogram's movement in a Point: deltas in a delta
// frame, absolutes in a snapshot frame (which alone carries Bounds).
type WireHist struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets"`
}

// Point is one streamed sample. Delta frames elide counters that did
// not move and histograms with no observations; gauges are always
// present with their absolute sampled value. encoding/json renders the
// maps key-sorted, so equal samples serialize identically.
type Point struct {
	Seq      uint64              `json:"seq"`
	UnixNs   int64               `json:"unix_ns"`
	Snapshot bool                `json:"snapshot,omitempty"`
	Counters map[string]int64    `json:"counters,omitempty"`
	Gauges   map[string]float64  `json:"gauges,omitempty"`
	Hists    map[string]WireHist `json:"hists,omitempty"`
}

// SnapshotPoint returns the absolute state of every tracked series as
// of the latest sample — the first frame of a fresh subscription, and
// the re-sync frame when a reconnect outruns the ring. Before any
// sample it returns an empty snapshot with Seq 0.
func (r *Recorder) SnapshotPoint() Point {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := Point{Seq: r.seq, Snapshot: true}
	if r.n > 0 {
		p.UnixNs = r.at(r.n - 1).unixNs
	}
	if len(r.counterNames) > 0 {
		p.Counters = make(map[string]int64, len(r.counterNames))
		for i, name := range r.counterNames {
			p.Counters[name] = r.counterPrev[i]
		}
	}
	if len(r.gaugeNames) > 0 {
		p.Gauges = make(map[string]float64, len(r.gaugeNames))
		for i, name := range r.gaugeNames {
			p.Gauges[name] = r.gaugeLast[i]
		}
	}
	if len(r.histNames) > 0 {
		p.Hists = make(map[string]WireHist, len(r.histNames))
		for i, name := range r.histNames {
			col := r.histCols[i]
			p.Hists[name] = WireHist{
				Count:   col.prevCount,
				Sum:     col.prevSum,
				Bounds:  append([]float64(nil), col.bounds...),
				Buckets: append([]int64(nil), col.prev...),
			}
		}
	}
	return p
}

// Since returns the delta Points of every retained sample with sequence
// number greater than afterSeq, oldest first. resync is true when
// afterSeq has already fallen off the ring — the caller must send a
// fresh SnapshotPoint instead (the intervening deltas are gone).
func (r *Recorder) Since(afterSeq uint64) (pts []Point, resync bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if afterSeq >= r.seq {
		return nil, false
	}
	oldest := r.seq - uint64(r.n) + 1
	if afterSeq+1 < oldest {
		return nil, true
	}
	for i := int(afterSeq + 1 - oldest); i < r.n; i++ {
		pts = append(pts, r.wirePointLocked(r.at(i)))
	}
	return pts, false
}

// wirePointLocked renders one ring sample as a delta frame. Callers
// hold r.mu.
func (r *Recorder) wirePointLocked(s *sample) Point {
	p := Point{Seq: s.seq, UnixNs: s.unixNs}
	for i, d := range s.counters {
		if d == 0 {
			continue
		}
		if p.Counters == nil {
			p.Counters = make(map[string]int64)
		}
		p.Counters[r.counterNames[i]] = d
	}
	if len(s.gauges) > 0 {
		p.Gauges = make(map[string]float64, len(s.gauges))
		for i, v := range s.gauges {
			p.Gauges[r.gaugeNames[i]] = v
		}
	}
	for i := range s.hists {
		hd := &s.hists[i]
		if hd.count == 0 {
			continue
		}
		if p.Hists == nil {
			p.Hists = make(map[string]WireHist)
		}
		p.Hists[r.histNames[i]] = WireHist{
			Count:   hd.count,
			Sum:     hd.sum,
			Buckets: append([]int64(nil), hd.buckets...),
		}
	}
	return p
}
