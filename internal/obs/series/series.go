// Package series retains recent history of an obs.Registry: a
// fixed-capacity ring buffer of periodic samples, each storing the
// *delta* of every counter and histogram bucket since the previous
// sample (gauges are absolute — they have no meaningful delta). The
// recorder answers the questions a point-in-time scrape cannot:
// per-counter rates, gauge min/max, and histogram percentiles over a
// trailing window, and it replays missed samples to a reconnecting
// streaming client.
//
// The sampling protocol is built for a long-running daemon: metric
// handles are resolved once per series (re-enumerated only when the
// registry's metric count moves) and then read lock-free, ring slots
// are recycled in place, so a steady-state Sample allocates only the
// subscriber-wakeup channel. Memory is bounded by Capacity regardless
// of process lifetime.
//
// Delta encoding is the reconciliation contract the CI gate asserts:
// a subscriber that receives one absolute snapshot Point and then every
// delta Point can reproduce the registry's counter values at any sample
// boundary by summation, exactly — counters and bucket counts are
// int64, so the sum has no floating-point drift.
//
// The clock is injected (Options.Clock) so tests and deterministic
// replays control time; the default routes through the package's single
// annotated wall-clock seam.
package series

import (
	"context"
	"sort"
	"sync"
	"time"

	"opendwarfs/internal/obs"
)

// wallclock is the package's declared wall-clock seam: sample
// timestamps describe when this host observed the registry, which is
// wall-clock by design. Deterministic users inject Options.Clock.
//
//lint:allow detrand sample timestamps are the series recorder's declared wall-clock seam
var wallclock = time.Now

// Options configures a Recorder. The zero value is usable: 600 samples
// of capacity, a 1s interval, the wall clock.
type Options struct {
	// Capacity is the number of retained samples (default 600 — ten
	// minutes at the default interval).
	Capacity int
	// Interval is the sampling period used by Run (default 1s).
	Interval time.Duration
	// Clock supplies sample timestamps (default: the wall clock).
	Clock func() time.Time
}

// histColumn tracks one histogram series between samples.
type histColumn struct {
	h         *obs.Histogram
	bounds    []float64
	prev      []int64 // absolute bucket counts at the last sample
	prevCount int64
	prevSum   float64
}

// histDelta is one histogram's movement within one sample.
type histDelta struct {
	count   int64
	sum     float64
	buckets []int64
}

// sample is one ring slot. Slices are column-indexed and may be shorter
// than the current column set — columns created after this sample read
// as zero. Slot memory is recycled on overwrite.
type sample struct {
	seq      uint64
	unixNs   int64
	counters []int64
	gauges   []float64
	hists    []histDelta
}

// Recorder samples a registry into a ring of delta-encoded points and
// answers windowed queries over them. All methods are safe for
// concurrent use.
type Recorder struct {
	reg *obs.Registry
	opt Options

	mu sync.Mutex

	// Column registry: one slot per metric series, append-only, resolved
	// from the registry only when its metric counts move.
	counterNames   []string
	counterHandles []*obs.Counter
	counterPrev    []int64 // absolutes at the last sample
	counterIdx     map[string]int
	gaugeNames     []string
	gaugeHandles   []*obs.Gauge
	gaugeLast      []float64
	gaugeIdx       map[string]int
	histNames      []string
	histCols       []*histColumn
	histIdx        map[string]int
	nC, nG, nH     int // registry counts at the last column sync

	ring    []sample
	n       int // valid samples in the ring
	next    int // ring slot the next sample writes
	seq     uint64
	scratch []int64       // reused histogram read buffer
	notify  chan struct{} // closed and replaced on every sample
}

// New returns a recorder over reg. A nil registry is tolerated (samples
// are empty); see Options for defaults.
func New(reg *obs.Registry, opt Options) *Recorder {
	if opt.Capacity <= 0 {
		opt.Capacity = 600
	}
	if opt.Interval <= 0 {
		opt.Interval = time.Second
	}
	if opt.Clock == nil {
		opt.Clock = wallclock
	}
	return &Recorder{
		reg:        reg,
		opt:        opt,
		counterIdx: map[string]int{},
		gaugeIdx:   map[string]int{},
		histIdx:    map[string]int{},
		ring:       make([]sample, opt.Capacity),
		notify:     make(chan struct{}),
	}
}

// Interval returns the configured sampling period.
func (r *Recorder) Interval() time.Duration { return r.opt.Interval }

// Run samples on the configured interval until ctx is cancelled. Call
// it from one goroutine; Sample may additionally be called directly
// (tests, forced flushes).
func (r *Recorder) Run(ctx context.Context) {
	t := time.NewTicker(r.opt.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.Sample()
		}
	}
}

// syncColumnsLocked folds newly registered metrics into the column set.
// Cheap when nothing changed: three map-length reads on the registry.
func (r *Recorder) syncColumnsLocked() {
	c, g, h := r.reg.NumMetrics()
	if c == r.nC && g == r.nG && h == r.nH {
		return
	}
	cn, gn, hn := r.reg.MetricNames()
	for _, name := range cn {
		if _, ok := r.counterIdx[name]; ok {
			continue
		}
		r.counterIdx[name] = len(r.counterNames)
		r.counterNames = append(r.counterNames, name)
		r.counterHandles = append(r.counterHandles, r.reg.Counter(name))
		r.counterPrev = append(r.counterPrev, 0)
	}
	for _, name := range gn {
		if _, ok := r.gaugeIdx[name]; ok {
			continue
		}
		r.gaugeIdx[name] = len(r.gaugeNames)
		r.gaugeNames = append(r.gaugeNames, name)
		r.gaugeHandles = append(r.gaugeHandles, r.reg.Gauge(name))
		r.gaugeLast = append(r.gaugeLast, 0)
	}
	for _, name := range hn {
		if _, ok := r.histIdx[name]; ok {
			continue
		}
		hh := r.reg.Histogram(name, nil)
		r.histIdx[name] = len(r.histNames)
		r.histNames = append(r.histNames, name)
		r.histCols = append(r.histCols, &histColumn{
			h:      hh,
			bounds: hh.Bounds(),
			prev:   make([]int64, hh.NumBuckets()),
		})
	}
	r.nC, r.nG, r.nH = c, g, h
}

// Sample takes one sample: reads every tracked metric, stores the
// deltas in the next ring slot (recycling its memory), and wakes
// streaming followers. Returns the new sample's sequence number
// (monotonic from 1).
func (r *Recorder) Sample() uint64 {
	ts := r.opt.Clock().UnixNano()
	r.mu.Lock()
	r.syncColumnsLocked()

	s := &r.ring[r.next]
	r.next = (r.next + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
	r.seq++
	s.seq = r.seq
	s.unixNs = ts

	s.counters = s.counters[:0]
	for i, h := range r.counterHandles {
		v := h.Value()
		s.counters = append(s.counters, v-r.counterPrev[i])
		r.counterPrev[i] = v
	}
	s.gauges = s.gauges[:0]
	for i, h := range r.gaugeHandles {
		v := h.Value()
		s.gauges = append(s.gauges, v)
		r.gaugeLast[i] = v
	}
	if cap(s.hists) < len(r.histCols) {
		grown := make([]histDelta, len(r.histCols))
		copy(grown, s.hists)
		s.hists = grown
	}
	s.hists = s.hists[:len(r.histCols)]
	for i, col := range r.histCols {
		hd := &s.hists[i]
		r.scratch = col.h.AppendCounts(r.scratch[:0])
		hd.buckets = hd.buckets[:0]
		for j, v := range r.scratch {
			var p int64
			if j < len(col.prev) {
				p = col.prev[j]
			}
			hd.buckets = append(hd.buckets, v-p)
		}
		copy(col.prev, r.scratch)
		c, sum := col.h.Count(), col.h.Sum()
		hd.count, hd.sum = c-col.prevCount, sum-col.prevSum
		col.prevCount, col.prevSum = c, sum
	}

	seq := r.seq
	close(r.notify)
	r.notify = make(chan struct{})
	r.mu.Unlock()
	return seq
}

// Notify returns the channel closed by the next Sample — the follower
// wakeup for streaming handlers (re-fetch after every wakeup).
func (r *Recorder) Notify() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.notify
}

// LastSample reports the latest sample's sequence number and timestamp
// (zeros before the first sample) — what an SLO evaluation tick needs
// without building a wire snapshot.
func (r *Recorder) LastSample() (seq uint64, unixNs int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return 0, 0
	}
	s := r.at(r.n - 1)
	return s.seq, s.unixNs
}

// Stats reports total samples taken, samples currently retained, and
// the ring capacity.
func (r *Recorder) Stats() (samples uint64, retained, capacity int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq, r.n, len(r.ring)
}

// at returns the i-th retained sample in chronological order (0 is the
// oldest). Callers hold r.mu.
func (r *Recorder) at(i int) *sample {
	idx := (r.next - r.n + i + len(r.ring)) % len(r.ring)
	return &r.ring[idx]
}

// anchorLocked resolves a trailing window against the ring: the anchor
// is the newest sample at or before (latest − window) — the baseline
// deltas are measured from — and first..last are the chronological
// indexes whose deltas fall inside the window. ok is false with fewer
// than two samples (no interval to measure over).
func (r *Recorder) anchorLocked(window time.Duration) (anchor, first, last int, ok bool) {
	if r.n < 2 {
		return 0, 0, 0, false
	}
	last = r.n - 1
	cut := r.at(last).unixNs - window.Nanoseconds()
	anchor = 0
	for i := last - 1; i >= 0; i-- {
		if r.at(i).unixNs <= cut {
			anchor = i
			break
		}
	}
	return anchor, anchor + 1, last, true
}

// counterAt reads sample s's delta for counter column c (0 when the
// column postdates the sample).
func counterAt(s *sample, c int) int64 {
	if c < len(s.counters) {
		return s.counters[c]
	}
	return 0
}

// CounterDelta returns how much the named counter grew over the
// trailing window — the sum of per-sample deltas after the window's
// anchor sample. ok is false when the counter is untracked or fewer
// than two samples exist.
func (r *Recorder) CounterDelta(name string, window time.Duration) (int64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, tracked := r.counterIdx[name]
	_, first, last, ok := r.anchorLocked(window)
	if !tracked || !ok {
		return 0, false
	}
	var sum int64
	for i := first; i <= last; i++ {
		sum += counterAt(r.at(i), c)
	}
	return sum, true
}

// CounterRate returns the named counter's average per-second rate over
// the trailing window: windowed delta divided by the actual time span
// between the anchor sample and the latest one.
func (r *Recorder) CounterRate(name string, window time.Duration) (float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, tracked := r.counterIdx[name]
	anchor, first, last, ok := r.anchorLocked(window)
	if !tracked || !ok {
		return 0, false
	}
	span := r.at(last).unixNs - r.at(anchor).unixNs
	if span <= 0 {
		return 0, false
	}
	var sum int64
	for i := first; i <= last; i++ {
		sum += counterAt(r.at(i), c)
	}
	return float64(sum) / (float64(span) / 1e9), true
}

// GaugeWindow returns the named gauge's min, max and latest sampled
// value over the trailing window (anchor sample included — its value is
// the gauge's state at the window's left edge).
func (r *Recorder) GaugeWindow(name string, window time.Duration) (min, max, last float64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, tracked := r.gaugeIdx[name]
	anchor, _, lastIdx, aok := r.anchorLocked(window)
	if !tracked || !aok {
		return 0, 0, 0, false
	}
	seen := false
	for i := anchor; i <= lastIdx; i++ {
		s := r.at(i)
		if g >= len(s.gauges) {
			continue // column postdates the sample
		}
		v := s.gauges[g]
		if !seen {
			min, max, seen = v, v, true
		} else {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		last = v
	}
	return min, max, last, seen
}

// HistWindow reconstitutes the named histogram's movement over the
// trailing window as a snapshot: windowed observation count, sum and
// bucket counts. Quantiles come from HistogramSnapshot.Quantile — one
// bucket-interpolation implementation for live scrapes and windows
// alike. ok is false when nothing was observed in the window.
func (r *Recorder) HistWindow(name string, window time.Duration) (obs.HistogramSnapshot, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, tracked := r.histIdx[name]
	_, first, last, aok := r.anchorLocked(window)
	if !tracked || !aok {
		return obs.HistogramSnapshot{}, false
	}
	col := r.histCols[h]
	out := obs.HistogramSnapshot{
		Name:   name,
		Bounds: append([]float64(nil), col.bounds...),
		Counts: make([]int64, len(col.prev)),
	}
	for i := first; i <= last; i++ {
		s := r.at(i)
		if h >= len(s.hists) {
			continue
		}
		hd := &s.hists[h]
		out.Count += hd.count
		out.Sum += hd.sum
		for j, d := range hd.buckets {
			if j < len(out.Counts) {
				out.Counts[j] += d
			}
		}
	}
	if out.Count <= 0 {
		return obs.HistogramSnapshot{}, false
	}
	return out, true
}

// LastValue returns the latest sampled value of any metric: a counter's
// absolute count, a gauge's value, or a histogram's observation count —
// the scalar the SLO threshold conditions compare. ok is false before
// the first sample or for unknown names.
func (r *Recorder) LastValue(name string) (float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq == 0 {
		return 0, false
	}
	if c, ok := r.counterIdx[name]; ok {
		return float64(r.counterPrev[c]), true
	}
	if g, ok := r.gaugeIdx[name]; ok {
		return r.gaugeLast[g], true
	}
	if h, ok := r.histIdx[name]; ok {
		return float64(r.histCols[h].prevCount), true
	}
	return 0, false
}

// CounterWindow is one counter's trailing-window summary.
type CounterWindow struct {
	Name       string  `json:"name"`
	Value      int64   `json:"value"` // absolute at the latest sample
	Delta      int64   `json:"delta"`
	RatePerSec float64 `json:"rate_per_sec"`
}

// GaugeWindowSummary is one gauge's trailing-window summary.
type GaugeWindowSummary struct {
	Name string  `json:"name"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Last float64 `json:"last"`
}

// HistWindowSummary is one histogram's trailing-window summary.
type HistWindowSummary struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Summary is the windowed view of every tracked series — the
// /v1/metrics/history response body. Slices are sorted by name;
// series with no movement in the window are elided.
type Summary struct {
	FromUnixNs int64                `json:"from_unix_ns"`
	ToUnixNs   int64                `json:"to_unix_ns"`
	Samples    int                  `json:"samples"`
	Counters   []CounterWindow      `json:"counters,omitempty"`
	Gauges     []GaugeWindowSummary `json:"gauges,omitempty"`
	Histograms []HistWindowSummary  `json:"histograms,omitempty"`
}

// History summarizes every tracked series over the trailing window. The
// second return is false when fewer than two samples exist.
func (r *Recorder) History(window time.Duration) (Summary, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	anchor, first, last, ok := r.anchorLocked(window)
	if !ok {
		return Summary{}, false
	}
	var sum Summary
	sum.FromUnixNs = r.at(anchor).unixNs
	sum.ToUnixNs = r.at(last).unixNs
	sum.Samples = last - first + 1
	span := float64(sum.ToUnixNs-sum.FromUnixNs) / 1e9

	for c, name := range r.counterNames {
		var d int64
		for i := first; i <= last; i++ {
			d += counterAt(r.at(i), c)
		}
		if d == 0 {
			continue
		}
		cw := CounterWindow{Name: name, Value: r.counterPrev[c], Delta: d}
		if span > 0 {
			cw.RatePerSec = float64(d) / span
		}
		sum.Counters = append(sum.Counters, cw)
	}
	for g, name := range r.gaugeNames {
		gw := GaugeWindowSummary{Name: name}
		seen := false
		for i := anchor; i <= last; i++ {
			s := r.at(i)
			if g >= len(s.gauges) {
				continue
			}
			v := s.gauges[g]
			if !seen {
				gw.Min, gw.Max, seen = v, v, true
			} else {
				if v < gw.Min {
					gw.Min = v
				}
				if v > gw.Max {
					gw.Max = v
				}
			}
			gw.Last = v
		}
		if !seen || (gw.Min == 0 && gw.Max == 0) {
			continue
		}
		sum.Gauges = append(sum.Gauges, gw)
	}
	for h, name := range r.histNames {
		col := r.histCols[h]
		hs := obs.HistogramSnapshot{Bounds: col.bounds, Counts: make([]int64, len(col.prev))}
		for i := first; i <= last; i++ {
			s := r.at(i)
			if h >= len(s.hists) {
				continue
			}
			hd := &s.hists[h]
			hs.Count += hd.count
			hs.Sum += hd.sum
			for j, d := range hd.buckets {
				if j < len(hs.Counts) {
					hs.Counts[j] += d
				}
			}
		}
		if hs.Count <= 0 {
			continue
		}
		sum.Histograms = append(sum.Histograms, HistWindowSummary{
			Name:  name,
			Count: hs.Count,
			P50:   hs.Quantile(0.50),
			P95:   hs.Quantile(0.95),
			P99:   hs.Quantile(0.99),
		})
	}
	sort.Slice(sum.Counters, func(i, j int) bool { return sum.Counters[i].Name < sum.Counters[j].Name })
	sort.Slice(sum.Gauges, func(i, j int) bool { return sum.Gauges[i].Name < sum.Gauges[j].Name })
	sort.Slice(sum.Histograms, func(i, j int) bool { return sum.Histograms[i].Name < sum.Histograms[j].Name })
	return sum, true
}
