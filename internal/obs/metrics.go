// Package obs is the observability layer: a dependency-free, race-safe
// metrics registry (counters, gauges, histograms with fixed log-spaced
// buckets) and a span tracer with JSONL and Chrome trace-event exporters.
//
// Everything is nil-tolerant by design: a nil *Registry hands out nil
// metrics, and every method on a nil Counter/Gauge/Histogram/Span/Tracer
// is a no-op. Instrumented code therefore never guards call sites — the
// uninstrumented path costs one nil check per operation and allocates
// nothing.
//
// Metric names follow the Prometheus convention, layer-prefixed
// (harness_*, store_*, sched_*, faults_*, http_*, jobs_*); the full
// naming scheme is documented in DESIGN.md §10. Labels are rendered into
// the name with Name(), so each label combination is its own time series
// object and hot-path lookups stay a single map read.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. All methods are safe for
// concurrent use and safe on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one (no-op on nil).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down. All methods are safe for
// concurrent use and safe on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by d, which may be negative (no-op on nil).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (zero on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets chosen at creation.
// Observe is allocation-free and safe for concurrent use; all methods are
// safe on a nil receiver.
type Histogram struct {
	// bounds are the inclusive upper bounds, ascending; counts has one
	// extra slot for the +Inf bucket.
	bounds  []float64
	counts  []atomic.Int64
	n       atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value (no-op on nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Hand-rolled binary search: first bound >= v, +Inf slot otherwise.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.n.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Bounds returns a copy of the bucket upper bounds (nil on nil).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// NumBuckets returns the number of count slots, including the final
// +Inf bucket (zero on nil).
func (h *Histogram) NumBuckets() int {
	if h == nil {
		return 0
	}
	return len(h.counts)
}

// AppendCounts appends the current per-bucket counts (last slot +Inf)
// to dst and returns it — allocation-free when dst has the capacity.
// Each bucket read is atomic; the set as a whole is not a consistent
// cut, exactly like Snapshot.
func (h *Histogram) AppendCounts(dst []int64) []int64 {
	if h == nil {
		return dst
	}
	for i := range h.counts {
		dst = append(dst, h.counts[i].Load())
	}
	return dst
}

// Count returns the number of observations (zero on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observed values (zero on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// LogBuckets returns upper bounds spaced geometrically from min to at
// least max with perDecade bounds per factor of ten. perDecade 3 yields
// the classic 1-2-5 sequence (the ratios are exactly 2, 2.5, 2 rather
// than 10^(1/3), keeping the bounds human-readable). min must be > 0.
func LogBuckets(min, max float64, perDecade int) []float64 {
	if min <= 0 || max < min || perDecade < 1 {
		panic(fmt.Sprintf("obs: invalid LogBuckets(%g, %g, %d)", min, max, perDecade))
	}
	steps125 := []float64{1, 2, 5}
	var out []float64
	if perDecade == 3 {
		decade := math.Pow(10, math.Floor(math.Log10(min)))
		for b := 0; ; b++ {
			v := decade * steps125[b%3]
			if b > 0 && b%3 == 0 {
				decade *= 10
				v = decade
			}
			if v < min {
				continue
			}
			out = append(out, v)
			if v >= max {
				return out
			}
		}
	}
	ratio := math.Pow(10, 1/float64(perDecade))
	for v := min; ; v *= ratio {
		out = append(out, v)
		if v >= max {
			return out
		}
	}
}

// DefaultLatencyBuckets spans 100ns to 100s in 1-2-5 steps — wide enough
// for everything from a registry op to a full grid run, observed in
// nanoseconds.
var DefaultLatencyBuckets = LogBuckets(100, 100e9, 3)

// Name renders a metric name with label pairs in Prometheus form, sorted
// by key: Name("http_requests_total", "route", "/v1/grid", "code", "200")
// is `http_requests_total{code="200",route="/v1/grid"}`. Values are
// escaped per the exposition format. With no pairs it returns base.
func Name(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	if len(kv)%2 != 0 {
		panic("obs: Name requires key/value pairs")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Registry hands out named metrics, creating each on first use. The zero
// value is not usable — call NewRegistry — but a nil *Registry is: it
// returns nil metrics whose methods no-op, so instrumentation can be left
// unconditional. Metric creation takes a mutex; operations on the metrics
// themselves are lock-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if needed (nil on a nil
// registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed (nil on a nil
// registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds if needed; nil bounds means DefaultLatencyBuckets. An
// existing histogram's bounds win — the bounds argument only matters on
// first creation. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = DefaultLatencyBuckets
		}
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// NumMetrics returns how many counters, gauges and histograms are
// registered — a cheap change detector for pollers (the series recorder
// re-enumerates names only when a count moves). Zero on nil.
func (r *Registry) NumMetrics() (counters, gauges, hists int) {
	if r == nil {
		return 0, 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.counters), len(r.gauges), len(r.hists)
}

// MetricNames returns the registered counter, gauge and histogram
// names, each slice sorted — the enumeration half of the polling
// protocol (resolve each name to its handle once, then read the handles
// lock-free). Nil slices on a nil registry.
func (r *Registry) MetricNames() (counters, gauges, hists []string) {
	if r == nil {
		return nil, nil, nil
	}
	r.mu.Lock()
	for name := range r.counters {
		counters = append(counters, name)
	}
	for name := range r.gauges {
		gauges = append(gauges, name)
	}
	for name := range r.hists {
		hists = append(hists, name)
	}
	r.mu.Unlock()
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(hists)
	return counters, gauges, hists
}

// CounterValue returns the named counter's value, zero if it was never
// created — a read-only convenience for tests and status endpoints that
// must not instantiate series as a side effect.
func (r *Registry) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	return c.Value()
}

// CounterSnapshot is one counter in a Snapshot.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge in a Snapshot.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramSnapshot is one histogram in a Snapshot. Counts[i] is the
// (non-cumulative) count of the bucket with upper bound Bounds[i]; the
// final extra slot of Counts is the +Inf bucket.
type HistogramSnapshot struct {
	Name   string    `json:"name"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Snapshot is a deterministic point-in-time view of a registry: every
// slice sorted by metric name, equal runs yielding equal snapshots.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric, sorted by name. Individual metric reads
// are atomic; the snapshot as a whole is not a consistent cut under
// concurrent writes (no metrics-wide lock exists to take one).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Name:   name,
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, one # TYPE line per
// family, histograms expanded into cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	lastFam := ""
	typeLine := func(name, kind string) error {
		fam := name
		if i := strings.IndexByte(fam, '{'); i >= 0 {
			fam = fam[:i]
		}
		if fam == lastFam {
			return nil
		}
		lastFam = fam
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, kind)
		return err
	}
	for _, c := range s.Counters {
		if err := typeLine(c.Name, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	lastFam = ""
	for _, g := range s.Gauges {
		if err := typeLine(g.Name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", g.Name, formatFloat(g.Value)); err != nil {
			return err
		}
	}
	lastFam = ""
	for _, h := range s.Histograms {
		if err := typeLine(h.Name, "histogram"); err != nil {
			return err
		}
		// Splice the histogram's own labels (if any) ahead of le; _sum and
		// _count keep them verbatim.
		base, inner, suffix := h.Name, "", ""
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = h.Name[:i]
			inner = h.Name[i+1:len(h.Name)-1] + ","
			suffix = "{" + h.Name[i+1:len(h.Name)-1] + "}"
		}
		cum := int64(0)
		for i, n := range h.Counts {
			cum += n
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatFloat(h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", base, inner, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, suffix, formatFloat(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, h.Count); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
