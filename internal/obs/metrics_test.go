package obs

import (
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x_total") != c {
		t.Fatalf("second lookup returned a different counter")
	}
	g := r.Gauge("temp")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
	if r.CounterValue("x_total") != 5 {
		t.Fatalf("CounterValue(x_total) = %d", r.CounterValue("x_total"))
	}
	if r.CounterValue("never_created") != 0 {
		t.Fatalf("CounterValue of absent counter should be 0")
	}
	// The read-only accessor must not create the series.
	if n := len(r.Snapshot().Counters); n != 1 {
		t.Fatalf("snapshot has %d counters, want 1", n)
	}
}

func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	g := r.Gauge("b")
	h := r.Histogram("c", nil)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil metrics")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil metric reads must be zero")
	}
	if r.CounterValue("a") != 0 {
		t.Fatalf("nil registry CounterValue must be 0")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot must be empty")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", []float64{10, 100, 1000})
	for _, v := range []float64{5, 10, 11, 99, 100.5, 2000, 1e9} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	snap := r.Snapshot().Histograms[0]
	// Upper bounds are inclusive: 5 and 10 land in le=10; 11 and 99 in
	// le=100; 100.5 in le=1000; 2000 and 1e9 overflow to +Inf.
	want := []int64{2, 2, 1, 2}
	if !reflect.DeepEqual(snap.Counts, want) {
		t.Fatalf("bucket counts = %v, want %v", snap.Counts, want)
	}
	wantSum := 5 + 10 + 11 + 99 + 100.5 + 2000 + 1e9
	if snap.Sum != wantSum {
		t.Fatalf("sum = %g, want %g", snap.Sum, wantSum)
	}
	// Re-requesting with different bounds returns the existing histogram.
	if r.Histogram("lat_ns", []float64{1}) != h {
		t.Fatalf("second Histogram lookup must return the original")
	}
}

func TestLogBuckets125(t *testing.T) {
	got := LogBuckets(100, 10000, 3)
	want := []float64{100, 200, 500, 1000, 2000, 5000, 10000}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("LogBuckets(100, 10000, 3) = %v, want %v", got, want)
	}
	if n := len(DefaultLatencyBuckets); n == 0 || DefaultLatencyBuckets[0] != 100 || DefaultLatencyBuckets[n-1] < 100e9 {
		t.Fatalf("DefaultLatencyBuckets malformed: %v", DefaultLatencyBuckets)
	}
}

func TestNameSortsAndEscapesLabels(t *testing.T) {
	got := Name("http_requests_total", "route", "/v1/grid", "code", "200")
	want := `http_requests_total{code="200",route="/v1/grid"}`
	if got != want {
		t.Fatalf("Name = %s, want %s", got, want)
	}
	if Name("plain") != "plain" {
		t.Fatalf("Name with no labels must return the base")
	}
	got = Name("m", "k", "a\"b\\c\nd")
	want = `m{k="a\"b\\c\nd"}`
	if got != want {
		t.Fatalf("escaped Name = %s, want %s", got, want)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		// Insertion order differs from name order on purpose.
		r.Counter("z_total").Add(3)
		r.Counter("a_total").Add(1)
		r.Gauge("m").Set(2)
		r.Histogram("h_ns", []float64{1, 10}).Observe(5)
		return r.Snapshot()
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("equal runs produced unequal snapshots:\n%v\n%v", a, b)
	}
	if a.Counters[0].Name != "a_total" || a.Counters[1].Name != "z_total" {
		t.Fatalf("counters not sorted: %v", a.Counters)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total").Add(7)
	r.Counter(Name("hits_total", "route", "/x")).Add(2)
	r.Gauge("temp").Set(1.5)
	r.Histogram(Name("lat_ns", "route", "/x"), []float64{10, 100}).Observe(50)
	r.Histogram("plain_ns", []float64{10}).Observe(3)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE hits_total counter\n",
		`hits_total{route="/x"} 2` + "\n",
		"# TYPE req_total counter\nreq_total 7\n",
		"# TYPE temp gauge\ntemp 1.5\n",
		"# TYPE lat_ns histogram\n",
		`lat_ns_bucket{route="/x",le="10"} 0` + "\n",
		`lat_ns_bucket{route="/x",le="100"} 1` + "\n",
		`lat_ns_bucket{route="/x",le="+Inf"} 1` + "\n",
		`lat_ns_sum{route="/x"} 50` + "\n",
		`lat_ns_count{route="/x"} 1` + "\n",
		"plain_ns_bucket{le=\"10\"} 1\n",
		"plain_ns_sum 3\n",
		"plain_ns_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q; got:\n%s", want, out)
		}
	}
	// Exactly one TYPE line per family even with multiple label sets.
	if n := strings.Count(out, "# TYPE lat_ns "); n != 1 {
		t.Fatalf("lat_ns TYPE lines = %d, want 1", n)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c_total").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h_ns", nil).Observe(float64(i))
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.CounterValue("c_total"); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Fatalf("gauge = %g, want 8000", got)
	}
	if got := r.Histogram("h_ns", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h_ns", nil)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
		h.Observe(12345)
	}); n != 0 {
		t.Fatalf("metric ops allocate %v per run, want 0", n)
	}
	// Lookup of an existing metric must not allocate either (hot paths may
	// re-resolve by name).
	if n := testing.AllocsPerRun(1000, func() {
		r.Counter("c_total").Inc()
	}); n != 0 {
		t.Fatalf("counter lookup allocates %v per run, want 0", n)
	}
}
