// Package slo evaluates declarative alert rules against the trailing
// metric history a series.Recorder retains. Two rule kinds cover the
// paper harness's operational questions: threshold ("is this gauge /
// counter / histogram count beyond a limit right now, sustained for N
// seconds?") and burn_rate ("is this counter growing faster than X per
// second averaged over the last W seconds?").
//
// Rules come from two places with one validation path: Go callers use
// the Threshold / BurnRate constructors with const snake_case names
// (the obsnames analyzer enforces this statically, exactly as it does
// for metric names), and operators load JSON rule files (-alerts on
// dwarfserve) which LoadRules validates with the same name grammar at
// load time.
//
// The engine is clock-free: Eval takes the evaluation timestamp from
// its caller (the sampler loop passes the sample's clock), so the
// package stays deterministic under the detrand analyzer and in tests.
package slo

import (
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"sync"
	"time"

	"opendwarfs/internal/obs"
	"opendwarfs/internal/obs/series"
)

// Op is a comparison operator in a rule condition.
type Op string

const (
	OpGT Op = "gt"
	OpGE Op = "ge"
	OpLT Op = "lt"
	OpLE Op = "le"
)

func (o Op) holds(v, limit float64) bool {
	switch o {
	case OpGE:
		return v >= limit
	case OpLT:
		return v < limit
	case OpLE:
		return v <= limit
	default: // OpGT and the zero value
		return v > limit
	}
}

// Rule kinds.
const (
	KindThreshold = "threshold"
	KindBurnRate  = "burn_rate"
)

// Rule is one declarative alert condition.
type Rule struct {
	// Name identifies the rule: snake_case, unique within an engine.
	Name string `json:"name"`
	// Kind selects the condition: KindThreshold compares the metric's
	// latest sampled value (counter absolute, gauge value, histogram
	// observation count); KindBurnRate compares a counter's per-second
	// rate averaged over Window.
	Kind string `json:"kind"`
	// Metric is the obs registry metric the condition reads.
	Metric string `json:"metric"`
	// Op compares the observed value against Value (default gt).
	Op Op `json:"op,omitempty"`
	// Value is the limit the condition compares against.
	Value float64 `json:"value"`
	// Window is the burn-rate averaging window (default 60s).
	Window time.Duration `json:"-"`
	// For keeps a true condition in StatePending until it has held this
	// long; zero fires immediately.
	For time.Duration `json:"-"`
	// Severity is a free-form label surfaced on /v1/alerts ("warn",
	// "page", ...). Informational only.
	Severity string `json:"severity,omitempty"`
}

// ruleNameRe is the rule-name grammar — identical to the metric-name
// grammar the obsnames analyzer enforces.
var ruleNameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// Threshold builds a threshold rule. name must be a snake_case constant
// at the call site (statically checked by the obsnames analyzer);
// sustain is how long the condition must hold before firing.
func Threshold(name, metric string, op Op, value float64, sustain time.Duration) Rule {
	return Rule{Name: name, Kind: KindThreshold, Metric: metric, Op: op, Value: value, For: sustain}
}

// BurnRate builds a burn-rate rule: fire when metric (a counter) grows
// faster than ratePerSec averaged over window. name must be a
// snake_case constant at the call site.
func BurnRate(name, metric string, ratePerSec float64, window time.Duration) Rule {
	return Rule{Name: name, Kind: KindBurnRate, Metric: metric, Op: OpGT, Value: ratePerSec, Window: window}
}

// Validate checks one rule's shape; the error names the offending field.
func (r Rule) Validate() error {
	if !ruleNameRe.MatchString(r.Name) {
		return fmt.Errorf("rule name %q is not snake_case", r.Name)
	}
	if r.Metric == "" {
		return fmt.Errorf("rule %s: empty metric", r.Name)
	}
	switch r.Kind {
	case KindThreshold:
	case KindBurnRate:
		if r.Window <= 0 {
			return fmt.Errorf("rule %s: burn_rate needs a positive window", r.Name)
		}
	default:
		return fmt.Errorf("rule %s: unknown kind %q", r.Name, r.Kind)
	}
	switch r.Op {
	case "", OpGT, OpGE, OpLT, OpLE:
	default:
		return fmt.Errorf("rule %s: unknown op %q", r.Name, r.Op)
	}
	return nil
}

// jsonRule is the file representation: durations in seconds, so rule
// files stay plain JSON numbers.
type jsonRule struct {
	Name      string  `json:"name"`
	Kind      string  `json:"kind"`
	Metric    string  `json:"metric"`
	Op        string  `json:"op"`
	Value     float64 `json:"value"`
	WindowSec float64 `json:"window_sec"`
	ForSec    float64 `json:"for_sec"`
	Severity  string  `json:"severity"`
}

// LoadRules parses a JSON rule file:
//
//	{"rules": [
//	  {"name": "failed_cells_burn", "kind": "burn_rate",
//	   "metric": "harness_failed_cells_total", "value": 0.5, "window_sec": 30},
//	  {"name": "jobs_backlogged", "kind": "threshold",
//	   "metric": "jobs_running", "op": "ge", "value": 4, "for_sec": 10,
//	   "severity": "warn"}
//	]}
//
// Every rule is validated with the same name grammar the analyzer
// enforces on Go constructors; duplicates are rejected.
func LoadRules(rd io.Reader) ([]Rule, error) {
	var f struct {
		Rules []jsonRule `json:"rules"`
	}
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("alert rules: %w", err)
	}
	seen := map[string]bool{}
	rules := make([]Rule, 0, len(f.Rules))
	for _, jr := range f.Rules {
		r := Rule{
			Name:     jr.Name,
			Kind:     jr.Kind,
			Metric:   jr.Metric,
			Op:       Op(jr.Op),
			Value:    jr.Value,
			Window:   time.Duration(jr.WindowSec * float64(time.Second)),
			For:      time.Duration(jr.ForSec * float64(time.Second)),
			Severity: jr.Severity,
		}
		if err := r.Validate(); err != nil {
			return nil, err
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		rules = append(rules, r)
	}
	return rules, nil
}

// State is an alert's lifecycle position.
type State string

const (
	StateOK       State = "ok"       // never fired, condition false
	StatePending  State = "pending"  // condition true, For not yet elapsed
	StateFiring   State = "firing"   // condition true (and sustained)
	StateResolved State = "resolved" // fired earlier, condition now false
)

// Alert is one rule's current evaluation, the /v1/alerts row.
type Alert struct {
	Rule     Rule    `json:"rule"`
	State    State   `json:"state"`
	Value    float64 `json:"value"`            // last evaluated condition input
	SinceNs  int64   `json:"since_unix_ns"`    // when the current state began
	FiredCnt int64   `json:"fired_total"`      // lifetime fire transitions
	WindowOK bool    `json:"window_populated"` // condition had data to evaluate
}

// ruleState is the engine's mutable per-rule record.
type ruleState struct {
	rule     Rule
	state    State
	sinceNs  int64
	pendNs   int64 // when the condition first held (pending start)
	value    float64
	dataOK   bool
	firedCnt int64
}

// Engine evaluates a fixed rule set against a recorder. Eval is called
// from the sampler loop after each sample; Alerts and Firing serve the
// HTTP layer. Safe for concurrent use.
type Engine struct {
	rec    *series.Recorder
	firing *obs.Gauge // alerts_firing, updated on every Eval (nil ok)

	mu    sync.Mutex
	rules []*ruleState
}

// NewEngine builds an engine over rec with the given rules. Invalid
// rules are rejected here so a bad -alerts file fails at startup, not
// at first evaluation. firing, if non-nil, tracks the count of firing
// alerts as a gauge.
func NewEngine(rec *series.Recorder, rules []Rule, firing *obs.Gauge) (*Engine, error) {
	e := &Engine{rec: rec, firing: firing}
	seen := map[string]bool{}
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		e.rules = append(e.rules, &ruleState{rule: r, state: StateOK})
	}
	sort.Slice(e.rules, func(i, j int) bool { return e.rules[i].rule.Name < e.rules[j].rule.Name })
	return e, nil
}

// Eval evaluates every rule against the recorder's current history.
// nowNs is the evaluation timestamp (callers pass their clock — the
// sampler loop uses the sample tick's time), keeping the engine
// deterministic under injected clocks.
func (e *Engine) Eval(nowNs int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	firing := 0
	for _, rs := range e.rules {
		var v float64
		var ok bool
		switch rs.rule.Kind {
		case KindBurnRate:
			v, ok = e.rec.CounterRate(rs.rule.Metric, rs.rule.Window)
		default:
			v, ok = e.rec.LastValue(rs.rule.Metric)
		}
		rs.value, rs.dataOK = v, ok
		cond := ok && rs.rule.Op.holds(v, rs.rule.Value)
		switch {
		case cond && (rs.state == StateOK || rs.state == StateResolved):
			rs.pendNs = nowNs
			if rs.rule.For > 0 {
				rs.state, rs.sinceNs = StatePending, nowNs
			} else {
				rs.state, rs.sinceNs = StateFiring, nowNs
				rs.firedCnt++
			}
		case cond && rs.state == StatePending:
			if nowNs-rs.pendNs >= rs.rule.For.Nanoseconds() {
				rs.state, rs.sinceNs = StateFiring, nowNs
				rs.firedCnt++
			}
		case !cond && rs.state == StateFiring:
			rs.state, rs.sinceNs = StateResolved, nowNs
		case !cond && rs.state == StatePending:
			rs.state, rs.sinceNs = StateOK, nowNs
		}
		if rs.state == StateFiring {
			firing++
		}
	}
	e.firing.Set(float64(firing))
}

// Alerts returns every rule's current evaluation, sorted by rule name.
func (e *Engine) Alerts() []Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Alert, 0, len(e.rules))
	for _, rs := range e.rules {
		out = append(out, Alert{
			Rule:     rs.rule,
			State:    rs.state,
			Value:    rs.value,
			SinceNs:  rs.sinceNs,
			FiredCnt: rs.firedCnt,
			WindowOK: rs.dataOK,
		})
	}
	return out
}

// Firing returns the names of currently firing rules, sorted.
func (e *Engine) Firing() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for _, rs := range e.rules {
		if rs.state == StateFiring {
			out = append(out, rs.rule.Name)
		}
	}
	return out
}
