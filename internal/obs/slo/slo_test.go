package slo

import (
	"strings"
	"testing"
	"time"

	"opendwarfs/internal/obs"
	"opendwarfs/internal/obs/series"
)

// Rule names in Go sources must be snake_case constants — the obsnames
// analyzer checks exactly this shape at Threshold/BurnRate call sites.
const (
	testRuleBurn    = "failed_cells_burn"
	testRuleBacklog = "jobs_backlogged"
)

// harnessRig is a registry + fake-clocked recorder pair the engine
// tests drive sample by sample.
type harnessRig struct {
	reg   *obs.Registry
	rec   *series.Recorder
	nowNs int64
}

func newRig() *harnessRig {
	rig := &harnessRig{reg: obs.NewRegistry(), nowNs: 1_700_000_000_000_000_000}
	rig.rec = series.New(rig.reg, series.Options{
		Capacity: 64,
		Interval: time.Second,
		Clock:    func() time.Time { return time.Unix(0, rig.nowNs) },
	})
	return rig
}

// tick advances the fake clock one second and samples.
func (rig *harnessRig) tick() {
	rig.nowNs += int64(time.Second)
	rig.rec.Sample()
}

func TestBurnRateLifecycle(t *testing.T) {
	rig := newRig()
	failed := rig.reg.Counter("harness_failed_cells_total")
	firing := rig.reg.Gauge("alerts_firing")
	eng, err := NewEngine(rig.rec, []Rule{
		BurnRate(testRuleBurn, "harness_failed_cells_total", 0.5, 10*time.Second),
	}, firing)
	if err != nil {
		t.Fatal(err)
	}

	// Quiet baseline: two samples, no failures — ok.
	rig.tick()
	rig.tick()
	eng.Eval(rig.nowNs)
	if a := eng.Alerts(); a[0].State != StateOK {
		t.Fatalf("quiet state = %s, want ok", a[0].State)
	}

	// Burn: 3 failures/sec for a few ticks — fires, gauge goes to 1.
	for i := 0; i < 3; i++ {
		failed.Add(3)
		rig.tick()
		eng.Eval(rig.nowNs)
	}
	a := eng.Alerts()
	if a[0].State != StateFiring {
		t.Fatalf("burning state = %s (value %v), want firing", a[0].State, a[0].Value)
	}
	if a[0].Value <= 0.5 {
		t.Fatalf("firing alert carries value %v, want > 0.5", a[0].Value)
	}
	if firing.Value() != 1 {
		t.Fatalf("alerts_firing = %v, want 1", firing.Value())
	}
	if got := eng.Firing(); len(got) != 1 || got[0] != testRuleBurn {
		t.Fatalf("Firing() = %v", got)
	}

	// Quiesce: enough quiet samples push the windowed rate under the
	// limit — resolved, gauge back to 0.
	for i := 0; i < 15; i++ {
		rig.tick()
		eng.Eval(rig.nowNs)
	}
	a = eng.Alerts()
	if a[0].State != StateResolved {
		t.Fatalf("quiesced state = %s (value %v), want resolved", a[0].State, a[0].Value)
	}
	if firing.Value() != 0 {
		t.Fatalf("alerts_firing after resolve = %v, want 0", firing.Value())
	}
	if a[0].FiredCnt != 1 {
		t.Fatalf("fired_total = %d, want 1", a[0].FiredCnt)
	}

	// Re-burn: resolved → firing again, fired_total increments.
	for i := 0; i < 3; i++ {
		failed.Add(5)
		rig.tick()
		eng.Eval(rig.nowNs)
	}
	a = eng.Alerts()
	if a[0].State != StateFiring || a[0].FiredCnt != 2 {
		t.Fatalf("re-burn state = %s fired=%d, want firing/2", a[0].State, a[0].FiredCnt)
	}
}

func TestThresholdForPending(t *testing.T) {
	rig := newRig()
	running := rig.reg.Gauge("jobs_running")
	eng, err := NewEngine(rig.rec, []Rule{
		Threshold(testRuleBacklog, "jobs_running", OpGE, 4, 3*time.Second),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	rig.tick()
	rig.tick()
	running.Set(5)
	rig.tick()
	eng.Eval(rig.nowNs)
	if a := eng.Alerts(); a[0].State != StatePending {
		t.Fatalf("fresh breach = %s, want pending (for=3s)", a[0].State)
	}

	// Condition lapses before For elapses: back to ok, never fired.
	running.Set(1)
	rig.tick()
	eng.Eval(rig.nowNs)
	if a := eng.Alerts(); a[0].State != StateOK || a[0].FiredCnt != 0 {
		t.Fatalf("lapsed breach = %s fired=%d, want ok/0", a[0].State, a[0].FiredCnt)
	}

	// Sustained breach: pending for 3 ticks, then firing.
	running.Set(6)
	rig.tick()
	eng.Eval(rig.nowNs)
	if a := eng.Alerts(); a[0].State != StatePending {
		t.Fatalf("sustained t0 = %s, want pending", a[0].State)
	}
	rig.tick()
	eng.Eval(rig.nowNs)
	rig.tick()
	eng.Eval(rig.nowNs)
	rig.tick()
	eng.Eval(rig.nowNs)
	if a := eng.Alerts(); a[0].State != StateFiring {
		t.Fatalf("sustained 3s+ = %s, want firing", a[0].State)
	}
}

func TestThresholdImmediateFire(t *testing.T) {
	rig := newRig()
	q := rig.reg.Counter("harness_quarantines_total")
	eng, _ := NewEngine(rig.rec, []Rule{
		Threshold("any_quarantine", "harness_quarantines_total", OpGE, 1, 0),
	}, nil)
	rig.tick()
	rig.tick()
	eng.Eval(rig.nowNs)
	if a := eng.Alerts(); a[0].State != StateOK {
		t.Fatalf("pre-quarantine = %s", a[0].State)
	}
	q.Inc()
	rig.tick()
	eng.Eval(rig.nowNs)
	if a := eng.Alerts(); a[0].State != StateFiring {
		t.Fatalf("post-quarantine = %s, want firing (for=0)", a[0].State)
	}
}

func TestNoDataIsOK(t *testing.T) {
	rig := newRig()
	eng, _ := NewEngine(rig.rec, []Rule{
		Threshold("ghost_metric", "does_not_exist", OpGT, 0, 0),
	}, nil)
	rig.tick()
	rig.tick()
	eng.Eval(rig.nowNs)
	a := eng.Alerts()
	if a[0].State != StateOK || a[0].WindowOK {
		t.Fatalf("missing metric = %s dataOK=%v, want ok/false", a[0].State, a[0].WindowOK)
	}
}

func TestLoadRules(t *testing.T) {
	const good = `{"rules": [
	  {"name": "failed_cells_burn", "kind": "burn_rate",
	   "metric": "harness_failed_cells_total", "value": 0.5, "window_sec": 30},
	  {"name": "jobs_backlogged", "kind": "threshold",
	   "metric": "jobs_running", "op": "ge", "value": 4, "for_sec": 10,
	   "severity": "warn"}
	]}`
	rules, err := LoadRules(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("loaded %d rules", len(rules))
	}
	if rules[0].Window != 30*time.Second || rules[1].For != 10*time.Second {
		t.Fatalf("durations not decoded: %v / %v", rules[0].Window, rules[1].For)
	}
	if rules[1].Severity != "warn" || rules[1].Op != OpGE {
		t.Fatalf("fields not decoded: %+v", rules[1])
	}

	bad := []string{
		`{"rules":[{"name":"BadName","kind":"threshold","metric":"m","value":1}]}`,
		`{"rules":[{"name":"kebab-case","kind":"threshold","metric":"m","value":1}]}`,
		`{"rules":[{"name":"ok_name","kind":"threshold","metric":"","value":1}]}`,
		`{"rules":[{"name":"ok_name","kind":"nonsense","metric":"m","value":1}]}`,
		`{"rules":[{"name":"ok_name","kind":"burn_rate","metric":"m","value":1}]}`,
		`{"rules":[{"name":"ok_name","kind":"threshold","metric":"m","op":"spaceship","value":1}]}`,
		`{"rules":[{"name":"dup","kind":"threshold","metric":"m","value":1},
		           {"name":"dup","kind":"threshold","metric":"m","value":2}]}`,
		`{"rules":[{"name":"ok_name","kind":"threshold","metric":"m","value":1,"bogus_field":true}]}`,
	}
	for _, src := range bad {
		if _, err := LoadRules(strings.NewReader(src)); err == nil {
			t.Errorf("LoadRules accepted %s", src)
		}
	}
}

func TestEngineRejectsBadRules(t *testing.T) {
	rig := newRig()
	if _, err := NewEngine(rig.rec, []Rule{{Name: "Bad", Kind: KindThreshold, Metric: "m"}}, nil); err == nil {
		t.Fatal("engine accepted non-snake rule name")
	}
	dup := Threshold("same_name", "m", OpGT, 1, 0)
	if _, err := NewEngine(rig.rec, []Rule{dup, dup}, nil); err == nil {
		t.Fatal("engine accepted duplicate rule names")
	}
}
