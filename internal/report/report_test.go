package report

import (
	"context"

	"strings"
	"testing"

	"opendwarfs/internal/harness"
	"opendwarfs/internal/suite"
)

func smallGrid(t *testing.T) *harness.Grid {
	t.Helper()
	opt := harness.DefaultOptions()
	opt.Samples = 6
	opt.MaxFunctionalOps = 0
	opt.Verify = false
	g, err := harness.RunGrid(context.Background(), suite.New(), harness.GridSpec{
		Benchmarks: []string{"crc", "srad"},
		Sizes:      []string{"tiny", "large"},
		Devices:    []string{"i7-6700k", "gtx1080", "k20m"},
		Options:    opt,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTableRendering(t *testing.T) {
	var sb strings.Builder
	Table(&sb, []string{"a", "bb"}, [][]string{{"xxx", "y"}, {"1", "22222"}})
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "a    bb") {
		t.Fatalf("header misaligned: %q", lines[0])
	}
}

func TestTable1ContainsAllDevices(t *testing.T) {
	var sb strings.Builder
	Table1Hardware(&sb)
	out := sb.String()
	for _, name := range []string{"Xeon E5-2697 v2", "i7-6700K", "Titan X", "GTX 1080 Ti", "FirePro S9150", "R9 295x2", "Xeon Phi 7210"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table 1 missing %q", name)
		}
	}
	// Spot-check Table 1 values from the paper.
	if !strings.Contains(out, "1200/2700/3500") {
		t.Error("E5-2697 v2 clocks wrong")
	}
	if !strings.Contains(out, "32/256/30720") {
		t.Error("E5-2697 v2 caches wrong")
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	var sb strings.Builder
	Table2Sizes(&sb, suite.New())
	out := sb.String()
	checks := []string{
		"kmeans", "256", "131072",
		"fft", "2097152",
		"srad", "80,16", "2048,1024",
		"gem", "4TUT", "1KX5",
		"nqueens", "18",
		"hmm", "8,1", "2048,2048",
	}
	for _, c := range checks {
		if !strings.Contains(out, c) {
			t.Errorf("Table 2 missing %q", c)
		}
	}
	// nqueens has a single size: dashes in the other columns.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "nqueens") && strings.Count(line, "-") < 3 {
			t.Errorf("nqueens row should dash unsupported sizes: %q", line)
		}
	}
}

func TestTable3SymbolisesScale(t *testing.T) {
	var sb strings.Builder
	Table3Args(&sb, suite.New())
	out := sb.String()
	if !strings.Contains(out, "-g -f 26 -p Φ") {
		t.Errorf("kmeans args not symbolised:\n%s", out)
	}
	if !strings.Contains(out, "-l 3 Φ-gum.ppm") {
		t.Errorf("dwt args not symbolised:\n%s", out)
	}
}

func TestFigureSeriesAndCSV(t *testing.T) {
	g := smallGrid(t)
	var sb strings.Builder
	FigureSeries(&sb, g, "crc", []string{"tiny", "large"})
	out := sb.String()
	if !strings.Contains(out, "crc / tiny") || !strings.Contains(out, "crc / large") {
		t.Fatalf("figure series missing panels:\n%s", out)
	}
	if !strings.Contains(out, "GTX 1080") {
		t.Fatal("figure series missing device rows")
	}

	var csv strings.Builder
	FigureCSV(&csv, g, "srad")
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+2*3 { // header + 2 sizes × 3 devices
		t.Fatalf("%d CSV lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "benchmark,size,device") {
		t.Fatal("CSV header wrong")
	}
}

func TestFigure5Energy(t *testing.T) {
	g := smallGrid(t)
	var sb strings.Builder
	Figure5Energy(&sb, g, []string{"crc", "srad"})
	out := sb.String()
	if !strings.Contains(out, "crc") || !strings.Contains(out, "CPU/GPU") {
		t.Fatalf("figure 5 table malformed:\n%s", out)
	}
}

func TestBoxPlotASCII(t *testing.T) {
	s := BoxPlotASCII(1, 2, 3, 4, 5, 10, 40)
	if len([]rune(s)) != 40 {
		t.Fatalf("width %d", len(s))
	}
	if !strings.Contains(s, "#") || !strings.Contains(s, "=") {
		t.Fatalf("missing box glyphs: %q", s)
	}
	// Degenerate scale.
	if got := BoxPlotASCII(0, 0, 0, 0, 0, 0, 20); len(got) != 20 {
		t.Fatal("degenerate scale not padded")
	}
}

func TestFigureBoxes(t *testing.T) {
	g := smallGrid(t)
	var sb strings.Builder
	FigureBoxes(&sb, g, "crc", "large", 50)
	out := sb.String()
	if !strings.Contains(out, "i7-6700k") || !strings.Contains(out, "#") {
		t.Fatalf("box panel malformed:\n%s", out)
	}
	// Unknown slice renders nothing.
	var empty strings.Builder
	FigureBoxes(&empty, g, "nope", "large", 50)
	if empty.Len() != 0 {
		t.Fatal("unknown benchmark rendered content")
	}
}
