package report

import (
	"fmt"
	"io"
	"sort"

	"opendwarfs/internal/sched"
)

// PolicyComparison renders one row per schedule of the same workload ×
// fleet — the dwarfsched headline table: makespan, energy split, devices
// used, constraint violations, and how much of the plan rested on
// predictions.
func PolicyComparison(w io.Writer, schedules []*sched.Schedule) {
	headers := []string{"Policy", "Makespan (ms)", "Active (J)", "Idle (J)",
		"Devices", "Deadline miss", "Energy over", "Measured", "Predicted"}
	var rows [][]string
	for _, s := range schedules {
		rows = append(rows, []string{
			s.Policy,
			fmt.Sprintf("%.3f", s.MakespanNs/1e6),
			fmt.Sprintf("%.3f", s.TotalEnergyJ),
			fmt.Sprintf("%.3f", s.IdleEnergyJ),
			fmt.Sprintf("%d", len(s.Devices())),
			fmt.Sprintf("%d", s.DeadlineMisses),
			fmt.Sprintf("%d", s.EnergyOverruns),
			fmt.Sprintf("%d", s.Measured),
			fmt.Sprintf("%d", s.Predicted),
		})
	}
	fmt.Fprintln(w, "Policy comparison (same workload, fleet and cost model)")
	Table(w, headers, rows)
}

// ScheduleTimeline renders the per-device timelines of one schedule:
// lanes in fleet order, slots in start order, with the cost source of
// each placement.
func ScheduleTimeline(w io.Writer, s *sched.Schedule) {
	headers := []string{"Device", "Task", "Start (ms)", "Finish (ms)", "Energy (J)", "Source", "Flags"}
	var rows [][]string
	for _, lane := range s.Lanes {
		if lane.Tasks == 0 {
			continue
		}
		var slots []*sched.Slot
		for i := range s.Slots {
			if s.Slots[i].Device == lane.Device {
				slots = append(slots, &s.Slots[i])
			}
		}
		sort.Slice(slots, func(a, b int) bool { return slots[a].StartNs < slots[b].StartNs })
		for _, sl := range slots {
			flags := ""
			if sl.DeadlineMiss {
				flags += " deadline-miss"
			}
			if sl.EnergyOver {
				flags += " energy-over"
			}
			rows = append(rows, []string{
				lane.Device, sl.TaskID,
				fmt.Sprintf("%.3f", sl.StartNs/1e6),
				fmt.Sprintf("%.3f", sl.FinishNs/1e6),
				fmt.Sprintf("%.3f", sl.EnergyJ),
				string(sl.Source),
				flags,
			})
		}
	}
	fmt.Fprintf(w, "Schedule timeline (%s): makespan %.3f ms, energy %.3f J active + %.3f J idle\n",
		s.Policy, s.MakespanNs/1e6, s.TotalEnergyJ, s.IdleEnergyJ)
	Table(w, headers, rows)
}

// OnlineRounds renders the online loop's convergence: per round, the
// prediction share of the plan, the execution's store hit split, and —
// when an oracle was configured — the raw and incumbent regret.
func OnlineRounds(w io.Writer, rounds []sched.Round, withRegret bool) {
	headers := []string{"Round", "Predicted", "Measured", "Exec hits", "Exec misses"}
	if withRegret {
		headers = append(headers, "Actual (ms)", "Oracle (ms)", "Regret (%)", "Best (%)")
	}
	var rows [][]string
	for i := range rounds {
		r := &rounds[i]
		row := []string{
			fmt.Sprintf("%d", r.Index),
			fmt.Sprintf("%d", r.Predicted),
			fmt.Sprintf("%d", r.Measured),
			fmt.Sprintf("%d", r.StoreHits),
			fmt.Sprintf("%d", r.StoreMisses),
		}
		if withRegret {
			row = append(row,
				fmt.Sprintf("%.3f", r.ActualNs/1e6),
				fmt.Sprintf("%.3f", r.OracleNs/1e6),
				fmt.Sprintf("%.2f", r.RegretPct),
				fmt.Sprintf("%.2f", r.BestRegretPct),
			)
		}
		rows = append(rows, row)
	}
	fmt.Fprintln(w, "Online scheduling rounds (schedule -> execute -> re-train)")
	Table(w, headers, rows)
}
