package report

import (
	"fmt"
	"io"
	"sort"

	"opendwarfs/internal/harness"
	"opendwarfs/internal/roofline"
	"opendwarfs/internal/sim"
)

// RooflineTable renders the §7 "ideal performance" analysis for every
// distinct kernel in a grid: roofline attainment per device and the
// performance-portability score per kernel, ranked from most to least
// portable.
func RooflineTable(w io.Writer, g *harness.Grid) error {
	// Collect one profile per benchmark/kernel (profiles are device
	// independent) and the device set present in the grid.
	type entry struct {
		key     string
		profile *sim.KernelProfile
	}
	var entries []entry
	seenKernel := map[string]bool{}
	devSet := map[string]*sim.DeviceSpec{}
	var devs []*sim.DeviceSpec
	for _, m := range g.Measurements {
		if devSet[m.Device.ID] == nil {
			devSet[m.Device.ID] = m.Device
			devs = append(devs, m.Device)
		}
		for _, p := range m.Profiles {
			key := m.Benchmark + "/" + p.Name
			if seenKernel[key] {
				continue
			}
			seenKernel[key] = true
			entries = append(entries, entry{key: key, profile: p})
		}
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i].ID < devs[j].ID })
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })

	type row struct {
		key  string
		pp   float64
		best roofline.Bound
		wrst roofline.Bound
	}
	var rows []row
	for _, e := range entries {
		bounds, err := roofline.AnalyzeAcross(devs, e.profile)
		if err != nil {
			return fmt.Errorf("report: roofline for %s: %w", e.key, err)
		}
		rep := roofline.NewReport(e.key, bounds)
		rows = append(rows, row{
			key:  e.key,
			pp:   rep.PP,
			best: rep.Bounds[0],
			wrst: rep.Bounds[len(rep.Bounds)-1],
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].pp > rows[j].pp })

	fmt.Fprintln(w, "Roofline attainment and performance portability (§7 'ideal performance')")
	headers := []string{"Kernel", "PP", "Best device", "attain", "Worst device", "attain"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.key,
			fmt.Sprintf("%.3f", r.pp),
			r.best.Device, fmt.Sprintf("%.3f", r.best.Attainment),
			r.wrst.Device, fmt.Sprintf("%.3f", r.wrst.Attainment),
		})
	}
	Table(w, headers, cells)
	return nil
}
