package report

import (
	"context"

	"strings"
	"testing"

	"opendwarfs/internal/harness"
	"opendwarfs/internal/suite"
)

func profiledGrid(t *testing.T) *harness.Grid {
	t.Helper()
	opt := harness.DefaultOptions()
	opt.Samples = 5
	opt.MaxFunctionalOps = 0
	opt.Verify = false
	g, err := harness.RunGrid(context.Background(), suite.New(), harness.GridSpec{
		Benchmarks: []string{"srad", "crc", "nqueens"},
		Sizes:      []string{"tiny"},
		Devices:    []string{"i7-6700k", "gtx1080", "knl-7210"},
		Options:    opt,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRooflineTable(t *testing.T) {
	g := profiledGrid(t)
	var sb strings.Builder
	if err := RooflineTable(&sb, g); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"performance portability", "srad/srad1", "crc/crc32_pages", "nqueens/nqueens_count", "Best device"} {
		if !strings.Contains(out, want) {
			t.Errorf("roofline table missing %q:\n%s", want, out)
		}
	}
}

func TestAIWCTable(t *testing.T) {
	g := profiledGrid(t)
	var sb strings.Builder
	AIWCTable(&sb, g)
	out := sb.String()
	for _, want := range []string{"AIWC", "srad/srad2", "crc/crc32_pages", "Diverg", "most similar kernel pair"} {
		if !strings.Contains(out, want) {
			t.Errorf("AIWC table missing %q:\n%s", want, out)
		}
	}
	// crc must show as integer-dominated, srad as flop-heavy.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "crc/") && !strings.Contains(line, "0.00") {
			// crc has zero flop fraction; the first mix column is flop.
			fields := strings.Fields(line)
			if len(fields) > 5 && fields[5] != "0.00" {
				t.Errorf("crc flop fraction %s, want 0.00: %s", fields[5], line)
			}
		}
	}
}

func TestMeasurementDiagnosticsPopulated(t *testing.T) {
	g := profiledGrid(t)
	for _, m := range g.Measurements {
		d := m.Diagnostics
		if d.NonNormal {
			t.Errorf("%s/%s/%s: small-CV lognormal samples flagged non-normal (D=%f)",
				m.Benchmark, m.Size, m.Device.ID, d.KSStatistic)
		}
		if d.Autocorrelated {
			t.Errorf("%s/%s/%s: independent noise samples flagged autocorrelated (r1=%f)",
				m.Benchmark, m.Size, m.Device.ID, d.Lag1)
		}
	}
}
