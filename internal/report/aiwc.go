package report

import (
	"fmt"
	"io"

	"opendwarfs/internal/aiwc"
	"opendwarfs/internal/harness"
)

// AIWCTable renders the architecture-independent characterisation of every
// distinct kernel in a grid — the per-kernel feature table the paper's §7
// describes as the explanatory companion to the runtime results.
func AIWCTable(w io.Writer, g *harness.Grid) {
	var ms []aiwc.Metrics
	seen := map[string]bool{}
	for _, meas := range g.Measurements {
		for _, p := range meas.Profiles {
			key := meas.Benchmark + "/" + p.Name
			if seen[key] {
				continue
			}
			seen[key] = true
			m := aiwc.Characterize(p)
			m.Kernel = key
			ms = append(ms, m)
		}
	}
	aiwc.SortByName(ms)

	headers := []string{"Kernel", "Ops", "AI (flop/B)", "Parallelism", "Gran (ops/item)",
		"flop", "int", "load", "store", "branch", "Diverg", "Footprint (KiB)"}
	var rows [][]string
	for _, m := range ms {
		rows = append(rows, []string{
			m.Kernel,
			fmt.Sprintf("%.3g", m.TotalOps),
			fmt.Sprintf("%.3f", m.ArithmeticIntensity),
			fmt.Sprintf("%d", m.Parallelism),
			fmt.Sprintf("%.1f", m.GranularityOps),
			fmt.Sprintf("%.2f", m.FlopFraction),
			fmt.Sprintf("%.2f", m.IntFraction),
			fmt.Sprintf("%.2f", m.LoadFraction),
			fmt.Sprintf("%.2f", m.StoreFraction),
			fmt.Sprintf("%.2f", m.BranchFraction),
			fmt.Sprintf("%.2f", m.BranchDivergence),
			fmt.Sprintf("%.1f", float64(m.FootprintBytes)/1024),
		})
	}
	fmt.Fprintln(w, "AIWC: architecture-independent workload characterisation (§7)")
	Table(w, headers, rows)

	if len(ms) >= 2 {
		a, b, d := aiwc.MostSimilarPair(ms)
		fmt.Fprintf(w, "\nDiversity: most similar kernel pair is %s / %s (distance %.3f)\n", a.Kernel, b.Kernel, d)
	}
}
