package report

import (
	"fmt"
	"io"

	"opendwarfs/internal/predict"
)

// PredictionAccuracy renders a cross-validation result as the per-fold
// accuracy table: held-out group, cell count, and the three error
// summaries. A closing line gives the median across folds, the headline
// number the CI smoke asserts against.
func PredictionAccuracy(w io.Writer, cv *predict.CVResult) {
	headers := []string{"Held-out " + cv.GroupBy, "Cells", "MAPE (%)", "MedAPE (%)", "LogMAPE (%)"}
	var rows [][]string
	for i := range cv.Folds {
		f := &cv.Folds[i]
		rows = append(rows, []string{
			f.Held, fmt.Sprintf("%d", f.N),
			fmt.Sprintf("%.1f", f.MAPE),
			fmt.Sprintf("%.1f", f.MedAPE),
			fmt.Sprintf("%.2f", f.LogMAPE),
		})
	}
	fmt.Fprintf(w, "Leave-one-%s-out cross-validation (runtime prediction, §7)\n", cv.GroupBy)
	Table(w, headers, rows)
	fmt.Fprintf(w, "median across folds: MAPE %.1f%%  LogMAPE %.2f%%\n",
		cv.MedianFoldMAPE(), cv.MedianFoldLogMAPE())
}

// FeatureImportanceTable renders the forest's top-N feature importances —
// which AIWC and device dimensions the learned model leans on.
func FeatureImportanceTable(w io.Writer, f *predict.Forest, topN int) {
	imps := f.Importances()
	if topN > 0 && topN < len(imps) {
		imps = imps[:topN]
	}
	headers := []string{"Feature", "Importance"}
	var rows [][]string
	for _, imp := range imps {
		rows = append(rows, []string{imp.Feature, fmt.Sprintf("%.3f", imp.Share)})
	}
	fmt.Fprintf(w, "Feature importance (%d trees, share of total variance reduction)\n", f.Trees())
	Table(w, headers, rows)
}

// HeldOutPredictions renders per-cell predicted-versus-actual rows — the
// "predict this benchmark on a device it never ran on" view.
func HeldOutPredictions(w io.Writer, preds []predict.Prediction) {
	headers := []string{"Benchmark", "Size", "Device", "Actual (ms)", "Predicted (ms)", "APE (%)", "LogAPE (%)"}
	var rows [][]string
	for i := range preds {
		p := &preds[i]
		rows = append(rows, []string{
			p.Benchmark, p.Size, p.Device,
			fmt.Sprintf("%.4f", p.ActualNs/1e6),
			fmt.Sprintf("%.4f", p.PredNs/1e6),
			fmt.Sprintf("%.1f", p.APE),
			fmt.Sprintf("%.2f", p.LogAPE),
		})
	}
	Table(w, headers, rows)
}
