// Package report renders the paper's tables and figures from suite
// measurements: ASCII tables for Tables 1–3, per-figure box-plot series for
// Figures 1–4, and the energy comparison of Figure 5. Each figure renderer
// also emits CSV so the series can be re-plotted externally.
package report

import (
	"fmt"
	"io"
	"strings"

	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/harness"
	"opendwarfs/internal/sim"
)

// Table writes an ASCII table with a header row.
func Table(w io.Writer, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(headers)
	seps := make([]string, len(headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range rows {
		line(row)
	}
}

// Table1Hardware renders the paper's Table 1 from the device catalogue.
func Table1Hardware(w io.Writer) {
	headers := []string{"Name", "Vendor", "Type", "Series", "Core Count",
		"Clock (MHz) min/max/turbo", "Cache (KiB) L1/L2/L3", "TDP (W)", "Launch Date"}
	var rows [][]string
	for _, d := range sim.Devices() {
		devType := "CPU"
		switch d.Class {
		case sim.ConsumerGPU, sim.HPCGPU:
			devType = "GPU"
		case sim.MIC:
			devType = "MIC"
		}
		clock := fmt.Sprintf("%.0f/%s/%s", d.MinClockMHz, dash(d.MaxClockMHz), dash(d.TurboClockMHz))
		cache := fmt.Sprintf("%.0f/%.0f/%s", d.L1KiB, d.L2KiB, dash(d.L3KiB))
		rows = append(rows, []string{
			d.Name, d.Vendor, devType, d.Series, fmt.Sprintf("%d", d.CoreCount),
			clock, cache, fmt.Sprintf("%.0f", d.TDPWatts), d.LaunchDate,
		})
	}
	fmt.Fprintln(w, "Table 1: Hardware")
	Table(w, headers, rows)
}

func dash(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}

// Table2Sizes renders the paper's Table 2 (workload scale parameters Φ).
func Table2Sizes(w io.Writer, reg *dwarfs.Registry) {
	headers := []string{"Benchmark", "tiny", "small", "medium", "large"}
	var rows [][]string
	for _, b := range reg.All() {
		row := []string{b.Name()}
		for _, size := range dwarfs.Sizes() {
			val := "-"
			for _, s := range b.Sizes() {
				if s == size {
					val = b.ScaleParameter(size)
				}
			}
			row = append(row, val)
		}
		rows = append(rows, row)
	}
	fmt.Fprintln(w, "Table 2: OpenDwarfs workload scale parameters Φ")
	Table(w, headers, rows)
}

// Table3Args renders the paper's Table 3 (program arguments).
func Table3Args(w io.Writer, reg *dwarfs.Registry) {
	headers := []string{"Benchmark", "Arguments"}
	var rows [][]string
	for _, b := range reg.All() {
		size := b.Sizes()[0]
		args := b.ArgString(size)
		// Table 3 shows the scale slot symbolically.
		args = strings.ReplaceAll(args, b.ScaleParameter(size), "Φ")
		rows = append(rows, []string{b.Name(), args})
	}
	fmt.Fprintln(w, "Table 3: Program Arguments (Φ = workload scale parameter)")
	Table(w, headers, rows)
}

// FigureSeries renders one benchmark's grid slice as the per-size device
// box-plot series of Figures 1–3: for each size a sub-table of device,
// class, and the five-number summary of kernel time in milliseconds.
func FigureSeries(w io.Writer, g *harness.Grid, bench string, sizes []string) {
	for _, size := range sizes {
		var rows [][]string
		for _, m := range g.ByBenchmark(bench) {
			if m.Size != size {
				continue
			}
			rows = append(rows, []string{
				m.Device.Name,
				m.Device.Class.String(),
				ms(m.Kernel.Min), ms(m.Kernel.Q1), ms(m.Kernel.Median),
				ms(m.Kernel.Q3), ms(m.Kernel.Max),
				fmt.Sprintf("%.3f", m.Kernel.CV),
			})
		}
		if len(rows) == 0 {
			continue
		}
		fmt.Fprintf(w, "\n%s / %s — kernel time (ms)\n", bench, size)
		Table(w, []string{"Device", "Class", "min", "q1", "median", "q3", "max", "CV"}, rows)
	}
}

// FigureCSV emits one benchmark's series as CSV rows
// (benchmark,size,device,class,stat...) for external plotting.
func FigureCSV(w io.Writer, g *harness.Grid, bench string) {
	fmt.Fprintln(w, "benchmark,size,device,class,min_ms,q1_ms,median_ms,q3_ms,max_ms,cv,energy_j")
	for _, m := range g.ByBenchmark(bench) {
		fmt.Fprintf(w, "%s,%s,%s,%s,%s,%s,%s,%s,%s,%.4f,%.4f\n",
			m.Benchmark, m.Size, m.Device.ID, m.Device.Class,
			ms(m.Kernel.Min), ms(m.Kernel.Q1), ms(m.Kernel.Median),
			ms(m.Kernel.Q3), ms(m.Kernel.Max), m.Kernel.CV, m.Energy.Median)
	}
}

// Figure5Energy renders the large-size energy comparison between the
// i7-6700K (RAPL) and GTX 1080 (NVML), linear and log as in Figs. 5a/5b.
func Figure5Energy(w io.Writer, g *harness.Grid, benches []string) {
	headers := []string{"Benchmark", "i7-6700k (J)", "gtx1080 (J)", "CPU/GPU"}
	var rows [][]string
	for _, bench := range benches {
		cpu := g.Find(bench, sizeForEnergy(bench), "i7-6700k")
		gpu := g.Find(bench, sizeForEnergy(bench), "gtx1080")
		if cpu == nil || gpu == nil {
			continue
		}
		rows = append(rows, []string{
			bench,
			fmt.Sprintf("%.4f", cpu.Energy.Median),
			fmt.Sprintf("%.4f", gpu.Energy.Median),
			fmt.Sprintf("%.2f", cpu.Energy.Median/gpu.Energy.Median),
		})
	}
	fmt.Fprintln(w, "Figure 5: kernel execution energy, large problem size")
	Table(w, headers, rows)
}

// sizeForEnergy returns the problem size Figure 5 uses per benchmark
// (large, except the single-size benchmarks).
func sizeForEnergy(bench string) string {
	if bench == "nqueens" {
		return dwarfs.SizeTiny
	}
	return dwarfs.SizeLarge
}

func ms(ns float64) string { return fmt.Sprintf("%.4f", ns/1e6) }

// BoxPlotASCII draws a horizontal ASCII box plot of a five-number summary
// scaled to a shared maximum, for terminal-friendly figure rendering.
func BoxPlotASCII(min, q1, median, q3, max, scaleMax float64, width int) string {
	if width < 10 {
		width = 10
	}
	if scaleMax <= 0 {
		return strings.Repeat(" ", width)
	}
	pos := func(v float64) int {
		p := int(v / scaleMax * float64(width-1))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	row := []rune(strings.Repeat(" ", width))
	for i := pos(min); i <= pos(max); i++ {
		row[i] = '-'
	}
	for i := pos(q1); i <= pos(q3); i++ {
		row[i] = '='
	}
	row[pos(median)] = '#'
	return string(row)
}

// FigureBoxes renders a benchmark × size panel as ASCII box plots, the
// terminal analogue of the paper's figure panels.
func FigureBoxes(w io.Writer, g *harness.Grid, bench, size string, width int) {
	var ms []*harness.Measurement
	maxNs := 0.0
	for _, m := range g.ByBenchmark(bench) {
		if m.Size != size {
			continue
		}
		ms = append(ms, m)
		if m.Kernel.Max > maxNs {
			maxNs = m.Kernel.Max
		}
	}
	if len(ms) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%s / %s  (scale max %.3f ms)\n", bench, size, maxNs/1e6)
	for _, m := range ms {
		k := m.Kernel
		fmt.Fprintf(w, "%-15s |%s| %8.3f ms\n", m.Device.ID,
			BoxPlotASCII(k.Min, k.Q1, k.Median, k.Q3, k.Max, maxNs, width), k.Median/1e6)
	}
}

// StoreStats prints the one-line cache outcome of a store-backed grid run:
// how many cells were served from the persistent store versus measured, and
// the hit rate. It prints nothing for runs without a store attached.
func StoreStats(w io.Writer, g *harness.Grid) {
	total := g.StoreHits + g.StoreMisses
	if total == 0 {
		return
	}
	fmt.Fprintf(w, "store: %d/%d cells served from store, %d measured (%.1f%% hit rate)\n",
		g.StoreHits, total, g.StoreMisses, g.HitRate())
}
