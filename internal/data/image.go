package data

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
)

// Image is a grayscale raster used by the dwt benchmark. Pixels are float32
// intensities in [0, 255].
type Image struct {
	W, H int
	Pix  []float32
}

// NewImage allocates a W×H image.
func NewImage(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("data: invalid image size %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]float32, w*h)}
}

// At returns the pixel at (x, y).
func (im *Image) At(x, y int) float32 { return im.Pix[y*im.W+x] }

// Set assigns the pixel at (x, y).
func (im *Image) Set(x, y int, v float32) { im.Pix[y*im.W+x] = v }

// GenerateLeaf synthesises the paper's gum-leaf test photograph (§4.4.3):
// an elliptical leaf body with a midrib, branching veins and smooth
// illumination gradients over a textured background. The structural content
// (edges at several orientations and scales plus smooth regions) is what a
// wavelet transform responds to, so it stands in for the original image.
func GenerateLeaf(w, h int, seed int64) *Image {
	im := NewImage(w, h)
	rng := rand.New(rand.NewSource(seed))
	cx, cy := float64(w)/2, float64(h)/2
	a, b := float64(w)*0.42, float64(h)*0.33
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fx, fy := float64(x), float64(y)
			// Leaf body: rotated ellipse.
			dx, dy := (fx-cx)/a, (fy-cy)/b
			r := dx*dx + dy*dy
			v := 40.0 + 20*fx/float64(w) // background gradient
			if r < 1 {
				// Interior shading darkens toward the rim.
				v = 150 - 60*r
				// Midrib along the major axis.
				if math.Abs(fy-cy) < float64(h)*0.01+1 {
					v -= 35
				}
				// Secondary veins: oblique stripes.
				phase := (fx - cx) + 2.2*math.Abs(fy-cy)
				period := math.Max(4, float64(w)/24)
				if math.Mod(math.Abs(phase), period) < period*0.12 {
					v -= 25
				}
			}
			// Sensor-like noise.
			v += rng.NormFloat64() * 2
			im.Set(x, y, float32(math.Max(0, math.Min(255, v))))
		}
	}
	return im
}

// Resize box-filters the image to the target size — the role ImageMagick's
// resize plays in the paper's dataset preparation ("down-sampled to 80×60").
func (im *Image) Resize(w, h int) *Image {
	out := NewImage(w, h)
	sx := float64(im.W) / float64(w)
	sy := float64(im.H) / float64(h)
	for y := 0; y < h; y++ {
		y0 := int(float64(y) * sy)
		y1 := int(float64(y+1) * sy)
		if y1 <= y0 {
			y1 = y0 + 1
		}
		if y1 > im.H {
			y1 = im.H
		}
		for x := 0; x < w; x++ {
			x0 := int(float64(x) * sx)
			x1 := int(float64(x+1) * sx)
			if x1 <= x0 {
				x1 = x0 + 1
			}
			if x1 > im.W {
				x1 = im.W
			}
			sum := float32(0)
			for yy := y0; yy < y1; yy++ {
				for xx := x0; xx < x1; xx++ {
					sum += im.At(xx, yy)
				}
			}
			out.Set(x, y, sum/float32((x1-x0)*(y1-y0)))
		}
	}
	return out
}

// WritePGM encodes the image as a binary PGM (P5), the output format the
// extended dwt benchmark stores its coefficients in (§4.4.3).
func (im *Image) WritePGM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	for _, p := range im.Pix {
		v := p
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		if err := bw.WriteByte(byte(v)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WritePPM encodes the image as a binary PPM (P6) with equal RGB channels,
// the input format the extended dwt benchmark loads (§4.4.3).
func (im *Image) WritePPM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	for _, p := range im.Pix {
		v := p
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		b := byte(v)
		if _, err := bw.Write([]byte{b, b, b}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPNM decodes a binary PGM (P5) or PPM (P6); PPM is converted to
// grayscale with the Rec.601 luma weights.
func ReadPNM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic, err := pnmToken(br)
	if err != nil {
		return nil, err
	}
	if magic != "P5" && magic != "P6" {
		return nil, fmt.Errorf("data: unsupported PNM magic %q", magic)
	}
	var w, h, maxv int
	for _, dst := range []*int{&w, &h, &maxv} {
		tok, err := pnmToken(br)
		if err != nil {
			return nil, err
		}
		if _, err := fmt.Sscanf(tok, "%d", dst); err != nil {
			return nil, fmt.Errorf("data: bad PNM header token %q", tok)
		}
	}
	if w <= 0 || h <= 0 || maxv <= 0 || maxv > 255 {
		return nil, fmt.Errorf("data: bad PNM geometry %dx%d max %d", w, h, maxv)
	}
	im := NewImage(w, h)
	if magic == "P5" {
		buf := make([]byte, w*h)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("data: short PGM payload: %w", err)
		}
		for i, b := range buf {
			im.Pix[i] = float32(b)
		}
		return im, nil
	}
	buf := make([]byte, w*h*3)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("data: short PPM payload: %w", err)
	}
	for i := 0; i < w*h; i++ {
		r8, g8, b8 := float32(buf[3*i]), float32(buf[3*i+1]), float32(buf[3*i+2])
		im.Pix[i] = 0.299*r8 + 0.587*g8 + 0.114*b8
	}
	return im, nil
}

// pnmToken reads the next whitespace-delimited header token, skipping
// '#' comments.
func pnmToken(br *bufio.Reader) (string, error) {
	tok := make([]byte, 0, 8)
	for {
		b, err := br.ReadByte()
		if err != nil {
			return "", err
		}
		switch {
		case b == '#':
			if _, err := br.ReadString('\n'); err != nil {
				return "", err
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}
