package data

import (
	"fmt"
	"math"
	"math/rand"
)

// Molecule is the gem benchmark input: a set of charged atoms and the
// solvent-excluded surface vertices at which the electrostatic potential is
// evaluated. The paper builds these from MMDB structures through pdb2pqr and
// msms (§4.4.4); here they are synthesised with matching device-side
// footprints, since gem's cost is vertices × atoms and its memory behaviour
// depends only on the array sizes.
type Molecule struct {
	Name string
	// AtomX/Y/Z/Q are the atom positions and partial charges (the pqr
	// fields gem reads).
	AtomX, AtomY, AtomZ, AtomQ []float32
	// VertX/Y/Z are surface sample positions.
	VertX, VertY, VertZ []float32
}

// Atoms returns the atom count.
func (m *Molecule) Atoms() int { return len(m.AtomX) }

// Vertices returns the surface vertex count.
func (m *Molecule) Vertices() int { return len(m.VertX) }

// FootprintBytes is the device-side memory gem allocates: four atom arrays,
// three vertex arrays, and the output potential per vertex.
func (m *Molecule) FootprintBytes() int64 {
	return int64(m.Atoms())*4*4 + int64(m.Vertices())*4*4
}

// MoleculePreset mirrors one row of the paper's gem dataset (Table 2 and
// §4.4.4), with atom/vertex counts chosen to land on the reported
// device-side footprints.
type MoleculePreset struct {
	Size string
	// PDBID is the structure the paper used.
	PDBID string
	// Description per §4.4.4.
	Description  string
	Atoms        int
	Vertices     int
	FootprintKiB float64
}

// MoleculePresets lists the paper's four gem inputs:
// tiny = prion peptide 4TUT (31.3 KiB), small = leukocyte receptor 2D3V
// (252 KiB), medium = the OpenDwarfs nucleosome (7498 KiB), large =
// nucleosome core particle 1KX5 (10 970.2 KiB).
func MoleculePresets() []MoleculePreset {
	return []MoleculePreset{
		{Size: "tiny", PDBID: "4TUT", Description: "Prion Peptide, 1 protein molecule",
			Atoms: 350, Vertices: 1653, FootprintKiB: 31.3},
		{Size: "small", PDBID: "2D3V", Description: "Leukocyte Receptor, 1 protein molecule",
			Atoms: 3200, Vertices: 12928, FootprintKiB: 252},
		{Size: "medium", PDBID: "nucleosome", Description: "OpenDwarfs nucleosome dataset",
			Atoms: 80000, Vertices: 399872, FootprintKiB: 7498},
		{Size: "large", PDBID: "1KX5", Description: "Nucleosome Core Particle: 8 protein, 2 nucleotide, 18 chemical molecules",
			Atoms: 120000, Vertices: 582093, FootprintKiB: 10970.2},
	}
}

// MoleculePresetFor returns the preset for a problem size.
func MoleculePresetFor(size string) (MoleculePreset, error) {
	for _, p := range MoleculePresets() {
		if p.Size == size {
			return p, nil
		}
	}
	return MoleculePreset{}, fmt.Errorf("data: no gem molecule preset for size %q", size)
}

// GenerateMolecule synthesises a molecule: atoms clustered into residue-like
// blobs inside a globular radius, partial charges in [-1, 1] summing to
// roughly zero, and vertices on a noisy solvent-excluded-like shell around
// the atom cloud.
func GenerateMolecule(p MoleculePreset, seed int64) *Molecule {
	rng := rand.New(rand.NewSource(seed))
	m := &Molecule{
		Name:  p.PDBID,
		AtomX: make([]float32, p.Atoms), AtomY: make([]float32, p.Atoms),
		AtomZ: make([]float32, p.Atoms), AtomQ: make([]float32, p.Atoms),
		VertX: make([]float32, p.Vertices), VertY: make([]float32, p.Vertices),
		VertZ: make([]float32, p.Vertices),
	}
	// Globular protein radius scales with the cube root of atom count
	// (~1.6 Å per atom^(1/3) empirical packing).
	radius := 1.6 * math.Cbrt(float64(p.Atoms))
	// Residue blobs of ~8 atoms.
	var bx, by, bz float64
	qsum := 0.0
	for i := 0; i < p.Atoms; i++ {
		if i%8 == 0 {
			u, v, w := rng.Float64()*2-1, rng.Float64()*2-1, rng.Float64()*2-1
			bx, by, bz = u*radius*0.8, v*radius*0.8, w*radius*0.8
		}
		m.AtomX[i] = float32(bx + rng.NormFloat64()*1.5)
		m.AtomY[i] = float32(by + rng.NormFloat64()*1.5)
		m.AtomZ[i] = float32(bz + rng.NormFloat64()*1.5)
		q := rng.Float64()*2 - 1
		qsum += q
		m.AtomQ[i] = float32(q)
	}
	// Neutralise overall charge (proteins at pH 7 are near neutral).
	adjust := float32(qsum / float64(p.Atoms))
	for i := range m.AtomQ {
		m.AtomQ[i] -= adjust
	}
	// Surface shell at radius + 1.4 Å probe, with roughness.
	shell := radius + 1.4
	for i := 0; i < p.Vertices; i++ {
		// Uniform direction via normalised Gaussian triple.
		x, y, z := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		n := math.Sqrt(x*x+y*y+z*z) + 1e-12
		r := shell * (1 + 0.08*rng.NormFloat64())
		m.VertX[i] = float32(x / n * r)
		m.VertY[i] = float32(y / n * r)
		m.VertZ[i] = float32(z / n * r)
	}
	return m
}
