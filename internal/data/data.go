// Package data generates the benchmark input datasets. Where the paper used
// external data (PDB molecules via pdb2pqr/msms, a gum-leaf photograph
// resized by ImageMagick, files produced by the createcsr tool), this package
// produces synthetic equivalents with the same sizes and statistical
// structure, as documented in DESIGN.md.
package data

import "math/rand"

// DefaultSeed is the deterministic seed used across the suite so runs are
// reproducible; benchmarks offset it per size to decorrelate datasets.
const DefaultSeed = 0x0d3a7f5

// RandomFeatures generates the kmeans feature space: the paper extended the
// benchmark "to support generation of a random distribution of points ...
// to more fairly evaluate cache performance" (§4.4.1). Points are uniform
// in [0, 100) per feature.
func RandomFeatures(points, features int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, points*features)
	for i := range out {
		out[i] = float32(rng.Float64() * 100)
	}
	return out
}

// RandomSequence generates an integer sequence in [1, alphabet] — the
// Needleman-Wunsch input (Rodinia draws residues 1..23).
func RandomSequence(n, alphabet int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(rng.Intn(alphabet) + 1)
	}
	return out
}

// RandomBytes generates a crc input message of n bytes.
func RandomBytes(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	// rand.Read on a seeded source is deterministic.
	if _, err := rng.Read(out); err != nil {
		panic(err) // cannot happen for math/rand
	}
	return out
}

// DiagonallyDominantMatrix generates an n×n row-major matrix that LU
// decomposition without pivoting factorises stably (Rodinia's lud input
// generator does the same).
func DiagonallyDominantMatrix(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	m := make([]float32, n*n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			v := rng.Float64()*2 - 1
			m[i*n+j] = float32(v)
			if v < 0 {
				sum -= v
			} else {
				sum += v
			}
		}
		m[i*n+i] = float32(sum + 1)
	}
	return m
}
