package data

import (
	"fmt"
	"math/rand"
	"sort"
)

// CSR is a compressed-sparse-row matrix, the format of the paper's csr
// benchmark (Sparse Linear Algebra dwarf).
type CSR struct {
	N      int // square dimension
	RowPtr []int32
	Cols   []int32
	Vals   []float32
}

// NNZ returns the number of stored non-zeros.
func (m *CSR) NNZ() int { return len(m.Vals) }

// FootprintBytes is the device-side size of the matrix plus the x and y
// vectors of a SpMV, matching the paper's Eq. (1)-style accounting.
func (m *CSR) FootprintBytes() int64 {
	return int64(len(m.RowPtr))*4 + int64(len(m.Cols))*4 + int64(len(m.Vals))*4 + 2*int64(m.N)*4
}

// CreateCSR reproduces the createcsr tool of Table 3: an n×n matrix with the
// given density (the paper uses -d 5000, i.e. 0.5% dense / 99.5% sparse).
// Each row receives an expected density·n non-zeros at uniform random
// columns; rows may be empty, as with the original generator.
func CreateCSR(n int, density float64, seed int64) (*CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("data: createcsr n=%d must be positive", n)
	}
	if density <= 0 || density > 1 {
		return nil, fmt.Errorf("data: createcsr density %g out of (0,1]", density)
	}
	rng := rand.New(rand.NewSource(seed))
	m := &CSR{N: n, RowPtr: make([]int32, n+1)}
	perRow := density * float64(n)
	cols := map[int32]bool{}
	for i := 0; i < n; i++ {
		// Binomial-ish draw: floor plus probabilistic extra keeps the
		// expected density exact even when density·n < 1.
		k := int(perRow)
		if rng.Float64() < perRow-float64(k) {
			k++
		}
		clear(cols)
		for len(cols) < k && len(cols) < n {
			cols[int32(rng.Intn(n))] = true
		}
		sorted := make([]int32, 0, len(cols))
		for c := range cols {
			sorted = append(sorted, c)
		}
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		for _, c := range sorted {
			m.Cols = append(m.Cols, c)
			m.Vals = append(m.Vals, float32(rng.Float64()*2-1))
		}
		m.RowPtr[i+1] = int32(len(m.Cols))
	}
	return m, nil
}

// Validate checks structural invariants of the CSR format.
func (m *CSR) Validate() error {
	if len(m.RowPtr) != m.N+1 {
		return fmt.Errorf("data: rowptr length %d, want %d", len(m.RowPtr), m.N+1)
	}
	if m.RowPtr[0] != 0 || int(m.RowPtr[m.N]) != len(m.Cols) || len(m.Cols) != len(m.Vals) {
		return fmt.Errorf("data: inconsistent csr extents")
	}
	for i := 0; i < m.N; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("data: rowptr not monotone at row %d", i)
		}
		prev := int32(-1)
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			c := m.Cols[k]
			if c < 0 || int(c) >= m.N {
				return fmt.Errorf("data: column %d out of range in row %d", c, i)
			}
			if c <= prev {
				return fmt.Errorf("data: columns not strictly increasing in row %d", i)
			}
			prev = c
		}
	}
	return nil
}

// MulVec computes y = A·x serially (the csr benchmark's reference).
func (m *CSR) MulVec(x, y []float32) {
	if len(x) != m.N || len(y) != m.N {
		panic("data: MulVec dimension mismatch")
	}
	for i := 0; i < m.N; i++ {
		sum := float32(0)
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += m.Vals[k] * x[m.Cols[k]]
		}
		y[i] = sum
	}
}
