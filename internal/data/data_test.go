package data

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestRandomFeaturesDeterministicAndBounded(t *testing.T) {
	a := RandomFeatures(100, 26, 1)
	b := RandomFeatures(100, 26, 1)
	c := RandomFeatures(100, 26, 2)
	if len(a) != 2600 {
		t.Fatalf("len %d", len(a))
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed differs")
		}
		if a[i] != c[i] {
			same = false
		}
		if a[i] < 0 || a[i] >= 100 {
			t.Fatalf("feature %f out of range", a[i])
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

func TestRandomSequenceAlphabet(t *testing.T) {
	s := RandomSequence(1000, 23, 7)
	for _, v := range s {
		if v < 1 || v > 23 {
			t.Fatalf("residue %d out of [1,23]", v)
		}
	}
}

func TestRandomBytesDeterministic(t *testing.T) {
	if !bytes.Equal(RandomBytes(64, 5), RandomBytes(64, 5)) {
		t.Fatal("same seed differs")
	}
	if bytes.Equal(RandomBytes(64, 5), RandomBytes(64, 6)) {
		t.Fatal("different seeds identical")
	}
}

func TestDiagonallyDominant(t *testing.T) {
	n := 64
	m := DiagonallyDominantMatrix(n, 3)
	for i := 0; i < n; i++ {
		off := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				off += math.Abs(float64(m[i*n+j]))
			}
		}
		if math.Abs(float64(m[i*n+i])) <= off {
			t.Fatalf("row %d not diagonally dominant", i)
		}
	}
}

func TestCreateCSRStructure(t *testing.T) {
	m, err := CreateCSR(736, 0.005, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Expected nnz ≈ n²·density.
	want := 736.0 * 736 * 0.005
	if got := float64(m.NNZ()); math.Abs(got-want)/want > 0.15 {
		t.Fatalf("nnz %v, want ≈%v", got, want)
	}
	// Paper's tiny csr footprint must land under the 32 KiB L1.
	if kib := float64(m.FootprintBytes()) / 1024; kib > 32 {
		t.Fatalf("tiny csr footprint %.1f KiB exceeds L1", kib)
	}
}

func TestCreateCSRArgs(t *testing.T) {
	if _, err := CreateCSR(0, 0.5, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := CreateCSR(10, 0, 1); err == nil {
		t.Fatal("density 0 accepted")
	}
	if _, err := CreateCSR(10, 1.5, 1); err == nil {
		t.Fatal("density >1 accepted")
	}
}

func TestCSRMulVec(t *testing.T) {
	// Identity-ish check: diagonal-only matrix at density→0.
	m, err := CreateCSR(32, 0.001, 9)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 32)
	y := make([]float32, 32)
	for i := range x {
		x[i] = float32(i + 1)
	}
	m.MulVec(x, y)
	// Every row has at least the diagonal; recompute independently.
	for i := 0; i < m.N; i++ {
		want := float32(0)
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			want += m.Vals[k] * x[m.Cols[k]]
		}
		if y[i] != want {
			t.Fatalf("row %d: %f vs %f", i, y[i], want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch accepted")
		}
	}()
	m.MulVec(x[:3], y)
}

// Property: CreateCSR always yields a structurally valid matrix.
func TestCreateCSRValidProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, dRaw uint8) bool {
		n := int(nRaw)%200 + 1
		d := float64(dRaw%100+1) / 100
		m, err := CreateCSR(n, d, seed)
		if err != nil {
			return false
		}
		return m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateLeafStructure(t *testing.T) {
	im := GenerateLeaf(200, 150, 5)
	if im.W != 200 || im.H != 150 {
		t.Fatal("bad size")
	}
	// The leaf interior must be brighter than the background corner.
	center := im.At(100, 75)
	corner := im.At(2, 2)
	if center <= corner {
		t.Fatalf("leaf body (%.0f) should be brighter than background (%.0f)", center, corner)
	}
	for _, p := range im.Pix {
		if p < 0 || p > 255 {
			t.Fatalf("pixel %f out of range", p)
		}
	}
}

func TestResize(t *testing.T) {
	// §4.4.3: the 3648×2736 original is down-sampled to 80×60.
	im := GenerateLeaf(364, 273, 5)
	small := im.Resize(80, 60)
	if small.W != 80 || small.H != 60 {
		t.Fatal("bad resize")
	}
	// Mean intensity is approximately preserved by a box filter.
	mean := func(im *Image) float64 {
		s := 0.0
		for _, p := range im.Pix {
			s += float64(p)
		}
		return s / float64(len(im.Pix))
	}
	if a, b := mean(im), mean(small); math.Abs(a-b) > 5 {
		t.Fatalf("box filter shifted mean %f -> %f", a, b)
	}
}

func TestPNMRoundTrip(t *testing.T) {
	im := GenerateLeaf(72, 54, 1)
	var pgm, ppm bytes.Buffer
	if err := im.WritePGM(&pgm); err != nil {
		t.Fatal(err)
	}
	if err := im.WritePPM(&ppm); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPNM(&pgm)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != im.W || back.H != im.H {
		t.Fatal("PGM round-trip size mismatch")
	}
	for i := range back.Pix {
		if math.Abs(float64(back.Pix[i]-im.Pix[i])) > 1 { // byte quantisation
			t.Fatalf("pixel %d: %f vs %f", i, back.Pix[i], im.Pix[i])
		}
	}
	backP, err := ReadPNM(&ppm)
	if err != nil {
		t.Fatal(err)
	}
	// Gray PPM converts back to the same gray values (within rounding).
	for i := range backP.Pix {
		if math.Abs(float64(backP.Pix[i]-im.Pix[i])) > 1.5 {
			t.Fatalf("PPM pixel %d: %f vs %f", i, backP.Pix[i], im.Pix[i])
		}
	}
}

func TestReadPNMErrors(t *testing.T) {
	cases := []string{
		"P3\n2 2\n255\n",       // unsupported magic
		"P5\n0 2\n255\n",       // bad geometry
		"P5\n2 2\n70000\n",     // bad maxval
		"P5\n2 2\n255\nX",      // short payload
		"P5\n# comment only\n", // truncated header
	}
	for i, c := range cases {
		if _, err := ReadPNM(bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPNMCommentHandling(t *testing.T) {
	raw := "P5\n# a comment\n2 1\n# another\n255\nAB"
	im, err := ReadPNM(bytes.NewReader([]byte(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 2 || im.H != 1 || im.Pix[0] != float32('A') {
		t.Fatalf("comment parsing broke payload: %+v", im)
	}
}

func TestMoleculePresetsMatchPaperFootprints(t *testing.T) {
	// §4.4.4 reports the gem dataset footprints precisely; our synthetic
	// molecules must land on them.
	want := map[string]float64{"tiny": 31.3, "small": 252, "medium": 7498, "large": 10970.2}
	for _, p := range MoleculePresets() {
		m := GenerateMolecule(p, 1)
		kib := float64(m.FootprintBytes()) / 1024
		if math.Abs(kib-want[p.Size])/want[p.Size] > 0.005 {
			t.Errorf("%s (%s): footprint %.1f KiB, want %.1f", p.Size, p.PDBID, kib, want[p.Size])
		}
	}
}

func TestMoleculeChargeNeutrality(t *testing.T) {
	p, err := MoleculePresetFor("small")
	if err != nil {
		t.Fatal(err)
	}
	m := GenerateMolecule(p, 3)
	sum := 0.0
	for _, q := range m.AtomQ {
		sum += float64(q)
	}
	if math.Abs(sum) > 0.01*float64(m.Atoms()) {
		t.Fatalf("net charge %f not neutralised", sum)
	}
	if m.Atoms() != p.Atoms || m.Vertices() != p.Vertices {
		t.Fatal("preset counts not honoured")
	}
}

func TestMoleculeVerticesOutsideCore(t *testing.T) {
	p, _ := MoleculePresetFor("tiny")
	m := GenerateMolecule(p, 4)
	// Average vertex radius should exceed average atom radius (surface
	// encloses the atom cloud).
	radius := func(x, y, z []float32) float64 {
		s := 0.0
		for i := range x {
			s += math.Sqrt(float64(x[i]*x[i] + y[i]*y[i] + z[i]*z[i]))
		}
		return s / float64(len(x))
	}
	if rv, ra := radius(m.VertX, m.VertY, m.VertZ), radius(m.AtomX, m.AtomY, m.AtomZ); rv <= ra {
		t.Fatalf("surface (r̄=%.1f) inside atom cloud (r̄=%.1f)", rv, ra)
	}
}

func TestMoleculePresetForUnknown(t *testing.T) {
	if _, err := MoleculePresetFor("huge"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}
