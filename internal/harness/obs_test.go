package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"opendwarfs/internal/faults"
	"opendwarfs/internal/obs"
	"opendwarfs/internal/store"
	"opendwarfs/internal/suite"
)

// Satellite: a chaos sweep's obs counters must agree exactly with the
// typed event stream and with the returned grid — cells, store hits and
// misses, retries, failures, quarantines.
func TestObsCountersAgreeWithEventsUnderChaos(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reg := obs.NewRegistry()
	spec := GridSpec{
		Benchmarks: []string{"crc", "fft", "nw"}, Sizes: []string{"tiny"},
		Devices: []string{"i7-6700k", "gtx1080", "k20m"},
		Options: quickOpts(), Workers: 2, Store: st,
		Retry:   RetryPolicy{MaxAttempts: 3},
		Faults:  &faults.Plan{Seed: 42, TransientRate: 0.3, Drop: []string{"k20m"}},
		Metrics: reg,
	}
	events, err := Stream(context.Background(), suite.New(), spec)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[EventKind]int{}
	var g *Grid
	for ev := range events {
		counts[ev.Kind]++
		if ev.Kind == EventGridDone {
			g = ev.Grid
			if ev.Err != nil {
				t.Fatalf("grid_done error: %v", ev.Err)
			}
		}
	}
	if len(g.Quarantined) == 0 || g.Retries == 0 {
		t.Fatalf("scenario not chaotic enough to test anything: %+v", g)
	}

	type check struct {
		metric string
		got    int64
		want   int
	}
	completed := counts[EventCellDone] + counts[EventStoreHit]
	for _, c := range []check{
		{"harness_cells_total", reg.CounterValue("harness_cells_total"), completed},
		{"harness_store_hits_total", reg.CounterValue("harness_store_hits_total"), counts[EventStoreHit]},
		{"harness_store_misses_total", reg.CounterValue("harness_store_misses_total"), counts[EventCellDone]},
		{"harness_retries_total", reg.CounterValue("harness_retries_total"), counts[EventCellRetry]},
		{"harness_failed_cells_total", reg.CounterValue("harness_failed_cells_total"), counts[EventCellFailed]},
		{"harness_quarantines_total", reg.CounterValue("harness_quarantines_total"), counts[EventDeviceQuarantined]},
	} {
		if c.got != int64(c.want) {
			t.Errorf("%s = %d, want %d (event count)", c.metric, c.got, c.want)
		}
	}
	// And the same counters against the grid itself.
	for _, c := range []check{
		{"harness_cells_total", reg.CounterValue("harness_cells_total"), g.Cells()},
		{"harness_store_hits_total", reg.CounterValue("harness_store_hits_total"), g.StoreHits},
		{"harness_store_misses_total", reg.CounterValue("harness_store_misses_total"), g.StoreMisses},
		{"harness_retries_total", reg.CounterValue("harness_retries_total"), g.Retries},
		{"harness_failed_cells_total", reg.CounterValue("harness_failed_cells_total"), len(g.Failed)},
		{"harness_quarantines_total", reg.CounterValue("harness_quarantines_total"), len(g.Quarantined)},
	} {
		if c.got != int64(c.want) {
			t.Errorf("%s = %d, want %d (grid counter)", c.metric, c.got, c.want)
		}
	}
	// The fault injector's own counters: the dropped device injected
	// device_down at least once, the transient rate fired at least once,
	// and every retry the harness saw was caused by an injected fault.
	if reg.CounterValue(obs.Name("faults_injected_total", "kind", "device_down")) == 0 {
		t.Error("faults_injected_total{kind=device_down} = 0 with a dropped device")
	}
	if n := reg.CounterValue(obs.Name("faults_injected_total", "kind", "transient")); n < int64(g.Retries) {
		t.Errorf("faults_injected_total{kind=transient} = %d < retries %d", n, g.Retries)
	}
	// Latency histograms observed one value per completed cell.
	if n := reg.Histogram("harness_cell_ns", nil).Count(); n != int64(completed) {
		t.Errorf("harness_cell_ns count = %d, want %d", n, completed)
	}
	// store_appends_total via Instrument: one append per persisted miss.
	st2, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	st2.Instrument(reg)
	spec2 := spec
	spec2.Store = st2
	g2, err := RunGrid(context.Background(), suite.New(), spec2)
	if err != nil {
		t.Fatal(err)
	}
	if n := reg.CounterValue("store_appends_total"); n != int64(g2.StoreMisses) {
		t.Errorf("store_appends_total = %d, want %d misses", n, g2.StoreMisses)
	}
	if err := st2.Compact(); err != nil {
		t.Fatal(err)
	}
	if n := reg.CounterValue("store_compactions_total"); n != 1 {
		t.Errorf("store_compactions_total = %d, want 1", n)
	}
}

// Acceptance criterion: a cancelled mid-grid sweep produces a well-formed
// trace — every started span closed — and counters equal to the partial
// grid's hit/miss/retry counts.
func TestObsCancelledSweepTraceAndCounters(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	spec := GridSpec{
		Benchmarks: []string{"crc", "fft", "nw", "csr"},
		Sizes:      []string{"tiny", "small"},
		Devices:    []string{"i7-6700k", "gtx1080", "k20m"},
		Options:    quickOpts(), Workers: 2, Store: st,
		Metrics: reg,
		Tracer:  tr,
	}
	const total = 4 * 2 * 3
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events, err := Stream(ctx, suite.New(), spec)
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	var partial *Grid
	var runErr error
	for ev := range events {
		switch ev.Kind {
		case EventCellDone, EventStoreHit:
			completed++
			if completed == 3 {
				cancel()
			}
		case EventGridDone:
			partial, runErr = ev.Grid, ev.Err
		}
	}
	if !errors.Is(runErr, context.Canceled) || partial == nil {
		t.Fatalf("cancelled run: grid=%v err=%v", partial, runErr)
	}
	if partial.Cells() >= total {
		t.Fatalf("run finished before cancellation took effect; cells=%d", partial.Cells())
	}

	// Well-formed trace: nothing left open, and the export is valid JSON
	// containing the run root and one cell span per completed-or-failed
	// cell attempt set.
	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("cancelled run left %d spans open", n)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	names := map[string]int{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name]++
	}
	if names["harness.grid"] != 1 {
		t.Fatalf("trace has %d harness.grid roots, want 1", names["harness.grid"])
	}
	if names["harness.cell"] < partial.Cells() {
		t.Fatalf("trace has %d cell spans, want >= %d completed cells", names["harness.cell"], partial.Cells())
	}

	// Counters equal the partial grid's counts exactly.
	if got := reg.CounterValue("harness_cells_total"); got != int64(partial.Cells()) {
		t.Errorf("harness_cells_total = %d, want %d", got, partial.Cells())
	}
	if got := reg.CounterValue("harness_store_hits_total"); got != int64(partial.StoreHits) {
		t.Errorf("harness_store_hits_total = %d, want %d", got, partial.StoreHits)
	}
	if got := reg.CounterValue("harness_store_misses_total"); got != int64(partial.StoreMisses) {
		t.Errorf("harness_store_misses_total = %d, want %d", got, partial.StoreMisses)
	}
	if got := reg.CounterValue("harness_retries_total"); got != int64(partial.Retries) {
		t.Errorf("harness_retries_total = %d, want %d", got, partial.Retries)
	}
}

// A tracer carried by the context (obs.ContextWithTracer) is picked up
// when the spec has none — the path sessions and schedulers use — and a
// store-hit sweep traces cell spans without prepare/measure children.
func TestObsTracerFromContextAndStoreHits(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	spec := GridSpec{
		Benchmarks: []string{"crc"}, Sizes: []string{"tiny"},
		Devices: []string{"i7-6700k", "gtx1080"},
		Options: quickOpts(), Workers: 1, Store: st,
	}
	tr1 := obs.NewTracer()
	ctx := obs.ContextWithTracer(context.Background(), tr1)
	g, err := RunGrid(ctx, suite.New(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if g.StoreMisses != 2 {
		t.Fatalf("misses = %d, want 2", g.StoreMisses)
	}
	// 1 grid + per cell: cell + prepare + one measure attempt.
	if want := 1 + 2*3; tr1.Spans() != want {
		t.Fatalf("ctx tracer recorded %d spans, want %d", tr1.Spans(), want)
	}
	if tr1.OpenSpans() != 0 {
		t.Fatalf("%d spans left open", tr1.OpenSpans())
	}

	tr2 := obs.NewTracer()
	spec.Tracer = tr2
	g2, err := RunGrid(context.Background(), suite.New(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if g2.StoreHits != 2 {
		t.Fatalf("re-sweep hits = %d, want 2", g2.StoreHits)
	}
	// All hits: 1 grid + one cell span each, no prepare/measure children.
	if want := 1 + 2; tr2.Spans() != want {
		t.Fatalf("store-hit tracer recorded %d spans, want %d", tr2.Spans(), want)
	}
}

// Instrumentation must not perturb results: the same spec with and
// without metrics+tracer produces value-identical measurements.
func TestObsInstrumentationDoesNotChangeResults(t *testing.T) {
	base := GridSpec{
		Benchmarks: []string{"crc", "fft"}, Sizes: []string{"tiny"},
		Devices: []string{"i7-6700k", "gtx1080"},
		Options: quickOpts(), Workers: 2,
	}
	plain, err := RunGrid(context.Background(), suite.New(), base)
	if err != nil {
		t.Fatal(err)
	}
	wired := base
	wired.Metrics = obs.NewRegistry()
	wired.Tracer = obs.NewTracer()
	traced, err := RunGrid(context.Background(), suite.New(), wired)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Measurements) != len(traced.Measurements) {
		t.Fatalf("cell counts differ: %d vs %d", len(plain.Measurements), len(traced.Measurements))
	}
	for i := range plain.Measurements {
		a, b := plain.Measurements[i], traced.Measurements[i]
		if a.Benchmark != b.Benchmark || a.Size != b.Size || a.Device.ID != b.Device.ID ||
			a.Kernel.Median != b.Kernel.Median || a.Energy.Median != b.Energy.Median {
			t.Fatalf("cell %d differs under instrumentation: %+v vs %+v", i, a, b)
		}
	}
}
