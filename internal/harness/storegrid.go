package harness

import (
	"encoding/json"
	"fmt"

	"opendwarfs/internal/sim"
	"opendwarfs/internal/store"
)

// StoreSchemaVersion is the code-schema generation of persisted
// measurements. It participates in every cell fingerprint, so bumping it
// invalidates all previously stored cells at once — do that whenever the
// Measurement encoding or the measurement semantics change incompatibly.
const StoreSchemaVersion = 1

// cellOptions is the subset of Options a measurement actually depends on,
// in fingerprint-stable field order. Seed is keyed separately so the
// fingerprint layout reads (schema, bench, size, seed, device, options).
type cellOptions struct {
	Samples          int
	MinLoopNs        float64
	MaxLoopIters     int
	MaxFunctionalOps float64
	Verify           bool
}

// CellKey fingerprints one benchmark × size × device × options cell. The
// full DeviceSpec is hashed — not just its ID — so editing a catalogue
// entry (clocks, cache sizes, power, …) invalidates exactly that device's
// cells. Identical inputs always map to identical keys, which is what makes
// an unchanged re-sweep a 100% store hit.
func CellKey(bench, size string, spec *sim.DeviceSpec, opt Options) string {
	return store.Fingerprint(
		"opendwarfs/cell", StoreSchemaVersion,
		bench, size, opt.Seed, spec,
		cellOptions{
			Samples:          opt.Samples,
			MinLoopNs:        opt.MinLoopNs,
			MaxLoopIters:     opt.MaxLoopIters,
			MaxFunctionalOps: opt.MaxFunctionalOps,
			Verify:           opt.Verify,
		},
	)
}

// EncodeMeasurement serialises a measurement for the store. Every field of
// Measurement is exported and float64 values round-trip exactly through
// encoding/json's shortest-representation encoder, so a decoded cell is
// value-identical to the measured one — exports built from either are
// byte-identical.
func EncodeMeasurement(m *Measurement) (json.RawMessage, error) {
	raw, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("harness: encode %s/%s/%s: %w", m.Benchmark, m.Size, m.Device.ID, err)
	}
	return raw, nil
}

// DecodeMeasurement deserialises a stored cell.
func DecodeMeasurement(raw json.RawMessage) (*Measurement, error) {
	m := &Measurement{}
	if err := json.Unmarshal(raw, m); err != nil {
		return nil, fmt.Errorf("harness: decode stored measurement: %w", err)
	}
	if m.Device == nil || len(m.KernelNs) == 0 {
		return nil, fmt.Errorf("harness: stored measurement missing device or samples")
	}
	return m, nil
}

// decodeMeasurementSlot adapts DecodeMeasurement to the store's DecodeFunc
// shape — the decoder a Decoded store runs at most once per cell, after
// which every reader shares the one decoded *Measurement. Shared cells are
// immutable by convention: nothing downstream of a store hit writes to a
// Measurement.
func decodeMeasurementSlot(raw json.RawMessage) (any, error) {
	m, err := DecodeMeasurement(raw)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// GridFromStore reconstructs a Grid from every decodable cell of a store,
// in the store's stable (benchmark, size, device) listing order — the read
// path of dwarfserve and of any tool that wants results without
// re-measuring. Any CellStore works; one with the Decoded capability
// (store.Cached) assembles the grid from shared decoded cells without
// re-parsing a single payload, which is what makes a warm reload orders of
// magnitude cheaper than the decode-every-record path. Records written by
// other schema generations are skipped, not errors: they are simply no
// longer addressable.
func GridFromStore(st store.CellStore) (*Grid, error) {
	g := &Grid{}
	decoded, _ := st.(store.Decoded)
	for _, rec := range st.Records() {
		if rec.Schema != StoreSchemaVersion {
			continue
		}
		var m *Measurement
		if decoded != nil {
			v, ok, err := decoded.GetDecoded(rec.Key, decodeMeasurementSlot)
			if err != nil {
				return nil, fmt.Errorf("harness: store cell %s: %w", rec.Key, err)
			}
			if !ok {
				// The record listing raced a concurrent removal; skip.
				continue
			}
			m = v.(*Measurement)
		} else {
			var err error
			if m, err = DecodeMeasurement(rec.Value); err != nil {
				return nil, fmt.Errorf("harness: store cell %s: %w", rec.Key, err)
			}
		}
		g.Measurements = append(g.Measurements, m)
	}
	return g, nil
}
