package harness

// Store-hit read-path benchmarks: how fast a grid assembles from cells that
// are already in the store. The gated pair in ci/BENCH_store.json is
// StoreHitAssembly (slot-cache hits: zero decode, shared cells) against the
// committed RunGridCachedCells measurement baseline in ci/BENCH_grid.json —
// serving one warmed row must be orders of magnitude cheaper than
// re-measuring it. StoreHitAssemblyUncached isolates the slot cache's own
// win by decoding every record's JSONL payload per assembly, the read path
// before the cache existed.
//
//	go test ./internal/harness -run '^$' -bench StoreHit -benchtime 100x
//
// All three benchmarks serve the same 5 cells as RunGridCachedCells (one
// srad × small row across five devices), so the ns/op columns compare
// directly.

import (
	"context"
	"testing"

	"opendwarfs/internal/store"
	"opendwarfs/internal/suite"
)

// benchRowSpec is the srad × small × 5-device row of the measurement
// benchmarks, as a store-backed grid spec.
func benchRowSpec(st store.CellStore) GridSpec {
	opt := DefaultOptions()
	opt.Samples = 8
	return GridSpec{
		Benchmarks: []string{"srad"},
		Sizes:      []string{"small"},
		Devices:    []string{"i7-6700k", "gtx1080", "k20m", "r9-290x", "knl-7210"},
		Options:    opt,
		Workers:    1,
		Store:      st,
	}
}

// warmStore sweeps the benchmark row into a fresh store and returns a
// CellStore over it — cached or not — with every slot already decoded when
// cached (one GridFromStore pass warms the table).
func warmStore(b *testing.B, cached bool) store.CellStore {
	b.Helper()
	base, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	var st store.CellStore = base
	if cached {
		c := store.Cached(base)
		b.Cleanup(func() { c.Close() })
		st = c
	}
	if _, err := RunGrid(context.Background(), suite.New(), benchRowSpec(st)); err != nil {
		b.Fatal(err)
	}
	if _, err := GridFromStore(st); err != nil { // warm the slots
		b.Fatal(err)
	}
	return st
}

// BenchmarkStoreHitAssembly is the gated zero-copy number: assembling the
// row from a warm slot cache — no JSON parsing, cells shared by pointer.
func BenchmarkStoreHitAssembly(b *testing.B) {
	st := warmStore(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := GridFromStore(st)
		if err != nil {
			b.Fatal(err)
		}
		if g.Cells() != 5 {
			b.Fatalf("%d cells, want 5", g.Cells())
		}
	}
}

// BenchmarkStoreHitAssemblyUncached assembles the same row from a plain
// store: every record's payload is decoded per call, the pre-slot-cache
// read path.
func BenchmarkStoreHitAssemblyUncached(b *testing.B) {
	st := warmStore(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := GridFromStore(st)
		if err != nil {
			b.Fatal(err)
		}
		if g.Cells() != 5 {
			b.Fatalf("%d cells, want 5", g.Cells())
		}
	}
}

// BenchmarkStoreHitRunGrid serves the row through the full grid harness —
// worker pool, event accounting, per-cell spans — with every cell a store
// hit. The delta over StoreHitAssembly is the harness's own dispatch cost.
func BenchmarkStoreHitRunGrid(b *testing.B) {
	st := warmStore(b, true)
	reg := suite.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := RunGrid(context.Background(), reg, benchRowSpec(st))
		if err != nil {
			b.Fatal(err)
		}
		if g.StoreHits != 5 {
			b.Fatalf("%d store hits, want 5", g.StoreHits)
		}
	}
}
