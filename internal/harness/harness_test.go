package harness

import (
	"strings"
	"testing"

	"opendwarfs/internal/opencl"
	"opendwarfs/internal/suite"
)

func device(t *testing.T, id string) *opencl.Device {
	t.Helper()
	d, err := opencl.LookupDevice(id)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func quickOpts() Options {
	o := DefaultOptions()
	o.Samples = 10
	return o
}

func TestRunFunctionalVerified(t *testing.T) {
	reg := suite.New()
	b, err := reg.Get("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(b, "tiny", device(t, "i7-6700k"), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Functional || !m.Verified {
		t.Fatalf("tiny kmeans should run functionally and verify: %+v", m)
	}
	if len(m.KernelNs) != 10 {
		t.Fatalf("%d samples, want 10", len(m.KernelNs))
	}
	if m.Kernel.Mean <= 0 || m.Energy.Mean <= 0 {
		t.Fatal("no kernel time or energy recorded")
	}
	if m.Iterations < 2 {
		t.Fatalf("a microsecond kernel must loop many times to cover 2 s, got %d", m.Iterations)
	}
	if m.Counters.Values == nil || m.Counters.IPC <= 0 {
		t.Fatal("counters not derived")
	}
	if m.FootprintBytes <= 0 {
		t.Fatal("footprint not recorded")
	}
}

func TestRunSimulateOnlyAboveBudget(t *testing.T) {
	reg := suite.New()
	b, _ := reg.Get("nqueens")
	opt := quickOpts()
	m, err := Run(b, "tiny", device(t, "gtx1080"), opt) // n=18: huge op count
	if err != nil {
		t.Fatal(err)
	}
	if m.Functional {
		t.Fatal("n=18 nqueens must not execute functionally under the default budget")
	}
	if m.Kernel.Mean <= 0 {
		t.Fatal("simulate-only run must still produce timing")
	}
}

func TestRunEveryBenchmarkTinyFunctional(t *testing.T) {
	// Every dwarf except nqueens (n=18) must run functionally and verify
	// at the tiny size on a CPU device.
	reg := suite.New()
	dev := device(t, "i7-6700k")
	for _, b := range reg.All() {
		if b.Name() == "nqueens" {
			continue
		}
		m, err := Run(b, "tiny", dev, quickOpts())
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if !m.Verified {
			t.Errorf("%s tiny not verified (ops budget too small?)", b.Name())
		}
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	reg := suite.New()
	b, _ := reg.Get("crc")
	if _, err := Run(b, "tiny", device(t, "i7-6700k"), Options{}); err == nil {
		t.Fatal("zero options accepted")
	}
	if _, err := Run(b, "gigantic", device(t, "i7-6700k"), quickOpts()); err == nil {
		t.Fatal("bad size accepted")
	}
}

func TestSamplesVaryButStayPositive(t *testing.T) {
	reg := suite.New()
	b, _ := reg.Get("csr")
	m, err := Run(b, "small", device(t, "k20m"), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	allEqual := true
	for i, v := range m.KernelNs {
		if v <= 0 {
			t.Fatal("non-positive sample")
		}
		if i > 0 && v != m.KernelNs[0] {
			allEqual = false
		}
	}
	if allEqual {
		t.Fatal("noise model produced identical samples")
	}
}

func TestMeasurementDeterministic(t *testing.T) {
	reg := suite.New()
	b, _ := reg.Get("fft")
	a, err := Run(b, "tiny", device(t, "titanx"), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Run(b, "tiny", device(t, "titanx"), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.KernelNs {
		if a.KernelNs[i] != c.KernelNs[i] {
			t.Fatal("same-seed measurements differ — reproducibility broken")
		}
	}
}

func TestRecords(t *testing.T) {
	reg := suite.New()
	b, _ := reg.Get("crc")
	m, err := Run(b, "tiny", device(t, "i7-6700k"), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	recs := m.Records()
	if len(recs) != 2*len(m.KernelNs) {
		t.Fatalf("%d records, want %d", len(recs), 2*len(m.KernelNs))
	}
	if recs[0].Region != "kernel" || recs[1].Region != "transfer" {
		t.Fatal("record regions wrong")
	}
	if recs[0].Counters["PAPI_TOT_INS"] <= 0 {
		t.Fatal("counters missing from records")
	}
}

func TestRunGridSelection(t *testing.T) {
	reg := suite.New()
	var progress strings.Builder
	g, err := RunGrid(reg, GridSpec{
		Benchmarks: []string{"csr", "crc"},
		Sizes:      []string{"tiny", "small"},
		Devices:    []string{"i7-6700k", "gtx1080"},
		Options:    quickOpts(),
		Progress:   &progress,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Measurements) != 2*2*2 {
		t.Fatalf("%d cells, want 8", len(g.Measurements))
	}
	if m := g.Find("csr", "tiny", "gtx1080"); m == nil {
		t.Fatal("Find failed")
	}
	if m := g.Find("nope", "tiny", "gtx1080"); m != nil {
		t.Fatal("Find invented a cell")
	}
	if got := len(g.ByBenchmark("crc")); got != 4 {
		t.Fatalf("ByBenchmark returned %d, want 4", got)
	}
	if !strings.Contains(progress.String(), "csr") {
		t.Fatal("progress not written")
	}
}

func TestRunGridSizeFilterSkipsUnsupported(t *testing.T) {
	// nqueens supports only one size; asking for "large" must skip it
	// rather than fail.
	reg := suite.New()
	g, err := RunGrid(reg, GridSpec{
		Benchmarks: []string{"nqueens"},
		Sizes:      []string{"large"},
		Devices:    []string{"i7-6700k"},
		Options:    quickOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Measurements) != 0 {
		t.Fatal("unsupported size not skipped")
	}
}

func TestRunGridUnknownNames(t *testing.T) {
	reg := suite.New()
	if _, err := RunGrid(reg, GridSpec{Benchmarks: []string{"zzz"}, Options: quickOpts()}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := RunGrid(reg, GridSpec{Devices: []string{"zzz"}, Options: quickOpts()}); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestGridMerge(t *testing.T) {
	reg := suite.New()
	opts := quickOpts()
	a, err := RunGrid(reg, GridSpec{Benchmarks: []string{"crc"}, Sizes: []string{"tiny"}, Devices: []string{"i7-6700k"}, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGrid(reg, GridSpec{Benchmarks: []string{"csr"}, Sizes: []string{"tiny"}, Devices: []string{"i7-6700k"}, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	a.Merge(b)
	if len(a.Measurements) != 2 {
		t.Fatal("merge failed")
	}
}
