package harness

import (
	"context"

	"reflect"
	"strings"
	"sync"
	"testing"

	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
	"opendwarfs/internal/suite"
)

func device(t *testing.T, id string) *opencl.Device {
	t.Helper()
	d, err := opencl.LookupDevice(id)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func quickOpts() Options {
	o := DefaultOptions()
	o.Samples = 10
	return o
}

func TestRunFunctionalVerified(t *testing.T) {
	reg := suite.New()
	b, err := reg.Get("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(context.Background(), b, "tiny", device(t, "i7-6700k"), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Functional || !m.Verified {
		t.Fatalf("tiny kmeans should run functionally and verify: %+v", m)
	}
	if len(m.KernelNs) != 10 {
		t.Fatalf("%d samples, want 10", len(m.KernelNs))
	}
	if m.Kernel.Mean <= 0 || m.Energy.Mean <= 0 {
		t.Fatal("no kernel time or energy recorded")
	}
	if m.Iterations < 2 {
		t.Fatalf("a microsecond kernel must loop many times to cover 2 s, got %d", m.Iterations)
	}
	if m.Counters.Values == nil || m.Counters.IPC <= 0 {
		t.Fatal("counters not derived")
	}
	if m.FootprintBytes <= 0 {
		t.Fatal("footprint not recorded")
	}
}

func TestRunSimulateOnlyAboveBudget(t *testing.T) {
	reg := suite.New()
	b, _ := reg.Get("nqueens")
	opt := quickOpts()
	m, err := Run(context.Background(), b, "tiny", device(t, "gtx1080"), opt) // n=18: huge op count
	if err != nil {
		t.Fatal(err)
	}
	if m.Functional {
		t.Fatal("n=18 nqueens must not execute functionally under the default budget")
	}
	if m.Kernel.Mean <= 0 {
		t.Fatal("simulate-only run must still produce timing")
	}
}

func TestRunEveryBenchmarkTinyFunctional(t *testing.T) {
	// Every dwarf except nqueens (n=18) must run functionally and verify
	// at the tiny size on a CPU device.
	reg := suite.New()
	dev := device(t, "i7-6700k")
	for _, b := range reg.All() {
		if b.Name() == "nqueens" {
			continue
		}
		m, err := Run(context.Background(), b, "tiny", dev, quickOpts())
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if !m.Verified {
			t.Errorf("%s tiny not verified (ops budget too small?)", b.Name())
		}
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	reg := suite.New()
	b, _ := reg.Get("crc")
	if _, err := Run(context.Background(), b, "tiny", device(t, "i7-6700k"), Options{}); err == nil {
		t.Fatal("zero options accepted")
	}
	if _, err := Run(context.Background(), b, "gigantic", device(t, "i7-6700k"), quickOpts()); err == nil {
		t.Fatal("bad size accepted")
	}
}

func TestSamplesVaryButStayPositive(t *testing.T) {
	reg := suite.New()
	b, _ := reg.Get("csr")
	m, err := Run(context.Background(), b, "small", device(t, "k20m"), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	allEqual := true
	for i, v := range m.KernelNs {
		if v <= 0 {
			t.Fatal("non-positive sample")
		}
		if i > 0 && v != m.KernelNs[0] {
			allEqual = false
		}
	}
	if allEqual {
		t.Fatal("noise model produced identical samples")
	}
}

func TestMeasurementDeterministic(t *testing.T) {
	reg := suite.New()
	b, _ := reg.Get("fft")
	a, err := Run(context.Background(), b, "tiny", device(t, "titanx"), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Run(context.Background(), b, "tiny", device(t, "titanx"), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.KernelNs {
		if a.KernelNs[i] != c.KernelNs[i] {
			t.Fatal("same-seed measurements differ — reproducibility broken")
		}
	}
}

func TestRecords(t *testing.T) {
	reg := suite.New()
	b, _ := reg.Get("crc")
	m, err := Run(context.Background(), b, "tiny", device(t, "i7-6700k"), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	recs := m.Records()
	if len(recs) != 2*len(m.KernelNs) {
		t.Fatalf("%d records, want %d", len(recs), 2*len(m.KernelNs))
	}
	if recs[0].Region != "kernel" || recs[1].Region != "transfer" {
		t.Fatal("record regions wrong")
	}
	if recs[0].Counters["PAPI_TOT_INS"] <= 0 {
		t.Fatal("counters missing from records")
	}
}

func TestRunGridSelection(t *testing.T) {
	reg := suite.New()
	var progress strings.Builder
	g, err := RunGrid(context.Background(), reg, GridSpec{
		Benchmarks: []string{"csr", "crc"},
		Sizes:      []string{"tiny", "small"},
		Devices:    []string{"i7-6700k", "gtx1080"},
		Options:    quickOpts(),
		Progress:   &progress,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Measurements) != 2*2*2 {
		t.Fatalf("%d cells, want 8", len(g.Measurements))
	}
	if m := g.Find("csr", "tiny", "gtx1080"); m == nil {
		t.Fatal("Find failed")
	}
	if m := g.Find("nope", "tiny", "gtx1080"); m != nil {
		t.Fatal("Find invented a cell")
	}
	if got := len(g.ByBenchmark("crc")); got != 4 {
		t.Fatalf("ByBenchmark returned %d, want 4", got)
	}
	if !strings.Contains(progress.String(), "csr") {
		t.Fatal("progress not written")
	}
}

func TestRunGridSizeFilterUnsupportedBySelection(t *testing.T) {
	// nqueens supports only "tiny"; with nqueens as the whole selection,
	// asking for "large" can match nothing and must fail naming the valid
	// sizes — not return a silently empty grid. (When other selected
	// benchmarks do support the size, it narrows their rows instead; see
	// TestUnknownSizeAndDeviceFailLoudly.)
	reg := suite.New()
	_, err := RunGrid(context.Background(), reg, GridSpec{
		Benchmarks: []string{"nqueens"},
		Sizes:      []string{"large"},
		Devices:    []string{"i7-6700k"},
		Options:    quickOpts(),
	})
	if err == nil {
		t.Fatal("size unsupported by every selected benchmark accepted silently")
	}
	if !strings.Contains(err.Error(), `"large"`) || !strings.Contains(err.Error(), "tiny") {
		t.Fatalf("error %q does not name the bad size and the valid ones", err)
	}
}

func TestRunGridUnknownNames(t *testing.T) {
	reg := suite.New()
	if _, err := RunGrid(context.Background(), reg, GridSpec{Benchmarks: []string{"zzz"}, Options: quickOpts()}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := RunGrid(context.Background(), reg, GridSpec{Devices: []string{"zzz"}, Options: quickOpts()}); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestPrepareMeasureMatchesRun(t *testing.T) {
	// The split phases composed by hand must reproduce Run exactly, and
	// one Preparation must be reusable across devices.
	reg := suite.New()
	b, _ := reg.Get("kmeans")
	opt := quickOpts()
	p, err := Prepare(context.Background(), b, "tiny", opt)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Verified || p.TotalOps <= 0 || p.KernelLaunches <= 0 {
		t.Fatalf("preparation incomplete: %+v", p)
	}
	for _, id := range []string{"i7-6700k", "gtx1080"} {
		got, err := p.Measure(context.Background(), device(t, id), opt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(context.Background(), b, "tiny", device(t, id), opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: Prepare+Measure differs from Run", id)
		}
	}
}

func TestPrepCacheSharesOnePreparation(t *testing.T) {
	// Concurrent lookups of the same key must run Prepare once and hand
	// every caller the same *Preparation.
	reg := suite.New()
	b, _ := reg.Get("crc")
	c := newPrepCache()
	const callers = 8
	preps := make([]*Preparation, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			p, err := c.prepare(context.Background(), b, "tiny", quickOpts())
			if err != nil {
				t.Error(err)
				return
			}
			preps[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if preps[i] != preps[0] {
			t.Fatal("cache returned distinct preparations for one key")
		}
	}
	if c.len() != 1 {
		t.Fatalf("%d cache entries, want 1", c.len())
	}
}

// gridSpecForWorkers builds a small mixed grid (functional and
// simulate-only rows) for the determinism and race tests.
func gridSpecForWorkers(workers int) GridSpec {
	return GridSpec{
		Benchmarks: []string{"crc", "csr", "fft", "nqueens"},
		Sizes:      []string{"tiny", "small"},
		Devices:    []string{"i7-6700k", "gtx1080", "k20m", "r9-290x"},
		Options:    quickOpts(),
		Workers:    workers,
	}
}

func TestRunGridParallelDeterminism(t *testing.T) {
	// A parallel grid must be cell-for-cell identical to a sequential
	// one: noise is seeded per cell, never by run order.
	reg := suite.New()
	seq, err := RunGrid(context.Background(), reg, gridSpecForWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunGrid(context.Background(), reg, gridSpecForWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Cells() != par.Cells() {
		t.Fatalf("cell counts differ: %d vs %d", seq.Cells(), par.Cells())
	}
	for i, a := range seq.Measurements {
		b := par.Measurements[i]
		if a.Benchmark != b.Benchmark || a.Size != b.Size || a.Device.ID != b.Device.ID {
			t.Fatalf("cell %d: grid order not preserved (%s/%s/%s vs %s/%s/%s)",
				i, a.Benchmark, a.Size, a.Device.ID, b.Benchmark, b.Size, b.Device.ID)
		}
		if a.Kernel.Median != b.Kernel.Median {
			t.Fatalf("cell %d %s/%s/%s: Kernel.Median %v != %v", i, a.Benchmark, a.Size, a.Device.ID, a.Kernel.Median, b.Kernel.Median)
		}
		if !reflect.DeepEqual(a.EnergyJ, b.EnergyJ) {
			t.Fatalf("cell %d %s/%s/%s: EnergyJ samples differ", i, a.Benchmark, a.Size, a.Device.ID)
		}
		if !reflect.DeepEqual(a.Counters, b.Counters) {
			t.Fatalf("cell %d %s/%s/%s: Counters differ", i, a.Benchmark, a.Size, a.Device.ID)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("cell %d %s/%s/%s: measurements differ", i, a.Benchmark, a.Size, a.Device.ID)
		}
	}
}

func TestRunGridWorkersRace(t *testing.T) {
	// Exercises the concurrent path under -race: 8 workers on one small
	// grid, functional rows included, progress writer attached.
	reg := suite.New()
	var progress strings.Builder
	spec := gridSpecForWorkers(8)
	spec.Progress = &progress
	g, err := RunGrid(context.Background(), reg, spec)
	if err != nil {
		t.Fatal(err)
	}
	// 3 benchmarks × 2 sizes × 4 devices + nqueens tiny × 4.
	if want := 3*2*4 + 4; g.Cells() != want {
		t.Fatalf("%d cells, want %d", g.Cells(), want)
	}
	if !strings.Contains(progress.String(), "cell ") {
		t.Fatal("progress lines missing cell counter")
	}
}

func TestRunGridParallelErrorPropagates(t *testing.T) {
	reg := suite.New()
	spec := gridSpecForWorkers(8)
	spec.Options.Samples = 0
	if _, err := RunGrid(context.Background(), reg, spec); err == nil {
		t.Fatal("invalid options accepted by parallel grid")
	}
}

func TestRunGridSharesPreparationAcrossDevices(t *testing.T) {
	// Every device of one row must see the same kernel profile objects —
	// proof the row was prepared once, not 15 times.
	reg := suite.New()
	g, err := RunGrid(context.Background(), reg, GridSpec{
		Benchmarks: []string{"srad"},
		Sizes:      []string{"tiny"},
		Devices:    []string{"i7-6700k", "gtx1080", "k20m"},
		Options:    quickOpts(),
		Workers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	first := g.Measurements[0]
	for _, m := range g.Measurements[1:] {
		if len(m.Profiles) != len(first.Profiles) {
			t.Fatal("profile counts differ across devices")
		}
		for i := range m.Profiles {
			if m.Profiles[i] != first.Profiles[i] {
				t.Fatal("devices hold distinct profile objects — preparation not shared")
			}
		}
	}
}

// panicBench panics during instantiation, standing in for any benchmark
// bug that escapes as a panic rather than an error.
type panicBench struct{}

func (panicBench) Name() string                 { return "panicky" }
func (panicBench) Dwarf() string                { return "Chaos" }
func (panicBench) Sizes() []string              { return []string{"tiny"} }
func (panicBench) ScaleParameter(string) string { return "" }
func (panicBench) ArgString(string) string      { return "" }
func (panicBench) New(string, int64) (dwarfs.Instance, error) {
	panic("boom")
}

func TestRunGridConvertsWorkerPanicsToErrors(t *testing.T) {
	// A panic on a worker goroutine must surface as the cell's error,
	// not abort the process.
	reg, err := dwarfs.NewRegistry(panicBench{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		_, err := RunGrid(context.Background(), reg, GridSpec{
			Devices: []string{"i7-6700k", "gtx1080"},
			Options: quickOpts(),
			Workers: workers,
		})
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("workers=%d: want panic converted to error, got %v", workers, err)
		}
	}
}

func TestDispatchOrderCoversAllCells(t *testing.T) {
	for _, tc := range []struct{ cells, devices, workers int }{
		{24, 4, 1}, {24, 4, 8}, {15, 15, 4}, {7, 1, 4},
	} {
		order := dispatchOrder(tc.cells, tc.devices, tc.workers)
		if len(order) != tc.cells {
			t.Fatalf("%+v: %d entries, want %d", tc, len(order), tc.cells)
		}
		seen := make([]bool, tc.cells)
		for _, i := range order {
			if i < 0 || i >= tc.cells || seen[i] {
				t.Fatalf("%+v: invalid or duplicate index %d", tc, i)
			}
			seen[i] = true
		}
	}
	// Multi-worker order must lead with distinct rows so their prepares
	// overlap: the first len(order)/devices entries are column 0.
	order := dispatchOrder(24, 4, 8)
	for r := 0; r < 6; r++ {
		if order[r] != r*4 {
			t.Fatalf("device-major order broken at %d: %v", r, order[:6])
		}
	}
}

func TestGridCellsAndAllocFreeLookups(t *testing.T) {
	reg := suite.New()
	g, err := RunGrid(context.Background(), reg, GridSpec{
		Benchmarks: []string{"crc"},
		Sizes:      []string{"tiny"},
		Devices:    []string{"i7-6700k", "gtx1080"},
		Options:    quickOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Cells() != 2 {
		t.Fatalf("Cells() = %d, want 2", g.Cells())
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if g.Find("nope", "tiny", "i7-6700k") != nil {
			t.Error("found phantom cell")
		}
		if g.ByBenchmark("nope") != nil {
			t.Error("phantom benchmark measurements")
		}
	}); allocs != 0 {
		t.Fatalf("miss-path lookups allocate %.0f times", allocs)
	}
	if got := len(g.ByBenchmark("crc")); got != 2 {
		t.Fatalf("ByBenchmark returned %d, want 2", got)
	}
}

func TestGridMerge(t *testing.T) {
	reg := suite.New()
	opts := quickOpts()
	a, err := RunGrid(context.Background(), reg, GridSpec{Benchmarks: []string{"crc"}, Sizes: []string{"tiny"}, Devices: []string{"i7-6700k"}, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGrid(context.Background(), reg, GridSpec{Benchmarks: []string{"csr"}, Sizes: []string{"tiny"}, Devices: []string{"i7-6700k"}, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	a.Merge(b)
	if len(a.Measurements) != 2 {
		t.Fatal("merge failed")
	}
}
