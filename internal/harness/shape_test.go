package harness

// Shape tests: assert the paper's qualitative findings (§5, DESIGN.md §4)
// over the full simulated grid. These are the acceptance criteria of the
// reproduction — not absolute numbers, but who wins, by roughly what factor,
// and where the crossovers fall.

import (
	"context"

	"sync"
	"testing"

	"opendwarfs/internal/suite"
)

var (
	gridOnce sync.Once
	fullGrid *Grid
	gridErr  error
)

// shapeGrid runs the full benchmark × size × device grid once, timing model
// only (functional correctness is covered by the per-dwarf tests; shapes
// are a property of the device models).
func shapeGrid(t *testing.T) *Grid {
	t.Helper()
	gridOnce.Do(func() {
		opt := DefaultOptions()
		opt.Samples = 8
		opt.MaxFunctionalOps = 0 // simulate-only: shapes come from the model
		opt.Verify = false
		fullGrid, gridErr = RunGrid(context.Background(), suite.New(), GridSpec{Options: opt})
	})
	if gridErr != nil {
		t.Fatal(gridErr)
	}
	return fullGrid
}

// median returns the median kernel time for a cell, failing if missing.
func median(t *testing.T, g *Grid, bench, size, dev string) float64 {
	t.Helper()
	m := g.Find(bench, size, dev)
	if m == nil {
		t.Fatalf("missing grid cell %s/%s/%s", bench, size, dev)
	}
	return m.Kernel.Median
}

var (
	cpuIDs      = []string{"e5-2697v2", "i7-6700k", "i5-3550"}
	nvidiaIDs   = []string{"titanx", "gtx1080", "gtx1080ti", "k20m", "k40m"}
	amdIDs      = []string{"s9150", "hd7970", "r9-290x", "r9-295x2", "r9-furyx", "rx480"}
	gpuIDs      = append(append([]string{}, nvidiaIDs...), amdIDs...)
	modernGPUs  = []string{"titanx", "gtx1080", "gtx1080ti", "r9-furyx", "rx480"}
	allSizes    = []string{"tiny", "small", "medium", "large"}
	gpuFavoured = []string{"lud", "csr", "fft", "dwt", "srad"}
)

// Figure 1: "Execution times for crc are lowest on CPU-type architectures".
func TestShapeFig1CRCFastestOnCPUs(t *testing.T) {
	g := shapeGrid(t)
	for _, size := range allSizes {
		bestCPU := median(t, g, "crc", size, "i7-6700k")
		for _, cpu := range cpuIDs {
			if v := median(t, g, "crc", size, cpu); v < bestCPU {
				bestCPU = v
			}
		}
		for _, dev := range append(append([]string{}, gpuIDs...), "knl-7210") {
			if v := median(t, g, "crc", size, dev); v <= bestCPU {
				t.Errorf("crc/%s: %s (%.3g ns) not slower than best CPU (%.3g ns)", size, dev, v, bestCPU)
			}
		}
	}
}

// Figure 1 / §5.1: "the performance on the KNL is poor".
func TestShapeKNLPoor(t *testing.T) {
	g := shapeGrid(t)
	for _, bench := range []string{"crc", "srad", "fft"} {
		knl := median(t, g, bench, "large", "knl-7210")
		for _, cpu := range cpuIDs {
			if knl <= median(t, g, bench, "large", cpu) {
				t.Errorf("%s/large: KNL (%.3g) should trail CPU %s", bench, knl, cpu)
			}
		}
	}
}

// §5.1: "a notable exception is k-means for which CPU execution times were
// comparable to GPU".
func TestShapeKmeansCPUComparable(t *testing.T) {
	g := shapeGrid(t)
	cpu := median(t, g, "kmeans", "large", "i7-6700k")
	gpu := median(t, g, "kmeans", "large", "gtx1080")
	if ratio := cpu / gpu; ratio > 4 {
		t.Errorf("kmeans/large CPU/GPU ratio %.1f: paper reports comparable times", ratio)
	}
}

// §5.1: benchmarks other than crc perform best on GPU accelerators.
func TestShapeGPUsWinLargeVectorBenchmarks(t *testing.T) {
	g := shapeGrid(t)
	for _, bench := range gpuFavoured {
		cpuBest := median(t, g, bench, "large", "i7-6700k")
		for _, cpu := range cpuIDs {
			if v := median(t, g, bench, "large", cpu); v < cpuBest {
				cpuBest = v
			}
		}
		gpuBest := median(t, g, bench, "large", "gtx1080")
		for _, dev := range modernGPUs {
			if v := median(t, g, bench, "large", dev); v < gpuBest {
				gpuBest = v
			}
		}
		if gpuBest >= cpuBest {
			t.Errorf("%s/large: best modern GPU (%.3g ns) should beat best CPU (%.3g ns)", bench, gpuBest, cpuBest)
		}
	}
}

// Figure 3a: the CPU–GPU gap widens with problem size for srad
// (bandwidth-limited Structured Grid).
func TestShapeSRADGapWidens(t *testing.T) {
	g := shapeGrid(t)
	gap := func(size string) float64 {
		return median(t, g, "srad", size, "i7-6700k") / median(t, g, "srad", size, "gtx1080")
	}
	if gap("large") <= gap("tiny") {
		t.Errorf("srad CPU/GPU gap should widen: tiny %.2f, large %.2f", gap("tiny"), gap("large"))
	}
}

// Figure 3b: "a widening performance gap over each increase in problem size
// between AMD GPUs and the other devices"; Intel CPUs and Nvidia GPUs stay
// comparable at every size.
func TestShapeNWAMDDegrades(t *testing.T) {
	g := shapeGrid(t)
	gap := func(size string) float64 {
		return median(t, g, "nw", size, "r9-290x") - median(t, g, "nw", size, "gtx1080")
	}
	prev := -1.0
	for _, size := range allSizes {
		d := gap(size)
		if d <= prev {
			t.Errorf("nw AMD-Nvidia gap should widen monotonically: %s gap %.3g ns not above previous %.3g", size, d, prev)
		}
		prev = d
	}
	if rel := median(t, g, "nw", "large", "r9-290x") / median(t, g, "nw", "large", "gtx1080"); rel < 2 {
		t.Errorf("nw/large AMD should clearly trail Nvidia, ratio %.2f", rel)
	}
	cpuVsNvidia := median(t, g, "nw", "large", "i7-6700k") / median(t, g, "nw", "large", "gtx1080")
	if cpuVsNvidia > 3 || cpuVsNvidia < 1.0/3 {
		t.Errorf("nw/large Intel CPU vs Nvidia GPU should be comparable, ratio %.2f", cpuVsNvidia)
	}
}

// §5.1: the i5-3550's smaller L3 (6 MiB) hurts at medium, which was sized
// for the 8 MiB caches of the other CPUs (visible in lud, dwt, fft, srad).
func TestShapeI5DegradesAtMedium(t *testing.T) {
	g := shapeGrid(t)
	hurt := 0
	for _, bench := range []string{"lud", "dwt", "fft", "srad"} {
		i5 := median(t, g, bench, "medium", "i5-3550") / median(t, g, bench, "small", "i5-3550")
		i7 := median(t, g, bench, "medium", "i7-6700k") / median(t, g, bench, "small", "i7-6700k")
		if i5 > i7 {
			hurt++
		}
	}
	if hurt < 3 {
		t.Errorf("i5-3550 should degrade more than i7 from small→medium on most cache-sensitive benchmarks (saw %d/4)", hurt)
	}
}

// §5.1: HPC GPUs beat consumer GPUs of the same generation but lose to
// modern GPUs.
func TestShapeHPCvsConsumerGenerations(t *testing.T) {
	g := shapeGrid(t)
	// K20m (Q4 2012) vs HD 7970 (Q4 2011): same era.
	sameEra := 0
	for _, bench := range gpuFavoured {
		if median(t, g, bench, "large", "k40m") < median(t, g, bench, "large", "hd7970") {
			sameEra++
		}
	}
	if sameEra < 3 {
		t.Errorf("K40m should beat the same-era HD 7970 on most benchmarks (saw %d/%d)", sameEra, len(gpuFavoured))
	}
	// But modern consumer GPUs always beat the HPC parts.
	for _, bench := range gpuFavoured {
		hpcBest := median(t, g, bench, "large", "k20m")
		for _, d := range []string{"k40m", "s9150"} {
			if v := median(t, g, bench, "large", d); v < hpcBest {
				hpcBest = v
			}
		}
		modernBest := median(t, g, bench, "large", "titanx")
		for _, d := range modernGPUs {
			if v := median(t, g, bench, "large", d); v < modernBest {
				modernBest = v
			}
		}
		if modernBest >= hpcBest {
			t.Errorf("%s/large: modern GPUs (%.3g) should beat HPC GPUs (%.3g)", bench, modernBest, hpcBest)
		}
	}
}

// §5.1: "the coefficient of variation ... is much greater for devices with
// a lower clock frequency".
func TestShapeCVTracksClock(t *testing.T) {
	g := shapeGrid(t)
	slow := g.Find("srad", "large", "k20m")     // 706 MHz
	fast := g.Find("srad", "large", "i7-6700k") // 4.3 GHz
	if slow == nil || fast == nil {
		t.Fatal("missing cells")
	}
	if slow.Kernel.CV <= fast.Kernel.CV {
		t.Errorf("low-clock K20m CV %.4f should exceed i7 CV %.4f", slow.Kernel.CV, fast.Kernel.CV)
	}
}

// Figure 5: at large, every benchmark uses more energy on the i7-6700K than
// the GTX 1080 except crc.
func TestShapeFig5Energy(t *testing.T) {
	g := shapeGrid(t)
	for _, bench := range []string{"kmeans", "lud", "csr", "fft", "dwt", "srad"} {
		cpu := g.Find(bench, "large", "i7-6700k")
		gpu := g.Find(bench, "large", "gtx1080")
		if cpu == nil || gpu == nil {
			t.Fatalf("missing energy cells for %s", bench)
		}
		if cpu.Energy.Median <= gpu.Energy.Median {
			t.Errorf("%s/large: CPU energy %.3f J should exceed GPU %.3f J (Fig. 5)", bench, cpu.Energy.Median, gpu.Energy.Median)
		}
	}
	// gem's single verified size in the energy figure.
	cpu := g.Find("gem", "large", "i7-6700k")
	gpu := g.Find("gem", "large", "gtx1080")
	if cpu.Energy.Median <= gpu.Energy.Median {
		t.Errorf("gem/large: CPU energy %.3f J should exceed GPU %.3f J", cpu.Energy.Median, gpu.Energy.Median)
	}
	// The crc exception.
	crcCPU := g.Find("crc", "large", "i7-6700k")
	crcGPU := g.Find("crc", "large", "gtx1080")
	if crcCPU.Energy.Median >= crcGPU.Energy.Median {
		t.Errorf("crc/large: CPU energy %.3f J should be BELOW GPU %.3f J (the Fig. 5 exception)", crcCPU.Energy.Median, crcGPU.Energy.Median)
	}
}

// Modern large-L2 GPUs do relatively better at large sizes (§5.1).
func TestShapeModernGPUsScaleBetter(t *testing.T) {
	g := shapeGrid(t)
	// GTX 1080 (2 MiB L2) vs K20m (1.5 MiB, older): the ratio
	// K20m/GTX1080 should not shrink as size grows for cache-sensitive
	// benchmarks.
	grow := func(bench string) (tiny, large float64) {
		return median(t, g, bench, "tiny", "k20m") / median(t, g, bench, "tiny", "gtx1080"),
			median(t, g, bench, "large", "k20m") / median(t, g, bench, "large", "gtx1080")
	}
	tiny, large := grow("fft")
	if large < tiny*0.8 {
		t.Errorf("fft: old K20m should not catch up at large sizes (tiny ratio %.2f, large %.2f)", tiny, large)
	}
}

// Device class sanity across the whole grid: every measurement carries
// positive, finite statistics.
func TestShapeGridIntegrity(t *testing.T) {
	g := shapeGrid(t)
	// 10 benchmarks × 4 sizes × 15 devices + nqueens × 1 × 15.
	want := 10*4*15 + 15
	if len(g.Measurements) != want {
		t.Fatalf("%d grid cells, want %d", len(g.Measurements), want)
	}
	for _, m := range g.Measurements {
		if m.Kernel.Median <= 0 || m.Energy.Median < 0 {
			t.Fatalf("%s/%s/%s: degenerate stats", m.Benchmark, m.Size, m.Device.ID)
		}
		if m.Kernel.CV <= 0 || m.Kernel.CV > 0.5 {
			t.Fatalf("%s/%s/%s: implausible CV %f", m.Benchmark, m.Size, m.Device.ID, m.Kernel.CV)
		}
	}
}
