package harness

import "time"

// now is the harness's single declared wall-clock seam. Event
// timestamps, Elapsed fields, and the duration histograms are wall-clock
// by design — they describe this host's run, not the simulated fleet —
// and routing every read through one annotated declaration keeps the
// rest of the package mechanically checkable: any other time.Now inside
// harness is a detrand finding.
//
//lint:allow detrand event timestamps and duration metrics are the harness's declared wall-clock seam
var now = time.Now

// since measures wall-clock elapsed time through the now seam.
func since(t time.Time) time.Duration { return now().Sub(t) }
