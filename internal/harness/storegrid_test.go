package harness

import (
	"context"

	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"opendwarfs/internal/opencl"
	"opendwarfs/internal/scibench"
	"opendwarfs/internal/store"
	"opendwarfs/internal/suite"
)

func tinyStoreSpec(st *store.Store) GridSpec {
	opt := DefaultOptions()
	opt.Samples = 6
	spec := GridSpec{
		Benchmarks: []string{"crc", "fft"},
		Sizes:      []string{"tiny"},
		Devices:    []string{"i7-6700k", "gtx1080", "k20m"},
		Options:    opt,
		Workers:    2,
	}
	// Assign only a live store: a typed-nil *store.Store in the interface
	// field would read as "store attached".
	if st != nil {
		spec.Store = st
	}
	return spec
}

func gridCSV(t *testing.T, g *Grid) []byte {
	t.Helper()
	var recs []scibench.Record
	for _, m := range g.Measurements {
		recs = append(recs, m.Records()...)
	}
	var buf bytes.Buffer
	if err := scibench.WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStoreIncrementalResweep is the tentpole invariant: a cold sweep
// populates the store, an unchanged re-sweep is a 100% hit and the two
// grids are value-identical — byte-identical once exported.
func TestStoreIncrementalResweep(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := suite.New()

	cold, err := RunGrid(context.Background(), reg, tinyStoreSpec(st))
	if err != nil {
		t.Fatal(err)
	}
	if cold.StoreHits != 0 || cold.StoreMisses != cold.Cells() {
		t.Fatalf("cold sweep: %d hits / %d misses over %d cells", cold.StoreHits, cold.StoreMisses, cold.Cells())
	}
	if st.Len() != cold.Cells() {
		t.Fatalf("store holds %d cells, want %d", st.Len(), cold.Cells())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Fresh process: reopen the directory and re-sweep.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunGrid(context.Background(), reg, tinyStoreSpec(st2))
	if err != nil {
		t.Fatal(err)
	}
	if warm.StoreMisses != 0 || warm.StoreHits != warm.Cells() {
		t.Fatalf("warm sweep: %d hits / %d misses, want 100%% hits", warm.StoreHits, warm.StoreMisses)
	}
	if warm.HitRate() != 100 {
		t.Fatalf("hit rate %.1f%%, want 100%%", warm.HitRate())
	}
	if !reflect.DeepEqual(cold.Measurements, warm.Measurements) {
		t.Fatal("stored measurements are not value-identical to measured ones")
	}
	if !bytes.Equal(gridCSV(t, cold), gridCSV(t, warm)) {
		t.Fatal("cold and warm CSV exports differ")
	}

	// GridFromStore serves the same cells without any measuring.
	served, err := GridFromStore(st2)
	if err != nil {
		t.Fatal(err)
	}
	if served.Cells() != cold.Cells() {
		t.Fatalf("GridFromStore: %d cells, want %d", served.Cells(), cold.Cells())
	}
	for _, m := range cold.Measurements {
		got := served.Find(m.Benchmark, m.Size, m.Device.ID)
		if got == nil || !reflect.DeepEqual(m, got) {
			t.Fatalf("served cell %s/%s/%s differs from measured", m.Benchmark, m.Size, m.Device.ID)
		}
	}
}

// TestStoreFingerprintInvalidation: any change to seed, sampling options or
// the device spec must produce a different key — the stored cell is missed,
// not wrongly reused.
func TestStoreFingerprintInvalidation(t *testing.T) {
	opt := tinyStoreSpec(nil).Options
	d, err := opencl.LookupDevice("gtx1080")
	if err != nil {
		t.Fatal(err)
	}
	base := CellKey("crc", "tiny", d.Spec, opt)

	if CellKey("crc", "tiny", d.Spec, opt) != base {
		t.Fatal("CellKey not deterministic")
	}

	seedOpt := opt
	seedOpt.Seed++
	samplesOpt := opt
	samplesOpt.Samples++
	budgetOpt := opt
	budgetOpt.MaxFunctionalOps = 0
	verifyOpt := opt
	verifyOpt.Verify = !verifyOpt.Verify
	loopOpt := opt
	loopOpt.MinLoopNs *= 2

	editedSpec := *d.Spec
	editedSpec.MaxClockMHz += 100

	keys := map[string]string{
		"seed":        CellKey("crc", "tiny", d.Spec, seedOpt),
		"samples":     CellKey("crc", "tiny", d.Spec, samplesOpt),
		"budget":      CellKey("crc", "tiny", d.Spec, budgetOpt),
		"verify":      CellKey("crc", "tiny", d.Spec, verifyOpt),
		"minloop":     CellKey("crc", "tiny", d.Spec, loopOpt),
		"device spec": CellKey("crc", "tiny", &editedSpec, opt),
		"benchmark":   CellKey("fft", "tiny", d.Spec, opt),
		"size":        CellKey("crc", "small", d.Spec, opt),
	}
	seen := map[string]string{base: "base"}
	for what, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Errorf("changing %s collides with %s", what, prev)
		}
		seen[k] = what
	}
}

// TestStoreInvalidationEndToEnd runs the miss path through RunGrid: a
// different seed over a populated store must recompute every cell.
func TestStoreInvalidationEndToEnd(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := suite.New()
	spec := tinyStoreSpec(st)
	if _, err := RunGrid(context.Background(), reg, spec); err != nil {
		t.Fatal(err)
	}

	spec.Options.Seed++
	g, err := RunGrid(context.Background(), reg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if g.StoreHits != 0 || g.StoreMisses != g.Cells() {
		t.Fatalf("seed change: %d hits / %d misses, want all misses", g.StoreHits, g.StoreMisses)
	}
	// Both generations now coexist in the store.
	if st.Len() != 2*g.Cells() {
		t.Fatalf("store holds %d cells, want %d", st.Len(), 2*g.Cells())
	}
}

// TestStoreConcurrentWriters drives two overlapping grids into one store
// from concurrent RunGrid calls (each itself multi-worker) under -race,
// then proves the union re-sweep is served entirely from the store.
func TestStoreConcurrentWriters(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := suite.New()

	opt := DefaultOptions()
	opt.Samples = 6
	specA := GridSpec{
		Benchmarks: []string{"crc", "fft"},
		Sizes:      []string{"tiny"},
		Devices:    []string{"i7-6700k", "gtx1080"},
		Options:    opt, Workers: 2, Store: st,
	}
	specB := GridSpec{
		Benchmarks: []string{"fft", "nw"}, // fft/tiny cells overlap with specA
		Sizes:      []string{"tiny"},
		Devices:    []string{"gtx1080", "k20m"},
		Options:    opt, Workers: 2, Store: st,
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	for _, spec := range []GridSpec{specA, specB} {
		wg.Add(1)
		go func(spec GridSpec) {
			defer wg.Done()
			if _, err := RunGrid(context.Background(), reg, spec); err != nil {
				errCh <- err
			}
		}(spec)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Union sweep: every cell of both specs must now hit.
	union := GridSpec{
		Benchmarks: []string{"crc", "fft", "nw"},
		Sizes:      []string{"tiny"},
		Devices:    []string{"i7-6700k", "gtx1080", "k20m"},
		Options:    opt, Workers: 4, Store: st,
	}
	g, err := RunGrid(context.Background(), reg, union)
	if err != nil {
		t.Fatal(err)
	}
	// specA covers crc,fft × i7,gtx; specB covers fft,nw × gtx,k20m. The
	// union adds crc/k20m, nw/i7 and fft/i7,k20m-style corners as misses.
	wantHits := 2*2 + 2*2 - 1 // 8 written minus the shared fft/gtx1080 duplicate
	if g.StoreHits != wantHits {
		t.Fatalf("union sweep: %d hits, want %d", g.StoreHits, wantHits)
	}
	if g.StoreHits+g.StoreMisses != g.Cells() {
		t.Fatalf("hits %d + misses %d != cells %d", g.StoreHits, g.StoreMisses, g.Cells())
	}
}

// TestHitRateMixedResweep pins Grid.StoreHits/StoreMisses/HitRate under a
// partially-warm store: a re-sweep wider than the original must hit
// exactly the old cells, miss exactly the new ones, report the matching
// rate, and agree with the event stream's final counters. Merge must
// accumulate the counters across grids.
func TestHitRateMixedResweep(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := suite.New()
	warm := tinyStoreSpec(st) // crc,fft × tiny × 3 devices = 6 cells
	if _, err := RunGrid(context.Background(), reg, warm); err != nil {
		t.Fatal(err)
	}

	// Widen by one benchmark and one device: 3×tiny×4 = 12 cells, of which
	// the original 6 are warm.
	wide := warm
	wide.Benchmarks = []string{"crc", "fft", "nw"}
	wide.Devices = append(append([]string(nil), warm.Devices...), "titanx")
	events, err := Stream(context.Background(), reg, wide)
	if err != nil {
		t.Fatal(err)
	}
	var g *Grid
	var lastHits, lastMisses int
	for ev := range events {
		switch ev.Kind {
		case EventStoreHit, EventCellDone:
			if ev.Hits < lastHits || ev.Misses < lastMisses {
				t.Fatalf("event counters went backwards: %d/%d after %d/%d", ev.Hits, ev.Misses, lastHits, lastMisses)
			}
			lastHits, lastMisses = ev.Hits, ev.Misses
		case EventGridDone:
			g = ev.Grid
			if ev.Hits != g.StoreHits || ev.Misses != g.StoreMisses {
				t.Fatalf("grid_done counters %d/%d disagree with grid %d/%d", ev.Hits, ev.Misses, g.StoreHits, g.StoreMisses)
			}
		}
	}
	if g.StoreHits != 6 || g.StoreMisses != 6 {
		t.Fatalf("mixed re-sweep: %d hits / %d misses, want 6/6", g.StoreHits, g.StoreMisses)
	}
	if g.StoreHits != lastHits || g.StoreMisses != lastMisses {
		t.Fatalf("final cell event counters %d/%d disagree with grid %d/%d", lastHits, lastMisses, g.StoreHits, g.StoreMisses)
	}
	if got, want := g.HitRate(), 100*6.0/12.0; got != want {
		t.Fatalf("hit rate %.2f%%, want %.2f%%", got, want)
	}

	// A fresh, store-less grid reports a zero rate, not NaN.
	if (&Grid{}).HitRate() != 0 {
		t.Fatal("empty grid HitRate not 0")
	}

	// Merge accumulates the counters (last-wins on cells does not lose the
	// provenance tally).
	cold, err := RunGrid(context.Background(), reg, tinyStoreSpec(nil))
	if err != nil {
		t.Fatal(err)
	}
	merged := &Grid{}
	merged.Merge(g)
	merged.Merge(cold)
	if merged.StoreHits != 6 || merged.StoreMisses != 6 {
		t.Fatalf("merge lost counters: %d/%d", merged.StoreHits, merged.StoreMisses)
	}
	// Re-sweeping the widened spec again is now a 100% hit.
	again, err := RunGrid(context.Background(), reg, wide)
	if err != nil {
		t.Fatal(err)
	}
	if again.HitRate() != 100 || again.StoreMisses != 0 {
		t.Fatalf("second re-sweep: rate %.1f%%, misses %d", again.HitRate(), again.StoreMisses)
	}
}

// TestUnknownSizeAndDeviceFailLoudly: a typo'd -sizes or -devices value
// must name the sorted valid values instead of being silently skipped.
func TestUnknownSizeAndDeviceFailLoudly(t *testing.T) {
	reg := suite.New()
	opt := DefaultOptions()
	opt.Samples = 4

	_, err := RunGrid(context.Background(), reg, GridSpec{
		Benchmarks: []string{"crc"},
		Sizes:      []string{"tinny"},
		Devices:    []string{"i7-6700k"},
		Options:    opt,
	})
	if err == nil {
		t.Fatal("unknown size silently accepted")
	}
	for _, want := range []string{"tinny", "tiny", "small", "medium", "large"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("size error %q does not mention %q", err, want)
		}
	}

	_, err = RunGrid(context.Background(), reg, GridSpec{
		Benchmarks: []string{"crc"},
		Sizes:      []string{"tiny"},
		Devices:    []string{"gtx1081"},
		Options:    opt,
	})
	if err == nil {
		t.Fatal("unknown device silently accepted")
	}
	for _, want := range []string{"gtx1081", "gtx1080", "i7-6700k"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("device error %q does not mention %q", err, want)
		}
	}

	// A size valid for some selected benchmarks but not others still just
	// narrows the rows (nqueens is single-size).
	g, err := RunGrid(context.Background(), reg, GridSpec{
		Benchmarks: []string{"crc", "nqueens"},
		Sizes:      []string{"large"},
		Devices:    []string{"i7-6700k"},
		Options:    opt,
	})
	if err != nil {
		t.Fatalf("partially-supported size rejected: %v", err)
	}
	if g.Cells() != 1 {
		t.Fatalf("%d cells, want crc/large only", g.Cells())
	}
}

// TestConcurrentStoreHitReaders hammers one warm cached store from several
// RunGrid and GridFromStore readers at once — the dwarfserve shape, where a
// job's sweep and query reloads share the slot table. Run under -race this
// is the data-race gate for the zero-copy read path; in any mode it checks
// every reader sees full hits and the literal shared cell pointers.
func TestConcurrentStoreHitReaders(t *testing.T) {
	base, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st := store.Cached(base)
	defer st.Close()
	reg := suite.New()
	spec := tinyStoreSpec(nil)
	spec.Store = st
	cold, err := RunGrid(context.Background(), reg, spec)
	if err != nil {
		t.Fatal(err)
	}

	const readers = 8
	var wg sync.WaitGroup
	grids := make([]*Grid, readers)
	for i := range readers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				g, err := RunGrid(context.Background(), reg, spec)
				if err != nil {
					t.Error(err)
					return
				}
				if g.StoreHits != g.Cells() {
					t.Errorf("reader %d: %d hits over %d cells", i, g.StoreHits, g.Cells())
				}
				grids[i] = g
				return
			}
			g, err := GridFromStore(st)
			if err != nil {
				t.Error(err)
				return
			}
			grids[i] = g
		}(i)
	}
	wg.Wait()

	// Zero-copy across readers: every grid serves the same *Measurement per
	// cell, not equal copies.
	for i, g := range grids {
		if g == nil || g.Cells() != cold.Cells() {
			t.Fatalf("reader %d: incomplete grid", i)
		}
		for _, m := range g.Measurements {
			ref := grids[0].Find(m.Benchmark, m.Size, m.Device.ID)
			if ref != m {
				t.Fatalf("reader %d decoded a private copy of %s/%s/%s", i, m.Benchmark, m.Size, m.Device.ID)
			}
		}
	}
	if s := st.Stats(); s.Hits == 0 {
		t.Fatalf("no slot hits across %d readers: %+v", readers, s)
	}
}
