package harness

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"opendwarfs/internal/store"
	"opendwarfs/internal/suite"
)

// collectEvents drains a stream to completion, returning the per-kind
// event lists and the terminal event.
func collectEvents(t *testing.T, events <-chan Event) (starts, dones, hits []Event, terminal Event) {
	t.Helper()
	sawTerminal := false
	for ev := range events {
		switch ev.Kind {
		case EventCellStart:
			starts = append(starts, ev)
		case EventCellDone:
			dones = append(dones, ev)
		case EventStoreHit:
			hits = append(hits, ev)
		case EventGridDone:
			terminal = ev
			sawTerminal = true
		default:
			t.Fatalf("unknown event kind %q", ev.Kind)
		}
	}
	if !sawTerminal {
		t.Fatal("stream closed without a grid_done event")
	}
	return starts, dones, hits, terminal
}

func TestStreamEventSequence(t *testing.T) {
	reg := suite.New()
	spec := GridSpec{
		Benchmarks: []string{"crc", "fft"},
		Sizes:      []string{"tiny"},
		Devices:    []string{"i7-6700k", "gtx1080"},
		Options:    quickOpts(),
		Workers:    2,
	}
	events, err := Stream(context.Background(), reg, spec)
	if err != nil {
		t.Fatal(err)
	}
	starts, dones, hits, terminal := collectEvents(t, events)

	if len(starts) != 4 || len(dones) != 4 || len(hits) != 0 {
		t.Fatalf("got %d starts / %d dones / %d hits, want 4/4/0", len(starts), len(dones), len(hits))
	}
	seenDone := map[int]bool{}
	for _, ev := range dones {
		if ev.Total != 4 || ev.Done < 1 || ev.Done > 4 || seenDone[ev.Done] {
			t.Fatalf("bad completion counter %d/%d", ev.Done, ev.Total)
		}
		seenDone[ev.Done] = true
		if ev.Measurement == nil || ev.Measurement.Benchmark != ev.Benchmark ||
			ev.Measurement.Size != ev.Size || ev.Measurement.Device.ID != ev.Device {
			t.Fatalf("cell_done measurement missing or mislabelled: %+v", ev)
		}
		if ev.Elapsed <= 0 {
			t.Fatal("cell_done without timing")
		}
	}
	if terminal.Err != nil || terminal.Grid == nil {
		t.Fatalf("grid_done: err %v, grid %v", terminal.Err, terminal.Grid)
	}
	if terminal.Done != 4 || terminal.Total != 4 || terminal.Grid.Cells() != 4 {
		t.Fatalf("grid_done counters %d/%d over %d cells", terminal.Done, terminal.Total, terminal.Grid.Cells())
	}
	if terminal.Elapsed <= 0 || terminal.Grid.Elapsed != terminal.Elapsed {
		t.Fatal("grid_done timing missing or inconsistent with Grid.Elapsed")
	}

	// The streamed grid is the RunGrid grid: same cells, same values.
	direct, err := RunGrid(context.Background(), reg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(terminal.Grid.Measurements, direct.Measurements) {
		t.Fatal("streamed grid differs from RunGrid")
	}
}

func TestStreamStoreHitEvents(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := suite.New()
	spec := tinyStoreSpec(st)
	if _, err := RunGrid(context.Background(), reg, spec); err != nil {
		t.Fatal(err)
	}

	events, err := Stream(context.Background(), reg, spec)
	if err != nil {
		t.Fatal(err)
	}
	starts, dones, hits, terminal := collectEvents(t, events)
	if len(dones) != 0 || len(hits) != len(starts) || len(hits) == 0 {
		t.Fatalf("warm re-stream: %d dones / %d hits / %d starts, want all hits", len(dones), len(hits), len(starts))
	}
	for _, ev := range hits {
		if ev.Measurement == nil {
			t.Fatal("store_hit without measurement")
		}
	}
	if terminal.Hits != len(hits) || terminal.Misses != 0 {
		t.Fatalf("grid_done hit/miss %d/%d, want %d/0", terminal.Hits, terminal.Misses, len(hits))
	}
}

func TestStreamRejectsBadSelectionSynchronously(t *testing.T) {
	if _, err := Stream(context.Background(), suite.New(), GridSpec{
		Benchmarks: []string{"nope"}, Options: quickOpts(),
	}); err == nil {
		t.Fatal("unknown benchmark accepted by Stream")
	}
}

// TestRunGridCancellationPartial is the clean-shutdown contract: cancel
// after k completed cells, and (1) the returned partial grid holds exactly
// the completed cells, (2) the store holds exactly those cells and they
// round-trip through GridFromStore, (3) a re-run of the same spec
// store-hits exactly those cells and measures only the rest, and (4) no
// worker goroutines leak.
func TestRunGridCancellationPartial(t *testing.T) {
	before := runtime.NumGoroutine()

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := suite.New()
	spec := GridSpec{
		Benchmarks: []string{"crc", "fft", "nw", "csr"},
		Sizes:      []string{"tiny", "small"},
		Devices:    []string{"i7-6700k", "gtx1080", "k20m"},
		Options:    quickOpts(),
		Workers:    2,
		Store:      st,
	}
	const total = 4 * 2 * 3

	ctx, cancel := context.WithCancel(context.Background())
	events, err := Stream(ctx, reg, spec)
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	completed := 0
	var partial *Grid
	var runErr error
	for ev := range events {
		switch ev.Kind {
		case EventCellDone, EventStoreHit:
			completed++
			if completed == k {
				cancel()
			}
		case EventGridDone:
			partial, runErr = ev.Grid, ev.Err
		}
	}
	cancel()

	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", runErr)
	}
	if partial == nil {
		t.Fatal("cancelled run returned no grid")
	}
	// In-flight cells may complete between the k-th event and the workers
	// observing cancellation, but the run must not have finished.
	if partial.Cells() < k || partial.Cells() >= total {
		t.Fatalf("partial grid has %d cells, want in [%d, %d)", partial.Cells(), k, total)
	}

	// (1)+(2): the store agrees exactly with the partial grid.
	if st.Len() != partial.Cells() {
		t.Fatalf("store holds %d cells, partial grid %d — they must agree", st.Len(), partial.Cells())
	}
	if partial.StoreMisses != partial.Cells() || partial.StoreHits != 0 {
		t.Fatalf("partial counters: %d hits / %d misses over %d cells", partial.StoreHits, partial.StoreMisses, partial.Cells())
	}
	for _, m := range partial.Measurements {
		key := CellKey(m.Benchmark, m.Size, m.Device, spec.Options)
		if _, ok := st.Get(key); !ok {
			t.Fatalf("completed cell %s/%s/%s missing from store", m.Benchmark, m.Size, m.Device.ID)
		}
	}
	served, err := GridFromStore(st)
	if err != nil {
		t.Fatal(err)
	}
	if served.Cells() != partial.Cells() {
		t.Fatalf("GridFromStore: %d cells, want %d", served.Cells(), partial.Cells())
	}
	for _, m := range partial.Measurements {
		got := served.Find(m.Benchmark, m.Size, m.Device.ID)
		if got == nil || !reflect.DeepEqual(m, got) {
			t.Fatalf("cell %s/%s/%s does not round-trip through the store", m.Benchmark, m.Size, m.Device.ID)
		}
	}

	// (3): the re-run hits exactly the persisted cells.
	resumed, err := RunGrid(context.Background(), reg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Cells() != total {
		t.Fatalf("resumed run measured %d cells, want %d", resumed.Cells(), total)
	}
	if resumed.StoreHits != partial.Cells() || resumed.StoreMisses != total-partial.Cells() {
		t.Fatalf("resumed run: %d hits / %d misses, want %d / %d",
			resumed.StoreHits, resumed.StoreMisses, partial.Cells(), total-partial.Cells())
	}

	// (4): all worker and streamer goroutines are gone.
	//lint:allow detrand test polling deadline, not simulation state
	deadline := time.Now().Add(5 * time.Second)
	//lint:allow detrand test polling deadline, not simulation state
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before, %d after cancellation", before, after)
	}
}

// TestPrepareMeasureHonourCancellation: both phases abort with the
// context's error instead of computing.
func TestPrepareMeasureHonourCancellation(t *testing.T) {
	reg := suite.New()
	b, _ := reg.Get("crc")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Prepare(ctx, b, "tiny", quickOpts()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Prepare under cancelled ctx: %v", err)
	}
	p, err := Prepare(context.Background(), b, "tiny", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Measure(ctx, device(t, "i7-6700k"), quickOpts()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Measure under cancelled ctx: %v", err)
	}
	if _, err := Run(ctx, b, "tiny", device(t, "i7-6700k"), quickOpts()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run under cancelled ctx: %v", err)
	}
}

// TestMergeDedupesByCellCoordinate is the Merge regression test: merging
// overlapping grids must key by cell coordinate with last-wins semantics,
// not blindly append.
func TestMergeDedupesByCellCoordinate(t *testing.T) {
	reg := suite.New()
	opt := quickOpts()
	mk := func(benches []string, devices []string) *Grid {
		g, err := RunGrid(context.Background(), reg, GridSpec{
			Benchmarks: benches, Sizes: []string{"tiny"}, Devices: devices, Options: opt,
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}

	a := mk([]string{"crc", "fft"}, []string{"i7-6700k", "gtx1080"}) // 4 cells
	b := mk([]string{"fft", "nw"}, []string{"gtx1080", "k20m"})      // 4 cells, fft/gtx1080 overlaps

	overlap := b.Find("fft", "tiny", "gtx1080")
	if overlap == nil {
		t.Fatal("missing overlap cell")
	}
	a.Merge(b)
	if got, want := a.Cells(), 7; got != want {
		t.Fatalf("merged grid has %d cells, want %d (overlap must dedupe)", got, want)
	}
	// Last wins: the surviving overlap cell is b's object, in a's slot.
	if a.Find("fft", "tiny", "gtx1080") != overlap {
		t.Fatal("overlap cell is not the later grid's measurement")
	}
	n := 0
	for _, m := range a.Measurements {
		if m.Benchmark == "fft" && m.Size == "tiny" && m.Device.ID == "gtx1080" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d copies of the overlap cell after merge, want 1", n)
	}
	// Order: a's cells keep their positions, b's new cells append in order.
	if a.Measurements[0].Benchmark != "crc" {
		t.Fatal("merge disturbed the receiver's order")
	}
	// Merging the same grid again is idempotent on size.
	a.Merge(b)
	if a.Cells() != 7 {
		t.Fatalf("re-merge grew the grid to %d cells", a.Cells())
	}
}
