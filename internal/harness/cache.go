package harness

import (
	"context"
	"fmt"
	"sync"

	"opendwarfs/internal/dwarfs"
)

// prepKey identifies one device-independent preparation: datasets,
// characterisation traces and verification verdicts depend only on the
// benchmark, its problem size and the generation seed — never on the
// device. Budget- and verification-relevant options are uniform within one
// grid run (GridSpec carries a single Options), so they are deliberately
// not part of the key; the cache is scoped to one RunGrid invocation.
type prepKey struct {
	bench string
	size  string
	seed  int64
}

// prepCache memoises Prepare results so every device of a grid row shares
// one dataset generation, characterisation pass and functional
// verification. Concurrent requests for the same key block on a per-entry
// sync.Once: exactly one goroutine prepares while the rest wait, then all
// share the same *Preparation.
type prepCache struct {
	mu      sync.Mutex
	entries map[prepKey]*prepEntry
}

type prepEntry struct {
	once sync.Once
	prep *Preparation
	err  error
}

func newPrepCache() *prepCache {
	return &prepCache{entries: make(map[prepKey]*prepEntry)}
}

// prepare returns the cached preparation for (bench, size, opt.Seed),
// running Prepare exactly once per key. The first caller's ctx drives the
// preparation; if that ctx is cancelled mid-prepare the entry caches the
// cancellation error, which is fine because the cache is scoped to one
// grid run and cancellation ends the whole run.
func (c *prepCache) prepare(ctx context.Context, bench dwarfs.Benchmark, size string, opt Options) (*Preparation, error) {
	key := prepKey{bench: bench.Name(), size: size, seed: opt.Seed}
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &prepEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		// A panic escaping once.Do would permanently poison the entry
		// with (nil, nil) for concurrent waiters; surface it as the
		// entry's error instead.
		defer func() {
			if r := recover(); r != nil {
				e.prep, e.err = nil, fmt.Errorf("harness: prepare %s/%s panicked: %v", bench.Name(), size, r)
			}
		}()
		e.prep, e.err = Prepare(ctx, bench, size, opt)
	})
	return e.prep, e.err
}

// len reports the number of distinct keys prepared so far.
func (c *prepCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
