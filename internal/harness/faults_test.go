package harness

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"opendwarfs/internal/faults"
	"opendwarfs/internal/sim"
	"opendwarfs/internal/store"
	"opendwarfs/internal/suite"
)

// funcInjector adapts a function to faults.Injector for bespoke scenarios.
type funcInjector func(bench, size, device string, attempt int) faults.Decision

func (f funcInjector) Decide(bench, size, device string, attempt int) faults.Decision {
	return f(bench, size, device, attempt)
}

func TestGridTransientRetrySucceeds(t *testing.T) {
	spec := GridSpec{
		Benchmarks: []string{"crc"}, Sizes: []string{"tiny"},
		Devices: []string{"i7-6700k", "gtx1080"},
		Options: quickOpts(), Workers: 1,
		Retry: RetryPolicy{MaxAttempts: 3},
		Faults: funcInjector(func(bench, size, device string, attempt int) faults.Decision {
			// gtx1080 fails its first attempt only.
			return faults.Decision{Transient: device == "gtx1080" && attempt == 1}
		}),
	}
	events, err := Stream(context.Background(), suite.New(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var retriesSeen []Event
	var g *Grid
	for ev := range events {
		if ev.Kind == EventCellRetry {
			retriesSeen = append(retriesSeen, ev)
		}
		if ev.Kind == EventGridDone {
			g = ev.Grid
			if ev.Err != nil {
				t.Fatalf("grid_done error: %v", ev.Err)
			}
			if ev.Retries != 1 || ev.Failed != 0 {
				t.Fatalf("grid_done counters retries=%d failed=%d, want 1, 0", ev.Retries, ev.Failed)
			}
		}
	}
	if len(retriesSeen) != 1 {
		t.Fatalf("%d cell_retry events, want 1", len(retriesSeen))
	}
	re := retriesSeen[0]
	if re.Device != "gtx1080" || re.Attempt != 1 || re.Reason != "transient fault" {
		t.Fatalf("unexpected retry event: %+v", re)
	}
	if g.Cells() != 2 || len(g.Failed) != 0 || g.Retries != 1 {
		t.Fatalf("grid cells=%d failed=%d retries=%d, want 2, 0, 1", g.Cells(), len(g.Failed), g.Retries)
	}
}

func TestGridExhaustedRetriesFailCellNotRun(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	spec := GridSpec{
		Benchmarks: []string{"crc", "fft"}, Sizes: []string{"tiny"},
		Devices: []string{"i7-6700k"},
		Options: quickOpts(), Workers: 1, Store: st,
		Retry: RetryPolicy{MaxAttempts: 3},
		Faults: funcInjector(func(bench, size, device string, attempt int) faults.Decision {
			return faults.Decision{Transient: bench == "fft"} // never recovers
		}),
	}
	g, err := RunGrid(context.Background(), suite.New(), spec)
	if err != nil {
		t.Fatalf("fault-class failures must not abort the grid: %v", err)
	}
	if g.Cells() != 1 || g.Measurements[0].Benchmark != "crc" {
		t.Fatalf("want exactly the crc cell measured, got %d cells", g.Cells())
	}
	if len(g.Failed) != 1 {
		t.Fatalf("%d failed cells, want 1", len(g.Failed))
	}
	f := g.Failed[0]
	if f.Benchmark != "fft" || f.Attempts != 3 || f.Reason != "transient fault" {
		t.Fatalf("unexpected failure record: %+v", f)
	}
	if g.Retries != 2 {
		t.Fatalf("retries=%d, want 2 (attempts 1 and 2 retried)", g.Retries)
	}
	// Zero failed cells leak into the store: only crc persisted.
	if g.StoreMisses != 1 || st.Len() != 1 {
		t.Fatalf("store misses=%d len=%d, want 1, 1", g.StoreMisses, st.Len())
	}
	sg, err := GridFromStore(st)
	if err != nil {
		t.Fatal(err)
	}
	if sg.Cells() != 1 || sg.Measurements[0].Benchmark != "crc" {
		t.Fatalf("store grid holds %d cells, want the single crc cell", sg.Cells())
	}
}

func TestGridDeviceDropQuarantines(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	plan := &faults.Plan{Seed: 1, Drop: []string{"k20m"}}
	spec := GridSpec{
		Benchmarks: []string{"crc", "fft"}, Sizes: []string{"tiny"},
		Devices: []string{"i7-6700k", "k20m"},
		Options: quickOpts(), Workers: 2, Store: st,
		Retry:  RetryPolicy{MaxAttempts: 4},
		Faults: plan,
	}
	events, err := Stream(context.Background(), suite.New(), spec)
	if err != nil {
		t.Fatal(err)
	}
	quarEvents := 0
	var g *Grid
	for ev := range events {
		switch ev.Kind {
		case EventDeviceQuarantined:
			quarEvents++
			if ev.Device != "k20m" || ev.Reason != "device down" {
				t.Fatalf("unexpected quarantine event: %+v", ev)
			}
		case EventCellRetry:
			t.Fatalf("a dropped device must fail fast, not retry: %+v", ev)
		case EventGridDone:
			g = ev.Grid
		}
	}
	if quarEvents != 1 {
		t.Fatalf("%d device_quarantined events, want exactly 1", quarEvents)
	}
	if !reflect.DeepEqual(g.Quarantined, []string{"k20m"}) {
		t.Fatalf("Quarantined = %v, want [k20m]", g.Quarantined)
	}
	if g.Cells() != 2 || len(g.Failed) != 2 {
		t.Fatalf("cells=%d failed=%d, want 2 measured (i7) + 2 failed (k20m)", g.Cells(), len(g.Failed))
	}
	for _, f := range g.Failed {
		if f.Device != "k20m" || f.Reason != "device down" || f.Attempts != 1 {
			t.Fatalf("unexpected failure record: %+v", f)
		}
	}
	// No k20m cell reached the store.
	for _, rec := range st.Records() {
		if rec.Device == "k20m" {
			t.Fatalf("failed device's cell leaked into the store: %+v", rec)
		}
	}
}

// Acceptance criterion: same fault seed ⇒ identical per-cell retry and
// failure sequences and an identical final grid at any worker count.
func TestChaosDeterminismAcrossWorkers(t *testing.T) {
	plan := &faults.Plan{Seed: 42, TransientRate: 0.3, Drop: []string{"titanx"}, StragglerRate: 0.2, PowerDropoutRate: 0.2}
	collect := func(workers int) (map[string][]string, *Grid) {
		spec := GridSpec{
			Benchmarks: []string{"crc", "fft", "nw"}, Sizes: []string{"tiny"},
			Devices: []string{"i7-6700k", "gtx1080", "titanx"},
			Options: quickOpts(), Workers: workers,
			Retry:  RetryPolicy{MaxAttempts: 4},
			Faults: plan,
		}
		events, err := Stream(context.Background(), suite.New(), spec)
		if err != nil {
			t.Fatal(err)
		}
		perCell := map[string][]string{}
		var g *Grid
		for ev := range events {
			switch ev.Kind {
			case EventGridDone:
				g = ev.Grid
			case EventCellStart:
				// claim order is scheduling-dependent; the attempt
				// sequences below are what must be invariant
			default:
				key := ev.Benchmark + "/" + ev.Size + "/" + ev.Device
				perCell[key] = append(perCell[key], fmt.Sprintf("%s#%d:%s", ev.Kind, ev.Attempt, ev.Reason))
			}
		}
		return perCell, g
	}
	seq1, g1 := collect(1)
	seq4, g4 := collect(4)
	if !reflect.DeepEqual(seq1, seq4) {
		t.Fatalf("per-cell event sequences differ between 1 and 4 workers:\n%v\nvs\n%v", seq1, seq4)
	}
	if !reflect.DeepEqual(g1.Measurements, g4.Measurements) {
		t.Fatalf("measurements differ between worker counts")
	}
	if !reflect.DeepEqual(g1.Failed, g4.Failed) {
		t.Fatalf("failed cells differ: %v vs %v", g1.Failed, g4.Failed)
	}
	if !reflect.DeepEqual(g1.Quarantined, g4.Quarantined) || g1.Retries != g4.Retries {
		t.Fatalf("quarantine/retry counters differ: %v/%d vs %v/%d",
			g1.Quarantined, g1.Retries, g4.Quarantined, g4.Retries)
	}
	if len(g1.Measurements) == 0 {
		t.Fatal("chaos grid measured nothing — scenario too harsh for the test to mean anything")
	}
}

func TestAttemptTimeoutIsRetryable(t *testing.T) {
	spec := GridSpec{
		Benchmarks: []string{"crc"}, Sizes: []string{"tiny"},
		Devices: []string{"i7-6700k"},
		Options: quickOpts(), Workers: 1,
		Retry: RetryPolicy{MaxAttempts: 2, AttemptTimeout: 30 * time.Millisecond},
		Faults: funcInjector(func(bench, size, device string, attempt int) faults.Decision {
			return faults.Decision{Hang: attempt == 1}
		}),
	}
	events, err := Stream(context.Background(), suite.New(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var sawTimeoutRetry bool
	var g *Grid
	for ev := range events {
		if ev.Kind == EventCellRetry && ev.Reason == "attempt timeout" {
			sawTimeoutRetry = true
		}
		if ev.Kind == EventGridDone {
			g, err = ev.Grid, ev.Err
		}
	}
	if err != nil {
		t.Fatalf("grid error: %v", err)
	}
	if !sawTimeoutRetry {
		t.Fatal("no cell_retry with reason \"attempt timeout\"")
	}
	if g.Cells() != 1 || len(g.Failed) != 0 {
		t.Fatalf("cells=%d failed=%d after recovered timeout, want 1, 0", g.Cells(), len(g.Failed))
	}
}

// Parent cancellation during a hung attempt (and during backoff) is a
// cancellation, never a cell failure — errors.Is(err, context.Canceled)
// must hold through the whole retry machinery.
func TestCancellationDuringHangIsCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)
	spec := GridSpec{
		Benchmarks: []string{"crc"}, Sizes: []string{"tiny"},
		Devices: []string{"i7-6700k"},
		Options: quickOpts(), Workers: 1,
		Retry: RetryPolicy{MaxAttempts: 3},
		Faults: funcInjector(func(bench, size, device string, attempt int) faults.Decision {
			return faults.Decision{Hang: true} // no AttemptTimeout: only cancellation unblocks
		}),
	}
	g, err := RunGrid(ctx, suite.New(), spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	if g == nil || len(g.Failed) != 0 || g.Cells() != 0 {
		t.Fatalf("cancelled hung cell must be neither measured nor failed: %+v", g)
	}
}

func TestCancellationDuringBackoffIsCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)
	spec := GridSpec{
		Benchmarks: []string{"crc"}, Sizes: []string{"tiny"},
		Devices: []string{"i7-6700k"},
		Options: quickOpts(), Workers: 1,
		Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Hour},
		Faults: funcInjector(func(bench, size, device string, attempt int) faults.Decision {
			return faults.Decision{Transient: true}
		}),
	}
	//lint:allow detrand test measures real cancellation latency
	start := time.Now()
	_, err := RunGrid(ctx, suite.New(), spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	//lint:allow detrand test measures real cancellation latency
	if time.Since(start) > 10*time.Second {
		t.Fatal("backoff sleep ignored cancellation")
	}
}

func TestStragglerDilatesSamples(t *testing.T) {
	reg := suite.New()
	base := GridSpec{
		Benchmarks: []string{"crc"}, Sizes: []string{"tiny"},
		Devices: []string{"i7-6700k"}, Options: quickOpts(), Workers: 1,
	}
	clean, err := RunGrid(context.Background(), reg, base)
	if err != nil {
		t.Fatal(err)
	}
	slow := base
	slow.Faults = funcInjector(func(bench, size, device string, attempt int) faults.Decision {
		return faults.Decision{SlowFactor: 4}
	})
	g, err := RunGrid(context.Background(), reg, slow)
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * clean.Measurements[0].Kernel.Median
	got := g.Measurements[0].Kernel.Median
	if got != want {
		t.Fatalf("straggler median %g, want exactly 4× clean (%g)", got, want)
	}
}

func TestPowerDropoutZeroesNVMLOnly(t *testing.T) {
	reg := suite.New()
	spec := GridSpec{
		Benchmarks: []string{"crc"}, Sizes: []string{"tiny"},
		Devices: []string{"i7-6700k", "gtx1080"}, // RAPL vs NVML band
		Options: quickOpts(), Workers: 1,
		Faults: funcInjector(func(bench, size, device string, attempt int) faults.Decision {
			return faults.Decision{PowerDropout: true}
		}),
	}
	g, err := RunGrid(context.Background(), reg, spec)
	if err != nil {
		t.Fatal(err)
	}
	cpu := g.Find("crc", "tiny", "i7-6700k")
	gpu := g.Find("crc", "tiny", "gtx1080")
	if cpu.Energy.Median <= 0 {
		t.Fatal("RAPL-metered cell lost its energy to an NVML dropout")
	}
	if gpu.Energy.Median != 0 {
		t.Fatalf("NVML-metered cell kept energy %g through a power dropout", gpu.Energy.Median)
	}
}

// A clean re-run against the same store must hit every cell the chaos run
// measured and measure exactly the cells it failed.
func TestCleanResweepBackfillsFailedCells(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reg := suite.New()
	chaos := GridSpec{
		Benchmarks: []string{"crc", "fft"}, Sizes: []string{"tiny"},
		Devices: []string{"i7-6700k", "gtx1080"},
		Options: quickOpts(), Workers: 1, Store: st,
		Faults: funcInjector(func(bench, size, device string, attempt int) faults.Decision {
			return faults.Decision{Transient: bench == "fft" && device == "gtx1080"}
		}),
	}
	g1, err := RunGrid(context.Background(), reg, chaos)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Cells() != 3 || len(g1.Failed) != 1 {
		t.Fatalf("chaos run: cells=%d failed=%d, want 3, 1", g1.Cells(), len(g1.Failed))
	}
	clean := chaos
	clean.Faults = nil
	g2, err := RunGrid(context.Background(), reg, clean)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Cells() != 4 || len(g2.Failed) != 0 {
		t.Fatalf("clean re-run: cells=%d failed=%d, want 4, 0", g2.Cells(), len(g2.Failed))
	}
	if g2.StoreHits != 3 || g2.StoreMisses != 1 {
		t.Fatalf("clean re-run hits=%d misses=%d, want 3 hits + the backfilled failure", g2.StoreHits, g2.StoreMisses)
	}
}

func TestMergeFailuresAndQuarantine(t *testing.T) {
	m := func(bench, size, dev string) *Measurement {
		return &Measurement{Benchmark: bench, Size: size, Device: &sim.DeviceSpec{ID: dev}}
	}
	a := &Grid{
		Measurements: []*Measurement{m("crc", "tiny", "i7-6700k")},
		Failed: []FailedCell{
			{Benchmark: "fft", Size: "tiny", Device: "gtx1080", Attempts: 3, Reason: "transient fault"},
			{Benchmark: "nw", Size: "tiny", Device: "k20m", Attempts: 1, Reason: "device down"},
		},
		Quarantined: []string{"k20m"},
		Retries:     2,
	}
	b := &Grid{
		// fft/tiny/gtx1080 succeeded on the second run: supersedes a's failure.
		Measurements: []*Measurement{m("fft", "tiny", "gtx1080")},
		Failed: []FailedCell{
			// Same coordinate as a's k20m failure, newer record wins.
			{Benchmark: "nw", Size: "tiny", Device: "k20m", Attempts: 2, Reason: "device down"},
			{Benchmark: "crc", Size: "tiny", Device: "titanx", Attempts: 4, Reason: "transient fault"},
		},
		Quarantined: []string{"titanx", "k20m"},
		Retries:     3,
	}
	a.Merge(b)
	if a.Cells() != 2 {
		t.Fatalf("merged cells = %d, want 2", a.Cells())
	}
	want := []FailedCell{
		{Benchmark: "nw", Size: "tiny", Device: "k20m", Attempts: 2, Reason: "device down"},
		{Benchmark: "crc", Size: "tiny", Device: "titanx", Attempts: 4, Reason: "transient fault"},
	}
	if !reflect.DeepEqual(a.Failed, want) {
		t.Fatalf("merged failures = %v, want %v", a.Failed, want)
	}
	if !reflect.DeepEqual(a.Quarantined, []string{"k20m", "titanx"}) {
		t.Fatalf("merged quarantine = %v, want sorted union", a.Quarantined)
	}
	if a.Retries != 5 {
		t.Fatalf("merged retries = %d, want 5", a.Retries)
	}
}
