package harness

import (
	"fmt"
	"io"

	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
)

// GridSpec selects a slice of the benchmark × size × device space.
type GridSpec struct {
	// Benchmarks by name; empty = the whole suite.
	Benchmarks []string
	// Sizes; empty = every size the benchmark supports.
	Sizes []string
	// Devices by catalogue ID; empty = all 15 platforms.
	Devices []string
	Options Options
	// Progress, when non-nil, receives one line per completed cell.
	Progress io.Writer
}

// Grid is a collection of measurements with lookup helpers — the data
// behind every figure in the paper.
type Grid struct {
	Measurements []*Measurement
}

// RunGrid measures every selected cell.
func RunGrid(reg *dwarfs.Registry, spec GridSpec) (*Grid, error) {
	benches := reg.All()
	if len(spec.Benchmarks) > 0 {
		benches = benches[:0:0]
		for _, name := range spec.Benchmarks {
			b, err := reg.Get(name)
			if err != nil {
				return nil, err
			}
			benches = append(benches, b)
		}
	}
	var devices []*opencl.Device
	if len(spec.Devices) == 0 {
		devices = opencl.AllDevices()
	} else {
		for _, id := range spec.Devices {
			d, err := opencl.LookupDevice(id)
			if err != nil {
				return nil, err
			}
			devices = append(devices, d)
		}
	}

	g := &Grid{}
	for _, b := range benches {
		sizes := b.Sizes()
		if len(spec.Sizes) > 0 {
			sizes = sizes[:0:0]
			for _, s := range spec.Sizes {
				if !supportsSize(b, s) {
					continue
				}
				sizes = append(sizes, s)
			}
		}
		for _, size := range sizes {
			for _, dev := range devices {
				m, err := Run(b, size, dev, spec.Options)
				if err != nil {
					return nil, fmt.Errorf("harness: grid cell %s/%s/%s: %w", b.Name(), size, dev.ID(), err)
				}
				g.Measurements = append(g.Measurements, m)
				if spec.Progress != nil {
					fmt.Fprintf(spec.Progress, "%-8s %-7s %-12s median %12.3f ms  CV %5.3f  energy %8.3f J%s\n",
						m.Benchmark, m.Size, m.Device.ID,
						m.Kernel.Median/1e6, m.Kernel.CV, m.Energy.Median, verifiedTag(m))
				}
			}
		}
	}
	return g, nil
}

func verifiedTag(m *Measurement) string {
	switch {
	case m.Verified:
		return "  [verified]"
	case m.Functional:
		return "  [functional]"
	default:
		return "  [simulated]"
	}
}

func supportsSize(b dwarfs.Benchmark, size string) bool {
	for _, s := range b.Sizes() {
		if s == size {
			return true
		}
	}
	return false
}

// Find returns the measurement for a cell, or nil.
func (g *Grid) Find(bench, size, deviceID string) *Measurement {
	for _, m := range g.Measurements {
		if m.Benchmark == bench && m.Size == size && m.Device.ID == deviceID {
			return m
		}
	}
	return nil
}

// ByBenchmark returns all measurements of one benchmark, grid order.
func (g *Grid) ByBenchmark(bench string) []*Measurement {
	var out []*Measurement
	for _, m := range g.Measurements {
		if m.Benchmark == bench {
			out = append(out, m)
		}
	}
	return out
}

// Merge absorbs another grid's measurements.
func (g *Grid) Merge(o *Grid) {
	g.Measurements = append(g.Measurements, o.Measurements...)
}
