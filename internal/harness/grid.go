package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/faults"
	"opendwarfs/internal/obs"
	"opendwarfs/internal/opencl"
	"opendwarfs/internal/store"
)

// GridSpec selects a slice of the benchmark × size × device space.
type GridSpec struct {
	// Benchmarks by name; empty = the whole suite.
	Benchmarks []string
	// Sizes; empty = every size the benchmark supports.
	Sizes []string
	// Devices by catalogue ID; empty = all 15 platforms.
	Devices []string
	Options Options
	// Workers is the number of goroutines measuring cells concurrently.
	// 0 (the default) uses runtime.GOMAXPROCS(0); 1 runs the grid
	// sequentially in grid order, reproducing the single-threaded
	// behaviour exactly. Results are deterministic and identical at every
	// worker count — cells are pure functions of (benchmark, size,
	// device, seed), never of execution order.
	Workers int
	// Progress, when non-nil, receives one line per completed cell.
	// Writes are serialised; under concurrency lines arrive in completion
	// order, each prefixed with a "cell k/n" counter.
	//
	// Deprecated: consume the typed event stream instead (Stream, or
	// opendwarfs.Session.Stream). Progress remains functional for one
	// release; it is rendered from the same events.
	Progress io.Writer
	// Store, when non-nil, makes the run incremental: each cell's
	// fingerprint (CellKey) is looked up before measuring, hits are decoded
	// instead of recomputed, and misses are measured then persisted. An
	// unchanged grid re-swept against the same store is a 100% hit and
	// produces value-identical measurements, hence byte-identical exports.
	// Any CellStore works — a plain directory store, a Sharded fan-out, or
	// either behind store.Cached, whose Decoded fast path serves hits as
	// shared decoded cells with zero re-parsing. Assign only a live store:
	// a typed-nil pointer in the interface reads as "store attached".
	Store store.CellStore
	// Faults, when non-nil, injects deterministic failures into every
	// measurement attempt (see internal/faults); nil — the default — is
	// the clean simulator. Store hits bypass injection: a cell already
	// persisted is served from disk without re-rolling its fate.
	Faults faults.Injector
	// Retry governs per-cell retry, backoff and attempt timeouts. The
	// zero value makes exactly one attempt per cell with no timeout,
	// reproducing the non-retrying harness exactly.
	Retry RetryPolicy
	// Metrics, when non-nil, receives the run's counters and latency
	// histograms (harness_*, store_decode_ns, faults_injected_total —
	// see DESIGN.md §10). The counters are derived from the same event
	// stream consumers see, so they agree exactly with the returned
	// Grid's hit/miss/retry/failure counts, including on a cancelled
	// partial grid. A registry shared across runs aggregates fleet-wide;
	// dwarfserve hands every job its server registry.
	Metrics *obs.Registry
	// Tracer, when non-nil, records one span per cell with prepare and
	// per-attempt measure children; export with WriteChromeTrace or
	// WriteJSONL after the run. When nil, a tracer carried by the run's
	// context (obs.ContextWithTracer) is used instead, so callers above
	// the GridSpec — schedulers, sessions — can trace without touching
	// the spec. Every span is closed by the time the run returns, even
	// under cancellation.
	Tracer *obs.Tracer
}

// Grid is a collection of measurements with lookup helpers — the data
// behind every figure in the paper.
type Grid struct {
	Measurements []*Measurement
	// StoreHits and StoreMisses count cells served from / measured into
	// GridSpec.Store; both are zero when no store was attached.
	StoreHits, StoreMisses int
	// Failed lists the cells that exhausted their measurement attempts
	// or sat on a dropped device, in grid order. A grid with failed
	// cells is still valid — exactly like a cancelled partial grid, the
	// measured cells all match the store and the failed ones were never
	// persisted.
	Failed []FailedCell
	// Retries counts retried measurement attempts across the run.
	Retries int
	// Quarantined lists the devices that went down during the run,
	// sorted; every planned cell on them appears in Failed.
	Quarantined []string
	// Elapsed is the wall-clock duration of the run that produced this
	// grid (zero for grids assembled by hand or loaded from a store).
	Elapsed time.Duration
}

// FailedCell records one cell the run could not measure: its coordinate,
// how many attempts were made, and the final fault class.
type FailedCell struct {
	Benchmark string `json:"benchmark"`
	Size      string `json:"size"`
	Device    string `json:"device"`
	Attempts  int    `json:"attempts"`
	Reason    string `json:"reason"`
}

// HitRate returns the store hit percentage of the run (0 with no store).
func (g *Grid) HitRate() float64 {
	total := g.StoreHits + g.StoreMisses
	if total == 0 {
		return 0
	}
	return 100 * float64(g.StoreHits) / float64(total)
}

// gridCell is one planned benchmark × size × device measurement.
type gridCell struct {
	bench dwarfs.Benchmark
	size  string
	dev   *opencl.Device
}

// planCells expands a spec into the ordered cell list (grid order:
// benchmark-major, then size, then device).
func planCells(reg *dwarfs.Registry, spec GridSpec) ([]gridCell, int, error) {
	benches := reg.All()
	if len(spec.Benchmarks) > 0 {
		benches = benches[:0:0]
		for _, name := range spec.Benchmarks {
			b, err := reg.Get(name)
			if err != nil {
				return nil, 0, err
			}
			benches = append(benches, b)
		}
	}
	var devices []*opencl.Device
	if len(spec.Devices) == 0 {
		devices = opencl.AllDevices()
	} else {
		for _, id := range spec.Devices {
			d, err := opencl.LookupDevice(id)
			if err != nil {
				// sim.Lookup's message already carries the sorted catalogue.
				return nil, 0, fmt.Errorf("harness: %w", err)
			}
			devices = append(devices, d)
		}
	}

	// A size supported by only some selected benchmarks narrows those
	// benchmarks' rows; a size supported by none is a flag typo and must
	// fail loudly, like an unknown benchmark or device.
	if len(spec.Sizes) > 0 {
		valid := map[string]bool{}
		for _, b := range benches {
			for _, s := range b.Sizes() {
				valid[s] = true
			}
		}
		for _, s := range spec.Sizes {
			if !valid[s] {
				known := make([]string, 0, len(valid))
				for v := range valid {
					known = append(known, v)
				}
				sort.Strings(known)
				return nil, 0, fmt.Errorf("harness: unknown size %q (valid for the selected benchmarks: %v)", s, known)
			}
		}
	}

	var cells []gridCell
	for _, b := range benches {
		sizes := b.Sizes()
		if len(spec.Sizes) > 0 {
			sizes = sizes[:0:0]
			for _, s := range spec.Sizes {
				if !dwarfs.SupportsSize(b, s) {
					continue
				}
				sizes = append(sizes, s)
			}
		}
		for _, size := range sizes {
			for _, dev := range devices {
				cells = append(cells, gridCell{bench: b, size: size, dev: dev})
			}
		}
	}
	return cells, len(devices), nil
}

// dispatchOrder decides which cell each worker pulls next. A single worker
// walks the grid in order. Multiple workers walk it device-major (all rows'
// first device, then all rows' second device, …) so that the first W cells
// touch W different rows and their device-independent preparations run
// concurrently instead of serialising on one row's cache entry.
func dispatchOrder(nCells, nDevices, workers int) []int {
	order := make([]int, 0, nCells)
	if workers <= 1 || nDevices <= 1 {
		for i := 0; i < nCells; i++ {
			order = append(order, i)
		}
		return order
	}
	for d := 0; d < nDevices; d++ {
		for i := d; i < nCells; i += nDevices {
			order = append(order, i)
		}
	}
	return order
}

// RunGrid measures every selected cell, dispatching them across
// spec.Workers goroutines. Each row (benchmark × size) is prepared once —
// dataset, characterisation, functional verification — and shared by all
// of its devices; see Prepare/Measure. Measurements come back in grid
// order regardless of worker count, and a parallel grid is cell-for-cell
// identical to a sequential one.
//
// RunGrid is the synchronous view of the event stream: it drains Stream
// and returns the grid carried by the terminal EventGridDone. When ctx is
// cancelled mid-grid it returns a valid partial grid — exactly the cells
// that completed, in grid order, every one already persisted when a store
// is attached — together with the context's error; re-running the same
// spec afterwards store-hits precisely those cells.
func RunGrid(ctx context.Context, reg *dwarfs.Registry, spec GridSpec) (*Grid, error) {
	events, err := Stream(ctx, reg, spec)
	if err != nil {
		return nil, err
	}
	for ev := range events {
		if ev.Kind == EventGridDone {
			return ev.Grid, ev.Err
		}
	}
	// Unreachable: Stream always terminates with EventGridDone.
	return nil, fmt.Errorf("harness: event stream closed without a grid_done event")
}

// runGrid is the worker-pool core shared by Stream (and through it,
// RunGrid). It emits one CellStart per claimed cell and one CellDone or
// StoreHit per completed cell via emit — which must be non-nil and is
// called from worker goroutines, serialised by an internal mutex — and
// renders the legacy spec.Progress lines from those same events.
func runGrid(ctx context.Context, spec GridSpec, cells []gridCell, nDevices int, emit func(Event)) (*Grid, error) {
	started := now()
	if len(cells) == 0 {
		return &Grid{}, ctx.Err()
	}

	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	// Observability: metric handles are resolved once here (nil registry
	// yields nil metrics whose methods no-op, so the hot path never
	// branches on "is instrumentation on"), the injector is wrapped to
	// count injected faults by kind, and the tracer — from the spec, or
	// carried by ctx for callers above the spec — roots a run-level span
	// that every cell span parents under.
	mo := newGridMetrics(spec.Metrics)
	// The store's Decoded capability is resolved once per run, not per
	// cell: a cached store serves hits as shared decoded cells (zero
	// re-parsing), every other store decodes each hit's payload.
	var decodedStore store.Decoded
	if spec.Store != nil {
		decodedStore, _ = spec.Store.(store.Decoded)
	}
	injector := spec.Faults
	if spec.Metrics != nil {
		injector = faults.Counted(injector, spec.Metrics)
	}
	tracer := spec.Tracer
	if tracer == nil {
		tracer = obs.TracerFrom(ctx)
	}
	if tracer != nil {
		ctx = obs.ContextWithTracer(ctx, tracer)
		var gspan *obs.Span
		ctx, gspan = obs.StartSpan(ctx, "harness.grid",
			obs.Int("cells", len(cells)), obs.Int("workers", workers))
		defer gspan.End()
	}

	var (
		cache   = newPrepCache()
		results = make([]*Measurement, len(cells))
		failed  = make([]*FailedCell, len(cells))
		errs    = make([]error, len(cells))
		order   = dispatchOrder(len(cells), nDevices, workers)
		next    atomic.Int64
		done    atomic.Int64
		hits    atomic.Int64
		misses  atomic.Int64
		retries atomic.Int64
		failedN atomic.Int64
		stopped atomic.Bool
		quarMu  sync.Mutex
		quarSet = map[string]bool{}
		emitMu  sync.Mutex
		wg      sync.WaitGroup
	)

	// send serialises event emission. Completion counters are assigned
	// under the same mutex, so Done (and the hit/miss snapshot) is
	// monotonically non-decreasing in emission order — consumers never
	// see "cell 2/n" before "cell 1/n". Completion events also render
	// the deprecated Progress line so legacy consumers keep working.
	send := func(ev Event) {
		emitMu.Lock()
		defer emitMu.Unlock()
		if ev.Kind == EventCellDone || ev.Kind == EventStoreHit {
			ev.Done = int(done.Add(1))
			ev.Hits, ev.Misses = int(hits.Load()), int(misses.Load())
		}
		// Metrics are derived from the event stream itself — one bump per
		// event, under the same mutex — so the registry's counters agree
		// exactly with what consumers saw and with the returned grid.
		switch ev.Kind {
		case EventCellDone:
			mo.cells.Inc()
			mo.deviceCells(ev.Device)
			if spec.Store != nil {
				mo.misses.Inc()
			}
			mo.cellNs.Observe(float64(ev.Elapsed))
		case EventStoreHit:
			mo.cells.Inc()
			mo.deviceCells(ev.Device)
			mo.hits.Inc()
			mo.cellNs.Observe(float64(ev.Elapsed))
		case EventCellRetry:
			mo.retries.Inc()
		case EventCellFailed:
			mo.failed.Inc()
		case EventDeviceQuarantined:
			mo.quarantines.Inc()
		}
		ev.Retries, ev.Failed = int(retries.Load()), int(failedN.Load())
		if spec.Progress != nil {
			if line := ev.ProgressLine(); line != "" {
				fmt.Fprintln(spec.Progress, line)
			}
		}
		emit(ev)
	}

	// quarantine marks a device down; the first caller per device emits
	// the device_quarantined event. Subsequent cells on the device still
	// roll their own (deterministic) attempt-1 verdict rather than
	// consulting this set, so per-cell event sequences are identical at
	// every worker count — the set exists for the single event and the
	// grid's Quarantined listing, not for control flow.
	quarantine := func(dev string, reason string) {
		quarMu.Lock()
		already := quarSet[dev]
		quarSet[dev] = true
		quarMu.Unlock()
		if already {
			return
		}
		send(Event{Kind: EventDeviceQuarantined, Device: dev, Reason: reason, Total: len(cells), Done: int(done.Load())})
	}

	cellEvent := func(kind EventKind, c gridCell) Event {
		return Event{
			Kind:      kind,
			Benchmark: c.bench.Name(),
			Size:      c.size,
			Device:    c.dev.ID(),
			Done:      int(done.Load()),
			Total:     len(cells),
			Hits:      int(hits.Load()),
			Misses:    int(misses.Load()),
		}
	}

	runCell := func(i int) (err error) {
		c := cells[i]
		cellStart := now()
		// Workers run on their own goroutines, where an escaping panic
		// would abort the process with no chance for the caller to
		// recover; convert it to a cell error instead.
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("harness: grid cell %s/%s/%s panicked: %v", c.bench.Name(), c.size, c.dev.ID(), r)
			}
		}()
		// The cell span parents every phase below; attr construction is
		// gated on the tracer so the untraced path stays allocation-free.
		cctx := ctx
		var cspan *obs.Span
		if tracer != nil {
			cctx, cspan = obs.StartSpan(ctx, "harness.cell",
				obs.String("benchmark", c.bench.Name()),
				obs.String("size", c.size),
				obs.String("device", c.dev.ID()))
		}
		defer cspan.End()
		send(cellEvent(EventCellStart, c))
		var key string
		if spec.Store != nil {
			key = CellKey(c.bench.Name(), c.size, c.dev.Spec, spec.Options)
			var m *Measurement
			decodeStart := now()
			if decodedStore != nil {
				// Zero-copy hit: the slot cache hands back the shared
				// decoded cell; only the first reader of a key in the
				// process ever pays the JSON decode.
				if v, ok, derr := decodedStore.GetDecoded(key, decodeMeasurementSlot); derr == nil && ok {
					m = v.(*Measurement)
				}
			} else if raw, ok := spec.Store.Get(key); ok {
				if mm, derr := DecodeMeasurement(raw); derr == nil {
					m = mm
				}
			}
			// A nil m with the key present means the payload was
			// undecodable under the current code: recompute and overwrite
			// below.
			if m != nil {
				mo.decodeNs.Observe(float64(since(decodeStart)))
				cspan.SetAttr("outcome", "store_hit")
				results[i] = m
				hits.Add(1)
				ev := cellEvent(EventStoreHit, c)
				ev.Elapsed = since(cellStart)
				ev.Measurement = m
				send(ev)
				return nil
			}
		}
		var pspan *obs.Span
		pctx := cctx
		if tracer != nil {
			pctx, pspan = obs.StartSpan(cctx, "harness.prepare")
		}
		prepStart := now()
		p, err := cache.prepare(pctx, c.bench, c.size, spec.Options)
		mo.prepareNs.Observe(float64(since(prepStart)))
		pspan.End()
		if err != nil {
			return fmt.Errorf("harness: grid cell %s/%s/%s: %w", c.bench.Name(), c.size, c.dev.ID(), err)
		}

		// measureOnce runs one attempt: the injector's verdict first,
		// then the model under the per-attempt deadline. Fault decisions
		// are pure functions of (cell, attempt), so the attempt sequence
		// a cell sees is identical at every worker count.
		measureOnce := func(attempt int) (*Measurement, error) {
			mctx := cctx
			var mspan *obs.Span
			if tracer != nil {
				mctx, mspan = obs.StartSpan(cctx, "harness.measure", obs.Int("attempt", attempt))
			}
			defer mspan.End()
			var dec faults.Decision
			if injector != nil {
				dec = injector.Decide(c.bench.Name(), c.size, c.dev.ID(), attempt)
			}
			if dec.Dropped {
				return nil, faults.ErrDeviceDown
			}
			actx, cancel := mctx, func() {}
			if spec.Retry.AttemptTimeout > 0 {
				actx, cancel = context.WithTimeout(mctx, spec.Retry.AttemptTimeout)
			}
			defer cancel()
			if dec.Hang {
				<-actx.Done()
				return nil, actx.Err()
			}
			if dec.Transient {
				return nil, faults.ErrTransient
			}
			measureStart := now()
			m, err := p.Measure(actx, c.dev, spec.Options)
			mo.measureNs.Observe(float64(since(measureStart)))
			if err != nil {
				return nil, err
			}
			applyDecision(m, dec)
			return m, nil
		}

		// failCell records a fault-class failure: the cell stays out of
		// the grid and the store, the run continues.
		failCell := func(attempt int, reason string) {
			cspan.SetAttr("outcome", "failed")
			cspan.SetAttr("reason", reason)
			failed[i] = &FailedCell{
				Benchmark: c.bench.Name(), Size: c.size, Device: c.dev.ID(),
				Attempts: attempt, Reason: reason,
			}
			failedN.Add(1)
			ev := cellEvent(EventCellFailed, c)
			ev.Elapsed = since(cellStart)
			ev.Attempt, ev.Reason = attempt, reason
			send(ev)
		}

		for attempt := 1; ; attempt++ {
			m, aerr := measureOnce(attempt)
			if aerr == nil {
				if spec.Store != nil {
					raw, err := EncodeMeasurement(m)
					if err != nil {
						return err
					}
					if err := spec.Store.Put(store.Record{
						Key: key, Benchmark: m.Benchmark, Size: m.Size, Device: m.Device.ID,
						Schema: StoreSchemaVersion, Value: raw,
					}); err != nil {
						return fmt.Errorf("harness: grid cell %s/%s/%s: %w", c.bench.Name(), c.size, c.dev.ID(), err)
					}
					// A miss only counts once the measurement is persisted:
					// under cancellation, hits + misses must equal exactly the
					// completed cells.
					misses.Add(1)
				}
				cspan.SetAttr("outcome", "measured")
				results[i] = m
				ev := cellEvent(EventCellDone, c)
				ev.Elapsed = since(cellStart)
				ev.Measurement = m
				send(ev)
				return nil
			}
			if ctx.Err() != nil {
				// The run was cancelled: not a cell failure (and not a
				// fault), exactly as before — the cell is simply not
				// part of the partial grid.
				return ctx.Err()
			}
			if errors.Is(aerr, faults.ErrDeviceDown) {
				quarantine(c.dev.ID(), "device down")
				failCell(attempt, "device down")
				return nil
			}
			var reason string
			switch {
			case errors.Is(aerr, faults.ErrTransient):
				reason = "transient fault"
			case errors.Is(aerr, context.DeadlineExceeded):
				// The attempt's own deadline; the parent context was
				// checked live above.
				reason = "attempt timeout"
			default:
				// A genuine harness/model error: abort the grid, as a
				// non-faulted run would.
				return fmt.Errorf("harness: grid cell %s/%s/%s: %w", c.bench.Name(), c.size, c.dev.ID(), aerr)
			}
			if attempt >= spec.Retry.attempts() {
				failCell(attempt, reason)
				return nil
			}
			retries.Add(1)
			rev := cellEvent(EventCellRetry, c)
			rev.Attempt, rev.Reason = attempt, reason
			send(rev)
			if d := spec.Retry.backoff(c.bench.Name(), c.size, c.dev.ID(), attempt+1); d > 0 {
				t := time.NewTimer(d)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return ctx.Err()
				}
			}
		}
	}

	worker := func() {
		defer wg.Done()
		for {
			if stopped.Load() || ctx.Err() != nil {
				return
			}
			n := int(next.Add(1)) - 1
			if n >= len(order) {
				return
			}
			i := order[n]
			if err := runCell(i); err != nil {
				// A cell aborted by cancellation is not a cell failure:
				// the cell is simply not part of the partial grid.
				if ctx.Err() == nil {
					errs[i] = err
				}
				stopped.Store(true)
				return
			}
		}
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()

	// Error selection: the earliest failing cell in grid order among
	// those attempted. With Workers: 1 this is exactly the sequential
	// harness's first error; under concurrency which cells were attempted
	// before the stop flag landed depends on scheduling, so a different
	// (equally genuine) cell's error may surface across runs.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	g := &Grid{
		StoreHits:   int(hits.Load()),
		StoreMisses: int(misses.Load()),
		Retries:     int(retries.Load()),
		Elapsed:     since(started),
	}
	// Failures and quarantines apply to partial (cancelled) grids too:
	// a cell that failed before the cancellation genuinely failed.
	for _, f := range failed {
		if f != nil {
			g.Failed = append(g.Failed, *f)
		}
	}
	for dev := range quarSet {
		g.Quarantined = append(g.Quarantined, dev)
	}
	sort.Strings(g.Quarantined)
	// Exactly the completed cells, grid order — partial under
	// cancellation, missing only the failed cells otherwise. Every
	// measurement was persisted before its CellDone event fired, so the
	// store and the returned grid agree.
	g.Measurements = make([]*Measurement, 0, done.Load())
	for _, m := range results {
		if m != nil {
			g.Measurements = append(g.Measurements, m)
		}
	}
	return g, ctx.Err()
}

// Cells returns the number of measured cells.
func (g *Grid) Cells() int { return len(g.Measurements) }

// Find returns the measurement for a cell, or nil. The miss path is
// allocation-free.
func (g *Grid) Find(bench, size, deviceID string) *Measurement {
	for _, m := range g.Measurements {
		if m.Benchmark == bench && m.Size == size && m.Device.ID == deviceID {
			return m
		}
	}
	return nil
}

// ByBenchmark returns all measurements of one benchmark, grid order. The
// miss path is allocation-free, and hits allocate exactly once.
func (g *Grid) ByBenchmark(bench string) []*Measurement {
	n := 0
	for _, m := range g.Measurements {
		if m.Benchmark == bench {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]*Measurement, 0, n)
	for _, m := range g.Measurements {
		if m.Benchmark == bench {
			out = append(out, m)
		}
	}
	return out
}

// Merge absorbs another grid's measurements, keyed by cell coordinate
// (benchmark × size × device): a cell present in both grids is replaced by
// o's copy (last wins, in place, preserving g's order), new cells are
// appended in o's order. Store hit/miss and retry counters accumulate;
// quarantined-device sets union. Failures merge by the same coordinate
// rule (o's record wins) except that a measurement always supersedes a
// failure — a cell measured by either grid is not failed in the merge,
// whichever run failed it first. Merging grids measured under different
// options is the caller's responsibility — the coordinate cannot
// distinguish them.
func (g *Grid) Merge(o *Grid) {
	idx := make(map[string]int, len(g.Measurements))
	for i, m := range g.Measurements {
		idx[mergeKey(m)] = i
	}
	for _, m := range o.Measurements {
		if i, ok := idx[mergeKey(m)]; ok {
			g.Measurements[i] = m
			continue
		}
		idx[mergeKey(m)] = len(g.Measurements)
		g.Measurements = append(g.Measurements, m)
	}
	g.StoreHits += o.StoreHits
	g.StoreMisses += o.StoreMisses
	g.Retries += o.Retries

	if len(g.Failed) > 0 || len(o.Failed) > 0 {
		fidx := make(map[string]int)
		merged := make([]FailedCell, 0, len(g.Failed)+len(o.Failed))
		for _, f := range g.Failed {
			key := f.Benchmark + "\x00" + f.Size + "\x00" + f.Device
			if _, measured := idx[key]; measured {
				continue
			}
			fidx[key] = len(merged)
			merged = append(merged, f)
		}
		for _, f := range o.Failed {
			key := f.Benchmark + "\x00" + f.Size + "\x00" + f.Device
			if _, measured := idx[key]; measured {
				continue
			}
			if i, ok := fidx[key]; ok {
				merged[i] = f
				continue
			}
			fidx[key] = len(merged)
			merged = append(merged, f)
		}
		g.Failed = merged
	}
	if len(o.Quarantined) > 0 {
		seen := make(map[string]bool, len(g.Quarantined)+len(o.Quarantined))
		for _, d := range g.Quarantined {
			seen[d] = true
		}
		for _, d := range o.Quarantined {
			if !seen[d] {
				seen[d] = true
				g.Quarantined = append(g.Quarantined, d)
			}
		}
		sort.Strings(g.Quarantined)
	}
}

func mergeKey(m *Measurement) string {
	return m.Benchmark + "\x00" + m.Size + "\x00" + m.Device.ID
}
