package harness

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
	"opendwarfs/internal/store"
)

// GridSpec selects a slice of the benchmark × size × device space.
type GridSpec struct {
	// Benchmarks by name; empty = the whole suite.
	Benchmarks []string
	// Sizes; empty = every size the benchmark supports.
	Sizes []string
	// Devices by catalogue ID; empty = all 15 platforms.
	Devices []string
	Options Options
	// Workers is the number of goroutines measuring cells concurrently.
	// 0 (the default) uses runtime.GOMAXPROCS(0); 1 runs the grid
	// sequentially in grid order, reproducing the single-threaded
	// behaviour exactly. Results are deterministic and identical at every
	// worker count — cells are pure functions of (benchmark, size,
	// device, seed), never of execution order.
	Workers int
	// Progress, when non-nil, receives one line per completed cell.
	// Writes are serialised; under concurrency lines arrive in completion
	// order, each prefixed with a "cell k/n" counter.
	Progress io.Writer
	// Store, when non-nil, makes the run incremental: each cell's
	// fingerprint (CellKey) is looked up before measuring, hits are decoded
	// instead of recomputed, and misses are measured then persisted. An
	// unchanged grid re-swept against the same store is a 100% hit and
	// produces value-identical measurements, hence byte-identical exports.
	Store *store.Store
}

// Grid is a collection of measurements with lookup helpers — the data
// behind every figure in the paper.
type Grid struct {
	Measurements []*Measurement
	// StoreHits and StoreMisses count cells served from / measured into
	// GridSpec.Store; both are zero when no store was attached.
	StoreHits, StoreMisses int
}

// HitRate returns the store hit percentage of the run (0 with no store).
func (g *Grid) HitRate() float64 {
	total := g.StoreHits + g.StoreMisses
	if total == 0 {
		return 0
	}
	return 100 * float64(g.StoreHits) / float64(total)
}

// gridCell is one planned benchmark × size × device measurement.
type gridCell struct {
	bench dwarfs.Benchmark
	size  string
	dev   *opencl.Device
}

// planCells expands a spec into the ordered cell list (grid order:
// benchmark-major, then size, then device).
func planCells(reg *dwarfs.Registry, spec GridSpec) ([]gridCell, int, error) {
	benches := reg.All()
	if len(spec.Benchmarks) > 0 {
		benches = benches[:0:0]
		for _, name := range spec.Benchmarks {
			b, err := reg.Get(name)
			if err != nil {
				return nil, 0, err
			}
			benches = append(benches, b)
		}
	}
	var devices []*opencl.Device
	if len(spec.Devices) == 0 {
		devices = opencl.AllDevices()
	} else {
		for _, id := range spec.Devices {
			d, err := opencl.LookupDevice(id)
			if err != nil {
				// sim.Lookup's message already carries the sorted catalogue.
				return nil, 0, fmt.Errorf("harness: %w", err)
			}
			devices = append(devices, d)
		}
	}

	// A size supported by only some selected benchmarks narrows those
	// benchmarks' rows; a size supported by none is a flag typo and must
	// fail loudly, like an unknown benchmark or device.
	if len(spec.Sizes) > 0 {
		valid := map[string]bool{}
		for _, b := range benches {
			for _, s := range b.Sizes() {
				valid[s] = true
			}
		}
		for _, s := range spec.Sizes {
			if !valid[s] {
				known := make([]string, 0, len(valid))
				for v := range valid {
					known = append(known, v)
				}
				sort.Strings(known)
				return nil, 0, fmt.Errorf("harness: unknown size %q (valid for the selected benchmarks: %v)", s, known)
			}
		}
	}

	var cells []gridCell
	for _, b := range benches {
		sizes := b.Sizes()
		if len(spec.Sizes) > 0 {
			sizes = sizes[:0:0]
			for _, s := range spec.Sizes {
				if !dwarfs.SupportsSize(b, s) {
					continue
				}
				sizes = append(sizes, s)
			}
		}
		for _, size := range sizes {
			for _, dev := range devices {
				cells = append(cells, gridCell{bench: b, size: size, dev: dev})
			}
		}
	}
	return cells, len(devices), nil
}

// dispatchOrder decides which cell each worker pulls next. A single worker
// walks the grid in order. Multiple workers walk it device-major (all rows'
// first device, then all rows' second device, …) so that the first W cells
// touch W different rows and their device-independent preparations run
// concurrently instead of serialising on one row's cache entry.
func dispatchOrder(nCells, nDevices, workers int) []int {
	order := make([]int, 0, nCells)
	if workers <= 1 || nDevices <= 1 {
		for i := 0; i < nCells; i++ {
			order = append(order, i)
		}
		return order
	}
	for d := 0; d < nDevices; d++ {
		for i := d; i < nCells; i += nDevices {
			order = append(order, i)
		}
	}
	return order
}

// RunGrid measures every selected cell, dispatching them across
// spec.Workers goroutines. Each row (benchmark × size) is prepared once —
// dataset, characterisation, functional verification — and shared by all
// of its devices; see Prepare/Measure. Measurements come back in grid
// order regardless of worker count, and a parallel grid is cell-for-cell
// identical to a sequential one.
func RunGrid(reg *dwarfs.Registry, spec GridSpec) (*Grid, error) {
	cells, nDevices, err := planCells(reg, spec)
	if err != nil {
		return nil, err
	}
	if len(cells) == 0 {
		return &Grid{}, nil
	}

	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	var (
		cache    = newPrepCache()
		results  = make([]*Measurement, len(cells))
		errs     = make([]error, len(cells))
		order    = dispatchOrder(len(cells), nDevices, workers)
		next     atomic.Int64
		done     atomic.Int64
		hits     atomic.Int64
		misses   atomic.Int64
		stopped  atomic.Bool
		progress sync.Mutex
		wg       sync.WaitGroup
	)

	report := func(m *Measurement, cached bool) {
		if spec.Progress == nil {
			return
		}
		src := ""
		if cached {
			src = "  [store]"
		}
		progress.Lock()
		fmt.Fprintf(spec.Progress, "cell %d/%d  %-8s %-7s %-12s median %12.3f ms  CV %5.3f  energy %8.3f J%s%s\n",
			done.Add(1), len(cells),
			m.Benchmark, m.Size, m.Device.ID,
			m.Kernel.Median/1e6, m.Kernel.CV, m.Energy.Median, verifiedTag(m), src)
		progress.Unlock()
	}

	runCell := func(i int) (err error) {
		c := cells[i]
		// Workers run on their own goroutines, where an escaping panic
		// would abort the process with no chance for the caller to
		// recover; convert it to a cell error instead.
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("harness: grid cell %s/%s/%s panicked: %v", c.bench.Name(), c.size, c.dev.ID(), r)
			}
		}()
		var key string
		if spec.Store != nil {
			key = CellKey(c.bench.Name(), c.size, c.dev.Spec, spec.Options)
			if raw, ok := spec.Store.Get(key); ok {
				if m, derr := DecodeMeasurement(raw); derr == nil {
					results[i] = m
					hits.Add(1)
					report(m, true)
					return nil
				}
				// Undecodable under the current code: recompute and
				// overwrite below.
			}
			misses.Add(1)
		}
		p, err := cache.prepare(c.bench, c.size, spec.Options)
		if err != nil {
			return fmt.Errorf("harness: grid cell %s/%s/%s: %w", c.bench.Name(), c.size, c.dev.ID(), err)
		}
		m, err := p.Measure(c.dev, spec.Options)
		if err != nil {
			return fmt.Errorf("harness: grid cell %s/%s/%s: %w", c.bench.Name(), c.size, c.dev.ID(), err)
		}
		if spec.Store != nil {
			raw, err := EncodeMeasurement(m)
			if err != nil {
				return err
			}
			if err := spec.Store.Put(store.Record{
				Key: key, Benchmark: m.Benchmark, Size: m.Size, Device: m.Device.ID,
				Schema: StoreSchemaVersion, Value: raw,
			}); err != nil {
				return fmt.Errorf("harness: grid cell %s/%s/%s: %w", c.bench.Name(), c.size, c.dev.ID(), err)
			}
		}
		results[i] = m
		report(m, false)
		return nil
	}

	worker := func() {
		defer wg.Done()
		for {
			if stopped.Load() {
				return
			}
			n := int(next.Add(1)) - 1
			if n >= len(order) {
				return
			}
			i := order[n]
			if err := runCell(i); err != nil {
				errs[i] = err
				stopped.Store(true)
				return
			}
		}
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()

	// Error selection: the earliest failing cell in grid order among
	// those attempted. With Workers: 1 this is exactly the sequential
	// harness's first error; under concurrency which cells were attempted
	// before the stop flag landed depends on scheduling, so a different
	// (equally genuine) cell's error may surface across runs.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Grid{
		Measurements: results,
		StoreHits:    int(hits.Load()),
		StoreMisses:  int(misses.Load()),
	}, nil
}

func verifiedTag(m *Measurement) string {
	switch {
	case m.Verified:
		return "  [verified]"
	case m.Functional:
		return "  [functional]"
	default:
		return "  [simulated]"
	}
}

// Cells returns the number of measured cells.
func (g *Grid) Cells() int { return len(g.Measurements) }

// Find returns the measurement for a cell, or nil. The miss path is
// allocation-free.
func (g *Grid) Find(bench, size, deviceID string) *Measurement {
	for _, m := range g.Measurements {
		if m.Benchmark == bench && m.Size == size && m.Device.ID == deviceID {
			return m
		}
	}
	return nil
}

// ByBenchmark returns all measurements of one benchmark, grid order. The
// miss path is allocation-free, and hits allocate exactly once.
func (g *Grid) ByBenchmark(bench string) []*Measurement {
	n := 0
	for _, m := range g.Measurements {
		if m.Benchmark == bench {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]*Measurement, 0, n)
	for _, m := range g.Measurements {
		if m.Benchmark == bench {
			out = append(out, m)
		}
	}
	return out
}

// Merge absorbs another grid's measurements.
func (g *Grid) Merge(o *Grid) {
	g.Measurements = append(g.Measurements, o.Measurements...)
}
