package harness

import "opendwarfs/internal/obs"

// gridMetrics caches one run's metric handles so the hot path never
// resolves names. Built from a nil registry every field is a nil metric
// whose methods no-op — instrumentation call sites stay unconditional.
type gridMetrics struct {
	// Counters mirror the event stream one-for-one (bumped in send,
	// under the emit mutex): cells = cell_done + store_hit events,
	// hits/misses = the store counters, retries/failed/quarantines =
	// their fault events. They therefore agree exactly with the run's
	// Grid — StoreHits, StoreMisses, Retries, len(Failed),
	// len(Quarantined) — partial grids included.
	cells       *obs.Counter // harness_cells_total
	hits        *obs.Counter // harness_store_hits_total
	misses      *obs.Counter // harness_store_misses_total
	retries     *obs.Counter // harness_retries_total
	failed      *obs.Counter // harness_failed_cells_total
	quarantines *obs.Counter // harness_quarantines_total

	cellNs    *obs.Histogram // harness_cell_ns: wall-clock per completed cell
	prepareNs *obs.Histogram // harness_prepare_ns: Prepare incl. cache hits
	measureNs *obs.Histogram // harness_measure_ns: one Measure attempt
	decodeNs  *obs.Histogram // store_decode_ns: store-hit decode
}

func newGridMetrics(r *obs.Registry) gridMetrics {
	return gridMetrics{
		cells:       r.Counter("harness_cells_total"),
		hits:        r.Counter("harness_store_hits_total"),
		misses:      r.Counter("harness_store_misses_total"),
		retries:     r.Counter("harness_retries_total"),
		failed:      r.Counter("harness_failed_cells_total"),
		quarantines: r.Counter("harness_quarantines_total"),
		cellNs:      r.Histogram("harness_cell_ns", nil),
		prepareNs:   r.Histogram("harness_prepare_ns", nil),
		measureNs:   r.Histogram("harness_measure_ns", nil),
		decodeNs:    r.Histogram("store_decode_ns", nil),
	}
}
