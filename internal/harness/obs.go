package harness

import "opendwarfs/internal/obs"

// Metric names registered by the harness, one const per series
// (obsnames-checked: a typo here is one declaration away, not one call
// site away).
const (
	mCellsTotal       = "harness_cells_total"
	mStoreHitsTotal   = "harness_store_hits_total"
	mStoreMissesTotal = "harness_store_misses_total"
	mRetriesTotal     = "harness_retries_total"
	mFailedCellsTotal = "harness_failed_cells_total"
	mQuarantinesTotal = "harness_quarantines_total"
	mDeviceCellsTotal = "harness_device_cells_total"
	lblDevice         = "device"
	mCellNs           = "harness_cell_ns"
	mPrepareNs        = "harness_prepare_ns"
	mMeasureNs        = "harness_measure_ns"
	mStoreDecodeNs    = "store_decode_ns"
)

// gridMetrics caches one run's metric handles so the hot path never
// resolves names. Built from a nil registry every field is a nil metric
// whose methods no-op — instrumentation call sites stay unconditional.
type gridMetrics struct {
	// Counters mirror the event stream one-for-one (bumped in send,
	// under the emit mutex): cells = cell_done + store_hit events,
	// hits/misses = the store counters, retries/failed/quarantines =
	// their fault events. They therefore agree exactly with the run's
	// Grid — StoreHits, StoreMisses, Retries, len(Failed),
	// len(Quarantined) — partial grids included.
	cells       *obs.Counter // harness_cells_total
	hits        *obs.Counter // harness_store_hits_total
	misses      *obs.Counter // harness_store_misses_total
	retries     *obs.Counter // harness_retries_total
	failed      *obs.Counter // harness_failed_cells_total
	quarantines *obs.Counter // harness_quarantines_total

	// reg resolves the device-labelled completion counter
	// (harness_device_cells_total{device=...}) per completed cell — once
	// per cell, not per sample, so the label set stays bounded by the
	// fleet. Nil when the grid is uninstrumented.
	reg *obs.Registry

	cellNs    *obs.Histogram // harness_cell_ns: wall-clock per completed cell
	prepareNs *obs.Histogram // harness_prepare_ns: Prepare incl. cache hits
	measureNs *obs.Histogram // harness_measure_ns: one Measure attempt
	decodeNs  *obs.Histogram // store_decode_ns: store-hit decode
}

func newGridMetrics(r *obs.Registry) gridMetrics {
	return gridMetrics{
		reg:         r,
		cells:       r.Counter(mCellsTotal),
		hits:        r.Counter(mStoreHitsTotal),
		misses:      r.Counter(mStoreMissesTotal),
		retries:     r.Counter(mRetriesTotal),
		failed:      r.Counter(mFailedCellsTotal),
		quarantines: r.Counter(mQuarantinesTotal),
		cellNs:      r.Histogram(mCellNs, nil),
		prepareNs:   r.Histogram(mPrepareNs, nil),
		measureNs:   r.Histogram(mMeasureNs, nil),
		decodeNs:    r.Histogram(mStoreDecodeNs, nil),
	}
}

// deviceCells bumps the per-device completion counter — the lane
// throughput series dwarftop renders. No-op when uninstrumented.
func (m *gridMetrics) deviceCells(device string) {
	if m.reg == nil || device == "" {
		return
	}
	m.reg.Counter(obs.Name(mDeviceCellsTotal, lblDevice, device)).Inc()
}
