package harness

import (
	"hash/fnv"
	"io"
	"math/rand"
	"strconv"
	"time"

	"opendwarfs/internal/faults"
	"opendwarfs/internal/power"
	"opendwarfs/internal/scibench"
)

// RetryPolicy governs per-cell measurement retries in a grid run. The
// zero value makes exactly one attempt per cell with no timeout — the
// non-retrying harness, unchanged.
type RetryPolicy struct {
	// MaxAttempts is the total number of measurement attempts per cell,
	// first try included; 0 and 1 both mean a single attempt.
	MaxAttempts int
	// BaseBackoff is the pause before the second attempt; each further
	// retry doubles it (exponential backoff), capped at MaxBackoff when
	// that is set. 0 retries immediately.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth; 0 = uncapped.
	MaxBackoff time.Duration
	// Jitter ∈ [0,1] shortens each backoff by a pseudo-random fraction
	// of itself, decorrelating retry storms across cells. The fraction
	// is hashed from (cell, attempt) — deterministic, never drawn from a
	// shared RNG — so jitter does not cost reproducibility.
	Jitter float64
	// AttemptTimeout bounds one measurement attempt. An attempt that
	// exceeds it is classified as retryable (like a transient fault),
	// provided the run's own context is still live. 0 = unbounded.
	AttemptTimeout time.Duration
}

// attempts normalises MaxAttempts to at least one try.
func (r RetryPolicy) attempts() int {
	if r.MaxAttempts <= 1 {
		return 1
	}
	return r.MaxAttempts
}

// backoff returns the deterministic pause before the given attempt
// number (≥ 2): exponential in the attempt, capped, then jittered by the
// cell-coordinate hash.
func (r RetryPolicy) backoff(bench, size, device string, attempt int) time.Duration {
	if r.BaseBackoff <= 0 || attempt <= 1 {
		return 0
	}
	d := r.BaseBackoff
	for i := 2; i < attempt && d < time.Hour; i++ {
		d *= 2
	}
	if r.MaxBackoff > 0 && d > r.MaxBackoff {
		d = r.MaxBackoff
	}
	if r.Jitter > 0 {
		j := r.Jitter
		if j > 1 {
			j = 1
		}
		h := fnv.New64a()
		io.WriteString(h, bench)
		h.Write([]byte{0})
		io.WriteString(h, size)
		h.Write([]byte{0})
		io.WriteString(h, device)
		h.Write([]byte{0})
		io.WriteString(h, strconv.Itoa(attempt))
		rng := rand.New(rand.NewSource(int64(h.Sum64())))
		d = time.Duration(float64(d) * (1 - j*rng.Float64()))
	}
	return d
}

// applyDecision distorts a successful measurement per the injector's
// verdict: a straggler's time samples are dilated by the slow factor,
// and a power dropout zeroes the energy samples of NVML-metered cells
// (board-level sensors are the flaky ones; RAPL cells are unaffected).
// Summaries and diagnostics are recomputed so the measurement — and the
// stored cell it becomes — stays self-consistent.
func applyDecision(m *Measurement, dec faults.Decision) {
	if dec.SlowFactor > 1 {
		for i := range m.KernelNs {
			m.KernelNs[i] *= dec.SlowFactor
		}
		for i := range m.TransferNs {
			m.TransferNs[i] *= dec.SlowFactor
		}
		m.Kernel = scibench.Summarize(m.KernelNs)
		for _, v := range m.TransferNs {
			if v > 0 {
				m.Transfer = scibench.Summarize(m.TransferNs)
				break
			}
		}
		m.Diagnostics = scibench.Diagnose(m.KernelNs)
	}
	if dec.PowerDropout && m.MeterScope == power.ScopeNVMLBoard {
		for i := range m.EnergyJ {
			m.EnergyJ[i] = 0
		}
		m.Energy = scibench.Summarize(m.EnergyJ)
	}
}
