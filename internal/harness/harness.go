// Package harness drives suite measurements with the paper's methodology
// (§4.3): each benchmark runs in a loop until at least two (simulated)
// seconds have elapsed, the mean kernel time of the loop forms one sample,
// and 50 samples are collected per benchmark × size × device group, with
// energy and PAPI-style counters recorded alongside.
//
// Functional-versus-simulated policy: every configuration first runs one
// simulate-only iteration to characterise its kernels; if the total
// operation count fits the functional budget, a real (executing) iteration
// follows and the result is verified against the benchmark's serial
// reference. Oversized configurations (lud 4096, nqueens 18, …) keep the
// timing model only — their kernels are verified at the largest size that
// fits the budget. See DESIGN.md §2.
package harness

import (
	"fmt"

	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
	"opendwarfs/internal/papi"
	"opendwarfs/internal/power"
	"opendwarfs/internal/scibench"
	"opendwarfs/internal/sim"
)

// Options configures a measurement run.
type Options struct {
	// Samples per group; the paper uses 50 (§4.3).
	Samples int
	// MinLoopNs is the minimum simulated duration of one measurement loop;
	// the paper uses two seconds.
	MinLoopNs float64
	// MaxLoopIters caps loop iterations for very short kernels.
	MaxLoopIters int
	// MaxFunctionalOps is the operation budget above which functional
	// execution is skipped in favour of simulate-only timing.
	MaxFunctionalOps float64
	// Verify requests serial-reference verification after functional runs.
	Verify bool
	// Seed drives dataset generation.
	Seed int64
}

// DefaultOptions returns the paper's methodology parameters.
func DefaultOptions() Options {
	return Options{
		Samples:          scibench.PaperSampleSize(),
		MinLoopNs:        2e9,
		MaxLoopIters:     1 << 20,
		MaxFunctionalOps: 3e8,
		Verify:           true,
		Seed:             1,
	}
}

// Measurement is the result of one benchmark × size × device group.
type Measurement struct {
	Benchmark string
	Dwarf     string
	Size      string
	Device    *sim.DeviceSpec

	// Functional reports whether kernels actually executed (vs timing
	// model only); Verified whether the serial reference check passed.
	Functional bool
	Verified   bool

	// Iterations is the per-sample loop length chosen to cover MinLoopNs.
	Iterations int
	// FootprintBytes is the verified device-side memory usage (Eq. 1).
	FootprintBytes int64
	// KernelLaunches is the number of kernel enqueues per iteration.
	KernelLaunches int

	// Per-sample observations (len == Options.Samples).
	KernelNs   []float64
	TransferNs []float64
	EnergyJ    []float64

	// Summaries of the above.
	Kernel   scibench.Summary
	Transfer scibench.Summary
	Energy   scibench.Summary

	// Counters aggregates the PAPI-style events of one iteration.
	Counters papi.Set
	// MeterScope names the energy measurement path (RAPL vs NVML).
	MeterScope power.Scope
	// Profiles holds one workload profile per distinct kernel of the
	// benchmark, in first-launch order — the input to AIWC analysis (§7).
	Profiles []*sim.KernelProfile
	// Diagnostics screens the kernel-time samples (normality,
	// autocorrelation, outliers) before the parametric statistics above
	// are trusted.
	Diagnostics scibench.Diagnostics
}

// Run measures one benchmark × size × device group.
func Run(bench dwarfs.Benchmark, size string, dev *opencl.Device, opt Options) (*Measurement, error) {
	if opt.Samples <= 0 || opt.MinLoopNs <= 0 {
		return nil, fmt.Errorf("harness: non-positive sampling options")
	}
	inst, err := bench.New(size, opt.Seed)
	if err != nil {
		return nil, err
	}
	ctx, err := opencl.NewContext(dev)
	if err != nil {
		return nil, err
	}
	q, err := opencl.NewQueue(ctx, dev)
	if err != nil {
		return nil, err
	}

	m := &Measurement{
		Benchmark: bench.Name(),
		Dwarf:     bench.Dwarf(),
		Size:      size,
		Device:    dev.Spec,
	}

	// Host setup + initial transfers.
	if err := inst.Setup(ctx, q); err != nil {
		return nil, fmt.Errorf("harness: %s/%s setup: %w", bench.Name(), size, err)
	}
	if err := dwarfs.CheckFootprint(inst, ctx); err != nil {
		return nil, err
	}
	m.FootprintBytes = inst.FootprintBytes()
	q.DrainEvents()

	// Characterisation pass: simulate-only, to cost the configuration.
	q.SetSimulateOnly(true)
	if err := inst.Iterate(q); err != nil {
		return nil, fmt.Errorf("harness: %s/%s characterisation: %w", bench.Name(), size, err)
	}
	events := q.DrainEvents()
	totalOps := 0.0
	for _, ev := range events {
		if ev.Kind == opencl.CommandKernel {
			totalOps += ev.Profile.TotalOps()
			m.KernelLaunches++
		}
	}

	// Functional pass within budget; its events replace the estimate
	// (identical profiles, but the run is the one that gets verified).
	if totalOps <= opt.MaxFunctionalOps {
		q.SetSimulateOnly(false)
		q.ResetTimeline()
		if err := inst.Iterate(q); err != nil {
			return nil, fmt.Errorf("harness: %s/%s execution: %w", bench.Name(), size, err)
		}
		events = q.DrainEvents()
		m.Functional = true
		if opt.Verify {
			if err := inst.Verify(); err != nil {
				return nil, fmt.Errorf("harness: %s/%s verification: %w", bench.Name(), size, err)
			}
			m.Verified = true
		}
	}

	// Per-iteration means from the event timeline.
	kernelNs := opencl.KernelNs(events)
	transferNs := opencl.TransferNs(events)
	if kernelNs <= 0 {
		return nil, fmt.Errorf("harness: %s/%s produced no kernel time", bench.Name(), size)
	}

	// Energy and counters per iteration.
	meter := power.NewMeter(dev.Spec)
	m.MeterScope = meter.Scope
	model := dev.Model()
	energyJ := 0.0
	seenKernels := map[string]bool{}
	for _, ev := range events {
		if ev.Kind != opencl.CommandKernel {
			continue
		}
		energyJ += meter.KernelEnergy(model, ev.Breakdown)
		m.Counters.Add(papi.Derive(dev.Spec, ev.Profile, ev.Breakdown.Traffic, ev.Breakdown.TotalNs))
		if !seenKernels[ev.Name] {
			seenKernels[ev.Name] = true
			m.Profiles = append(m.Profiles, ev.Profile)
		}
	}

	// ≥2 s measurement loop (§4.3), in simulated time.
	iters := int(opt.MinLoopNs/kernelNs) + 1
	if iters > opt.MaxLoopIters {
		iters = opt.MaxLoopIters
	}
	m.Iterations = iters

	noise := sim.NewNoise(dev.Spec, bench.Name()+"/"+size)
	m.KernelNs = make([]float64, opt.Samples)
	m.TransferNs = make([]float64, opt.Samples)
	m.EnergyJ = make([]float64, opt.Samples)
	sigma := meter.Scope.SensorSigmaW()
	for s := 0; s < opt.Samples; s++ {
		m.KernelNs[s] = noise.Sample(kernelNs, iters)
		m.TransferNs[s] = noise.Sample(transferNs, iters)
		m.EnergyJ[s] = noise.SampleEnergy(energyJ, kernelNs*1e-9, sigma)
	}
	m.Kernel = scibench.Summarize(m.KernelNs)
	if transferNs > 0 {
		m.Transfer = scibench.Summarize(m.TransferNs)
	}
	m.Energy = scibench.Summarize(m.EnergyJ)
	// Sample health screen (Hoefler & Belli rules): the parametric CI in
	// Kernel is only defensible when the samples pass these.
	m.Diagnostics = scibench.Diagnose(m.KernelNs)
	return m, nil
}

// Records converts a measurement into LibSciBench-style sample records for
// CSV/JSONL logging.
func (m *Measurement) Records() []scibench.Record {
	recs := make([]scibench.Record, 0, 2*len(m.KernelNs))
	counters := map[string]float64{}
	for k, v := range m.Counters.Values {
		counters[string(k)] = v
	}
	for s := range m.KernelNs {
		recs = append(recs, scibench.Record{
			Benchmark: m.Benchmark, Size: m.Size, Device: m.Device.ID,
			Class: m.Device.Class.String(), Region: "kernel", Sample: s,
			TimeNs: m.KernelNs[s], EnergyJ: m.EnergyJ[s], Counters: counters,
		})
		recs = append(recs, scibench.Record{
			Benchmark: m.Benchmark, Size: m.Size, Device: m.Device.ID,
			Class: m.Device.Class.String(), Region: "transfer", Sample: s,
			TimeNs: m.TransferNs[s],
		})
	}
	return recs
}
