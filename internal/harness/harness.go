// Package harness drives suite measurements with the paper's methodology
// (§4.3): each benchmark runs in a loop until at least two (simulated)
// seconds have elapsed, the mean kernel time of the loop forms one sample,
// and 50 samples are collected per benchmark × size × device group, with
// energy and PAPI-style counters recorded alongside.
//
// Functional-versus-simulated policy: every configuration first runs one
// simulate-only iteration to characterise its kernels; if the total
// operation count fits the functional budget, a real (executing) iteration
// follows and the result is verified against the benchmark's serial
// reference. Oversized configurations (lud 4096, nqueens 18, …) keep the
// timing model only — their kernels are verified at the largest size that
// fits the budget. See DESIGN.md §2.
package harness

import (
	"context"
	"fmt"

	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
	"opendwarfs/internal/papi"
	"opendwarfs/internal/power"
	"opendwarfs/internal/scibench"
	"opendwarfs/internal/sim"
)

// Options configures a measurement run.
type Options struct {
	// Samples per group; the paper uses 50 (§4.3).
	Samples int
	// MinLoopNs is the minimum simulated duration of one measurement loop;
	// the paper uses two seconds.
	MinLoopNs float64
	// MaxLoopIters caps loop iterations for very short kernels.
	MaxLoopIters int
	// MaxFunctionalOps is the operation budget above which functional
	// execution is skipped in favour of simulate-only timing.
	MaxFunctionalOps float64
	// Verify requests serial-reference verification after functional runs.
	Verify bool
	// Seed drives dataset generation.
	Seed int64
}

// DefaultOptions returns the paper's methodology parameters.
func DefaultOptions() Options {
	return Options{
		Samples:          scibench.PaperSampleSize(),
		MinLoopNs:        2e9,
		MaxLoopIters:     1 << 20,
		MaxFunctionalOps: 3e8,
		Verify:           true,
		Seed:             1,
	}
}

// Measurement is the result of one benchmark × size × device group.
type Measurement struct {
	Benchmark string
	Dwarf     string
	Size      string
	Device    *sim.DeviceSpec

	// Functional reports whether kernels actually executed (vs timing
	// model only); Verified whether the serial reference check passed.
	Functional bool
	Verified   bool

	// Iterations is the per-sample loop length chosen to cover MinLoopNs.
	Iterations int
	// FootprintBytes is the verified device-side memory usage (Eq. 1).
	FootprintBytes int64
	// KernelLaunches is the number of kernel enqueues per iteration.
	KernelLaunches int

	// Per-sample observations (len == Options.Samples).
	KernelNs   []float64
	TransferNs []float64
	EnergyJ    []float64

	// Summaries of the above.
	Kernel   scibench.Summary
	Transfer scibench.Summary
	Energy   scibench.Summary

	// Counters aggregates the PAPI-style events of one iteration.
	Counters papi.Set
	// MeterScope names the energy measurement path (RAPL vs NVML).
	MeterScope power.Scope
	// Profiles holds one workload profile per distinct kernel of the
	// benchmark, in first-launch order — the input to AIWC analysis (§7).
	Profiles []*sim.KernelProfile
	// Diagnostics screens the kernel-time samples (normality,
	// autocorrelation, outliers) before the parametric statistics above
	// are trusted.
	Diagnostics scibench.Diagnostics
}

// traceCommand is one replayable entry of a preparation's command trace:
// the device-independent description of an enqueued command. Kernel entries
// carry the workload profile; transfer entries the byte volume. Replaying
// the trace through a device's analytical model reproduces exactly the
// event stream Iterate would have produced on that device.
type traceCommand struct {
	kind    opencl.CommandKind
	name    string
	bytes   int64
	profile *sim.KernelProfile
}

// Preparation holds everything about a benchmark × size × seed
// configuration that does not depend on the target device: the generated
// dataset's footprint, the characterisation command trace, the
// functional-budget decision, and the serial-reference verification
// verdict. One Preparation can be Measured on any number of devices; the
// grid runner caches them so the 15 devices of one row share a single
// prepare (see cache.go).
type Preparation struct {
	Benchmark string
	Dwarf     string
	Size      string

	// FootprintBytes is the verified device-side memory usage (Eq. 1).
	FootprintBytes int64
	// KernelLaunches is the number of kernel enqueues per iteration.
	KernelLaunches int
	// TotalOps is the characterised operation count of one iteration,
	// the input to the functional-budget decision.
	TotalOps float64
	// Functional reports whether kernels actually executed during
	// preparation (vs timing model only); Verified whether the serial
	// reference check passed.
	Functional bool
	Verified   bool

	// trace is the per-iteration command stream (kernels + transfers) in
	// enqueue order; profiles holds one entry per distinct kernel in
	// first-launch order.
	trace    []traceCommand
	profiles []*sim.KernelProfile
}

// Profiles returns one workload profile per distinct kernel of the
// preparation, in first-launch order. Profiles are computed by the
// benchmark from the NDRange and dataset alone — never from a device — so
// the same slice characterises the configuration on every catalogue entry;
// it is the input to AIWC feature extraction (internal/aiwc.Aggregate) and
// the prediction subsystem (internal/predict).
func (p *Preparation) Profiles() []*sim.KernelProfile { return p.profiles }

// prepDevice returns the device used to drive preparation passes. Workload
// profiles, datasets and verification verdicts are device-independent, so
// any catalogue entry works; the first is used for determinism.
func prepDevice() *opencl.Device { return opencl.AllDevices()[0] }

// Prepare runs the device-independent phase for one benchmark × size ×
// seed configuration: instance construction, dataset generation and setup,
// the simulate-only characterisation pass, the functional-budget decision
// and (within budget) one functionally-executed, verified iteration.
// Cancelling ctx aborts between phases with the context's error; an
// aborted preparation leaves no partial state behind.
func Prepare(ctx context.Context, bench dwarfs.Benchmark, size string, opt Options) (*Preparation, error) {
	if opt.Samples <= 0 || opt.MinLoopNs <= 0 {
		return nil, fmt.Errorf("harness: non-positive sampling options")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	inst, err := bench.New(size, opt.Seed)
	if err != nil {
		return nil, err
	}
	dev := prepDevice()
	clctx, err := opencl.NewContext(dev)
	if err != nil {
		return nil, err
	}
	q, err := opencl.NewQueue(clctx, dev)
	if err != nil {
		return nil, err
	}

	p := &Preparation{
		Benchmark: bench.Name(),
		Dwarf:     bench.Dwarf(),
		Size:      size,
	}

	// Host setup + initial transfers.
	if err := inst.Setup(clctx, q); err != nil {
		return nil, fmt.Errorf("harness: %s/%s setup: %w", bench.Name(), size, err)
	}
	if err := dwarfs.CheckFootprint(inst, clctx); err != nil {
		return nil, err
	}
	p.FootprintBytes = inst.FootprintBytes()
	q.DrainEvents()

	// Characterisation pass: simulate-only, to cost the configuration.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	q.SetSimulateOnly(true)
	if err := inst.Iterate(q); err != nil {
		return nil, fmt.Errorf("harness: %s/%s characterisation: %w", bench.Name(), size, err)
	}
	events := q.DrainEvents()
	for _, ev := range events {
		if ev.Kind == opencl.CommandKernel {
			p.TotalOps += ev.Profile.TotalOps()
			p.KernelLaunches++
		}
	}

	// Functional pass within budget; its events replace the estimate
	// (identical profiles, but the run is the one that gets verified).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p.TotalOps <= opt.MaxFunctionalOps {
		q.SetSimulateOnly(false)
		q.ResetTimeline()
		if err := inst.Iterate(q); err != nil {
			return nil, fmt.Errorf("harness: %s/%s execution: %w", bench.Name(), size, err)
		}
		events = q.DrainEvents()
		p.Functional = true
		if opt.Verify {
			if err := inst.Verify(); err != nil {
				return nil, fmt.Errorf("harness: %s/%s verification: %w", bench.Name(), size, err)
			}
			p.Verified = true
		}
	}

	hasKernel := false
	seenKernels := map[string]bool{}
	p.trace = make([]traceCommand, 0, len(events))
	for _, ev := range events {
		p.trace = append(p.trace, traceCommand{
			kind: ev.Kind, name: ev.Name, bytes: ev.Bytes, profile: ev.Profile,
		})
		if ev.Kind != opencl.CommandKernel {
			continue
		}
		hasKernel = true
		if !seenKernels[ev.Name] {
			seenKernels[ev.Name] = true
			p.profiles = append(p.profiles, ev.Profile)
		}
	}
	if !hasKernel {
		return nil, fmt.Errorf("harness: %s/%s produced no kernel time", bench.Name(), size)
	}
	return p, nil
}

// Measure runs the device-dependent phase: it replays the preparation's
// command trace through the device's analytical model to obtain kernel,
// transfer and energy estimates plus derived counters, then draws the
// paper's ≥2 s measurement-loop samples from the device's noise model. The
// noise stream is seeded by (device, benchmark, size) alone, so a
// Measurement is a pure function of its cell — independent of the order in
// which grid cells run. Cancelling ctx aborts before the trace replay or
// the sampling loop with the context's error; Measure never returns a
// partial measurement.
func (p *Preparation) Measure(ctx context.Context, dev *opencl.Device, opt Options) (*Measurement, error) {
	if opt.Samples <= 0 || opt.MinLoopNs <= 0 {
		return nil, fmt.Errorf("harness: non-positive sampling options")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if dev == nil {
		return nil, fmt.Errorf("harness: %s/%s measured on a nil device", p.Benchmark, p.Size)
	}

	m := &Measurement{
		Benchmark:      p.Benchmark,
		Dwarf:          p.Dwarf,
		Size:           p.Size,
		Device:         dev.Spec,
		Functional:     p.Functional,
		Verified:       p.Verified,
		FootprintBytes: p.FootprintBytes,
		KernelLaunches: p.KernelLaunches,
		Profiles:       p.profiles,
	}

	// Per-iteration means, energy and counters from the replayed trace.
	meter := power.NewMeter(dev.Spec)
	m.MeterScope = meter.Scope
	model := dev.Model()
	kernelNs, transferNs, energyJ := 0.0, 0.0, 0.0
	for _, c := range p.trace {
		switch c.kind {
		case opencl.CommandKernel:
			bd := model.KernelTime(c.profile)
			kernelNs += bd.TotalNs
			energyJ += meter.KernelEnergy(model, bd)
			m.Counters.Add(papi.Derive(dev.Spec, c.profile, bd.Traffic, bd.TotalNs))
		case opencl.CommandWrite, opencl.CommandRead:
			transferNs += model.TransferTime(c.bytes)
		}
	}
	if kernelNs <= 0 {
		return nil, fmt.Errorf("harness: %s/%s produced no kernel time", p.Benchmark, p.Size)
	}

	// ≥2 s measurement loop (§4.3), in simulated time.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	iters := int(opt.MinLoopNs/kernelNs) + 1
	if iters > opt.MaxLoopIters {
		iters = opt.MaxLoopIters
	}
	m.Iterations = iters

	noise := sim.NewNoise(dev.Spec, p.Benchmark+"/"+p.Size)
	m.KernelNs = make([]float64, opt.Samples)
	m.TransferNs = make([]float64, opt.Samples)
	m.EnergyJ = make([]float64, opt.Samples)
	sigma := meter.Scope.SensorSigmaW()
	for s := 0; s < opt.Samples; s++ {
		m.KernelNs[s] = noise.Sample(kernelNs, iters)
		m.TransferNs[s] = noise.Sample(transferNs, iters)
		m.EnergyJ[s] = noise.SampleEnergy(energyJ, kernelNs*1e-9, sigma)
	}
	m.Kernel = scibench.Summarize(m.KernelNs)
	if transferNs > 0 {
		m.Transfer = scibench.Summarize(m.TransferNs)
	}
	m.Energy = scibench.Summarize(m.EnergyJ)
	// Sample health screen (Hoefler & Belli rules): the parametric CI in
	// Kernel is only defensible when the samples pass these.
	m.Diagnostics = scibench.Diagnose(m.KernelNs)
	return m, nil
}

// Run measures one benchmark × size × device group: a Prepare followed by
// one Measure, with no caching. Grid runs share preparations instead.
func Run(ctx context.Context, bench dwarfs.Benchmark, size string, dev *opencl.Device, opt Options) (*Measurement, error) {
	p, err := Prepare(ctx, bench, size, opt)
	if err != nil {
		return nil, err
	}
	return p.Measure(ctx, dev, opt)
}

// Records converts a measurement into LibSciBench-style sample records for
// CSV/JSONL logging.
func (m *Measurement) Records() []scibench.Record {
	recs := make([]scibench.Record, 0, 2*len(m.KernelNs))
	counters := map[string]float64{}
	for k, v := range m.Counters.Values {
		counters[string(k)] = v
	}
	for s := range m.KernelNs {
		recs = append(recs, scibench.Record{
			Benchmark: m.Benchmark, Size: m.Size, Device: m.Device.ID,
			Class: m.Device.Class.String(), Region: "kernel", Sample: s,
			TimeNs: m.KernelNs[s], EnergyJ: m.EnergyJ[s], Counters: counters,
		})
		recs = append(recs, scibench.Record{
			Benchmark: m.Benchmark, Size: m.Size, Device: m.Device.ID,
			Class: m.Device.Class.String(), Region: "transfer", Sample: s,
			TimeNs: m.TransferNs[s],
		})
	}
	return recs
}
