package harness

import (
	"context"
	"fmt"
	"time"

	"opendwarfs/internal/dwarfs"
)

// EventKind discriminates grid-execution events. The values are stable wire
// strings: they appear verbatim in dwarfserve's SSE event stream and in any
// JSON-serialised Event.
type EventKind string

const (
	// EventCellStart fires when a worker claims a cell, before the store
	// lookup. Exactly one CellStart precedes each CellDone or StoreHit.
	EventCellStart EventKind = "cell_start"
	// EventCellDone fires after a cell was measured (a store miss, or a run
	// without a store) and, when a store is attached, persisted.
	EventCellDone EventKind = "cell_done"
	// EventStoreHit fires instead of CellDone when the cell was decoded
	// from the store rather than measured.
	EventStoreHit EventKind = "store_hit"
	// EventCellRetry fires when a measurement attempt failed for a
	// retryable reason (transient fault, attempt timeout) and another
	// attempt will follow. Attempt is the attempt that failed, Reason the
	// fault class.
	EventCellRetry EventKind = "cell_retry"
	// EventCellFailed fires when a cell exhausted its attempts (or its
	// device dropped out) and will not be measured. The cell is absent
	// from the grid and from the store; the grid is still valid.
	EventCellFailed EventKind = "cell_failed"
	// EventDeviceQuarantined fires once per run for the first
	// device-down fault on a device: every remaining cell on it will
	// fail fast, and schedulers should migrate its slots.
	EventDeviceQuarantined EventKind = "device_quarantined"
	// EventGridDone is the final event of a run: totals, hit/miss counts,
	// the (possibly partial) grid and the terminal error, if any.
	EventGridDone EventKind = "grid_done"
)

// Event is one typed progress notification from a grid run — the
// replacement for the legacy GridSpec.Progress text lines. Cell events
// carry the cell coordinate; completion events additionally carry the
// measurement and the wall-clock time the cell took. Fields that cannot be
// serialised (the measurement, the grid, the error) are excluded from JSON;
// wire consumers get the summary fields only.
type Event struct {
	Kind EventKind `json:"kind"`

	// Cell coordinate; empty on GridDone.
	Benchmark string `json:"benchmark,omitempty"`
	Size      string `json:"size,omitempty"`
	Device    string `json:"device,omitempty"`

	// Done counts completed cells (hits + measured) at the time the event
	// fired; Total is the planned cell count of the run. On CellDone and
	// StoreHit, Done includes the event's own cell.
	Done  int `json:"done"`
	Total int `json:"total"`

	// Elapsed is the wall-clock duration of the cell (CellDone, StoreHit)
	// or of the whole run (GridDone). Zero on CellStart.
	Elapsed time.Duration `json:"elapsed_ns"`

	// Hits and Misses are the store counters so far; both stay zero when
	// no store is attached.
	Hits   int `json:"store_hits"`
	Misses int `json:"store_misses"`

	// Attempt is the 1-based measurement attempt a fault event refers
	// to: the attempt that failed on CellRetry, the final attempt on
	// CellFailed. Zero elsewhere.
	Attempt int `json:"attempt,omitempty"`
	// Reason classifies the fault behind a CellRetry, CellFailed or
	// DeviceQuarantined event ("transient fault", "attempt timeout",
	// "device down").
	Reason string `json:"reason,omitempty"`
	// Retries and Failed are the run's cumulative fault counters at the
	// time the event fired, maintained like Hits/Misses; both stay zero
	// on a clean run.
	Retries int `json:"retries,omitempty"`
	Failed  int `json:"failed,omitempty"`

	// Measurement is set on CellDone and StoreHit.
	Measurement *Measurement `json:"-"`

	// Grid and Err are set on GridDone only. After cancellation Grid is
	// the valid partial grid (completed cells, grid order) and Err is the
	// context's error; after a cell failure Grid is nil and Err the cell's
	// error.
	Grid *Grid `json:"-"`
	Err  error `json:"-"`
}

// ProgressLine renders a completion event (cell_done or store_hit) as the
// classic one-line textual progress format — the single rendering shared
// by the deprecated GridSpec.Progress writer and CLI front-ends. It
// returns "" for every other event kind.
func (ev Event) ProgressLine() string {
	if (ev.Kind != EventCellDone && ev.Kind != EventStoreHit) || ev.Measurement == nil {
		return ""
	}
	m := ev.Measurement
	tag := "  [simulated]"
	switch {
	case m.Verified:
		tag = "  [verified]"
	case m.Functional:
		tag = "  [functional]"
	}
	src := ""
	if ev.Kind == EventStoreHit {
		src = "  [store]"
	}
	return fmt.Sprintf("cell %d/%d  %-8s %-7s %-12s median %12.3f ms  CV %5.3f  energy %8.3f J%s%s",
		ev.Done, ev.Total,
		m.Benchmark, m.Size, m.Device.ID,
		m.Kernel.Median/1e6, m.Kernel.CV, m.Energy.Median, tag, src)
}

// Stream runs the grid asynchronously and delivers typed events on the
// returned channel. The spec is validated synchronously — unknown
// benchmarks, sizes or devices fail before any goroutine starts — and the
// run begins immediately after Stream returns.
//
// The channel is unbuffered — delivery paces the run, so the events a
// consumer observes track execution closely and cancelling after the k-th
// event stops the grid near cell k — and it is closed after the terminal
// EventGridDone, which carries the resulting grid (partial under
// cancellation) and error. Consumers must drain the channel until it
// closes; cancelling ctx makes that prompt (workers stop claiming cells,
// in-flight measurements abort at their next context check, and remaining
// progress events are dropped). A consumer that cancels and abandons the
// channel without draining forfeits the terminal event: it is held out
// for a grace period for late drainers, then discarded so the producer
// goroutine never leaks permanently.
func Stream(ctx context.Context, reg *dwarfs.Registry, spec GridSpec) (<-chan Event, error) {
	cells, nDevices, err := planCells(reg, spec)
	if err != nil {
		return nil, err
	}
	ch := make(chan Event)
	go func() {
		defer close(ch)
		g, err := runGrid(ctx, spec, cells, nDevices, func(ev Event) {
			// Drop non-terminal events once the consumer has cancelled:
			// they are progress-only, and blocking here would stall the
			// workers' shutdown.
			select {
			case ch <- ev:
			case <-ctx.Done():
			}
		})
		done := Event{Kind: EventGridDone, Total: len(cells), Grid: g, Err: err}
		if g != nil {
			done.Done = g.Cells()
			done.Hits, done.Misses = g.StoreHits, g.StoreMisses
			done.Retries, done.Failed = g.Retries, len(g.Failed)
			done.Elapsed = g.Elapsed
		}
		if ctx.Err() == nil {
			// Normal completion: the consumer is obliged to drain.
			ch <- done
			return
		}
		// Cancelled: a draining consumer (RunGrid always drains) receives
		// this immediately; one that cancelled and walked away never
		// will — bounded wait instead of a permanent goroutine leak.
		select {
		case ch <- done:
		case <-time.After(10 * time.Second):
		}
	}()
	return ch, nil
}
