package harness

// Grid-harness benchmarks: the sequential/parallel pair quantifies the
// worker-pool speedup on a 60-cell grid (3 benchmarks × 4 sizes × 5
// devices). Both share the per-row preparation cache, so the pair isolates
// the dispatch win; BenchmarkRunGridUncachedCells isolates the cache win
// by measuring the same row the pre-cache harness re-prepared per device.
//
//	go test ./internal/harness -bench RunGrid -benchtime 3x

import (
	"context"

	"runtime"
	"testing"

	"opendwarfs/internal/obs"
	"opendwarfs/internal/opencl"
	"opendwarfs/internal/suite"
)

// benchGridSpec runs with observability fully enabled — a metrics
// registry and a tracer per run — so the committed BENCH_grid.json bounds
// hold for the instrumented hot path, not a stripped one.
func benchGridSpec(workers int) GridSpec {
	opt := DefaultOptions()
	opt.Samples = 8
	return GridSpec{
		Benchmarks: []string{"kmeans", "csr", "srad"},
		Sizes:      []string{"tiny", "small", "medium", "large"},
		Devices:    []string{"i7-6700k", "gtx1080", "k20m", "r9-290x", "knl-7210"},
		Options:    opt,
		Workers:    workers,
		Metrics:    obs.NewRegistry(),
		Tracer:     obs.NewTracer(),
	}
}

func runGridBenchmark(b *testing.B, workers int) {
	reg := suite.New()
	b.ReportMetric(float64(workers), "workers")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := RunGrid(context.Background(), reg, benchGridSpec(workers))
		if err != nil {
			b.Fatal(err)
		}
		if g.Cells() != 60 {
			b.Fatalf("%d cells, want 60", g.Cells())
		}
	}
}

// BenchmarkRunGridSequential is the Workers: 1 baseline.
func BenchmarkRunGridSequential(b *testing.B) { runGridBenchmark(b, 1) }

// BenchmarkRunGridParallel dispatches the same grid across one worker per
// CPU. On a ≥4-core machine the wall-clock ratio to the sequential
// baseline approaches the core count, because row preparations and cell
// measurements overlap freely.
func BenchmarkRunGridParallel(b *testing.B) { runGridBenchmark(b, runtime.GOMAXPROCS(0)) }

// BenchmarkRunGridUncachedCells measures one row the way the pre-cache
// harness did: a full Prepare per device. Comparing against
// BenchmarkRunGridCachedCells shows the per-row characterisation cost the
// cache removes for 14 of every 15 devices.
func BenchmarkRunGridUncachedCells(b *testing.B) {
	reg := suite.New()
	bench, err := reg.Get("srad")
	if err != nil {
		b.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Samples = 8
	devs := []string{"i7-6700k", "gtx1080", "k20m", "r9-290x", "knl-7210"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range devs {
			dev, err := opencl.LookupDevice(id)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := Run(context.Background(), bench, "small", dev, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRunGridCachedCells is the same row through the shared cache.
func BenchmarkRunGridCachedCells(b *testing.B) {
	reg := suite.New()
	bench, err := reg.Get("srad")
	if err != nil {
		b.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Samples = 8
	devs := []string{"i7-6700k", "gtx1080", "k20m", "r9-290x", "knl-7210"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := newPrepCache()
		for _, id := range devs {
			dev, err := opencl.LookupDevice(id)
			if err != nil {
				b.Fatal(err)
			}
			p, err := c.prepare(context.Background(), bench, "small", opt)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Measure(context.Background(), dev, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}
