package predict

import (
	"fmt"
	"math"
	"sort"
)

// Prediction is one held-out cell's predicted-versus-actual pair.
type Prediction struct {
	Benchmark string  `json:"benchmark"`
	Size      string  `json:"size"`
	Device    string  `json:"device"`
	Fold      string  `json:"fold"`
	ActualNs  float64 `json:"actual_ns"`
	PredNs    float64 `json:"predicted_ns"`
	// APE is the absolute percentage error in linear time.
	APE float64 `json:"ape"`
	// LogAPE is the absolute percentage error of the log-runtime
	// prediction itself — the quantity the model is trained on.
	LogAPE float64 `json:"log_ape"`
}

// Fold is one cross-validation fold: the model trained with Held's rows
// removed, evaluated on them.
type Fold struct {
	// Held is the device ID or benchmark name left out.
	Held string
	// N is the held-out cell count.
	N int
	// MAPE and MedAPE summarise linear-time percentage errors; LogMAPE
	// summarises the errors of the log-runtime predictions.
	MAPE    float64
	MedAPE  float64
	LogMAPE float64
	// Predictions holds the per-cell pairs, grid order.
	Predictions []Prediction
}

// CVResult is a full leave-one-group-out cross-validation.
type CVResult struct {
	// GroupBy is "device" or "benchmark".
	GroupBy string
	// Folds come back sorted by held-out key.
	Folds []Fold
}

// LeaveOneDeviceOut trains one model per device with that device's cells
// held out and evaluates on them — the paper's §7 question: can AIWC plus
// public device parameters predict runtime on hardware the kernel never
// ran on? Folds run concurrently under cfg's worker pool and land in
// key-sorted slots, so the result is identical at every worker count.
func LeaveOneDeviceOut(ds *Dataset, cfg Config) (*CVResult, error) {
	return crossValidate(ds, cfg, "device", ds.Devices(), func(r *Row) string { return r.Device })
}

// LeaveOneBenchmarkOut holds out one benchmark per fold — the transfer
// question across workloads rather than across hardware.
func LeaveOneBenchmarkOut(ds *Dataset, cfg Config) (*CVResult, error) {
	return crossValidate(ds, cfg, "benchmark", ds.Benchmarks(), func(r *Row) string { return r.Benchmark })
}

func crossValidate(ds *Dataset, cfg Config, groupBy string, keys []string, key func(*Row) string) (*CVResult, error) {
	if len(keys) < 2 {
		return nil, fmt.Errorf("predict: need at least two %ss to cross-validate, have %d", groupBy, len(keys))
	}
	sorted := make([]string, len(keys))
	copy(sorted, keys)
	sort.Strings(sorted)

	res := &CVResult{GroupBy: groupBy, Folds: make([]Fold, len(sorted))}
	errs := make([]error, len(sorted))
	// Folds are the outer parallel axis; each fold's forest trains
	// sequentially (Workers: 1) so the pool isn't oversubscribed
	// workers × workers. Fold results are pure functions of (data, cfg
	// minus Workers), so slot-addressed writes keep determinism.
	inner := cfg
	inner.Workers = 1
	cfg.forEach(len(sorted), func(i int) {
		held, rest := ds.Split(func(r *Row) bool { return key(r) == sorted[i] })
		fold, err := evalFold(ds.FeatureNames, sorted[i], held, rest, inner)
		if err != nil {
			errs[i] = fmt.Errorf("predict: fold %s: %w", sorted[i], err)
			return
		}
		res.Folds[i] = fold
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// evalFold trains on rest and scores held.
func evalFold(names []string, heldKey string, held, rest []Row, cfg Config) (Fold, error) {
	f, err := TrainRows(names, rest, cfg)
	if err != nil {
		return Fold{}, err
	}
	fold := Fold{Held: heldKey, N: len(held)}
	apes := make([]float64, 0, len(held))
	for i := range held {
		r := &held[i]
		logPred := f.Predict(r.Features)
		p := Prediction{
			Benchmark: r.Benchmark, Size: r.Size, Device: r.Device, Fold: heldKey,
			ActualNs: r.MedianNs, PredNs: math.Exp(logPred),
			APE:    100 * math.Abs(math.Exp(logPred)-r.MedianNs) / r.MedianNs,
			LogAPE: 100 * math.Abs(logPred-r.LogNs) / math.Abs(r.LogNs),
		}
		fold.Predictions = append(fold.Predictions, p)
		fold.MAPE += p.APE
		fold.LogMAPE += p.LogAPE
		apes = append(apes, p.APE)
	}
	if n := float64(len(held)); n > 0 {
		fold.MAPE /= n
		fold.LogMAPE /= n
		fold.MedAPE = median(apes)
	}
	return fold, nil
}

// MedianFoldMAPE returns the median across folds of the per-fold linear
// MAPE — the headline generalisation number.
func (r *CVResult) MedianFoldMAPE() float64 {
	return r.medianOf(func(f *Fold) float64 { return f.MAPE })
}

// MedianFoldLogMAPE is the median per-fold MAPE of the log-runtime
// predictions themselves — the acceptance metric asserted in CI.
func (r *CVResult) MedianFoldLogMAPE() float64 {
	return r.medianOf(func(f *Fold) float64 { return f.LogMAPE })
}

func (r *CVResult) medianOf(get func(*Fold) float64) float64 {
	vals := make([]float64, 0, len(r.Folds))
	for i := range r.Folds {
		if r.Folds[i].N > 0 {
			vals = append(vals, get(&r.Folds[i]))
		}
	}
	return median(vals)
}

// Predictions flattens every fold's predictions, fold order.
func (r *CVResult) Predictions() []Prediction {
	var out []Prediction
	for i := range r.Folds {
		out = append(out, r.Folds[i].Predictions...)
	}
	return out
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(v))
	copy(s, v)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
