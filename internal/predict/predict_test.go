package predict

import (
	"math"
	"math/rand"
	"testing"
)

// synthRows builds a deterministic synthetic regression problem:
// y = 3*x0 + step(x1) + noise-free interaction, with a few inert features.
func synthRows(n int) ([]string, []Row) {
	names := []string{"x0", "x1", "x2", "x3"}
	rng := rand.New(rand.NewSource(7))
	rows := make([]Row, n)
	for i := range rows {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		y := 3*x[0] + 2
		if x[1] > 0.5 {
			y += 1.5
		}
		rows[i] = Row{Features: x, LogNs: y, MedianNs: math.Exp(y)}
	}
	return names, rows
}

func TestForestFitsSyntheticFunction(t *testing.T) {
	names, rows := synthRows(400)
	cfg := DefaultConfig()
	cfg.Workers = 1
	f, err := TrainRows(names, rows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sumAbs := 0.0
	for i := range rows {
		sumAbs += math.Abs(f.Predict(rows[i].Features) - rows[i].LogNs)
	}
	if mae := sumAbs / float64(len(rows)); mae > 0.15 {
		t.Fatalf("training MAE %.3f on a noise-free function, want < 0.15", mae)
	}
}

func TestForestImportanceFindsActiveFeatures(t *testing.T) {
	names, rows := synthRows(400)
	cfg := DefaultConfig()
	f, err := TrainRows(names, rows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	imps := f.Importances()
	if len(imps) != len(names) {
		t.Fatalf("importance count %d, want %d", len(imps), len(names))
	}
	total := 0.0
	byName := map[string]float64{}
	for _, im := range imps {
		total += im.Share
		byName[im.Feature] = im.Share
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("importances sum to %f", total)
	}
	// The two active features must dominate the two inert ones.
	if byName["x0"] < byName["x2"] || byName["x0"] < byName["x3"] ||
		byName["x1"] < byName["x2"] || byName["x1"] < byName["x3"] {
		t.Fatalf("active features not dominant: %v", byName)
	}
}

// TestForestDeterministicAcrossWorkers is the satellite determinism test:
// at a fixed seed the trained model must be bitwise-identical at every
// worker count, exactly like RunGrid's grid guarantee.
func TestForestDeterministicAcrossWorkers(t *testing.T) {
	names, rows := synthRows(200)
	var ref *Forest
	for _, workers := range []int{1, 2, 7, 16} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		f, err := TrainRows(names, rows, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = f
			continue
		}
		for i := range rows {
			a, b := ref.Predict(rows[i].Features), f.Predict(rows[i].Features)
			if a != b {
				t.Fatalf("workers=%d row %d: prediction %v != %v", workers, i, b, a)
			}
		}
		ri, fi := ref.Importances(), f.Importances()
		for i := range ri {
			if ri[i] != fi[i] {
				t.Fatalf("workers=%d importance %d: %+v != %+v", workers, i, fi[i], ri[i])
			}
		}
	}
}

func TestForestSeedChangesModel(t *testing.T) {
	names, rows := synthRows(200)
	cfg := DefaultConfig()
	a, err := TrainRows(names, rows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	b, err := TrainRows(names, rows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range rows {
		if a.Predict(rows[i].Features) != b.Predict(rows[i].Features) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical forests")
	}
}

func TestForestPredictionsAreFinite(t *testing.T) {
	// Ulp-adjacent feature values provoke the midpoint-rounding edge where
	// a naive CART threshold leaves one partition empty (NaN leaves).
	names := []string{"x0"}
	base := 1.0e20
	vals := []float64{base, math.Nextafter(base, math.Inf(1)), base * 2, base * 3}
	var rows []Row
	for i := 0; i < 64; i++ {
		v := vals[i%len(vals)]
		rows = append(rows, Row{Features: []float64{v}, LogNs: float64(i % 7), MedianNs: 1})
	}
	cfg := DefaultConfig()
	cfg.FeatureFrac = 1
	f, err := TrainRows(names, rows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if p := f.Predict([]float64{v}); math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("non-finite prediction %v for input %v", p, v)
		}
	}
}

func TestTrainRowsValidation(t *testing.T) {
	names, rows := synthRows(10)
	if _, err := TrainRows(names, rows, Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	cfg := DefaultConfig()
	if _, err := TrainRows(names, rows[:1], cfg); err == nil {
		t.Fatal("single-row training set accepted")
	}
	bad := make([]Row, len(rows))
	copy(bad, rows)
	bad[3].Features = bad[3].Features[:2]
	if _, err := TrainRows(names, bad, cfg); err == nil {
		t.Fatal("ragged feature matrix accepted")
	}
}
