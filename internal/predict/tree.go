package predict

import (
	"math/rand"
	"sort"
)

// treeNode is one node of a regression tree, stored flat. Leaves have
// feature == -1 and carry the mean target of their samples.
type treeNode struct {
	feature   int
	threshold float64
	left      int32
	right     int32
	value     float64
}

// tree is a CART regression tree grown with variance-reduction splits.
type tree struct {
	nodes []treeNode
}

// growConfig bundles the per-tree growth parameters.
type growConfig struct {
	maxDepth    int
	minLeaf     int
	featureFrac float64
}

// grower carries the state of one tree's construction. All randomness
// flows through rng, which is owned by exactly one goroutine, and nodes are
// expanded depth-first left-to-right — so a tree is a pure function of
// (data, sample indices, rng seed).
type grower struct {
	x          [][]float64
	y          []float64
	cfg        growConfig
	rng        *rand.Rand
	nodes      []treeNode
	importance []float64 // summed SSE reduction per feature
	featIdx    []int     // scratch for feature subsampling
	sortIdx    []int     // scratch for per-feature value ordering
}

// growTree fits one tree on the sample indices idx (bootstrap indices,
// duplicates allowed). importance, when non-nil, accumulates each split's
// SSE reduction into the split feature's slot.
func growTree(x [][]float64, y []float64, idx []int, cfg growConfig, rng *rand.Rand, importance []float64) *tree {
	g := &grower{
		x: x, y: y, cfg: cfg, rng: rng,
		importance: importance,
		featIdx:    make([]int, len(x[0])),
	}
	own := make([]int, len(idx))
	copy(own, idx)
	g.build(own, 0)
	return &tree{nodes: g.nodes}
}

// build grows the subtree over samples idx at the given depth and returns
// its node index.
func (g *grower) build(idx []int, depth int) int32 {
	sum, sumSq := 0.0, 0.0
	for _, i := range idx {
		sum += g.y[i]
		sumSq += g.y[i] * g.y[i]
	}
	n := float64(len(idx))
	mean := sum / n
	sse := sumSq - sum*sum/n

	node := int32(len(g.nodes))
	g.nodes = append(g.nodes, treeNode{feature: -1, value: mean})
	if depth >= g.cfg.maxDepth || len(idx) < 2*g.cfg.minLeaf || sse <= 1e-12 {
		return node
	}

	feat, thr, gain := g.bestSplit(idx, sum, sumSq, sse)
	if feat < 0 {
		return node
	}
	if g.importance != nil {
		g.importance[feat] += gain
	}

	// Partition preserving relative order, so child sample order — and
	// therefore every downstream rng-independent computation — is
	// deterministic.
	var left, right []int
	for _, i := range idx {
		if g.x[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		// Cannot happen with the threshold guard above; keep the node a
		// leaf rather than recurse on an empty side.
		return node
	}
	g.nodes[node].feature = feat
	g.nodes[node].threshold = thr
	g.nodes[node].left = g.build(left, depth+1)
	g.nodes[node].right = g.build(right, depth+1)
	return node
}

// bestSplit searches a random feature subset for the (feature, threshold)
// pair with the largest SSE reduction. Candidate features are scanned in
// ascending index order and a new best must be strictly better, so ties
// resolve to the lowest feature index / lowest threshold deterministically.
func (g *grower) bestSplit(idx []int, totSum, totSumSq, parentSSE float64) (int, float64, float64) {
	nFeat := len(g.featIdx)
	k := int(float64(nFeat) * g.cfg.featureFrac)
	if k < 1 {
		k = 1
	}
	if k > nFeat {
		k = nFeat
	}
	for i := range g.featIdx {
		g.featIdx[i] = i
	}
	// Partial Fisher-Yates for the feature subset, then sort the chosen
	// prefix so the scan order is index-ascending.
	for i := 0; i < k; i++ {
		j := i + g.rng.Intn(nFeat-i)
		g.featIdx[i], g.featIdx[j] = g.featIdx[j], g.featIdx[i]
	}
	chosen := g.featIdx[:k]
	sort.Ints(chosen)

	if cap(g.sortIdx) < len(idx) {
		g.sortIdx = make([]int, len(idx))
	}
	ord := g.sortIdx[:len(idx)]

	bestFeat, bestThr, bestGain := -1, 0.0, 1e-12
	n := float64(len(idx))
	for _, f := range chosen {
		copy(ord, idx)
		// Sort by (value, sample index): the index tiebreak makes the
		// prefix-sum order — and so the floating-point result — unique.
		sort.Slice(ord, func(a, b int) bool {
			va, vb := g.x[ord[a]][f], g.x[ord[b]][f]
			if va != vb {
				return va < vb
			}
			return ord[a] < ord[b]
		})

		sumL, sumSqL := 0.0, 0.0
		for pos := 0; pos < len(ord)-1; pos++ {
			yi := g.y[ord[pos]]
			sumL += yi
			sumSqL += yi * yi
			// Only split between distinct values.
			if g.x[ord[pos]][f] == g.x[ord[pos+1]][f] {
				continue
			}
			nL := float64(pos + 1)
			nR := n - nL
			if int(nL) < g.cfg.minLeaf || int(nR) < g.cfg.minLeaf {
				continue
			}
			sumR := totSum - sumL
			sseL := sumSqL - sumL*sumL/nL
			sseR := (totSumSq - sumSqL) - sumR*sumR/nR
			gain := parentSSE - sseL - sseR
			if gain > bestGain {
				thr := (g.x[ord[pos]][f] + g.x[ord[pos+1]][f]) / 2
				if thr >= g.x[ord[pos+1]][f] {
					// The midpoint of two ulp-adjacent values rounds up
					// to the right value, which would leave the right
					// partition empty; split at the left value instead.
					thr = g.x[ord[pos]][f]
				}
				bestFeat = f
				bestThr = thr
				bestGain = gain
			}
		}
	}
	return bestFeat, bestThr, bestGain
}

// predict walks one feature vector to its leaf.
func (t *tree) predict(x []float64) float64 {
	n := int32(0)
	for {
		nd := &t.nodes[n]
		if nd.feature < 0 {
			return nd.value
		}
		if x[nd.feature] <= nd.threshold {
			n = nd.left
		} else {
			n = nd.right
		}
	}
}
