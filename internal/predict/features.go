// Package predict closes the loop the paper's §7 opens: it learns a
// cross-device runtime model from measured grid cells and evaluates how
// well architecture-independent workload characterisation (AIWC) predicts
// performance on devices a kernel was never run on.
//
// The pipeline is features → forest → cross-validation:
//
//   - Each measured grid cell becomes one training row: the ops-weighted
//     AIWC feature vector of the benchmark's kernels (internal/aiwc),
//     joined with device features derived from sim.DeviceSpec, targeting
//     the natural log of median kernel time.
//   - A deterministic random-forest regressor (forest.go, tree.go) is fit
//     over log-runtime; training parallelises across trees with the same
//     worker-pool discipline as harness.RunGrid and is bitwise-identical
//     at every worker count.
//   - Leave-one-device-out and leave-one-benchmark-out cross-validation
//     (crossval.go) quantify generalisation as per-fold MAPE, both on the
//     log-runtime predictions themselves and after exponentiating back to
//     linear time.
package predict

import (
	"fmt"
	"math"

	"opendwarfs/internal/aiwc"
	"opendwarfs/internal/harness"
	"opendwarfs/internal/sim"
)

// deviceFeatureNames lists the DeviceSpec-derived dimensions appended to
// the AIWC kernel vector, in order.
var deviceFeatureNames = []string{
	"dev_log_peak_gflops", "dev_vector_eff", "dev_scalar_ipc", "dev_clock_ghz",
	"dev_log_cus", "dev_log_lanes",
	"dev_log_dram_gbs", "dev_dram_latency_ns", "dev_log_mlp",
	"dev_log_l1_kib", "dev_log_l2_kib", "dev_log_l3_kib",
	"dev_launch_overhead_us", "dev_transfer_gbs", "dev_is_gpu",
}

// DeviceVector derives the numeric device features the model joins with a
// kernel's AIWC vector: peak rates, geometry, memory system and launch
// costs — the public parameters of the analytical model, not its outputs.
// The order matches deviceFeatureNames.
func DeviceVector(d *sim.DeviceSpec) []float64 {
	gpu := 0.0
	if d.Class.IsGPU() {
		gpu = 1
	}
	return []float64{
		math.Log(d.PeakGFLOPS), d.VectorEff, d.ScalarIPC, d.ClockGHz(),
		math.Log(float64(d.CUs)), math.Log(float64(d.Lanes)),
		math.Log(d.DRAMBandwidthGBs), d.DRAMLatencyNs, math.Log(d.MLP),
		math.Log1p(d.AggregateL1KiB()), math.Log1p(d.AggregateL2KiB()), math.Log1p(d.L3KiB),
		d.LaunchOverheadUs, d.TransferGBs, gpu,
	}
}

// Row is one training example: a measured grid cell flattened to features
// and the log-runtime target.
type Row struct {
	Benchmark string
	Size      string
	Device    string
	Class     string

	// Features is the AIWC kernel vector + log kernel-launch count +
	// device vector, aligned with Dataset.FeatureNames.
	Features []float64
	// MedianNs is the measured median kernel time of the cell.
	MedianNs float64
	// LogNs is the training target: ln(MedianNs).
	LogNs float64
}

// Dataset is the feature matrix assembled from a measurement grid.
type Dataset struct {
	FeatureNames []string
	Rows         []Row
}

// FeatureNames returns the full feature-name list: AIWC kernel dimensions,
// the per-cell launch count, then device dimensions.
func FeatureNames() []string {
	names := aiwc.FeatureNames()
	names = append(names, "log_launches")
	return append(names, deviceFeatureNames...)
}

// Features assembles the model's feature vector for any workload × device
// pair: the ops-weighted AIWC vector of the kernels, the log launch count,
// then the device vector. The device need not have been measured — profiles
// are device-independent, so pairing a measured benchmark's profiles with
// any DeviceSpec yields a valid query point. This is how dwarfserve answers
// /v1/predict for cells absent from the store.
func Features(profiles []*sim.KernelProfile, launches int, dev *sim.DeviceSpec) []float64 {
	v := aiwc.Aggregate(profiles).Vector()
	v = append(v, math.Log1p(float64(launches)))
	return append(v, DeviceVector(dev)...)
}

// CellFeatures assembles the feature vector of one measured cell.
func CellFeatures(m *harness.Measurement) []float64 {
	return Features(m.Profiles, m.KernelLaunches, m.Device)
}

// fromGrid flattens every measured cell into a training row over the given
// regression target (stored linearly in Row.MedianNs, logged in Row.LogNs).
// Rows come out in grid order, so the dataset — like the grid — is
// deterministic and independent of how many workers measured it.
func fromGrid(g *harness.Grid, what string, target func(*harness.Measurement) float64) (*Dataset, error) {
	ds := &Dataset{FeatureNames: FeatureNames()}
	for _, m := range g.Measurements {
		v := target(m)
		if v <= 0 {
			return nil, fmt.Errorf("predict: cell %s/%s/%s has non-positive median %s",
				m.Benchmark, m.Size, m.Device.ID, what)
		}
		ds.Rows = append(ds.Rows, Row{
			Benchmark: m.Benchmark,
			Size:      m.Size,
			Device:    m.Device.ID,
			Class:     m.Device.Class.String(),
			Features:  CellFeatures(m),
			MedianNs:  v,
			LogNs:     math.Log(v),
		})
	}
	if len(ds.Rows) == 0 {
		return nil, fmt.Errorf("predict: empty grid")
	}
	return ds, nil
}

// FromGrid builds the runtime dataset: the target is ln(median kernel time).
func FromGrid(g *harness.Grid) (*Dataset, error) {
	return fromGrid(g, "kernel time", func(m *harness.Measurement) float64 { return m.Kernel.Median })
}

// EnergyFromGrid builds the dataset behind the scheduler's energy cost
// model: identical features, targeting ln(median energy) — Row.MedianNs
// holds Joules. The same Forest machinery (and its determinism guarantees)
// applies unchanged.
func EnergyFromGrid(g *harness.Grid) (*Dataset, error) {
	return fromGrid(g, "energy", func(m *harness.Measurement) float64 { return m.Energy.Median })
}

// Split partitions the dataset's rows by a key function into (held, rest) —
// the fold primitive behind both cross-validation schemes and the
// "predict a held-out device" mode.
func (ds *Dataset) Split(hold func(*Row) bool) (held, rest []Row) {
	for i := range ds.Rows {
		if hold(&ds.Rows[i]) {
			held = append(held, ds.Rows[i])
		} else {
			rest = append(rest, ds.Rows[i])
		}
	}
	return held, rest
}

// Devices returns the distinct device IDs of the dataset in first-seen
// (grid) order.
func (ds *Dataset) Devices() []string { return ds.distinct(func(r *Row) string { return r.Device }) }

// Benchmarks returns the distinct benchmark names in first-seen order.
func (ds *Dataset) Benchmarks() []string {
	return ds.distinct(func(r *Row) string { return r.Benchmark })
}

func (ds *Dataset) distinct(key func(*Row) string) []string {
	seen := map[string]bool{}
	var out []string
	for i := range ds.Rows {
		if k := key(&ds.Rows[i]); !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}
