package predict

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Config parameterises forest training. The zero value is not usable; see
// DefaultConfig.
type Config struct {
	// Trees is the ensemble size.
	Trees int
	// MaxDepth bounds tree depth.
	MaxDepth int
	// MinLeaf is the minimum samples per leaf.
	MinLeaf int
	// FeatureFrac is the fraction of features each split considers.
	FeatureFrac float64
	// Seed drives bootstrap sampling and feature subsampling. Training is
	// a pure function of (data, Config minus Workers): every tree derives
	// its own rng from Seed and its index, so Workers changes wall-clock
	// time, never the model.
	Seed int64
	// Workers is the goroutine count for training and cross-validation,
	// with RunGrid's convention: 0 = GOMAXPROCS, 1 = sequential.
	Workers int
}

// DefaultConfig returns the parameters used by cmd/dwarfpredict and CI.
func DefaultConfig() Config {
	return Config{Trees: 96, MaxDepth: 12, MinLeaf: 2, FeatureFrac: 1.0 / 3, Seed: 1, Workers: 0}
}

func (c Config) validate() error {
	switch {
	case c.Trees <= 0:
		return fmt.Errorf("predict: non-positive tree count")
	case c.MaxDepth <= 0 || c.MinLeaf <= 0:
		return fmt.Errorf("predict: non-positive depth or leaf size")
	case c.FeatureFrac <= 0 || c.FeatureFrac > 1:
		return fmt.Errorf("predict: feature fraction out of (0,1]")
	}
	return nil
}

func (c Config) workers(jobs int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEach runs fn(i) for i in [0,n) across the configured worker count —
// the same atomic-counter pool RunGrid uses for grid cells. Results must be
// written to index-addressed slots so the outcome is order-independent.
func (c Config) forEach(n int, fn func(int)) {
	workers := c.workers(n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Forest is a trained random-forest regressor over log-runtime.
type Forest struct {
	trees        []*tree
	featureNames []string
	importance   []float64
}

// treeSeed derives tree t's rng seed from the forest seed via a splitmix64
// step, decorrelating adjacent trees without any cross-tree rng sharing.
func treeSeed(seed int64, t int) int64 {
	z := uint64(seed) + uint64(t+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e9b5
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// TrainRows fits a forest on explicit rows (the cross-validation fold
// primitive). Trees train concurrently under cfg's worker pool; per-tree
// importances are reduced in tree order afterwards, so the trained model is
// bitwise-identical at every worker count.
func TrainRows(names []string, rows []Row, cfg Config) (*Forest, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(rows) < 2*cfg.MinLeaf {
		return nil, fmt.Errorf("predict: %d rows is too few to train on", len(rows))
	}
	x := make([][]float64, len(rows))
	y := make([]float64, len(rows))
	for i := range rows {
		if len(rows[i].Features) != len(names) {
			return nil, fmt.Errorf("predict: row %d has %d features, want %d", i, len(rows[i].Features), len(names))
		}
		x[i] = rows[i].Features
		y[i] = rows[i].LogNs
	}

	f := &Forest{
		trees:        make([]*tree, cfg.Trees),
		featureNames: names,
		importance:   make([]float64, len(names)),
	}
	perTree := make([][]float64, cfg.Trees)
	gc := growConfig{maxDepth: cfg.MaxDepth, minLeaf: cfg.MinLeaf, featureFrac: cfg.FeatureFrac}
	cfg.forEach(cfg.Trees, func(t int) {
		rng := rand.New(rand.NewSource(treeSeed(cfg.Seed, t)))
		idx := make([]int, len(rows))
		for i := range idx {
			idx[i] = rng.Intn(len(rows))
		}
		imp := make([]float64, len(names))
		f.trees[t] = growTree(x, y, idx, gc, rng, imp)
		perTree[t] = imp
	})
	for t := range perTree {
		for i, v := range perTree[t] {
			f.importance[i] += v
		}
	}
	return f, nil
}

// Train fits a forest on the whole dataset.
func Train(ds *Dataset, cfg Config) (*Forest, error) {
	return TrainRows(ds.FeatureNames, ds.Rows, cfg)
}

// Predict returns the ensemble-mean log-runtime for a feature vector.
func (f *Forest) Predict(x []float64) float64 {
	s := 0.0
	for _, t := range f.trees {
		s += t.predict(x)
	}
	return s / float64(len(f.trees))
}

// PredictNs exponentiates the log-runtime prediction back to nanoseconds.
func (f *Forest) PredictNs(x []float64) float64 { return math.Exp(f.Predict(x)) }

// Trees returns the ensemble size.
func (f *Forest) Trees() int { return len(f.trees) }

// Importance is one feature's share of the forest's total SSE reduction.
type Importance struct {
	Feature string
	Share   float64
}

// Importances returns the normalised feature importances, descending, with
// ties broken by feature name for stable reports.
func (f *Forest) Importances() []Importance {
	total := 0.0
	for _, v := range f.importance {
		total += v
	}
	out := make([]Importance, len(f.importance))
	for i, v := range f.importance {
		share := 0.0
		if total > 0 {
			share = v / total
		}
		out[i] = Importance{Feature: f.featureNames[i], Share: share}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Share != out[b].Share {
			return out[a].Share > out[b].Share
		}
		return out[a].Feature < out[b].Feature
	})
	return out
}
