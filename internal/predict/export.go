package predict

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WritePredictionsCSV emits predicted-versus-actual pairs as CSV, one row
// per held-out cell, for external analysis of the cross-validation.
func WritePredictionsCSV(w io.Writer, preds []Prediction) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"benchmark", "size", "device", "fold", "actual_ns", "predicted_ns", "ape", "log_ape"}); err != nil {
		return err
	}
	for i := range preds {
		p := &preds[i]
		row := []string{
			p.Benchmark, p.Size, p.Device, p.Fold,
			strconv.FormatFloat(p.ActualNs, 'g', -1, 64),
			strconv.FormatFloat(p.PredNs, 'g', -1, 64),
			strconv.FormatFloat(p.APE, 'g', -1, 64),
			strconv.FormatFloat(p.LogAPE, 'g', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePredictionsJSONL emits the pairs as JSON lines.
func WritePredictionsJSONL(w io.Writer, preds []Prediction) error {
	enc := json.NewEncoder(w)
	for i := range preds {
		if err := enc.Encode(&preds[i]); err != nil {
			return fmt.Errorf("predict: prediction %d: %w", i, err)
		}
	}
	return nil
}

// WriteDatasetCSV emits the assembled training matrix — one feature column
// per dimension plus the targets — so the same data the forest trains on
// can feed external models.
func WriteDatasetCSV(w io.Writer, ds *Dataset) error {
	cw := csv.NewWriter(w)
	header := append([]string{"benchmark", "size", "device", "class"}, ds.FeatureNames...)
	header = append(header, "median_ns", "log_ns")
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range ds.Rows {
		r := &ds.Rows[i]
		row := make([]string, 0, len(header))
		row = append(row, r.Benchmark, r.Size, r.Device, r.Class)
		for _, v := range r.Features {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		row = append(row,
			strconv.FormatFloat(r.MedianNs, 'g', -1, 64),
			strconv.FormatFloat(r.LogNs, 'g', -1, 64))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
