package predict

import (
	"context"

	"testing"

	"opendwarfs/internal/harness"
	"opendwarfs/internal/opencl"
	"opendwarfs/internal/suite"
)

// TestAIWCFeaturesDeviceIndependent is the §7 property the whole subsystem
// rests on: the kernel half of a cell's feature vector comes from the
// Preparation's workload profiles, which are computed from the NDRange and
// dataset alone — so preparing and measuring the same (benchmark, size,
// seed) on every catalogue device must yield bitwise-identical AIWC
// vectors. Each device goes through a fresh harness.Run (fresh Prepare),
// so agreement is a property of the pipeline, not of pointer sharing.
func TestAIWCFeaturesDeviceIndependent(t *testing.T) {
	reg := suite.New()
	kernelDims := len(FeatureNames()) - len(deviceFeatureNames)
	for _, name := range []string{"kmeans", "crc", "srad"} {
		b, err := reg.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		var ref []float64
		var refDev string
		for _, dev := range opencl.AllDevices() {
			m, err := harness.Run(context.Background(), b, "tiny", dev, harness.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			vec := CellFeatures(m)[:kernelDims]
			if ref == nil {
				ref, refDev = vec, dev.ID()
				continue
			}
			for i := range vec {
				if vec[i] != ref[i] {
					t.Fatalf("%s: kernel feature %s differs between %s (%v) and %s (%v)",
						name, FeatureNames()[i], refDev, ref[i], dev.ID(), vec[i])
				}
			}
		}
	}
}

// TestPreparationProfilesExposed pins the harness accessor the feature
// assembly depends on.
func TestPreparationProfilesExposed(t *testing.T) {
	reg := suite.New()
	b, err := reg.Get("fft")
	if err != nil {
		t.Fatal(err)
	}
	p, err := harness.Prepare(context.Background(), b, "tiny", harness.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	profiles := p.Profiles()
	if len(profiles) == 0 {
		t.Fatal("preparation exposes no kernel profiles")
	}
	for _, kp := range profiles {
		if kp.Name == "" || kp.WorkItems <= 0 {
			t.Fatalf("malformed profile %+v", kp)
		}
	}
}

// TestDeviceVectorDistinguishesCatalogue ensures no two devices collapse
// to the same feature vector (the model could never separate them).
func TestDeviceVectorDistinguishesCatalogue(t *testing.T) {
	devs := opencl.AllDevices()
	for i := 0; i < len(devs); i++ {
		for j := i + 1; j < len(devs); j++ {
			a, b := DeviceVector(devs[i].Spec), DeviceVector(devs[j].Spec)
			same := true
			for k := range a {
				if a[k] != b[k] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("devices %s and %s have identical feature vectors", devs[i].ID(), devs[j].ID())
			}
		}
	}
}
