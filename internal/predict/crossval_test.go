package predict

import (
	"context"

	"math"
	"strings"
	"testing"

	"opendwarfs/internal/harness"
	"opendwarfs/internal/suite"
)

// tinyGrid measures the full 11-benchmark × tiny × 15-device grid once per
// test binary — the smallest slice that still exercises every benchmark
// and device.
func tinyGrid(t *testing.T) *Dataset {
	t.Helper()
	grid, err := harness.RunGrid(context.Background(), suite.New(), harness.GridSpec{
		Sizes:   []string{"tiny"},
		Options: harness.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := FromGrid(grid)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestFromGridShape(t *testing.T) {
	ds := tinyGrid(t)
	if len(ds.Benchmarks()) != 11 || len(ds.Devices()) != 15 {
		t.Fatalf("grid %d benchmarks × %d devices, want 11 × 15", len(ds.Benchmarks()), len(ds.Devices()))
	}
	if len(ds.Rows) != 11*15 {
		t.Fatalf("%d rows, want %d", len(ds.Rows), 11*15)
	}
	for i := range ds.Rows {
		r := &ds.Rows[i]
		if len(r.Features) != len(ds.FeatureNames) {
			t.Fatalf("row %d: %d features, want %d", i, len(r.Features), len(ds.FeatureNames))
		}
		for j, v := range r.Features {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("row %s/%s/%s: feature %s is %v", r.Benchmark, r.Size, r.Device, ds.FeatureNames[j], v)
			}
		}
		if !(r.LogNs > 0) || math.IsInf(r.LogNs, 0) {
			t.Fatalf("row %d: bad target %v", i, r.LogNs)
		}
	}
}

// TestLeaveOneDeviceOutAccuracy is the acceptance criterion: over the full
// 11-benchmark grid, per-device median MAPE of the log-runtime predictions
// stays below the 50% ceiling (it lands near 1% in practice; the ceiling
// is loose on purpose so hardware-noise-free refactors don't flake it).
func TestLeaveOneDeviceOutAccuracy(t *testing.T) {
	ds := tinyGrid(t)
	cfg := DefaultConfig()
	cv, err := LeaveOneDeviceOut(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cv.Folds) != 15 {
		t.Fatalf("%d folds, want 15", len(cv.Folds))
	}
	if got := cv.MedianFoldLogMAPE(); !(got <= 50) {
		t.Fatalf("median per-device LogMAPE %.2f%%, want ≤ 50%%", got)
	}
	// The linear-domain number is reported too; it should also be sane on
	// the tiny grid (well under 100% for the median device).
	if got := cv.MedianFoldMAPE(); !(got <= 100) {
		t.Fatalf("median per-device MAPE %.1f%%, want ≤ 100%%", got)
	}
	for i := range cv.Folds {
		f := &cv.Folds[i]
		if f.N != 11 {
			t.Fatalf("fold %s held %d cells, want 11", f.Held, f.N)
		}
		for _, p := range f.Predictions {
			if p.Device != f.Held {
				t.Fatalf("fold %s contains prediction for %s", f.Held, p.Device)
			}
			if math.IsNaN(p.PredNs) || p.PredNs <= 0 {
				t.Fatalf("fold %s: bad prediction %v for %s/%s", f.Held, p.PredNs, p.Benchmark, p.Size)
			}
		}
	}
}

func TestLeaveOneBenchmarkOutRuns(t *testing.T) {
	ds := tinyGrid(t)
	cfg := DefaultConfig()
	cv, err := LeaveOneBenchmarkOut(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cv.Folds) != 11 {
		t.Fatalf("%d folds, want 11", len(cv.Folds))
	}
	for i := range cv.Folds {
		for _, p := range cv.Folds[i].Predictions {
			if math.IsNaN(p.PredNs) || math.IsInf(p.PredNs, 0) || p.PredNs <= 0 {
				t.Fatalf("fold %s: non-finite prediction for %s/%s/%s", cv.Folds[i].Held, p.Benchmark, p.Size, p.Device)
			}
		}
	}
}

// TestCrossValidationDeterministicAcrossWorkers extends the worker-count
// guarantee to the fold level: the whole cross-validation result must be
// bitwise-identical at every worker count.
func TestCrossValidationDeterministicAcrossWorkers(t *testing.T) {
	ds := tinyGrid(t)
	// A smaller forest keeps the 15-fold × 3-config matrix fast.
	base := DefaultConfig()
	base.Trees = 24
	var ref *CVResult
	for _, workers := range []int{1, 3, 8} {
		cfg := base
		cfg.Workers = workers
		cv, err := LeaveOneDeviceOut(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = cv
			continue
		}
		for i := range cv.Folds {
			a, b := &ref.Folds[i], &cv.Folds[i]
			if a.Held != b.Held || a.MAPE != b.MAPE || a.LogMAPE != b.LogMAPE || a.MedAPE != b.MedAPE {
				t.Fatalf("workers=%d fold %s differs: %+v vs %+v", workers, a.Held, b, a)
			}
			for j := range a.Predictions {
				if a.Predictions[j] != b.Predictions[j] {
					t.Fatalf("workers=%d fold %s prediction %d differs", workers, a.Held, j)
				}
			}
		}
	}
}

func TestCrossValidationExports(t *testing.T) {
	ds := tinyGrid(t)
	cfg := DefaultConfig()
	cfg.Trees = 16
	cv, err := LeaveOneDeviceOut(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	preds := cv.Predictions()
	if len(preds) != len(ds.Rows) {
		t.Fatalf("%d predictions, want one per row (%d)", len(preds), len(ds.Rows))
	}

	var csvOut, jsonlOut, dsOut strings.Builder
	if err := WritePredictionsCSV(&csvOut, preds); err != nil {
		t.Fatal(err)
	}
	if err := WritePredictionsJSONL(&jsonlOut, preds); err != nil {
		t.Fatal(err)
	}
	if err := WriteDatasetCSV(&dsOut, ds); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csvOut.String(), "\n"); lines != len(preds)+1 {
		t.Fatalf("CSV has %d lines, want %d", lines, len(preds)+1)
	}
	if lines := strings.Count(jsonlOut.String(), "\n"); lines != len(preds) {
		t.Fatalf("JSONL has %d lines, want %d", lines, len(preds))
	}
	if !strings.Contains(dsOut.String(), "dev_log_peak_gflops") {
		t.Fatal("dataset CSV missing device feature column")
	}
}
