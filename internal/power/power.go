// Package power models the two energy measurement paths of the paper
// (§4.3/§5.2): Intel RAPL for CPU packages and Nvidia NVML for GPU boards,
// both exposed through PAPI components in the original study.
package power

import (
	"fmt"

	"opendwarfs/internal/sim"
)

// Scope identifies what a meter measures.
type Scope int

const (
	// ScopeRAPLPP0 is the RAPL PP0 domain: all cores in package 0 — the
	// counter the paper samples on the Skylake
	// (rapl:::PP0_ENERGY:PACKAGE0). It excludes uncore and DRAM power.
	ScopeRAPLPP0 Scope = iota
	// ScopeNVMLBoard is the NVML power reading: the whole card, memory and
	// chip, ±5 W (nvml:::<device>:power).
	ScopeNVMLBoard
)

// String names the scope like the PAPI component it stands in for.
func (s Scope) String() string {
	switch s {
	case ScopeRAPLPP0:
		return "rapl:::PP0_ENERGY:PACKAGE0"
	case ScopeNVMLBoard:
		return "nvml:::power"
	default:
		return "unknown"
	}
}

// SensorSigmaW returns the sensor noise the paper reports for the scope.
func (s Scope) SensorSigmaW() float64 {
	if s == ScopeNVMLBoard {
		return 5 // §5.2: "+/-5 watts ... for the entire card"
	}
	return 0.5
}

// Meter converts kernel-time breakdowns into energy estimates for a device.
type Meter struct {
	Spec  *sim.DeviceSpec
	Scope Scope
}

// NewMeter picks the measurement path the paper used for each device class:
// RAPL for CPUs and the MIC, NVML-style board power for GPUs.
func NewMeter(spec *sim.DeviceSpec) Meter {
	scope := ScopeNVMLBoard
	if spec.Class == sim.CPU || spec.Class == sim.MIC {
		scope = ScopeRAPLPP0
	}
	return Meter{Spec: spec, Scope: scope}
}

// Power returns the modelled draw in watts at a given utilisation in [0,1].
func (m Meter) Power(utilization float64) float64 {
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	idle := m.Spec.IdleWatts
	active := idle + (m.Spec.TDPWatts-idle)*utilization
	if m.Scope == ScopeRAPLPP0 {
		// PP0 covers the cores only: roughly 80% of active package power
		// and half of idle (uncore/DRAM excluded).
		return 0.5*idle + 0.8*(active-idle)
	}
	return active
}

// Energy returns the joules consumed over a kernel execution of the given
// modelled duration and utilisation.
func (m Meter) Energy(durationNs, utilization float64) float64 {
	if durationNs <= 0 {
		return 0
	}
	return m.Power(utilization) * durationNs * 1e-9
}

// KernelEnergy is the convenience used by the harness: energy of one
// modelled kernel breakdown.
func (m Meter) KernelEnergy(model *sim.Model, b sim.Breakdown) float64 {
	return m.Energy(b.TotalNs, model.Utilization(b))
}

// Describe returns a human-readable meter description for logs.
func (m Meter) Describe() string {
	return fmt.Sprintf("%s via %s (TDP %.0f W, idle %.0f W)", m.Spec.Name, m.Scope, m.Spec.TDPWatts, m.Spec.IdleWatts)
}
