package power

import (
	"strings"
	"testing"

	"opendwarfs/internal/cache"
	"opendwarfs/internal/sim"
)

func spec(t *testing.T, id string) *sim.DeviceSpec {
	t.Helper()
	d, err := sim.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMeterScopeSelection(t *testing.T) {
	// §4.3: RAPL on Intel platforms, NVML on Nvidia GPUs.
	if m := NewMeter(spec(t, "i7-6700k")); m.Scope != ScopeRAPLPP0 {
		t.Error("CPU should use RAPL PP0")
	}
	if m := NewMeter(spec(t, "knl-7210")); m.Scope != ScopeRAPLPP0 {
		t.Error("MIC should use RAPL")
	}
	if m := NewMeter(spec(t, "gtx1080")); m.Scope != ScopeNVMLBoard {
		t.Error("GPU should use NVML board power")
	}
}

func TestPowerBounds(t *testing.T) {
	for _, id := range []string{"i7-6700k", "gtx1080", "k20m"} {
		m := NewMeter(spec(t, id))
		p0 := m.Power(0)
		p1 := m.Power(1)
		if p0 <= 0 {
			t.Errorf("%s: idle power %f", id, p0)
		}
		if p1 <= p0 {
			t.Errorf("%s: full power %f not above idle %f", id, p1, p0)
		}
		if p1 > m.Spec.TDPWatts {
			t.Errorf("%s: full power %f above TDP %f", id, p1, m.Spec.TDPWatts)
		}
		// Clamping.
		if m.Power(-1) != p0 || m.Power(2) != p1 {
			t.Errorf("%s: utilization not clamped", id)
		}
	}
}

func TestEnergyScalesWithTime(t *testing.T) {
	m := NewMeter(spec(t, "gtx1080"))
	e1 := m.Energy(1e9, 0.8) // one second
	e2 := m.Energy(2e9, 0.8)
	if e2 <= e1 || e1 <= 0 {
		t.Fatalf("energy not linear in time: %f, %f", e1, e2)
	}
	if m.Energy(0, 0.8) != 0 || m.Energy(-5, 0.8) != 0 {
		t.Fatal("non-positive durations must give zero energy")
	}
}

func TestCPUEnergyExceedsGPUForLargeVectorKernels(t *testing.T) {
	// Fig. 5: at the large problem size every benchmark except crc uses
	// more energy on the i7-6700K than on the GTX 1080.
	cpu := spec(t, "i7-6700k")
	gpu := spec(t, "gtx1080")
	p := &sim.KernelProfile{
		Name: "srad-large", WorkItems: 2048 * 1024,
		FlopsPerItem: 30, LoadBytesPerItem: 40, StoreBytesPerItem: 8,
		WorkingSetBytes: 100 << 20, Pattern: cache.Stencil, TemporalReuse: 0.6,
		Vectorizable: true,
	}
	cm, gm := sim.NewModel(cpu), sim.NewModel(gpu)
	cb, gb := cm.KernelTime(p), gm.KernelTime(p)
	ce := NewMeter(cpu).KernelEnergy(cm, cb)
	ge := NewMeter(gpu).KernelEnergy(gm, gb)
	if ce <= ge {
		t.Fatalf("CPU energy %f J should exceed GPU energy %f J for a large vector kernel", ce, ge)
	}
}

func TestCRCEnergyFavoursCPU(t *testing.T) {
	// Fig. 5's exception: crc's serial integer profile burns more on GPU.
	cpu := spec(t, "i7-6700k")
	gpu := spec(t, "gtx1080")
	p := &sim.KernelProfile{
		Name: "crc-large", WorkItems: 4096,
		IntOpsPerItem: 8 * 1024, LoadBytesPerItem: 1024,
		WorkingSetBytes: 4 << 20, Pattern: cache.Streaming, TemporalReuse: 0.3,
		Vectorizable: false,
	}
	cm, gm := sim.NewModel(cpu), sim.NewModel(gpu)
	cb, gb := cm.KernelTime(p), gm.KernelTime(p)
	ce := NewMeter(cpu).KernelEnergy(cm, cb)
	ge := NewMeter(gpu).KernelEnergy(gm, gb)
	if ge <= ce {
		t.Fatalf("GPU energy %f J should exceed CPU energy %f J for crc", ge, ce)
	}
}

func TestScopeStrings(t *testing.T) {
	if ScopeRAPLPP0.String() != "rapl:::PP0_ENERGY:PACKAGE0" {
		t.Error(ScopeRAPLPP0.String())
	}
	if ScopeNVMLBoard.String() != "nvml:::power" {
		t.Error(ScopeNVMLBoard.String())
	}
	if Scope(7).String() != "unknown" {
		t.Error("unknown scope")
	}
	if ScopeNVMLBoard.SensorSigmaW() != 5 {
		t.Error("NVML sensor noise should be ±5 W per §5.2")
	}
	m := NewMeter(spec(t, "i7-6700k"))
	if !strings.Contains(m.Describe(), "i7-6700K") {
		t.Error(m.Describe())
	}
}
