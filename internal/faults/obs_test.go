package faults

import (
	"testing"

	"opendwarfs/internal/obs"
)

type staticInjector struct{ d Decision }

func (s staticInjector) Decide(bench, size, device string, attempt int) Decision { return s.d }

func TestCountedCountsByKind(t *testing.T) {
	reg := obs.NewRegistry()
	inj := Counted(staticInjector{Decision{
		Transient: true, Dropped: true, Hang: true, SlowFactor: 4, PowerDropout: true,
	}}, reg)
	want := Decision{Transient: true, Dropped: true, Hang: true, SlowFactor: 4, PowerDropout: true}
	for i := 0; i < 3; i++ {
		if d := inj.Decide("crc", "tiny", "gtx1080", 1); d != want {
			t.Fatalf("Counted changed the decision: %+v", d)
		}
	}
	for _, kind := range []string{"transient", "device_down", "hang", "straggler", "power_dropout"} {
		if n := reg.CounterValue(obs.Name("faults_injected_total", "kind", kind)); n != 3 {
			t.Fatalf("faults_injected_total{kind=%s} = %d, want 3", kind, n)
		}
	}
	// Clean decisions count nothing.
	clean := Counted(staticInjector{}, reg)
	clean.Decide("crc", "tiny", "gtx1080", 1)
	if n := reg.CounterValue(obs.Name("faults_injected_total", "kind", "transient")); n != 3 {
		t.Fatalf("clean decision bumped transient counter to %d", n)
	}
}

func TestCountedPassthroughOnNil(t *testing.T) {
	if Counted(nil, obs.NewRegistry()) != nil {
		t.Fatal("Counted(nil, reg) must stay nil")
	}
	inner := staticInjector{}
	if got := Counted(inner, nil); got != Injector(inner) {
		t.Fatal("Counted(inner, nil) must return inner unchanged")
	}
}
