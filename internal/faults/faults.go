// Package faults injects deterministic, seeded failures into grid
// measurement — the noise-realism counterpart of internal/sim's clean
// analytical model. A fault plan models the ways a real heterogeneous
// fleet misbehaves during a sweep: transient measurement errors, devices
// dropping out (permanently, or flapping for one attempt at a time),
// stragglers running ×k slower than the model predicts, and power-sensor
// dropouts on the NVML band.
//
// Everything is decided by pure functions of (seed, benchmark, size,
// device, attempt) — hashed into a private RNG per decision, exactly like
// sim.NewNoise — never of wall-clock time or execution order. Two runs of
// the same grid under the same plan produce identical fault sequences at
// any worker count, which is what lets CI assert on chaos outcomes.
//
// The clean simulator is the zero-value default: the harness only
// consults an Injector when one is configured, and a nil injector means
// every attempt succeeds on the model's terms.
package faults

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
)

// Sentinel errors the harness classifies retry behaviour by.
var (
	// ErrTransient marks one failed measurement attempt that a retry may
	// recover; the harness retries it under its RetryPolicy.
	ErrTransient = errors.New("faults: transient measurement fault")
	// ErrDeviceDown marks an attempt on a device that has dropped out of
	// the fleet. It is not retried: the harness quarantines the device
	// and records the cell as failed.
	ErrDeviceDown = errors.New("faults: device down")
)

// Decision is an injector's verdict for one measurement attempt of one
// cell. The zero value is "measure cleanly".
type Decision struct {
	// Transient fails the attempt with ErrTransient; the harness retries
	// it (up to RetryPolicy.MaxAttempts).
	Transient bool
	// Dropped fails the attempt with ErrDeviceDown; the harness
	// quarantines the device instead of retrying.
	Dropped bool
	// Hang blocks the attempt until its context expires, so only a
	// per-attempt timeout (RetryPolicy.AttemptTimeout) or cancellation
	// unblocks it. Plan never hangs; the field exists for bespoke test
	// injectors exercising the timeout path.
	Hang bool
	// SlowFactor > 1 dilates the attempt's time samples by that factor
	// (a straggler); 0 or 1 leaves them untouched.
	SlowFactor float64
	// PowerDropout zeroes the attempt's energy samples when the cell is
	// metered over the NVML band — board-level power sensors are the
	// flaky ones (§5.2); RAPL cells are unaffected.
	PowerDropout bool
}

// Injector decides the fate of measurement attempts. Implementations must
// be pure functions of their arguments — never of time or execution
// order — so grids stay deterministic at every worker count, and must be
// safe for concurrent use from grid workers.
type Injector interface {
	Decide(bench, size, device string, attempt int) Decision
}

// Plan is the standard seeded injector: independent per-attempt fault
// draws at the configured rates, plus a list of devices that are dead
// from the start. The JSON tags make a Plan postable to dwarfserve as a
// job's chaos scenario. The zero value injects nothing.
type Plan struct {
	// Seed decorrelates chaos scenarios; the same seed over the same grid
	// reproduces the same fault sequence exactly.
	Seed int64 `json:"seed"`
	// TransientRate ∈ [0,1] is the per-attempt probability that a
	// measurement fails with ErrTransient.
	TransientRate float64 `json:"transient_rate,omitempty"`
	// Drop lists devices dead for the whole run: every attempt on them
	// returns Dropped, so the first cell to touch one quarantines it.
	Drop []string `json:"drop,omitempty"`
	// FlapRate ∈ [0,1] is the per-(device, attempt) probability that a
	// device flaps out for that attempt index. A flap is drawn once per
	// device — correlated across every cell on it, unlike TransientRate —
	// and surfaces as a retryable transient fault.
	FlapRate float64 `json:"flap_rate,omitempty"`
	// StragglerRate ∈ [0,1] is the per-attempt probability that a
	// successful measurement comes back StragglerFactor slower.
	StragglerRate float64 `json:"straggler_rate,omitempty"`
	// StragglerFactor is the slowdown applied to straggler attempts;
	// 0 means the default of 4.
	StragglerFactor float64 `json:"straggler_factor,omitempty"`
	// PowerDropoutRate ∈ [0,1] is the per-attempt probability that an
	// NVML-metered cell loses its power sensor for the attempt.
	PowerDropoutRate float64 `json:"power_dropout_rate,omitempty"`
}

var _ Injector = (*Plan)(nil)

// defaultStragglerFactor is the slowdown when StragglerFactor is unset.
const defaultStragglerFactor = 4

// Validate rejects rates outside [0,1] and sub-unity straggler factors.
func (p *Plan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"transient_rate", p.TransientRate},
		{"flap_rate", p.FlapRate},
		{"straggler_rate", p.StragglerRate},
		{"power_dropout_rate", p.PowerDropoutRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s %g outside [0,1]", r.name, r.v)
		}
	}
	if p.StragglerFactor != 0 && p.StragglerFactor < 1 {
		return fmt.Errorf("faults: straggler_factor %g below 1", p.StragglerFactor)
	}
	return nil
}

// rng derives a private deterministic RNG for one decision, seeded by
// FNV-hashing the plan seed and the NUL-separated parts — the same
// construction as sim.NewNoise, so fault streams and noise streams stay
// decorrelated but individually reproducible.
func (p *Plan) rng(parts ...string) *rand.Rand {
	h := fnv.New64a()
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], uint64(p.Seed))
	h.Write(seed[:])
	for _, s := range parts {
		h.Write([]byte{0})
		h.Write([]byte(s))
	}
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// Decide implements Injector. Draw order is fixed (flap, transient,
// straggler, power) so a decision never depends on which rates are zero.
func (p *Plan) Decide(bench, size, device string, attempt int) Decision {
	var d Decision
	for _, id := range p.Drop {
		if id == device {
			d.Dropped = true
			return d
		}
	}
	at := strconv.Itoa(attempt)
	// Device-wide flap: hashed without the cell coordinate, so at a given
	// attempt index the device is out for all of its cells or none.
	if p.FlapRate > 0 && p.rng("flap", device, at).Float64() < p.FlapRate {
		d.Transient = true
	}
	r := p.rng("cell", bench, size, device, at)
	if r.Float64() < p.TransientRate {
		d.Transient = true
	}
	if r.Float64() < p.StragglerRate {
		if d.SlowFactor = p.StragglerFactor; d.SlowFactor == 0 {
			d.SlowFactor = defaultStragglerFactor
		}
	}
	if r.Float64() < p.PowerDropoutRate {
		d.PowerDropout = true
	}
	return d
}
