package faults

import "opendwarfs/internal/obs"

// mInjectedTotal is the one fault-injection series; lblKind carries the
// Decision flag that fired (obsnames-checked).
const (
	mInjectedTotal = "faults_injected_total"
	lblKind        = "kind"
)

// Counted wraps an injector so every non-clean verdict bumps a
// faults_injected_total{kind=…} counter on reg — one per Decision flag:
// transient, device_down, hang, straggler, power_dropout. Decisions pass
// through unchanged, so determinism is untouched: the counters are a pure
// function of the same (cell, attempt) stream the inner injector sees.
// With a nil inner injector or nil registry it returns inner unchanged.
func Counted(inner Injector, reg *obs.Registry) Injector {
	if inner == nil || reg == nil {
		return inner
	}
	return &counted{
		inner:     inner,
		transient: reg.Counter(obs.Name(mInjectedTotal, lblKind, "transient")),
		down:      reg.Counter(obs.Name(mInjectedTotal, lblKind, "device_down")),
		hang:      reg.Counter(obs.Name(mInjectedTotal, lblKind, "hang")),
		straggler: reg.Counter(obs.Name(mInjectedTotal, lblKind, "straggler")),
		power:     reg.Counter(obs.Name(mInjectedTotal, lblKind, "power_dropout")),
	}
}

type counted struct {
	inner                                   Injector
	transient, down, hang, straggler, power *obs.Counter
}

func (c *counted) Decide(bench, size, device string, attempt int) Decision {
	d := c.inner.Decide(bench, size, device, attempt)
	if d.Transient {
		c.transient.Inc()
	}
	if d.Dropped {
		c.down.Inc()
	}
	if d.Hang {
		c.hang.Inc()
	}
	if d.SlowFactor > 1 {
		c.straggler.Inc()
	}
	if d.PowerDropout {
		c.power.Inc()
	}
	return d
}
