package faults

import (
	"reflect"
	"testing"
)

// Decisions must be pure functions of (seed, bench, size, device,
// attempt): repeated calls, in any order, agree exactly.
func TestPlanDeterministic(t *testing.T) {
	p := &Plan{Seed: 7, TransientRate: 0.3, StragglerRate: 0.2, StragglerFactor: 3, PowerDropoutRate: 0.1, FlapRate: 0.05}
	type cell struct {
		bench, size, device string
		attempt             int
	}
	var cells []cell
	for _, b := range []string{"crc", "fft", "nw"} {
		for _, d := range []string{"i7-6700k", "gtx1080", "k20m"} {
			for a := 1; a <= 4; a++ {
				cells = append(cells, cell{b, "tiny", d, a})
			}
		}
	}
	first := make([]Decision, len(cells))
	for i, c := range cells {
		first[i] = p.Decide(c.bench, c.size, c.device, c.attempt)
	}
	// Reverse order, fresh pass: identical verdicts.
	for i := len(cells) - 1; i >= 0; i-- {
		c := cells[i]
		if got := p.Decide(c.bench, c.size, c.device, c.attempt); !reflect.DeepEqual(got, first[i]) {
			t.Fatalf("decision for %+v changed across calls: %+v then %+v", c, first[i], got)
		}
	}
}

func TestPlanSeedDecorrelates(t *testing.T) {
	a := &Plan{Seed: 1, TransientRate: 0.5}
	b := &Plan{Seed: 2, TransientRate: 0.5}
	same := true
	for i := 0; i < 64 && same; i++ {
		bench := string(rune('a' + i%26))
		same = a.Decide(bench, "tiny", "gtx1080", 1+i) == b.Decide(bench, "tiny", "gtx1080", 1+i)
	}
	if same {
		t.Fatalf("seeds 1 and 2 produced identical decision streams")
	}
}

func TestPlanDropIsPermanent(t *testing.T) {
	p := &Plan{Seed: 1, Drop: []string{"k20m"}}
	for attempt := 1; attempt <= 5; attempt++ {
		if d := p.Decide("crc", "tiny", "k20m", attempt); !d.Dropped {
			t.Fatalf("attempt %d on dropped device not Dropped: %+v", attempt, d)
		}
	}
	if d := p.Decide("crc", "tiny", "gtx1080", 1); d.Dropped {
		t.Fatalf("undropped device reported Dropped")
	}
}

// The empirical transient frequency over many independent draws must sit
// near the configured rate — the injector is a fault model, not a lottery.
func TestPlanTransientRate(t *testing.T) {
	p := &Plan{Seed: 3, TransientRate: 0.2}
	n, hits := 5000, 0
	for i := 0; i < n; i++ {
		if p.Decide("bench", "size", "dev", i).Transient {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if got < 0.17 || got > 0.23 {
		t.Fatalf("empirical transient rate %.3f far from configured 0.2", got)
	}
}

// A flap is device-wide: at a given attempt index every cell on the
// device sees the same outage verdict.
func TestPlanFlapCorrelatedAcrossCells(t *testing.T) {
	p := &Plan{Seed: 11, FlapRate: 0.5}
	flapped := false
	for attempt := 1; attempt <= 32; attempt++ {
		a := p.Decide("crc", "tiny", "gtx1080", attempt).Transient
		b := p.Decide("fft", "huge", "gtx1080", attempt).Transient
		if a != b {
			t.Fatalf("attempt %d: flap verdict differs between cells on one device (%v vs %v)", attempt, a, b)
		}
		flapped = flapped || a
	}
	if !flapped {
		t.Fatalf("FlapRate 0.5 never flapped in 32 attempts")
	}
}

func TestPlanStragglerFactorDefault(t *testing.T) {
	p := &Plan{Seed: 5, StragglerRate: 1}
	d := p.Decide("crc", "tiny", "gtx1080", 1)
	if d.SlowFactor != defaultStragglerFactor {
		t.Fatalf("SlowFactor = %g, want default %d", d.SlowFactor, defaultStragglerFactor)
	}
	p.StragglerFactor = 2.5
	if d := p.Decide("crc", "tiny", "gtx1080", 1); d.SlowFactor != 2.5 {
		t.Fatalf("SlowFactor = %g, want 2.5", d.SlowFactor)
	}
}

func TestPlanValidate(t *testing.T) {
	good := &Plan{Seed: 1, TransientRate: 0.2, StragglerFactor: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	for _, bad := range []*Plan{
		{TransientRate: -0.1},
		{TransientRate: 1.5},
		{FlapRate: 2},
		{StragglerRate: -1},
		{PowerDropoutRate: 1.01},
		{StragglerFactor: 0.5},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("invalid plan %+v accepted", bad)
		}
	}
}

func TestZeroPlanInjectsNothing(t *testing.T) {
	p := &Plan{}
	for i := 0; i < 100; i++ {
		if d := p.Decide("b", "s", "d", i); !reflect.DeepEqual(d, Decision{}) {
			t.Fatalf("zero plan produced %+v", d)
		}
	}
}
