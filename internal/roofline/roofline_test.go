package roofline

import (
	"math"
	"strings"
	"testing"

	"opendwarfs/internal/cache"
	"opendwarfs/internal/sim"
)

func spec(t *testing.T, id string) *sim.DeviceSpec {
	t.Helper()
	d, err := sim.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func streamProfile() *sim.KernelProfile {
	return &sim.KernelProfile{
		Name: "stream", WorkItems: 1 << 22,
		FlopsPerItem: 2, LoadBytesPerItem: 16, StoreBytesPerItem: 8,
		WorkingSetBytes: 128 << 20, Pattern: cache.Streaming, Vectorizable: true,
	}
}

func computeProfile() *sim.KernelProfile {
	return &sim.KernelProfile{
		Name: "dense", WorkItems: 1 << 20,
		FlopsPerItem: 4000, LoadBytesPerItem: 16, StoreBytesPerItem: 4,
		WorkingSetBytes: 16 << 20, Pattern: cache.Strided,
		TemporalReuse: 0.9, Vectorizable: true,
	}
}

func TestClassification(t *testing.T) {
	d := spec(t, "gtx1080")
	s, err := Analyze(d, streamProfile())
	if err != nil {
		t.Fatal(err)
	}
	if s.ComputeBound {
		t.Fatal("0.083 flop/B kernel classified compute-bound")
	}
	c, err := Analyze(d, computeProfile())
	if err != nil {
		t.Fatal(err)
	}
	if !c.ComputeBound {
		t.Fatal("200 flop/B kernel classified memory-bound")
	}
	// Ridge point: 8873 GF / 320 GB/s ≈ 27.7 flop/B.
	if math.Abs(c.RidgeFlopPerByte-8873.0/320) > 1e-9 {
		t.Fatalf("ridge %f", c.RidgeFlopPerByte)
	}
}

func TestAttainmentBounds(t *testing.T) {
	for _, id := range []string{"i7-6700k", "gtx1080", "k20m", "knl-7210"} {
		for _, p := range []*sim.KernelProfile{streamProfile(), computeProfile()} {
			b, err := Analyze(spec(t, id), p)
			if err != nil {
				t.Fatal(err)
			}
			if b.Attainment <= 0 || b.Attainment > 1 {
				t.Fatalf("%s/%s attainment %f out of (0,1]", id, p.Name, b.Attainment)
			}
			if b.IdealNs <= 0 || b.ActualNs < b.IdealNs {
				t.Fatalf("%s/%s ideal %f vs actual %f", id, p.Name, b.IdealNs, b.ActualNs)
			}
		}
	}
}

func TestKNLAttainmentLowest(t *testing.T) {
	// The KNL's OpenCL stack realises the smallest fraction of its
	// roofline — the quantitative form of the paper's "performance on the
	// KNL is poor".
	knl, _ := Analyze(spec(t, "knl-7210"), computeProfile())
	i7, _ := Analyze(spec(t, "i7-6700k"), computeProfile())
	gtx, _ := Analyze(spec(t, "gtx1080"), computeProfile())
	if knl.Attainment >= i7.Attainment || knl.Attainment >= gtx.Attainment {
		t.Fatalf("KNL attainment %.3f should be the worst (i7 %.3f, gtx %.3f)",
			knl.Attainment, i7.Attainment, gtx.Attainment)
	}
}

func TestPerformancePortability(t *testing.T) {
	bounds := []Bound{{Attainment: 0.5}, {Attainment: 0.5}}
	if pp := PerformancePortability(bounds); math.Abs(pp-0.5) > 1e-12 {
		t.Fatalf("uniform PP %f", pp)
	}
	// Harmonic mean punishes a single bad device.
	uneven := []Bound{{Attainment: 0.9}, {Attainment: 0.1}}
	if pp := PerformancePortability(uneven); pp > 0.25 {
		t.Fatalf("harmonic mean too generous: %f", pp)
	}
	if PerformancePortability(nil) != 0 {
		t.Fatal("empty set PP")
	}
	if PerformancePortability([]Bound{{Attainment: 0}}) != 0 {
		t.Fatal("failing device must zero PP")
	}
}

func TestAnalyzeAcrossAndReport(t *testing.T) {
	bounds, err := AnalyzeAcross(sim.Devices(), streamProfile())
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != 15 {
		t.Fatalf("%d bounds", len(bounds))
	}
	r := NewReport("stream", bounds)
	if r.PP <= 0 || r.PP > 1 {
		t.Fatalf("suite PP %f", r.PP)
	}
	for i := 1; i < len(r.Bounds); i++ {
		if r.Bounds[i].Attainment > r.Bounds[i-1].Attainment {
			t.Fatal("report not sorted by attainment")
		}
	}
	s := r.String()
	if !strings.Contains(s, "performance portability") || !strings.Contains(s, "attainment") {
		t.Fatalf("report malformed:\n%s", s)
	}
}

func TestAnalyzeRejectsBadProfile(t *testing.T) {
	bad := streamProfile()
	bad.WorkItems = 0
	if _, err := Analyze(spec(t, "gtx1080"), bad); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestZeroTrafficKernel(t *testing.T) {
	p := &sim.KernelProfile{
		Name: "alu", WorkItems: 1 << 16, FlopsPerItem: 100,
		WorkingSetBytes: 1 << 10, Pattern: cache.Streaming, Vectorizable: true,
	}
	b, err := Analyze(spec(t, "gtx1080"), p)
	if err != nil {
		t.Fatal(err)
	}
	if !b.ComputeBound || !math.IsInf(b.IntensityFlopPerByte, 1) {
		t.Fatal("zero-traffic kernel must be compute-bound with infinite AI")
	}
}
