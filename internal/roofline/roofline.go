// Package roofline implements the paper's §7 aspiration to "develop some
// notion of 'ideal' performance for each combination of benchmark and
// device, which would guide efforts to improve performance portability."
//
// For each kernel × device pair it computes the classic roofline bound —
// min(peak compute, arithmetic intensity × peak bandwidth) — and an
// attainment score: the fraction of that bound the modelled (or measured)
// execution achieves. Suite-level performance portability is summarised
// with the harmonic-mean metric of Pennycook, Sewall and Lee, the standard
// formalisation of the idea the paper sketches.
package roofline

import (
	"fmt"
	"math"
	"sort"

	"opendwarfs/internal/sim"
)

// Bound is the ideal-performance analysis of one kernel on one device.
type Bound struct {
	Kernel string
	Device string
	// IntensityFlopPerByte is the kernel's arithmetic intensity.
	IntensityFlopPerByte float64
	// RidgeFlopPerByte is the device's ridge point: peak flops / peak
	// bandwidth. Kernels left of the ridge are bandwidth-bound.
	RidgeFlopPerByte float64
	// ComputeBound reports which side of the ridge the kernel sits on.
	ComputeBound bool
	// IdealNs is the roofline-ideal execution time for the kernel's work.
	IdealNs float64
	// ActualNs is the modelled execution time.
	ActualNs float64
	// Attainment is IdealNs/ActualNs in (0,1]: 1 means the device runs the
	// kernel at its roofline.
	Attainment float64
}

// Analyze computes the roofline bound and attainment for a kernel profile
// on a device.
func Analyze(spec *sim.DeviceSpec, p *sim.KernelProfile) (Bound, error) {
	if err := p.Validate(); err != nil {
		return Bound{}, err
	}
	b := Bound{
		Kernel: p.Name,
		Device: spec.ID,
	}
	flops := float64(p.WorkItems) * p.FlopsPerItem
	iops := float64(p.WorkItems) * p.IntOpsPerItem
	work := flops + iops // treat integer ops at flop cost, as the model does
	bytes := p.TotalBytes()

	peakOps := spec.PeakGFLOPS // GOPS = ops per ns
	peakBW := spec.DRAMBandwidthGBs

	b.IntensityFlopPerByte = math.Inf(1)
	if bytes > 0 {
		b.IntensityFlopPerByte = work / bytes
	}
	b.RidgeFlopPerByte = peakOps / peakBW
	b.ComputeBound = b.IntensityFlopPerByte >= b.RidgeFlopPerByte

	computeNs := work / peakOps
	memoryNs := bytes / peakBW
	b.IdealNs = math.Max(computeNs, memoryNs)

	model := sim.NewModel(spec)
	bd := model.KernelTime(p)
	b.ActualNs = bd.TotalNs
	if b.ActualNs > 0 {
		b.Attainment = b.IdealNs / b.ActualNs
	}
	if b.Attainment > 1 {
		b.Attainment = 1
	}
	return b, nil
}

// AnalyzeAcross evaluates one kernel across a device set.
func AnalyzeAcross(specs []*sim.DeviceSpec, p *sim.KernelProfile) ([]Bound, error) {
	out := make([]Bound, 0, len(specs))
	for _, d := range specs {
		b, err := Analyze(d, p)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// PerformancePortability is the Pennycook–Sewall–Lee metric: the harmonic
// mean of attainment across a device set, or 0 if any device fails to run
// the kernel (attainment 0).
func PerformancePortability(bounds []Bound) float64 {
	if len(bounds) == 0 {
		return 0
	}
	sum := 0.0
	for _, b := range bounds {
		if b.Attainment <= 0 {
			return 0
		}
		sum += 1 / b.Attainment
	}
	return float64(len(bounds)) / sum
}

// Report is a sortable per-device attainment table for one kernel.
type Report struct {
	Kernel string
	Bounds []Bound
	PP     float64
}

// NewReport assembles and sorts an attainment report (best devices first).
func NewReport(kernel string, bounds []Bound) Report {
	sorted := append([]Bound(nil), bounds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Attainment > sorted[j].Attainment })
	return Report{Kernel: kernel, Bounds: sorted, PP: PerformancePortability(bounds)}
}

// String renders the report compactly.
func (r Report) String() string {
	s := fmt.Sprintf("%s: performance portability %.3f\n", r.Kernel, r.PP)
	for _, b := range r.Bounds {
		kind := "memory-bound"
		if b.ComputeBound {
			kind = "compute-bound"
		}
		s += fmt.Sprintf("  %-12s attainment %5.3f  ideal %10.1f ns  actual %10.1f ns  (%s, AI %.2f vs ridge %.2f)\n",
			b.Device, b.Attainment, b.IdealNs, b.ActualNs, kind, b.IntensityFlopPerByte, b.RidgeFlopPerByte)
	}
	return s
}
