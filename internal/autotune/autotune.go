// Package autotune implements the work-group-size autotuning the paper
// plans in §7: "certain configuration parameters for the benchmarks, e.g.
// local workgroup size, are amenable to auto-tuning. We plan to integrate
// auto-tuning into the benchmarking framework to provide confidence that the
// optimal parameters are used for each combination of code and accelerator."
//
// The tuner extends the device timing model with the launch-configuration
// effects the base model abstracts away: SIMD/wavefront alignment of the
// work-group size, per-compute-unit group residency limits, and tail
// quantisation of the group grid.
package autotune

import (
	"fmt"
	"sort"

	"opendwarfs/internal/sim"
)

// WarpSize returns the native SIMT/SIMD granularity a work-group should be
// a multiple of: 32 on Nvidia, 64 on GCN AMD, the vector width on CPUs and
// the KNL.
func WarpSize(spec *sim.DeviceSpec) int {
	switch {
	case spec.Vendor == "Nvidia":
		return 32
	case spec.Vendor == "AMD":
		return 64
	case spec.Class == sim.MIC:
		return 16
	default:
		return 8
	}
}

// maxGroupsPerCU is the per-compute-unit group residency limit common to
// the era's hardware.
const maxGroupsPerCU = 16

// maxGroupSize is the CL_DEVICE_MAX_WORK_GROUP_SIZE analogue.
const maxGroupSize = 1024

// Candidate is one evaluated launch configuration.
type Candidate struct {
	LocalSize int
	// Efficiency in (0,1]: the fraction of the base-model throughput this
	// configuration achieves.
	Efficiency float64
	// PredictedNs is the adjusted kernel-time estimate.
	PredictedNs float64
}

// Efficiency scores a local size for a kernel launch on a device.
//
// Three multiplicative terms:
//   - alignment: a group occupies ceil(local/warp) warps; partial warps
//     idle lanes.
//   - residency: at least maxGroupsPerCU groups of `local` items must fit
//     to cover a compute unit's latency-hiding appetite (min(1, …)).
//   - tail: the group grid quantises the global size; the last wave of
//     groups may be mostly empty.
func Efficiency(spec *sim.DeviceSpec, globalSize, localSize int) (float64, error) {
	if localSize <= 0 || localSize > maxGroupSize {
		return 0, fmt.Errorf("autotune: local size %d out of (0,%d]", localSize, maxGroupSize)
	}
	if globalSize <= 0 || globalSize%localSize != 0 {
		return 0, fmt.Errorf("autotune: global size %d not a multiple of local %d", globalSize, localSize)
	}
	warp := WarpSize(spec)

	fullWarps := (localSize + warp - 1) / warp
	alignment := float64(localSize) / float64(fullWarps*warp)

	// Latency hiding: each CU wants enough resident work-items; small
	// groups hit the residency limit before filling the pipelines.
	wanted := warp * 8
	resident := localSize * maxGroupsPerCU
	residency := float64(resident) / float64(wanted)
	if residency > 1 {
		residency = 1
	}

	// Tail quantisation across CUs.
	groups := globalSize / localSize
	waves := (groups + spec.CUs - 1) / spec.CUs
	tail := float64(groups) / float64(waves*spec.CUs)
	if tail > 1 {
		tail = 1
	}

	return alignment * residency * tail, nil
}

// Sweep evaluates all power-of-two local sizes that divide the global size,
// returning candidates sorted best-first.
func Sweep(spec *sim.DeviceSpec, profile *sim.KernelProfile, globalSize int) ([]Candidate, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	model := sim.NewModel(spec)
	base := model.KernelTime(profile).TotalNs
	var out []Candidate
	for local := 1; local <= maxGroupSize && local <= globalSize; local <<= 1 {
		if globalSize%local != 0 {
			continue
		}
		eff, err := Efficiency(spec, globalSize, local)
		if err != nil {
			return nil, err
		}
		out = append(out, Candidate{
			LocalSize:   local,
			Efficiency:  eff,
			PredictedNs: base / eff,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("autotune: no legal power-of-two local size divides %d", globalSize)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PredictedNs < out[j].PredictedNs })
	return out, nil
}

// Best returns the winning configuration of a sweep.
func Best(spec *sim.DeviceSpec, profile *sim.KernelProfile, globalSize int) (Candidate, error) {
	cs, err := Sweep(spec, profile, globalSize)
	if err != nil {
		return Candidate{}, err
	}
	return cs[0], nil
}
