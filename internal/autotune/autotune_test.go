package autotune

import (
	"testing"

	"opendwarfs/internal/cache"
	"opendwarfs/internal/sim"
)

func spec(t *testing.T, id string) *sim.DeviceSpec {
	t.Helper()
	d, err := sim.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func profile() *sim.KernelProfile {
	return &sim.KernelProfile{
		Name: "stencil", WorkItems: 1 << 20,
		FlopsPerItem: 30, LoadBytesPerItem: 24, StoreBytesPerItem: 4,
		WorkingSetBytes: 1 << 24, Pattern: cache.Stencil,
		TemporalReuse: 0.5, Vectorizable: true,
	}
}

func TestWarpSizes(t *testing.T) {
	if WarpSize(spec(t, "gtx1080")) != 32 {
		t.Error("Nvidia warp")
	}
	if WarpSize(spec(t, "r9-290x")) != 64 {
		t.Error("AMD wavefront")
	}
	if WarpSize(spec(t, "i7-6700k")) != 8 {
		t.Error("CPU SIMD")
	}
	if WarpSize(spec(t, "knl-7210")) != 16 {
		t.Error("KNL SIMD")
	}
}

func TestEfficiencyPrefersWarpMultiples(t *testing.T) {
	d := spec(t, "gtx1080")
	aligned, err := Efficiency(d, 1<<20, 64)
	if err != nil {
		t.Fatal(err)
	}
	// 48 items occupies two warps but fills only 1.5.
	misaligned, err := Efficiency(d, 48*1024, 48)
	if err != nil {
		t.Fatal(err)
	}
	if misaligned >= aligned {
		t.Fatalf("48-item groups (%f) should underperform 64 (%f) on a 32-wide device", misaligned, aligned)
	}
}

func TestEfficiencyPenalisesTinyGroups(t *testing.T) {
	d := spec(t, "r9-290x")
	tiny, _ := Efficiency(d, 1<<20, 1)
	good, _ := Efficiency(d, 1<<20, 256)
	if tiny >= good {
		t.Fatalf("singleton groups (%f) should underperform 256 (%f)", tiny, good)
	}
}

func TestEfficiencyValidation(t *testing.T) {
	d := spec(t, "gtx1080")
	if _, err := Efficiency(d, 1000, 64); err == nil {
		t.Fatal("non-divisible global accepted")
	}
	if _, err := Efficiency(d, 1024, 0); err == nil {
		t.Fatal("zero local accepted")
	}
	if _, err := Efficiency(d, 4096, 2048); err == nil {
		t.Fatal("over-limit local accepted")
	}
}

func TestSweepOrdersByPredictedTime(t *testing.T) {
	d := spec(t, "gtx1080")
	cs, err := Sweep(d, profile(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) < 8 {
		t.Fatalf("only %d candidates", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i].PredictedNs < cs[i-1].PredictedNs {
			t.Fatal("sweep not sorted best-first")
		}
	}
	best, err := Best(d, profile(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if best.LocalSize != cs[0].LocalSize {
		t.Fatal("Best disagrees with Sweep")
	}
	// On a 32-wide SIMT device the winner must be a warp multiple ≥ 64.
	if best.LocalSize%32 != 0 {
		t.Fatalf("best local size %d not warp aligned", best.LocalSize)
	}
}

func TestSweepDeviceDependence(t *testing.T) {
	// The tuned group size differs between a 64-wide AMD GCN part and an
	// 8-wide CPU — the reason the paper wants per-device tuning (§7).
	amdBest, err := Best(spec(t, "r9-290x"), profile(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if amdBest.LocalSize%64 != 0 {
		t.Fatalf("AMD best %d not wavefront aligned", amdBest.LocalSize)
	}
	cpuBest, err := Best(spec(t, "i7-6700k"), profile(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if cpuBest.Efficiency <= 0 {
		t.Fatal("CPU sweep degenerate")
	}
}

func TestSweepRejectsBadProfile(t *testing.T) {
	bad := profile()
	bad.WorkItems = 0
	if _, err := Sweep(spec(t, "gtx1080"), bad, 1<<20); err == nil {
		t.Fatal("invalid profile accepted")
	}
}
