package sim

import (
	"math"
	"testing"
	"testing/quick"

	"opendwarfs/internal/cache"
)

func TestRegistryComposition(t *testing.T) {
	devs := Devices()
	if len(devs) != 15 {
		t.Fatalf("catalogue has %d devices, want 15 (Table 1)", len(devs))
	}
	counts := map[Class]int{}
	vendors := map[string]int{}
	for _, d := range devs {
		if err := d.Validate(); err != nil {
			t.Errorf("device %s invalid: %v", d.ID, err)
		}
		counts[d.Class]++
		vendors[d.Vendor]++
	}
	// Paper §4.1: three Intel CPUs, five Nvidia GPUs, six AMD GPUs, one MIC.
	if counts[CPU] != 3 {
		t.Errorf("CPU count %d, want 3", counts[CPU])
	}
	if counts[MIC] != 1 {
		t.Errorf("MIC count %d, want 1", counts[MIC])
	}
	if got := counts[ConsumerGPU] + counts[HPCGPU]; got != 11 {
		t.Errorf("GPU count %d, want 11", got)
	}
	if vendors["Nvidia"] != 5 {
		t.Errorf("Nvidia count %d, want 5", vendors["Nvidia"])
	}
	if vendors["AMD"] != 6 {
		t.Errorf("AMD count %d, want 6", vendors["AMD"])
	}
	if vendors["Intel"] != 4 {
		t.Errorf("Intel count %d, want 4", vendors["Intel"])
	}
}

func TestRegistryUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range Devices() {
		if seen[d.ID] {
			t.Errorf("duplicate device ID %s", d.ID)
		}
		seen[d.ID] = true
	}
}

func TestLookup(t *testing.T) {
	d, err := Lookup("i7-6700k")
	if err != nil {
		t.Fatal(err)
	}
	if d.Series != "Skylake" {
		t.Fatalf("i7-6700k series %q", d.Series)
	}
	if _, err := Lookup("GTX 1080"); err != nil {
		t.Fatalf("lookup by full name failed: %v", err)
	}
	if _, err := Lookup("rtx9090"); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestByClass(t *testing.T) {
	if got := len(ByClass(HPCGPU)); got != 3 {
		t.Fatalf("HPC GPU count %d, want 3 (K20m, K40m, S9150)", got)
	}
	if got := len(ByClass(CPU)); got != 3 {
		t.Fatalf("CPU count %d, want 3", got)
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{CPU: "CPU", ConsumerGPU: "Consumer GPU", HPCGPU: "HPC GPU", MIC: "MIC", Class(9): "unknown"} {
		if c.String() != want {
			t.Errorf("Class(%d) = %q, want %q", c, c.String(), want)
		}
	}
	if CPU.IsGPU() || !ConsumerGPU.IsGPU() || !HPCGPU.IsGPU() || MIC.IsGPU() {
		t.Error("IsGPU misclassifies")
	}
}

func TestSkylakeHierarchyMatchesPaperSizing(t *testing.T) {
	d, _ := Lookup("i7-6700k")
	h := d.Hierarchy()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table 1 / §4.4: tiny=32 KiB L1 per core, 256 KiB L2 per core,
	// 8192 KiB shared L3.
	if h.Levels[2].SizeKiB != 8192 {
		t.Fatalf("Skylake L3 %f KiB, want 8192", h.Levels[2].SizeKiB)
	}
}

func mustModel(t *testing.T, id string) *Model {
	t.Helper()
	d, err := Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	return NewModel(d)
}

// A srad-like profile: bandwidth-bound stencil over a large grid.
func sradLikeProfile(items int64) *KernelProfile {
	return &KernelProfile{
		Name: "stencil", WorkItems: items,
		FlopsPerItem: 20, LoadBytesPerItem: 40, StoreBytesPerItem: 8,
		WorkingSetBytes: items * 48, Pattern: cache.Stencil,
		TemporalReuse: 0.6, Vectorizable: true,
	}
}

// A crc-like profile: serial table-driven integer code, no vectorization.
// Loads include the per-byte table lookups, as the real crc profile does.
func crcLikeProfile(items int64, bytesPerItem float64) *KernelProfile {
	return &KernelProfile{
		Name: "crc", WorkItems: items,
		IntOpsPerItem: bytesPerItem * 7, LoadBytesPerItem: bytesPerItem * 5,
		WorkingSetBytes: int64(float64(items) * bytesPerItem), Pattern: cache.Streaming,
		TemporalReuse: 0.8, Vectorizable: false,
	}
}

func TestDivergentComputeCodeFavoursGPUs(t *testing.T) {
	// Fig. 4b: nqueens (register-resident integer backtracking) runs
	// faster on GPUs than CPUs, unlike crc — the arithmetic-intensity
	// warp-boost separates the two scalar-code regimes.
	cpu := mustModel(t, "i7-6700k")
	gpu := mustModel(t, "gtx1080")
	p := &KernelProfile{
		Name: "nqueens", WorkItems: 48 << 10,
		IntOpsPerItem: 1.7e7, LoadBytesPerItem: 12, StoreBytesPerItem: 8,
		WorkingSetBytes: 1 << 19, Pattern: cache.Streaming,
		TemporalReuse: 0.9, Divergence: 0.5, Vectorizable: false,
	}
	tc := cpu.KernelTime(p).TotalNs
	tg := gpu.KernelTime(p).TotalNs
	if tg >= tc {
		t.Fatalf("GPU (%.3g ns) should beat CPU (%.3g ns) on divergent register-resident code", tg, tc)
	}
	if tc/tg > 10 {
		t.Fatalf("GPU advantage %.1fx implausibly large for divergent code (paper shows ~3x)", tc/tg)
	}
}

func TestGPUWinsBandwidthBoundStencil(t *testing.T) {
	cpu := mustModel(t, "i7-6700k")
	gpu := mustModel(t, "gtx1080")
	p := sradLikeProfile(2048 * 1024)
	tc := cpu.KernelTime(p).TotalNs
	tg := gpu.KernelTime(p).TotalNs
	if tg >= tc {
		t.Fatalf("GPU (%.0f ns) should beat CPU (%.0f ns) on a large bandwidth-bound stencil (Fig. 3a)", tg, tc)
	}
	// The gap should be roughly the bandwidth ratio (~9x), certainly >3x.
	if tc/tg < 3 {
		t.Fatalf("CPU/GPU ratio %.1f too small for a bandwidth-bound kernel", tc/tg)
	}
}

func TestCPUWinsSerialIntegerCode(t *testing.T) {
	// Fig. 1: crc executes fastest on CPU-type architectures.
	cpu := mustModel(t, "i7-6700k")
	for _, gid := range []string{"gtx1080", "k20m", "r9-290x", "knl-7210"} {
		gpu := mustModel(t, gid)
		p := crcLikeProfile(4096, 1024)
		tc := cpu.KernelTime(p).TotalNs
		tg := gpu.KernelTime(p).TotalNs
		if tc >= tg {
			t.Errorf("crc-like kernel: CPU (%.0f ns) should beat %s (%.0f ns)", tc, gid, tg)
		}
	}
}

func TestKNLPoorOnVectorCode(t *testing.T) {
	// §4.2/§5.1: KNL floating-point is crippled by the OpenCL stack.
	knl := mustModel(t, "knl-7210")
	cpu := mustModel(t, "i7-6700k")
	p := sradLikeProfile(1024 * 336)
	if knl.KernelTime(p).TotalNs <= cpu.KernelTime(p).TotalNs {
		t.Fatal("KNL should not beat the Skylake CPU on vector code under the Intel OpenCL stack")
	}
}

func TestTimeMonotoneInWork(t *testing.T) {
	m := mustModel(t, "gtx1080")
	prev := 0.0
	for _, items := range []int64{1 << 10, 1 << 14, 1 << 18, 1 << 22} {
		tt := m.KernelTime(sradLikeProfile(items)).TotalNs
		if tt <= prev {
			t.Fatalf("time not increasing with work: %d items -> %.0f ns (prev %.0f)", items, tt, prev)
		}
		prev = tt
	}
}

func TestLaunchOverheadDominatesTinyGPUKernels(t *testing.T) {
	m := mustModel(t, "gtx1080")
	b := m.KernelTime(sradLikeProfile(256))
	if b.LaunchNs < 0.5*b.TotalNs {
		t.Fatalf("tiny kernel should be launch-dominated on a GPU: launch %.0f of %.0f ns", b.LaunchNs, b.TotalNs)
	}
}

func TestAMDLaunchOverheadExceedsNvidia(t *testing.T) {
	// The Fig. 3b mechanism: AMD's per-enqueue cost is higher.
	amd, _ := Lookup("r9-290x")
	nv, _ := Lookup("gtx1080")
	intel, _ := Lookup("i7-6700k")
	if amd.LaunchOverheadUs <= nv.LaunchOverheadUs {
		t.Fatal("AMD launch overhead should exceed Nvidia's")
	}
	if amd.LaunchOverheadUs <= intel.LaunchOverheadUs {
		t.Fatal("AMD launch overhead should exceed Intel's")
	}
}

func TestDivergenceSlowsKernels(t *testing.T) {
	m := mustModel(t, "gtx1080")
	// Compute-bound profile so the compute term is the binding constraint.
	p := &KernelProfile{
		Name: "nqueens", WorkItems: 1 << 20,
		IntOpsPerItem: 5000, LoadBytesPerItem: 8,
		WorkingSetBytes: 1 << 20, Pattern: cache.Random, Vectorizable: true,
	}
	base := m.KernelTime(p).TotalNs
	p.Divergence = 1
	if div := m.KernelTime(p).TotalNs; div <= base {
		t.Fatalf("full divergence should slow the kernel: %.0f <= %.0f", div, base)
	}
}

func TestSerialFractionCost(t *testing.T) {
	m := mustModel(t, "gtx1080")
	p := sradLikeProfile(1 << 20)
	base := m.KernelTime(p)
	p.SerialFraction = 0.1
	ser := m.KernelTime(p)
	if ser.TotalNs <= base.TotalNs {
		t.Fatal("serial fraction should add time")
	}
	if ser.SerialNs <= 0 {
		t.Fatal("serial term not reported")
	}
}

func TestTransferTime(t *testing.T) {
	m := mustModel(t, "gtx1080")
	small := m.TransferTime(64)
	big := m.TransferTime(64 << 20)
	if small <= 0 || big <= small {
		t.Fatalf("transfer times implausible: %f, %f", small, big)
	}
	// 64 MiB over ~12 GB/s PCIe ≈ 5.6 ms.
	if big < 3e6 || big > 2e7 {
		t.Fatalf("64 MiB transfer = %.0f ns, expected ~5.6e6", big)
	}
}

func TestUtilizationRange(t *testing.T) {
	f := func(items uint32, flops, bytes float64) bool {
		m := NewModel(registry[3])
		p := &KernelProfile{
			Name: "q", WorkItems: int64(items%1e6) + 1,
			FlopsPerItem:     math.Abs(math.Mod(flops, 1000)),
			LoadBytesPerItem: math.Abs(math.Mod(bytes, 1000)),
			WorkingSetBytes:  1 << 20, Pattern: cache.Streaming, Vectorizable: true,
		}
		b := m.KernelTime(p)
		u := m.Utilization(b)
		return u >= 0 && u <= 1 && b.TotalNs > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProfileValidate(t *testing.T) {
	good := sradLikeProfile(100)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*KernelProfile{
		{Name: "n", WorkItems: 0},
		{Name: "n", WorkItems: 1, FlopsPerItem: -1},
		{Name: "n", WorkItems: 1, Divergence: 2},
		{Name: "n", WorkItems: 1, SerialFraction: -0.1},
		{Name: "n", WorkItems: 1, TemporalReuse: 1.5},
		{Name: "n", WorkItems: 1, LoadBytesPerItem: -4},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

func TestProfileDerived(t *testing.T) {
	p := &KernelProfile{WorkItems: 10, FlopsPerItem: 4, IntOpsPerItem: 1, LoadBytesPerItem: 8, StoreBytesPerItem: 2}
	if got := p.TotalOps(); got != 50 {
		t.Fatalf("TotalOps=%f, want 50", got)
	}
	if got := p.TotalBytes(); got != 100 {
		t.Fatalf("TotalBytes=%f, want 100", got)
	}
	if got := p.ArithmeticIntensity(); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("AI=%f, want 0.4", got)
	}
	zero := &KernelProfile{WorkItems: 1}
	if zero.ArithmeticIntensity() != 0 {
		t.Fatal("zero-traffic AI should be 0")
	}
}

func TestNoiseCVOrdering(t *testing.T) {
	// §5.1: lower-clock devices show greater CV, regardless of type.
	i7, _ := Lookup("i7-6700k")
	k20, _ := Lookup("k20m")
	if k20.CV() <= i7.CV() {
		t.Fatalf("K20m (706 MHz) CV %.4f should exceed i7-6700K (4.3 GHz) CV %.4f", k20.CV(), i7.CV())
	}
}

func TestNoiseDeterministic(t *testing.T) {
	d, _ := Lookup("gtx1080")
	a := NewNoise(d, "kmeans/tiny")
	b := NewNoise(d, "kmeans/tiny")
	for i := 0; i < 10; i++ {
		if a.Sample(1e6, 1) != b.Sample(1e6, 1) {
			t.Fatal("same-seed noise streams diverge")
		}
	}
	c := NewNoise(d, "kmeans/small")
	same := true
	for i := 0; i < 10; i++ {
		if a.Sample(1e6, 1) != c.Sample(1e6, 1) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestNoiseStatistics(t *testing.T) {
	d, _ := Lookup("k20m")
	no := NewNoise(d, "stats")
	const n = 20000
	mean, m2 := 0.0, 0.0
	for i := 1; i <= n; i++ {
		x := no.Sample(1e6, 1)
		if x <= 0 {
			t.Fatal("non-positive noisy sample")
		}
		delta := x - mean
		mean += delta / float64(i)
		m2 += delta * (x - mean)
	}
	sd := math.Sqrt(m2 / float64(n-1))
	cv := sd / mean
	want := d.CV()
	if math.Abs(mean-1e6)/1e6 > 0.02 {
		t.Fatalf("noisy mean %.0f drifted from 1e6", mean)
	}
	if math.Abs(cv-want)/want > 0.15 {
		t.Fatalf("empirical CV %.4f, want ~%.4f", cv, want)
	}
}

func TestNoiseAveragingShrinksVariance(t *testing.T) {
	d, _ := Lookup("k20m")
	spread := func(iters int) float64 {
		no := NewNoise(d, "avg")
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 500; i++ {
			x := no.Sample(1e6, iters)
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		return hi - lo
	}
	if spread(100) >= spread(1) {
		t.Fatal("averaging over iterations should shrink sample spread")
	}
}

func TestSampleEnergyNonNegative(t *testing.T) {
	d, _ := Lookup("gtx1080")
	no := NewNoise(d, "energy")
	for i := 0; i < 1000; i++ {
		if e := no.SampleEnergy(0.5, 2.0, 5); e < 0 {
			t.Fatal("negative energy sample")
		}
	}
	if no.SampleEnergy(0, 1, 5) != 0 {
		t.Fatal("zero mean energy should sample to zero")
	}
}

func TestZeroProfileSafe(t *testing.T) {
	m := mustModel(t, "i7-6700k")
	b := m.KernelTime(&KernelProfile{Name: "empty", WorkItems: 1, Vectorizable: true})
	if b.TotalNs < b.LaunchNs {
		t.Fatal("total cannot be below launch overhead")
	}
	if no := NewNoise(m.Spec, "z"); no.Sample(0, 1) != 0 {
		t.Fatal("zero-mean sample should be zero")
	}
}
