package sim

import (
	"math"

	"opendwarfs/internal/cache"
)

// Model converts kernel profiles into time/energy estimates for one device.
type Model struct {
	Spec      *DeviceSpec
	hierarchy cache.Hierarchy
}

// NewModel builds a model for the given device spec.
func NewModel(spec *DeviceSpec) *Model {
	return &Model{Spec: spec, hierarchy: spec.Hierarchy()}
}

// Breakdown explains one kernel-time estimate.
type Breakdown struct {
	LaunchNs   float64
	ComputeNs  float64
	MemoryNs   float64
	SerialNs   float64
	TotalNs    float64
	Traffic    cache.Traffic
	Occupancy  float64 // fraction of lanes kept busy
	ComputeBnd bool    // whether the compute term dominated
}

// KernelTime estimates the duration of a single launch of the profiled
// kernel on the device, in nanoseconds, without noise.
//
// time = launch + serial + max(compute, memory)
//
// compute: total ops over the device's effective rate. Vectorizable kernels
// run at PeakGFLOPS × VectorEff × occupancy × divergence penalty;
// non-vectorizable kernels run one work-item per compute unit at scalar IPC.
// memory: total traffic resolved through the cache hierarchy.
// serial: the Amdahl fraction executes on a single lane at scalar rate.
func (m *Model) KernelTime(p *KernelProfile) Breakdown {
	d := m.Spec
	var b Breakdown
	b.LaunchNs = d.LaunchOverheadUs * 1e3

	totalOps := p.TotalOps()
	serialOps := totalOps * p.SerialFraction
	parallelOps := totalOps - serialOps

	// Occupancy: fraction of the machine the launch can fill. Work is
	// quantized into waves of `width` items.
	width := float64(d.Lanes)
	if !p.Vectorizable {
		width = float64(d.CUs)
	}
	items := float64(p.WorkItems)
	waves := math.Ceil(items / width)
	b.Occupancy = items / (waves * width)

	// Effective compute rate in GOPS (= ops/ns).
	var rateGOPS float64
	if p.Vectorizable {
		rateGOPS = d.PeakGFLOPS * d.VectorEff
	} else {
		rateGOPS = float64(d.CUs) * d.ClockGHz() * d.ScalarIPC
		if d.Class.IsGPU() {
			// Divergent scalar code on a GPU still extracts partial SIMT
			// parallelism when it is register-resident (nqueens-style
			// backtracking), but byte-granular table lookups (crc-style)
			// serialise on bank replays and gain almost nothing. Scale a
			// warp boost by arithmetic intensity to separate the two
			// regimes; the knee sits far above crc's ~1.4 ops/byte.
			ai := (p.FlopsPerItem + p.IntOpsPerItem) / (p.LoadBytesPerItem + p.StoreBytesPerItem + 1)
			rateGOPS *= 1 + 5*ai/(ai+200)
		}
	}
	rateGOPS *= b.Occupancy
	// Divergent branches force both sides of a wave: up to 2x work.
	rateGOPS /= 1 + p.Divergence
	if rateGOPS > 0 && parallelOps > 0 {
		b.ComputeNs = parallelOps / rateGOPS
	}

	// Serial portion runs on one lane at scalar rate.
	if serialOps > 0 {
		scalar := d.ClockGHz() * d.ScalarIPC
		b.SerialNs = serialOps / scalar
	}

	// Memory term.
	b.Traffic = m.hierarchy.Resolve(cache.Request{
		TotalBytes:      p.TotalBytes(),
		WorkingSetBytes: float64(p.WorkingSetBytes),
		Pattern:         p.Pattern,
		TemporalReuse:   p.TemporalReuse,
	})
	b.MemoryNs = b.Traffic.TimeNs
	if d.Class != CPU && p.Coalescing > 0 && p.Coalescing < 1 {
		// Uncoalesced per-lane layouts waste most of each transaction on
		// GPU-style memory systems; CPU prefetchers are immune.
		b.MemoryNs /= p.Coalescing
	}
	if b.Occupancy > 0 && b.Occupancy < 1 && d.Class != CPU {
		// Under-occupied accelerators cannot saturate their memory system
		// either; cap the achievable fraction at 4 waves' worth of lanes.
		f := math.Min(1, (items/width)/4+0.25)
		b.MemoryNs /= f
	}

	b.ComputeBnd = b.ComputeNs >= b.MemoryNs
	b.TotalNs = b.LaunchNs + b.SerialNs + math.Max(b.ComputeNs, b.MemoryNs)
	return b
}

// TransferTime estimates a host↔device buffer transfer of n bytes, in
// nanoseconds, including a fixed submission overhead.
func (m *Model) TransferTime(bytes int64) float64 {
	const submitNs = 3e3
	return submitNs + float64(bytes)/m.Spec.TransferGBs
}

// Utilization estimates the active-power fraction for a kernel breakdown:
// compute-bound kernels drive the device near TDP, memory-bound kernels burn
// less in the ALUs, and under-occupied launches idle most of the chip.
func (m *Model) Utilization(b Breakdown) float64 {
	if b.TotalNs <= 0 {
		return 0
	}
	busy := math.Max(b.ComputeNs, b.MemoryNs) / b.TotalNs
	balance := 0.55
	if b.ComputeBnd {
		balance = 1.0
	} else if b.MemoryNs > 0 {
		// Memory-bound: ALUs stalled part of the time.
		balance = 0.55 + 0.35*math.Min(1, b.ComputeNs/b.MemoryNs)
	}
	return busy * balance * (0.35 + 0.65*b.Occupancy)
}
