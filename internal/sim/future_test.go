package sim

import (
	"strings"
	"testing"

	"opendwarfs/internal/cache"
)

func TestFutureCatalogue(t *testing.T) {
	devs := FutureDevices()
	if len(devs) != 3 {
		t.Fatalf("%d future devices, want 3 (FPGA, DSP, APU per §7)", len(devs))
	}
	classes := map[Class]bool{}
	for _, d := range devs {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.ID, err)
		}
		classes[d.Class] = true
	}
	for _, c := range []Class{FPGA, DSP, APU} {
		if !classes[c] {
			t.Errorf("class %v missing from the future catalogue", c)
		}
	}
}

func TestFutureDevicesNotInTable1(t *testing.T) {
	// The paper's evaluation covers exactly the Table 1 platforms; the §7
	// parts must stay out of Devices() and Lookup().
	if len(Devices()) != 15 {
		t.Fatal("future devices leaked into the Table 1 catalogue")
	}
	if _, err := Lookup("arria10"); err == nil {
		t.Fatal("Lookup must not resolve future devices")
	}
	if _, err := LookupFuture("arria10"); err != nil {
		t.Fatalf("LookupFuture failed: %v", err)
	}
	if _, err := LookupFuture("i7-6700k"); err != nil {
		t.Fatalf("LookupFuture must also cover Table 1: %v", err)
	}
	if _, err := LookupFuture("hal9000"); err == nil {
		t.Fatal("unknown device accepted")
	} else if !strings.Contains(err.Error(), "arria10") {
		t.Fatalf("error should list the future catalogue: %v", err)
	}
}

func TestFutureClassStrings(t *testing.T) {
	for c, want := range map[Class]string{FPGA: "FPGA", DSP: "DSP", APU: "APU"} {
		if c.String() != want {
			t.Errorf("%d -> %q", c, c.String())
		}
		if c.IsGPU() {
			t.Errorf("%v misclassified as GPU", c)
		}
	}
}

func TestAPUBreaksTransferWall(t *testing.T) {
	// §7: integrated APUs "break down the walls between the CPU and GPU":
	// cheap launches and fast (zero-copy-style) transfers compared to the
	// discrete parts.
	apu, err := LookupFuture("a10-7850k")
	if err != nil {
		t.Fatal(err)
	}
	discrete, _ := Lookup("r9-290x")
	if apu.LaunchOverheadUs >= discrete.LaunchOverheadUs {
		t.Fatal("APU launches should be cheaper than discrete AMD")
	}
	if apu.TransferGBs <= discrete.TransferGBs {
		t.Fatal("APU transfers should beat PCIe")
	}
}

func TestFPGAProfileOnStreamingKernel(t *testing.T) {
	// FPGAs pipeline streaming kernels efficiently but pay heavily per
	// launch: a tiny launch must be overhead-dominated, a huge streaming
	// kernel bandwidth-limited.
	fpga, err := LookupFuture("arria10")
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(fpga)
	tiny := m.KernelTime(&KernelProfile{
		Name: "s", WorkItems: 256, FlopsPerItem: 2, LoadBytesPerItem: 8,
		WorkingSetBytes: 2 << 10, Pattern: cache.Streaming, Vectorizable: true,
	})
	if tiny.LaunchNs < 0.5*tiny.TotalNs {
		t.Fatalf("tiny FPGA kernel should be launch-dominated: launch %.0f of %.0f", tiny.LaunchNs, tiny.TotalNs)
	}
	huge := m.KernelTime(&KernelProfile{
		Name: "s", WorkItems: 1 << 24, FlopsPerItem: 2, LoadBytesPerItem: 16, StoreBytesPerItem: 8,
		WorkingSetBytes: 512 << 20, Pattern: cache.Streaming, Vectorizable: true,
	})
	if huge.ComputeBnd {
		t.Fatal("huge streaming kernel on a 34 GB/s FPGA must be memory-bound")
	}
}

func TestDSPEnergyFrugality(t *testing.T) {
	// The 14 W Keystone II should use less energy than the i7 on a
	// bandwidth-light kernel even though it is slower.
	dsp, _ := LookupFuture("keystone2")
	cpu, _ := Lookup("i7-6700k")
	p := &KernelProfile{
		Name: "k", WorkItems: 1 << 16, FlopsPerItem: 50, LoadBytesPerItem: 8,
		WorkingSetBytes: 1 << 20, Pattern: cache.Streaming, TemporalReuse: 0.6,
		Vectorizable: true,
	}
	dm, cm := NewModel(dsp), NewModel(cpu)
	db, cb := dm.KernelTime(p), cm.KernelTime(p)
	if db.TotalNs <= cb.TotalNs {
		t.Fatal("the DSP should be slower than the i7")
	}
	// Energy ∝ P·t with TDP 14 vs 91 W: the ~6.5x power gap must beat the
	// time gap on this light kernel.
	dEnergy := db.TotalNs * dsp.TDPWatts
	cEnergy := cb.TotalNs * cpu.TDPWatts
	if dEnergy >= cEnergy {
		t.Fatalf("DSP energy proxy %.3g should undercut CPU %.3g", dEnergy, cEnergy)
	}
}
