package sim

import (
	"fmt"

	"opendwarfs/internal/cache"
)

// KernelProfile is the architecture-independent workload characterisation of
// one kernel launch. Every dwarf benchmark computes one of these per enqueue;
// the Model turns it into a per-device time estimate and counter set.
//
// The fields mirror what the paper's AIWC tool (§7) extracts from real
// kernels: operation mix, memory traffic and footprint, access pattern,
// branch behaviour and available parallelism.
type KernelProfile struct {
	// Name identifies the kernel for logs and counter reports.
	Name string
	// WorkItems is the global NDRange size of the launch.
	WorkItems int64

	// FlopsPerItem and IntOpsPerItem are the per-work-item operation
	// counts (single-precision flops and integer/logical ops).
	FlopsPerItem  float64
	IntOpsPerItem float64

	// LoadBytesPerItem and StoreBytesPerItem are per-work-item global
	// memory traffic before caching.
	LoadBytesPerItem  float64
	StoreBytesPerItem float64

	// WorkingSetBytes is the device-side footprint the kernel cycles over —
	// the quantity the paper's §4.4 sizing methodology controls (Eq. 1).
	WorkingSetBytes int64
	// Pattern is the dominant access pattern.
	Pattern cache.Pattern
	// TemporalReuse is the fraction of accesses with immediate reuse that
	// hit the first level regardless of footprint.
	TemporalReuse float64

	// BranchesPerItem is the number of conditional branches per item.
	BranchesPerItem float64
	// Divergence in [0,1] is the fraction of branch decisions that split a
	// SIMD/SIMT group (costing both paths) — e.g. bounds tests in nqueens.
	Divergence float64

	// Coalescing in (0,1] is the fraction of peak memory throughput a
	// GPU-style memory system achieves given the kernel's per-lane access
	// layout. Row-per-work-item layouts (kmeans reading 26 consecutive
	// floats per point) defeat coalescing entirely; zero means "unset" and
	// is treated as 1. CPUs are unaffected — their prefetchers like exactly
	// the layouts GPU coalescers hate.
	Coalescing float64

	// Vectorizable reports whether the kernel's inner work maps onto SIMD
	// lanes. Table-driven byte-serial codes such as crc do not: they run
	// one item per compute unit at scalar IPC, which is why CPUs win the
	// Combinational Logic dwarf (Fig. 1).
	Vectorizable bool
	// SerialFraction in [0,1] is the fraction of total operations that are
	// inherently sequential within the launch (Amdahl term): reduction
	// tails, small wavefront diagonals, etc.
	SerialFraction float64
}

// Validate reports an error for ill-formed profiles.
func (p *KernelProfile) Validate() error {
	switch {
	case p.WorkItems <= 0:
		return fmt.Errorf("sim: profile %q: no work items", p.Name)
	case p.FlopsPerItem < 0 || p.IntOpsPerItem < 0:
		return fmt.Errorf("sim: profile %q: negative op counts", p.Name)
	case p.LoadBytesPerItem < 0 || p.StoreBytesPerItem < 0:
		return fmt.Errorf("sim: profile %q: negative traffic", p.Name)
	case p.Divergence < 0 || p.Divergence > 1:
		return fmt.Errorf("sim: profile %q: divergence out of [0,1]", p.Name)
	case p.SerialFraction < 0 || p.SerialFraction > 1:
		return fmt.Errorf("sim: profile %q: serial fraction out of [0,1]", p.Name)
	case p.TemporalReuse < 0 || p.TemporalReuse > 1:
		return fmt.Errorf("sim: profile %q: temporal reuse out of [0,1]", p.Name)
	case p.Coalescing < 0 || p.Coalescing > 1:
		return fmt.Errorf("sim: profile %q: coalescing out of [0,1]", p.Name)
	}
	return nil
}

// TotalOps returns the total operation count of the launch.
func (p *KernelProfile) TotalOps() float64 {
	return float64(p.WorkItems) * (p.FlopsPerItem + p.IntOpsPerItem)
}

// TotalBytes returns total pre-cache memory traffic of the launch.
func (p *KernelProfile) TotalBytes() float64 {
	return float64(p.WorkItems) * (p.LoadBytesPerItem + p.StoreBytesPerItem)
}

// ArithmeticIntensity returns flops per byte of pre-cache traffic, the
// classic roofline x-axis. Returns +Inf-free 0 when there is no traffic.
func (p *KernelProfile) ArithmeticIntensity() float64 {
	b := p.TotalBytes()
	if b == 0 {
		return 0
	}
	return float64(p.WorkItems) * p.FlopsPerItem / b
}
