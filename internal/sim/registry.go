package sim

import (
	"fmt"
	"sort"
)

// The catalogue reproduces Table 1 of the paper. Fields not present in the
// table (memory bandwidth, latency, launch overhead, idle power) are taken
// from vendor specifications and the measurement literature for each part;
// they are inputs to the timing model, not fitted values.
//
// Two deliberate divergences from the printed table, both documented in
// DESIGN.md: the R9 295x2 is a dual-die card of which OpenCL exposes one die
// as a device (Lanes = 2816, while CoreCount keeps the table's 5632), and
// the RX 480's effective lane count is 2304 (the table's 4096 is a
// transcription slip in the original paper; using it would make a 150 W
// Polaris card outrun a GTX 1080 Ti, contradicting the paper's own figures).
var registry = []*DeviceSpec{
	{
		ID: "e5-2697v2", Name: "Xeon E5-2697 v2", Vendor: "Intel", Class: CPU, Series: "Ivy Bridge",
		CoreCount: 24, CoreKind: "Hyperthreaded cores", CUs: 12, Lanes: 24 * 8,
		MinClockMHz: 1200, MaxClockMHz: 2700, TurboClockMHz: 3500,
		L1KiB: 32, L2KiB: 256, L3KiB: 30720,
		TDPWatts: 130, IdleWatts: 24, LaunchDate: "Q3 2013",
		// 12 cores × 3.0 GHz all-core turbo × 16 SP FLOP/cycle (AVX mul+add).
		PeakGFLOPS: 576, VectorEff: 0.55, ScalarIPC: 2.8,
		DRAMBandwidthGBs: 59.7, DRAMLatencyNs: 85, MLP: 10 * 12,
		LaunchOverheadUs: 5, TransferGBs: 20, CVBase: 0.016,
	},
	{
		ID: "i7-6700k", Name: "i7-6700K", Vendor: "Intel", Class: CPU, Series: "Skylake",
		CoreCount: 8, CoreKind: "Hyperthreaded cores", CUs: 4, Lanes: 8 * 8,
		MinClockMHz: 800, MaxClockMHz: 4000, TurboClockMHz: 4300,
		L1KiB: 32, L2KiB: 256, L3KiB: 8192,
		TDPWatts: 91, IdleWatts: 10, LaunchDate: "Q3 2015",
		// 4 cores × 4.2 GHz × 32 SP FLOP/cycle (2×AVX2 FMA).
		PeakGFLOPS: 537, VectorEff: 0.55, ScalarIPC: 3.0,
		DRAMBandwidthGBs: 34.1, DRAMLatencyNs: 75, MLP: 10 * 4,
		LaunchOverheadUs: 4.5, TransferGBs: 16, CVBase: 0.012,
	},
	{
		ID: "i5-3550", Name: "i5-3550", Vendor: "Intel", Class: CPU, Series: "Ivy Bridge",
		CoreCount: 4, CoreKind: "Cores", CUs: 4, Lanes: 4 * 8,
		MinClockMHz: 1600, MaxClockMHz: 3380, TurboClockMHz: 3700,
		L1KiB: 32, L2KiB: 256, L3KiB: 6144,
		TDPWatts: 77, IdleWatts: 8, LaunchDate: "Q2 2012",
		// 4 cores × 3.55 GHz × 16 SP FLOP/cycle.
		PeakGFLOPS: 227, VectorEff: 0.55, ScalarIPC: 2.7,
		DRAMBandwidthGBs: 25.6, DRAMLatencyNs: 80, MLP: 10 * 4,
		LaunchOverheadUs: 5, TransferGBs: 12, CVBase: 0.015,
	},
	{
		ID: "titanx", Name: "Titan X", Vendor: "Nvidia", Class: ConsumerGPU, Series: "Pascal",
		CoreCount: 3584, CoreKind: "CUDA cores", CUs: 28, Lanes: 3584,
		MinClockMHz: 1417, MaxClockMHz: 1531,
		L1KiB: 48, L2KiB: 2048,
		TDPWatts: 250, IdleWatts: 15, LaunchDate: "Q3 2016",
		PeakGFLOPS: 10974, VectorEff: 0.85, ScalarIPC: 0.6,
		DRAMBandwidthGBs: 480, DRAMLatencyNs: 290, MLP: 28 * 64,
		LaunchOverheadUs: 6, TransferGBs: 12, CVBase: 0.02,
	},
	{
		ID: "gtx1080", Name: "GTX 1080", Vendor: "Nvidia", Class: ConsumerGPU, Series: "Pascal",
		CoreCount: 2560, CoreKind: "CUDA cores", CUs: 20, Lanes: 2560,
		MinClockMHz: 1607, MaxClockMHz: 1733,
		L1KiB: 48, L2KiB: 2048,
		TDPWatts: 180, IdleWatts: 10, LaunchDate: "Q2 2016",
		PeakGFLOPS: 8873, VectorEff: 0.85, ScalarIPC: 0.6,
		DRAMBandwidthGBs: 320, DRAMLatencyNs: 285, MLP: 20 * 64,
		LaunchOverheadUs: 6, TransferGBs: 12, CVBase: 0.019,
	},
	{
		ID: "gtx1080ti", Name: "GTX 1080 Ti", Vendor: "Nvidia", Class: ConsumerGPU, Series: "Pascal",
		CoreCount: 3584, CoreKind: "CUDA cores", CUs: 28, Lanes: 3584,
		MinClockMHz: 1480, MaxClockMHz: 1582,
		L1KiB: 48, L2KiB: 2048,
		TDPWatts: 250, IdleWatts: 15, LaunchDate: "Q1 2017",
		PeakGFLOPS: 11340, VectorEff: 0.85, ScalarIPC: 0.6,
		DRAMBandwidthGBs: 484, DRAMLatencyNs: 290, MLP: 28 * 64,
		LaunchOverheadUs: 6, TransferGBs: 12, CVBase: 0.02,
	},
	{
		ID: "k20m", Name: "K20m", Vendor: "Nvidia", Class: HPCGPU, Series: "Kepler",
		CoreCount: 2496, CoreKind: "CUDA cores", CUs: 13, Lanes: 2496,
		MinClockMHz: 706,
		L1KiB:       64, L2KiB: 1536,
		TDPWatts: 225, IdleWatts: 25, LaunchDate: "Q4 2012",
		PeakGFLOPS: 3524, VectorEff: 0.7, ScalarIPC: 0.55,
		DRAMBandwidthGBs: 208, DRAMLatencyNs: 350, MLP: 13 * 48,
		LaunchOverheadUs: 8, TransferGBs: 6, CVBase: 0.035,
	},
	{
		ID: "k40m", Name: "K40m", Vendor: "Nvidia", Class: HPCGPU, Series: "Kepler",
		CoreCount: 2880, CoreKind: "CUDA cores", CUs: 15, Lanes: 2880,
		MinClockMHz: 745, MaxClockMHz: 875,
		L1KiB: 64, L2KiB: 1536,
		TDPWatts: 235, IdleWatts: 25, LaunchDate: "Q4 2013",
		PeakGFLOPS: 5040, VectorEff: 0.7, ScalarIPC: 0.55,
		DRAMBandwidthGBs: 288, DRAMLatencyNs: 340, MLP: 15 * 48,
		LaunchOverheadUs: 8, TransferGBs: 12, CVBase: 0.032,
	},
	{
		ID: "s9150", Name: "FirePro S9150", Vendor: "AMD", Class: HPCGPU, Series: "Hawaii",
		CoreCount: 2816, CoreKind: "Stream processors", CUs: 44, Lanes: 2816,
		MinClockMHz: 900,
		L1KiB:       16, L2KiB: 1024,
		TDPWatts: 235, IdleWatts: 20, LaunchDate: "Q3 2014",
		PeakGFLOPS: 5069, VectorEff: 0.75, ScalarIPC: 0.55,
		DRAMBandwidthGBs: 320, DRAMLatencyNs: 330, MLP: 44 * 40,
		LaunchOverheadUs: 22, TransferGBs: 12, CVBase: 0.03,
	},
	{
		ID: "hd7970", Name: "HD 7970", Vendor: "AMD", Class: ConsumerGPU, Series: "Tahiti",
		CoreCount: 2048, CoreKind: "Stream processors", CUs: 32, Lanes: 2048,
		MinClockMHz: 925, MaxClockMHz: 1010,
		L1KiB: 16, L2KiB: 768,
		TDPWatts: 250, IdleWatts: 15, LaunchDate: "Q4 2011",
		PeakGFLOPS: 4137, VectorEff: 0.75, ScalarIPC: 0.55,
		DRAMBandwidthGBs: 264, DRAMLatencyNs: 340, MLP: 32 * 40,
		LaunchOverheadUs: 22, TransferGBs: 6, CVBase: 0.031,
	},
	{
		ID: "r9-290x", Name: "R9 290X", Vendor: "AMD", Class: ConsumerGPU, Series: "Hawaii",
		CoreCount: 2816, CoreKind: "Stream processors", CUs: 44, Lanes: 2816,
		MinClockMHz: 1000,
		L1KiB:       16, L2KiB: 1024,
		TDPWatts: 250, IdleWatts: 20, LaunchDate: "Q3 2014",
		PeakGFLOPS: 5632, VectorEff: 0.75, ScalarIPC: 0.55,
		DRAMBandwidthGBs: 320, DRAMLatencyNs: 330, MLP: 44 * 40,
		LaunchOverheadUs: 22, TransferGBs: 12, CVBase: 0.029,
	},
	{
		ID: "r9-295x2", Name: "R9 295x2", Vendor: "AMD", Class: ConsumerGPU, Series: "Hawaii",
		CoreCount: 5632, CoreKind: "Stream processors", CUs: 44, Lanes: 2816,
		MinClockMHz: 1018,
		L1KiB:       16, L2KiB: 1024,
		TDPWatts: 500, IdleWatts: 40, LaunchDate: "Q2 2014",
		// One die: OpenCL exposes each Hawaii die as a separate device and
		// the benchmarks use one.
		PeakGFLOPS: 5733, VectorEff: 0.75, ScalarIPC: 0.55,
		DRAMBandwidthGBs: 320, DRAMLatencyNs: 330, MLP: 44 * 40,
		LaunchOverheadUs: 22, TransferGBs: 12, CVBase: 0.029,
	},
	{
		ID: "r9-furyx", Name: "R9 Fury X", Vendor: "AMD", Class: ConsumerGPU, Series: "Fuji",
		CoreCount: 4096, CoreKind: "Stream processors", CUs: 64, Lanes: 4096,
		MinClockMHz: 1050,
		L1KiB:       16, L2KiB: 2048,
		TDPWatts: 273, IdleWatts: 20, LaunchDate: "Q2 2015",
		PeakGFLOPS: 8602, VectorEff: 0.75, ScalarIPC: 0.55,
		// HBM.
		DRAMBandwidthGBs: 512, DRAMLatencyNs: 300, MLP: 64 * 40,
		LaunchOverheadUs: 22, TransferGBs: 12, CVBase: 0.026,
	},
	{
		ID: "rx480", Name: "RX 480", Vendor: "AMD", Class: ConsumerGPU, Series: "Polaris",
		CoreCount: 4096, CoreKind: "Stream processors", CUs: 36, Lanes: 2304,
		MinClockMHz: 1120, MaxClockMHz: 1266,
		L1KiB: 16, L2KiB: 2048,
		TDPWatts: 150, IdleWatts: 10, LaunchDate: "Q2 2016",
		PeakGFLOPS: 5834, VectorEff: 0.75, ScalarIPC: 0.55,
		DRAMBandwidthGBs: 256, DRAMLatencyNs: 310, MLP: 36 * 40,
		LaunchOverheadUs: 22, TransferGBs: 12, CVBase: 0.024,
	},
	{
		ID: "knl-7210", Name: "Xeon Phi 7210", Vendor: "Intel", Class: MIC, Series: "KNL",
		CoreCount: 256, CoreKind: "Hardware threads (64 cores × 4)", CUs: 64, Lanes: 256 * 8,
		MinClockMHz: 1300, MaxClockMHz: 1500,
		L1KiB: 32, L2KiB: 1024,
		TDPWatts: 215, IdleWatts: 65, LaunchDate: "Q2 2016",
		// Half of AVX-512 peak: the Intel OpenCL stack only emits 256-bit
		// vectors on KNL (§4.2), and realises little of even that. OpenCL
		// buffers land in DDR4 (no MCDRAM path) and work distribution has
		// no tile affinity, so sustained bandwidth is far below spec.
		PeakGFLOPS: 3072, VectorEff: 0.05, ScalarIPC: 0.15,
		DRAMBandwidthGBs: 22, DRAMLatencyNs: 160, MLP: 64,
		LaunchOverheadUs: 30, TransferGBs: 10, CVBase: 0.022,
	},
}

// Devices returns the full catalogue in the paper's Table 1 / figure order.
func Devices() []*DeviceSpec {
	out := make([]*DeviceSpec, len(registry))
	copy(out, registry)
	return out
}

// Lookup finds a device by its short ID or full name (case-sensitive).
func Lookup(id string) (*DeviceSpec, error) {
	for _, d := range registry {
		if d.ID == id || d.Name == id {
			return d, nil
		}
	}
	known := make([]string, len(registry))
	for i, d := range registry {
		known[i] = d.ID
	}
	sort.Strings(known)
	return nil, fmt.Errorf("sim: unknown device %q (known: %v)", id, known)
}

// LookupAll resolves a list of IDs (or full names) in order — the fleet
// form used by the scheduler. The first unknown entry fails with the
// sorted catalogue, exactly like Lookup.
func LookupAll(ids []string) ([]*DeviceSpec, error) {
	out := make([]*DeviceSpec, 0, len(ids))
	for _, id := range ids {
		d, err := Lookup(id)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// ByClass returns all devices of a class, preserving catalogue order.
func ByClass(c Class) []*DeviceSpec {
	var out []*DeviceSpec
	for _, d := range registry {
		if d.Class == c {
			out = append(out, d)
		}
	}
	return out
}
