package sim

// The paper's §7 roadmap: "Additional architectures such as FPGA, DSP and
// Radeon Open Compute based APUs — which further breaks down the walls
// between the CPU and GPU — will be considered." This file provides model
// entries for representative parts of each class so the suite can be
// exercised against them today. They are deliberately kept out of the
// Table 1 catalogue (Devices/Platforms) — the paper's evaluation does not
// include them — and are reachable through FutureDevices and LookupFuture.
//
// Model notes:
//   - FPGA (Intel/Altera Arria 10 GX, OpenCL SDK): pipelined kernels reach
//     high efficiency on streaming code, but the soft clock is low, memory
//     is a two-channel DDR4 interface, and every launch pays a large
//     reconfiguration/enqueue cost.
//   - DSP (TI Keystone II 66AK2H12, the architecture the paper cites via
//     Mitra et al.): eight C66x cores with modest vector width, very low
//     power, bandwidth-starved against GPUs.
//   - APU (AMD A10-7850K "Kaveri", the integrated class the Chai suite
//     targets): 8 GCN CUs sharing the CPU's DDR3 interface — GPU-style
//     compute with CPU-style bandwidth, which is exactly the wall-breaking
//     trade the paper highlights.
var futureRegistry = []*DeviceSpec{
	{
		ID: "arria10", Name: "Arria 10 GX 1150", Vendor: "Intel", Class: FPGA, Series: "Arria 10",
		CoreCount: 1518, CoreKind: "DSP blocks", CUs: 32, Lanes: 1518,
		MinClockMHz: 300, MaxClockMHz: 450,
		L1KiB: 64, L2KiB: 4096, // BRAM-backed local/global cache configuration
		TDPWatts: 70, IdleWatts: 25, LaunchDate: "future (§7)",
		PeakGFLOPS: 1366, VectorEff: 0.8, ScalarIPC: 0.4,
		DRAMBandwidthGBs: 34, DRAMLatencyNs: 120, MLP: 64,
		LaunchOverheadUs: 90, TransferGBs: 6, CVBase: 0.008,
	},
	{
		ID: "keystone2", Name: "TI Keystone II 66AK2H12", Vendor: "TI", Class: DSP, Series: "C66x",
		CoreCount: 8, CoreKind: "C66x DSP cores", CUs: 8, Lanes: 8 * 4,
		MinClockMHz: 1200, MaxClockMHz: 1400,
		L1KiB: 32, L2KiB: 1024,
		TDPWatts: 14, IdleWatts: 4, LaunchDate: "future (§7)",
		PeakGFLOPS: 179, VectorEff: 0.6, ScalarIPC: 1.5,
		DRAMBandwidthGBs: 12.8, DRAMLatencyNs: 110, MLP: 16,
		LaunchOverheadUs: 40, TransferGBs: 4, CVBase: 0.014,
	},
	{
		ID: "a10-7850k", Name: "A10-7850K APU", Vendor: "AMD", Class: APU, Series: "Kaveri",
		CoreCount: 512, CoreKind: "Stream processors", CUs: 8, Lanes: 512,
		MinClockMHz: 654, MaxClockMHz: 720,
		L1KiB: 16, L2KiB: 512,
		TDPWatts: 95, IdleWatts: 10, LaunchDate: "future (§7)",
		PeakGFLOPS: 737, VectorEff: 0.75, ScalarIPC: 0.55,
		// Shares the CPU's dual-channel DDR3-2133.
		DRAMBandwidthGBs: 25.6, DRAMLatencyNs: 120, MLP: 8 * 40,
		// Integrated: no PCIe hop, cheap launches and zero-copy transfers —
		// the wall the paper says these parts break down.
		LaunchOverheadUs: 9, TransferGBs: 20, CVBase: 0.02,
	},
}

// FutureDevices returns the §7 future-architecture catalogue.
func FutureDevices() []*DeviceSpec {
	out := make([]*DeviceSpec, len(futureRegistry))
	copy(out, futureRegistry)
	return out
}

// LookupFuture finds a device in either the Table 1 catalogue or the
// future-architecture set.
func LookupFuture(id string) (*DeviceSpec, error) {
	if d, err := Lookup(id); err == nil {
		return d, nil
	}
	for _, d := range futureRegistry {
		if d.ID == id || d.Name == id {
			return d, nil
		}
	}
	return nil, errUnknownFuture(id)
}

func errUnknownFuture(id string) error {
	known := make([]string, 0, len(futureRegistry))
	for _, d := range futureRegistry {
		known = append(known, d.ID)
	}
	return &unknownDeviceError{id: id, known: known}
}

// unknownDeviceError keeps LookupFuture's error informative without
// colliding with Lookup's own formatting.
type unknownDeviceError struct {
	id    string
	known []string
}

func (e *unknownDeviceError) Error() string {
	return "sim: unknown device " + e.id + " (future catalogue: " + joinIDs(e.known) + ")"
}

func joinIDs(ids []string) string {
	s := ""
	for i, id := range ids {
		if i > 0 {
			s += ", "
		}
		s += id
	}
	return s
}
