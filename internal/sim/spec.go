// Package sim provides the device catalogue and analytical performance model
// standing in for the paper's 15 physical accelerators (Table 1).
//
// The model is deliberately first-order: execution time for one kernel launch
// is launch overhead plus the maximum of a compute term (roofline against the
// device's effective FLOP/IOP rate, corrected for SIMD efficiency, branch
// divergence, occupancy and Amdahl serial fractions) and a memory term
// (traffic resolved through the device's cache hierarchy by internal/cache).
// The paper's conclusions are relative — which accelerator class wins for
// which dwarf and problem size — and those orderings emerge from exactly
// these first-order parameters.
package sim

import (
	"fmt"

	"opendwarfs/internal/cache"
)

// Class is the accelerator class used to colour the paper's figures.
type Class int

const (
	CPU Class = iota
	ConsumerGPU
	HPCGPU
	MIC
	// The remaining classes are the §7 future architectures (see
	// future.go); they do not appear in the Table 1 catalogue.
	FPGA
	DSP
	APU
)

// String returns the figure-legend name of the class.
func (c Class) String() string {
	switch c {
	case CPU:
		return "CPU"
	case ConsumerGPU:
		return "Consumer GPU"
	case HPCGPU:
		return "HPC GPU"
	case MIC:
		return "MIC"
	case FPGA:
		return "FPGA"
	case DSP:
		return "DSP"
	case APU:
		return "APU"
	default:
		return "unknown"
	}
}

// IsGPU reports whether the class is a GPU of either kind.
func (c Class) IsGPU() bool { return c == ConsumerGPU || c == HPCGPU }

// DeviceSpec describes one platform from Table 1 of the paper, augmented
// with the public memory-system figures the timing model needs.
type DeviceSpec struct {
	// ID is the short stable identifier used on the command line
	// (e.g. "i7-6700k").
	ID string
	// Name is the marketing name as printed in Table 1.
	Name   string
	Vendor string
	Class  Class
	Series string

	// CoreCount is the count as printed in Table 1 (hyper-threaded cores,
	// CUDA cores, stream processors, or hardware threads for the MIC).
	CoreCount int
	// CoreKind is the table footnote label for CoreCount.
	CoreKind string
	// CUs is the number of independent compute units: physical cores for
	// CPUs, SMs/SMXs for Nvidia, CUs for AMD, tiles*2 for KNL. Scalar
	// (non-vectorizable) kernels parallelise across CUs, not lanes.
	CUs int
	// Lanes is the number of SIMT/SIMD lanes the device executes
	// vectorizable work on: CUDA cores / stream processors for GPUs,
	// hardware threads × vector width for CPUs.
	Lanes int

	// Clocks in MHz as printed in Table 1 (min/max/turbo; zero if n/a).
	MinClockMHz, MaxClockMHz, TurboClockMHz float64

	// Cache sizes as printed in Table 1 (per-unit L1 and L2; L3 total,
	// zero if absent).
	L1KiB, L2KiB, L3KiB float64

	TDPWatts   float64
	IdleWatts  float64
	LaunchDate string

	// PeakGFLOPS is the single-precision peak under the paper's software
	// stack. For KNL this is already halved: Intel removed AVX-512 support
	// from its OpenCL compiler, limiting vectors to 256 bits (§4.2).
	PeakGFLOPS float64
	// VectorEff is the fraction of PeakGFLOPS the OpenCL driver typically
	// realises on vectorizable kernels.
	VectorEff float64
	// ScalarIPC is the per-CU instructions-per-cycle on serial,
	// non-vectorizable code (superscalar CPUs ≈ 3, GPUs ≈ 1, KNL < 1).
	ScalarIPC float64

	// DRAMBandwidthGBs is peak main/global memory bandwidth.
	DRAMBandwidthGBs float64
	// DRAMLatencyNs is main-memory latency.
	DRAMLatencyNs float64
	// MLP is the sustained number of outstanding memory requests.
	MLP float64

	// LaunchOverheadUs is the host-side cost of one kernel enqueue —
	// the parameter behind the paper's nw finding (Fig. 3b), where AMD's
	// higher per-launch cost degrades wavefront codes at large sizes.
	LaunchOverheadUs float64
	// TransferGBs is host↔device bandwidth (PCIe for discrete GPUs,
	// effectively memcpy for CPU devices).
	TransferGBs float64

	// CVBase is the baseline coefficient of variation of kernel times; the
	// paper observes CV grows as clock falls, which the noise model
	// implements on top of this.
	CVBase float64
}

// ClockGHz returns the sustained compute clock used by the model: the boost
// clock when present, otherwise the base clock.
func (d *DeviceSpec) ClockGHz() float64 {
	c := d.MaxClockMHz
	if c == 0 {
		c = d.MinClockMHz
	}
	return c / 1000
}

// AggregateL1KiB is the total first-level capacity available to a kernel
// spread across all compute units. The KNL is not aggregated: the Intel
// OpenCL runtime distributes work with no tile affinity, so the effective
// per-kernel near cache is a single core's slice (part of why the paper
// finds KNL performance poor, §5.1).
func (d *DeviceSpec) AggregateL1KiB() float64 {
	if d.Class == MIC {
		return d.L1KiB
	}
	return d.L1KiB * float64(d.CUs)
}

// AggregateL2KiB is the total second-level capacity. Nvidia entries in
// Table 1 already report the aggregated L2, as do AMD and KNL; CPU L2 is
// per-core and must be multiplied out.
func (d *DeviceSpec) AggregateL2KiB() float64 {
	if d.Class == CPU {
		return d.L2KiB * float64(d.CUs)
	}
	return d.L2KiB
}

// Hierarchy builds the analytical cache model for the device.
func (d *DeviceSpec) Hierarchy() cache.Hierarchy {
	bw := d.DRAMBandwidthGBs
	var levels []cache.Level
	switch d.Class {
	case CPU:
		levels = []cache.Level{
			{Name: "L1", SizeKiB: d.AggregateL1KiB(), BandwidthGBs: bw * 14, LatencyNs: 1.0},
			{Name: "L2", SizeKiB: d.AggregateL2KiB(), BandwidthGBs: bw * 8, LatencyNs: 3.5},
			{Name: "L3", SizeKiB: d.L3KiB, BandwidthGBs: bw * 4, LatencyNs: 12},
		}
	case MIC:
		levels = []cache.Level{
			{Name: "L1", SizeKiB: d.AggregateL1KiB(), BandwidthGBs: bw * 10, LatencyNs: 2.5},
			{Name: "L2", SizeKiB: d.AggregateL2KiB(), BandwidthGBs: bw * 4, LatencyNs: 14},
		}
	default: // GPUs
		levels = []cache.Level{
			{Name: "L1", SizeKiB: d.AggregateL1KiB(), BandwidthGBs: bw * 6, LatencyNs: 8},
			{Name: "L2", SizeKiB: d.AggregateL2KiB(), BandwidthGBs: bw * 3, LatencyNs: 60},
		}
	}
	return cache.Hierarchy{
		Levels:           levels,
		DRAMBandwidthGBs: bw,
		DRAMLatencyNs:    d.DRAMLatencyNs,
		MLP:              d.MLP,
		LineBytes:        64,
	}
}

// Validate performs basic sanity checks on a spec.
func (d *DeviceSpec) Validate() error {
	switch {
	case d.ID == "" || d.Name == "":
		return fmt.Errorf("sim: device missing identifier")
	case d.CUs <= 0 || d.Lanes <= 0 || d.CoreCount <= 0:
		return fmt.Errorf("sim: %s: non-positive core geometry", d.ID)
	case d.ClockGHz() <= 0:
		return fmt.Errorf("sim: %s: no clock", d.ID)
	case d.PeakGFLOPS <= 0 || d.DRAMBandwidthGBs <= 0:
		return fmt.Errorf("sim: %s: missing peak rates", d.ID)
	case d.TDPWatts <= d.IdleWatts:
		return fmt.Errorf("sim: %s: TDP must exceed idle power", d.ID)
	case d.VectorEff <= 0 || d.VectorEff > 1:
		return fmt.Errorf("sim: %s: VectorEff out of (0,1]", d.ID)
	case d.LaunchOverheadUs <= 0:
		return fmt.Errorf("sim: %s: missing launch overhead", d.ID)
	}
	return d.Hierarchy().Validate()
}
