package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Noise is the measurement-variance model. The paper observes (§5.1) that
// the coefficient of variation of kernel times is larger on devices with
// lower clock frequency, regardless of accelerator class; we implement CV as
// the device's CVBase scaled by an inverse-clock power law, and draw
// multiplicative lognormal samples so times stay positive and right-skewed
// like real OS-noise-contaminated measurements.
type Noise struct {
	rng *rand.Rand
	cv  float64
}

// refClockMHz anchors the CV power law at the fastest device in the study
// (the i7-6700K's 4.3 GHz turbo).
const refClockMHz = 4300

// NewNoise builds a deterministic noise source for a device; the seed string
// (benchmark name, size, …) decorrelates streams between experiments while
// keeping every run of the suite reproducible.
func NewNoise(spec *DeviceSpec, seed string) *Noise {
	h := fnv.New64a()
	h.Write([]byte(spec.ID))
	h.Write([]byte{0})
	h.Write([]byte(seed))
	return &Noise{
		rng: rand.New(rand.NewSource(int64(h.Sum64()))),
		cv:  spec.CV(),
	}
}

// CV returns the modelled coefficient of variation for kernel timings on
// this device.
func (d *DeviceSpec) CV() float64 {
	clock := d.MaxClockMHz
	if d.TurboClockMHz > clock {
		clock = d.TurboClockMHz
	}
	if clock == 0 {
		clock = d.MinClockMHz
	}
	return d.CVBase * math.Pow(refClockMHz/clock, 0.6)
}

// Sample perturbs a mean duration (ns) with one lognormal draw whose
// coefficient of variation is cv/sqrt(n) — n being the number of kernel
// iterations averaged into the sample, per the paper's ≥2 s measurement
// loops (§4.3): averaging across iterations shrinks the variance of the
// reported mean.
func (no *Noise) Sample(meanNs float64, iterations int) float64 {
	if meanNs <= 0 {
		return 0
	}
	n := float64(iterations)
	if n < 1 {
		n = 1
	}
	cv := no.cv / math.Sqrt(n)
	// Lognormal with mean 1 and standard deviation cv.
	sigma2 := math.Log(1 + cv*cv)
	mu := -sigma2 / 2
	return meanNs * math.Exp(mu+math.Sqrt(sigma2)*no.rng.NormFloat64())
}

// SampleEnergy perturbs an energy estimate; power readings carry their own
// sensor noise (±5 W on NVML per §5.2) modelled as one extra Gaussian watt
// term over the sample duration.
func (no *Noise) SampleEnergy(meanJ, durationS, sensorSigmaW float64) float64 {
	if meanJ <= 0 {
		return 0
	}
	e := no.Sample(meanJ*1e9, 1) / 1e9
	e += no.rng.NormFloat64() * sensorSigmaW * durationS
	if e < 0 {
		e = 0
	}
	return e
}
