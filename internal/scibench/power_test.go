package scibench

import (
	"math"
	"math/rand"
	"testing"
)

func TestSampleSizeReproducesPaperChoice(t *testing.T) {
	// §4.3: 50 samples per group for β=0.8 at d=0.5 separation. The
	// normal-approximation two-sample calculation gives 63 and the
	// one-sample gives 32; the paper's 50 sits between the two, and 50
	// samples deliver power ≥ 0.8 at the effect size the paper targets in
	// the one-sample sense, and ≥ 0.69 two-sample.
	two := SampleSizeTwoSample(0.5, 0.05, 0.8)
	one := SampleSizeOneSample(0.5, 0.05, 0.8)
	if !(one <= PaperSampleSize() && PaperSampleSize() <= two) {
		t.Fatalf("paper n=50 should lie between one-sample (%d) and two-sample (%d) requirements", one, two)
	}
	if two != 63 {
		t.Errorf("two-sample n = %d, textbook value 63", two)
	}
	if one != 32 {
		t.Errorf("one-sample n = %d, textbook value 32", one)
	}
}

func TestPowerTwoSample(t *testing.T) {
	// Power grows with n and with effect size.
	if PowerTwoSample(63, 0.5, 0.05) < 0.8 {
		t.Error("n=63 should reach 80% power at d=0.5")
	}
	if PowerTwoSample(10, 0.5, 0.05) >= PowerTwoSample(50, 0.5, 0.05) {
		t.Error("power must grow with n")
	}
	if PowerTwoSample(50, 0.2, 0.05) >= PowerTwoSample(50, 0.8, 0.05) {
		t.Error("power must grow with effect size")
	}
	if PowerTwoSample(1, 0.5, 0.05) != 0 {
		t.Error("n<2 has no power")
	}
}

func TestSampleSizeValidation(t *testing.T) {
	for _, f := range []func(){
		func() { SampleSizeTwoSample(0, 0.05, 0.8) },
		func() { SampleSizeTwoSample(0.5, 0, 0.8) },
		func() { SampleSizeOneSample(0.5, 0.05, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid power parameters accepted")
				}
			}()
			f()
		}()
	}
}

func TestWelchTTestDistinguishes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := make([]float64, 50)
	b := make([]float64, 50)
	for i := range a {
		a[i] = 10 + rng.NormFloat64()
		b[i] = 12 + rng.NormFloat64() // 2 SD apart: hugely significant
	}
	tt, df, p := WelchTTest(a, b)
	if p > 1e-6 {
		t.Fatalf("p=%g for a 2-sigma separation", p)
	}
	if tt >= 0 {
		t.Fatalf("t=%f should be negative (a < b)", tt)
	}
	if df < 40 || df > 100 {
		t.Fatalf("df=%f implausible for n=50,50", df)
	}
}

func TestWelchTTestNullCase(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := make([]float64, 50)
	b := make([]float64, 50)
	for i := range a {
		a[i] = 5 + rng.NormFloat64()
		b[i] = 5 + rng.NormFloat64()
	}
	_, _, p := WelchTTest(a, b)
	if p < 0.01 {
		t.Fatalf("p=%g: same-distribution groups flagged as different", p)
	}
}

func TestWelchTTestDegenerate(t *testing.T) {
	// Zero variance, equal means.
	_, _, p := WelchTTest([]float64{3, 3, 3}, []float64{3, 3, 3})
	if p != 1 {
		t.Fatalf("identical constant groups p=%f, want 1", p)
	}
	// Zero variance, different means.
	_, _, p = WelchTTest([]float64{3, 3, 3}, []float64{4, 4, 4})
	if p != 0 {
		t.Fatalf("distinct constant groups p=%f, want 0", p)
	}
}

func TestTimer(t *testing.T) {
	tm := NewTimer()
	if tm.OverheadNs() < 0 {
		t.Fatal("negative calibrated overhead")
	}
	d := tm.Time(func() {
		s := 0.0
		for i := 0; i < 100000; i++ {
			s += math.Sqrt(float64(i))
		}
		if s < 0 {
			t.Fatal("unreachable")
		}
	})
	if d <= 0 {
		t.Fatalf("measured duration %f", d)
	}
	tm.Start()
	if tm.StopNs() < 0 {
		t.Fatal("negative region time")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("StopNs without Start accepted")
		}
	}()
	tm.StopNs()
}
