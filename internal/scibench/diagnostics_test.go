package scibench

import (
	"math"
	"math/rand"
	"testing"
)

func TestKSNormalAcceptsGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 10 + 2*rng.NormFloat64()
	}
	d, reject := KSNormal(xs)
	if reject {
		t.Fatalf("Gaussian sample rejected (D=%f)", d)
	}
}

func TestKSNormalRejectsBimodal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	xs := make([]float64, 200)
	for i := range xs {
		mode := 0.0
		if i%2 == 0 {
			mode = 20
		}
		xs[i] = mode + 0.5*rng.NormFloat64()
	}
	if _, reject := KSNormal(xs); !reject {
		t.Fatal("strongly bimodal sample passed the normality test")
	}
}

func TestKSNormalRejectsHeavyTail(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 300)
	for i := range xs {
		// Exponential: strongly right-skewed.
		xs[i] = rng.ExpFloat64()
	}
	if _, reject := KSNormal(xs); !reject {
		t.Fatal("exponential sample passed the normality test")
	}
}

func TestKSNormalDegenerate(t *testing.T) {
	if _, reject := KSNormal([]float64{1, 2}); reject {
		t.Fatal("tiny sample must not be rejected")
	}
	if _, reject := KSNormal([]float64{3, 3, 3, 3, 3, 3}); reject {
		t.Fatal("constant sample must not be rejected")
	}
}

func TestAutocorrelationWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	if r := Autocorrelation(xs, 1); math.Abs(r) > 0.06 {
		t.Fatalf("white noise lag-1 autocorrelation %f", r)
	}
}

func TestAutocorrelationTrend(t *testing.T) {
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = float64(i) // pure drift
	}
	if r := Autocorrelation(xs, 1); r < 0.95 {
		t.Fatalf("linear drift lag-1 autocorrelation %f, want ~1", r)
	}
	if Autocorrelation(xs, 0) != 0 || Autocorrelation(xs, len(xs)) != 0 {
		t.Fatal("invalid lags must return 0")
	}
	if Autocorrelation([]float64{5, 5, 5}, 1) != 0 {
		t.Fatal("constant series autocorrelation must be 0")
	}
}

func TestDiagnose(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	good := make([]float64, 100)
	for i := range good {
		good[i] = 50 + rng.NormFloat64()
	}
	d := Diagnose(good)
	if d.NonNormal || d.Autocorrelated {
		t.Fatalf("healthy sample flagged: %+v", d)
	}
	drift := make([]float64, 100)
	for i := range drift {
		drift[i] = float64(i) + rng.NormFloat64()
	}
	if dd := Diagnose(drift); !dd.Autocorrelated {
		t.Fatal("thermal-drift-like sample not flagged")
	}
	// Outliers detected.
	withOutlier := append(append([]float64{}, good...), 500)
	if dd := Diagnose(withOutlier); dd.OutlierFrac <= 0 {
		t.Fatal("outlier not counted")
	}
}

// The harness noise model produces lognormal samples; at the small CVs the
// suite uses they must pass the normality screen (so parametric CIs are
// defensible), which this test pins down.
func TestNoiseModelSamplesPassDiagnostics(t *testing.T) {
	// Generated the same way harness samples are: lognormal with CV ~2%.
	rng := rand.New(rand.NewSource(10))
	cv := 0.02
	sigma2 := math.Log(1 + cv*cv)
	mu := -sigma2 / 2
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = 1e6 * math.Exp(mu+math.Sqrt(sigma2)*rng.NormFloat64())
	}
	d := Diagnose(xs)
	if d.NonNormal {
		t.Fatalf("small-CV lognormal flagged non-normal (D=%f)", d.KSStatistic)
	}
}
