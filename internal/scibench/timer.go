package scibench

import "time"

// Timer is a high-resolution region timer in the style of LibSciBench's
// one-cycle-resolution timers (§2: "a high resolution timer in order to
// measure short running kernel codes, reported with one cycle resolution and
// roughly 6 ns of overhead"). Go's monotonic clock provides nanosecond
// resolution; the calibrated overhead of a Start/Stop pair is measured at
// construction and subtracted from readings.
type Timer struct {
	overheadNs float64
	start      time.Time
	running    bool
}

// NewTimer calibrates and returns a timer.
func NewTimer() *Timer {
	t := &Timer{}
	t.overheadNs = calibrate()
	return t
}

// calibrate measures the cost of a Start/Stop pair.
func calibrate() float64 {
	const rounds = 2000
	var tm Timer
	begin := time.Now()
	for i := 0; i < rounds; i++ {
		tm.Start()
		tm.running = false
	}
	total := time.Since(begin)
	return float64(total.Nanoseconds()) / rounds
}

// OverheadNs returns the calibrated per-measurement overhead.
func (t *Timer) OverheadNs() float64 { return t.overheadNs }

// Start begins a region measurement.
func (t *Timer) Start() {
	t.start = time.Now()
	t.running = true
}

// StopNs ends the region and returns its duration in nanoseconds, overhead
// compensated (never negative). It panics if the timer was not started,
// which indicates a measurement harness bug.
func (t *Timer) StopNs() float64 {
	if !t.running {
		panic("scibench: StopNs without Start")
	}
	d := float64(time.Since(t.start).Nanoseconds()) - t.overheadNs
	t.running = false
	if d < 0 {
		return 0
	}
	return d
}

// Time measures one function call in nanoseconds.
func (t *Timer) Time(f func()) float64 {
	t.Start()
	f()
	return t.StopNs()
}
