// Package scibench is the measurement and statistics library standing in for
// LibSciBench (Hoefler & Belli, SC'15), which the paper integrates into
// OpenDwarfs for high-resolution timing, statistically sound sample counts
// and per-region measurement (§2, §4.3).
//
// It provides: a calibrated high-resolution timer; summary statistics with
// confidence intervals and box-plot five-number summaries; the t-test power
// calculation the paper uses to justify 50 samples per group; Welch's t-test
// for comparing devices; and CSV/JSONL sample logging.
package scibench

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the descriptive statistics of one sample group — everything
// the paper's box-plot figures and CV observations need.
type Summary struct {
	N      int
	Mean   float64
	SD     float64 // sample standard deviation (n-1)
	CV     float64 // coefficient of variation SD/Mean
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	// CI95Lo/Hi is the 95% confidence interval of the mean (Student t).
	CI95Lo, CI95Hi float64
}

// Summarize computes summary statistics. It panics on an empty sample, which
// always indicates a harness bug.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("scibench: empty sample")
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Q1 = Quantile(sorted, 0.25)
	s.Median = Quantile(sorted, 0.5)
	s.Q3 = Quantile(sorted, 0.75)

	for _, x := range xs {
		s.Mean += x
	}
	s.Mean /= float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.SD = math.Sqrt(ss / float64(s.N-1))
	}
	if s.Mean != 0 {
		s.CV = s.SD / math.Abs(s.Mean)
	}
	if s.N > 1 {
		half := StudentQuantile(0.975, float64(s.N-1)) * s.SD / math.Sqrt(float64(s.N))
		s.CI95Lo, s.CI95Hi = s.Mean-half, s.Mean+half
	} else {
		s.CI95Lo, s.CI95Hi = s.Mean, s.Mean
	}
	return s
}

// Quantile returns the q-th quantile of a sorted sample using linear
// interpolation between order statistics (type-7, the R default).
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("scibench: empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// FiveNum is the box-plot five-number summary (with Tukey whiskers and
// outliers), matching the presentation of Figures 1–5.
type FiveNum struct {
	Min, Q1, Median, Q3, Max float64
	// WhiskerLo/Hi are the Tukey 1.5×IQR whisker positions clamped to data.
	WhiskerLo, WhiskerHi float64
	Outliers             []float64
}

// BoxStats computes the five-number summary of a sample.
func BoxStats(xs []float64) FiveNum {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	f := FiveNum{
		Min:    sorted[0],
		Q1:     Quantile(sorted, 0.25),
		Median: Quantile(sorted, 0.5),
		Q3:     Quantile(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
	}
	iqr := f.Q3 - f.Q1
	lo, hi := f.Q1-1.5*iqr, f.Q3+1.5*iqr
	f.WhiskerLo, f.WhiskerHi = f.Max, f.Min
	for _, x := range sorted {
		if x >= lo && x < f.WhiskerLo {
			f.WhiskerLo = x
		}
		if x <= hi && x > f.WhiskerHi {
			f.WhiskerHi = x
		}
		if x < lo || x > hi {
			f.Outliers = append(f.Outliers, x)
		}
	}
	return f
}

// NormalQuantile is the inverse standard normal CDF (Acklam's algorithm,
// relative error < 1.15e-9 over (0,1)).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("scibench: NormalQuantile p=%g out of (0,1)", p))
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-pLow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// NormalCDF is the standard normal distribution function.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// StudentCDF is the CDF of Student's t distribution with df degrees of
// freedom, computed through the regularised incomplete beta function.
func StudentCDF(t, df float64) float64 {
	if df <= 0 {
		panic("scibench: StudentCDF df must be positive")
	}
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// StudentQuantile inverts StudentCDF by bisection (sufficient precision for
// confidence intervals; the CDF is smooth and monotone).
func StudentQuantile(p, df float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("scibench: StudentQuantile p=%g out of (0,1)", p))
	}
	lo, hi := -1e3, 1e3
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if StudentCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// RegIncBeta is the regularised incomplete beta function I_x(a, b),
// evaluated with the standard continued-fraction expansion (Numerical
// Recipes betacf).
func RegIncBeta(a, b, x float64) float64 {
	if x < 0 || x > 1 {
		panic("scibench: RegIncBeta x out of [0,1]")
	}
	if x == 0 {
		return 0
	}
	if x == 1 {
		return 1
	}
	ln := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
