package scibench

import "math"

// This file implements the t-test power calculation the paper uses to choose
// its sample size (§4.3): "A sample size of 50 per group … was used to
// ensure that sufficient statistical power β = 0.8 would be available to
// detect a significant difference in means on the scale of half standard
// deviation of separation. This sample size was computed using the t-test
// power calculation over a normal distribution."

// SampleSizeTwoSample returns the per-group sample size for a two-sample
// t-test (normal approximation) to detect an effect of d standard deviations
// with significance alpha (two-sided) and power beta.
func SampleSizeTwoSample(d, alpha, beta float64) int {
	validateEffect(d, alpha, beta)
	za := NormalQuantile(1 - alpha/2)
	zb := NormalQuantile(beta)
	n := 2 * (za + zb) * (za + zb) / (d * d)
	return int(math.Ceil(n))
}

// SampleSizeOneSample returns the sample size for a one-sample (or paired)
// t-test under the same approximation.
func SampleSizeOneSample(d, alpha, beta float64) int {
	validateEffect(d, alpha, beta)
	za := NormalQuantile(1 - alpha/2)
	zb := NormalQuantile(beta)
	n := (za + zb) * (za + zb) / (d * d)
	return int(math.Ceil(n))
}

// PowerTwoSample returns the achieved power of a two-sample t-test with n
// samples per group at effect size d and two-sided significance alpha.
func PowerTwoSample(n int, d, alpha float64) float64 {
	if n < 2 {
		return 0
	}
	za := NormalQuantile(1 - alpha/2)
	ncp := d * math.Sqrt(float64(n)/2)
	return 1 - NormalCDF(za-ncp) + NormalCDF(-za-ncp)
}

// PaperSampleSize reproduces the paper's choice: 50 samples per group gives
// power ≥ 0.8 for a separation of half a standard deviation under the
// paper's calculation.
func PaperSampleSize() int { return 50 }

func validateEffect(d, alpha, beta float64) {
	if d <= 0 {
		panic("scibench: effect size must be positive")
	}
	if alpha <= 0 || alpha >= 1 || beta <= 0 || beta >= 1 {
		panic("scibench: alpha and beta must lie in (0,1)")
	}
}

// WelchTTest compares two sample groups without assuming equal variances,
// returning the t statistic, Welch–Satterthwaite degrees of freedom, and the
// two-sided p-value. This is the comparison the suite uses to decide whether
// two devices differ significantly on a benchmark.
func WelchTTest(a, b []float64) (t, df, p float64) {
	sa, sb := Summarize(a), Summarize(b)
	va := sa.SD * sa.SD / float64(sa.N)
	vb := sb.SD * sb.SD / float64(sb.N)
	if va+vb == 0 {
		if sa.Mean == sb.Mean {
			return 0, float64(sa.N + sb.N - 2), 1
		}
		return math.Inf(sign(sa.Mean - sb.Mean)), float64(sa.N + sb.N - 2), 0
	}
	t = (sa.Mean - sb.Mean) / math.Sqrt(va+vb)
	df = (va + vb) * (va + vb) /
		(va*va/float64(sa.N-1) + vb*vb/float64(sb.N-1))
	p = 2 * (1 - StudentCDF(math.Abs(t), df))
	return t, df, p
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}
