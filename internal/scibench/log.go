package scibench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Record is one measured sample: benchmark × size × device × sample index,
// with per-region time, energy and the PAPI-style counters — the same schema
// LibSciBench's trace files carry for the paper's R analysis scripts.
type Record struct {
	Benchmark string             `json:"benchmark"`
	Size      string             `json:"size"`
	Device    string             `json:"device"`
	Class     string             `json:"class"`
	Region    string             `json:"region"` // kernel | transfer | host
	Sample    int                `json:"sample"`
	TimeNs    float64            `json:"time_ns"`
	EnergyJ   float64            `json:"energy_j,omitempty"`
	Counters  map[string]float64 `json:"counters,omitempty"`
}

// WriteCSV emits records as CSV with a fixed header; counter columns are the
// union of all counter names, sorted, so files from different benchmarks
// align.
func WriteCSV(w io.Writer, recs []Record) error {
	names := map[string]bool{}
	for _, r := range recs {
		for k := range r.Counters {
			names[k] = true
		}
	}
	counters := make([]string, 0, len(names))
	for k := range names {
		counters = append(counters, k)
	}
	sort.Strings(counters)

	cw := csv.NewWriter(w)
	header := append([]string{"benchmark", "size", "device", "class", "region", "sample", "time_ns", "energy_j"}, counters...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range recs {
		row := []string{
			r.Benchmark, r.Size, r.Device, r.Class, r.Region,
			strconv.Itoa(r.Sample),
			strconv.FormatFloat(r.TimeNs, 'g', -1, 64),
			strconv.FormatFloat(r.EnergyJ, 'g', -1, 64),
		}
		for _, c := range counters {
			row = append(row, strconv.FormatFloat(r.Counters[c], 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSONL emits records as JSON lines.
func WriteJSONL(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("scibench: record %d: %w", i, err)
		}
	}
	return nil
}

// ReadJSONL parses records back from JSON lines (for tooling round trips).
func ReadJSONL(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for dec.More() {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}
