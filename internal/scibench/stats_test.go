package scibench

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N=%d", s.N)
	}
	if s.Mean != 5 {
		t.Fatalf("mean %f, want 5", s.Mean)
	}
	// Sample SD of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.SD-want) > 1e-12 {
		t.Fatalf("SD %f, want %f", s.SD, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max %f/%f", s.Min, s.Max)
	}
	if s.CV <= 0 {
		t.Fatal("CV should be positive")
	}
	if !(s.CI95Lo < s.Mean && s.Mean < s.CI95Hi) {
		t.Fatalf("CI [%f,%f] does not bracket mean", s.CI95Lo, s.CI95Hi)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.SD != 0 || s.CI95Lo != 3.5 || s.CI95Hi != 3.5 {
		t.Fatalf("degenerate summary %+v", s)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty sample accepted")
		}
	}()
	Summarize(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 0.25: 2, 0.5: 3, 0.75: 4, 1: 5}
	for q, want := range cases {
		if got := Quantile(xs, q); got != want {
			t.Errorf("Q(%.2f)=%f, want %f", q, got, want)
		}
	}
	if got := Quantile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Errorf("interpolated median %f, want 1.5", got)
	}
}

func TestBoxStats(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 100} // 100 is an outlier
	f := BoxStats(xs)
	if f.Median != 5 {
		t.Fatalf("median %f", f.Median)
	}
	if len(f.Outliers) != 1 || f.Outliers[0] != 100 {
		t.Fatalf("outliers %v, want [100]", f.Outliers)
	}
	if f.WhiskerHi == 100 {
		t.Fatal("whisker must exclude the outlier")
	}
	if f.WhiskerLo > f.Q1 || f.WhiskerHi < f.Q3 {
		t.Fatalf("whiskers [%f,%f] inside the box [%f,%f]", f.WhiskerLo, f.WhiskerHi, f.Q1, f.Q3)
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999} {
		x := NormalQuantile(p)
		if back := NormalCDF(x); math.Abs(back-p) > 1e-8 {
			t.Errorf("CDF(Quantile(%g)) = %g", p, back)
		}
	}
	if math.Abs(NormalQuantile(0.975)-1.959964) > 1e-5 {
		t.Errorf("z_0.975 = %f", NormalQuantile(0.975))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("p=0 accepted")
		}
	}()
	NormalQuantile(0)
}

func TestStudentCDFAgainstKnown(t *testing.T) {
	// t=2.009 with df=49 is the 0.975 quantile (tables).
	if got := StudentCDF(2.0096, 49); math.Abs(got-0.975) > 1e-3 {
		t.Errorf("StudentCDF(2.0096, 49) = %f, want ~0.975", got)
	}
	// Symmetry.
	if math.Abs(StudentCDF(-1.3, 10)+StudentCDF(1.3, 10)-1) > 1e-10 {
		t.Error("Student CDF not symmetric")
	}
	// Converges to normal for large df.
	if math.Abs(StudentCDF(1.96, 1e6)-NormalCDF(1.96)) > 1e-4 {
		t.Error("Student CDF does not converge to normal")
	}
}

func TestStudentQuantile(t *testing.T) {
	for _, df := range []float64{3, 10, 49, 200} {
		for _, p := range []float64{0.05, 0.5, 0.9, 0.975} {
			q := StudentQuantile(p, df)
			if back := StudentCDF(q, df); math.Abs(back-p) > 1e-6 {
				t.Errorf("df=%g p=%g: CDF(Q)=%g", df, p, back)
			}
		}
	}
}

func TestRegIncBeta(t *testing.T) {
	// I_x(1,1) = x.
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := RegIncBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Errorf("I_%g(1,1) = %g", x, got)
		}
	}
	// I_x(2,2) = 3x^2 - 2x^3.
	x := 0.3
	want := 3*x*x - 2*x*x*x
	if got := RegIncBeta(2, 2, x); math.Abs(got-want) > 1e-10 {
		t.Errorf("I_0.3(2,2) = %g, want %g", got, want)
	}
}

// Property: summary statistics respect ordering invariants.
func TestSummaryInvariants(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, int(n)+1)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		s := Summarize(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max &&
			s.Min == sorted[0] && s.Max == sorted[len(sorted)-1] &&
			s.Mean >= s.Min && s.Mean <= s.Max &&
			s.SD >= 0 && s.CI95Lo <= s.Mean && s.Mean <= s.CI95Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: shifting a sample shifts the mean and leaves the SD unchanged.
func TestSummaryShiftInvariance(t *testing.T) {
	f := func(seed int64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 30)
		ys := make([]float64, 30)
		for i := range xs {
			xs[i] = rng.Float64() * 10
			ys[i] = xs[i] + shift
		}
		a, b := Summarize(xs), Summarize(ys)
		return math.Abs(b.Mean-a.Mean-shift) < 1e-9*(1+math.Abs(shift)) &&
			math.Abs(b.SD-a.SD) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
