package scibench

import (
	"math"
	"sort"
)

// This file adds the sample-diagnostics layer of a scientific benchmarking
// workflow (Hoefler & Belli's "twelve ways" rules, which LibSciBench
// implements): normality checking before parametric tests, and
// autocorrelation checking before treating loop samples as independent.

// KSNormal runs a Lilliefors-style Kolmogorov–Smirnov test of the sample
// against a normal distribution with the sample's own mean and SD. It
// returns the KS statistic D and a conservative rejection decision at the
// 5% level (Lilliefors critical value ≈ 0.886/√n for n > 30).
func KSNormal(xs []float64) (d float64, rejectNormality bool) {
	n := len(xs)
	// Below ~20 samples the Lilliefors test has no useful power and its
	// small-sample critical values are far above 0.886/√n; report the
	// statistic but never reject.
	if n < 20 {
		if n >= 5 {
			d, _ = ksStatistic(xs)
		}
		return d, false
	}
	d, ok := ksStatistic(xs)
	if !ok {
		return 0, false
	}
	crit := 0.886 / math.Sqrt(float64(n))
	return d, d > crit
}

// ksStatistic computes the KS distance against the fitted normal; ok is
// false for degenerate (constant) samples.
func ksStatistic(xs []float64) (float64, bool) {
	n := len(xs)
	s := Summarize(xs)
	if s.SD == 0 {
		return 0, false // degenerate: constant sample
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var d float64
	for i, x := range sorted {
		z := (x - s.Mean) / s.SD
		cdf := NormalCDF(z)
		upper := float64(i+1)/float64(n) - cdf
		lower := cdf - float64(i)/float64(n)
		if upper > d {
			d = upper
		}
		if lower > d {
			d = lower
		}
	}
	return d, true
}

// Autocorrelation returns the lag-k sample autocorrelation coefficient.
// Near-zero values justify treating successive measurement-loop samples as
// independent; strong positive lag-1 autocorrelation indicates drift (e.g.
// thermal throttling) that would invalidate the CI computation.
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag <= 0 || lag >= n {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - mean
		den += d * d
		if i+lag < n {
			num += d * (xs[i+lag] - mean)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Diagnostics summarises the health of one sample group.
type Diagnostics struct {
	KSStatistic    float64
	NonNormal      bool
	Lag1           float64
	Autocorrelated bool
	// OutlierFrac is the Tukey-fence outlier fraction.
	OutlierFrac float64
}

// Diagnose runs all sample diagnostics.
func Diagnose(xs []float64) Diagnostics {
	var d Diagnostics
	d.KSStatistic, d.NonNormal = KSNormal(xs)
	d.Lag1 = Autocorrelation(xs, 1)
	// |r1| > 2/sqrt(n) is the usual white-noise band.
	if n := len(xs); n > 4 && math.Abs(d.Lag1) > 2/math.Sqrt(float64(n)) {
		d.Autocorrelated = true
	}
	if len(xs) > 0 {
		f := BoxStats(xs)
		d.OutlierFrac = float64(len(f.Outliers)) / float64(len(xs))
	}
	return d
}
