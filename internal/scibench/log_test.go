package scibench

import (
	"bytes"
	"strings"
	"testing"
)

func sampleRecords() []Record {
	return []Record{
		{Benchmark: "kmeans", Size: "tiny", Device: "i7-6700k", Class: "CPU", Region: "kernel",
			Sample: 0, TimeNs: 123456, EnergyJ: 0.05,
			Counters: map[string]float64{"PAPI_TOT_INS": 1e6, "PAPI_L1_DCM": 100}},
		{Benchmark: "kmeans", Size: "tiny", Device: "gtx1080", Class: "Consumer GPU", Region: "kernel",
			Sample: 1, TimeNs: 65432, EnergyJ: 0.01,
			Counters: map[string]float64{"PAPI_TOT_INS": 2e6, "PAPI_L2_DCM": 7}},
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want header + 2", len(lines))
	}
	header := lines[0]
	// Counter columns are the sorted union across records.
	if !strings.Contains(header, "PAPI_L1_DCM") || !strings.Contains(header, "PAPI_L2_DCM") {
		t.Fatalf("header missing counter union: %s", header)
	}
	if !strings.HasPrefix(header, "benchmark,size,device,class,region,sample,time_ns,energy_j") {
		t.Fatalf("unexpected header: %s", header)
	}
	if !strings.Contains(lines[1], "kmeans,tiny,i7-6700k,CPU,kernel,0,123456,0.05") {
		t.Fatalf("row 1 malformed: %s", lines[1])
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	recs := sampleRecords()
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("%d records back, want %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i].Benchmark != recs[i].Benchmark || back[i].TimeNs != recs[i].TimeNs ||
			back[i].Counters["PAPI_TOT_INS"] != recs[i].Counters["PAPI_TOT_INS"] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, back[i], recs[i])
		}
	}
}

func TestReadJSONLBad(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed JSONL accepted")
	}
}
