package suite

import (
	"testing"

	"opendwarfs/internal/dwarfs"
)

func TestSuiteOrderMatchesTable2(t *testing.T) {
	want := []string{"kmeans", "lud", "csr", "fft", "dwt", "srad", "crc", "nw", "gem", "nqueens", "hmm"}
	reg := New()
	all := reg.All()
	if len(all) != len(want) {
		t.Fatalf("%d benchmarks, want %d", len(all), len(want))
	}
	for i, b := range all {
		if b.Name() != want[i] {
			t.Errorf("position %d: %s, want %s (Table 2 order)", i, b.Name(), want[i])
		}
	}
}

func TestDwarfCoverage(t *testing.T) {
	// §2/§5: each benchmark names its Berkeley dwarf; fft and dwt share
	// Spectral Methods, everything else is distinct.
	reg := New()
	counts := map[string]int{}
	for _, b := range reg.All() {
		counts[b.Dwarf()]++
	}
	if counts["Spectral Methods"] != 2 {
		t.Errorf("Spectral Methods covered by %d benchmarks, want 2 (fft + dwt)", counts["Spectral Methods"])
	}
	for dwarf, n := range counts {
		if dwarf != "Spectral Methods" && n != 1 {
			t.Errorf("%s covered %d times", dwarf, n)
		}
	}
	expected := []string{
		"MapReduce", "Dense Linear Algebra", "Sparse Linear Algebra",
		"Spectral Methods", "Structured Grid", "Combinational Logic",
		"Dynamic Programming", "N-Body Methods",
		"Backtrack & Branch and Bound", "Graphical Models",
	}
	for _, d := range expected {
		if counts[d] == 0 {
			t.Errorf("dwarf %q not covered", d)
		}
	}
}

func TestEveryBenchmarkConstructsEverySize(t *testing.T) {
	reg := New()
	for _, b := range reg.All() {
		for _, size := range b.Sizes() {
			inst, err := b.New(size, 1)
			if err != nil {
				t.Errorf("%s/%s: %v", b.Name(), size, err)
				continue
			}
			if inst.FootprintBytes() <= 0 {
				t.Errorf("%s/%s: non-positive footprint", b.Name(), size)
			}
			if b.ArgString(size) == "" || b.ScaleParameter(size) == "" {
				t.Errorf("%s/%s: missing Table 2/3 metadata", b.Name(), size)
			}
		}
	}
}

func TestFootprintsOrderedBySize(t *testing.T) {
	// Within each benchmark, footprints must grow monotonically across the
	// supported sizes — the premise of the §4.4 methodology.
	reg := New()
	for _, b := range reg.All() {
		prev := int64(0)
		for _, size := range b.Sizes() {
			inst, err := b.New(size, 1)
			if err != nil {
				t.Fatal(err)
			}
			fp := inst.FootprintBytes()
			if fp <= prev {
				t.Errorf("%s: footprint not increasing at %s (%d after %d)", b.Name(), size, fp, prev)
			}
			prev = fp
		}
	}
	_ = dwarfs.Sizes()
}
