// Package suite assembles the Extended OpenDwarfs benchmark registry: the
// 11 benchmarks of the paper in Table 2 order, each representing one
// Berkeley dwarf (§2, §5).
package suite

import (
	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/dwarfs/crc"
	"opendwarfs/internal/dwarfs/csr"
	"opendwarfs/internal/dwarfs/dwt"
	"opendwarfs/internal/dwarfs/fft"
	"opendwarfs/internal/dwarfs/gem"
	"opendwarfs/internal/dwarfs/hmm"
	"opendwarfs/internal/dwarfs/kmeans"
	"opendwarfs/internal/dwarfs/lud"
	"opendwarfs/internal/dwarfs/nqueens"
	"opendwarfs/internal/dwarfs/nw"
	"opendwarfs/internal/dwarfs/srad"
)

// New returns the full suite registry in Table 2 order.
func New() *dwarfs.Registry {
	reg, err := dwarfs.NewRegistry(
		kmeans.New(),
		lud.New(),
		csr.New(),
		fft.New(),
		dwt.New(),
		srad.New(),
		crc.New(),
		nw.New(),
		gem.New(),
		nqueens.New(),
		hmm.New(),
	)
	if err != nil {
		panic(err) // static registration cannot collide
	}
	return reg
}
