package srad

import (
	"math"
	"testing"

	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
)

func newEnv(t *testing.T) (*opencl.Context, *opencl.CommandQueue) {
	t.Helper()
	dev, err := opencl.LookupDevice("r9-290x")
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := opencl.NewContext(dev)
	q, _ := opencl.NewQueue(ctx, dev)
	return ctx, q
}

func TestMetadata(t *testing.T) {
	b := New()
	if b.Name() != "srad" || b.Dwarf() != "Structured Grid" {
		t.Fatal("metadata")
	}
	if got := b.ArgString("tiny"); got != "80 16 0 127 0 127 0.5 1" {
		t.Fatalf("Table 3 args %q", got)
	}
	if got := b.ScaleParameter("large"); got != "2048,1024" {
		t.Fatalf("Φ %q", got)
	}
	if _, err := b.New("vast", 1); err == nil {
		t.Fatal("bad size accepted")
	}
	if _, err := NewInstance(1, 5, 1); err == nil {
		t.Fatal("degenerate grid accepted")
	}
}

func TestKernelMatchesSerial(t *testing.T) {
	for _, size := range []string{dwarfs.SizeTiny, dwarfs.SizeSmall} {
		ctx, q := newEnv(t)
		inst, err := New().New(size, 23)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Setup(ctx, q); err != nil {
			t.Fatal(err)
		}
		if err := dwarfs.CheckFootprint(inst, ctx); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := inst.Iterate(q); err != nil {
				t.Fatal(err)
			}
		}
		if err := inst.Verify(); err != nil {
			t.Fatalf("%s: %v", size, err)
		}
	}
}

func TestDiffusionSmooths(t *testing.T) {
	// Anisotropic diffusion must reduce total variation in homogeneous
	// regions: iterate and compare neighbour differences.
	ctx, q := newEnv(t)
	inst, err := NewInstance(64, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	tv := func(J []float32, rows, cols int) float64 {
		s := 0.0
		for i := 0; i < rows; i++ {
			for j := 0; j < cols-1; j++ {
				s += math.Abs(float64(J[i*cols+j+1] - J[i*cols+j]))
			}
		}
		return s
	}
	before := tv(inst.Grid(), 64, 64)
	for i := 0; i < 10; i++ {
		if err := inst.Iterate(q); err != nil {
			t.Fatal(err)
		}
	}
	after := tv(inst.Grid(), 64, 64)
	if after >= before {
		t.Fatalf("diffusion did not smooth: TV %f -> %f", before, after)
	}
}

func TestCoefficientRange(t *testing.T) {
	ctx, q := newEnv(t)
	inst, _ := NewInstance(32, 32, 9)
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	for idx, c := range inst.c {
		if c < 0 || c > 1 {
			t.Fatalf("diffusion coefficient %d = %f outside [0,1]", idx, c)
		}
	}
}

func TestROIClampedToGrid(t *testing.T) {
	// Table 3 requests ROI rows/cols 0–127 even for the 80×16 tiny grid.
	inst, err := NewInstance(80, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if inst.r2 != 79 || inst.c2 != 15 {
		t.Fatalf("ROI not clamped: r2=%d c2=%d", inst.r2, inst.c2)
	}
}

func TestFootprintsMatchPaperSizing(t *testing.T) {
	limits := map[string]float64{"tiny": 32, "small": 256, "medium": 8192}
	for size, lim := range limits {
		inst, _ := New().New(size, 1)
		if kib := float64(inst.FootprintBytes()) / 1024; kib > lim {
			t.Errorf("%s: %.1f KiB exceeds %g", size, kib, lim)
		}
	}
	large, _ := New().New("large", 1)
	if kib := float64(large.FootprintBytes()) / 1024; kib < 4*8192 {
		t.Errorf("large %.0f KiB below 4×L3", kib)
	}
}

func TestTwoKernelsPerIteration(t *testing.T) {
	ctx, q := newEnv(t)
	inst, _ := NewInstance(32, 32, 2)
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	q.DrainEvents()
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	kernels := 0
	for _, ev := range q.Events() {
		if ev.Kind == opencl.CommandKernel {
			kernels++
		}
	}
	if kernels != 2 {
		t.Fatalf("%d kernels per iteration, want 2 (srad1 + srad2)", kernels)
	}
}

func TestLifecycleErrors(t *testing.T) {
	inst, _ := NewInstance(16, 16, 1)
	_, q := newEnv(t)
	if err := inst.Iterate(q); err == nil {
		t.Fatal("Iterate before Setup accepted")
	}
	if err := inst.Verify(); err == nil {
		t.Fatal("Verify before Iterate accepted")
	}
}
