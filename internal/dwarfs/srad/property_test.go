package srad

import (
	"math"
	"testing"
	"testing/quick"

	"opendwarfs/internal/opencl"
)

// quickEnv builds a context/queue pair without a testing.T, for use inside
// testing/quick property functions.
func quickEnv() (*opencl.Context, *opencl.CommandQueue) {
	dev, err := opencl.LookupDevice("i7-6700k")
	if err != nil {
		return nil, nil
	}
	ctx, _ := opencl.NewContext(dev)
	q, _ := opencl.NewQueue(ctx, dev)
	return ctx, q
}

func TestConstantImageStable(t *testing.T) {
	// A homogeneous image has no speckle; diffusion must leave it exactly
	// in place rather than NaN-poisoning the grid (the robustness guard).
	ctx, q := newEnv(t)
	inst, err := NewInstance(32, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range inst.originalJ {
		inst.originalJ[i] = 2.5
	}
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 3; it++ {
		if err := inst.Iterate(q); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range inst.Grid() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("cell %d is %f after diffusing a constant image", i, v)
		}
		if v != 2.5 {
			t.Fatalf("constant image drifted: cell %d = %f", i, v)
		}
	}
	if err := inst.Verify(); err != nil {
		t.Fatal(err)
	}
}

// Property: diffusion keeps the grid finite and positive for arbitrary
// seeds and geometries.
func TestDiffusionFiniteProperty(t *testing.T) {
	f := func(seed int64, rRaw, cRaw uint8) bool {
		rows := int(rRaw)%30 + 2
		cols := int(cRaw)%30 + 2
		ctx, q := quickEnv()
		if ctx == nil {
			return false
		}
		inst, err := NewInstance(rows, cols, seed)
		if err != nil {
			return false
		}
		if err := inst.Setup(ctx, q); err != nil {
			return false
		}
		for it := 0; it < 3; it++ {
			if err := inst.Iterate(q); err != nil {
				return false
			}
		}
		for _, v := range inst.Grid() {
			fv := float64(v)
			if math.IsNaN(fv) || math.IsInf(fv, 0) || fv <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: kernel execution matches the serial replay for arbitrary
// geometries (not just the Table 2 ones).
func TestKernelSerialAgreementProperty(t *testing.T) {
	f := func(seed int64, rRaw, cRaw uint8) bool {
		rows := int(rRaw)%20 + 2
		cols := int(cRaw)%20 + 2
		ctx, q := quickEnv()
		inst, err := NewInstance(rows, cols, seed)
		if err != nil || ctx == nil {
			return false
		}
		if err := inst.Setup(ctx, q); err != nil {
			return false
		}
		if err := inst.Iterate(q); err != nil {
			return false
		}
		return inst.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
