// Package srad implements the Structured Grid dwarf: Speckle Reducing
// Anisotropic Diffusion (Rodinia's srad), an iterative PDE solver used to
// despeckle ultrasound imagery. Each iteration computes a region-of-interest
// statistic on the host, then runs two grid kernels: srad1 derives the
// four-neighbour gradients and the diffusion coefficient per cell, srad2
// applies the divergence update.
//
// The Structured Grid dwarf is the paper's canonical memory-bandwidth-bound
// pattern (§5.1): GPUs widen their lead as the problem grows (Fig. 3a).
package srad

import (
	"fmt"
	"math"
	"math/rand"

	"opendwarfs/internal/cache"
	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
	"opendwarfs/internal/sim"
)

// Lambda is the diffusion update weight (Table 3: 0.5).
const Lambda = 0.5

// geometry is one Table 2 grid: Φ1 rows × Φ2 cols.
type geometry struct{ Rows, Cols int }

// sizeGeom is the Table 2 workload scale parameter Φ.
var sizeGeom = map[string]geometry{
	dwarfs.SizeTiny:   {80, 16},
	dwarfs.SizeSmall:  {128, 80},
	dwarfs.SizeMedium: {1024, 336},
	dwarfs.SizeLarge:  {2048, 1024},
}

// Benchmark is the suite entry.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements dwarfs.Benchmark.
func (*Benchmark) Name() string { return "srad" }

// Dwarf implements dwarfs.Benchmark.
func (*Benchmark) Dwarf() string { return "Structured Grid" }

// Sizes implements dwarfs.Benchmark.
func (*Benchmark) Sizes() []string { return dwarfs.Sizes() }

// ScaleParameter implements dwarfs.Benchmark.
func (*Benchmark) ScaleParameter(size string) string {
	g := sizeGeom[size]
	return fmt.Sprintf("%d,%d", g.Rows, g.Cols)
}

// ArgString implements dwarfs.Benchmark (Table 3: srad Φ1 Φ2 0 127 0 127 0.5 1).
func (*Benchmark) ArgString(size string) string {
	g := sizeGeom[size]
	return fmt.Sprintf("%d %d 0 127 0 127 %g 1", g.Rows, g.Cols, Lambda)
}

// New implements dwarfs.Benchmark.
func (*Benchmark) New(size string, seed int64) (dwarfs.Instance, error) {
	g, ok := sizeGeom[size]
	if !ok {
		return nil, fmt.Errorf("srad: unsupported size %q", size)
	}
	return NewInstance(g.Rows, g.Cols, seed)
}

// Instance is one configured diffusion run.
type Instance struct {
	rows, cols int
	seed       int64
	// ROI bounds, clamped to the grid (Table 3 requests rows/cols 0–127).
	r1, r2, c1, c2 int

	originalJ            []float32
	J, c, dN, dS, dW, dE []float32
	bufs                 []*opencl.Buffer
	q0sqr                float32 // host-computed ROI statistic, read by srad1
	kSrad1, kSrad2       *opencl.Kernel
	iterations           int
	ran                  bool
}

// NewInstance builds an instance over a synthetic speckled image.
func NewInstance(rows, cols int, seed int64) (*Instance, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("srad: grid %dx%d too small", rows, cols)
	}
	in := &Instance{rows: rows, cols: cols, seed: seed}
	in.r1, in.r2, in.c1, in.c2 = 0, min(127, rows-1), 0, min(127, cols-1)
	// J = exp(I/255) over a random speckled image, as the original
	// benchmark derives its working grid from the input image.
	rng := rand.New(rand.NewSource(seed))
	in.originalJ = make([]float32, rows*cols)
	for i := range in.originalJ {
		in.originalJ[i] = float32(math.Exp(rng.Float64()))
	}
	return in, nil
}

// FootprintBytes implements dwarfs.Instance: six grid planes (J, c and the
// four directional derivatives).
func (in *Instance) FootprintBytes() int64 {
	return 6 * int64(in.rows) * int64(in.cols) * 4
}

// Setup implements dwarfs.Instance.
func (in *Instance) Setup(ctx *opencl.Context, q *opencl.CommandQueue) error {
	alloc := func(name string) []float32 {
		b, s := opencl.NewBuffer[float32](ctx, name, in.rows*in.cols)
		in.bufs = append(in.bufs, b)
		return s
	}
	in.J = alloc("J")
	in.c = alloc("c")
	in.dN = alloc("dN")
	in.dS = alloc("dS")
	in.dW = alloc("dW")
	in.dE = alloc("dE")
	copy(in.J, in.originalJ)

	rows, cols := in.rows, in.cols
	in.kSrad1 = &opencl.Kernel{
		Name: "srad1",
		Fn: func(wi *opencl.Item) {
			j := wi.GlobalID(0)
			i := wi.GlobalID(1)
			srad1Cell(in, i, j, rows, cols)
		},
		Profile: func(ndr opencl.NDRange) *sim.KernelProfile { return in.profile("srad1", ndr, 5*4, 5*4) },
	}
	in.kSrad2 = &opencl.Kernel{
		Name: "srad2",
		Fn: func(wi *opencl.Item) {
			j := wi.GlobalID(0)
			i := wi.GlobalID(1)
			srad2Cell(in, i, j, rows, cols)
		},
		Profile: func(ndr opencl.NDRange) *sim.KernelProfile { return in.profile("srad2", ndr, 6*4, 4) },
	}
	for _, b := range in.bufs {
		if b.Name() == "J" {
			q.EnqueueWrite(b)
		}
	}
	return nil
}

// srad1Cell computes the Rodinia srad kernel 1 update for one cell:
// four-neighbour gradients, instantaneous coefficient of variation, and the
// clamped diffusion coefficient.
func srad1Cell(in *Instance, i, j, rows, cols int) {
	idx := i*cols + j
	jc := in.J[idx]
	n := in.J[max(i-1, 0)*cols+j] - jc
	s := in.J[min(i+1, rows-1)*cols+j] - jc
	w := in.J[i*cols+max(j-1, 0)] - jc
	e := in.J[i*cols+min(j+1, cols-1)] - jc
	in.dN[idx], in.dS[idx], in.dW[idx], in.dE[idx] = n, s, w, e

	g2 := (n*n + s*s + w*w + e*e) / (jc * jc)
	l := (n + s + w + e) / jc
	num := 0.5*g2 - (l*l)/16
	den := 1 + 0.25*l
	qsqr := num / (den * den)
	if in.q0sqr == 0 {
		// Perfectly homogeneous ROI: no speckle to diffuse. The original
		// code divides by zero here and NaN-poisons the grid — one of the
		// robustness failures the paper's curation targets (§2); clamp to
		// full conduction instead.
		in.c[idx] = 1
		return
	}
	d := (qsqr - in.q0sqr) / (in.q0sqr * (1 + in.q0sqr))
	cv := 1 / (1 + d)
	if cv < 0 {
		cv = 0
	} else if cv > 1 {
		cv = 1
	}
	in.c[idx] = cv
}

// srad2Cell applies the divergence update for one cell.
func srad2Cell(in *Instance, i, j, rows, cols int) {
	idx := i*cols + j
	cN := in.c[idx]
	cS := in.c[min(i+1, rows-1)*cols+j]
	cW := in.c[idx]
	cE := in.c[i*cols+min(j+1, cols-1)]
	d := cN*in.dN[idx] + cS*in.dS[idx] + cW*in.dW[idx] + cE*in.dE[idx]
	in.J[idx] += 0.25 * Lambda * d
}

// profile characterises a grid pass: a classic five-point stencil,
// bandwidth-bound with short-range reuse.
func (in *Instance) profile(name string, ndr opencl.NDRange, loadBytes, storeBytes float64) *sim.KernelProfile {
	return &sim.KernelProfile{
		Name:              name,
		WorkItems:         ndr.TotalItems(),
		FlopsPerItem:      28,
		IntOpsPerItem:     10,
		LoadBytesPerItem:  loadBytes,
		StoreBytesPerItem: storeBytes,
		WorkingSetBytes:   in.FootprintBytes(),
		Pattern:           cache.Stencil,
		TemporalReuse:     0.55, // neighbour rows revisited within the sweep
		BranchesPerItem:   4,
		Vectorizable:      true,
	}
}

// Iterate implements dwarfs.Instance: one diffusion step (host ROI
// statistics + two kernels), the iteration count Table 3 requests.
func (in *Instance) Iterate(q *opencl.CommandQueue) error {
	if in.kSrad1 == nil {
		return fmt.Errorf("srad: Iterate before Setup")
	}
	if !q.SimulateOnly() {
		in.q0sqr = roiStatistic(in.J, in.cols, in.r1, in.r2, in.c1, in.c2)
	}
	lx, ly := gridLocal(in.cols), gridLocal(in.rows)
	if _, err := q.EnqueueNDRange(in.kSrad1, opencl.NDR2(in.cols, in.rows, lx, ly)); err != nil {
		return err
	}
	if _, err := q.EnqueueNDRange(in.kSrad2, opencl.NDR2(in.cols, in.rows, lx, ly)); err != nil {
		return err
	}
	if !q.SimulateOnly() {
		// Only executed steps advance the PDE state the replay verifies.
		in.iterations++
	}
	in.ran = true
	return nil
}

// roiStatistic returns q0² = var/mean² of J over the region of interest —
// the speckle statistic that parameterises the diffusion coefficient.
func roiStatistic(J []float32, cols, r1, r2, c1, c2 int) float32 {
	sum, sum2 := 0.0, 0.0
	n := 0
	for i := r1; i <= r2; i++ {
		for j := c1; j <= c2; j++ {
			v := float64(J[i*cols+j])
			sum += v
			sum2 += v * v
			n++
		}
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	return float32(variance / (mean * mean))
}

// gridLocal picks a power-of-two work-group edge ≤ 16 dividing n.
func gridLocal(n int) int {
	for _, l := range []int{16, 8, 4, 2} {
		if n%l == 0 {
			return l
		}
	}
	return 1
}

// Grid exposes the current diffusion state.
func (in *Instance) Grid() []float32 { return in.J }

// Verify implements dwarfs.Instance: replay the same number of iterations
// serially and require bitwise-identical grids (same per-cell arithmetic
// order).
func (in *Instance) Verify() error {
	if !in.ran {
		return fmt.Errorf("srad: Verify before Iterate")
	}
	ref := &Instance{
		rows: in.rows, cols: in.cols,
		r1: in.r1, r2: in.r2, c1: in.c1, c2: in.c2,
		J:  append([]float32(nil), in.originalJ...),
		c:  make([]float32, in.rows*in.cols),
		dN: make([]float32, in.rows*in.cols),
		dS: make([]float32, in.rows*in.cols),
		dW: make([]float32, in.rows*in.cols),
		dE: make([]float32, in.rows*in.cols),
	}
	for it := 0; it < in.iterations; it++ {
		ref.q0sqr = roiStatistic(ref.J, ref.cols, ref.r1, ref.r2, ref.c1, ref.c2)
		for i := 0; i < ref.rows; i++ {
			for j := 0; j < ref.cols; j++ {
				srad1Cell(ref, i, j, ref.rows, ref.cols)
			}
		}
		for i := 0; i < ref.rows; i++ {
			for j := 0; j < ref.cols; j++ {
				srad2Cell(ref, i, j, ref.rows, ref.cols)
			}
		}
	}
	for idx := range ref.J {
		if ref.J[idx] != in.J[idx] {
			return fmt.Errorf("srad: cell %d = %f, reference %f", idx, in.J[idx], ref.J[idx])
		}
	}
	return nil
}
