package nw

import (
	"math/rand"
	"testing"
	"testing/quick"

	"opendwarfs/internal/opencl"
)

func quickEnv() (*opencl.Context, *opencl.CommandQueue) {
	dev, err := opencl.LookupDevice("i7-6700k")
	if err != nil {
		return nil, nil
	}
	ctx, _ := opencl.NewContext(dev)
	q, _ := opencl.NewQueue(ctx, dev)
	return ctx, q
}

func runNW(n int, seed int64) *Instance {
	ctx, q := quickEnv()
	if ctx == nil {
		return nil
	}
	inst, err := NewInstance(n, seed)
	if err != nil {
		return nil
	}
	if err := inst.Setup(ctx, q); err != nil {
		return nil
	}
	if err := inst.Iterate(q); err != nil {
		return nil
	}
	return inst
}

// Property: blocked wavefront equals the serial DP for arbitrary seeds and
// block multiples.
func TestWavefrontSerialAgreementProperty(t *testing.T) {
	f := func(seed int64, nbRaw uint8) bool {
		nb := int(nbRaw)%3 + 1
		inst := runNW(nb*BlockSize, seed)
		return inst != nil && inst.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: every interior cell satisfies the DP recurrence — a local
// invariant that catches block-boundary bugs directly.
func TestRecurrenceHoldsAtRandomCells(t *testing.T) {
	inst := runNW(4*BlockSize, 77)
	if inst == nil {
		t.Fatal("setup failed")
	}
	dim := inst.n + 1
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		i := rng.Intn(inst.n) + 1
		j := rng.Intn(inst.n) + 1
		want := inst.m[(i-1)*dim+j-1] + inst.reference[i*dim+j]
		if up := inst.m[(i-1)*dim+j] - Penalty; up > want {
			want = up
		}
		if left := inst.m[i*dim+j-1] - Penalty; left > want {
			want = left
		}
		if inst.m[i*dim+j] != want {
			t.Fatalf("cell (%d,%d) = %d violates the recurrence (want %d)", i, j, inst.m[i*dim+j], want)
		}
	}
}

// Property: the optimal score never exceeds the perfect-match upper bound
// n × max(table) and never drops below the all-gap lower bound −2n·penalty.
func TestScoreBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		inst := runNW(2*BlockSize, seed)
		if inst == nil {
			return false
		}
		var maxScore int32
		for _, v := range inst.score {
			if v > maxScore {
				maxScore = v
			}
		}
		s := inst.Score()
		upper := int32(inst.n) * maxScore
		lower := int32(-2 * inst.n * Penalty)
		return s <= upper && s >= lower
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
