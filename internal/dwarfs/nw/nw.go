// Package nw implements the Dynamic Programming dwarf: Needleman-Wunsch
// global sequence alignment (Rodinia's needle). The score matrix is filled
// block anti-diagonal by block anti-diagonal — one kernel launch per
// diagonal, ~2·(n/16) launches per alignment — which makes the benchmark a
// stress test of kernel-launch overhead. That is the mechanism behind
// Fig. 3b: AMD devices, with the highest per-enqueue cost, fall further
// behind as the problem (and launch count) grows, while Intel CPUs and
// Nvidia GPUs stay comparable.
package nw

import (
	"fmt"
	"math/rand"

	"opendwarfs/internal/cache"
	"opendwarfs/internal/data"
	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
	"opendwarfs/internal/sim"
)

// BlockSize is the tile edge of the wavefront decomposition.
const BlockSize = 16

// Penalty is the gap penalty (Table 3: nw Φ 10).
const Penalty = 10

// Alphabet is the residue alphabet size (Rodinia uses amino-acid codes).
const Alphabet = 23

// nBySize is the Table 2 workload scale parameter Φ (sequence length).
var nBySize = map[string]int{
	dwarfs.SizeTiny:   48,
	dwarfs.SizeSmall:  176,
	dwarfs.SizeMedium: 1008,
	dwarfs.SizeLarge:  4096,
}

// Benchmark is the suite entry.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements dwarfs.Benchmark.
func (*Benchmark) Name() string { return "nw" }

// Dwarf implements dwarfs.Benchmark.
func (*Benchmark) Dwarf() string { return "Dynamic Programming" }

// Sizes implements dwarfs.Benchmark.
func (*Benchmark) Sizes() []string { return dwarfs.Sizes() }

// ScaleParameter implements dwarfs.Benchmark.
func (*Benchmark) ScaleParameter(size string) string { return fmt.Sprintf("%d", nBySize[size]) }

// ArgString implements dwarfs.Benchmark (Table 3: nw Φ 10).
func (*Benchmark) ArgString(size string) string { return fmt.Sprintf("%d %d", nBySize[size], Penalty) }

// New implements dwarfs.Benchmark.
func (*Benchmark) New(size string, seed int64) (dwarfs.Instance, error) {
	n, ok := nBySize[size]
	if !ok {
		return nil, fmt.Errorf("nw: unsupported size %q", size)
	}
	return NewInstance(n, seed)
}

// Instance is one configured alignment.
type Instance struct {
	n, nb int
	seed  int64

	seq1, seq2 []int32 // column and row residues
	score      []int32 // Alphabet+1 square similarity table
	reference  []int32 // (n+1)² per-cell match scores
	m          []int32 // (n+1)² DP matrix (in place)

	refBuf, mBuf *opencl.Buffer
	diag         int // current anti-diagonal, read by the kernel closure
	kernel       *opencl.Kernel
	ran          bool
}

// NewInstance builds an instance; n must be a positive multiple of the
// block size, as in the original benchmark.
func NewInstance(n int, seed int64) (*Instance, error) {
	if n <= 0 || n%BlockSize != 0 {
		return nil, fmt.Errorf("nw: n=%d must be a positive multiple of %d", n, BlockSize)
	}
	in := &Instance{n: n, nb: n / BlockSize, seed: seed}
	in.seq1 = data.RandomSequence(n, Alphabet, seed)
	in.seq2 = data.RandomSequence(n, Alphabet, seed+1)
	// Deterministic symmetric substitution table in [-4, 11], standing in
	// for blosum62.
	rng := rand.New(rand.NewSource(seed + 2))
	k := Alphabet + 1
	in.score = make([]int32, k*k)
	for a := 0; a < k; a++ {
		for b := a; b < k; b++ {
			v := int32(rng.Intn(16) - 4)
			if a == b {
				v = int32(rng.Intn(6) + 4) // matches score high
			}
			in.score[a*k+b] = v
			in.score[b*k+a] = v
		}
	}
	return in, nil
}

// FootprintBytes implements dwarfs.Instance: the DP matrix and the
// per-cell reference scores, both (n+1)².
func (in *Instance) FootprintBytes() int64 {
	s := int64(in.n + 1)
	return 2 * s * s * 4
}

// Setup implements dwarfs.Instance.
func (in *Instance) Setup(ctx *opencl.Context, q *opencl.CommandQueue) error {
	dim := in.n + 1
	in.refBuf, in.reference = opencl.NewBuffer[int32](ctx, "reference", dim*dim)
	in.mBuf, in.m = opencl.NewBuffer[int32](ctx, "itemsets", dim*dim)
	k := Alphabet + 1
	for i := 1; i < dim; i++ {
		for j := 1; j < dim; j++ {
			in.reference[i*dim+j] = in.score[int(in.seq2[i-1])*k+int(in.seq1[j-1])]
		}
	}
	in.initMatrix()

	in.kernel = &opencl.Kernel{
		Name: "nw_block",
		Fn: func(wi *opencl.Item) {
			lo := max(0, in.diag-in.nb+1)
			bi := lo + wi.GlobalID(0)
			bj := in.diag - bi
			in.processBlock(bi, bj)
		},
		Profile: in.profile,
	}
	q.EnqueueWrite(in.refBuf)
	q.EnqueueWrite(in.mBuf)
	return nil
}

// initMatrix resets the DP matrix borders: row 0 and column 0 carry the
// accumulating gap penalties.
func (in *Instance) initMatrix() {
	dim := in.n + 1
	clear(in.m)
	for i := 1; i < dim; i++ {
		in.m[i*dim] = int32(-i * Penalty)
		in.m[i] = int32(-i * Penalty)
	}
}

// processBlock fills one 16×16 tile; its north and west neighbours are
// complete because they lie on earlier anti-diagonals.
func (in *Instance) processBlock(bi, bj int) {
	dim := in.n + 1
	r0 := bi*BlockSize + 1
	c0 := bj*BlockSize + 1
	for i := r0; i < r0+BlockSize; i++ {
		row := i * dim
		prow := row - dim
		for j := c0; j < c0+BlockSize; j++ {
			v := in.m[prow+j-1] + in.reference[row+j]
			if up := in.m[prow+j] - Penalty; up > v {
				v = up
			}
			if left := in.m[row+j-1] - Penalty; left > v {
				v = left
			}
			in.m[row+j] = v
		}
	}
}

// profile characterises one diagonal launch: Rodinia processes each tile
// with a 16-thread group working the internal wavefront, so the modelled
// item count is blocks × 16 with 16 cells each.
func (in *Instance) profile(ndr opencl.NDRange) *sim.KernelProfile {
	blocks := ndr.TotalItems()
	return &sim.KernelProfile{
		Name:      "nw_block",
		WorkItems: blocks * BlockSize,
		// 16 cells per modelled thread, ~6 integer ops per cell.
		IntOpsPerItem:     6 * BlockSize,
		LoadBytesPerItem:  BlockSize * 3 * 4 / 2, // north/west/reference, tile-cached
		StoreBytesPerItem: BlockSize * 4,
		WorkingSetBytes:   in.FootprintBytes(),
		Pattern:           cache.Strided,
		TemporalReuse:     0.7,
		BranchesPerItem:   2 * BlockSize,
		Divergence:        0.25, // internal wavefront leaves threads idle
		SerialFraction:    0.02,
		Vectorizable:      true,
	}
}

// Iterate implements dwarfs.Instance: reset the matrix (transfer region)
// and sweep all 2·nb−1 block anti-diagonals, one launch each.
func (in *Instance) Iterate(q *opencl.CommandQueue) error {
	if in.kernel == nil {
		return fmt.Errorf("nw: Iterate before Setup")
	}
	if !q.SimulateOnly() {
		in.initMatrix()
	}
	q.EnqueueWrite(in.mBuf)
	for d := 0; d <= 2*(in.nb-1); d++ {
		in.diag = d
		lo := max(0, d-in.nb+1)
		hi := min(d, in.nb-1)
		blocks := hi - lo + 1
		if _, err := q.EnqueueNDRange(in.kernel, opencl.NDR1(blocks, 1)); err != nil {
			return err
		}
	}
	in.ran = true
	return nil
}

// Launches returns the kernel launches per alignment — the quantity that
// drives the Fig. 3b AMD divergence.
func (in *Instance) Launches() int { return 2*in.nb - 1 }

// Score returns the optimal global alignment score of the last Iterate.
func (in *Instance) Score() int32 {
	dim := in.n + 1
	return in.m[dim*dim-1]
}

// Verify implements dwarfs.Instance: the full serial DP must match every
// cell exactly (integer arithmetic).
func (in *Instance) Verify() error {
	if !in.ran {
		return fmt.Errorf("nw: Verify before Iterate")
	}
	dim := in.n + 1
	ref := make([]int32, dim*dim)
	for i := 1; i < dim; i++ {
		ref[i*dim] = int32(-i * Penalty)
		ref[i] = int32(-i * Penalty)
	}
	for i := 1; i < dim; i++ {
		for j := 1; j < dim; j++ {
			v := ref[(i-1)*dim+j-1] + in.reference[i*dim+j]
			if up := ref[(i-1)*dim+j] - Penalty; up > v {
				v = up
			}
			if left := ref[i*dim+j-1] - Penalty; left > v {
				v = left
			}
			ref[i*dim+j] = v
		}
	}
	for idx := range ref {
		if ref[idx] != in.m[idx] {
			return fmt.Errorf("nw: cell %d = %d, reference %d", idx, in.m[idx], ref[idx])
		}
	}
	return nil
}
