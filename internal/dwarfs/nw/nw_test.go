package nw

import (
	"testing"

	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
)

func newEnv(t *testing.T) (*opencl.Context, *opencl.CommandQueue) {
	t.Helper()
	dev, err := opencl.LookupDevice("i7-6700k")
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := opencl.NewContext(dev)
	q, _ := opencl.NewQueue(ctx, dev)
	return ctx, q
}

func TestMetadata(t *testing.T) {
	b := New()
	if b.Name() != "nw" || b.Dwarf() != "Dynamic Programming" {
		t.Fatal("metadata")
	}
	if got := b.ArgString("large"); got != "4096 10" {
		t.Fatalf("Table 3 args %q", got)
	}
	if _, err := b.New("huge", 1); err == nil {
		t.Fatal("bad size accepted")
	}
	if _, err := NewInstance(50, 1); err == nil {
		t.Fatal("non-multiple-of-16 length accepted")
	}
}

func TestKernelMatchesSerial(t *testing.T) {
	for _, size := range []string{dwarfs.SizeTiny, dwarfs.SizeSmall} {
		ctx, q := newEnv(t)
		inst, err := New().New(size, 31)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Setup(ctx, q); err != nil {
			t.Fatal(err)
		}
		if err := dwarfs.CheckFootprint(inst, ctx); err != nil {
			t.Fatal(err)
		}
		if err := inst.Iterate(q); err != nil {
			t.Fatal(err)
		}
		if err := inst.Verify(); err != nil {
			t.Fatalf("%s: %v", size, err)
		}
	}
}

func TestIdenticalSequencesScoreHighest(t *testing.T) {
	// Aligning a sequence against itself must not be beaten by aligning
	// it against an unrelated sequence (with this match-positive table).
	ctx, q := newEnv(t)
	same, err := NewInstance(2*BlockSize, 5)
	if err != nil {
		t.Fatal(err)
	}
	same.seq2 = append([]int32(nil), same.seq1...) // identical sequences
	if err := same.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := same.Iterate(q); err != nil {
		t.Fatal(err)
	}

	ctx2, q2 := newEnv(t)
	diff, _ := NewInstance(2*BlockSize, 5)
	if err := diff.Setup(ctx2, q2); err != nil {
		t.Fatal(err)
	}
	if err := diff.Iterate(q2); err != nil {
		t.Fatal(err)
	}
	if same.Score() <= diff.Score() {
		t.Fatalf("self-alignment score %d not above cross-alignment %d", same.Score(), diff.Score())
	}
}

func TestScoreSymmetry(t *testing.T) {
	// Swapping the two sequences transposes the DP matrix; the final score
	// is identical because the substitution table is symmetric.
	ctx, q := newEnv(t)
	a, _ := NewInstance(3*BlockSize, 7)
	if err := a.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := a.Iterate(q); err != nil {
		t.Fatal(err)
	}

	ctx2, q2 := newEnv(t)
	b, _ := NewInstance(3*BlockSize, 7)
	b.seq1, b.seq2 = b.seq2, b.seq1
	if err := b.Setup(ctx2, q2); err != nil {
		t.Fatal(err)
	}
	if err := b.Iterate(q2); err != nil {
		t.Fatal(err)
	}
	if a.Score() != b.Score() {
		t.Fatalf("alignment score not symmetric: %d vs %d", a.Score(), b.Score())
	}
}

func TestLaunchCountIsWavefront(t *testing.T) {
	ctx, q := newEnv(t)
	inst, _ := NewInstance(4*BlockSize, 1)
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	q.DrainEvents()
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	kernels := 0
	for _, ev := range q.Events() {
		if ev.Kind == opencl.CommandKernel {
			kernels++
		}
	}
	want := 2*4 - 1
	if kernels != want {
		t.Fatalf("%d launches, want %d (2·nb−1)", kernels, want)
	}
	if inst.Launches() != want {
		t.Fatalf("Launches() = %d", inst.Launches())
	}
}

func TestRepeatedIterations(t *testing.T) {
	ctx, q := newEnv(t)
	inst, _ := NewInstance(2*BlockSize, 3)
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	var first int32
	for i := 0; i < 3; i++ {
		if err := inst.Iterate(q); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = inst.Score()
		}
	}
	if inst.Score() != first {
		t.Fatal("alignment score drifted across iterations")
	}
	if err := inst.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestGapOnlyBorders(t *testing.T) {
	ctx, q := newEnv(t)
	inst, _ := NewInstance(BlockSize, 11)
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	dim := inst.n + 1
	for i := 1; i < dim; i++ {
		if inst.m[i*dim] != int32(-i*Penalty) || inst.m[i] != int32(-i*Penalty) {
			t.Fatalf("border row/col corrupted at %d", i)
		}
	}
}

func TestLifecycleErrors(t *testing.T) {
	inst, _ := NewInstance(BlockSize, 1)
	_, q := newEnv(t)
	if err := inst.Iterate(q); err == nil {
		t.Fatal("Iterate before Setup accepted")
	}
	if err := inst.Verify(); err == nil {
		t.Fatal("Verify before Iterate accepted")
	}
}
