package csr

import (
	"math"
	"testing"
	"testing/quick"

	"opendwarfs/internal/data"
	"opendwarfs/internal/opencl"
)

func quickEnv() (*opencl.Context, *opencl.CommandQueue) {
	dev, err := opencl.LookupDevice("r9-furyx")
	if err != nil {
		return nil, nil
	}
	ctx, _ := opencl.NewContext(dev)
	q, _ := opencl.NewQueue(ctx, dev)
	return ctx, q
}

// Property: the SpMV kernel matches the serial reference for arbitrary
// matrix sizes and densities.
func TestSpMVAgreementProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, dRaw uint8) bool {
		n := int(nRaw)%300 + 4
		density := float64(dRaw%50+1) / 100
		ctx, q := quickEnv()
		if ctx == nil {
			return false
		}
		inst, err := NewInstance(n, density, seed)
		if err != nil {
			return false
		}
		if err := inst.Setup(ctx, q); err != nil {
			return false
		}
		if err := inst.Iterate(q); err != nil {
			return false
		}
		return inst.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: SpMV is linear — A(αx) = α(Ax), computed serially on the same
// generated matrix the benchmark uses.
func TestSpMVLinearityProperty(t *testing.T) {
	f := func(seed int64, alphaRaw int8) bool {
		alpha := float32(alphaRaw) / 16
		m, err := data.CreateCSR(128, 0.05, seed)
		if err != nil {
			return false
		}
		x := make([]float32, 128)
		ax := make([]float32, 128)
		for i := range x {
			x[i] = float32(i%7) - 3
			ax[i] = alpha * x[i]
		}
		y1 := make([]float32, 128)
		y2 := make([]float32, 128)
		m.MulVec(x, y1)
		m.MulVec(ax, y2)
		for i := range y1 {
			if math.Abs(float64(y2[i]-alpha*y1[i])) > 1e-4*(1+math.Abs(float64(alpha*y1[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a zero vector maps to a zero vector.
func TestSpMVZeroProperty(t *testing.T) {
	f := func(seed int64) bool {
		m, err := data.CreateCSR(64, 0.1, seed)
		if err != nil {
			return false
		}
		x := make([]float32, 64)
		y := make([]float32, 64)
		m.MulVec(x, y)
		for _, v := range y {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
