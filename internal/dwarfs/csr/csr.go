// Package csr implements the Sparse Linear Algebra dwarf: sparse
// matrix–vector multiplication y = A·x over a compressed-sparse-row matrix
// produced by the createcsr generator (Table 3: csr -i Ψ where
// Ψ = createcsr -n Φ -d 5000, i.e. 0.5% dense).
package csr

import (
	"fmt"
	"math"
	"math/rand"

	"opendwarfs/internal/cache"
	"opendwarfs/internal/data"
	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
	"opendwarfs/internal/sim"
)

// Density is the paper's matrix density (Table 3 note: "-d 5000 indicates
// ... 0.5% dense (or 99.5% sparse)").
const Density = 0.005

// nBySize is the Table 2 workload scale parameter Φ.
var nBySize = map[string]int{
	dwarfs.SizeTiny:   736,
	dwarfs.SizeSmall:  2416,
	dwarfs.SizeMedium: 14336,
	dwarfs.SizeLarge:  16384,
}

// Benchmark is the suite entry.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements dwarfs.Benchmark.
func (*Benchmark) Name() string { return "csr" }

// Dwarf implements dwarfs.Benchmark.
func (*Benchmark) Dwarf() string { return "Sparse Linear Algebra" }

// Sizes implements dwarfs.Benchmark.
func (*Benchmark) Sizes() []string { return dwarfs.Sizes() }

// ScaleParameter implements dwarfs.Benchmark.
func (*Benchmark) ScaleParameter(size string) string { return fmt.Sprintf("%d", nBySize[size]) }

// ArgString implements dwarfs.Benchmark (Table 3).
func (*Benchmark) ArgString(size string) string {
	return fmt.Sprintf("-i <createcsr -n %d -d 5000>", nBySize[size])
}

// New implements dwarfs.Benchmark.
func (*Benchmark) New(size string, seed int64) (dwarfs.Instance, error) {
	n, ok := nBySize[size]
	if !ok {
		return nil, fmt.Errorf("csr: unsupported size %q", size)
	}
	return NewInstance(n, Density, seed)
}

// Instance is one configured SpMV run.
type Instance struct {
	mat  *data.CSR
	x, y []float32

	rowBuf, colBuf, valBuf, xBuf, yBuf *opencl.Buffer
	kernel                             *opencl.Kernel
	ran                                bool
}

// NewInstance builds an instance over a freshly generated matrix.
func NewInstance(n int, density float64, seed int64) (*Instance, error) {
	mat, err := data.CreateCSR(n, density, seed)
	if err != nil {
		return nil, err
	}
	return &Instance{mat: mat}, nil
}

// FootprintBytes implements dwarfs.Instance: rowptr + cols + vals + x + y.
func (in *Instance) FootprintBytes() int64 { return in.mat.FootprintBytes() }

// Matrix exposes the generated matrix (for the sizing tool).
func (in *Instance) Matrix() *data.CSR { return in.mat }

// Setup implements dwarfs.Instance.
func (in *Instance) Setup(ctx *opencl.Context, q *opencl.CommandQueue) error {
	m := in.mat
	var rowPtr []int32
	var cols []int32
	var vals []float32
	in.rowBuf, rowPtr = opencl.NewBuffer[int32](ctx, "rowptr", len(m.RowPtr))
	in.colBuf, cols = opencl.NewBuffer[int32](ctx, "cols", len(m.Cols))
	in.valBuf, vals = opencl.NewBuffer[float32](ctx, "vals", len(m.Vals))
	in.xBuf, in.x = opencl.NewBuffer[float32](ctx, "x", m.N)
	in.yBuf, in.y = opencl.NewBuffer[float32](ctx, "y", m.N)
	copy(rowPtr, m.RowPtr)
	copy(cols, m.Cols)
	copy(vals, m.Vals)
	rng := rand.New(rand.NewSource(7))
	for i := range in.x {
		in.x[i] = float32(rng.Float64()*2 - 1)
	}

	x, y := in.x, in.y
	in.kernel = &opencl.Kernel{
		Name: "csr_spmv",
		Fn: func(wi *opencl.Item) {
			row := wi.GlobalID(0)
			sum := float32(0)
			for k := rowPtr[row]; k < rowPtr[row+1]; k++ {
				sum += vals[k] * x[cols[k]]
			}
			y[row] = sum
		},
		Profile: in.profile,
	}

	q.EnqueueWrite(in.rowBuf)
	q.EnqueueWrite(in.colBuf)
	q.EnqueueWrite(in.valBuf)
	q.EnqueueWrite(in.xBuf)
	return nil
}

// profile characterises SpMV: two flops per non-zero. The dominant traffic
// (vals and cols) is a single streaming pass; the data-dependent gathers
// target only the x vector, which fits in cache at every Table 2 size
// (64 KiB at n=16384), so they resolve as temporal reuse rather than DRAM
// randomness. This is why GPUs win csr outright in Fig. 2c: the benchmark is
// bandwidth-bound on streamed matrix data.
func (in *Instance) profile(ndr opencl.NDRange) *sim.KernelProfile {
	nnzPerRow := float64(in.mat.NNZ()) / float64(in.mat.N)
	return &sim.KernelProfile{
		Name:              "csr_spmv",
		WorkItems:         ndr.TotalItems(),
		FlopsPerItem:      2 * nnzPerRow,
		IntOpsPerItem:     2*nnzPerRow + 4,
		LoadBytesPerItem:  nnzPerRow*(4+4+4) + 8, // vals, cols, x gather, rowptr pair
		StoreBytesPerItem: 4,
		WorkingSetBytes:   in.mat.FootprintBytes(),
		Pattern:           cache.Streaming,
		TemporalReuse:     0.35, // the x-gather third of the traffic stays cached
		BranchesPerItem:   nnzPerRow,
		Divergence:        0.15, // row-length imbalance across a SIMD group
		Vectorizable:      true,
	}
}

// Iterate implements dwarfs.Instance: one SpMV.
func (in *Instance) Iterate(q *opencl.CommandQueue) error {
	if in.kernel == nil {
		return fmt.Errorf("csr: Iterate before Setup")
	}
	local := 64
	for in.mat.N%local != 0 {
		local /= 2
	}
	if _, err := q.EnqueueNDRange(in.kernel, opencl.NDR1(in.mat.N, local)); err != nil {
		return err
	}
	in.ran = true
	return nil
}

// Verify implements dwarfs.Instance against the serial reference.
func (in *Instance) Verify() error {
	if !in.ran {
		return fmt.Errorf("csr: Verify before Iterate")
	}
	want := make([]float32, in.mat.N)
	in.mat.MulVec(in.x, want)
	for i := range want {
		if diff := math.Abs(float64(want[i] - in.y[i])); diff > 1e-5*(1+math.Abs(float64(want[i]))) {
			return fmt.Errorf("csr: y[%d] = %f, reference %f", i, in.y[i], want[i])
		}
	}
	return nil
}
