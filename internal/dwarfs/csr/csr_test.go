package csr

import (
	"testing"

	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
)

func newEnv(t *testing.T) (*opencl.Context, *opencl.CommandQueue) {
	t.Helper()
	dev, err := opencl.LookupDevice("gtx1080")
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := opencl.NewContext(dev)
	q, _ := opencl.NewQueue(ctx, dev)
	return ctx, q
}

func TestMetadata(t *testing.T) {
	b := New()
	if b.Name() != "csr" || b.Dwarf() != "Sparse Linear Algebra" {
		t.Fatal("metadata")
	}
	if got := b.ScaleParameter("tiny"); got != "736" {
		t.Fatalf("Φ(tiny) = %q", got)
	}
	if got := b.ScaleParameter("large"); got != "16384" {
		t.Fatalf("Φ(large) = %q", got)
	}
	if _, err := b.New("nope", 1); err == nil {
		t.Fatal("bad size accepted")
	}
}

func TestSpMVMatchesReference(t *testing.T) {
	for _, size := range []string{dwarfs.SizeTiny, dwarfs.SizeSmall} {
		ctx, q := newEnv(t)
		inst, err := New().New(size, 5)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Setup(ctx, q); err != nil {
			t.Fatal(err)
		}
		if err := dwarfs.CheckFootprint(inst, ctx); err != nil {
			t.Fatal(err)
		}
		if err := inst.Iterate(q); err != nil {
			t.Fatal(err)
		}
		if err := inst.Verify(); err != nil {
			t.Fatalf("%s: %v", size, err)
		}
	}
}

func TestRepeatedIterationsStable(t *testing.T) {
	ctx, q := newEnv(t)
	inst, err := NewInstance(512, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := inst.Iterate(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := inst.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestTinyFootprintFitsL1(t *testing.T) {
	inst, err := New().New(dwarfs.SizeTiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if kib := float64(inst.FootprintBytes()) / 1024; kib > 32 {
		t.Fatalf("tiny csr %.1f KiB exceeds L1", kib)
	}
}

func TestLifecycleErrors(t *testing.T) {
	inst, _ := NewInstance(64, 0.1, 1)
	_, q := newEnv(t)
	if err := inst.Iterate(q); err == nil {
		t.Fatal("Iterate before Setup accepted")
	}
	if err := inst.Verify(); err == nil {
		t.Fatal("Verify before Iterate accepted")
	}
}

func TestProfileReflectsDensity(t *testing.T) {
	sparse, _ := NewInstance(1024, 0.005, 1)
	dense, _ := NewInstance(1024, 0.1, 1)
	ps := sparse.profile(opencl.NDR1(1024, 64))
	pd := dense.profile(opencl.NDR1(1024, 64))
	if pd.FlopsPerItem <= ps.FlopsPerItem {
		t.Fatal("denser matrix must carry more flops per row")
	}
	if err := ps.Validate(); err != nil {
		t.Fatal(err)
	}
}
