// Package kmeans implements the MapReduce dwarf of the Extended OpenDwarfs
// suite (§4.4.1): iterative k-means clustering of a randomly generated
// feature space. The paper extended the original benchmark to generate its
// points ("-g") rather than load them from file, to fairly exercise caches,
// and fixed the cluster count at 5.
package kmeans

import (
	"fmt"
	"math"

	"opendwarfs/internal/cache"
	"opendwarfs/internal/data"
	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
	"opendwarfs/internal/sim"
)

const (
	// Clusters is fixed for all problem sizes (§4.4.1).
	Clusters = 5
	// Features per point (Table 3: -f 26).
	Features = 26
)

// pointsBySize is the Table 2 workload scale parameter Φ.
var pointsBySize = map[string]int{
	dwarfs.SizeTiny:   256,
	dwarfs.SizeSmall:  2048,
	dwarfs.SizeMedium: 65600,
	dwarfs.SizeLarge:  131072,
}

// Benchmark is the suite entry.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements dwarfs.Benchmark.
func (*Benchmark) Name() string { return "kmeans" }

// Dwarf implements dwarfs.Benchmark.
func (*Benchmark) Dwarf() string { return "MapReduce" }

// Sizes implements dwarfs.Benchmark.
func (*Benchmark) Sizes() []string { return dwarfs.Sizes() }

// ScaleParameter implements dwarfs.Benchmark.
func (*Benchmark) ScaleParameter(size string) string {
	return fmt.Sprintf("%d", pointsBySize[size])
}

// ArgString implements dwarfs.Benchmark (Table 3).
func (*Benchmark) ArgString(size string) string {
	return fmt.Sprintf("-g -f %d -p %d", Features, pointsBySize[size])
}

// New implements dwarfs.Benchmark.
func (*Benchmark) New(size string, seed int64) (dwarfs.Instance, error) {
	n, ok := pointsBySize[size]
	if !ok {
		return nil, fmt.Errorf("kmeans: unsupported size %q", size)
	}
	return NewInstance(n, Features, Clusters, seed), nil
}

// Instance is one configured k-means run.
type Instance struct {
	points, features, clusters int
	seed                       int64

	feature    []float32 // points × features
	centroids  []float32 // clusters × features
	membership []int32   // per point

	featBuf, centBuf, membBuf *opencl.Buffer
	kernel                    *opencl.Kernel
	iterations                int
	converged                 bool
}

// NewInstance builds an instance with explicit parameters (exported so the
// sizing tool and tests can explore non-Table-2 configurations).
func NewInstance(points, features, clusters int, seed int64) *Instance {
	return &Instance{points: points, features: features, clusters: clusters, seed: seed}
}

// FootprintBytes implements Eq. (1) of the paper:
// size(feature) + size(membership) + size(cluster).
func (in *Instance) FootprintBytes() int64 {
	return int64(in.points)*int64(in.features)*4 +
		int64(in.points)*4 +
		int64(in.clusters)*int64(in.features)*4
}

// Setup implements dwarfs.Instance.
func (in *Instance) Setup(ctx *opencl.Context, q *opencl.CommandQueue) error {
	in.featBuf, in.feature = opencl.NewBuffer[float32](ctx, "feature", in.points*in.features)
	in.centBuf, in.centroids = opencl.NewBuffer[float32](ctx, "cluster", in.clusters*in.features)
	in.membBuf, in.membership = opencl.NewBuffer[int32](ctx, "membership", in.points)

	copy(in.feature, data.RandomFeatures(in.points, in.features, in.seed))
	initCentroids(in.centroids, in.feature, in.clusters, in.features)
	for i := range in.membership {
		in.membership[i] = -1
	}

	feature, centroids, membership := in.feature, in.centroids, in.membership
	nf, nc := in.features, in.clusters
	in.kernel = &opencl.Kernel{
		Name: "kmeans_assign",
		Fn: func(wi *opencl.Item) {
			p := wi.GlobalID(0)
			membership[p] = assignPoint(feature[p*nf:(p+1)*nf], centroids, nc, nf)
		},
		Profile: in.profile,
	}

	q.EnqueueWrite(in.featBuf)
	q.EnqueueWrite(in.centBuf)
	q.EnqueueWrite(in.membBuf)
	return nil
}

// initCentroids seeds the centroids with the first C points, as the
// OpenDwarfs benchmark does with its random starting positions fixed by
// the data seed.
func initCentroids(centroids, feature []float32, clusters, features int) {
	copy(centroids, feature[:clusters*features])
}

// assignPoint returns the index of the closest centroid. Strict less-than
// keeps tie-breaking identical between kernel and serial reference.
func assignPoint(point, centroids []float32, clusters, features int) int32 {
	best := int32(0)
	bestDist := float32(math.Inf(1))
	for c := 0; c < clusters; c++ {
		d := float32(0)
		cent := centroids[c*features : (c+1)*features]
		for f := 0; f < features; f++ {
			diff := point[f] - cent[f]
			d += diff * diff
		}
		if d < bestDist {
			bestDist = d
			best = int32(c)
		}
	}
	return best
}

// profile characterises the assignment kernel: per point, C×F fused
// multiply-add distance work; the centroid table is tiny and stays resident
// (high temporal reuse) while the feature rows stream.
func (in *Instance) profile(ndr opencl.NDRange) *sim.KernelProfile {
	cf := float64(in.clusters * in.features)
	pointBytes := float64(in.features) * 4
	centBytes := cf * 4
	return &sim.KernelProfile{
		Name:              "kmeans_assign",
		WorkItems:         ndr.TotalItems(),
		FlopsPerItem:      3*cf + float64(in.clusters),
		IntOpsPerItem:     4,
		LoadBytesPerItem:  pointBytes + centBytes,
		StoreBytesPerItem: 4,
		WorkingSetBytes:   in.FootprintBytes(),
		Pattern:           cache.Streaming,
		TemporalReuse:     centBytes / (centBytes + pointBytes),
		// Each work-item reads its point's features contiguously — perfect
		// for CPU prefetch, hopeless for GPU coalescing. This is why the
		// paper finds kmeans the one vector benchmark where CPUs stay
		// comparable to GPUs (§5.1: "relatively low ratio of
		// floating-point to memory operations").
		Coalescing:      0.5,
		BranchesPerItem: float64(in.clusters),
		Divergence:      0.1,
		Vectorizable:    true,
	}
}

// localSize picks a launch configuration; points counts in Table 2 are all
// multiples of 64 except none (256, 2048, 65600=64×1025, 131072 — all
// divisible by 64... 65600/64=1025). Use 64.
func (in *Instance) localSize() int {
	for _, l := range []int{64, 32, 16, 8, 4, 2, 1} {
		if in.points%l == 0 {
			return l
		}
	}
	return 1
}

// Iterate implements dwarfs.Instance: one assignment kernel launch plus the
// host-side centroid relocation of the algorithm (§4.4.1).
func (in *Instance) Iterate(q *opencl.CommandQueue) error {
	if in.kernel == nil {
		return fmt.Errorf("kmeans: Iterate before Setup")
	}
	if _, err := q.EnqueueNDRange(in.kernel, opencl.NDR1(in.points, in.localSize())); err != nil {
		return err
	}
	if q.SimulateOnly() {
		// Simulate-only passes do not advance the algorithm, so they do
		// not count toward the iterations the serial replay verifies.
		return nil
	}
	in.iterations++
	changed := updateCentroids(in.feature, in.centroids, in.membership, in.clusters, in.features)
	in.converged = changed == 0
	return nil
}

// updateCentroids relocates each centroid to the mean of its members and
// returns how many points changed cluster since the previous pass.
// prev encoding: memberships are recomputed each pass, so change tracking
// compares against the stored assignment from the previous pass — callers
// pass the same slice the kernel wrote, so this function only relocates.
func updateCentroids(feature, centroids []float32, membership []int32, clusters, features int) int {
	counts := make([]int, clusters)
	sums := make([]float64, clusters*features)
	for p, m := range membership {
		counts[m]++
		row := feature[p*features : (p+1)*features]
		acc := sums[int(m)*features : (int(m)+1)*features]
		for f := 0; f < features; f++ {
			acc[f] += float64(row[f])
		}
	}
	changed := 0
	for c := 0; c < clusters; c++ {
		if counts[c] == 0 {
			continue // keep empty clusters in place, as OpenDwarfs does
		}
		for f := 0; f < features; f++ {
			nv := float32(sums[c*features+f] / float64(counts[c]))
			if centroids[c*features+f] != nv {
				changed++
			}
			centroids[c*features+f] = nv
		}
	}
	return changed
}

// Converged reports whether the last pass moved no centroid.
func (in *Instance) Converged() bool { return in.converged }

// Iterations returns the number of passes run so far.
func (in *Instance) Iterations() int { return in.iterations }

// Verify implements dwarfs.Instance: replays the same number of passes
// serially from the same initial state and demands identical memberships
// and centroids (the arithmetic order per point is identical, so results
// must match exactly).
func (in *Instance) Verify() error {
	if in.iterations == 0 {
		return fmt.Errorf("kmeans: Verify before Iterate")
	}
	feature := data.RandomFeatures(in.points, in.features, in.seed)
	centroids := make([]float32, in.clusters*in.features)
	initCentroids(centroids, feature, in.clusters, in.features)
	membership := make([]int32, in.points)
	for it := 0; it < in.iterations; it++ {
		for p := 0; p < in.points; p++ {
			membership[p] = assignPoint(feature[p*in.features:(p+1)*in.features], centroids, in.clusters, in.features)
		}
		updateCentroids(feature, centroids, membership, in.clusters, in.features)
	}
	for p := range membership {
		if membership[p] != in.membership[p] {
			return fmt.Errorf("kmeans: point %d assigned to %d, reference says %d", p, in.membership[p], membership[p])
		}
	}
	for i := range centroids {
		if centroids[i] != in.centroids[i] {
			return fmt.Errorf("kmeans: centroid value %d diverged: %f vs %f", i, in.centroids[i], centroids[i])
		}
	}
	return nil
}
