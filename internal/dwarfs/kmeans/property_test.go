package kmeans

import (
	"math"
	"testing"
	"testing/quick"

	"opendwarfs/internal/opencl"
)

func quickEnv() (*opencl.Context, *opencl.CommandQueue) {
	dev, err := opencl.LookupDevice("i7-6700k")
	if err != nil {
		return nil, nil
	}
	ctx, _ := opencl.NewContext(dev)
	q, _ := opencl.NewQueue(ctx, dev)
	return ctx, q
}

// Property: kernel assignments agree with the serial replay for arbitrary
// (small) configurations, not just Table 2 ones.
func TestAssignmentAgreementProperty(t *testing.T) {
	f := func(seed int64, pRaw, fRaw, cRaw uint8) bool {
		points := int(pRaw)%200 + 8
		features := int(fRaw)%12 + 1
		clusters := int(cRaw)%4 + 2
		if clusters > points {
			clusters = points
		}
		ctx, q := quickEnv()
		if ctx == nil {
			return false
		}
		inst := NewInstance(points, features, clusters, seed)
		if err := inst.Setup(ctx, q); err != nil {
			return false
		}
		for i := 0; i < 3 && !inst.Converged(); i++ {
			if err := inst.Iterate(q); err != nil {
				return false
			}
		}
		return inst.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: after an update, every non-empty centroid is the mean of its
// members (the defining k-means invariant).
func TestCentroidIsMemberMean(t *testing.T) {
	ctx, q := quickEnv()
	inst := NewInstance(300, 6, 4, 99)
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	sums := make([]float64, 4*6)
	for p, m := range inst.membership {
		counts[m]++
		for f := 0; f < 6; f++ {
			sums[int(m)*6+f] += float64(inst.feature[p*6+f])
		}
	}
	for c := 0; c < 4; c++ {
		if counts[c] == 0 {
			continue
		}
		for f := 0; f < 6; f++ {
			want := sums[c*6+f] / float64(counts[c])
			got := float64(inst.centroids[c*6+f])
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("centroid %d feature %d = %f, member mean %f", c, f, got, want)
			}
		}
	}
}

// Property: within-cluster distance never exceeds the distance to any other
// centroid (each point really is assigned to its closest centroid).
func TestAssignmentOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		ctx, q := quickEnv()
		inst := NewInstance(128, 4, 3, seed)
		if err := inst.Setup(ctx, q); err != nil {
			return false
		}
		if err := inst.Iterate(q); err != nil {
			return false
		}
		dist := func(p, c int) float64 {
			d := 0.0
			for f := 0; f < 4; f++ {
				diff := float64(inst.feature[p*4+f] - inst.centroids[c*4+f])
				d += diff * diff
			}
			return d
		}
		// Memberships are optimal w.r.t. the centroids the kernel saw; at
		// convergence those equal the current centroids, making the
		// invariant exactly checkable.
		for i := 0; i < 200 && !inst.Converged(); i++ {
			if err := inst.Iterate(q); err != nil {
				return false
			}
		}
		if !inst.Converged() {
			return true // property only defined at the fixed point
		}
		for p := 0; p < 128; p++ {
			own := dist(p, int(inst.membership[p]))
			for c := 0; c < 3; c++ {
				if dist(p, c) < own-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
