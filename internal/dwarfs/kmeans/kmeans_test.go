package kmeans

import (
	"strings"
	"testing"

	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
)

func newEnv(t *testing.T) (*opencl.Context, *opencl.CommandQueue) {
	t.Helper()
	dev, err := opencl.LookupDevice("i7-6700k")
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := opencl.NewContext(dev)
	if err != nil {
		t.Fatal(err)
	}
	q, err := opencl.NewQueue(ctx, dev)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, q
}

func TestMetadata(t *testing.T) {
	b := New()
	if b.Name() != "kmeans" || b.Dwarf() != "MapReduce" {
		t.Fatalf("metadata %s/%s", b.Name(), b.Dwarf())
	}
	if len(b.Sizes()) != 4 {
		t.Fatal("kmeans supports all four sizes")
	}
	if got := b.ArgString("tiny"); got != "-g -f 26 -p 256" {
		t.Fatalf("Table 3 args %q", got)
	}
	if got := b.ScaleParameter("large"); got != "131072" {
		t.Fatalf("Table 2 Φ %q", got)
	}
	if _, err := b.New("huge", 1); err == nil {
		t.Fatal("bad size accepted")
	}
}

func TestFootprintsMatchPaperSizing(t *testing.T) {
	// §4.4: tiny fits L1 (32 KiB), small L2 (256 KiB), medium L3 (8 MiB).
	b := New()
	limits := map[string]float64{"tiny": 32, "small": 256, "medium": 8192}
	floors := map[string]float64{"tiny": 16, "small": 128, "medium": 4096}
	for size, lim := range limits {
		inst, err := b.New(size, 1)
		if err != nil {
			t.Fatal(err)
		}
		kib := float64(inst.FootprintBytes()) / 1024
		if kib > lim {
			t.Errorf("%s: %.1f KiB exceeds %g KiB", size, kib, lim)
		}
		if kib < floors[size] {
			t.Errorf("%s: %.1f KiB suspiciously small (< %g KiB): not exercising the level", size, kib, floors[size])
		}
	}
}

func TestKernelMatchesSerialReference(t *testing.T) {
	ctx, q := newEnv(t)
	inst := NewInstance(512, 26, 5, 42)
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := dwarfs.CheckFootprint(inst, ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10 && !inst.Converged(); i++ {
		if err := inst.Iterate(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := inst.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestConvergence(t *testing.T) {
	ctx, q := newEnv(t)
	inst := NewInstance(256, 8, 3, 7)
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200 && !inst.Converged(); i++ {
		if err := inst.Iterate(q); err != nil {
			t.Fatal(err)
		}
	}
	if !inst.Converged() {
		t.Fatal("k-means did not converge in 200 iterations on 256 points")
	}
	if inst.Iterations() == 0 {
		t.Fatal("iteration count not tracked")
	}
}

func TestMembershipsPartitionPoints(t *testing.T) {
	ctx, q := newEnv(t)
	inst := NewInstance(640, 26, 5, 3)
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	for p, m := range inst.membership {
		if m < 0 || m >= 5 {
			t.Fatalf("point %d assigned to cluster %d", p, m)
		}
	}
}

func TestLifecycleErrors(t *testing.T) {
	inst := NewInstance(64, 4, 2, 1)
	_, q := newEnv(t)
	if err := inst.Iterate(q); err == nil || !strings.Contains(err.Error(), "Setup") {
		t.Fatal("Iterate before Setup accepted")
	}
	if err := inst.Verify(); err == nil {
		t.Fatal("Verify before Iterate accepted")
	}
}

func TestSimulateOnlySkipsHostWork(t *testing.T) {
	ctx, q := newEnv(t)
	inst := NewInstance(256, 8, 3, 9)
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	q.SetSimulateOnly(true)
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	// Memberships untouched: kernel did not run.
	for _, m := range inst.membership {
		if m != -1 {
			t.Fatal("simulate-only iteration mutated results")
		}
	}
	if opencl.KernelNs(q.Events()) <= 0 {
		t.Fatal("simulate-only iteration produced no kernel events")
	}
}
