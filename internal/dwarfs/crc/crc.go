// Package crc implements the Combinational Logic dwarf: a table-driven
// CRC-32 (IEEE/Ethernet polynomial) over a generated message. The message is
// split into pages, one work-item computes the CRC of each page, and the
// host combines the partial CRCs with the GF(2) matrix method — the
// structure of the OpenDwarfs crc benchmark.
//
// Table-driven CRC is byte-serial integer code that neither vectorises nor
// exploits floating-point units, which is why Fig. 1 of the paper shows it
// as the one benchmark that runs fastest on CPUs.
package crc

import (
	"fmt"
	"hash/crc32"

	"opendwarfs/internal/cache"
	"opendwarfs/internal/data"
	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
	"opendwarfs/internal/sim"
)

// PageBytes is the per-work-item chunk size.
const PageBytes = 1024

// bytesBySize is the Table 2 workload scale parameter Φ (message bytes).
var bytesBySize = map[string]int{
	dwarfs.SizeTiny:   2000,
	dwarfs.SizeSmall:  16000,
	dwarfs.SizeMedium: 524000,
	dwarfs.SizeLarge:  4194304,
}

// Benchmark is the suite entry.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements dwarfs.Benchmark.
func (*Benchmark) Name() string { return "crc" }

// Dwarf implements dwarfs.Benchmark.
func (*Benchmark) Dwarf() string { return "Combinational Logic" }

// Sizes implements dwarfs.Benchmark.
func (*Benchmark) Sizes() []string { return dwarfs.Sizes() }

// ScaleParameter implements dwarfs.Benchmark.
func (*Benchmark) ScaleParameter(size string) string { return fmt.Sprintf("%d", bytesBySize[size]) }

// ArgString implements dwarfs.Benchmark (Table 3: crc -i 1000 Φ.txt).
func (*Benchmark) ArgString(size string) string {
	return fmt.Sprintf("-i 1000 %d.txt", bytesBySize[size])
}

// New implements dwarfs.Benchmark.
func (*Benchmark) New(size string, seed int64) (dwarfs.Instance, error) {
	n, ok := bytesBySize[size]
	if !ok {
		return nil, fmt.Errorf("crc: unsupported size %q", size)
	}
	return NewInstance(n, seed), nil
}

// Instance is one configured crc run.
type Instance struct {
	n    int
	seed int64

	msg   []byte
	pages []uint32 // per-page CRCs written by the kernel

	msgBuf, pageBuf *opencl.Buffer
	kernel          *opencl.Kernel
	result          uint32
	ran             bool
}

// NewInstance builds an instance over a generated message of n bytes.
func NewInstance(n int, seed int64) *Instance {
	return &Instance{n: n, seed: seed}
}

// numPages returns the page count of the message.
func (in *Instance) numPages() int { return (in.n + PageBytes - 1) / PageBytes }

// FootprintBytes implements dwarfs.Instance: message + per-page CRC outputs.
func (in *Instance) FootprintBytes() int64 {
	return int64(in.n) + int64(in.numPages())*4
}

// Setup implements dwarfs.Instance.
func (in *Instance) Setup(ctx *opencl.Context, q *opencl.CommandQueue) error {
	in.msgBuf, in.msg = opencl.NewBuffer[uint8](ctx, "message", in.n)
	in.pageBuf, in.pages = opencl.NewBuffer[uint32](ctx, "page_crcs", in.numPages())
	copy(in.msg, data.RandomBytes(in.n, in.seed))

	msg, pages, n := in.msg, in.pages, in.n
	in.kernel = &opencl.Kernel{
		Name: "crc32_pages",
		Fn: func(wi *opencl.Item) {
			p := wi.GlobalID(0)
			lo := p * PageBytes
			hi := lo + PageBytes
			if hi > n {
				hi = n
			}
			pages[p] = crc32.ChecksumIEEE(msg[lo:hi])
		},
		Profile: in.profile,
	}
	q.EnqueueWrite(in.msgBuf)
	return nil
}

// profile characterises the page kernel: ~7 integer operations per byte
// (shift, xor, mask, table index arithmetic, load), not vectorizable,
// streaming over the message with the 1 KiB lookup table resident.
func (in *Instance) profile(ndr opencl.NDRange) *sim.KernelProfile {
	return &sim.KernelProfile{
		Name:              "crc32_pages",
		WorkItems:         ndr.TotalItems(),
		IntOpsPerItem:     7 * PageBytes,
		LoadBytesPerItem:  PageBytes + 4*PageBytes, // message + table lookups
		StoreBytesPerItem: 4,
		WorkingSetBytes:   in.FootprintBytes(),
		Pattern:           cache.Streaming,
		TemporalReuse:     0.8, // the 1 KiB table serves 4 of every 5 loads
		BranchesPerItem:   PageBytes,
		Vectorizable:      false,
	}
}

// Iterate implements dwarfs.Instance: one kernel pass plus the host-side
// GF(2) combination of page CRCs.
func (in *Instance) Iterate(q *opencl.CommandQueue) error {
	if in.kernel == nil {
		return fmt.Errorf("crc: Iterate before Setup")
	}
	np := in.numPages()
	local := 16
	for np%local != 0 {
		local /= 2
	}
	if _, err := q.EnqueueNDRange(in.kernel, opencl.NDR1(np, local)); err != nil {
		return err
	}
	in.ran = true
	if q.SimulateOnly() {
		return nil
	}
	// Combine per-page CRCs left to right.
	crc := in.pages[0]
	for p := 1; p < np; p++ {
		lo := p * PageBytes
		hi := lo + PageBytes
		if hi > in.n {
			hi = in.n
		}
		crc = Combine(crc, in.pages[p], int64(hi-lo))
	}
	in.result = crc
	return nil
}

// Result returns the combined CRC of the whole message.
func (in *Instance) Result() uint32 { return in.result }

// Verify implements dwarfs.Instance against the standard library.
func (in *Instance) Verify() error {
	if !in.ran {
		return fmt.Errorf("crc: Verify before Iterate")
	}
	if want := crc32.ChecksumIEEE(in.msg); in.result != want {
		return fmt.Errorf("crc: combined CRC %08x, reference %08x", in.result, want)
	}
	return nil
}

// Combine merges two CRC-32 values: Combine(crcA, crcB, lenB) is the CRC of
// the concatenation A‖B given the CRCs of the halves (zlib's crc32_combine
// algorithm: advance crcA through lenB zero bytes using GF(2) matrix
// squaring, then xor).
func Combine(crcA, crcB uint32, lenB int64) uint32 {
	if lenB <= 0 {
		return crcA
	}
	var even, odd gf2Matrix

	// odd = operator for one zero bit.
	odd[0] = 0xedb88320 // reflected IEEE polynomial
	row := uint32(1)
	for i := 1; i < 32; i++ {
		odd[i] = row
		row <<= 1
	}
	even.square(&odd) // two bits
	odd.square(&even) // four bits

	// Apply len2 zero bytes, squaring powers as we consume bits.
	for {
		even.square(&odd)
		if lenB&1 != 0 {
			crcA = even.times(crcA)
		}
		lenB >>= 1
		if lenB == 0 {
			break
		}
		odd.square(&even)
		if lenB&1 != 0 {
			crcA = odd.times(crcA)
		}
		lenB >>= 1
		if lenB == 0 {
			break
		}
	}
	return crcA ^ crcB
}

// gf2Matrix is a 32×32 bit matrix over GF(2), one column per word.
type gf2Matrix [32]uint32

// times multiplies the matrix by a vector.
func (m *gf2Matrix) times(vec uint32) uint32 {
	var sum uint32
	for i := 0; vec != 0; i++ {
		if vec&1 != 0 {
			sum ^= m[i]
		}
		vec >>= 1
	}
	return sum
}

// square sets m = s·s.
func (m *gf2Matrix) square(s *gf2Matrix) {
	for i := 0; i < 32; i++ {
		m[i] = s.times(s[i])
	}
}
