package crc

import (
	"hash/crc32"
	"testing"
	"testing/quick"

	"opendwarfs/internal/data"
	"opendwarfs/internal/opencl"
)

func quickEnv() (*opencl.Context, *opencl.CommandQueue) {
	dev, err := opencl.LookupDevice("e5-2697v2")
	if err != nil {
		return nil, nil
	}
	ctx, _ := opencl.NewContext(dev)
	q, _ := opencl.NewQueue(ctx, dev)
	return ctx, q
}

// Property: the page-parallel kernel + GF(2) combine matches the stdlib for
// arbitrary message lengths.
func TestPagedCRCMatchesStdlibProperty(t *testing.T) {
	f := func(seed int64, lenRaw uint16) bool {
		n := int(lenRaw)%8000 + 1
		ctx, q := quickEnv()
		if ctx == nil {
			return false
		}
		inst := NewInstance(n, seed)
		if err := inst.Setup(ctx, q); err != nil {
			return false
		}
		if err := inst.Iterate(q); err != nil {
			return false
		}
		return inst.Result() == crc32.ChecksumIEEE(inst.msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Combine is associative over three-way splits.
func TestCombineAssociativityProperty(t *testing.T) {
	f := func(seed int64, la, lb, lc uint8) bool {
		a := data.RandomBytes(int(la)+1, seed)
		b := data.RandomBytes(int(lb)+1, seed+1)
		c := data.RandomBytes(int(lc)+1, seed+2)
		ca := crc32.ChecksumIEEE(a)
		cb := crc32.ChecksumIEEE(b)
		cc := crc32.ChecksumIEEE(c)
		left := Combine(Combine(ca, cb, int64(len(b))), cc, int64(len(c)))
		right := Combine(ca, Combine(cb, cc, int64(len(c))), int64(len(b)+len(c)))
		whole := crc32.ChecksumIEEE(append(append(append([]byte{}, a...), b...), c...))
		return left == right && left == whole
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: the CRC detects any single-bit flip (minimum distance of the
// code over short messages).
func TestSingleBitErrorDetectionProperty(t *testing.T) {
	f := func(seed int64, posRaw uint16, bit uint8) bool {
		msg := data.RandomBytes(256, seed)
		orig := crc32.ChecksumIEEE(msg)
		pos := int(posRaw) % len(msg)
		msg[pos] ^= 1 << (bit % 8)
		return crc32.ChecksumIEEE(msg) != orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
