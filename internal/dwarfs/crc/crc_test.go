package crc

import (
	"hash/crc32"
	"testing"
	"testing/quick"

	"opendwarfs/internal/data"
	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
)

func newEnv(t *testing.T) (*opencl.Context, *opencl.CommandQueue) {
	t.Helper()
	dev, err := opencl.LookupDevice("i7-6700k")
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := opencl.NewContext(dev)
	q, _ := opencl.NewQueue(ctx, dev)
	return ctx, q
}

func TestMetadata(t *testing.T) {
	b := New()
	if b.Name() != "crc" || b.Dwarf() != "Combinational Logic" {
		t.Fatal("metadata")
	}
	if got := b.ArgString("small"); got != "-i 1000 16000.txt" {
		t.Fatalf("Table 3 args %q", got)
	}
	if got := b.ScaleParameter("large"); got != "4194304" {
		t.Fatalf("Φ %q", got)
	}
	if _, err := b.New("giant", 1); err == nil {
		t.Fatal("bad size accepted")
	}
}

func TestKernelMatchesStdlib(t *testing.T) {
	for _, size := range []string{dwarfs.SizeTiny, dwarfs.SizeSmall, dwarfs.SizeMedium} {
		ctx, q := newEnv(t)
		inst, err := New().New(size, 13)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Setup(ctx, q); err != nil {
			t.Fatal(err)
		}
		if err := dwarfs.CheckFootprint(inst, ctx); err != nil {
			t.Fatal(err)
		}
		if err := inst.Iterate(q); err != nil {
			t.Fatal(err)
		}
		if err := inst.Verify(); err != nil {
			t.Fatalf("%s: %v", size, err)
		}
	}
}

func TestOddLengthMessages(t *testing.T) {
	// Non-multiple-of-page lengths exercise the tail page.
	for _, n := range []int{1, 1023, 1025, 3000} {
		ctx, q := newEnv(t)
		inst := NewInstance(n, 99)
		if err := inst.Setup(ctx, q); err != nil {
			t.Fatal(err)
		}
		if err := inst.Iterate(q); err != nil {
			t.Fatal(err)
		}
		if err := inst.Verify(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestCombineAgainstStdlib(t *testing.T) {
	a := data.RandomBytes(1500, 1)
	b := data.RandomBytes(777, 2)
	crcA := crc32.ChecksumIEEE(a)
	crcB := crc32.ChecksumIEEE(b)
	want := crc32.ChecksumIEEE(append(append([]byte{}, a...), b...))
	if got := Combine(crcA, crcB, int64(len(b))); got != want {
		t.Fatalf("combine %08x, want %08x", got, want)
	}
}

func TestCombineZeroLength(t *testing.T) {
	if got := Combine(0xdeadbeef, 0x12345678, 0); got != 0xdeadbeef {
		t.Fatalf("zero-length combine must return crcA, got %08x", got)
	}
}

// Property: Combine agrees with stdlib for arbitrary splits.
func TestCombineSplitProperty(t *testing.T) {
	f := func(seed int64, lenA, lenB uint16) bool {
		a := data.RandomBytes(int(lenA)+1, seed)
		b := data.RandomBytes(int(lenB)+1, seed+1)
		whole := crc32.ChecksumIEEE(append(append([]byte{}, a...), b...))
		return Combine(crc32.ChecksumIEEE(a), crc32.ChecksumIEEE(b), int64(len(b))) == whole
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: CRC is linear over GF(2) for equal-length messages —
// crc(a^b) ^ crc(a) ^ crc(b) is a constant depending only on length.
func TestCRCLinearityProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		ln := int(n) + 1
		a := data.RandomBytes(ln, seed)
		b := data.RandomBytes(ln, seed+7)
		x := make([]byte, ln)
		zero := make([]byte, ln)
		for i := range x {
			x[i] = a[i] ^ b[i]
		}
		lhs := crc32.ChecksumIEEE(x) ^ crc32.ChecksumIEEE(a) ^ crc32.ChecksumIEEE(b)
		return lhs == crc32.ChecksumIEEE(zero)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestProfileNotVectorizable(t *testing.T) {
	inst := NewInstance(4096, 1)
	p := inst.profile(opencl.NDR1(4, 4))
	if p.Vectorizable {
		t.Fatal("crc must be profiled as non-vectorizable (the Fig. 1 mechanism)")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLifecycleErrors(t *testing.T) {
	inst := NewInstance(100, 1)
	_, q := newEnv(t)
	if err := inst.Iterate(q); err == nil {
		t.Fatal("Iterate before Setup accepted")
	}
	if err := inst.Verify(); err == nil {
		t.Fatal("Verify before Iterate accepted")
	}
}
