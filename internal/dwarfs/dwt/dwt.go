// Package dwt implements the second Spectral Methods benchmark the paper
// added to the suite (§2, §4.4.3): a 2-D discrete wavelet transform (CDF 9/7
// lifting, the Rodinia dwt2d filter) over the gum-leaf test image, with PPM
// input and tiled PGM coefficient output support. Each level runs a
// row-lifting kernel (one work-item per row) followed by a column-lifting
// kernel (one work-item per column) over the shrinking LL quadrant.
package dwt

import (
	"fmt"
	"io"

	"opendwarfs/internal/cache"
	"opendwarfs/internal/data"
	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
	"opendwarfs/internal/sim"
)

// Levels is the transform depth (Table 3: dwt -l 3).
const Levels = 3

// CDF 9/7 lifting coefficients (JPEG2000 irreversible filter).
const (
	alpha = -1.586134342059924
	beta  = -0.052980118572961
	gamma = 0.882911075530934
	delta = 0.443506852043971
	kappa = 1.230174104914001
)

// dims holds one Table 2 image geometry.
type dims struct{ W, H int }

// sizeDims is the Table 2 workload scale parameter Φ (image resolution).
var sizeDims = map[string]dims{
	dwarfs.SizeTiny:   {72, 54},
	dwarfs.SizeSmall:  {200, 150},
	dwarfs.SizeMedium: {1152, 864},
	dwarfs.SizeLarge:  {3648, 2736},
}

// Benchmark is the suite entry.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements dwarfs.Benchmark.
func (*Benchmark) Name() string { return "dwt" }

// Dwarf implements dwarfs.Benchmark.
func (*Benchmark) Dwarf() string { return "Spectral Methods" }

// Sizes implements dwarfs.Benchmark.
func (*Benchmark) Sizes() []string { return dwarfs.Sizes() }

// ScaleParameter implements dwarfs.Benchmark.
func (*Benchmark) ScaleParameter(size string) string {
	d := sizeDims[size]
	return fmt.Sprintf("%dx%d", d.W, d.H)
}

// ArgString implements dwarfs.Benchmark (Table 3: dwt -l 3 Φ-gum.ppm).
func (*Benchmark) ArgString(size string) string {
	d := sizeDims[size]
	return fmt.Sprintf("-l %d %dx%d-gum.ppm", Levels, d.W, d.H)
}

// New implements dwarfs.Benchmark.
func (*Benchmark) New(size string, seed int64) (dwarfs.Instance, error) {
	d, ok := sizeDims[size]
	if !ok {
		return nil, fmt.Errorf("dwt: unsupported size %q", size)
	}
	return NewInstance(data.GenerateLeaf(d.W, d.H, seed), Levels)
}

// NewFromPPM builds an instance from a PPM/PGM stream, the input path of the
// extended benchmark.
func NewFromPPM(r io.Reader, levels int) (*Instance, error) {
	im, err := data.ReadPNM(r)
	if err != nil {
		return nil, err
	}
	return NewInstance(im, levels)
}

// Instance is one configured transform.
type Instance struct {
	w, h, levels int
	original     []float32

	img, tmp       []float32
	imgBuf, tmpBuf *opencl.Buffer

	// Current LL-quadrant geometry, read by the kernel closures.
	curW, curH   int
	kRows, kCols *opencl.Kernel
	ran          bool
}

// NewInstance builds an instance over an image.
func NewInstance(im *data.Image, levels int) (*Instance, error) {
	if levels < 1 {
		return nil, fmt.Errorf("dwt: levels %d must be ≥ 1", levels)
	}
	if im.W < 2 || im.H < 2 {
		return nil, fmt.Errorf("dwt: image %dx%d too small", im.W, im.H)
	}
	in := &Instance{w: im.W, h: im.H, levels: levels}
	in.original = append([]float32(nil), im.Pix...)
	return in, nil
}

// FootprintBytes implements dwarfs.Instance: image plus scratch plane.
func (in *Instance) FootprintBytes() int64 { return 2 * int64(in.w) * int64(in.h) * 4 }

// Setup implements dwarfs.Instance.
func (in *Instance) Setup(ctx *opencl.Context, q *opencl.CommandQueue) error {
	in.imgBuf, in.img = opencl.NewBuffer[float32](ctx, "image", in.w*in.h)
	in.tmpBuf, in.tmp = opencl.NewBuffer[float32](ctx, "scratch", in.w*in.h)
	copy(in.img, in.original)

	in.kRows = &opencl.Kernel{
		Name: "fdwt97_rows",
		Fn: func(wi *opencl.Item) {
			y := wi.GlobalID(0)
			row := in.img[y*in.w : y*in.w+in.curW]
			lift97(row, in.tmp[y*in.w:y*in.w+in.curW])
		},
		Profile: func(ndr opencl.NDRange) *sim.KernelProfile {
			return in.profile("fdwt97_rows", ndr, in.curW, cache.Streaming)
		},
	}
	in.kCols = &opencl.Kernel{
		Name: "fdwt97_cols",
		Fn: func(wi *opencl.Item) {
			x := wi.GlobalID(0)
			col := make([]float32, in.curH)
			for y := 0; y < in.curH; y++ {
				col[y] = in.img[y*in.w+x]
			}
			lift97(col, make([]float32, in.curH))
			for y := 0; y < in.curH; y++ {
				in.img[y*in.w+x] = col[y]
			}
		},
		Profile: func(ndr opencl.NDRange) *sim.KernelProfile {
			return in.profile("fdwt97_cols", ndr, in.curH, cache.Strided)
		},
	}
	q.EnqueueWrite(in.imgBuf)
	return nil
}

// profile characterises one lifting pass: each item streams `span` samples
// through the four lifting steps (~10 ops each). Spectral Methods are
// memory-latency limited (§5.1); the column pass's strided walks are where
// that bites.
func (in *Instance) profile(name string, ndr opencl.NDRange, span int, pat cache.Pattern) *sim.KernelProfile {
	return &sim.KernelProfile{
		Name:              name,
		WorkItems:         ndr.TotalItems(),
		FlopsPerItem:      10 * float64(span),
		IntOpsPerItem:     4 * float64(span),
		LoadBytesPerItem:  4 * float64(span),
		StoreBytesPerItem: 4 * float64(span),
		WorkingSetBytes:   2 * int64(in.curW) * int64(in.curH) * 4,
		Pattern:           pat,
		TemporalReuse:     0.3,
		Vectorizable:      true,
	}
}

// lift97 performs one forward CDF 9/7 lifting pass on x, writing the
// deinterleaved result back: approximation coefficients first, then details.
// scratch must be at least len(x) long. Boundaries clamp (both forward and
// inverse use the same rule, so reconstruction is exact).
func lift97(x, scratch []float32) {
	n := len(x)
	ne := (n + 1) / 2
	no := n / 2
	e := scratch[:ne]
	o := make([]float32, no)
	for i := 0; i < ne; i++ {
		e[i] = x[2*i]
	}
	for i := 0; i < no; i++ {
		o[i] = x[2*i+1]
	}
	eAt := func(i int) float32 {
		if i >= ne {
			i = ne - 1
		}
		return e[i]
	}
	oAt := func(i int) float32 {
		if i < 0 {
			i = 0
		}
		if i >= no {
			i = no - 1
		}
		return o[i]
	}
	for i := 0; i < no; i++ { // predict 1
		o[i] += float32(alpha) * (e[i] + eAt(i+1))
	}
	for i := 0; i < ne; i++ { // update 1
		e[i] += float32(beta) * (oAt(i-1) + oAt(i))
	}
	for i := 0; i < no; i++ { // predict 2
		o[i] += float32(gamma) * (e[i] + eAt(i+1))
	}
	for i := 0; i < ne; i++ { // update 2
		e[i] += float32(delta) * (oAt(i-1) + oAt(i))
	}
	for i := 0; i < ne; i++ {
		x[i] = e[i] * float32(1/kappa)
	}
	for i := 0; i < no; i++ {
		x[ne+i] = o[i] * float32(kappa)
	}
}

// unlift97 inverts lift97 exactly.
func unlift97(x, scratch []float32) {
	n := len(x)
	ne := (n + 1) / 2
	no := n / 2
	e := scratch[:ne]
	o := make([]float32, no)
	for i := 0; i < ne; i++ {
		e[i] = x[i] * float32(kappa)
	}
	for i := 0; i < no; i++ {
		o[i] = x[ne+i] * float32(1/kappa)
	}
	eAt := func(i int) float32 {
		if i >= ne {
			i = ne - 1
		}
		return e[i]
	}
	oAt := func(i int) float32 {
		if i < 0 {
			i = 0
		}
		if i >= no {
			i = no - 1
		}
		return o[i]
	}
	for i := 0; i < ne; i++ {
		e[i] -= float32(delta) * (oAt(i-1) + oAt(i))
	}
	for i := 0; i < no; i++ {
		o[i] -= float32(gamma) * (e[i] + eAt(i+1))
	}
	for i := 0; i < ne; i++ {
		e[i] -= float32(beta) * (oAt(i-1) + oAt(i))
	}
	for i := 0; i < no; i++ {
		o[i] -= float32(alpha) * (e[i] + eAt(i+1))
	}
	for i := 0; i < ne; i++ {
		x[2*i] = e[i]
	}
	for i := 0; i < no; i++ {
		x[2*i+1] = o[i]
	}
}

// Iterate implements dwarfs.Instance: restore the image and run all levels.
func (in *Instance) Iterate(q *opencl.CommandQueue) error {
	if in.kRows == nil {
		return fmt.Errorf("dwt: Iterate before Setup")
	}
	if !q.SimulateOnly() {
		copy(in.img, in.original)
	}
	q.EnqueueWrite(in.imgBuf)
	in.curW, in.curH = in.w, in.h
	for l := 0; l < in.levels && in.curW >= 2 && in.curH >= 2; l++ {
		if _, err := q.EnqueueNDRange(in.kRows, opencl.NDR1(in.curH, gcdLocal(in.curH))); err != nil {
			return err
		}
		if _, err := q.EnqueueNDRange(in.kCols, opencl.NDR1(in.curW, gcdLocal(in.curW))); err != nil {
			return err
		}
		in.curW = (in.curW + 1) / 2
		in.curH = (in.curH + 1) / 2
	}
	in.ran = true
	return nil
}

// gcdLocal picks the largest power-of-two work-group size ≤ 64 dividing n.
func gcdLocal(n int) int {
	for _, l := range []int{64, 32, 16, 8, 4, 2} {
		if n%l == 0 {
			return l
		}
	}
	return 1
}

// Coefficients returns the transformed plane of the last Iterate.
func (in *Instance) Coefficients() []float32 { return in.img }

// WriteTiledPGM stores the coefficient plane "in a visual tiled fashion"
// (§4.4.3): absolute coefficient magnitudes, log-compressed per quadrant so
// every subband is visible.
func (in *Instance) WriteTiledPGM(w io.Writer) error {
	if !in.ran {
		return fmt.Errorf("dwt: WriteTiledPGM before Iterate")
	}
	out := data.NewImage(in.w, in.h)
	for i, v := range in.img {
		a := v
		if a < 0 {
			a = -a
		}
		// Compress dynamic range: 255·a/(a+64).
		out.Pix[i] = 255 * a / (a + 64)
	}
	return out.WritePGM(w)
}

// SerialForward runs the reference transform on a copy of the input and
// returns the coefficient plane.
func (in *Instance) SerialForward() []float32 {
	img := append([]float32(nil), in.original...)
	scratch := make([]float32, max(in.w, in.h))
	w, h := in.w, in.h
	for l := 0; l < in.levels && w >= 2 && h >= 2; l++ {
		for y := 0; y < h; y++ {
			lift97(img[y*in.w:y*in.w+w], scratch)
		}
		col := make([]float32, h)
		for x := 0; x < w; x++ {
			for y := 0; y < h; y++ {
				col[y] = img[y*in.w+x]
			}
			lift97(col, scratch)
			for y := 0; y < h; y++ {
				img[y*in.w+x] = col[y]
			}
		}
		w, h = (w+1)/2, (h+1)/2
	}
	return img
}

// SerialInverse undoes the reference transform in place on plane.
func (in *Instance) SerialInverse(plane []float32) {
	// Replay geometry to find per-level extents, then invert backwards.
	type lvl struct{ w, h int }
	var lvls []lvl
	w, h := in.w, in.h
	for l := 0; l < in.levels && w >= 2 && h >= 2; l++ {
		lvls = append(lvls, lvl{w, h})
		w, h = (w+1)/2, (h+1)/2
	}
	scratch := make([]float32, max(in.w, in.h))
	for i := len(lvls) - 1; i >= 0; i-- {
		w, h := lvls[i].w, lvls[i].h
		col := make([]float32, h)
		for x := 0; x < w; x++ {
			for y := 0; y < h; y++ {
				col[y] = plane[y*in.w+x]
			}
			unlift97(col, scratch)
			for y := 0; y < h; y++ {
				plane[y*in.w+x] = col[y]
			}
		}
		for y := 0; y < h; y++ {
			unlift97(plane[y*in.w:y*in.w+w], scratch)
		}
	}
}

// Verify implements dwarfs.Instance: kernel output must equal the serial
// reference bit for bit (identical arithmetic order), and inverting the
// result must reconstruct the original image.
func (in *Instance) Verify() error {
	if !in.ran {
		return fmt.Errorf("dwt: Verify before Iterate")
	}
	ref := in.SerialForward()
	for i := range ref {
		if ref[i] != in.img[i] {
			return fmt.Errorf("dwt: coefficient %d differs: kernel %f vs serial %f", i, in.img[i], ref[i])
		}
	}
	recon := append([]float32(nil), in.img...)
	in.SerialInverse(recon)
	for i := range recon {
		d := float64(recon[i] - in.original[i])
		if d > 0.05 || d < -0.05 {
			return fmt.Errorf("dwt: pixel %d reconstructs to %f, original %f", i, recon[i], in.original[i])
		}
	}
	return nil
}
