package dwt

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"opendwarfs/internal/data"
	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
)

func newEnv(t *testing.T) (*opencl.Context, *opencl.CommandQueue) {
	t.Helper()
	dev, err := opencl.LookupDevice("gtx1080")
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := opencl.NewContext(dev)
	q, _ := opencl.NewQueue(ctx, dev)
	return ctx, q
}

func TestMetadata(t *testing.T) {
	b := New()
	if b.Name() != "dwt" || b.Dwarf() != "Spectral Methods" {
		t.Fatal("metadata")
	}
	if got := b.ArgString("large"); got != "-l 3 3648x2736-gum.ppm" {
		t.Fatalf("Table 3 args %q", got)
	}
	if got := b.ScaleParameter("tiny"); got != "72x54" {
		t.Fatalf("Φ %q", got)
	}
	if _, err := b.New("mega", 1); err == nil {
		t.Fatal("bad size accepted")
	}
}

func TestKernelMatchesSerialTiny(t *testing.T) {
	ctx, q := newEnv(t)
	inst, err := New().New(dwarfs.SizeTiny, 17)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := dwarfs.CheckFootprint(inst, ctx); err != nil {
		t.Fatal(err)
	}
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOddDimensions(t *testing.T) {
	// 72×54 shrinks to odd extents (9 after three halvings of 72? 72→36→18→9);
	// exercise explicitly odd inputs too.
	for _, d := range []struct{ w, h int }{{7, 5}, {15, 9}, {33, 21}} {
		ctx, q := newEnv(t)
		inst, err := NewInstance(data.GenerateLeaf(d.w, d.h, 3), 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Setup(ctx, q); err != nil {
			t.Fatal(err)
		}
		if err := inst.Iterate(q); err != nil {
			t.Fatal(err)
		}
		if err := inst.Verify(); err != nil {
			t.Fatalf("%dx%d: %v", d.w, d.h, err)
		}
	}
}

func TestLiftPerfectReconstruction(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%62 + 2
		rng := rand.New(rand.NewSource(seed))
		x := make([]float32, n)
		orig := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.Float64()*200 - 100)
			orig[i] = x[i]
		}
		scratch := make([]float32, n)
		lift97(x, scratch)
		unlift97(x, scratch)
		for i := range x {
			if math.Abs(float64(x[i]-orig[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLiftConstantSignal(t *testing.T) {
	// A constant signal has (near-)zero detail coefficients: the wavelet
	// filter must kill the DC in the detail band.
	n := 32
	x := make([]float32, n)
	for i := range x {
		x[i] = 100
	}
	lift97(x, make([]float32, n))
	for i := n / 2; i < n; i++ {
		if math.Abs(float64(x[i])) > 1e-3 {
			t.Fatalf("detail coefficient %d = %f for constant input", i, x[i])
		}
	}
}

func TestLaunchCount(t *testing.T) {
	// Two kernels per level.
	ctx, q := newEnv(t)
	inst, _ := NewInstance(data.GenerateLeaf(64, 64, 1), 3)
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	q.DrainEvents()
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	kernels := 0
	for _, ev := range q.Events() {
		if ev.Kind == opencl.CommandKernel {
			kernels++
		}
	}
	if kernels != 6 {
		t.Fatalf("%d launches, want 6 (2 per level × 3 levels)", kernels)
	}
}

func TestTiledPGMOutput(t *testing.T) {
	ctx, q := newEnv(t)
	inst, _ := NewInstance(data.GenerateLeaf(72, 54, 2), 3)
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := inst.WriteTiledPGM(&buf); err != nil {
		t.Fatal(err)
	}
	im, err := data.ReadPNM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 72 || im.H != 54 {
		t.Fatal("tiled output geometry")
	}
}

func TestNewFromPPM(t *testing.T) {
	var buf bytes.Buffer
	if err := data.GenerateLeaf(80, 60, 1).WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	inst, err := NewFromPPM(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, q := newEnv(t)
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFootprintsMatchPaperSizing(t *testing.T) {
	limits := map[string]float64{"tiny": 32, "small": 256, "medium": 8192}
	for size, lim := range limits {
		inst, err := New().New(size, 1)
		if err != nil {
			t.Fatal(err)
		}
		if kib := float64(inst.FootprintBytes()) / 1024; kib > lim {
			t.Errorf("%s: %.1f KiB exceeds %g", size, kib, lim)
		}
	}
	large, _ := New().New("large", 1)
	if kib := float64(large.FootprintBytes()) / 1024; kib < 4*8192 {
		t.Errorf("large %f KiB below 4×L3", kib)
	}
}

func TestLifecycleErrors(t *testing.T) {
	if _, err := NewInstance(data.NewImage(4, 4), 0); err == nil {
		t.Fatal("levels=0 accepted")
	}
	inst, _ := NewInstance(data.GenerateLeaf(8, 8, 1), 1)
	_, q := newEnv(t)
	if err := inst.Iterate(q); err == nil {
		t.Fatal("Iterate before Setup accepted")
	}
	if err := inst.Verify(); err == nil {
		t.Fatal("Verify before Iterate accepted")
	}
	if err := inst.WriteTiledPGM(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteTiledPGM before Iterate accepted")
	}
}
