package dwt

import (
	"math"
	"testing"
	"testing/quick"

	"opendwarfs/internal/data"
	"opendwarfs/internal/opencl"
)

func quickEnv() (*opencl.Context, *opencl.CommandQueue) {
	dev, err := opencl.LookupDevice("gtx1080ti")
	if err != nil {
		return nil, nil
	}
	ctx, _ := opencl.NewContext(dev)
	q, _ := opencl.NewQueue(ctx, dev)
	return ctx, q
}

// Property: kernel forward transform matches the serial reference and the
// inverse reconstructs the image, for arbitrary geometries and depths.
func TestTransformRoundTripProperty(t *testing.T) {
	f := func(seed int64, wRaw, hRaw, lRaw uint8) bool {
		w := int(wRaw)%40 + 2
		h := int(hRaw)%40 + 2
		levels := int(lRaw)%3 + 1
		ctx, q := quickEnv()
		if ctx == nil {
			return false
		}
		inst, err := NewInstance(data.GenerateLeaf(w, h, seed), levels)
		if err != nil {
			return false
		}
		if err := inst.Setup(ctx, q); err != nil {
			return false
		}
		if err := inst.Iterate(q); err != nil {
			return false
		}
		return inst.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the transform preserves energy up to the kappa scaling — the
// coefficient plane's norm stays within a bounded factor of the input norm
// (CDF 9/7 is near-orthogonal).
func TestEnergyBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		im := data.GenerateLeaf(32, 32, seed)
		ctx, q := quickEnv()
		inst, err := NewInstance(im, 2)
		if err != nil || ctx == nil {
			return false
		}
		if err := inst.Setup(ctx, q); err != nil {
			return false
		}
		if err := inst.Iterate(q); err != nil {
			return false
		}
		norm := func(xs []float32) float64 {
			s := 0.0
			for _, v := range xs {
				s += float64(v) * float64(v)
			}
			return math.Sqrt(s)
		}
		in := norm(im.Pix)
		out := norm(inst.Coefficients())
		if in == 0 {
			return out == 0
		}
		// The lowpass branch gains ~√2 per 1-D stage under this scaling
		// convention, so a DC-dominated image can gain up to ~4× in energy
		// over two 2-D levels; anything outside [0.25, 5] indicates a
		// transform bug rather than filter gain.
		ratio := out / in
		return ratio > 0.25 && ratio < 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: a level-1 transform of a constant image concentrates all energy
// in the approximation quadrant.
func TestConstantImageCompaction(t *testing.T) {
	im := data.NewImage(16, 16)
	for i := range im.Pix {
		im.Pix[i] = 100
	}
	ctx, q := quickEnv()
	inst, err := NewInstance(im, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	co := inst.Coefficients()
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			v := float64(co[y*16+x])
			if x < 8 && y < 8 {
				if math.Abs(v) < 1 {
					t.Fatalf("approximation coefficient (%d,%d) = %f vanished", x, y, v)
				}
			} else if math.Abs(v) > 1e-2 {
				t.Fatalf("detail coefficient (%d,%d) = %f for a constant image", x, y, v)
			}
		}
	}
}
