// Package hmm implements the Graphical Models dwarf: one Baum-Welch
// re-estimation step of a hidden Markov model (the OpenDwarfs bwa_hmm
// benchmark). Table 2 parameterises it by state count Φ1 and symbol count
// Φ2 ((8,1), (900,1), (1012,1024), (2048,2048)); the observation-sequence
// length is fixed at T=16 here to keep functional execution tractable
// (documented in DESIGN.md — the paper itself validated correctness only at
// the tiny size, §4.4.4).
//
// One iteration runs: T forward-step kernels (with host rescaling), T
// backward-step kernels, a gamma kernel, a transition-update kernel over N²
// pairs, and an emission-update kernel over N×S — so launch overhead and
// dense N² traffic both appear, as on the real accelerators.
package hmm

import (
	"fmt"
	"math"
	"math/rand"

	"opendwarfs/internal/cache"
	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
	"opendwarfs/internal/sim"
)

// T is the observation-sequence length.
const T = 16

// shape is one Table 2 configuration: N states, S symbols.
type shape struct{ N, S int }

// sizeShape is the Table 2 workload scale parameter Φ1, Φ2.
var sizeShape = map[string]shape{
	dwarfs.SizeTiny:   {8, 1},
	dwarfs.SizeSmall:  {900, 1},
	dwarfs.SizeMedium: {1012, 1024},
	dwarfs.SizeLarge:  {2048, 2048},
}

// Benchmark is the suite entry.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements dwarfs.Benchmark.
func (*Benchmark) Name() string { return "hmm" }

// Dwarf implements dwarfs.Benchmark.
func (*Benchmark) Dwarf() string { return "Graphical Models" }

// Sizes implements dwarfs.Benchmark.
func (*Benchmark) Sizes() []string { return dwarfs.Sizes() }

// ScaleParameter implements dwarfs.Benchmark.
func (*Benchmark) ScaleParameter(size string) string {
	s := sizeShape[size]
	return fmt.Sprintf("%d,%d", s.N, s.S)
}

// ArgString implements dwarfs.Benchmark (Table 3: hmm -n Φ1 -s Φ2 -v s).
func (*Benchmark) ArgString(size string) string {
	s := sizeShape[size]
	return fmt.Sprintf("-n %d -s %d -v s", s.N, s.S)
}

// New implements dwarfs.Benchmark.
func (*Benchmark) New(size string, seed int64) (dwarfs.Instance, error) {
	s, ok := sizeShape[size]
	if !ok {
		return nil, fmt.Errorf("hmm: unsupported size %q", size)
	}
	return NewInstance(s.N, s.S, seed)
}

// Instance is one configured Baum-Welch step.
type Instance struct {
	n, s int
	seed int64

	// Model parameters (row-major, row-stochastic).
	a  []float32 // N×N transitions
	b  []float32 // N×S emissions
	pi []float32 // N initial distribution
	// Pristine copies restored each iteration.
	a0, b0, pi0 []float32

	obs   []int32   // T observations
	alpha []float32 // T×N scaled forward variables
	beta  []float32 // T×N scaled backward variables
	gamma []float32 // T×N state posteriors
	scale []float32 // T rescaling factors (host-written)

	bufs []*opencl.Buffer

	// Kernel state read by the closures.
	t int

	kFwdInit, kFwdStep, kBwdStep, kGamma, kUpdateA, kUpdateB *opencl.Kernel
	iterations                                               int
	ran                                                      bool
}

// NewInstance builds an instance with random row-stochastic parameters.
func NewInstance(n, s int, seed int64) (*Instance, error) {
	if n < 1 || s < 1 {
		return nil, fmt.Errorf("hmm: need at least one state and symbol (got %d,%d)", n, s)
	}
	in := &Instance{n: n, s: s, seed: seed}
	rng := rand.New(rand.NewSource(seed))
	in.a0 = randStochastic(rng, n, n)
	in.b0 = randStochastic(rng, n, s)
	in.pi0 = randStochastic(rng, 1, n)
	in.obs = make([]int32, T)
	for t := range in.obs {
		in.obs[t] = int32(rng.Intn(s))
	}
	return in, nil
}

// randStochastic draws a rows×cols row-stochastic matrix.
func randStochastic(rng *rand.Rand, rows, cols int) []float32 {
	m := make([]float32, rows*cols)
	for r := 0; r < rows; r++ {
		sum := float32(0)
		for c := 0; c < cols; c++ {
			v := float32(rng.Float64() + 0.05)
			m[r*cols+c] = v
			sum += v
		}
		for c := 0; c < cols; c++ {
			m[r*cols+c] /= sum
		}
	}
	return m
}

// FootprintBytes implements dwarfs.Instance: A, B, π, observations and the
// forward/backward/posterior planes.
func (in *Instance) FootprintBytes() int64 {
	n, s := int64(in.n), int64(in.s)
	return n*n*4 + n*s*4 + n*4 + T*4 + 3*T*n*4 + T*4
}

// Setup implements dwarfs.Instance.
func (in *Instance) Setup(ctx *opencl.Context, q *opencl.CommandQueue) error {
	alloc := func(name string, n int) []float32 {
		b, sl := opencl.NewBuffer[float32](ctx, name, n)
		in.bufs = append(in.bufs, b)
		return sl
	}
	in.a = alloc("A", in.n*in.n)
	in.b = alloc("B", in.n*in.s)
	in.pi = alloc("pi", in.n)
	obsBuf, obs := opencl.NewBuffer[int32](ctx, "obs", T)
	in.bufs = append(in.bufs, obsBuf)
	copy(obs, in.obs)
	in.obs = obs
	in.alpha = alloc("alpha", T*in.n)
	in.beta = alloc("beta", T*in.n)
	in.gamma = alloc("gamma", T*in.n)
	in.scale = alloc("scale", T)
	copy(in.a, in.a0)
	copy(in.b, in.b0)
	copy(in.pi, in.pi0)

	n := in.n
	in.kFwdInit = &opencl.Kernel{
		Name: "hmm_forward_init",
		Fn: func(wi *opencl.Item) {
			i := wi.GlobalID(0)
			in.alpha[i] = in.pi[i] * in.b[i*in.s+int(in.obs[0])]
		},
		Profile: func(ndr opencl.NDRange) *sim.KernelProfile { return in.profileVec("hmm_forward_init", ndr) },
	}
	in.kFwdStep = &opencl.Kernel{
		Name: "hmm_forward_step",
		Fn: func(wi *opencl.Item) {
			i := wi.GlobalID(0)
			t := in.t
			sum := float32(0)
			prev := in.alpha[(t-1)*n:]
			for j := 0; j < n; j++ {
				sum += prev[j] * in.a[j*n+i]
			}
			in.alpha[t*n+i] = sum * in.b[i*in.s+int(in.obs[t])]
		},
		Profile: func(ndr opencl.NDRange) *sim.KernelProfile { return in.profileMat("hmm_forward_step", ndr) },
	}
	in.kBwdStep = &opencl.Kernel{
		Name: "hmm_backward_step",
		Fn: func(wi *opencl.Item) {
			i := wi.GlobalID(0)
			t := in.t
			sum := float32(0)
			next := in.beta[(t+1)*n:]
			for j := 0; j < n; j++ {
				sum += in.a[i*n+j] * in.b[j*in.s+int(in.obs[t+1])] * next[j]
			}
			in.beta[t*n+i] = sum / in.scale[t+1]
		},
		Profile: func(ndr opencl.NDRange) *sim.KernelProfile { return in.profileMat("hmm_backward_step", ndr) },
	}
	in.kGamma = &opencl.Kernel{
		Name: "hmm_gamma",
		Fn: func(wi *opencl.Item) {
			idx := wi.GlobalID(0) // t*n + i
			in.gamma[idx] = in.alpha[idx] * in.beta[idx]
		},
		Profile: func(ndr opencl.NDRange) *sim.KernelProfile { return in.profileVec("hmm_gamma", ndr) },
	}
	in.kUpdateA = &opencl.Kernel{
		Name: "hmm_update_a",
		Fn: func(wi *opencl.Item) {
			idx := wi.GlobalID(0)
			i, j := idx/n, idx%n
			num, den := float32(0), float32(0)
			for t := 0; t < T-1; t++ {
				xi := in.alpha[t*n+i] * in.a[i*n+j] * in.b[j*in.s+int(in.obs[t+1])] * in.beta[(t+1)*n+j] / in.scale[t+1]
				num += xi
				den += in.gamma[t*n+i]
			}
			if den > 0 {
				in.a[i*n+j] = num / den
			}
		},
		Profile: func(ndr opencl.NDRange) *sim.KernelProfile { return in.profileUpdate("hmm_update_a", ndr) },
	}
	in.kUpdateB = &opencl.Kernel{
		Name: "hmm_update_b",
		Fn: func(wi *opencl.Item) {
			idx := wi.GlobalID(0)
			i, k := idx/in.s, idx%in.s
			num, den := float32(0), float32(0)
			for t := 0; t < T; t++ {
				g := in.gamma[t*n+i]
				if int(in.obs[t]) == k {
					num += g
				}
				den += g
			}
			if den > 0 {
				in.b[i*in.s+k] = num / den
			}
		},
		Profile: func(ndr opencl.NDRange) *sim.KernelProfile { return in.profileUpdate("hmm_update_b", ndr) },
	}
	for _, b := range in.bufs[:4] { // A, B, pi, obs
		q.EnqueueWrite(b)
	}
	return nil
}

func (in *Instance) profileVec(name string, ndr opencl.NDRange) *sim.KernelProfile {
	return &sim.KernelProfile{
		Name: name, WorkItems: ndr.TotalItems(),
		FlopsPerItem: 2, IntOpsPerItem: 4,
		LoadBytesPerItem: 12, StoreBytesPerItem: 4,
		WorkingSetBytes: in.FootprintBytes(), Pattern: cache.Streaming,
		TemporalReuse: 0.3, Vectorizable: true,
	}
}

func (in *Instance) profileMat(name string, ndr opencl.NDRange) *sim.KernelProfile {
	n := float64(in.n)
	return &sim.KernelProfile{
		Name: name, WorkItems: ndr.TotalItems(),
		FlopsPerItem: 3 * n, IntOpsPerItem: n,
		LoadBytesPerItem: 8 * n, StoreBytesPerItem: 4,
		WorkingSetBytes: in.FootprintBytes(), Pattern: cache.Strided,
		TemporalReuse: 0.5, Vectorizable: true,
	}
}

func (in *Instance) profileUpdate(name string, ndr opencl.NDRange) *sim.KernelProfile {
	return &sim.KernelProfile{
		Name: name, WorkItems: ndr.TotalItems(),
		FlopsPerItem: 6 * T, IntOpsPerItem: 2 * T,
		LoadBytesPerItem: 16 * T, StoreBytesPerItem: 4,
		WorkingSetBytes: in.FootprintBytes(), Pattern: cache.Strided,
		TemporalReuse: 0.6, Vectorizable: true,
	}
}

// launch enqueues a kernel over n items with a divisibility-safe local size.
func launch(q *opencl.CommandQueue, k *opencl.Kernel, n int) error {
	local := 64
	for n%local != 0 {
		local /= 2
	}
	_, err := q.EnqueueNDRange(k, opencl.NDR1(n, local))
	return err
}

// Iterate implements dwarfs.Instance: one full Baum-Welch re-estimation.
func (in *Instance) Iterate(q *opencl.CommandQueue) error {
	if in.kFwdInit == nil {
		return fmt.Errorf("hmm: Iterate before Setup")
	}
	simOnly := q.SimulateOnly()
	if !simOnly {
		copy(in.a, in.a0)
		copy(in.b, in.b0)
		copy(in.pi, in.pi0)
	}
	n := in.n

	// Forward pass with per-step host rescaling.
	if err := launch(q, in.kFwdInit, n); err != nil {
		return err
	}
	if !simOnly {
		in.rescale(0)
	}
	for t := 1; t < T; t++ {
		in.t = t
		if err := launch(q, in.kFwdStep, n); err != nil {
			return err
		}
		if !simOnly {
			in.rescale(t)
		}
	}
	// Backward pass.
	if !simOnly {
		for i := 0; i < n; i++ {
			in.beta[(T-1)*n+i] = 1
		}
	}
	for t := T - 2; t >= 0; t-- {
		in.t = t
		if err := launch(q, in.kBwdStep, n); err != nil {
			return err
		}
	}
	// Posteriors and updates.
	if err := launch(q, in.kGamma, T*n); err != nil {
		return err
	}
	if err := launch(q, in.kUpdateA, n*n); err != nil {
		return err
	}
	if err := launch(q, in.kUpdateB, n*in.s); err != nil {
		return err
	}
	in.iterations++
	in.ran = true
	return nil
}

// rescale normalises alpha at step t and records the scaling factor.
func (in *Instance) rescale(t int) {
	n := in.n
	sum := float32(0)
	for i := 0; i < n; i++ {
		sum += in.alpha[t*n+i]
	}
	if sum == 0 {
		sum = 1
	}
	in.scale[t] = sum
	for i := 0; i < n; i++ {
		in.alpha[t*n+i] /= sum
	}
}

// LogLikelihood returns the scaled-forward log-likelihood of the
// observation sequence under the pre-update model.
func (in *Instance) LogLikelihood() float64 {
	ll := 0.0
	for t := 0; t < T; t++ {
		ll += math.Log(float64(in.scale[t]))
	}
	return ll
}

// Verify implements dwarfs.Instance: a serial replay of the same step must
// match A and B exactly, and both must remain row-stochastic.
func (in *Instance) Verify() error {
	if !in.ran {
		return fmt.Errorf("hmm: Verify before Iterate")
	}
	refA, refB := in.serialStep()
	for i := range refA {
		if d := math.Abs(float64(refA[i] - in.a[i])); d > 1e-5 {
			return fmt.Errorf("hmm: A[%d] = %g, reference %g", i, in.a[i], refA[i])
		}
	}
	for i := range refB {
		if d := math.Abs(float64(refB[i] - in.b[i])); d > 1e-5 {
			return fmt.Errorf("hmm: B[%d] = %g, reference %g", i, in.b[i], refB[i])
		}
	}
	// Row-stochastic invariant (within float accumulation error).
	for r := 0; r < in.n; r++ {
		sum := float32(0)
		for c := 0; c < in.n; c++ {
			sum += in.a[r*in.n+c]
		}
		if math.Abs(float64(sum-1)) > 1e-3 {
			return fmt.Errorf("hmm: A row %d sums to %f", r, sum)
		}
	}
	return nil
}

// serialStep replays one Baum-Welch step serially with the same arithmetic
// order as the kernels.
func (in *Instance) serialStep() (refA, refB []float32) {
	n, s := in.n, in.s
	a := append([]float32(nil), in.a0...)
	b := append([]float32(nil), in.b0...)
	alpha := make([]float32, T*n)
	beta := make([]float32, T*n)
	gamma := make([]float32, T*n)
	scale := make([]float32, T)

	for i := 0; i < n; i++ {
		alpha[i] = in.pi0[i] * b[i*s+int(in.obs[0])]
	}
	resc := func(t int) {
		sum := float32(0)
		for i := 0; i < n; i++ {
			sum += alpha[t*n+i]
		}
		if sum == 0 {
			sum = 1
		}
		scale[t] = sum
		for i := 0; i < n; i++ {
			alpha[t*n+i] /= sum
		}
	}
	resc(0)
	for t := 1; t < T; t++ {
		for i := 0; i < n; i++ {
			sum := float32(0)
			for j := 0; j < n; j++ {
				sum += alpha[(t-1)*n+j] * a[j*n+i]
			}
			alpha[t*n+i] = sum * b[i*s+int(in.obs[t])]
		}
		resc(t)
	}
	for i := 0; i < n; i++ {
		beta[(T-1)*n+i] = 1
	}
	for t := T - 2; t >= 0; t-- {
		for i := 0; i < n; i++ {
			sum := float32(0)
			for j := 0; j < n; j++ {
				sum += a[i*n+j] * b[j*s+int(in.obs[t+1])] * beta[(t+1)*n+j]
			}
			beta[t*n+i] = sum / scale[t+1]
		}
	}
	for idx := range gamma {
		gamma[idx] = alpha[idx] * beta[idx]
	}
	refA = make([]float32, n*n)
	copy(refA, a)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			num, den := float32(0), float32(0)
			for t := 0; t < T-1; t++ {
				xi := alpha[t*n+i] * a[i*n+j] * b[j*s+int(in.obs[t+1])] * beta[(t+1)*n+j] / scale[t+1]
				num += xi
				den += gamma[t*n+i]
			}
			if den > 0 {
				refA[i*n+j] = num / den
			}
		}
	}
	refB = make([]float32, n*s)
	copy(refB, b)
	for i := 0; i < n; i++ {
		for k := 0; k < s; k++ {
			num, den := float32(0), float32(0)
			for t := 0; t < T; t++ {
				g := gamma[t*n+i]
				if int(in.obs[t]) == k {
					num += g
				}
				den += g
			}
			if den > 0 {
				refB[i*s+k] = num / den
			}
		}
	}
	return refA, refB
}
