package hmm

import (
	"math"
	"testing"
	"testing/quick"

	"opendwarfs/internal/opencl"
)

func quickEnv() (*opencl.Context, *opencl.CommandQueue) {
	dev, err := opencl.LookupDevice("e5-2697v2")
	if err != nil {
		return nil, nil
	}
	ctx, _ := opencl.NewContext(dev)
	q, _ := opencl.NewQueue(ctx, dev)
	return ctx, q
}

func runHMM(n, s int, seed int64) *Instance {
	ctx, q := quickEnv()
	if ctx == nil {
		return nil
	}
	inst, err := NewInstance(n, s, seed)
	if err != nil {
		return nil
	}
	if err := inst.Setup(ctx, q); err != nil {
		return nil
	}
	if err := inst.Iterate(q); err != nil {
		return nil
	}
	return inst
}

// Property: Baum-Welch kernels match the serial replay for arbitrary model
// shapes.
func TestKernelSerialAgreementProperty(t *testing.T) {
	f := func(seed int64, nRaw, sRaw uint8) bool {
		n := int(nRaw)%40 + 2
		s := int(sRaw)%6 + 1
		inst := runHMM(n, s, seed)
		return inst != nil && inst.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaled forward variables are a probability distribution at
// every time step (each alpha row sums to one after rescaling).
func TestAlphaRowsNormalisedProperty(t *testing.T) {
	f := func(seed int64) bool {
		inst := runHMM(16, 3, seed)
		if inst == nil {
			return false
		}
		for step := 0; step < T; step++ {
			sum := float64(0)
			for i := 0; i < 16; i++ {
				sum += float64(inst.alpha[step*16+i])
			}
			if math.Abs(sum-1) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: state posteriors sum to one at every step (gamma is a proper
// distribution given alpha·beta scaling).
func TestGammaRowsNormalisedProperty(t *testing.T) {
	f := func(seed int64) bool {
		inst := runHMM(12, 2, seed)
		if inst == nil {
			return false
		}
		for step := 0; step < T; step++ {
			sum := float64(0)
			for i := 0; i < 12; i++ {
				sum += float64(inst.gamma[step*12+i])
			}
			if math.Abs(sum-1) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: updated parameters are valid probabilities — no negative or
// NaN entries anywhere in A or B.
func TestUpdatedParametersValidProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%24 + 2
		inst := runHMM(n, 4, seed)
		if inst == nil {
			return false
		}
		for _, v := range inst.a {
			if v < 0 || v > 1.0001 || math.IsNaN(float64(v)) {
				return false
			}
		}
		for _, v := range inst.b {
			if v < 0 || v > 1.0001 || math.IsNaN(float64(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
