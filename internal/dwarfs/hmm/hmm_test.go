package hmm

import (
	"math"
	"testing"

	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
)

func newEnv(t *testing.T) (*opencl.Context, *opencl.CommandQueue) {
	t.Helper()
	dev, err := opencl.LookupDevice("e5-2697v2")
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := opencl.NewContext(dev)
	q, _ := opencl.NewQueue(ctx, dev)
	return ctx, q
}

func TestMetadata(t *testing.T) {
	b := New()
	if b.Name() != "hmm" || b.Dwarf() != "Graphical Models" {
		t.Fatal("metadata")
	}
	if got := b.ArgString("tiny"); got != "-n 8 -s 1 -v s" {
		t.Fatalf("Table 3 args %q", got)
	}
	if got := b.ScaleParameter("large"); got != "2048,2048" {
		t.Fatalf("Φ %q", got)
	}
	if _, err := b.New("immense", 1); err == nil {
		t.Fatal("bad size accepted")
	}
	if _, err := NewInstance(0, 1, 1); err == nil {
		t.Fatal("zero states accepted")
	}
}

func TestKernelMatchesSerialTiny(t *testing.T) {
	// The tiny size is the one the paper validated (§4.4.4); we can do all
	// sizes functionally, but tiny is the canonical check.
	ctx, q := newEnv(t)
	inst, err := New().New(dwarfs.SizeTiny, 19)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := dwarfs.CheckFootprint(inst, ctx); err != nil {
		t.Fatal(err)
	}
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiSymbolModel(t *testing.T) {
	ctx, q := newEnv(t)
	inst, err := NewInstance(24, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRowStochasticAfterUpdate(t *testing.T) {
	ctx, q := newEnv(t)
	inst, _ := NewInstance(32, 4, 3)
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 32; r++ {
		sumA, sumB := float32(0), float32(0)
		for c := 0; c < 32; c++ {
			sumA += inst.a[r*32+c]
		}
		for k := 0; k < 4; k++ {
			sumB += inst.b[r*4+k]
		}
		if math.Abs(float64(sumA-1)) > 1e-3 {
			t.Fatalf("A row %d sums to %f", r, sumA)
		}
		if math.Abs(float64(sumB-1)) > 1e-3 {
			t.Fatalf("B row %d sums to %f", r, sumB)
		}
	}
}

func TestLogLikelihoodFinite(t *testing.T) {
	ctx, q := newEnv(t)
	inst, _ := NewInstance(16, 3, 8)
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	ll := inst.LogLikelihood()
	if math.IsNaN(ll) || math.IsInf(ll, 0) || ll > 0 {
		t.Fatalf("log-likelihood %f implausible", ll)
	}
}

func TestLaunchCount(t *testing.T) {
	// 1 forward init + (T−1) forward + (T−1) backward + gamma + A + B.
	ctx, q := newEnv(t)
	inst, _ := NewInstance(8, 2, 1)
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	q.DrainEvents()
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	kernels := 0
	for _, ev := range q.Events() {
		if ev.Kind == opencl.CommandKernel {
			kernels++
		}
	}
	if want := 1 + (T - 1) + (T - 1) + 3; kernels != want {
		t.Fatalf("%d launches, want %d", kernels, want)
	}
}

func TestRepeatedIterationsDeterministic(t *testing.T) {
	ctx, q := newEnv(t)
	inst, _ := NewInstance(12, 2, 4)
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	first := append([]float32(nil), inst.a...)
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != inst.a[i] {
			t.Fatal("re-running the same step from restored parameters diverged")
		}
	}
	if err := inst.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFootprintsLandInPaperBands(t *testing.T) {
	tiny, _ := New().New(dwarfs.SizeTiny, 1)
	if kib := float64(tiny.FootprintBytes()) / 1024; kib > 32 {
		t.Fatalf("tiny hmm %.1f KiB exceeds L1", kib)
	}
	large, _ := New().New(dwarfs.SizeLarge, 1)
	if mib := float64(large.FootprintBytes()) / (1 << 20); mib < 32 {
		t.Fatalf("large hmm %.1f MiB below 4×L3", mib)
	}
}

func TestLifecycleErrors(t *testing.T) {
	inst, _ := NewInstance(4, 2, 1)
	_, q := newEnv(t)
	if err := inst.Iterate(q); err == nil {
		t.Fatal("Iterate before Setup accepted")
	}
	if err := inst.Verify(); err == nil {
		t.Fatal("Verify before Iterate accepted")
	}
}
