// Package lud implements the Dense Linear Algebra dwarf: blocked LU
// decomposition without pivoting of a diagonally dominant matrix, following
// the Rodinia-derived OpenDwarfs structure of three kernels per block step —
// diagonal factorisation, perimeter triangular solves, and the trailing
// submatrix update.
package lud

import (
	"fmt"
	"math"

	"opendwarfs/internal/cache"
	"opendwarfs/internal/data"
	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
	"opendwarfs/internal/sim"
)

// B is the block size of the decomposition (Rodinia's BLOCK_SIZE).
const B = 16

// nBySize is the Table 2 workload scale parameter Φ (matrix dimension).
var nBySize = map[string]int{
	dwarfs.SizeTiny:   80,
	dwarfs.SizeSmall:  240,
	dwarfs.SizeMedium: 1440,
	dwarfs.SizeLarge:  4096,
}

// Benchmark is the suite entry.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements dwarfs.Benchmark.
func (*Benchmark) Name() string { return "lud" }

// Dwarf implements dwarfs.Benchmark.
func (*Benchmark) Dwarf() string { return "Dense Linear Algebra" }

// Sizes implements dwarfs.Benchmark.
func (*Benchmark) Sizes() []string { return dwarfs.Sizes() }

// ScaleParameter implements dwarfs.Benchmark.
func (*Benchmark) ScaleParameter(size string) string { return fmt.Sprintf("%d", nBySize[size]) }

// ArgString implements dwarfs.Benchmark (Table 3: lud -s Φ).
func (*Benchmark) ArgString(size string) string { return fmt.Sprintf("-s %d", nBySize[size]) }

// New implements dwarfs.Benchmark.
func (*Benchmark) New(size string, seed int64) (dwarfs.Instance, error) {
	n, ok := nBySize[size]
	if !ok {
		return nil, fmt.Errorf("lud: unsupported size %q", size)
	}
	return NewInstance(n, seed)
}

// Instance is one configured decomposition.
type Instance struct {
	n, nb int
	seed  int64

	original []float32 // pristine input, restored before each iteration
	m        []float32 // in-place working matrix (device buffer)
	matBuf   *opencl.Buffer

	step                     int // current block step, read by kernel closures
	kDiag, kPerim, kInternal *opencl.Kernel
	ran                      bool
}

// NewInstance builds an instance for an n×n matrix; n must be a positive
// multiple of the block size, as the original benchmark requires.
func NewInstance(n int, seed int64) (*Instance, error) {
	if n <= 0 || n%B != 0 {
		return nil, fmt.Errorf("lud: n=%d must be a positive multiple of %d", n, B)
	}
	return &Instance{n: n, nb: n / B, seed: seed}, nil
}

// FootprintBytes implements dwarfs.Instance: the in-place matrix.
func (in *Instance) FootprintBytes() int64 { return int64(in.n) * int64(in.n) * 4 }

// Setup implements dwarfs.Instance.
func (in *Instance) Setup(ctx *opencl.Context, q *opencl.CommandQueue) error {
	in.original = data.DiagonallyDominantMatrix(in.n, in.seed)
	in.matBuf, in.m = opencl.NewBuffer[float32](ctx, "matrix", in.n*in.n)
	copy(in.m, in.original)

	m, n := in.m, in.n
	// Diagonal kernel: factorise block (s,s) in place (Doolittle, unit
	// lower). One work-group of B "threads" in the original; the block is
	// inherently sequential across its k steps, so a single item performs
	// it here and the profile carries the serial fraction.
	in.kDiag = &opencl.Kernel{
		Name: "lud_diagonal",
		Fn: func(wi *opencl.Item) {
			s := in.step
			off := s * B
			for k := 0; k < B; k++ {
				piv := m[(off+k)*n+off+k]
				for i := k + 1; i < B; i++ {
					m[(off+i)*n+off+k] /= piv
					lik := m[(off+i)*n+off+k]
					for j := k + 1; j < B; j++ {
						m[(off+i)*n+off+j] -= lik * m[(off+k)*n+off+j]
					}
				}
			}
		},
		Profile: in.profileDiag,
	}
	// Perimeter kernel: one item per off-diagonal block in the pivot row
	// and column; row blocks get L⁻¹·A, column blocks get A·U⁻¹.
	in.kPerim = &opencl.Kernel{
		Name: "lud_perimeter",
		Fn: func(wi *opencl.Item) {
			s := in.step
			rem := in.nb - s - 1
			id := wi.GlobalID(0)
			off := s * B
			if id < rem {
				// Row block (s, s+1+id): forward substitution with the
				// unit-lower factor of the diagonal block.
				c0 := (s + 1 + id) * B
				for k := 0; k < B; k++ {
					for i := k + 1; i < B; i++ {
						lik := m[(off+i)*n+off+k]
						for j := 0; j < B; j++ {
							m[(off+i)*n+c0+j] -= lik * m[(off+k)*n+c0+j]
						}
					}
				}
			} else {
				// Column block (s+1+id', s): right-solve with U.
				r0 := (s + 1 + id - rem) * B
				for k := 0; k < B; k++ {
					piv := m[(off+k)*n+off+k]
					for i := 0; i < B; i++ {
						m[(r0+i)*n+off+k] /= piv
						lik := m[(r0+i)*n+off+k]
						for j := k + 1; j < B; j++ {
							m[(r0+i)*n+off+j] -= lik * m[(off+k)*n+off+j]
						}
					}
				}
			}
		},
		Profile: in.profilePerim,
	}
	// Internal kernel: one item per trailing block (i,j), computing
	// A(i,j) -= A(i,s)·A(s,j).
	in.kInternal = &opencl.Kernel{
		Name: "lud_internal",
		Fn: func(wi *opencl.Item) {
			s := in.step
			rem := in.nb - s - 1
			id := wi.GlobalID(0)
			bi := s + 1 + id/rem
			bj := s + 1 + id%rem
			off := s * B
			r0, c0 := bi*B, bj*B
			for i := 0; i < B; i++ {
				for k := 0; k < B; k++ {
					aik := m[(r0+i)*n+off+k]
					for j := 0; j < B; j++ {
						m[(r0+i)*n+c0+j] -= aik * m[(off+k)*n+c0+j]
					}
				}
			}
		},
		Profile: in.profileInternal,
	}
	q.EnqueueWrite(in.matBuf)
	return nil
}

// activeWS returns the working-set bytes of the trailing submatrix at the
// current step.
func (in *Instance) activeWS() int64 {
	rem := int64(in.nb-in.step) * B
	return rem * rem * 4
}

func (in *Instance) profileDiag(ndr opencl.NDRange) *sim.KernelProfile {
	// Modelled as the B×B thread block of the original kernel.
	flops := float64(B*B*B) / 3 * 2
	return &sim.KernelProfile{
		Name: "lud_diagonal", WorkItems: B * B,
		FlopsPerItem:     flops / (B * B),
		LoadBytesPerItem: 8, StoreBytesPerItem: 4,
		WorkingSetBytes: B * B * 4, Pattern: cache.Strided,
		TemporalReuse: 0.9, SerialFraction: 0.5, Vectorizable: true,
	}
}

func (in *Instance) profilePerim(ndr opencl.NDRange) *sim.KernelProfile {
	blocks := ndr.TotalItems()
	flopsPerBlock := float64(B * B * B) // triangular solve ≈ B³ MACs
	return &sim.KernelProfile{
		Name: "lud_perimeter", WorkItems: blocks * B * B,
		FlopsPerItem:     2 * flopsPerBlock / (B * B),
		LoadBytesPerItem: 2 * B * 4 / 4, StoreBytesPerItem: 4,
		WorkingSetBytes: in.activeWS(), Pattern: cache.Strided,
		TemporalReuse: 0.85, SerialFraction: 0.05, Vectorizable: true,
	}
}

func (in *Instance) profileInternal(ndr opencl.NDRange) *sim.KernelProfile {
	blocks := ndr.TotalItems()
	return &sim.KernelProfile{
		Name: "lud_internal", WorkItems: blocks * B * B,
		// 2·B³ flops per block over B² threads = 2·B flops per thread.
		FlopsPerItem:      2 * B,
		IntOpsPerItem:     B,
		LoadBytesPerItem:  2 * B * 4 / 4, // row/col slices staged in local memory
		StoreBytesPerItem: 4,
		WorkingSetBytes:   in.activeWS(), Pattern: cache.Strided,
		TemporalReuse: 0.9, Vectorizable: true,
	}
}

// Iterate implements dwarfs.Instance: restore the input (the transfer
// region) and run the full decomposition (3·nb−2 kernel launches).
func (in *Instance) Iterate(q *opencl.CommandQueue) error {
	if in.kDiag == nil {
		return fmt.Errorf("lud: Iterate before Setup")
	}
	if !q.SimulateOnly() {
		copy(in.m, in.original)
	}
	q.EnqueueWrite(in.matBuf)
	for s := 0; s < in.nb; s++ {
		in.step = s
		if _, err := q.EnqueueNDRange(in.kDiag, opencl.NDR1(1, 1)); err != nil {
			return err
		}
		rem := in.nb - s - 1
		if rem == 0 {
			continue
		}
		if _, err := q.EnqueueNDRange(in.kPerim, opencl.NDR1(2*rem, 1)); err != nil {
			return err
		}
		if _, err := q.EnqueueNDRange(in.kInternal, opencl.NDR1(rem*rem, 1)); err != nil {
			return err
		}
	}
	in.ran = true
	return nil
}

// Verify implements dwarfs.Instance: reconstruct L·U and compare with the
// original matrix in the Frobenius norm — the "comparing norms between the
// experimental outputs" check the paper added (§4.4.2). Full reconstruction
// is O(n³); beyond n=512 a deterministic sample of rows is checked instead,
// which still catches any mis-factorised block.
func (in *Instance) Verify() error {
	if !in.ran {
		return fmt.Errorf("lud: Verify before Iterate")
	}
	n := in.n
	rowStep := 1
	if n > 512 {
		rowStep = n / 512
	}
	var num, den float64
	for i := 0; i < n; i += rowStep {
		for j := 0; j < n; j++ {
			// (L·U)[i][j] with unit-diagonal L stored below the diagonal.
			sum := 0.0
			kmax := i
			if j < i {
				kmax = j
			}
			for k := 0; k <= kmax; k++ {
				var l float64
				switch {
				case k < i:
					l = float64(in.m[i*n+k])
				default: // k == i
					l = 1
				}
				if k <= j {
					sum += l * float64(in.m[k*n+j])
				}
			}
			d := sum - float64(in.original[i*n+j])
			num += d * d
			den += float64(in.original[i*n+j]) * float64(in.original[i*n+j])
		}
	}
	if rel := math.Sqrt(num / den); rel > 1e-4 {
		return fmt.Errorf("lud: relative reconstruction error %g exceeds 1e-4", rel)
	}
	return nil
}
