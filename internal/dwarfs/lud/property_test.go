package lud

import (
	"testing"
	"testing/quick"

	"opendwarfs/internal/opencl"
)

func quickEnv() (*opencl.Context, *opencl.CommandQueue) {
	dev, err := opencl.LookupDevice("i7-6700k")
	if err != nil {
		return nil, nil
	}
	ctx, _ := opencl.NewContext(dev)
	q, _ := opencl.NewQueue(ctx, dev)
	return ctx, q
}

// Property: the blocked decomposition reconstructs random diagonally
// dominant matrices at arbitrary block multiples.
func TestDecompositionProperty(t *testing.T) {
	f := func(seed int64, nbRaw uint8) bool {
		nb := int(nbRaw)%4 + 1 // 16..64
		ctx, q := quickEnv()
		if ctx == nil {
			return false
		}
		inst, err := NewInstance(nb*B, seed)
		if err != nil {
			return false
		}
		if err := inst.Setup(ctx, q); err != nil {
			return false
		}
		if err := inst.Iterate(q); err != nil {
			return false
		}
		return inst.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the factored matrix carries a unit-free lower triangle — every
// L entry must be finite and the diagonal of U nonzero (no pivot collapse
// on diagonally dominant inputs).
func TestPivotsNonZeroProperty(t *testing.T) {
	f := func(seed int64) bool {
		ctx, q := quickEnv()
		inst, err := NewInstance(3*B, seed)
		if err != nil || ctx == nil {
			return false
		}
		if err := inst.Setup(ctx, q); err != nil {
			return false
		}
		if err := inst.Iterate(q); err != nil {
			return false
		}
		n := inst.n
		for k := 0; k < n; k++ {
			piv := inst.m[k*n+k]
			if piv == 0 || piv != piv { // zero or NaN
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
