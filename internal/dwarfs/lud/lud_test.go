package lud

import (
	"testing"

	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
)

func newEnv(t *testing.T) (*opencl.Context, *opencl.CommandQueue) {
	t.Helper()
	dev, err := opencl.LookupDevice("i7-6700k")
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := opencl.NewContext(dev)
	q, _ := opencl.NewQueue(ctx, dev)
	return ctx, q
}

func TestMetadata(t *testing.T) {
	b := New()
	if b.Name() != "lud" || b.Dwarf() != "Dense Linear Algebra" {
		t.Fatal("metadata")
	}
	if got := b.ArgString("medium"); got != "-s 1440" {
		t.Fatalf("Table 3 args %q", got)
	}
	if _, err := b.New("giga", 1); err == nil {
		t.Fatal("bad size accepted")
	}
	if _, err := NewInstance(100, 1); err == nil {
		t.Fatal("non-multiple-of-16 dimension accepted")
	}
	if _, err := NewInstance(0, 1); err == nil {
		t.Fatal("zero dimension accepted")
	}
}

func TestDecompositionTiny(t *testing.T) {
	// Table 2 tiny: 80×80.
	ctx, q := newEnv(t)
	inst, err := New().New(dwarfs.SizeTiny, 21)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := dwarfs.CheckFootprint(inst, ctx); err != nil {
		t.Fatal(err)
	}
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDecompositionSmall(t *testing.T) {
	ctx, q := newEnv(t)
	inst, err := New().New(dwarfs.SizeSmall, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleBlockMatrix(t *testing.T) {
	// n = B: only the diagonal kernel runs.
	ctx, q := newEnv(t)
	inst, err := NewInstance(B, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedIterationsRestoreInput(t *testing.T) {
	// Iterate destroys the matrix in place; a second Iterate must restore
	// and still verify.
	ctx, q := newEnv(t)
	inst, err := NewInstance(2*B, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := inst.Iterate(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := inst.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestLaunchCount(t *testing.T) {
	// The wavefront structure issues 3·nb−2 kernels: nb diagonal, nb−1
	// perimeter, nb−1 internal.
	ctx, q := newEnv(t)
	inst, err := NewInstance(5*B, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	q.DrainEvents()
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	kernels := 0
	for _, ev := range q.Events() {
		if ev.Kind == opencl.CommandKernel {
			kernels++
		}
	}
	if want := 3*5 - 2; kernels != want {
		t.Fatalf("%d kernel launches, want %d", kernels, want)
	}
}

func TestFootprint(t *testing.T) {
	inst, _ := NewInstance(240, 1)
	if got := inst.FootprintBytes(); got != 240*240*4 {
		t.Fatalf("footprint %d", got)
	}
	// Table 2 medium (1440) must fit L3 (8 MiB): 1440²·4 = 7.9 MiB.
	m, _ := NewInstance(1440, 1)
	if kib := m.FootprintBytes() / 1024; kib > 8192 {
		t.Fatalf("medium %d KiB exceeds L3", kib)
	}
}

func TestLifecycleErrors(t *testing.T) {
	inst, _ := NewInstance(B, 1)
	_, q := newEnv(t)
	if err := inst.Iterate(q); err == nil {
		t.Fatal("Iterate before Setup accepted")
	}
	if err := inst.Verify(); err == nil {
		t.Fatal("Verify before Iterate accepted")
	}
}
