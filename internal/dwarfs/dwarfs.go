// Package dwarfs defines the common benchmark abstraction of the Extended
// OpenDwarfs suite: every benchmark implements one Berkeley dwarf (§2),
// supports the paper's four problem sizes where possible (§4.4), runs its
// kernels against the internal/opencl runtime, and verifies its output
// against a serial reference — the correctness emphasis the paper adds to
// the original suite.
package dwarfs

import (
	"fmt"
	"sort"

	"opendwarfs/internal/opencl"
)

// The canonical problem sizes of §4.4, chosen against the Skylake memory
// hierarchy: tiny ≤ L1 (32 KiB), small ≤ L2 (256 KiB), medium ≤ L3
// (8192 KiB), large ≥ 4×L3.
const (
	SizeTiny   = "tiny"
	SizeSmall  = "small"
	SizeMedium = "medium"
	SizeLarge  = "large"
)

// Sizes returns the four canonical sizes in ascending order.
func Sizes() []string { return []string{SizeTiny, SizeSmall, SizeMedium, SizeLarge} }

// ValidSize reports whether s is one of the canonical sizes.
func ValidSize(s string) bool {
	for _, v := range Sizes() {
		if v == s {
			return true
		}
	}
	return false
}

// SupportsSize reports whether a benchmark supports the named problem
// size. It is the single size-membership helper shared by the harness grid
// planner and the public facade.
func SupportsSize(b Benchmark, size string) bool {
	for _, s := range b.Sizes() {
		if s == size {
			return true
		}
	}
	return false
}

// Benchmark is one suite entry.
type Benchmark interface {
	// Name is the suite identifier (kmeans, lud, csr, fft, dwt, srad, crc,
	// nw, gem, nqueens, hmm).
	Name() string
	// Dwarf is the Berkeley dwarf the benchmark represents (§2).
	Dwarf() string
	// Sizes lists the supported problem sizes; nqueens supports only one
	// (§4.4.4).
	Sizes() []string
	// ScaleParameter renders the benchmark's Table 2 workload scale
	// parameter Φ for a size.
	ScaleParameter(size string) string
	// ArgString renders the Table 3 program arguments for a size.
	ArgString(size string) string
	// New instantiates the benchmark at a size with a deterministic seed.
	New(size string, seed int64) (Instance, error)
}

// Instance is one configured benchmark run.
type Instance interface {
	// Setup allocates buffers in the context and enqueues the initial
	// host→device transfers on the queue.
	Setup(ctx *opencl.Context, q *opencl.CommandQueue) error
	// Iterate performs one timed iteration of the benchmark: every kernel
	// enqueue the application issues per loop pass (§4.3's ≥2 s loop runs
	// Iterate repeatedly).
	Iterate(q *opencl.CommandQueue) error
	// Verify checks the device results against the serial reference. It
	// must be called after at least one Iterate on an executing (non
	// simulate-only) queue.
	Verify() error
	// FootprintBytes is the expected device-side memory usage (the paper
	// verifies this against the context's allocation accounting).
	FootprintBytes() int64
}

// CheckFootprint compares an instance's declared footprint with the
// context's live allocation accounting — the §4.4 verification step.
func CheckFootprint(inst Instance, ctx *opencl.Context) error {
	want := inst.FootprintBytes()
	got := ctx.DeviceFootprintBytes()
	if got != want {
		return fmt.Errorf("dwarfs: device footprint %d B does not match declared %d B", got, want)
	}
	return nil
}

// Registry is an ordered benchmark collection.
type Registry struct {
	order []Benchmark
	byKey map[string]Benchmark
}

// NewRegistry builds a registry from benchmarks, rejecting duplicates.
func NewRegistry(bs ...Benchmark) (*Registry, error) {
	r := &Registry{byKey: make(map[string]Benchmark, len(bs))}
	for _, b := range bs {
		if _, dup := r.byKey[b.Name()]; dup {
			return nil, fmt.Errorf("dwarfs: duplicate benchmark %q", b.Name())
		}
		r.byKey[b.Name()] = b
		r.order = append(r.order, b)
	}
	return r, nil
}

// All returns the benchmarks in registration order.
func (r *Registry) All() []Benchmark { return r.order }

// Get finds a benchmark by name. Unknown names fail with the sorted list
// of valid ones, mirroring sim.Lookup's device error.
func (r *Registry) Get(name string) (Benchmark, error) {
	b, ok := r.byKey[name]
	if !ok {
		names := make([]string, 0, len(r.order))
		for _, x := range r.order {
			names = append(names, x.Name())
		}
		sort.Strings(names)
		return nil, fmt.Errorf("dwarfs: unknown benchmark %q (have %v)", name, names)
	}
	return b, nil
}
