package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"opendwarfs/internal/opencl"
)

func quickEnv() (*opencl.Context, *opencl.CommandQueue) {
	dev, err := opencl.LookupDevice("titanx")
	if err != nil {
		return nil, nil
	}
	ctx, _ := opencl.NewContext(dev)
	q, _ := opencl.NewQueue(ctx, dev)
	return ctx, q
}

// Property: the Stockham kernel matches the serial reference for arbitrary
// power-of-two lengths and seeds.
func TestKernelSerialAgreementProperty(t *testing.T) {
	f := func(seed int64, logRaw uint8) bool {
		n := 1 << (uint(logRaw)%9 + 1) // 2..512
		ctx, q := quickEnv()
		if ctx == nil {
			return false
		}
		inst, err := NewInstance(n, seed)
		if err != nil {
			return false
		}
		if err := inst.Setup(ctx, q); err != nil {
			return false
		}
		if err := inst.Iterate(q); err != nil {
			return false
		}
		return inst.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: DC bin equals the sum of the signal; Nyquist bin equals the
// alternating sum.
func TestDCAndNyquistBins(t *testing.T) {
	f := func(seed int64) bool {
		ctx, q := quickEnv()
		inst, err := NewInstance(64, seed)
		if err != nil || ctx == nil {
			return false
		}
		if err := inst.Setup(ctx, q); err != nil {
			return false
		}
		if err := inst.Iterate(q); err != nil {
			return false
		}
		var dc, nyq complex128
		for i, v := range inst.input {
			dc += complex128(v)
			if i%2 == 0 {
				nyq += complex128(v)
			} else {
				nyq -= complex128(v)
			}
		}
		out := inst.Output()
		return cmplx.Abs(complex128(out[0])-dc) < 1e-3 &&
			cmplx.Abs(complex128(out[32])-nyq) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: time-domain circular shift multiplies each bin by a unit-modulus
// twiddle — so bin magnitudes are shift-invariant.
func TestShiftInvarianceOfMagnitudes(t *testing.T) {
	f := func(seed int64, shiftRaw uint8) bool {
		const n = 128
		shift := int(shiftRaw) % n
		ctx, q := quickEnv()
		a, err := NewInstance(n, seed)
		if err != nil || ctx == nil {
			return false
		}
		if err := a.Setup(ctx, q); err != nil {
			return false
		}
		if err := a.Iterate(q); err != nil {
			return false
		}

		ctx2, q2 := quickEnv()
		b, _ := NewInstance(n, seed)
		if err := b.Setup(ctx2, q2); err != nil {
			return false
		}
		// Rotate b's input by `shift`.
		rot := make([]complex64, n)
		for i := range rot {
			rot[i] = b.input[(i+shift)%n]
		}
		copy(b.input, rot)
		if err := b.Iterate(q2); err != nil {
			return false
		}
		for k := 0; k < n; k++ {
			ma := cmplx.Abs(complex128(a.Output()[k]))
			mb := cmplx.Abs(complex128(b.Output()[k]))
			if math.Abs(ma-mb) > 1e-2*(1+ma) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
