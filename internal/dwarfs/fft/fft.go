// Package fft implements half of the Spectral Methods dwarf: a 1-D complex
// single-precision FFT. The paper replaced the original OpenDwarfs FFT —
// which "returned incorrect results or failures on some combinations of
// platforms and problem sizes" — with Eric Bainville's simpler
// high-performance radix-2 Stockham kernel (§2), which this package follows:
// log₂(N) ping-pong passes, each launching N/2 work-items that perform one
// butterfly and write the pair to self-sorting positions.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"math/rand"

	"opendwarfs/internal/cache"
	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
	"opendwarfs/internal/sim"
)

// nBySize is the Table 2 workload scale parameter Φ (transform length).
var nBySize = map[string]int{
	dwarfs.SizeTiny:   2048,
	dwarfs.SizeSmall:  16384,
	dwarfs.SizeMedium: 524288,
	dwarfs.SizeLarge:  2097152,
}

// Benchmark is the suite entry.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements dwarfs.Benchmark.
func (*Benchmark) Name() string { return "fft" }

// Dwarf implements dwarfs.Benchmark.
func (*Benchmark) Dwarf() string { return "Spectral Methods" }

// Sizes implements dwarfs.Benchmark.
func (*Benchmark) Sizes() []string { return dwarfs.Sizes() }

// ScaleParameter implements dwarfs.Benchmark.
func (*Benchmark) ScaleParameter(size string) string { return fmt.Sprintf("%d", nBySize[size]) }

// ArgString implements dwarfs.Benchmark (Table 3: fft Φ).
func (*Benchmark) ArgString(size string) string { return fmt.Sprintf("%d", nBySize[size]) }

// New implements dwarfs.Benchmark.
func (*Benchmark) New(size string, seed int64) (dwarfs.Instance, error) {
	n, ok := nBySize[size]
	if !ok {
		return nil, fmt.Errorf("fft: unsupported size %q", size)
	}
	return NewInstance(n, seed)
}

// Instance is one configured transform.
type Instance struct {
	n    int
	seed int64

	input      []complex64 // pristine input signal
	ping, pong []complex64
	pingBuf    *opencl.Buffer
	pongBuf    *opencl.Buffer

	// Kernel state read by the closure at execution time.
	src, dst []complex64
	p        int

	kernel *opencl.Kernel
	// out aliases whichever buffer holds the final spectrum.
	out []complex64
	ran bool
}

// NewInstance builds an instance; n must be a power of two ≥ 2.
func NewInstance(n int, seed int64) (*Instance, error) {
	if n < 2 || bits.OnesCount(uint(n)) != 1 {
		return nil, fmt.Errorf("fft: n=%d must be a power of two ≥ 2", n)
	}
	return &Instance{n: n, seed: seed}, nil
}

// FootprintBytes implements dwarfs.Instance: the two ping-pong buffers.
func (in *Instance) FootprintBytes() int64 { return 2 * int64(in.n) * 8 }

// Setup implements dwarfs.Instance.
func (in *Instance) Setup(ctx *opencl.Context, q *opencl.CommandQueue) error {
	in.pingBuf, in.ping = opencl.NewBuffer[complex64](ctx, "ping", in.n)
	in.pongBuf, in.pong = opencl.NewBuffer[complex64](ctx, "pong", in.n)
	rng := rand.New(rand.NewSource(in.seed))
	in.input = make([]complex64, in.n)
	for i := range in.input {
		in.input[i] = complex(float32(rng.Float64()*2-1), float32(rng.Float64()*2-1))
	}
	copy(in.ping, in.input)

	in.kernel = &opencl.Kernel{
		Name:    "fft_radix2",
		Fn:      in.butterfly,
		Profile: in.profile,
	}
	q.EnqueueWrite(in.pingBuf)
	return nil
}

// butterfly is Bainville's radix-2 Stockham kernel: work-item i combines
// src[i] and src[i+N/2] with twiddle e^{-iπk/p} and writes the self-sorted
// pair at ((i-k)<<1)+k and +p, where k = i mod p.
func (in *Instance) butterfly(wi *opencl.Item) {
	i := wi.GlobalID(0)
	t := in.n / 2
	k := i & (in.p - 1)
	u0 := complex128(in.src[i])
	u1 := complex128(in.src[i+t])
	alpha := -math.Pi * float64(k) / float64(in.p)
	u1 *= cmplx.Exp(complex(0, alpha))
	j := ((i - k) << 1) + k
	in.dst[j] = complex64(u0 + u1)
	in.dst[j+in.p] = complex64(u0 - u1)
}

// profile characterises one pass: strided ping-pong traffic over both
// buffers with trig-heavy butterflies. Spectral Methods are the paper's
// canonical memory-latency-limited dwarf (§5.1), which the strided pattern
// over a cache-spilling working set reproduces.
func (in *Instance) profile(ndr opencl.NDRange) *sim.KernelProfile {
	return &sim.KernelProfile{
		Name:              "fft_radix2",
		WorkItems:         ndr.TotalItems(),
		FlopsPerItem:      24, // complex mul + 2 complex adds + sincos
		IntOpsPerItem:     8,
		LoadBytesPerItem:  16,
		StoreBytesPerItem: 16,
		WorkingSetBytes:   in.FootprintBytes(),
		Pattern:           cache.Strided,
		Vectorizable:      true,
	}
}

// Passes returns log₂(n), the number of kernel launches per transform.
func (in *Instance) Passes() int { return bits.TrailingZeros(uint(in.n)) }

// Iterate implements dwarfs.Instance: restore the input and run all passes.
func (in *Instance) Iterate(q *opencl.CommandQueue) error {
	if in.kernel == nil {
		return fmt.Errorf("fft: Iterate before Setup")
	}
	if !q.SimulateOnly() {
		copy(in.ping, in.input)
	}
	q.EnqueueWrite(in.pingBuf)
	src, dst := in.ping, in.pong
	in.p = 1
	local := 64
	if in.n/2 < local {
		local = in.n / 2
	}
	for pass := 0; pass < in.Passes(); pass++ {
		in.src, in.dst = src, dst
		if _, err := q.EnqueueNDRange(in.kernel, opencl.NDR1(in.n/2, local)); err != nil {
			return err
		}
		src, dst = dst, src
		in.p <<= 1
	}
	in.out = src // after the final swap, src aliases the last destination
	in.ran = true
	return nil
}

// Output returns the spectrum of the last Iterate.
func (in *Instance) Output() []complex64 { return in.out }

// Verify implements dwarfs.Instance against a serial double-precision FFT;
// the paper examined correctness "by directly comparing outputs against a
// serial implementation" (§4.4.2).
func (in *Instance) Verify() error {
	if !in.ran {
		return fmt.Errorf("fft: Verify before Iterate")
	}
	ref := make([]complex128, in.n)
	for i, v := range in.input {
		ref[i] = complex128(v)
	}
	SerialFFT(ref)
	// Tolerance: float32 butterflies accumulate ~log₂(N)·ε error against
	// the float64 reference, relative to the signal norm.
	norm := 0.0
	for _, v := range ref {
		norm += cmplx.Abs(v) * cmplx.Abs(v)
	}
	norm = math.Sqrt(norm / float64(in.n))
	tol := 1e-5 * norm * float64(in.Passes())
	for i := range ref {
		if d := cmplx.Abs(complex128(in.out[i]) - ref[i]); d > tol {
			return fmt.Errorf("fft: bin %d differs by %g (tol %g): %v vs %v", i, d, tol, in.out[i], ref[i])
		}
	}
	return nil
}

// SerialFFT is the in-place double-precision Cooley-Tukey reference
// (iterative, bit-reversal ordering). len(x) must be a power of two.
func SerialFFT(x []complex128) {
	n := len(x)
	if n < 2 {
		return
	}
	if bits.OnesCount(uint(n)) != 1 {
		panic("fft: SerialFFT length must be a power of two")
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := -2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := cmplx.Exp(complex(0, step*float64(k)))
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// SerialIFFT is the inverse of SerialFFT (unscaled forward conjugation
// method, normalised by 1/N).
func SerialIFFT(x []complex128) {
	n := len(x)
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	SerialFFT(x)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) / complex(float64(n), 0)
	}
}
