package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"opendwarfs/internal/opencl"
)

func newEnv(t *testing.T) (*opencl.Context, *opencl.CommandQueue) {
	t.Helper()
	dev, err := opencl.LookupDevice("gtx1080")
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := opencl.NewContext(dev)
	q, _ := opencl.NewQueue(ctx, dev)
	return ctx, q
}

func TestMetadata(t *testing.T) {
	b := New()
	if b.Name() != "fft" || b.Dwarf() != "Spectral Methods" {
		t.Fatal("metadata")
	}
	if got := b.ArgString("large"); got != "2097152" {
		t.Fatalf("Table 3 args %q", got)
	}
	if _, err := b.New("odd", 1); err == nil {
		t.Fatal("bad size accepted")
	}
	if _, err := NewInstance(1000, 1); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if _, err := NewInstance(1, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func runFFT(t *testing.T, n int, seed int64) *Instance {
	t.Helper()
	ctx, q := newEnv(t)
	inst, err := NewInstance(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestKernelMatchesSerialReference(t *testing.T) {
	for _, n := range []int{2, 4, 8, 64, 2048} {
		inst := runFFT(t, n, 5)
		if err := inst.Verify(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestAgainstDirectDFT(t *testing.T) {
	// Independent O(N²) check of the serial reference itself.
	const n = 32
	rng := rand.New(rand.NewSource(3))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
	}
	dft := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k*j) / float64(n)
			dft[k] += x[j] * cmplx.Exp(complex(0, angle))
		}
	}
	fft := append([]complex128(nil), x...)
	SerialFFT(fft)
	for k := range dft {
		if cmplx.Abs(fft[k]-dft[k]) > 1e-9 {
			t.Fatalf("bin %d: FFT %v vs DFT %v", k, fft[k], dft[k])
		}
	}
}

func TestImpulseGivesFlatSpectrum(t *testing.T) {
	x := make([]complex128, 16)
	x[0] = 1
	SerialFFT(x)
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse bin %d = %v, want 1", k, v)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := make([]complex128, 128)
	orig := make([]complex128, 128)
	for i := range x {
		x[i] = complex(rng.Float64(), rng.Float64())
		orig[i] = x[i]
	}
	SerialFFT(x)
	SerialIFFT(x)
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-10 {
			t.Fatalf("sample %d: %v vs %v", i, x[i], orig[i])
		}
	}
}

// Property: Parseval — energy preserved up to 1/N scaling.
func TestParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		x := make([]complex128, n)
		timeE := 0.0
		for i := range x {
			x[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
			timeE += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		SerialFFT(x)
		freqE := 0.0
		for _, v := range x {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(freqE/float64(n)-timeE) < 1e-9*(1+timeE)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: linearity — FFT(a·x + y) = a·FFT(x) + FFT(y).
func TestLinearityProperty(t *testing.T) {
	f := func(seed int64, aRaw int8) bool {
		a := complex(float64(aRaw)/16, 0)
		rng := rand.New(rand.NewSource(seed))
		n := 32
		x := make([]complex128, n)
		y := make([]complex128, n)
		combo := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Float64(), rng.Float64())
			y[i] = complex(rng.Float64(), rng.Float64())
			combo[i] = a*x[i] + y[i]
		}
		SerialFFT(x)
		SerialFFT(y)
		SerialFFT(combo)
		for i := range combo {
			if cmplx.Abs(combo[i]-(a*x[i]+y[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLaunchCountIsLogN(t *testing.T) {
	ctx, q := newEnv(t)
	inst, _ := NewInstance(2048, 1)
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	q.DrainEvents()
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	kernels := 0
	for _, ev := range q.Events() {
		if ev.Kind == opencl.CommandKernel {
			kernels++
		}
	}
	if kernels != 11 { // log2(2048)
		t.Fatalf("%d kernel launches, want 11", kernels)
	}
	if inst.Passes() != 11 {
		t.Fatalf("Passes() = %d", inst.Passes())
	}
}

func TestRepeatedIterations(t *testing.T) {
	ctx, q := newEnv(t)
	inst, _ := NewInstance(256, 2)
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	var first []complex64
	for i := 0; i < 2; i++ {
		if err := inst.Iterate(q); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = append([]complex64(nil), inst.Output()...)
		}
	}
	for i := range first {
		if first[i] != inst.Output()[i] {
			t.Fatal("repeated transforms of the same input differ")
		}
	}
	if err := inst.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFootprintMatchesPaperSizing(t *testing.T) {
	// tiny = 2048 points × 16 B = exactly the 32 KiB L1.
	inst, _ := NewInstance(2048, 1)
	if kib := inst.FootprintBytes() / 1024; kib != 32 {
		t.Fatalf("tiny fft footprint %d KiB, want 32", kib)
	}
}

func TestLifecycleErrors(t *testing.T) {
	inst, _ := NewInstance(64, 1)
	_, q := newEnv(t)
	if err := inst.Iterate(q); err == nil {
		t.Fatal("Iterate before Setup accepted")
	}
	if err := inst.Verify(); err == nil {
		t.Fatal("Verify before Iterate accepted")
	}
}
