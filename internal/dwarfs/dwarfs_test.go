package dwarfs

import (
	"strings"
	"testing"

	"opendwarfs/internal/opencl"
)

// fakeBench is a minimal Benchmark for registry tests.
type fakeBench struct{ name string }

func (f fakeBench) Name() string                      { return f.name }
func (fakeBench) Dwarf() string                       { return "Fake" }
func (fakeBench) Sizes() []string                     { return Sizes() }
func (fakeBench) ScaleParameter(string) string        { return "1" }
func (fakeBench) ArgString(string) string             { return "-x 1" }
func (fakeBench) New(string, int64) (Instance, error) { return nil, nil }

func TestSizes(t *testing.T) {
	s := Sizes()
	if len(s) != 4 || s[0] != SizeTiny || s[3] != SizeLarge {
		t.Fatalf("sizes %v", s)
	}
	for _, v := range s {
		if !ValidSize(v) {
			t.Errorf("%s invalid", v)
		}
	}
	if ValidSize("enormous") {
		t.Error("bogus size accepted")
	}
}

func TestRegistry(t *testing.T) {
	r, err := NewRegistry(fakeBench{"a"}, fakeBench{"b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.All()) != 2 {
		t.Fatal("All() wrong")
	}
	if b, err := r.Get("a"); err != nil || b.Name() != "a" {
		t.Fatal("Get failed")
	}
	if _, err := r.Get("c"); err == nil || !strings.Contains(err.Error(), "unknown benchmark") {
		t.Fatal("unknown accepted")
	}
	if _, err := NewRegistry(fakeBench{"a"}, fakeBench{"a"}); err == nil {
		t.Fatal("duplicate accepted")
	}
}

// footInst implements Instance with a fixed declared footprint.
type footInst struct{ declared int64 }

func (f footInst) Setup(*opencl.Context, *opencl.CommandQueue) error { return nil }
func (f footInst) Iterate(*opencl.CommandQueue) error                { return nil }
func (f footInst) Verify() error                                     { return nil }
func (f footInst) FootprintBytes() int64                             { return f.declared }

func TestCheckFootprint(t *testing.T) {
	dev, err := opencl.LookupDevice("i7-6700k")
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := opencl.NewContext(dev)
	opencl.NewBuffer[float32](ctx, "x", 256) // 1024 bytes live
	if err := CheckFootprint(footInst{1024}, ctx); err != nil {
		t.Fatalf("matching footprint rejected: %v", err)
	}
	if err := CheckFootprint(footInst{999}, ctx); err == nil {
		t.Fatal("mismatched footprint accepted")
	}
}
