// Package gem implements the N-Body Methods dwarf: Gemnoui, which computes
// the electrostatic potential of a biomolecular structure at each vertex of
// its solvent-excluded surface by direct summation over all atomic partial
// charges (§4.4.4). The paper's PDB-derived datasets (4TUT, 2D3V, the
// OpenDwarfs nucleosome, 1KX5) are replaced by synthetic molecules with
// identical device-side footprints — see internal/data and DESIGN.md.
package gem

import (
	"fmt"
	"math"

	"opendwarfs/internal/cache"
	"opendwarfs/internal/data"
	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
	"opendwarfs/internal/sim"
)

// Benchmark is the suite entry.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements dwarfs.Benchmark.
func (*Benchmark) Name() string { return "gem" }

// Dwarf implements dwarfs.Benchmark.
func (*Benchmark) Dwarf() string { return "N-Body Methods" }

// Sizes implements dwarfs.Benchmark.
func (*Benchmark) Sizes() []string { return dwarfs.Sizes() }

// ScaleParameter implements dwarfs.Benchmark (Table 2 lists the PDB IDs).
func (*Benchmark) ScaleParameter(size string) string {
	p, err := data.MoleculePresetFor(size)
	if err != nil {
		return ""
	}
	return p.PDBID
}

// ArgString implements dwarfs.Benchmark (Table 3: gem Φ 80 1 0).
func (b *Benchmark) ArgString(size string) string {
	return fmt.Sprintf("%s 80 1 0", b.ScaleParameter(size))
}

// New implements dwarfs.Benchmark.
func (*Benchmark) New(size string, seed int64) (dwarfs.Instance, error) {
	p, err := data.MoleculePresetFor(size)
	if err != nil {
		return nil, fmt.Errorf("gem: %w", err)
	}
	return NewInstance(data.GenerateMolecule(p, seed)), nil
}

// Instance is one configured potential computation.
type Instance struct {
	mol *data.Molecule

	atomX, atomY, atomZ, atomQ []float32
	vertX, vertY, vertZ        []float32
	potential                  []float32
	bufs                       []*opencl.Buffer

	kernel *opencl.Kernel
	ran    bool
}

// NewInstance builds an instance over a molecule.
func NewInstance(mol *data.Molecule) *Instance { return &Instance{mol: mol} }

// FootprintBytes implements dwarfs.Instance: four atom arrays, three vertex
// arrays and the output potential (§4.4.4's reported usage).
func (in *Instance) FootprintBytes() int64 { return in.mol.FootprintBytes() }

// Setup implements dwarfs.Instance.
func (in *Instance) Setup(ctx *opencl.Context, q *opencl.CommandQueue) error {
	m := in.mol
	allocF := func(name string, src []float32) []float32 {
		b, s := opencl.NewBuffer[float32](ctx, name, len(src))
		copy(s, src)
		in.bufs = append(in.bufs, b)
		q.EnqueueWrite(b)
		return s
	}
	in.atomX = allocF("atom_x", m.AtomX)
	in.atomY = allocF("atom_y", m.AtomY)
	in.atomZ = allocF("atom_z", m.AtomZ)
	in.atomQ = allocF("atom_q", m.AtomQ)
	in.vertX = allocF("vert_x", m.VertX)
	in.vertY = allocF("vert_y", m.VertY)
	in.vertZ = allocF("vert_z", m.VertZ)
	var potBuf *opencl.Buffer
	potBuf, in.potential = opencl.NewBuffer[float32](ctx, "potential", m.Vertices())
	in.bufs = append(in.bufs, potBuf)

	in.kernel = &opencl.Kernel{
		Name: "gem_potential",
		Fn: func(wi *opencl.Item) {
			v := wi.GlobalID(0)
			in.potential[v] = potentialAt(
				in.vertX[v], in.vertY[v], in.vertZ[v],
				in.atomX, in.atomY, in.atomZ, in.atomQ)
		},
		Profile: in.profile,
	}
	return nil
}

// potentialAt sums q/r over all atoms (Coulomb, unit constants as in gem).
func potentialAt(x, y, z float32, ax, ay, az, aq []float32) float32 {
	sum := float32(0)
	for a := range ax {
		dx := x - ax[a]
		dy := y - ay[a]
		dz := z - az[a]
		r := float32(math.Sqrt(float64(dx*dx + dy*dy + dz*dz)))
		if r < 1e-6 {
			r = 1e-6 // paper notes uninitialised/coincident data hazards; clamp
		}
		sum += aq[a] / r
	}
	return sum
}

// profile characterises the kernel: a dense O(V·A) sweep in which every
// work-item re-reads the whole atom array — classic n-body with high
// arithmetic intensity and strong temporal reuse of the atom tiles.
func (in *Instance) profile(ndr opencl.NDRange) *sim.KernelProfile {
	atoms := float64(in.mol.Atoms())
	return &sim.KernelProfile{
		Name:              "gem_potential",
		WorkItems:         ndr.TotalItems(),
		FlopsPerItem:      11 * atoms, // 3 sub, 3 mul, 2 add, sqrt(~2), div
		IntOpsPerItem:     atoms,
		LoadBytesPerItem:  16*atoms + 12,
		StoreBytesPerItem: 4,
		WorkingSetBytes:   in.FootprintBytes(),
		Pattern:           cache.Streaming,
		TemporalReuse:     0.95, // atom arrays resident across vertices
		Vectorizable:      true,
	}
}

// Iterate implements dwarfs.Instance: one full potential evaluation.
func (in *Instance) Iterate(q *opencl.CommandQueue) error {
	if in.kernel == nil {
		return fmt.Errorf("gem: Iterate before Setup")
	}
	nv := in.mol.Vertices()
	local := 64
	for nv%local != 0 {
		local /= 2
	}
	if _, err := q.EnqueueNDRange(in.kernel, opencl.NDR1(nv, local)); err != nil {
		return err
	}
	in.ran = true
	return nil
}

// Potential returns the computed surface potential.
func (in *Instance) Potential() []float32 { return in.potential }

// Verify implements dwarfs.Instance: the serial reference uses the same
// summation order, so a sample of vertices must match exactly; the total
// charge-weighted potential is also checked for finiteness.
func (in *Instance) Verify() error {
	if !in.ran {
		return fmt.Errorf("gem: Verify before Iterate")
	}
	nv := in.mol.Vertices()
	step := 1
	if nv > 4096 {
		step = nv / 4096
	}
	for v := 0; v < nv; v += step {
		want := potentialAt(in.vertX[v], in.vertY[v], in.vertZ[v], in.atomX, in.atomY, in.atomZ, in.atomQ)
		if want != in.potential[v] {
			return fmt.Errorf("gem: vertex %d potential %g, reference %g", v, in.potential[v], want)
		}
		if math.IsNaN(float64(in.potential[v])) || math.IsInf(float64(in.potential[v]), 0) {
			return fmt.Errorf("gem: vertex %d potential is not finite", v)
		}
	}
	return nil
}
