package gem

import (
	"math"
	"testing"

	"opendwarfs/internal/data"
	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
)

func newEnv(t *testing.T) (*opencl.Context, *opencl.CommandQueue) {
	t.Helper()
	dev, err := opencl.LookupDevice("k40m")
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := opencl.NewContext(dev)
	q, _ := opencl.NewQueue(ctx, dev)
	return ctx, q
}

func TestMetadata(t *testing.T) {
	b := New()
	if b.Name() != "gem" || b.Dwarf() != "N-Body Methods" {
		t.Fatal("metadata")
	}
	// Table 2: the scale parameters are the PDB structures.
	if got := b.ScaleParameter("tiny"); got != "4TUT" {
		t.Fatalf("Φ(tiny) = %q", got)
	}
	if got := b.ScaleParameter("large"); got != "1KX5" {
		t.Fatalf("Φ(large) = %q", got)
	}
	if got := b.ArgString("tiny"); got != "4TUT 80 1 0" {
		t.Fatalf("Table 3 args %q", got)
	}
	if _, err := b.New("colossal", 1); err == nil {
		t.Fatal("bad size accepted")
	}
}

func TestKernelMatchesSerial(t *testing.T) {
	ctx, q := newEnv(t)
	inst, err := New().New(dwarfs.SizeTiny, 77)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := dwarfs.CheckFootprint(inst, ctx); err != nil {
		t.Fatal(err)
	}
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPotentialPhysics(t *testing.T) {
	// A single positive charge at the origin must produce potential q/r at
	// every vertex.
	mol := &data.Molecule{
		Name:  "unit",
		AtomX: []float32{0}, AtomY: []float32{0}, AtomZ: []float32{0},
		AtomQ: []float32{2},
		VertX: []float32{1, 0, 0, 2},
		VertY: []float32{0, 4, 0, 0},
		VertZ: []float32{0, 0, 8, 0},
	}
	inst := NewInstance(mol)
	ctx, q := newEnv(t)
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	want := []float32{2, 0.5, 0.25, 1}
	for i, w := range want {
		if math.Abs(float64(inst.Potential()[i]-w)) > 1e-6 {
			t.Fatalf("vertex %d potential %f, want %f", i, inst.Potential()[i], w)
		}
	}
}

func TestCoincidentAtomClamped(t *testing.T) {
	// The paper notes the medium/large molecules contain uninitialised
	// values that broke CPU runs (§4.4.4); the kernel clamps r to avoid
	// the same class of blow-up.
	mol := &data.Molecule{
		Name:  "degenerate",
		AtomX: []float32{1}, AtomY: []float32{1}, AtomZ: []float32{1},
		AtomQ: []float32{1},
		VertX: []float32{1}, VertY: []float32{1}, VertZ: []float32{1},
	}
	inst := NewInstance(mol)
	ctx, q := newEnv(t)
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	if v := float64(inst.Potential()[0]); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("coincident vertex/atom produced %f", v)
	}
}

func TestAllPresetSizesConstruct(t *testing.T) {
	for _, size := range New().Sizes() {
		inst, err := New().New(size, 1)
		if err != nil {
			t.Fatalf("%s: %v", size, err)
		}
		if inst.FootprintBytes() <= 0 {
			t.Fatalf("%s: no footprint", size)
		}
	}
}

func TestLifecycleErrors(t *testing.T) {
	p, _ := data.MoleculePresetFor("tiny")
	inst := NewInstance(data.GenerateMolecule(p, 1))
	_, q := newEnv(t)
	if err := inst.Iterate(q); err == nil {
		t.Fatal("Iterate before Setup accepted")
	}
	if err := inst.Verify(); err == nil {
		t.Fatal("Verify before Iterate accepted")
	}
}
