package gem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"opendwarfs/internal/data"
	"opendwarfs/internal/opencl"
)

func quickEnv() (*opencl.Context, *opencl.CommandQueue) {
	dev, err := opencl.LookupDevice("gtx1080")
	if err != nil {
		return nil, nil
	}
	ctx, _ := opencl.NewContext(dev)
	q, _ := opencl.NewQueue(ctx, dev)
	return ctx, q
}

func randomMolecule(atoms, verts int, seed int64) *data.Molecule {
	rng := rand.New(rand.NewSource(seed))
	m := &data.Molecule{
		Name:  "rand",
		AtomX: make([]float32, atoms), AtomY: make([]float32, atoms),
		AtomZ: make([]float32, atoms), AtomQ: make([]float32, atoms),
		VertX: make([]float32, verts), VertY: make([]float32, verts),
		VertZ: make([]float32, verts),
	}
	for i := 0; i < atoms; i++ {
		m.AtomX[i] = float32(rng.Float64()*10 - 5)
		m.AtomY[i] = float32(rng.Float64()*10 - 5)
		m.AtomZ[i] = float32(rng.Float64()*10 - 5)
		m.AtomQ[i] = float32(rng.Float64()*2 - 1)
	}
	for i := 0; i < verts; i++ {
		// Keep vertices on a far shell so r is never near zero.
		x, y, z := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		n := math.Sqrt(x*x+y*y+z*z) + 1e-9
		m.VertX[i] = float32(x / n * 20)
		m.VertY[i] = float32(y / n * 20)
		m.VertZ[i] = float32(z / n * 20)
	}
	return m
}

func run(m *data.Molecule) []float32 {
	ctx, q := quickEnv()
	inst := NewInstance(m)
	if err := inst.Setup(ctx, q); err != nil {
		return nil
	}
	if err := inst.Iterate(q); err != nil {
		return nil
	}
	out := make([]float32, len(inst.Potential()))
	copy(out, inst.Potential())
	return out
}

// Property: superposition — doubling every charge doubles the potential.
func TestChargeLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		m := randomMolecule(40, 64, seed)
		base := run(m)
		doubled := randomMolecule(40, 64, seed)
		for i := range doubled.AtomQ {
			doubled.AtomQ[i] *= 2
		}
		twice := run(doubled)
		if base == nil || twice == nil {
			return false
		}
		for i := range base {
			if math.Abs(float64(twice[i]-2*base[i])) > 1e-4*(1+math.Abs(float64(2*base[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: translation invariance — shifting atoms and vertices together
// leaves the potential unchanged (r depends only on differences).
func TestTranslationInvarianceProperty(t *testing.T) {
	f := func(seed int64, dxRaw int8) bool {
		dx := float32(dxRaw) / 8
		a := randomMolecule(32, 48, seed)
		b := randomMolecule(32, 48, seed)
		for i := range b.AtomX {
			b.AtomX[i] += dx
		}
		for i := range b.VertX {
			b.VertX[i] += dx
		}
		pa, pb := run(a), run(b)
		if pa == nil || pb == nil {
			return false
		}
		for i := range pa {
			if math.Abs(float64(pa[i]-pb[i])) > 2e-3*(1+math.Abs(float64(pa[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: far-field decay — a vertex twice as far from a monopole sees
// half the potential.
func TestInverseDistanceProperty(t *testing.T) {
	mol := &data.Molecule{
		Name:  "monopole",
		AtomX: []float32{0}, AtomY: []float32{0}, AtomZ: []float32{0}, AtomQ: []float32{3},
		VertX: []float32{5, 10}, VertY: []float32{0, 0}, VertZ: []float32{0, 0},
	}
	p := run(mol)
	if p == nil {
		t.Fatal("run failed")
	}
	if math.Abs(float64(p[0]-2*p[1])) > 1e-5 {
		t.Fatalf("1/r decay violated: %f vs 2x%f", p[0], p[1])
	}
}
