package nqueens

import (
	"testing"

	"opendwarfs/internal/opencl"
)

func newEnv(t *testing.T) (*opencl.Context, *opencl.CommandQueue) {
	t.Helper()
	dev, err := opencl.LookupDevice("titanx")
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := opencl.NewContext(dev)
	q, _ := opencl.NewQueue(ctx, dev)
	return ctx, q
}

func TestMetadata(t *testing.T) {
	b := New()
	if b.Name() != "nqueens" || b.Dwarf() != "Backtrack & Branch and Bound" {
		t.Fatal("metadata")
	}
	// §4.4.4: only one problem size is tested.
	if got := b.Sizes(); len(got) != 1 {
		t.Fatalf("nqueens sizes %v, want exactly one", got)
	}
	if got := b.ArgString("tiny"); got != "18" {
		t.Fatalf("Table 3 args %q", got)
	}
	if _, err := b.New("large", 1); err == nil {
		t.Fatal("unsupported size accepted")
	}
	if _, err := NewInstance(0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewInstance(64); err == nil {
		t.Fatal("n>31 accepted")
	}
}

func TestKnownCounts(t *testing.T) {
	// Functional verification at the paper-relevant scales a host can
	// count: every value against OEIS A000170.
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 10, 12} {
		ctx, q := newEnv(t)
		inst, err := NewInstance(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Setup(ctx, q); err != nil {
			t.Fatal(err)
		}
		if err := inst.Iterate(q); err != nil {
			t.Fatal(err)
		}
		if err := inst.Verify(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if inst.Solutions() != KnownSolutions[n] {
			t.Fatalf("n=%d: %d solutions, want %d", n, inst.Solutions(), KnownSolutions[n])
		}
	}
}

func TestN13(t *testing.T) {
	if testing.Short() {
		t.Skip("n=13 takes a moment")
	}
	ctx, q := newEnv(t)
	inst, _ := NewInstance(13)
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixPartitionIsExact(t *testing.T) {
	// The prefixes must partition the search space: the number of prefixes
	// equals the number of legal placements of the first PrefixRows rows,
	// counted independently row by row. (Distinct placements may share
	// attack masks, so mask-uniqueness is NOT an invariant — each entry is
	// its own subtree.)
	n := 8
	pre := enumeratePrefixes(n, PrefixRows)
	var count func(row int, cols, dl, dr uint32) int
	full := uint32(1)<<uint(n) - 1
	count = func(row int, cols, dl, dr uint32) int {
		if row == PrefixRows {
			return 1
		}
		total := 0
		avail := full &^ (cols | dl | dr)
		for avail != 0 {
			bit := avail & (-avail)
			avail ^= bit
			total += count(row+1, cols|bit, (dl|bit)<<1&full, (dr|bit)>>1)
		}
		return total
	}
	if want := count(0, 0, 0, 0); len(pre) != want {
		t.Fatalf("%d prefixes, want %d", len(pre), want)
	}
}

func TestNodeModel(t *testing.T) {
	// The timing model's node estimate must track the true bitmask search
	// tree within a factor of 2 for the sizes we can measure.
	for _, n := range []int{8, 10, 12} {
		var nodes uint64
		var count func(full, cols, dl, dr uint32)
		count = func(full, cols, dl, dr uint32) {
			nodes++
			if cols == full {
				return
			}
			avail := full &^ (cols | dl | dr)
			for avail != 0 {
				bit := avail & (-avail)
				avail ^= bit
				count(full, cols|bit, (dl|bit)<<1&full, (dr|bit)>>1)
			}
		}
		full := uint32(1)<<uint(n) - 1
		count(full, 0, 0, 0)
		est := EstimatedNodes(n)
		ratio := est / float64(nodes)
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("n=%d: estimated %.0f nodes, measured %d (ratio %.2f)", n, est, nodes, ratio)
		}
	}
}

func TestSimulateOnlyPath(t *testing.T) {
	// n=18 runs simulate-only in the harness; the profile must be valid
	// and produce a plausible compute-bound launch.
	ctx, q := newEnv(t)
	inst, _ := NewInstance(PaperN)
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	q.SetSimulateOnly(true)
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	evs := q.Events()
	var kernelNs float64
	for _, ev := range evs {
		if ev.Kind == opencl.CommandKernel {
			kernelNs += ev.DurationNs()
			if err := ev.Profile.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Fig. 4b shows n=18 in the 0.1–1.2 ms band per iteration across
	// devices; demand the right order of magnitude on a Titan X.
	if kernelNs < 1e4 || kernelNs > 1e10 {
		t.Fatalf("n=18 simulated kernel time %.0f ns implausible", kernelNs)
	}
}

func TestFootprintScalesSlowly(t *testing.T) {
	// §4.4.4: "memory footprint scales very slowly with increasing number
	// of queens, relative to the computational cost."
	a, _ := NewInstance(12)
	b, _ := NewInstance(18)
	ctxA, qA := newEnv(t)
	if err := a.Setup(ctxA, qA); err != nil {
		t.Fatal(err)
	}
	ctxB, qB := newEnv(t)
	if err := b.Setup(ctxB, qB); err != nil {
		t.Fatal(err)
	}
	memRatio := float64(b.FootprintBytes()) / float64(a.FootprintBytes())
	workRatio := EstimatedNodes(18) / EstimatedNodes(12)
	if memRatio*50 > workRatio {
		t.Fatalf("footprint ratio %.1f vs work ratio %.1f: not compute-bound", memRatio, workRatio)
	}
}

func TestLifecycleErrors(t *testing.T) {
	inst, _ := NewInstance(8)
	_, q := newEnv(t)
	if err := inst.Iterate(q); err == nil {
		t.Fatal("Iterate before Setup accepted")
	}
	if err := inst.Verify(); err == nil {
		t.Fatal("Verify before Iterate accepted")
	}
}
