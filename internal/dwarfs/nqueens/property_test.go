package nqueens

import (
	"testing"
	"testing/quick"

	"opendwarfs/internal/opencl"
)

func quickEnv() (*opencl.Context, *opencl.CommandQueue) {
	dev, err := opencl.LookupDevice("titanx")
	if err != nil {
		return nil, nil
	}
	ctx, _ := opencl.NewContext(dev)
	q, _ := opencl.NewQueue(ctx, dev)
	return ctx, q
}

// Property: the prefix-partitioned parallel count equals the monolithic
// serial count for every board size a quick check can afford.
func TestPartitionedCountEqualsSerialProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw)%8 + 4 // 4..11
		ctx, q := quickEnv()
		if ctx == nil {
			return false
		}
		inst, err := NewInstance(n)
		if err != nil {
			return false
		}
		if err := inst.Setup(ctx, q); err != nil {
			return false
		}
		if err := inst.Iterate(q); err != nil {
			return false
		}
		full := uint32(1)<<uint(n) - 1
		return inst.Solutions() == solve(full, 0, 0, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-prefix counts are consistent — no prefix can contribute
// more solutions than the whole board has.
func TestPerPrefixBounds(t *testing.T) {
	ctx, q := quickEnv()
	inst, err := NewInstance(9)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Setup(ctx, q); err != nil {
		t.Fatal(err)
	}
	if err := inst.Iterate(q); err != nil {
		t.Fatal(err)
	}
	total := KnownSolutions[9]
	for i, c := range inst.counts {
		if c > total {
			t.Fatalf("prefix %d claims %d solutions of %d total", i, c, total)
		}
	}
}

// Property: solution counts are invariant under board mirroring of the
// first-row choice; equivalently, the count over prefixes whose first queen
// sits in column c equals the count for column n−1−c.
func TestMirrorSymmetry(t *testing.T) {
	n := 8
	full := uint32(1)<<uint(n) - 1
	countFirstCol := func(c int) uint64 {
		bit := uint32(1) << uint(c)
		return solve(full, bit, bit<<1&full, bit>>1)
	}
	for c := 0; c < n/2; c++ {
		a := countFirstCol(c)
		b := countFirstCol(n - 1 - c)
		if a != b {
			t.Fatalf("column %d count %d != mirrored column %d count %d", c, a, n-1-c, b)
		}
	}
}
