// Package nqueens implements the Backtrack & Branch-and-Bound dwarf: count
// all placements of n non-attacking queens. As in the OpenCL original, the
// host enumerates every legal placement of the first PrefixRows rows; each
// work-item then exhausts its subtree with a bitmask depth-first search and
// writes its solution count, which the host reduces.
//
// The paper tests only n=18 (§4.4.4): "memory footprint scales very slowly
// ... relative to the computational cost. Thus it is significantly
// compute-bound and only one problem size is tested." Counting n=18
// functionally takes minutes of host CPU; the harness therefore verifies
// the solver at smaller n (known solution counts) and uses the calibrated
// node-count model in EstimatedNodes for device timing at 18.
package nqueens

import (
	"fmt"

	"opendwarfs/internal/cache"
	"opendwarfs/internal/dwarfs"
	"opendwarfs/internal/opencl"
	"opendwarfs/internal/sim"
)

// PaperN is the single board size of Table 2.
const PaperN = 18

// PrefixRows is the host-side enumeration depth that generates work-items.
const PrefixRows = 4

// KnownSolutions maps board size to the number of solutions (OEIS A000170),
// used for verification.
var KnownSolutions = map[int]uint64{
	1: 1, 2: 0, 3: 0, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92,
	9: 352, 10: 724, 11: 2680, 12: 14200, 13: 73712, 14: 365596,
	15: 2279184, 16: 14772512, 17: 95815104, 18: 666090624,
}

// Benchmark is the suite entry.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements dwarfs.Benchmark.
func (*Benchmark) Name() string { return "nqueens" }

// Dwarf implements dwarfs.Benchmark.
func (*Benchmark) Dwarf() string { return "Backtrack & Branch and Bound" }

// Sizes implements dwarfs.Benchmark: one size only (§4.4.4).
func (*Benchmark) Sizes() []string { return []string{dwarfs.SizeTiny} }

// ScaleParameter implements dwarfs.Benchmark.
func (*Benchmark) ScaleParameter(size string) string { return fmt.Sprintf("%d", PaperN) }

// ArgString implements dwarfs.Benchmark (Table 3: n-queens Φ).
func (*Benchmark) ArgString(size string) string { return fmt.Sprintf("%d", PaperN) }

// New implements dwarfs.Benchmark.
func (*Benchmark) New(size string, seed int64) (dwarfs.Instance, error) {
	if size != dwarfs.SizeTiny {
		return nil, fmt.Errorf("nqueens: only one problem size is tested (got %q)", size)
	}
	return NewInstance(PaperN)
}

// prefix is one legal placement of the first PrefixRows rows, encoded as the
// three attack masks of the bitmask solver.
type prefix struct {
	cols, diagL, diagR uint32
}

// Instance is one configured count.
type Instance struct {
	n        int
	prefixes []prefix
	counts   []uint64

	prefixBuf, countBuf *opencl.Buffer
	kernel              *opencl.Kernel
	total               uint64
	ran                 bool
}

// NewInstance builds an instance for an n×n board (n ≤ 31 by construction
// of the bitmask solver). The host-side prefix enumeration happens here so
// the device footprint is known before Setup.
func NewInstance(n int) (*Instance, error) {
	if n < 1 || n > 31 {
		return nil, fmt.Errorf("nqueens: n=%d out of [1,31]", n)
	}
	in := &Instance{n: n}
	depth := PrefixRows
	if depth >= n {
		depth = 0 // tiny boards: a single item solves the whole tree
	}
	in.prefixes = enumeratePrefixes(n, depth)
	return in, nil
}

// FootprintBytes implements dwarfs.Instance: prefix masks plus per-item
// counts — tiny by design, the paper's point about this dwarf.
func (in *Instance) FootprintBytes() int64 {
	return int64(len(in.prefixes))*12 + int64(len(in.prefixes))*8
}

// Setup implements dwarfs.Instance: allocate and fill the device buffers
// for the prefixes enumerated at construction.
func (in *Instance) Setup(ctx *opencl.Context, q *opencl.CommandQueue) error {
	np := len(in.prefixes)

	var maskData []uint32
	in.prefixBuf, maskData = opencl.NewBuffer[uint32](ctx, "prefixes", np*3)
	in.countBuf, in.counts = opencl.NewBuffer[uint64](ctx, "counts", np)
	for i, p := range in.prefixes {
		maskData[3*i], maskData[3*i+1], maskData[3*i+2] = p.cols, p.diagL, p.diagR
	}

	full := uint32(1)<<uint(in.n) - 1
	prefixes, counts := in.prefixes, in.counts
	in.kernel = &opencl.Kernel{
		Name: "nqueens_count",
		Fn: func(wi *opencl.Item) {
			i := wi.GlobalID(0)
			p := prefixes[i]
			counts[i] = solve(full, p.cols, p.diagL, p.diagR)
		},
		Profile: in.profile,
	}
	q.EnqueueWrite(in.prefixBuf)
	return nil
}

// enumeratePrefixes lists every legal placement of the first `depth` rows.
func enumeratePrefixes(n, depth int) []prefix {
	full := uint32(1)<<uint(n) - 1
	var out []prefix
	var rec func(row int, cols, dl, dr uint32)
	rec = func(row int, cols, dl, dr uint32) {
		if row == depth {
			out = append(out, prefix{cols, dl, dr})
			return
		}
		avail := full &^ (cols | dl | dr)
		for avail != 0 {
			bit := avail & (-avail)
			avail ^= bit
			rec(row+1, cols|bit, (dl|bit)<<1&full, (dr|bit)>>1)
		}
	}
	rec(0, 0, 0, 0)
	return out
}

// solve counts completions of a partial placement with the classic bitmask
// depth-first search.
func solve(full, cols, dl, dr uint32) uint64 {
	if cols == full {
		return 1
	}
	var count uint64
	avail := full &^ (cols | dl | dr)
	for avail != 0 {
		bit := avail & (-avail)
		avail ^= bit
		count += solve(full, cols|bit, (dl|bit)<<1&full, (dr|bit)>>1)
	}
	return count
}

// measuredNodes is the exact search-tree size of the bitmask solver,
// counted once per board size (reproduced by TestNodeModel).
var measuredNodes = map[int]float64{
	8: 2057, 9: 8394, 10: 35539, 11: 166926,
	12: 856189, 13: 4674890, 14: 27358553,
}

// EstimatedNodes approximates the search-tree size of the bitmask solver
// for an n×n board: exact measured counts up to n=14, and beyond that the
// known solution count times the node/solution ratio extrapolated from the
// measured trend (74.8 at n=14, growing ~9% per row). The device timing
// model uses this for n=18, which is too expensive to execute functionally.
func EstimatedNodes(n int) float64 {
	if nodes, ok := measuredNodes[n]; ok {
		return nodes
	}
	if n < 8 {
		// Small boards: count exactly; the whole tree is microscopic.
		full := uint32(1)<<uint(n) - 1
		var nodes float64
		var rec func(cols, dl, dr uint32)
		rec = func(cols, dl, dr uint32) {
			nodes++
			avail := full &^ (cols | dl | dr)
			for avail != 0 {
				bit := avail & (-avail)
				avail ^= bit
				rec(cols|bit, (dl|bit)<<1&full, (dr|bit)>>1)
			}
		}
		rec(0, 0, 0)
		return nodes
	}
	ratio := 74.8
	for i := 14; i < n; i++ {
		ratio *= 1.09
	}
	if s, ok := KnownSolutions[n]; ok {
		return ratio * float64(s)
	}
	return ratio * 1e9 // beyond the known table; order-of-magnitude only
}

// profile characterises the kernel: register-resident integer backtracking
// with heavy branch divergence (subtree sizes vary wildly across items). It
// is not vectorizable — the OpenCL compilers cannot SIMD-ify the recursion —
// but its high arithmetic intensity lets GPUs keep partial warps busy, which
// is why Fig. 4b still shows GPUs ahead of CPUs (unlike crc).
func (in *Instance) profile(ndr opencl.NDRange) *sim.KernelProfile {
	items := ndr.TotalItems()
	nodes := EstimatedNodes(in.n)
	opsPerNode := 12.0 // mask updates, low-bit extraction, recursion control
	return &sim.KernelProfile{
		Name:              "nqueens_count",
		WorkItems:         items,
		IntOpsPerItem:     nodes * opsPerNode / float64(items),
		LoadBytesPerItem:  12,
		StoreBytesPerItem: 8,
		WorkingSetBytes:   in.FootprintBytes(),
		Pattern:           cache.Streaming,
		TemporalReuse:     0.9,
		BranchesPerItem:   nodes * 2 / float64(items),
		Divergence:        0.5,
		Vectorizable:      false,
	}
}

// Iterate implements dwarfs.Instance: one full count.
func (in *Instance) Iterate(q *opencl.CommandQueue) error {
	if in.kernel == nil {
		return fmt.Errorf("nqueens: Iterate before Setup")
	}
	np := len(in.prefixes)
	local := 64
	for np%local != 0 {
		local /= 2
	}
	if _, err := q.EnqueueNDRange(in.kernel, opencl.NDR1(np, local)); err != nil {
		return err
	}
	in.ran = true
	if q.SimulateOnly() {
		return nil
	}
	in.total = 0
	for _, c := range in.counts {
		in.total += c
	}
	return nil
}

// Solutions returns the counted total.
func (in *Instance) Solutions() uint64 { return in.total }

// Verify implements dwarfs.Instance against the known solution counts.
func (in *Instance) Verify() error {
	if !in.ran {
		return fmt.Errorf("nqueens: Verify before Iterate")
	}
	want, ok := KnownSolutions[in.n]
	if !ok {
		return fmt.Errorf("nqueens: no reference count for n=%d", in.n)
	}
	if in.total != want {
		return fmt.Errorf("nqueens: counted %d solutions for n=%d, want %d", in.total, in.n, want)
	}
	return nil
}
