package aiwc

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"opendwarfs/internal/cache"
	"opendwarfs/internal/sim"
)

func sampleProfile() *sim.KernelProfile {
	return &sim.KernelProfile{
		Name: "k", WorkItems: 1000,
		FlopsPerItem: 10, IntOpsPerItem: 5,
		LoadBytesPerItem: 40, StoreBytesPerItem: 8,
		BranchesPerItem: 3, Divergence: 0.2,
		WorkingSetBytes: 1 << 20, Pattern: cache.Streaming, Vectorizable: true,
	}
}

func TestCharacterizeMixSumsToOne(t *testing.T) {
	m := Characterize(sampleProfile())
	sum := m.FlopFraction + m.IntFraction + m.LoadFraction + m.StoreFraction + m.BranchFraction
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("opcode mix sums to %f", sum)
	}
	if m.Parallelism != 1000 {
		t.Fatal("parallelism wrong")
	}
	if m.GranularityOps <= 0 || m.TotalOps <= 0 {
		t.Fatal("granularity/total missing")
	}
	if !strings.Contains(m.String(), "ai=") {
		t.Fatal("String() malformed")
	}
}

func TestMemoryEntropy(t *testing.T) {
	// Constant line: zero entropy.
	same := make([]uint64, 100)
	if h := MemoryEntropy(same); h != 0 {
		t.Fatalf("constant trace entropy %f", h)
	}
	// 256 distinct lines visited uniformly: log2(256) = 8 bits.
	var uniform []uint64
	for i := 0; i < 256; i++ {
		for r := 0; r < 4; r++ {
			uniform = append(uniform, uint64(i*64))
		}
	}
	if h := MemoryEntropy(uniform); math.Abs(h-8) > 1e-9 {
		t.Fatalf("uniform 256-line entropy %f, want 8", h)
	}
	// Skewed distribution scores below uniform.
	skew := append(append([]uint64{}, uniform...), make([]uint64, 1000)...)
	if MemoryEntropy(skew) >= 8 {
		t.Fatal("skewed trace should have lower entropy")
	}
	if MemoryEntropy(nil) != 0 {
		t.Fatal("empty trace entropy")
	}
}

func TestUniqueLinesAndLocality(t *testing.T) {
	seq := make([]uint64, 1024)
	for i := range seq {
		seq[i] = uint64(i * 4) // sequential floats
	}
	if got := UniqueLines(seq); got != 64 {
		t.Fatalf("unique lines %d, want 64", got)
	}
	if l := LocalitySlope(seq); l != 1 {
		t.Fatalf("sequential locality %f, want 1", l)
	}
	rng := rand.New(rand.NewSource(1))
	rnd := make([]uint64, 1024)
	for i := range rnd {
		rnd[i] = uint64(rng.Intn(1 << 26))
	}
	if l := LocalitySlope(rnd); l > 0.1 {
		t.Fatalf("random locality %f, want ~0", l)
	}
	if LocalitySlope(nil) != 1 || LocalitySlope([]uint64{5}) != 1 {
		t.Fatal("degenerate locality")
	}
}

func TestBranchEntropy(t *testing.T) {
	always := make([]bool, 100)
	if h := BranchEntropy(always); h != 0 {
		t.Fatalf("constant branch entropy %f", h)
	}
	coin := make([]bool, 1000)
	for i := range coin {
		coin[i] = i%2 == 0
	}
	if h := BranchEntropy(coin); math.Abs(h-1) > 1e-9 {
		t.Fatalf("fair branch entropy %f, want 1", h)
	}
	if BranchEntropy(nil) != 0 {
		t.Fatal("empty branch entropy")
	}
}

func TestDistanceProperties(t *testing.T) {
	a := Characterize(sampleProfile())
	if d := Distance(a, a); d != 0 {
		t.Fatalf("self distance %f", d)
	}
	p2 := sampleProfile()
	p2.Name = "crcish"
	p2.FlopsPerItem = 0
	p2.IntOpsPerItem = 100
	b := Characterize(p2)
	if Distance(a, b) <= 0 {
		t.Fatal("distinct kernels at zero distance")
	}
	if math.Abs(Distance(a, b)-Distance(b, a)) > 1e-12 {
		t.Fatal("distance not symmetric")
	}
}

func TestMostSimilarPair(t *testing.T) {
	p1 := sampleProfile()
	p1.Name = "a"
	p2 := sampleProfile()
	p2.Name = "b" // identical twin of a
	p3 := sampleProfile()
	p3.Name = "c"
	p3.IntOpsPerItem = 500
	ms := []Metrics{Characterize(p1), Characterize(p3), Characterize(p2)}
	x, y, d := MostSimilarPair(ms)
	names := x.Kernel + y.Kernel
	if !strings.Contains(names, "a") || !strings.Contains(names, "b") {
		t.Fatalf("most similar pair %s/%s, want a/b", x.Kernel, y.Kernel)
	}
	if d != 0 {
		t.Fatalf("twin distance %f", d)
	}
	if _, _, d := MostSimilarPair(ms[:1]); !math.IsNaN(d) {
		t.Fatal("singleton set should return NaN")
	}
}

func TestSortByName(t *testing.T) {
	ms := []Metrics{{Kernel: "z"}, {Kernel: "a"}, {Kernel: "m"}}
	SortByName(ms)
	if ms[0].Kernel != "a" || ms[2].Kernel != "z" {
		t.Fatal("sort broken")
	}
}

func TestVectorMatchesFeatureNames(t *testing.T) {
	m := Characterize(sampleProfile())
	names := FeatureNames()
	v := m.Vector()
	if len(v) != len(names) {
		t.Fatalf("vector has %d dims, FeatureNames %d", len(v), len(names))
	}
	// Mutating the returned name slice must not alias the package copy.
	names[0] = "clobbered"
	if FeatureNames()[0] == "clobbered" {
		t.Fatal("FeatureNames returns aliased slice")
	}
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("dim %s is %v", FeatureNames()[i], x)
		}
	}
	// Vectorizable kernels carry the flag; coalescing zero means unset→1.
	if m.Vectorizable != 1 {
		t.Fatalf("vectorizable = %v, want 1", m.Vectorizable)
	}
	if m.Coalescing != 1 {
		t.Fatalf("unset coalescing = %v, want 1", m.Coalescing)
	}
}

func TestAggregateSingleKernelIsCharacterize(t *testing.T) {
	p := sampleProfile()
	agg := Aggregate([]*sim.KernelProfile{p})
	m := Characterize(p)
	av, mv := agg.Vector(), m.Vector()
	for i := range av {
		if av[i] != mv[i] {
			t.Fatalf("dim %s: aggregate %v != characterize %v", FeatureNames()[i], av[i], mv[i])
		}
	}
}

func TestAggregateWeightsByOps(t *testing.T) {
	big := sampleProfile() // all-flop-heavy
	small := &sim.KernelProfile{
		Name: "s", WorkItems: 10,
		IntOpsPerItem: 1, BranchesPerItem: 1, Divergence: 1,
		WorkingSetBytes: 1 << 10, Pattern: cache.Random,
	}
	agg := Aggregate([]*sim.KernelProfile{big, small})
	mBig := Characterize(big)
	// The dominant kernel's mix must dominate the aggregate.
	if math.Abs(agg.FlopFraction-mBig.FlopFraction) > 0.01 {
		t.Fatalf("aggregate flop fraction %v far from dominant kernel's %v", agg.FlopFraction, mBig.FlopFraction)
	}
	if agg.TotalOps <= mBig.TotalOps {
		t.Fatal("aggregate ops should sum across kernels")
	}
	if agg.FootprintBytes != mBig.FootprintBytes {
		t.Fatal("aggregate footprint should be the max across kernels")
	}
	if len(Aggregate(nil).Vector()) != len(FeatureNames()) {
		t.Fatal("empty aggregate vector malformed")
	}
}
