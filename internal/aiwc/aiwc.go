// Package aiwc implements Architecture-Independent Workload
// Characterisation, the analysis the paper's future work (§7) applies to
// every OpenCL kernel to explain why runtime characteristics vary between
// devices. Two layers are provided: static characterisation derived from a
// kernel's workload profile (opcode mix, arithmetic intensity, parallelism),
// and trace-based metrics (memory entropy, unique addresses, branch
// entropy) computed from instrumented access/branch streams.
package aiwc

import (
	"fmt"
	"math"
	"sort"

	"opendwarfs/internal/sim"
)

// Metrics is the AIWC feature vector of one kernel launch.
type Metrics struct {
	Kernel string

	// Opcode mix: fractions of total operations.
	FlopFraction   float64
	IntFraction    float64
	LoadFraction   float64
	StoreFraction  float64
	BranchFraction float64

	// TotalOps is the absolute operation count of the launch.
	TotalOps float64
	// ArithmeticIntensity is flops per byte of pre-cache traffic.
	ArithmeticIntensity float64
	// Parallelism is the available work-item count.
	Parallelism int64
	// GranularityOps is operations per work-item (work depth proxy).
	GranularityOps float64
	// BranchDivergence mirrors the profile's divergence estimate.
	BranchDivergence float64
	// FootprintBytes is the device-side working set.
	FootprintBytes int64
}

// Characterize derives the static AIWC metrics from a workload profile.
func Characterize(p *sim.KernelProfile) Metrics {
	items := float64(p.WorkItems)
	flops := items * p.FlopsPerItem
	ints := items * p.IntOpsPerItem
	loads := items * p.LoadBytesPerItem / 4
	stores := items * p.StoreBytesPerItem / 4
	branches := items * p.BranchesPerItem
	total := flops + ints + loads + stores + branches
	m := Metrics{
		Kernel:              p.Name,
		TotalOps:            total,
		ArithmeticIntensity: p.ArithmeticIntensity(),
		Parallelism:         p.WorkItems,
		BranchDivergence:    p.Divergence,
		FootprintBytes:      p.WorkingSetBytes,
	}
	if items > 0 {
		m.GranularityOps = total / items
	}
	if total > 0 {
		m.FlopFraction = flops / total
		m.IntFraction = ints / total
		m.LoadFraction = loads / total
		m.StoreFraction = stores / total
		m.BranchFraction = branches / total
	}
	return m
}

// String renders the feature vector compactly.
func (m Metrics) String() string {
	return fmt.Sprintf("%s: ops=%.3g ai=%.3f par=%d gran=%.1f mix[f=%.2f i=%.2f ld=%.2f st=%.2f br=%.2f] div=%.2f ws=%dB",
		m.Kernel, m.TotalOps, m.ArithmeticIntensity, m.Parallelism, m.GranularityOps,
		m.FlopFraction, m.IntFraction, m.LoadFraction, m.StoreFraction, m.BranchFraction,
		m.BranchDivergence, m.FootprintBytes)
}

// MemoryEntropy is AIWC's measure of access-pattern randomness: the Shannon
// entropy (bits) of the cache-line-granular address distribution. Streaming
// kernels score near log2(distinct lines) with a uniform single-visit
// distribution; pointer-chasing kernels score lower per unique line visited.
func MemoryEntropy(addrs []uint64) float64 {
	if len(addrs) == 0 {
		return 0
	}
	counts := map[uint64]int{}
	for _, a := range addrs {
		counts[a>>6]++ // 64-byte line granularity
	}
	h := 0.0
	n := float64(len(addrs))
	for _, c := range counts {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// UniqueLines counts distinct 64-byte lines in a trace.
func UniqueLines(addrs []uint64) int {
	lines := map[uint64]bool{}
	for _, a := range addrs {
		lines[a>>6] = true
	}
	return len(lines)
}

// LocalitySlope characterises spatial locality: the fraction of consecutive
// accesses that stay within a cache line or step to the adjacent line.
// Sequential scans approach 1; random traffic approaches 0.
func LocalitySlope(addrs []uint64) float64 {
	if len(addrs) < 2 {
		return 1
	}
	near := 0
	for i := 1; i < len(addrs); i++ {
		prev, cur := addrs[i-1]>>6, addrs[i]>>6
		d := int64(cur) - int64(prev)
		if d < 0 {
			d = -d
		}
		if d <= 1 {
			near++
		}
	}
	return float64(near) / float64(len(addrs)-1)
}

// BranchEntropy is the Shannon entropy of the taken/not-taken stream —
// AIWC's control-flow predictability measure. A constant branch scores 0; a
// fair coin scores 1.
func BranchEntropy(taken []bool) float64 {
	if len(taken) == 0 {
		return 0
	}
	t := 0
	for _, b := range taken {
		if b {
			t++
		}
	}
	p := float64(t) / float64(len(taken))
	if p == 0 || p == 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// Distance computes the Euclidean distance between two feature vectors over
// the normalised mix + intensity dimensions — the similarity measure used
// to argue diversity of a benchmark suite (§2's coverage goal).
func Distance(a, b Metrics) float64 {
	ds := []float64{
		a.FlopFraction - b.FlopFraction,
		a.IntFraction - b.IntFraction,
		a.LoadFraction - b.LoadFraction,
		a.StoreFraction - b.StoreFraction,
		a.BranchFraction - b.BranchFraction,
		squash(a.ArithmeticIntensity) - squash(b.ArithmeticIntensity),
		a.BranchDivergence - b.BranchDivergence,
		squash(float64(a.GranularityOps)/1e3) - squash(float64(b.GranularityOps)/1e3),
	}
	s := 0.0
	for _, d := range ds {
		s += d * d
	}
	return math.Sqrt(s)
}

func squash(x float64) float64 { return x / (1 + math.Abs(x)) }

// MostSimilarPair returns the two most similar kernels in a set — the
// diversity-analysis primitive (a suite wants this distance to be large).
func MostSimilarPair(ms []Metrics) (a, b Metrics, d float64) {
	if len(ms) < 2 {
		return Metrics{}, Metrics{}, math.NaN()
	}
	d = math.Inf(1)
	for i := 0; i < len(ms); i++ {
		for j := i + 1; j < len(ms); j++ {
			if dd := Distance(ms[i], ms[j]); dd < d {
				a, b, d = ms[i], ms[j], dd
			}
		}
	}
	return a, b, d
}

// SortByName orders metrics for stable reports.
func SortByName(ms []Metrics) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].Kernel < ms[j].Kernel })
}
