// Package aiwc implements Architecture-Independent Workload
// Characterisation, the analysis the paper's future work (§7) applies to
// every OpenCL kernel to explain why runtime characteristics vary between
// devices. Two layers are provided: static characterisation derived from a
// kernel's workload profile (opcode mix, arithmetic intensity, parallelism),
// and trace-based metrics (memory entropy, unique addresses, branch
// entropy) computed from instrumented access/branch streams.
package aiwc

import (
	"fmt"
	"math"
	"sort"

	"opendwarfs/internal/sim"
)

// Metrics is the AIWC feature vector of one kernel launch.
type Metrics struct {
	Kernel string

	// Opcode mix: fractions of total operations.
	FlopFraction   float64
	IntFraction    float64
	LoadFraction   float64
	StoreFraction  float64
	BranchFraction float64

	// TotalOps is the absolute operation count of the launch.
	TotalOps float64
	// ArithmeticIntensity is flops per byte of pre-cache traffic.
	ArithmeticIntensity float64
	// Parallelism is the available work-item count.
	Parallelism int64
	// GranularityOps is operations per work-item (work depth proxy).
	GranularityOps float64
	// BranchDivergence mirrors the profile's divergence estimate.
	BranchDivergence float64
	// FootprintBytes is the device-side working set.
	FootprintBytes int64

	// TemporalReuse is the fraction of accesses with immediate reuse.
	TemporalReuse float64
	// Coalescing is the profile's lane-layout efficiency (unset → 1).
	Coalescing float64
	// SerialFraction is the Amdahl serial share of the launch.
	SerialFraction float64
	// Vectorizable is 1 when the kernel maps onto SIMD lanes, else 0.
	Vectorizable float64
	// PatternCode is the dominant access pattern as a numeric code
	// (cache.Pattern ordinal) so the vector form can carry it.
	PatternCode float64
}

// Characterize derives the static AIWC metrics from a workload profile.
func Characterize(p *sim.KernelProfile) Metrics {
	items := float64(p.WorkItems)
	flops := items * p.FlopsPerItem
	ints := items * p.IntOpsPerItem
	loads := items * p.LoadBytesPerItem / 4
	stores := items * p.StoreBytesPerItem / 4
	branches := items * p.BranchesPerItem
	total := flops + ints + loads + stores + branches
	m := Metrics{
		Kernel:              p.Name,
		TotalOps:            total,
		ArithmeticIntensity: p.ArithmeticIntensity(),
		Parallelism:         p.WorkItems,
		BranchDivergence:    p.Divergence,
		FootprintBytes:      p.WorkingSetBytes,
		TemporalReuse:       p.TemporalReuse,
		Coalescing:          p.Coalescing,
		SerialFraction:      p.SerialFraction,
		PatternCode:         float64(p.Pattern),
	}
	if m.Coalescing == 0 {
		m.Coalescing = 1 // profile convention: zero means unset
	}
	if p.Vectorizable {
		m.Vectorizable = 1
	}
	if items > 0 {
		m.GranularityOps = total / items
	}
	if total > 0 {
		m.FlopFraction = flops / total
		m.IntFraction = ints / total
		m.LoadFraction = loads / total
		m.StoreFraction = stores / total
		m.BranchFraction = branches / total
	}
	return m
}

// String renders the feature vector compactly.
func (m Metrics) String() string {
	return fmt.Sprintf("%s: ops=%.3g ai=%.3f par=%d gran=%.1f mix[f=%.2f i=%.2f ld=%.2f st=%.2f br=%.2f] div=%.2f ws=%dB",
		m.Kernel, m.TotalOps, m.ArithmeticIntensity, m.Parallelism, m.GranularityOps,
		m.FlopFraction, m.IntFraction, m.LoadFraction, m.StoreFraction, m.BranchFraction,
		m.BranchDivergence, m.FootprintBytes)
}

// featureNames lists the dimensions of Vector, in order. The split into
// kernel metrics here and device metrics in internal/predict mirrors the
// paper's §7 proposal: characterisation is architecture-independent, so
// the same vector describes a kernel on every device.
var featureNames = []string{
	"flop_frac", "int_frac", "load_frac", "store_frac", "branch_frac",
	"log_total_ops", "arith_intensity", "log_parallelism", "log_granularity",
	"divergence", "log_footprint", "temporal_reuse", "coalescing",
	"serial_frac", "vectorizable", "pattern",
}

// FeatureNames returns the names of Vector's dimensions, in order.
func FeatureNames() []string {
	out := make([]string, len(featureNames))
	copy(out, featureNames)
	return out
}

// Vector flattens the metrics into the numeric feature vector consumed by
// the prediction subsystem (internal/predict). Count-like dimensions are
// log-compressed; fractions pass through. The order matches FeatureNames.
func (m Metrics) Vector() []float64 {
	return []float64{
		m.FlopFraction, m.IntFraction, m.LoadFraction, m.StoreFraction, m.BranchFraction,
		math.Log1p(m.TotalOps),
		m.ArithmeticIntensity,
		math.Log1p(float64(m.Parallelism)),
		math.Log1p(m.GranularityOps),
		m.BranchDivergence,
		math.Log1p(float64(m.FootprintBytes)),
		m.TemporalReuse,
		m.Coalescing,
		m.SerialFraction,
		m.Vectorizable,
		m.PatternCode,
	}
}

// Aggregate combines the characterisations of a benchmark's kernels into
// one launch-weighted feature vector: each kernel contributes in proportion
// to its share of total operations, so a benchmark dominated by one hot
// kernel characterises like that kernel. TotalOps sums; FootprintBytes
// takes the maximum (kernels share the device-side dataset); everything
// else is the ops-weighted mean. Aggregating the profiles of a Preparation
// is device-independent by construction.
func Aggregate(profiles []*sim.KernelProfile) Metrics {
	if len(profiles) == 0 {
		return Metrics{}
	}
	agg := Metrics{Kernel: "aggregate"}
	totalW, par := 0.0, 0.0
	for _, p := range profiles {
		m := Characterize(p)
		w := m.TotalOps
		if w <= 0 {
			w = 1 // weight degenerate kernels minimally but don't drop them
		}
		totalW += w
		agg.TotalOps += m.TotalOps
		agg.FlopFraction += w * m.FlopFraction
		agg.IntFraction += w * m.IntFraction
		agg.LoadFraction += w * m.LoadFraction
		agg.StoreFraction += w * m.StoreFraction
		agg.BranchFraction += w * m.BranchFraction
		agg.ArithmeticIntensity += w * m.ArithmeticIntensity
		agg.GranularityOps += w * m.GranularityOps
		agg.BranchDivergence += w * m.BranchDivergence
		agg.TemporalReuse += w * m.TemporalReuse
		agg.Coalescing += w * m.Coalescing
		agg.SerialFraction += w * m.SerialFraction
		agg.Vectorizable += w * m.Vectorizable
		agg.PatternCode += w * m.PatternCode
		par += w * float64(m.Parallelism)
		if m.FootprintBytes > agg.FootprintBytes {
			agg.FootprintBytes = m.FootprintBytes
		}
	}
	agg.FlopFraction /= totalW
	agg.IntFraction /= totalW
	agg.LoadFraction /= totalW
	agg.StoreFraction /= totalW
	agg.BranchFraction /= totalW
	agg.ArithmeticIntensity /= totalW
	agg.GranularityOps /= totalW
	agg.BranchDivergence /= totalW
	agg.TemporalReuse /= totalW
	agg.Coalescing /= totalW
	agg.SerialFraction /= totalW
	agg.Vectorizable /= totalW
	agg.PatternCode /= totalW
	agg.Parallelism = int64(par / totalW)
	return agg
}

// MemoryEntropy is AIWC's measure of access-pattern randomness: the Shannon
// entropy (bits) of the cache-line-granular address distribution. Streaming
// kernels score near log2(distinct lines) with a uniform single-visit
// distribution; pointer-chasing kernels score lower per unique line visited.
func MemoryEntropy(addrs []uint64) float64 {
	if len(addrs) == 0 {
		return 0
	}
	counts := map[uint64]int{}
	for _, a := range addrs {
		counts[a>>6]++ // 64-byte line granularity
	}
	h := 0.0
	n := float64(len(addrs))
	for _, c := range counts {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// UniqueLines counts distinct 64-byte lines in a trace.
func UniqueLines(addrs []uint64) int {
	lines := map[uint64]bool{}
	for _, a := range addrs {
		lines[a>>6] = true
	}
	return len(lines)
}

// LocalitySlope characterises spatial locality: the fraction of consecutive
// accesses that stay within a cache line or step to the adjacent line.
// Sequential scans approach 1; random traffic approaches 0.
func LocalitySlope(addrs []uint64) float64 {
	if len(addrs) < 2 {
		return 1
	}
	near := 0
	for i := 1; i < len(addrs); i++ {
		prev, cur := addrs[i-1]>>6, addrs[i]>>6
		d := int64(cur) - int64(prev)
		if d < 0 {
			d = -d
		}
		if d <= 1 {
			near++
		}
	}
	return float64(near) / float64(len(addrs)-1)
}

// BranchEntropy is the Shannon entropy of the taken/not-taken stream —
// AIWC's control-flow predictability measure. A constant branch scores 0; a
// fair coin scores 1.
func BranchEntropy(taken []bool) float64 {
	if len(taken) == 0 {
		return 0
	}
	t := 0
	for _, b := range taken {
		if b {
			t++
		}
	}
	p := float64(t) / float64(len(taken))
	if p == 0 || p == 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// Distance computes the Euclidean distance between two feature vectors over
// the normalised mix + intensity dimensions — the similarity measure used
// to argue diversity of a benchmark suite (§2's coverage goal).
func Distance(a, b Metrics) float64 {
	ds := []float64{
		a.FlopFraction - b.FlopFraction,
		a.IntFraction - b.IntFraction,
		a.LoadFraction - b.LoadFraction,
		a.StoreFraction - b.StoreFraction,
		a.BranchFraction - b.BranchFraction,
		squash(a.ArithmeticIntensity) - squash(b.ArithmeticIntensity),
		a.BranchDivergence - b.BranchDivergence,
		squash(float64(a.GranularityOps)/1e3) - squash(float64(b.GranularityOps)/1e3),
	}
	s := 0.0
	for _, d := range ds {
		s += d * d
	}
	return math.Sqrt(s)
}

func squash(x float64) float64 { return x / (1 + math.Abs(x)) }

// MostSimilarPair returns the two most similar kernels in a set — the
// diversity-analysis primitive (a suite wants this distance to be large).
func MostSimilarPair(ms []Metrics) (a, b Metrics, d float64) {
	if len(ms) < 2 {
		return Metrics{}, Metrics{}, math.NaN()
	}
	d = math.Inf(1)
	for i := 0; i < len(ms); i++ {
		for j := i + 1; j < len(ms); j++ {
			if dd := Distance(ms[i], ms[j]); dd < d {
				a, b, d = ms[i], ms[j], dd
			}
		}
	}
	return a, b, d
}

// SortByName orders metrics for stable reports.
func SortByName(ms []Metrics) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].Kernel < ms[j].Kernel })
}
