package cache

// SetAssoc is a trace-driven set-associative cache with true-LRU replacement.
// It is used to validate the analytical model and by cmd/sizer to demonstrate
// the paper's §4.4 problem-size selection methodology on concrete address
// traces.
type SetAssoc struct {
	name      string
	lineBits  uint
	setMask   uint64
	ways      int
	sets      [][]uint64 // per-set tag list, MRU first; zero value = empty
	valid     [][]bool
	accesses  uint64
	misses    uint64
	evictions uint64
}

// NewSetAssoc builds a cache of the given total size, associativity and line
// size. Size must be an exact multiple of ways*lineBytes and the set count a
// power of two; typical hardware shapes (32 KiB / 8-way / 64 B, …) satisfy
// this.
func NewSetAssoc(name string, sizeBytes, ways, lineBytes int) *SetAssoc {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		panic("cache: non-positive cache geometry")
	}
	nsets := sizeBytes / (ways * lineBytes)
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic("cache: set count must be a positive power of two")
	}
	lineBits := uint(0)
	for 1<<lineBits < lineBytes {
		lineBits++
	}
	if 1<<lineBits != lineBytes {
		panic("cache: line size must be a power of two")
	}
	c := &SetAssoc{
		name:     name,
		lineBits: lineBits,
		setMask:  uint64(nsets - 1),
		ways:     ways,
		sets:     make([][]uint64, nsets),
		valid:    make([][]bool, nsets),
	}
	for i := range c.sets {
		c.sets[i] = make([]uint64, ways)
		c.valid[i] = make([]bool, ways)
	}
	return c
}

// Access touches one byte address and reports whether it hit. A miss
// installs the line at MRU, evicting the LRU way if the set is full.
func (c *SetAssoc) Access(addr uint64) bool {
	line := addr >> c.lineBits
	set := line & c.setMask
	tags := c.sets[set]
	valid := c.valid[set]
	c.accesses++
	for i := 0; i < c.ways; i++ {
		if valid[i] && tags[i] == line {
			// Move to MRU position.
			copy(tags[1:i+1], tags[:i])
			copy(valid[1:i+1], valid[:i])
			tags[0] = line
			valid[0] = true
			return true
		}
	}
	c.misses++
	if valid[c.ways-1] {
		c.evictions++
	}
	copy(tags[1:], tags[:c.ways-1])
	copy(valid[1:], valid[:c.ways-1])
	tags[0] = line
	valid[0] = true
	return false
}

// Name returns the label the cache was created with.
func (c *SetAssoc) Name() string { return c.name }

// Accesses returns the number of accesses observed.
func (c *SetAssoc) Accesses() uint64 { return c.accesses }

// Misses returns the number of misses observed.
func (c *SetAssoc) Misses() uint64 { return c.misses }

// Evictions returns the number of lines evicted.
func (c *SetAssoc) Evictions() uint64 { return c.evictions }

// MissRate returns misses/accesses (0 when no accesses were made).
func (c *SetAssoc) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset clears contents and statistics.
func (c *SetAssoc) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.valid[i][j] = false
		}
	}
	c.accesses, c.misses, c.evictions = 0, 0, 0
}

// TraceHierarchy chains set-associative caches into an inclusive hierarchy:
// an access probes each level in order until it hits, and a miss at level i
// is an access at level i+1.
type TraceHierarchy struct {
	Caches []*SetAssoc
}

// NewSkylakeTrace builds the i7-6700K hierarchy used throughout the paper's
// sizing methodology: 32 KiB 8-way L1D, 256 KiB 4-way L2, 8 MiB 16-way L3,
// all with 64-byte lines.
func NewSkylakeTrace() *TraceHierarchy {
	return &TraceHierarchy{Caches: []*SetAssoc{
		NewSetAssoc("L1D", 32<<10, 8, 64),
		NewSetAssoc("L2", 256<<10, 4, 64),
		NewSetAssoc("L3", 8<<20, 16, 64),
	}}
}

// Access walks the hierarchy and returns the index of the level that served
// the access, or len(Caches) if it went to memory.
func (t *TraceHierarchy) Access(addr uint64) int {
	for i, c := range t.Caches {
		if c.Access(addr) {
			return i
		}
	}
	return len(t.Caches)
}

// Reset clears all levels.
func (t *TraceHierarchy) Reset() {
	for _, c := range t.Caches {
		c.Reset()
	}
}

// TLB is a fully-associative LRU translation look-aside buffer model used to
// derive the paper's data-TLB miss-rate counter.
type TLB struct {
	pageBits uint
	entries  int
	pages    []uint64
	valid    []bool
	accesses uint64
	misses   uint64
}

// NewTLB builds a TLB with the given entry count and page size.
func NewTLB(entries, pageBytes int) *TLB {
	if entries <= 0 || pageBytes <= 0 {
		panic("cache: non-positive TLB geometry")
	}
	bits := uint(0)
	for 1<<bits < pageBytes {
		bits++
	}
	return &TLB{pageBits: bits, entries: entries, pages: make([]uint64, entries), valid: make([]bool, entries)}
}

// Access touches an address, returning whether the translation hit.
func (t *TLB) Access(addr uint64) bool {
	page := addr >> t.pageBits
	t.accesses++
	for i := 0; i < t.entries; i++ {
		if t.valid[i] && t.pages[i] == page {
			copy(t.pages[1:i+1], t.pages[:i])
			copy(t.valid[1:i+1], t.valid[:i])
			t.pages[0] = page
			t.valid[0] = true
			return true
		}
	}
	t.misses++
	copy(t.pages[1:], t.pages[:t.entries-1])
	copy(t.valid[1:], t.valid[:t.entries-1])
	t.pages[0] = page
	t.valid[0] = true
	return false
}

// MissRate returns misses/accesses.
func (t *TLB) MissRate() float64 {
	if t.accesses == 0 {
		return 0
	}
	return float64(t.misses) / float64(t.accesses)
}
