package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetAssocBasics(t *testing.T) {
	c := NewSetAssoc("L1", 1024, 2, 64) // 8 sets, 2 ways
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) {
		t.Fatal("immediate re-access missed")
	}
	if !c.Access(63) {
		t.Fatal("same-line access missed")
	}
	if c.Access(64) {
		t.Fatal("next-line cold access hit")
	}
	if c.Name() != "L1" {
		t.Fatalf("name %q", c.Name())
	}
	if c.Accesses() != 4 || c.Misses() != 2 {
		t.Fatalf("accesses=%d misses=%d, want 4/2", c.Accesses(), c.Misses())
	}
	if got := c.MissRate(); got != 0.5 {
		t.Fatalf("miss rate %f, want 0.5", got)
	}
}

func TestSetAssocLRUEviction(t *testing.T) {
	c := NewSetAssoc("t", 2*64, 2, 64) // one set, two ways
	c.Access(0 * 64)
	c.Access(1 * 64)
	c.Access(0 * 64) // 0 becomes MRU; LRU is line 1
	c.Access(2 * 64) // evicts line 1
	if !c.Access(0 * 64) {
		t.Fatal("MRU-protected line was evicted")
	}
	if c.Access(1 * 64) {
		t.Fatal("evicted LRU line still present")
	}
	if c.Evictions() == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestSetAssocWorkingSetFits(t *testing.T) {
	c := NewSetAssoc("L1", 32<<10, 8, 64)
	// Cyclically stream a 16 KiB working set: after the first pass,
	// everything hits.
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < 16<<10; a += 64 {
			c.Access(a)
		}
	}
	// 256 cold misses out of 1024 accesses.
	if c.Misses() != 256 {
		t.Fatalf("misses=%d, want 256 (cold only)", c.Misses())
	}
}

func TestSetAssocThrashing(t *testing.T) {
	c := NewSetAssoc("L1", 32<<10, 8, 64)
	// Cyclic streaming over 64 KiB (2x capacity) defeats LRU: every access
	// after warmup misses.
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < 64<<10; a += 64 {
			c.Access(a)
		}
	}
	if rate := c.MissRate(); rate < 0.99 {
		t.Fatalf("cyclic over-capacity streaming should thrash: miss rate %.3f", rate)
	}
}

func TestSetAssocGeometryPanics(t *testing.T) {
	cases := []func(){
		func() { NewSetAssoc("x", 0, 8, 64) },
		func() { NewSetAssoc("x", 32<<10, 0, 64) },
		func() { NewSetAssoc("x", 32<<10, 8, 0) },
		func() { NewSetAssoc("x", 3*64, 1, 64) }, // 3 sets: not a power of two
		func() { NewSetAssoc("x", 96, 1, 96) },   // line not power of two
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: bad geometry accepted", i)
				}
			}()
			f()
		}()
	}
}

func TestTraceHierarchyLevels(t *testing.T) {
	h := NewSkylakeTrace()
	lvl := h.Access(0)
	if lvl != 3 {
		t.Fatalf("cold access served by level %d, want memory (3)", lvl)
	}
	if got := h.Access(0); got != 0 {
		t.Fatalf("hot access served by level %d, want L1 (0)", got)
	}
	h.Reset()
	if got := h.Access(0); got != 3 {
		t.Fatalf("post-reset access served by level %d, want memory", got)
	}
}

// The trace simulator should agree with the paper's methodology: a working
// set sized for L2 shows near-zero L2 misses but massive L1 misses under
// cyclic streaming.
func TestTraceHierarchySizingMethodology(t *testing.T) {
	h := NewSkylakeTrace()
	ws := uint64(200 << 10) // fits L2 (256 KiB), exceeds L1 (32 KiB)
	for pass := 0; pass < 5; pass++ {
		for a := uint64(0); a < ws; a += 64 {
			h.Access(a)
		}
	}
	l1, l2 := h.Caches[0], h.Caches[1]
	if l1.MissRate() < 0.8 {
		t.Fatalf("L1 should thrash for a 200KiB cyclic set, miss rate %.3f", l1.MissRate())
	}
	// L2 misses only on the cold pass: 1/5 of its accesses at most.
	if l2.MissRate() > 0.25 {
		t.Fatalf("L2 should capture a 200KiB set, miss rate %.3f", l2.MissRate())
	}
}

// Property: miss count never exceeds access count, and hits+misses=accesses.
func TestSetAssocCountInvariant(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		c := NewSetAssoc("p", 4<<10, 4, 64)
		rng := rand.New(rand.NewSource(seed))
		hits := uint64(0)
		for i := 0; i < int(n); i++ {
			if c.Access(uint64(rng.Intn(16 << 10))) {
				hits++
			}
		}
		return c.Accesses() == uint64(n) && hits+c.Misses() == c.Accesses()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a larger cache never has more misses than a smaller one on the
// same trace (inclusion property of LRU for same-geometry scaling by ways).
func TestLRUInclusionProperty(t *testing.T) {
	f := func(seed int64) bool {
		small := NewSetAssoc("s", 4<<10, 4, 64)
		big := NewSetAssoc("b", 16<<10, 16, 64) // same sets, more ways
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 4096; i++ {
			a := uint64(rng.Intn(64 << 10))
			small.Access(a)
			big.Access(a)
		}
		return big.Misses() <= small.Misses()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(4, 4096)
	if tlb.Access(0) {
		t.Fatal("cold TLB access hit")
	}
	if !tlb.Access(100) {
		t.Fatal("same-page access missed")
	}
	// Touch 4 more distinct pages: page 0 must be evicted.
	for p := uint64(1); p <= 4; p++ {
		tlb.Access(p * 4096)
	}
	if tlb.Access(0) {
		t.Fatal("evicted page still mapped")
	}
	if tlb.MissRate() <= 0 || tlb.MissRate() > 1 {
		t.Fatalf("miss rate %f out of range", tlb.MissRate())
	}
}

func TestTLBPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad TLB geometry accepted")
		}
	}()
	NewTLB(0, 4096)
}
