// Package cache models the cache hierarchies of the benchmarked devices.
//
// Two complementary models are provided:
//
//   - An analytical model (Hierarchy.Resolve) that converts a kernel's total
//     memory traffic, device-side working set and access pattern into
//     per-level traffic fractions. It is the model the device simulator uses
//     to turn a workload profile into a memory-time estimate, exactly in the
//     spirit of the paper's problem-size methodology (§4.4): the tiny, small,
//     medium and large problem sizes are chosen so the working set lands in
//     L1, L2, L3 or DRAM, and the model reproduces the resulting spill
//     behaviour.
//
//   - A trace-driven, set-associative LRU simulator (SetAssoc, TraceHierarchy)
//     used in tests to validate the analytical model and by cmd/sizer to
//     demonstrate the paper's size-selection methodology on real address
//     traces.
package cache

// Pattern classifies the dominant memory access pattern of a kernel. The
// pattern determines how gracefully a working set that exceeds a cache level
// degrades: random access degrades proportionally to the overflow, while
// cyclic streaming access thrashes LRU caches and loses almost all hits as
// soon as the working set no longer fits.
type Pattern int

const (
	// Streaming is a sequential pass over the working set, repeated each
	// iteration (e.g. csr values, crc message bytes). Cyclic sequential
	// access over a working set larger than the cache defeats LRU almost
	// completely.
	Streaming Pattern = iota
	// Strided is regular non-unit-stride access (e.g. column walks in lud).
	Strided
	// Random is data-dependent irregular access (e.g. csr column gathers,
	// kmeans membership updates). Hit probability is proportional to the
	// fraction of the working set that fits.
	Random
	// Stencil is neighbourhood access over a grid (srad, dwt): each element
	// is touched a handful of times in quick succession, giving strong
	// short-range temporal reuse on top of streaming behaviour.
	Stencil
)

// String returns the lower-case name of the pattern.
func (p Pattern) String() string {
	switch p {
	case Streaming:
		return "streaming"
	case Strided:
		return "strided"
	case Random:
		return "random"
	case Stencil:
		return "stencil"
	default:
		return "unknown"
	}
}

// hitGivenCapacity returns the probability that an access hits in a cache of
// capacity c bytes, for a working set of w bytes, ignoring short-range
// temporal reuse (which is layered on by Hierarchy.Resolve). The function is
// monotonically non-decreasing in c and reaches 1 when the working set fits.
func (p Pattern) hitGivenCapacity(c, w float64) float64 {
	if w <= 0 || c >= w {
		return 1
	}
	x := c / w
	switch p {
	case Streaming:
		// Cyclic sequential access thrashes LRU: until the working set
		// fits, nearly every line has been evicted by the time it is
		// touched again. The cubic keeps a small benefit for
		// almost-fitting sets (hardware is not strictly LRU).
		return x * x * x
	case Strided:
		return x * x
	case Random:
		// Uniform random touch: hit probability equals the resident
		// fraction of the working set.
		return x
	case Stencil:
		// The live window of a stencil sweep is a few rows, far smaller
		// than the full working set; most neighbour reuse is captured by
		// the temporal-reuse term, so the capacity term behaves like
		// streaming.
		return x * x * x
	default:
		return x
	}
}

// streamEfficiency is the fraction of peak DRAM bandwidth the pattern can
// sustain. Sequential patterns prefetch well; random access wastes most of
// each line and defeats prefetchers.
func (p Pattern) streamEfficiency() float64 {
	switch p {
	case Streaming:
		return 0.85
	case Stencil:
		return 0.75
	case Strided:
		return 0.55
	case Random:
		return 0.18
	default:
		return 0.5
	}
}

// latencyBound reports the fraction of misses whose latency cannot be hidden
// by pipelining/prefetch and therefore contributes a latency term rather
// than a pure bandwidth term.
func (p Pattern) latencyBound() float64 {
	switch p {
	case Random:
		return 0.8
	case Strided:
		return 0.25
	case Stencil:
		return 0.05
	default:
		return 0.02
	}
}
