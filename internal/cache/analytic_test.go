package cache

import (
	"math"
	"testing"
	"testing/quick"
)

func skylakeHierarchy() Hierarchy {
	return Hierarchy{
		Levels: []Level{
			{Name: "L1", SizeKiB: 32, BandwidthGBs: 400, LatencyNs: 1.2},
			{Name: "L2", SizeKiB: 256, BandwidthGBs: 200, LatencyNs: 3.5},
			{Name: "L3", SizeKiB: 8192, BandwidthGBs: 100, LatencyNs: 11},
		},
		DRAMBandwidthGBs: 34,
		DRAMLatencyNs:    80,
		MLP:              10,
		LineBytes:        64,
	}
}

func TestValidate(t *testing.T) {
	h := skylakeHierarchy()
	if err := h.Validate(); err != nil {
		t.Fatalf("valid hierarchy rejected: %v", err)
	}
	bad := skylakeHierarchy()
	bad.Levels[1].SizeKiB = 16 // smaller than L1
	if err := bad.Validate(); err == nil {
		t.Fatal("descending level sizes accepted")
	}
	bad2 := skylakeHierarchy()
	bad2.DRAMBandwidthGBs = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero DRAM bandwidth accepted")
	}
	bad3 := skylakeHierarchy()
	bad3.Levels[0].BandwidthGBs = -1
	if err := bad3.Validate(); err == nil {
		t.Fatal("negative level bandwidth accepted")
	}
}

func TestResolveFitsInL1(t *testing.T) {
	h := skylakeHierarchy()
	tr := h.Resolve(Request{TotalBytes: 1 << 20, WorkingSetBytes: 16 << 10, Pattern: Streaming})
	if tr.ServedFrac[0] < 0.999 {
		t.Fatalf("16KiB working set should be fully L1-resident, got L1 frac %.3f", tr.ServedFrac[0])
	}
	if tr.DRAMFrac > 1e-9 {
		t.Fatalf("expected no DRAM traffic, got frac %.3g", tr.DRAMFrac)
	}
}

func TestResolveSpillsPerLevel(t *testing.T) {
	h := skylakeHierarchy()
	// The paper's four sizes: tiny fits L1, small fits L2, medium fits L3,
	// large spills to DRAM. Check each lands where intended for streaming.
	cases := []struct {
		ws    float64
		level int // index of the level expected to serve the bulk; 3=DRAM
	}{
		{30 << 10, 0},
		{250 << 10, 1},
		{7 << 20, 2},
		{64 << 20, 3},
	}
	for _, c := range cases {
		tr := h.Resolve(Request{TotalBytes: 1 << 24, WorkingSetBytes: c.ws, Pattern: Streaming})
		fracs := append(append([]float64{}, tr.ServedFrac...), tr.DRAMFrac)
		best, bestFrac := -1, -1.0
		for i, f := range fracs {
			if f > bestFrac {
				best, bestFrac = i, f
			}
		}
		if best != c.level {
			t.Errorf("working set %.0f KiB: bulk served by level %d (frac %.2f), want %d; fracs=%v",
				c.ws/1024, best, bestFrac, c.level, fracs)
		}
	}
}

func TestResolveTimeMonotoneInWorkingSet(t *testing.T) {
	h := skylakeHierarchy()
	prev := -1.0
	for _, ws := range []float64{8 << 10, 64 << 10, 1 << 20, 16 << 20, 256 << 20} {
		tr := h.Resolve(Request{TotalBytes: 1 << 24, WorkingSetBytes: ws, Pattern: Random})
		if tr.TimeNs < prev {
			t.Fatalf("memory time decreased when working set grew to %.0f KiB: %.1f < %.1f", ws/1024, tr.TimeNs, prev)
		}
		prev = tr.TimeNs
	}
}

func TestResolveRandomSlowerThanStreaming(t *testing.T) {
	h := skylakeHierarchy()
	req := Request{TotalBytes: 1 << 26, WorkingSetBytes: 64 << 20}
	req.Pattern = Streaming
	st := h.Resolve(req).TimeNs
	req.Pattern = Random
	rn := h.Resolve(req).TimeNs
	if rn <= st {
		t.Fatalf("random access (%.0f ns) should cost more than streaming (%.0f ns) for a DRAM-resident set", rn, st)
	}
}

func TestResolveTemporalReuseReducesTime(t *testing.T) {
	h := skylakeHierarchy()
	base := h.Resolve(Request{TotalBytes: 1 << 26, WorkingSetBytes: 64 << 20, Pattern: Random})
	reused := h.Resolve(Request{TotalBytes: 1 << 26, WorkingSetBytes: 64 << 20, Pattern: Random, TemporalReuse: 0.9})
	if reused.TimeNs >= base.TimeNs {
		t.Fatalf("temporal reuse should reduce memory time: %.0f >= %.0f", reused.TimeNs, base.TimeNs)
	}
	if reused.DRAMBytes >= base.DRAMBytes {
		t.Fatalf("temporal reuse should reduce DRAM traffic: %.0f >= %.0f", reused.DRAMBytes, base.DRAMBytes)
	}
}

func TestResolveZeroTraffic(t *testing.T) {
	h := skylakeHierarchy()
	tr := h.Resolve(Request{})
	if tr.TimeNs != 0 || tr.DRAMBytes != 0 {
		t.Fatalf("zero request should produce zero traffic, got %+v", tr)
	}
}

// Property: served fractions plus DRAM fraction always form a probability
// distribution, for any request.
func TestResolveFractionsSumToOne(t *testing.T) {
	h := skylakeHierarchy()
	f := func(totKiB, wsKiB uint16, pat uint8, reuse float64) bool {
		req := Request{
			TotalBytes:      float64(totKiB)*1024 + 1,
			WorkingSetBytes: float64(wsKiB)*1024 + 1,
			Pattern:         Pattern(pat % 4),
			TemporalReuse:   math.Mod(math.Abs(reuse), 1),
		}
		tr := h.Resolve(req)
		sum := tr.DRAMFrac
		for _, s := range tr.ServedFrac {
			if s < -1e-12 {
				return false
			}
			sum += s
		}
		return math.Abs(sum-1) < 1e-9 && tr.TimeNs >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: miss rate at each level is non-increasing as capacity grows
// (deeper levels miss less often).
func TestResolveMissRatesMonotone(t *testing.T) {
	h := skylakeHierarchy()
	f := func(wsKiB uint32, pat uint8) bool {
		tr := h.Resolve(Request{
			TotalBytes:      1 << 22,
			WorkingSetBytes: float64(wsKiB%(64<<10)) * 1024,
			Pattern:         Pattern(pat % 4),
		})
		prev := 1.0
		for _, m := range tr.MissRate {
			if m > prev+1e-12 {
				return false
			}
			prev = m
		}
		return tr.DRAMFrac <= prev+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPatternString(t *testing.T) {
	want := map[Pattern]string{Streaming: "streaming", Strided: "strided", Random: "random", Stencil: "stencil", Pattern(99): "unknown"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Pattern(%d).String() = %q, want %q", p, p.String(), s)
		}
	}
}

func TestHitGivenCapacityMonotone(t *testing.T) {
	for pat := Pattern(0); pat < 4; pat++ {
		prev := -1.0
		for c := 1024.0; c <= 1<<26; c *= 2 {
			h := pat.hitGivenCapacity(c, 1<<24)
			if h < prev {
				t.Fatalf("%v: hit fraction decreased at capacity %.0f", pat, c)
			}
			if h < 0 || h > 1 {
				t.Fatalf("%v: hit fraction %f out of range", pat, h)
			}
			prev = h
		}
		if got := pat.hitGivenCapacity(1<<25, 1<<24); got != 1 {
			t.Fatalf("%v: fitting working set should hit with probability 1, got %f", pat, got)
		}
	}
}
