package cache

// Cross-validation of the analytical hierarchy model against the
// trace-driven LRU simulator: for each access pattern and working-set size
// the two models must agree on which level serves the bulk of traffic and
// roughly on the miss rates. This is the evidence that the analytic model
// used by the device simulator encodes the same §4.4 cache behaviour the
// paper verified with PAPI counters.

import (
	"math"
	"math/rand"
	"testing"
)

// analytic Skylake hierarchy matching NewSkylakeTrace geometry.
func analyticSkylake() Hierarchy {
	return Hierarchy{
		Levels: []Level{
			{Name: "L1", SizeKiB: 32, BandwidthGBs: 400, LatencyNs: 1},
			{Name: "L2", SizeKiB: 256, BandwidthGBs: 200, LatencyNs: 3.5},
			{Name: "L3", SizeKiB: 8192, BandwidthGBs: 120, LatencyNs: 12},
		},
		DRAMBandwidthGBs: 34, DRAMLatencyNs: 80, MLP: 10, LineBytes: 64,
	}
}

// traceFracs runs a trace and returns the fraction of accesses served at
// each of L1, L2, L3, DRAM.
func traceFracs(addrs []uint64) [4]float64 {
	h := NewSkylakeTrace()
	var served [4]float64
	for _, a := range addrs {
		served[h.Access(a)]++
	}
	total := float64(len(addrs))
	for i := range served {
		served[i] /= total
	}
	return served
}

// analyticFracs resolves a working set and returns the same four fractions.
func analyticFracs(ws float64, pat Pattern) [4]float64 {
	tr := analyticSkylake().Resolve(Request{
		TotalBytes:      1 << 24,
		WorkingSetBytes: ws,
		Pattern:         pat,
	})
	return [4]float64{tr.ServedFrac[0], tr.ServedFrac[1], tr.ServedFrac[2], tr.DRAMFrac}
}

func dominant(f [4]float64) int {
	best := 0
	for i, v := range f {
		if v > f[best] {
			best = i
		}
	}
	return best
}

// cyclicTrace streams line-granular addresses over ws bytes for passes
// rounds (warm cache behaviour dominates after the first pass).
func cyclicTrace(ws uint64, passes int) []uint64 {
	var out []uint64
	for p := 0; p < passes; p++ {
		for a := uint64(0); a < ws; a += 64 {
			out = append(out, a)
		}
	}
	return out
}

func randomTrace(ws uint64, n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(rng.Int63n(int64(ws)))
	}
	return out
}

func TestStreamingDominantLevelAgreement(t *testing.T) {
	cases := []struct {
		ws   uint64
		name string
	}{
		{16 << 10, "L1-resident"},
		{128 << 10, "L2-resident"},
		{4 << 20, "L3-resident"},
		{64 << 20, "DRAM-resident"},
	}
	for _, c := range cases {
		tf := traceFracs(cyclicTrace(c.ws, 6))
		af := analyticFracs(float64(c.ws), Streaming)
		if got, want := dominant(af), dominant(tf); got != want {
			t.Errorf("%s: analytic bulk level %d, trace says %d (analytic %v, trace %v)",
				c.name, got, want, af, tf)
		}
	}
}

func TestStreamingThrashAgreement(t *testing.T) {
	// 64 KiB cyclic stream: both models must report near-total L1 missing
	// (the LRU-thrash cliff the Streaming cubic encodes).
	tf := traceFracs(cyclicTrace(64<<10, 6))
	af := analyticFracs(64<<10, Streaming)
	if tf[0] > 0.1 {
		t.Fatalf("trace says L1 serves %.2f of an over-capacity cyclic stream", tf[0])
	}
	if af[0] > 0.2 {
		t.Fatalf("analytic model says L1 serves %.2f; should thrash like the trace (%.2f)", af[0], tf[0])
	}
}

func TestRandomMissRateAgreement(t *testing.T) {
	// Random access over working sets between L2 and L3: the resident
	// fraction served below L3 should agree within a loose band.
	for _, ws := range []uint64{1 << 20, 4 << 20} {
		tf := traceFracs(randomTrace(ws, 400000, 3))
		af := analyticFracs(float64(ws), Random)
		// Compare the "beyond L2" fraction (L3 + DRAM).
		traceBeyond := tf[2] + tf[3]
		analyticBeyond := af[2] + af[3]
		if math.Abs(traceBeyond-analyticBeyond) > 0.3 {
			t.Errorf("ws %d KiB: beyond-L2 fraction analytic %.2f vs trace %.2f",
				ws>>10, analyticBeyond, traceBeyond)
		}
	}
}

func TestFittingSetFullyCachedBothModels(t *testing.T) {
	// A 16 KiB random set: after warmup both models serve ~everything
	// from L1.
	trace := randomTrace(16<<10, 200000, 4)
	tf := traceFracs(trace)
	af := analyticFracs(16<<10, Random)
	if tf[0] < 0.95 {
		t.Fatalf("trace L1 fraction %.3f for a fitting set", tf[0])
	}
	if af[0] < 0.95 {
		t.Fatalf("analytic L1 fraction %.3f for a fitting set", af[0])
	}
}

func TestDRAMResidentRandomAgreement(t *testing.T) {
	// 64 MiB random walk: most accesses reach memory in both models.
	tf := traceFracs(randomTrace(64<<20, 400000, 5))
	af := analyticFracs(64<<20, Random)
	if tf[3] < 0.5 {
		t.Fatalf("trace DRAM fraction %.2f for a 64 MiB random walk", tf[3])
	}
	if af[3] < 0.5 {
		t.Fatalf("analytic DRAM fraction %.2f, trace %.2f", af[3], tf[3])
	}
	if math.Abs(af[3]-tf[3]) > 0.35 {
		t.Fatalf("DRAM fractions diverge: analytic %.2f vs trace %.2f", af[3], tf[3])
	}
}
