package cache

import "fmt"

// Level describes one level of a cache hierarchy for the analytical model.
type Level struct {
	Name string
	// SizeKiB is the effective capacity available to one kernel.
	SizeKiB float64
	// BandwidthGBs is the sustained bandwidth when serving from this level.
	BandwidthGBs float64
	// LatencyNs is the load-to-use latency of the level.
	LatencyNs float64
}

// Hierarchy is the analytical cache model of a device's memory system. The
// last implicit level is DRAM (or GPU global memory).
type Hierarchy struct {
	Levels []Level
	// DRAMBandwidthGBs is the peak main/global-memory bandwidth.
	DRAMBandwidthGBs float64
	// DRAMLatencyNs is the main-memory access latency.
	DRAMLatencyNs float64
	// MLP is the number of outstanding misses the device sustains
	// (memory-level parallelism); it divides the latency-bound term.
	MLP float64
	// LineBytes is the cache line size (64 on everything we model).
	LineBytes float64
}

// Traffic is the result of resolving a kernel's memory behaviour against a
// hierarchy: what fraction of traffic each level served and the resulting
// time estimate inputs.
type Traffic struct {
	// ServedFrac[i] is the fraction of accesses served by Levels[i];
	// DRAMFrac is the remainder served by main memory.
	ServedFrac []float64
	DRAMFrac   float64
	// DRAMBytes is the volume of main-memory traffic implied by the total
	// bytes and DRAMFrac.
	DRAMBytes float64
	// MissRate[i] is the fraction of accesses that miss in level i
	// (i.e. are served beyond it) — the analogue of PAPI_Lx_DCM / access.
	MissRate []float64
	// TimeNs is the modelled memory service time for the whole traffic
	// volume, combining per-level bandwidth terms and a latency term for
	// latency-bound patterns.
	TimeNs float64
}

// Request describes a kernel's aggregate memory behaviour for one launch.
type Request struct {
	// TotalBytes is the total load+store traffic issued by the kernel.
	TotalBytes float64
	// WorkingSetBytes is the device-side footprint the traffic cycles over
	// (the quantity the paper sizes against the Skylake hierarchy, Eq. 1).
	WorkingSetBytes float64
	Pattern         Pattern
	// TemporalReuse is the fraction of accesses to just-touched data that
	// hit in the first level regardless of footprint (register/L1 locality
	// the kernel exposes, e.g. kmeans centroid reads).
	TemporalReuse float64
}

// Resolve applies the analytical model to a request.
func (h Hierarchy) Resolve(req Request) Traffic {
	t := Traffic{
		ServedFrac: make([]float64, len(h.Levels)),
		MissRate:   make([]float64, len(h.Levels)),
	}
	if req.TotalBytes <= 0 {
		return t
	}
	r := clamp01(req.TemporalReuse)
	w := req.WorkingSetBytes
	// Cumulative hit probability at each level: temporal reuse hits the
	// first level; the remainder hits according to capacity containment.
	prev := 0.0
	for i, lv := range h.Levels {
		cum := r + (1-r)*req.Pattern.hitGivenCapacity(lv.SizeKiB*1024, w)
		if i == 0 {
			// reuse term credited to L1 only.
		} else if cum < prev {
			cum = prev // monotone
		}
		t.ServedFrac[i] = cum - prev
		t.MissRate[i] = 1 - cum
		prev = cum
	}
	t.DRAMFrac = 1 - prev
	t.DRAMBytes = t.DRAMFrac * req.TotalBytes

	// Bandwidth terms per level.
	for i, lv := range h.Levels {
		if lv.BandwidthGBs > 0 {
			t.TimeNs += t.ServedFrac[i] * req.TotalBytes / lv.BandwidthGBs
		}
	}
	eff := req.Pattern.streamEfficiency()
	if h.DRAMBandwidthGBs > 0 {
		t.TimeNs += t.DRAMBytes / (h.DRAMBandwidthGBs * eff)
	}
	// Latency-bound term: misses to DRAM that cannot be overlapped.
	mlp := h.MLP
	if mlp < 1 {
		mlp = 1
	}
	line := h.LineBytes
	if line <= 0 {
		line = 64
	}
	misses := t.DRAMBytes / line
	t.TimeNs += misses * req.Pattern.latencyBound() * h.DRAMLatencyNs / mlp
	return t
}

// Validate reports an error if the hierarchy is malformed (levels must be
// ordered by increasing capacity and have positive bandwidth).
func (h Hierarchy) Validate() error {
	prev := 0.0
	for i, lv := range h.Levels {
		if lv.SizeKiB <= prev {
			return fmt.Errorf("cache: level %d (%s) size %.1f KiB not larger than previous %.1f KiB", i, lv.Name, lv.SizeKiB, prev)
		}
		if lv.BandwidthGBs <= 0 {
			return fmt.Errorf("cache: level %d (%s) has non-positive bandwidth", i, lv.Name)
		}
		prev = lv.SizeKiB
	}
	if h.DRAMBandwidthGBs <= 0 {
		return fmt.Errorf("cache: non-positive DRAM bandwidth")
	}
	return nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
