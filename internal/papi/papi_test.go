package papi

import (
	"strings"
	"testing"

	"opendwarfs/internal/cache"
	"opendwarfs/internal/sim"
)

func skylake(t *testing.T) *sim.DeviceSpec {
	t.Helper()
	d, err := sim.Lookup("i7-6700k")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func deriveFor(t *testing.T, wsBytes int64) Set {
	t.Helper()
	spec := skylake(t)
	p := &sim.KernelProfile{
		Name: "k", WorkItems: 1 << 16,
		FlopsPerItem: 10, LoadBytesPerItem: 16, StoreBytesPerItem: 4,
		WorkingSetBytes: wsBytes, Pattern: cache.Streaming, Vectorizable: true,
	}
	model := sim.NewModel(spec)
	b := model.KernelTime(p)
	return Derive(spec, p, b.Traffic, b.TotalNs)
}

func TestCountersReflectCacheResidency(t *testing.T) {
	// The paper uses these counters to verify size selection (§4.4): an
	// L1-resident set shows ~no L1 misses; a DRAM-size set shows L3 misses.
	tiny := deriveFor(t, 16<<10)
	large := deriveFor(t, 64<<20)
	if tiny.Values[L1DCM] > 0.01*tiny.Values[TotIns] {
		t.Fatalf("L1-resident working set shows L1 miss rate %g", tiny.Values[L1DCM]/tiny.Values[TotIns])
	}
	if large.Values[L3TCM] <= tiny.Values[L3TCM] {
		t.Fatal("DRAM-size working set should show more L3 misses than an L1-resident one")
	}
	if large.L3MissRate <= 0 {
		t.Fatal("large set must have positive L3 miss rate")
	}
	if large.L3MissRatio < 0 || large.L3MissRatio > 1 {
		t.Fatalf("L3 miss ratio %f out of [0,1]", large.L3MissRatio)
	}
}

func TestMissHierarchyOrdering(t *testing.T) {
	s := deriveFor(t, 4<<20) // L3-resident: misses L1 and L2, not L3
	if s.Values[L1DCM] < s.Values[L2DCM] {
		t.Fatal("L1 misses must be >= L2 misses (inclusive hierarchy)")
	}
	if s.Values[L2DCM] < s.Values[L3TCM] {
		t.Fatal("L2 misses must be >= L3 misses")
	}
}

func TestIPCPositiveAndBounded(t *testing.T) {
	s := deriveFor(t, 16<<10)
	if s.IPC <= 0 {
		t.Fatal("IPC must be positive")
	}
	// 4-wide superscalar with ~8 HW threads cannot exceed ~32 retiring/cycle.
	if s.IPC > 64 {
		t.Fatalf("IPC %f implausible", s.IPC)
	}
}

func TestTLBMisses(t *testing.T) {
	spec := skylake(t)
	model := sim.NewModel(spec)
	mk := func(ws int64, pat cache.Pattern) Set {
		p := &sim.KernelProfile{
			Name: "k", WorkItems: 1 << 16, IntOpsPerItem: 4,
			LoadBytesPerItem: 64, WorkingSetBytes: ws, Pattern: pat, Vectorizable: true,
		}
		b := model.KernelTime(p)
		return Derive(spec, p, b.Traffic, b.TotalNs)
	}
	small := mk(1<<20, cache.Random)   // covered by TLB reach (6 MiB)
	hugeRnd := mk(1<<30, cache.Random) // far beyond TLB reach
	hugeSeq := mk(1<<30, cache.Streaming)
	if small.Values[TLBDM] != 0 {
		t.Fatalf("TLB-covered set shows %g misses", small.Values[TLBDM])
	}
	if hugeRnd.Values[TLBDM] <= 0 {
		t.Fatal("1 GiB random walk must miss the TLB")
	}
	if hugeSeq.Values[TLBDM] >= hugeRnd.Values[TLBDM] {
		t.Fatal("sequential TLB misses should be far below random")
	}
}

func TestBranchCounters(t *testing.T) {
	spec := skylake(t)
	model := sim.NewModel(spec)
	p := &sim.KernelProfile{
		Name: "b", WorkItems: 1000, IntOpsPerItem: 10, BranchesPerItem: 5,
		Divergence: 0.5, WorkingSetBytes: 1 << 10, Pattern: cache.Streaming, Vectorizable: true,
		LoadBytesPerItem: 4,
	}
	b := model.KernelTime(p)
	s := Derive(spec, p, b.Traffic, b.TotalNs)
	if s.Values[BrIns] != 5000 {
		t.Fatalf("BR_INS %g, want 5000", s.Values[BrIns])
	}
	if s.Values[BrMsp] <= 0 || s.Values[BrMsp] >= s.Values[BrIns] {
		t.Fatalf("BR_MSP %g out of (0, BR_INS)", s.Values[BrMsp])
	}
}

func TestSetAdd(t *testing.T) {
	a := deriveFor(t, 16<<10)
	before := a.Values[TotIns]
	b := deriveFor(t, 16<<10)
	a.Add(b)
	if a.Values[TotIns] != 2*before {
		t.Fatalf("Add did not accumulate: %g vs 2×%g", a.Values[TotIns], before)
	}
	if a.IPC <= 0 {
		t.Fatal("Add must recompute IPC")
	}
	var zero Set
	zero.Add(b)
	if zero.Values[TotIns] != before {
		t.Fatal("Add into zero set failed")
	}
}

func TestSetString(t *testing.T) {
	s := deriveFor(t, 16<<10)
	str := s.String()
	if !strings.Contains(str, "PAPI_TOT_INS") || !strings.Contains(str, "IPC=") {
		t.Fatalf("String() missing fields: %s", str)
	}
}

func TestGPUCountsPerLaneInstructions(t *testing.T) {
	gpu, err := sim.Lookup("gtx1080")
	if err != nil {
		t.Fatal(err)
	}
	cpuSpec := skylake(t)
	p := &sim.KernelProfile{
		Name: "k", WorkItems: 1 << 16, FlopsPerItem: 100,
		LoadBytesPerItem: 4, WorkingSetBytes: 1 << 20, Pattern: cache.Streaming, Vectorizable: true,
	}
	gb := sim.NewModel(gpu).KernelTime(p)
	cb := sim.NewModel(cpuSpec).KernelTime(p)
	gs := Derive(gpu, p, gb.Traffic, gb.TotalNs)
	cs := Derive(cpuSpec, p, cb.Traffic, cb.TotalNs)
	if gs.Values[TotIns] <= cs.Values[TotIns] {
		t.Fatal("GPU per-lane instruction count should exceed CPU vectorised count")
	}
}
