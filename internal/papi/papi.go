// Package papi derives PAPI-style hardware event counts for simulated kernel
// executions. The paper collects these counters through LibSciBench to
// verify that each problem size exercises the intended level of the memory
// hierarchy (§4.3–4.4); here the same counter set is derived from the kernel
// workload profile and the device's analytical cache model.
package papi

import (
	"fmt"
	"sort"

	"opendwarfs/internal/cache"
	"opendwarfs/internal/sim"
)

// Counter names follow the PAPI preset events used in the paper (§4.3).
type Counter string

const (
	TotIns Counter = "PAPI_TOT_INS" // total instructions
	TotCyc Counter = "PAPI_TOT_CYC" // total cycles
	L1DCM  Counter = "PAPI_L1_DCM"  // L1 data cache misses
	L2DCM  Counter = "PAPI_L2_DCM"  // L2 data cache misses
	L3TCM  Counter = "PAPI_L3_TCM"  // L3 total cache misses
	TLBDM  Counter = "PAPI_TLB_DM"  // data TLB misses
	BrIns  Counter = "PAPI_BR_INS"  // branch instructions
	BrMsp  Counter = "PAPI_BR_MSP"  // mispredicted branches
)

// Set is one sampled counter group for a kernel execution.
type Set struct {
	Values map[Counter]float64
	// IPC is instructions per cycle (§4.3's derived metric).
	IPC float64
	// L3RequestRate, L3MissRate and L3MissRatio are the three L3 metrics
	// the paper reports: requests/instructions, misses/instructions and
	// misses/requests.
	L3RequestRate float64
	L3MissRate    float64
	L3MissRatio   float64
	// TLBMissRate is TLB misses / instructions.
	TLBMissRate float64
}

// Derive computes the counter set for one kernel launch on one device.
// timeNs is the modelled kernel duration used for cycle/IPC derivation.
func Derive(spec *sim.DeviceSpec, p *sim.KernelProfile, traffic cache.Traffic, timeNs float64) Set {
	items := float64(p.WorkItems)

	// Memory accesses: one per 4-byte word of traffic (the benchmarks are
	// float32/int32 codes).
	accesses := items * (p.LoadBytesPerItem + p.StoreBytesPerItem) / 4

	// Retired instruction estimate. On CPUs the OpenCL compiler vectorises
	// the data-parallel body, so flops and memory ops retire as ~8-wide
	// vector instructions; accelerators count per-lane instructions.
	vecWidth := 1.0
	if spec.Class == sim.CPU && p.Vectorizable {
		vecWidth = 8
	}
	branches := items * p.BranchesPerItem
	const loopOverheadPerItem = 6 // index math, bounds, control
	ins := items*(p.FlopsPerItem+p.IntOpsPerItem)/vecWidth +
		accesses/vecWidth +
		2*branches +
		items*loopOverheadPerItem

	// Cache misses from the analytical hierarchy resolution. MissRate[i]
	// is the fraction of accesses served beyond level i.
	miss := func(i int) float64 {
		if i < len(traffic.MissRate) {
			return accesses * traffic.MissRate[i]
		}
		return accesses * traffic.DRAMFrac
	}

	// TLB: coverage of a standard 1536-entry, 4 KiB-page DTLB; beyond it,
	// random patterns miss in proportion to the uncovered footprint.
	tlbMisses := 0.0
	covered := 1536.0 * 4096
	if ws := float64(p.WorkingSetBytes); ws > covered {
		frac := (ws - covered) / ws
		perAccess := 0.002 // sequential: prefetched page walks
		if p.Pattern == cache.Random {
			perAccess = 0.5
		}
		tlbMisses = accesses * frac * perAccess
	}

	// Branch mispredictions: divergence is the architecture-independent
	// analogue of unpredictability.
	msp := branches * (0.01 + 0.3*p.Divergence)

	cycles := timeNs * spec.ClockGHz()
	s := Set{Values: map[Counter]float64{
		TotIns: ins,
		TotCyc: cycles,
		L1DCM:  miss(0),
		L2DCM:  miss(1),
		L3TCM:  miss(2),
		TLBDM:  tlbMisses,
		BrIns:  branches,
		BrMsp:  msp,
	}}
	if cycles > 0 {
		s.IPC = ins / cycles
	}
	if ins > 0 {
		s.L3RequestRate = miss(1) / ins // requests to L3 = misses beyond L2
		s.L3MissRate = miss(2) / ins
		s.TLBMissRate = tlbMisses / ins
	}
	if l3req := miss(1); l3req > 0 {
		s.L3MissRatio = miss(2) / l3req
	}
	return s
}

// Add accumulates another counter set (e.g. across the kernels of one
// benchmark iteration). Derived rates are recomputed from the sums.
func (s *Set) Add(o Set) {
	if s.Values == nil {
		s.Values = map[Counter]float64{}
	}
	for k, v := range o.Values {
		s.Values[k] += v
	}
	ins := s.Values[TotIns]
	if cyc := s.Values[TotCyc]; cyc > 0 {
		s.IPC = ins / cyc
	}
	if ins > 0 {
		s.L3RequestRate = s.Values[L2DCM] / ins
		s.L3MissRate = s.Values[L3TCM] / ins
		s.TLBMissRate = s.Values[TLBDM] / ins
	}
	if req := s.Values[L2DCM]; req > 0 {
		s.L3MissRatio = s.Values[L3TCM] / req
	}
}

// String formats the set in a stable order for logs.
func (s Set) String() string {
	keys := make([]string, 0, len(s.Values))
	for k := range s.Values {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%.3g ", k, s.Values[Counter(k)])
	}
	return out + fmt.Sprintf("IPC=%.3f", s.IPC)
}
